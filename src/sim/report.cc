#include "sim/report.h"

#include <cstdio>

#include "common/log.h"

namespace mempod {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    MEMPOD_ASSERT(cells.size() == headers_.size(),
                  "row width %zu != header width %zu", cells.size(),
                  headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(width[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    printRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        printRow(row);
}

std::string
TablePrinter::csvEscape(const std::string &cell)
{
    // RFC 4180: fields containing separators, quotes or line breaks
    // are quoted, with embedded quotes doubled.
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
TablePrinter::printCsv() const
{
    auto printRow = [](const std::vector<std::string> &row) {
        std::printf("CSV");
        for (const auto &cell : row)
            std::printf(",%s", csvEscape(cell).c_str());
        std::printf("\n");
    };
    printRow(headers_);
    for (const auto &row : rows_)
        printRow(row);
}

} // namespace mempod
