#include "sim/report.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/log.h"

namespace mempod {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    MEMPOD_ASSERT(cells.size() == headers_.size(),
                  "row width %zu != header width %zu", cells.size(),
                  headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int prec)
{
    // to_chars, not printf: fixed-notation rendering must not pick up
    // an LC_NUMERIC decimal comma, or byte-compared goldens break on
    // localized hosts.
    if (!std::isfinite(v))
        return v != v ? "nan" : (v > 0 ? "inf" : "-inf");
    char buf[512]; // fixed notation of huge doubles needs the room
    const auto [end, ec] = std::to_chars(
        buf, buf + sizeof(buf), v, std::chars_format::fixed, prec);
    MEMPOD_ASSERT(ec == std::errc(), "table number overflows buffer");
    return std::string(buf, end);
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(width[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    printRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        printRow(row);
}

std::string
TablePrinter::csvEscape(const std::string &cell)
{
    // RFC 4180: fields containing separators, quotes or line breaks
    // are quoted, with embedded quotes doubled.
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
TablePrinter::printCsv() const
{
    auto printRow = [](const std::vector<std::string> &row) {
        std::printf("CSV");
        for (const auto &cell : row)
            std::printf(",%s", csvEscape(cell).c_str());
        std::printf("\n");
    };
    printRow(headers_);
    for (const auto &row : rows_)
        printRow(row);
}

} // namespace mempod
