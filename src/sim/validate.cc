/**
 * @file
 * Invariant-checker implementation. Every law panics through
 * MEMPOD_PANIC with an `invariant violated [law]` prefix so tests and
 * operators can match on the structured diagnostic.
 */
#include "sim/validate.h"

#include <cmath>

#include "common/decision_log.h"
#include "common/log.h"
#include "mem/frontend.h"
#include "mem/manager.h"
#include "sim/config.h"
#include "sim/report.h"

namespace mempod {

namespace {

/** Relative comparison for quantities that are sums of exact parts. */
bool
relClose(double a, double b, double rel_tol)
{
    const double scale = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) <= rel_tol * std::max(scale, 1.0);
}

} // namespace

void
checkPermutation(const char *what,
                 const std::vector<std::uint32_t> &location,
                 const std::vector<std::uint32_t> &resident)
{
    for (std::uint64_t slot = 0; slot < resident.size(); ++slot) {
        const std::uint32_t id = resident[slot];
        if (id >= location.size() || location[id] != slot)
            MEMPOD_PANIC(
                "invariant violated [remap_bijection]: %s slot %llu "
                "holds id %u whose location entry points to %llu",
                what, static_cast<unsigned long long>(slot), id,
                id < location.size()
                    ? static_cast<unsigned long long>(location[id])
                    : ~0ull);
    }
    for (std::uint64_t id = 0; id < location.size(); ++id) {
        const std::uint32_t slot = location[id];
        if (slot < resident.size() && resident[slot] != id)
            MEMPOD_PANIC(
                "invariant violated [remap_bijection]: %s id %llu "
                "claims slot %u which holds id %u",
                what, static_cast<unsigned long long>(id), slot,
                resident[slot]);
    }
}

void
checkAmmatAttribution(const RunResult &r)
{
    const double sum = r.attribution.totalNs();
    if (!relClose(sum, r.ammatNs, 1e-9))
        MEMPOD_PANIC(
            "invariant violated [ammat_attribution_sum]: components "
            "sum to %.9f ns but measured AMMAT is %.9f ns "
            "(mshr=%.9f meta=%.9f blocked=%.9f queue=%.9f svc=%.9f)",
            sum, r.ammatNs, r.attribution.mshrWaitNs,
            r.attribution.metadataNs, r.attribution.blockedNs,
            r.attribution.queueWaitNs, r.attribution.serviceNs);
}

void
checkEnergyBalance(const MemorySystem::Stats &stats,
                   bool pod_local_migrations,
                   const EnergyEstimate &reported)
{
    const EnergyEstimate expect =
        estimateEnergy(stats, pod_local_migrations);
    if (!relClose(reported.demandUj, expect.demandUj, 1e-9) ||
        !relClose(reported.migrationUj, expect.migrationUj, 1e-9) ||
        !relClose(reported.bookkeepingUj, expect.bookkeepingUj, 1e-9))
        MEMPOD_PANIC(
            "invariant violated [energy_balance]: reported "
            "(%.6f, %.6f, %.6f) uJ but the line counters recompute to "
            "(%.6f, %.6f, %.6f) uJ",
            reported.demandUj, reported.migrationUj,
            reported.bookkeepingUj, expect.demandUj,
            expect.migrationUj, expect.bookkeepingUj);
    if (!relClose(reported.totalUj(),
                  reported.demandUj + reported.migrationUj +
                      reported.bookkeepingUj,
                  1e-12))
        MEMPOD_PANIC("invariant violated [energy_balance]: terms do "
                     "not sum to the reported total");
}

void
checkMigrationConservation(const char *mechanism,
                           std::uint64_t migrations,
                           std::uint64_t engine_commits)
{
    if (migrations != engine_commits)
        MEMPOD_PANIC(
            "invariant violated [migration_conservation]: %s counted "
            "%llu migrations but its engine committed %llu",
            mechanism, static_cast<unsigned long long>(migrations),
            static_cast<unsigned long long>(engine_commits));
}

InvariantChecker::InvariantChecker(const SimConfig &config,
                                   const TraceFrontend &frontend,
                                   const MemorySystem &mem,
                                   const MemoryManager &manager,
                                   const DecisionLog *decisions,
                                   TimePs period_ps)
    : config_(config),
      frontend_(frontend),
      mem_(mem),
      manager_(manager),
      decisions_(decisions),
      periodPs_(period_ps > 0 ? period_ps : 1)
{
}

void
InvariantChecker::checkLiveCounters()
{
    const std::uint64_t completed = frontend_.completed();
    if (completed < lastCompleted_)
        MEMPOD_PANIC("invariant violated [demand_conservation]: "
                     "completed count went backwards (%llu -> %llu)",
                     static_cast<unsigned long long>(lastCompleted_),
                     static_cast<unsigned long long>(completed));
    lastCompleted_ = completed;
    if (frontend_.outstanding() > config_.maxOutstanding)
        MEMPOD_PANIC("invariant violated [demand_conservation]: %u "
                     "demands in flight exceeds the MSHR cap %u",
                     frontend_.outstanding(), config_.maxOutstanding);
    if (decisions_) {
        const std::uint64_t resolved = decisions_->committedCount() +
                                       decisions_->abortedCount();
        if (resolved > decisions_->size())
            MEMPOD_PANIC(
                "invariant violated [decision_conservation]: %llu "
                "outcomes resolved for %llu recorded decisions",
                static_cast<unsigned long long>(resolved),
                static_cast<unsigned long long>(decisions_->size()));
    }
}

void
InvariantChecker::periodicCheck(TimePs now)
{
    if (now < nextCheckPs_)
        return;
    nextCheckPs_ = now + periodPs_;
    ++checksRun_;
    checkLiveCounters();
    manager_.validateInvariants(config_.validateParanoid);
}

void
InvariantChecker::finalCheck(const RunResult &r)
{
    ++checksRun_;

    // Demand conservation: at drain, everything issued has completed
    // and landed on exactly one tier.
    if (r.completed != r.demandRequests)
        MEMPOD_PANIC(
            "invariant violated [demand_conservation]: %llu of %llu "
            "demand requests completed at end of run",
            static_cast<unsigned long long>(r.completed),
            static_cast<unsigned long long>(r.demandRequests));
    const std::uint64_t demand_lines =
        r.memStats.demandFast + r.memStats.demandSlow;
    if (demand_lines != r.demandRequests)
        MEMPOD_PANIC(
            "invariant violated [demand_conservation]: tiers served "
            "%llu demand lines for %llu requests",
            static_cast<unsigned long long>(demand_lines),
            static_cast<unsigned long long>(r.demandRequests));

    // Sampled runs suppress stall accounting during fast-forward
    // windows while the channel counters keep accumulating, so the
    // exact partition only holds at uniform fidelity. The sampled
    // estimate is validated against the detailed golden by CI instead.
    if (!config_.sampling.enabled)
        checkAmmatAttribution(r);

    // Migration traffic conservation: each committed swap reads and
    // writes both sides, so the channels must have seen exactly two
    // line transfers per migrated line of data.
    const std::uint64_t moved_lines = r.migration.bytesMoved / kLineBytes;
    if (r.memStats.migrationLines() != 2 * moved_lines)
        MEMPOD_PANIC(
            "invariant violated [migration_traffic]: channels saw "
            "%llu migration line transfers but the manager moved "
            "%llu lines of data (expected %llu transfers)",
            static_cast<unsigned long long>(
                r.memStats.migrationLines()),
            static_cast<unsigned long long>(moved_lines),
            static_cast<unsigned long long>(2 * moved_lines));

    // Energy terms must recompute exactly from those line counters.
    checkEnergyBalance(r.memStats, r.podLocalMigrations,
                       estimateEnergy(r.memStats,
                                      r.podLocalMigrations));

    if (decisions_) {
        if (decisions_->committedCount() != r.migration.migrations)
            MEMPOD_PANIC(
                "invariant violated [decision_conservation]: ledger "
                "committed %llu decisions but the run migrated %llu",
                static_cast<unsigned long long>(
                    decisions_->committedCount()),
                static_cast<unsigned long long>(
                    r.migration.migrations));
    }

    // Final deep scan regardless of the periodic mode: the run is
    // over, so the O(pages) walk is off the hot path.
    manager_.validateInvariants(true);
}

} // namespace mempod
