#include "sim/metadata_path.h"

#include "common/log.h"

namespace mempod {

MetadataPath::MetadataPath(EventQueue &eq, MemorySystem &mem,
                           std::uint64_t capacity_bytes,
                           std::uint32_t assoc, std::uint32_t entry_bytes,
                           BlockAddrFn block_addr)
    : eq_(eq),
      mem_(mem),
      cache_(capacity_bytes, assoc, entry_bytes),
      blockAddr_(std::move(block_addr))
{
    MEMPOD_ASSERT(blockAddr_ != nullptr, "need a backing-store mapping");
}

void
MetadataPath::access(std::uint64_t entry_idx, ReadyFn ready)
{
    if (cache_.lookup(entry_idx)) {
        ready();
        return;
    }
    const std::uint64_t block = cache_.blockOf(entry_idx);
    auto [it, first] = pending_.try_emplace(block);
    it->second.push_back(std::move(ready));
    if (!first)
        return; // piggyback on the outstanding fill

    ++fills_;
    Request fill;
    fill.addr = blockAddr_(block);
    fill.type = AccessType::kRead;
    fill.kind = Request::Kind::kBookkeeping;
    fill.arrival = eq_.now();
    fill.onComplete = [this, block](TimePs) {
        cache_.fill(block * cache_.entriesPerBlock());
        auto node = pending_.extract(block);
        for (auto &cont : node.mapped())
            cont();
    };
    mem_.access(std::move(fill));
}

void
MetadataPath::registerMetrics(MetricRegistry &reg,
                              const std::string &prefix) const
{
    reg.addCounterFn(prefix + ".hits", "metadata-cache hits",
                     [this] { return cache_.hits(); });
    reg.addCounterFn(prefix + ".misses", "metadata-cache misses",
                     [this] { return cache_.misses(); });
    reg.attachCounter(prefix + ".fills",
                      "backing-store reads injected for misses",
                      &fills_);
    reg.addGauge(prefix + ".outstanding_fills",
                 "metadata fills currently in flight", [this] {
                     return static_cast<double>(pending_.size());
                 });
    reg.addGauge(prefix + ".hit_rate",
                 "metadata-cache hit rate so far", [this] {
                     const std::uint64_t total =
                         cache_.hits() + cache_.misses();
                     return total ? static_cast<double>(cache_.hits()) /
                                        static_cast<double>(total)
                                  : 0.0;
                 });
}

} // namespace mempod
