/**
 * @file
 * Complete simulation configurations: which mechanism manages which
 * memory system. Presets cover the paper's Table 2 system, the
 * Figure 10 future system, and the single-technology baselines
 * (HBM-only, DDR-only).
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/tracer.h"
#include "dram/channel.h"
#include "dram/spec.h"
#include "mem/address_map.h"
#include "sim/mechanism_params.h"

namespace mempod {

/** Which migration mechanism to instantiate. */
enum class Mechanism
{
    kNoMigration,
    kMemPod,
    kHma,
    kThm,
    kCameo,
};

const char *mechanismName(Mechanism m);

/**
 * Parse a mechanism name; accepts the canonical mechanismName()
 * spellings case-insensitively plus the CLI aliases ("none",
 * "nomigration", "tlm"). Returns false on unknown names.
 */
bool mechanismFromName(const std::string &name, Mechanism &out);

/** Everything needed to build one simulation. */
struct SimConfig
{
    Mechanism mechanism = Mechanism::kNoMigration;
    SystemGeometry geom = SystemGeometry::paper();
    /** Near (fast, on-package) memory device; `dram.near.*` keys. */
    DramSpec near = DramSpec::hbm1GHz();
    /** Far (slow, off-chip) memory device; `dram.far.*` keys. */
    DramSpec far = DramSpec::ddr4_1600();

    /**
     * Measurement-fidelity memory model (`dram.model` dotted key):
     * "detailed" is the cycle-faithful bank/row controller the paper's
     * numbers come from; "fast" replaces every channel with a
     * fixed-service-latency, bandwidth-capped queue (dram/fast_channel.h)
     * for quick sweeps; "functional" completes every access instantly
     * and is only meaningful as a sampling warm-up model. Detailed runs
     * are byte-identical to the pre-model-abstraction simulator.
     */
    DramModel dramModel = DramModel::kDetailed;

    MemPodParams mempod;
    HmaParams hma;
    ThmParams thm;
    CameoParams cameo;

    std::uint32_t maxOutstanding = 64; //!< MSHR-style demand cap
    std::uint64_t placementSeed = 1;
    TimePs extraLatencyPs = 5000; //!< interconnect latency per access
    std::uint8_t numCores = 8;
    ControllerPolicy controller; //!< page policy + scheduler

    /**
     * Metric-sampling period for the interval time-series (JSONL
     * export); 0 disables the sampler entirely, leaving the event
     * stream untouched (golden runs depend on the executed-event
     * count).
     */
    TimePs statsIntervalPs = 0;

    /**
     * Conservative-PDES sharding (`sim.shards` dotted key): 0 runs the
     * legacy single-threaded kernel; N >= 1 gives every DRAM channel
     * its own timing wheel and spreads the wheels over N worker
     * threads synchronized at a lookahead horizon (see
     * sim/parallel.h). Output is byte-identical at every value —
     * domains, not shards, define the canonical event order — so this
     * is purely a host-parallelism knob. Clamped to the channel count.
     */
    std::uint32_t shards = 0;

    /**
     * SMARTS-style sampled simulation (`sim.sampling.*` dotted keys).
     * When enabled, the FidelityController (sim/fidelity.h) alternates
     * fast-forward warm-up windows — run under `fastfwdModel`, with
     * MEA trackers, remap tables and the decision ledger still live —
     * with detailed measurement windows run under `dram.model`. Each
     * period is `fastfwdPs + measurePs` of simulated time; the first
     * `warmupPct` percent of every measurement window re-warms queue
     * and bank state and is excluded from the AMMAT sample. The run
     * reports the sample mean with a Student-t confidence interval and
     * panics if fewer than `minWindows` windows complete.
     *
     * Pick a period (`fastfwdPs + measurePs`) coprime with the
     * mechanism's migration interval: a period that divides evenly
     * into epochs pins every measurement slice to the same phase of
     * the migration cycle and aliases the estimate (the default
     * 183 + 20 us period deliberately strides the paper's 50 us
     * MemPod interval).
     */
    struct SamplingParams
    {
        bool enabled = false;
        /** Detailed measurement window length, simulated ps. */
        TimePs measurePs = 20'000'000;
        /** Fast-forward window length between measurements, ps. */
        TimePs fastfwdPs = 183'000'000;
        /** Leading fraction of each measurement window (percent,
         *  0..99) treated as detailed warm-up, not measured. */
        std::uint32_t warmupPct = 30;
        /** Minimum completed measurement windows; fewer is an error. */
        std::uint32_t minWindows = 3;
        /** Model for fast-forward windows; functional (instant
         *  completion) or fast (latency/bandwidth queue). */
        DramModel fastfwdModel = DramModel::kFunctional;
    };
    SamplingParams sampling;

    /**
     * Causal event tracing (Chrome trace-event JSON). Disabled by
     * default; when disabled the only cost is one pointer test per
     * trace point (no events are added or removed from the queue, so
     * golden executed-event counts are unchanged either way).
     */
    TracerConfig tracer;

    /**
     * Host-side self-profiling (`perf.enabled` dotted key): wall-clock
     * phase scopes, PDES shard busy/stall accounting and a perf.json
     * sidecar (common/perf.h). Host time is only ever *read* — it
     * never feeds back into event scheduling — so enabling this
     * cannot change any simulation output byte; when disabled the
     * instrumented sites cost one branch on a null pointer.
     */
    bool perfEnabled = false;

    /**
     * Migration decision ledger (`decisions.enabled` dotted key): the
     * manager records every candidate selection and its outcome in a
     * DecisionLog (common/decision_log.h). Recording happens inside
     * existing manager callbacks — no events are added to the queue —
     * so golden executed-event counts and all timing outputs are
     * unchanged; the JSONL sidecar is only written when the runner is
     * given a decisions directory.
     */
    bool decisionsEnabled = true;

    /**
     * Always-on invariant checker (`validate.enabled` dotted key):
     * per-epoch conservation laws plus an end-of-run audit
     * (sim/validate.h). Checks piggyback on the existing progress
     * probe and only read state, so they cannot perturb any output.
     */
    bool validateEnabled = true;

    /**
     * Deep-scan mode (`validate.paranoid` dotted key): additionally
     * walk every remap/location table each epoch to verify the
     * permutation invariant. O(pages) per epoch — for CI smokes and
     * debugging, not the default.
     */
    bool validateParanoid = false;

    /** Paper Table 2: 1 GB HBM-1GHz + 8 GB DDR4-1600, 4 Pods. */
    static SimConfig paper(Mechanism m);

    /** Figure 10 future system: HBM-4GHz + DDR4-2400. */
    static SimConfig future(Mechanism m);

    /** 9 GB of stacked memory only (the "HBM" bar of Figure 8). */
    static SimConfig fastOnly(bool future = false);

    /** 9 GB of off-chip DDR only (Figure 10 normalization). */
    static SimConfig slowOnly(bool future = false);

    /**
     * Scale HMA's epoch machinery for reduced-length traces: keeps the
     * paper's epoch:stall ratio (100:7) and the 2000x MemPod:HMA epoch
     * ratio relative to `mempod.interval`, so short runs still see
     * several HMA epochs. `epoch_ratio` = HMA epoch / MemPod interval.
     */
    void scaleHmaEpoch(double epoch_ratio);

    std::string describe() const;

    /**
     * Serialize every field as nested JSON (dotted keys become
     * objects), in a fixed field order: fromJson(c.toJson()).toJson()
     * == c.toJson(). The schema is documented in EXPERIMENTS.md.
     */
    std::string toJson() const;

    /**
     * Build a config from JSON text produced by toJson() (or written
     * by hand; missing keys keep their defaults). Panics with a
     * descriptive message on malformed JSON or unknown keys.
     */
    static SimConfig fromJson(const std::string &json);

    /**
     * Apply one dotted-key override, e.g. set("mempod.interval",
     * "50000000") or set("mechanism", "MemPod") — the CLI's
     * `--set key=value`. Panics on unknown keys or unparsable values.
     */
    void set(const std::string &key, const std::string &value);
};

} // namespace mempod
