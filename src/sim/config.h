/**
 * @file
 * Complete simulation configurations: which mechanism manages which
 * memory system. Presets cover the paper's Table 2 system, the
 * Figure 10 future system, and the single-technology baselines
 * (HBM-only, DDR-only).
 */
#pragma once

#include <cstdint>
#include <string>

#include "baselines/cameo.h"
#include "baselines/hma.h"
#include "baselines/thm.h"
#include "common/tracer.h"
#include "core/mempod_manager.h"
#include "dram/channel.h"
#include "dram/spec.h"
#include "mem/address_map.h"

namespace mempod {

/** Which migration mechanism to instantiate. */
enum class Mechanism
{
    kNoMigration,
    kMemPod,
    kHma,
    kThm,
    kCameo,
};

const char *mechanismName(Mechanism m);

/** Everything needed to build one simulation. */
struct SimConfig
{
    Mechanism mechanism = Mechanism::kNoMigration;
    SystemGeometry geom = SystemGeometry::paper();
    DramSpec fast = DramSpec::hbm1GHz();
    DramSpec slow = DramSpec::ddr4_1600();

    MemPodParams mempod;
    HmaParams hma;
    ThmParams thm;
    CameoParams cameo;

    std::uint32_t maxOutstanding = 64; //!< MSHR-style demand cap
    std::uint64_t placementSeed = 1;
    TimePs extraLatencyPs = 5000; //!< interconnect latency per access
    std::uint8_t numCores = 8;
    ControllerPolicy controller; //!< page policy + scheduler

    /**
     * Metric-sampling period for the interval time-series (JSONL
     * export); 0 disables the sampler entirely, leaving the event
     * stream untouched (golden runs depend on the executed-event
     * count).
     */
    TimePs statsIntervalPs = 0;

    /**
     * Causal event tracing (Chrome trace-event JSON). Disabled by
     * default; when disabled the only cost is one pointer test per
     * trace point (no events are added or removed from the queue, so
     * golden executed-event counts are unchanged either way).
     */
    TracerConfig tracer;

    /** Paper Table 2: 1 GB HBM-1GHz + 8 GB DDR4-1600, 4 Pods. */
    static SimConfig paper(Mechanism m);

    /** Figure 10 future system: HBM-4GHz + DDR4-2400. */
    static SimConfig future(Mechanism m);

    /** 9 GB of stacked memory only (the "HBM" bar of Figure 8). */
    static SimConfig fastOnly(bool future = false);

    /** 9 GB of off-chip DDR only (Figure 10 normalization). */
    static SimConfig slowOnly(bool future = false);

    /**
     * Scale HMA's epoch machinery for reduced-length traces: keeps the
     * paper's epoch:stall ratio (100:7) and the 2000x MemPod:HMA epoch
     * ratio relative to `mempod.interval`, so short runs still see
     * several HMA epochs. `epoch_ratio` = HMA epoch / MemPod interval.
     */
    void scaleHmaEpoch(double epoch_ratio);

    std::string describe() const;
};

} // namespace mempod
