#include "sim/metadata_cache.h"

#include "common/log.h"

namespace mempod {

MetadataCache::MetadataCache(std::uint64_t capacity_bytes,
                             std::uint32_t assoc,
                             std::uint32_t entry_bytes)
    : capacityBytes_(capacity_bytes), assoc_(assoc)
{
    MEMPOD_ASSERT(entry_bytes >= 1 && entry_bytes <= kBlockBytes,
                  "entry size %u out of range", entry_bytes);
    MEMPOD_ASSERT(assoc >= 1, "need at least one way");
    entriesPerBlock_ = kBlockBytes / entry_bytes;
    const std::uint64_t blocks = capacity_bytes / kBlockBytes;
    MEMPOD_ASSERT(blocks >= assoc, "cache smaller than one set");
    sets_ = blocks / assoc;
    ways_.resize(sets_ * assoc);
}

bool
MetadataCache::lookup(std::uint64_t entry_idx)
{
    const std::uint64_t block = blockOf(entry_idx);
    const std::uint64_t set = block % sets_;
    Way *base = &ways_[set * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == block) {
            base[w].lastUse = ++useClock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
MetadataCache::fill(std::uint64_t entry_idx)
{
    const std::uint64_t block = blockOf(entry_idx);
    const std::uint64_t set = block % sets_;
    Way *base = &ways_[set * assoc_];
    Way *victim = &base[0];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == block) {
            base[w].lastUse = ++useClock_; // already present (race fill)
            return;
        }
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = block;
    victim->lastUse = ++useClock_;
}

} // namespace mempod
