/**
 * @file
 * Run results and reporting helpers shared by the benchmark harnesses:
 * the per-run statistics bundle, and a simple aligned-column table
 * printer with a machine-readable CSV echo.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/manager.h"
#include "mem/memory_system.h"

namespace mempod {

/**
 * AMMAT latency attribution: the average memory access time split into
 * additive pipeline components, each in nanoseconds per trace record
 * (the same denominator as AMMAT itself). The components partition
 * every completed demand's arrival-to-finish interval exactly, so
 * their sum equals the measured AMMAT.
 */
struct AmmatAttribution
{
    double mshrWaitNs = 0.0;  //!< admission delay behind the MSHR cap
    double metadataNs = 0.0;  //!< metadata-cache miss fill waits
    double blockedNs = 0.0;   //!< parked behind in-flight migrations
    double queueWaitNs = 0.0; //!< controller queue wait (enqueue->CAS)
    double serviceNs = 0.0;   //!< CAS to completion incl. interconnect

    double
    totalNs() const
    {
        return mshrWaitNs + metadataNs + blockedNs + queueWaitNs +
               serviceNs;
    }
};

/** p50/p95/p99 of a per-request latency distribution, nanoseconds. */
struct LatencyPercentiles
{
    double p50Ns = 0.0;
    double p95Ns = 0.0;
    double p99Ns = 0.0;
};

/** Everything measured by one simulation run. */
struct RunResult
{
    std::string workload;
    std::string mechanism;

    double ammatNs = 0.0;          //!< the paper's headline metric
    std::uint64_t demandRequests = 0;
    std::uint64_t completed = 0;
    double fastServiceFraction = 0.0; //!< demand lines served by HBM
    double rowHitRate = 0.0;
    double rowHitRateFast = 0.0;
    TimePs simulatedPs = 0;
    std::uint64_t eventsExecuted = 0;

    MigrationStats migration;

    /** Per-kind/per-tier line counters (energy accounting). */
    MemorySystem::Stats memStats;

    /** Whether migration traffic stayed Pod-local (MemPod). */
    bool podLocalMigrations = false;

    /** Per-core AMMAT in nanoseconds (index = core id). */
    std::vector<double> perCoreAmmatNs;

    /** AMMAT split into additive components (sums to ammatNs). */
    AmmatAttribution attribution;

    /** Request-latency percentiles, all cores together. */
    LatencyPercentiles latency;

    /** Per-core request-latency percentiles (index = core id). */
    std::vector<LatencyPercentiles> perCoreLatency;

    /**
     * Sampled-simulation estimate (sim.sampling.enabled runs only):
     * mean per-window AMMAT with a 95% Student-t CI half-width and
     * the number of completed measurement windows. All zero — and the
     * keys absent from exported JSON — on detailed runs.
     */
    bool sampled = false;
    double sampledAmmatNs = 0.0;
    double sampledCiNs = 0.0;
    std::uint64_t sampleWindows = 0;

    /** Migration data volume in MiB. */
    double
    dataMovedMiB() const
    {
        return static_cast<double>(migration.bytesMoved) / (1 << 20);
    }
};

/** Fixed-width console table with a trailing CSV block. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Format a double with `prec` decimals. */
    static std::string num(double v, int prec = 3);

    /** RFC-4180 CSV field escaping (quotes cells that need it). */
    static std::string csvEscape(const std::string &cell);

    /** Print the aligned table to stdout. */
    void print() const;

    /** Print `CSV,`-prefixed machine-readable lines to stdout. */
    void printCsv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mempod
