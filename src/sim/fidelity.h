/**
 * @file
 * SMARTS-style sampled simulation: the FidelityController alternates
 * fast-forward warm-up windows (run under the cheap warm model while
 * MEA trackers, remap tables and the decision ledger stay live) with
 * detailed measurement windows (run under the configured measurement
 * model), and reduces the per-window AMMAT samples to a mean with a
 * Student-t confidence interval.
 *
 * ## Window schedule
 *
 * Simulated time is tiled into periods of `fastfwdPs + measurePs`.
 * Each period opens with a fast-forward window, then a detailed window
 * whose leading `warmupPct` percent re-warms controller queue and bank
 * state; only the trailing measurement slice contributes a sample:
 *
 *     ammat_k = (totalStallPs(end) - totalStallPs(warmup_end))
 *             / (completed(end) - completed(warmup_end))
 *
 * The controller drives everything with three coordinator-domain
 * events per period (detailed-start, warmup-end, measure-end), so a
 * pending controller event always bounds the frontend's batch
 * admission horizon during functional fast-forward.
 *
 * ## Statistics
 *
 * Windows are treated as independent samples of the workload's AMMAT
 * (the SMARTS estimator). The 95% CI half-width is t(n-1) * s / sqrt(n)
 * with the exact two-sided Student-t critical value for df <= 30 and
 * the normal 1.96 beyond. A run that completes fewer than `minWindows`
 * measurement windows panics: the estimate would be statistically
 * meaningless, and the fix (shorter windows via sim.sampling.*) is a
 * configuration change the user must make.
 */
#pragma once

#include <cstdint>

#include "common/event_queue.h"
#include "sim/config.h"

namespace mempod {

class MemorySystem;
class TraceFrontend;

/** Welford-accumulated samples with a 95% Student-t interval. */
class WindowStats
{
  public:
    void add(double x);

    std::uint64_t count() const { return n_; }
    double mean() const { return mean_; }

    /** Unbiased sample variance (n-1 denominator); 0 when n < 2. */
    double variance() const;

    /** 95% CI half-width t(n-1) * s / sqrt(n); 0 when n < 2. */
    double ciHalfWidth() const;

    /** Two-sided 95% Student-t critical value for `df` degrees of
     *  freedom (exact through df=30, 1.96 beyond); 0 when df == 0. */
    static double tCritical95(std::uint64_t df);

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0; //!< sum of squared deviations from the mean
};

/** Drives the fast-forward / detailed window alternation. */
class FidelityController
{
  public:
    /**
     * @param eq Coordinator event queue (window events live here).
     * @param mem Memory system whose active model is switched.
     * @param frontend Frontend whose fast-forward mode is toggled.
     * @param params Validated sampling knobs; panics on a degenerate
     *        configuration (measurePs == 0, warmupPct > 99, or a
     *        warm-up slice that leaves no measurement slice).
     * @param measured The measurement-fidelity model (dram.model).
     */
    FidelityController(EventQueue &eq, MemorySystem &mem,
                       TraceFrontend &frontend,
                       const SimConfig::SamplingParams &params,
                       DramModel measured);

    /**
     * Enter the first fast-forward window and schedule the first
     * detailed window. Call once, at run start, before any events.
     */
    void begin();

    /**
     * End-of-run validation: panics when fewer than `minWindows`
     * measurement windows completed.
     */
    void finish() const;

    const WindowStats &windowStats() const { return stats_; }
    std::uint64_t windowsCompleted() const { return stats_.count(); }

    /** Detailed warm-up slice length, ps (exposed for tests). */
    TimePs warmupPs() const { return warmupPs_; }

  private:
    void enterFastForward();
    void onDetailedStart();
    void onWarmupEnd();
    void onMeasureEnd();

    EventQueue &eq_;
    MemorySystem &mem_;
    TraceFrontend &frontend_;
    SimConfig::SamplingParams params_;
    DramModel measured_;
    TimePs warmupPs_ = 0;
    bool batchAdmit_ = false; //!< functional warm model: batch records

    WindowStats stats_;
    double stallAtWarmupEnd_ = 0.0;
    std::uint64_t completedAtWarmupEnd_ = 0;
};

} // namespace mempod
