/**
 * @file
 * The full bookkeeping-cache access path shared by MemPod, HMA and
 * THM (Section 6.3.3): a MetadataCache probe whose misses inject a
 * blocking read into the memory stream (no priority over demand
 * traffic) and wake every access waiting on the same metadata block
 * when the fill returns.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/callback.h"
#include "common/event_queue.h"
#include "common/metrics.h"
#include "mem/memory_system.h"
#include "sim/metadata_cache.h"

namespace mempod {

/** Cache + miss-fill machinery for migration bookkeeping state. */
class MetadataPath
{
  public:
    /** Maps a metadata block number to its backing-store address. */
    using BlockAddrFn = std::function<Addr(std::uint64_t block)>;

    /**
     * Miss/hit continuation. Move-only and sized for a parked demand
     * request (the manager's continuation carries the request's
     * move-only completion callback inline).
     */
    using ReadyFn = MoveFunction<void(), 176>;

    MetadataPath(EventQueue &eq, MemorySystem &mem,
                 std::uint64_t capacity_bytes, std::uint32_t assoc,
                 std::uint32_t entry_bytes, BlockAddrFn block_addr);

    /**
     * Access the entry's metadata: `ready` runs immediately on a hit,
     * or after the injected backing-store read completes on a miss
     * (piggybacking on an outstanding fill of the same block).
     */
    void access(std::uint64_t entry_idx, ReadyFn ready);

    std::uint64_t hits() const { return cache_.hits(); }
    std::uint64_t misses() const { return cache_.misses(); }
    std::uint64_t fills() const { return fills_; }
    std::uint64_t outstandingFills() const { return pending_.size(); }
    const MetadataCache &cache() const { return cache_; }

    /** Register hit/miss/fill counters and gauges under `prefix`. */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    EventQueue &eq_;
    MemorySystem &mem_;
    MetadataCache cache_;
    BlockAddrFn blockAddr_;
    std::uint64_t fills_ = 0; //!< injected backing-store reads
    std::unordered_map<std::uint64_t, std::vector<ReadyFn>> pending_;
};

} // namespace mempod
