#include "sim/energy.h"

namespace mempod {

namespace {

constexpr double kBitsPerLine = kLineBytes * 8.0;
constexpr double kPjToUj = 1e-6;

double
linesEnergyUj(std::uint64_t fast_lines, std::uint64_t slow_lines,
              double hop_pj_per_bit, const EnergyParams &p)
{
    const double fast_pj =
        static_cast<double>(fast_lines) * kBitsPerLine *
        (p.fastAccessPjPerBit + hop_pj_per_bit);
    const double slow_pj =
        static_cast<double>(slow_lines) * kBitsPerLine *
        (p.slowAccessPjPerBit + hop_pj_per_bit);
    return (fast_pj + slow_pj) * kPjToUj;
}

} // namespace

EnergyEstimate
estimateEnergy(const MemorySystem::Stats &stats,
               bool pod_local_migrations, const EnergyParams &params)
{
    EnergyEstimate e;
    // Demand traffic always traverses LLC <-> MC (global).
    e.demandUj = linesEnergyUj(stats.demandFast, stats.demandSlow,
                               params.globalHopPjPerBit, params);
    // Migration traffic: Pod-local swaps ride short intra-Pod links;
    // centralized drivers haul data across the global switch twice
    // (to the driver's buffer and back out).
    const double migration_hop =
        pod_local_migrations ? params.localHopPjPerBit
                             : 2.0 * params.globalHopPjPerBit;
    e.migrationUj = linesEnergyUj(stats.migrationFast,
                                  stats.migrationSlow, migration_hop,
                                  params);
    // Metadata fills behave like demand reads.
    e.bookkeepingUj =
        linesEnergyUj(stats.bookkeepingFast, stats.bookkeepingSlow,
                      params.globalHopPjPerBit, params);
    return e;
}

} // namespace mempod
