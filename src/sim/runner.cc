#include "sim/runner.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "sim/simulation.h"
#include "sim/stats_writer.h"

namespace mempod {

std::shared_ptr<const TraceStore>
TraceCache::get(const std::string &workload, const GeneratorConfig &gen)
{
    const Key key{workload, gen.totalRequests, gen.seed,
                  gen.footprintScale, gen.rateScale};

    std::shared_future<std::shared_ptr<const TraceStore>> future;
    std::promise<std::shared_ptr<const TraceStore>> promise;
    bool build = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            entries_.emplace(key, future);
            build = true;
        } else {
            future = it->second;
        }
    }

    if (build) {
        // Store construction runs outside the lock so distinct keys
        // build in parallel; same-key requesters block on the future.
        try {
            const WorkloadCatalog &cat =
                catalog_ ? *catalog_ : WorkloadCatalog::global();
            if (cat.tryFind(workload) == nullptr)
                throw std::invalid_argument("unknown workload '" +
                                            workload + "'");
            promise.set_value(cat.makeStore(workload, gen));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get(); // rethrows the builder's exception, if any
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

BatchRunner::BatchRunner(RunnerOptions opt) : opt_(opt) {}

std::size_t
BatchRunner::add(BatchJob job)
{
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

unsigned
BatchRunner::workerCount() const
{
    unsigned n = opt_.jobs;
    if (n == 0)
        n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

TraceCache &
BatchRunner::traceCache()
{
    return opt_.cache ? *opt_.cache : own_cache_;
}

JobResult
BatchRunner::execute(const BatchJob &job, std::size_t index)
{
    JobResult out;
    out.workload = job.workload;
    out.label = job.label;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        // Each job gets its own single-owner cursor over the shared
        // backing (explicit trace, or the cache's store).
        std::unique_ptr<TraceSource> source;
        if (job.trace) {
            source = std::make_unique<VectorTraceSource>(job.trace);
        } else {
            source = traceCache().get(job.workload, job.gen)->open();
        }
        switch (job.kind) {
          case JobKind::kTiming: {
            Simulation sim(job.config);
            out.result = sim.run(*source, job.workload);
            const std::string stem = StatsWriter::jobFileStem(
                index, job.label, job.workload);
            const ArtifactSink &sink = opt_.artifacts;
            if (sink.wantStats()) {
                const std::string base =
                    sink.statsDir() + "/" + stem;
                StatsWriter::writeFile(
                    base + ".json",
                    StatsWriter::toJson(sim.registry(),
                                        sim.finalSnapshot(),
                                        out.result));
                if (sim.sampler())
                    StatsWriter::writeFile(
                        base + ".jsonl",
                        StatsWriter::toJsonl(
                            sim.sampler()->records()));
            }
            if (sink.wantDecisions() && sim.decisionLog())
                StatsWriter::writeFile(
                    sink.decisionsDir() + "/" + stem +
                        ".decisions.jsonl",
                    StatsWriter::decisionsToJsonl(*sim.decisionLog(),
                                                  job.workload,
                                                  out.result.mechanism));
            if (sink.wantTraces() && sim.tracer())
                StatsWriter::writeFile(sink.tracesDir() + "/" + stem +
                                           ".trace.json",
                                       sim.tracer()->toJson());
            if (const PerfReport *pr = sim.perfReport()) {
                out.perf = *pr;
                out.hasPerf = true;
                if (sink.wantPerf())
                    StatsWriter::writeFile(
                        sink.perfDir() + "/" + stem + ".perf.json",
                        StatsWriter::perfToJson(*pr));
            }
            break;
          }
          case JobKind::kIntervalStudy:
            out.study = runIntervalStudy(pageStreamFromSource(*source),
                                         job.study);
            break;
        }
        out.ok = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

std::vector<JobResult>
BatchRunner::runAll()
{
    std::vector<BatchJob> jobs;
    jobs.swap(jobs_);
    std::vector<JobResult> results(jobs.size());
    if (jobs.empty())
        return results;

    // Create the run directory tree once, from the main thread,
    // before any worker races to write into it.
    opt_.artifacts.prepare();

    // Stats files are numbered by overall submission order so repeated
    // runAll() batches on one runner never overwrite each other.
    const std::size_t index_base = statsIndexBase_;
    statsIndexBase_ += jobs.size();

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(workerCount(), jobs.size()));

    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::size_t> finished; // indices, completion order

    auto work = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            JobResult r = execute(jobs[i], index_base + i);
            {
                std::lock_guard<std::mutex> lock(mu);
                results[i] = std::move(r);
                finished.push_back(i);
            }
            cv.notify_one();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(work);

    // The main thread owns all progress output; workers only enqueue
    // completion notices.
    std::FILE *stream =
        opt_.progressStream ? opt_.progressStream : stderr;
    const auto start = std::chrono::steady_clock::now();
    std::size_t done = 0;
    while (done < jobs.size()) {
        std::size_t idx;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return !finished.empty(); });
            idx = finished.front();
            finished.pop_front();
        }
        ++done;
        if (opt_.progress) {
            const JobResult &r = results[idx];
            const double elapsed = std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() -
                                       start)
                                       .count();
            const double eta =
                elapsed / static_cast<double>(done) *
                static_cast<double>(jobs.size() - done);
            std::string what = r.label.empty()
                                   ? r.workload
                                   : r.label + "/" + r.workload;
            if (r.ok) {
                // Sim-time-per-wall-second: the rate the ROADMAP's
                // raw-speed goal is steered by.
                const double sim_ms =
                    static_cast<double>(r.result.simulatedPs) / 1e9;
                std::fprintf(
                    stream,
                    "[%3zu/%zu] %-28s wall %6.2fs  sim %8.3fms  "
                    "(%6.2f ms/s)  ETA %4.0fs\n",
                    done, jobs.size(), what.c_str(), r.wallSeconds,
                    sim_ms,
                    r.wallSeconds > 0 ? sim_ms / r.wallSeconds : 0.0,
                    eta);
            } else {
                std::fprintf(stream, "[%3zu/%zu] %-28s FAILED: %s\n",
                             done, jobs.size(), what.c_str(),
                             r.error.c_str());
            }
            std::fflush(stream);
        }
    }

    for (auto &t : pool)
        t.join();
    return results;
}

std::string
serializeRunResult(const RunResult &r)
{
    std::string out;
    char buf[128];
    auto field = [&](const char *name, const char *fmt, auto value) {
        std::snprintf(buf, sizeof(buf), fmt, value);
        out += name;
        out += '=';
        out += buf;
        out += '\n';
    };
    field("workload", "%s", r.workload.c_str());
    field("mechanism", "%s", r.mechanism.c_str());
    field("ammatNs", "%a", r.ammatNs); // hex float: bit-exact
    // Only sampled runs carry these; detailed baselines stay stable.
    if (r.sampled) {
        field("sampledAmmatNs", "%a", r.sampledAmmatNs);
        field("sampledCiNs", "%a", r.sampledCiNs);
        field("sampleWindows", "%llu",
              static_cast<unsigned long long>(r.sampleWindows));
    }
    field("demandRequests", "%llu",
          static_cast<unsigned long long>(r.demandRequests));
    field("completed", "%llu",
          static_cast<unsigned long long>(r.completed));
    field("fastServiceFraction", "%a", r.fastServiceFraction);
    field("rowHitRate", "%a", r.rowHitRate);
    field("rowHitRateFast", "%a", r.rowHitRateFast);
    field("simulatedPs", "%llu",
          static_cast<unsigned long long>(r.simulatedPs));
    field("eventsExecuted", "%llu",
          static_cast<unsigned long long>(r.eventsExecuted));
    field("migrations", "%llu",
          static_cast<unsigned long long>(r.migration.migrations));
    field("bytesMoved", "%llu",
          static_cast<unsigned long long>(r.migration.bytesMoved));
    field("intervals", "%llu",
          static_cast<unsigned long long>(r.migration.intervals));
    field("blockedRequests", "%llu",
          static_cast<unsigned long long>(r.migration.blockedRequests));
    field("metaCacheHits", "%llu",
          static_cast<unsigned long long>(r.migration.metaCacheHits));
    field("metaCacheMisses", "%llu",
          static_cast<unsigned long long>(r.migration.metaCacheMisses));
    field("candidatesSkipped", "%llu",
          static_cast<unsigned long long>(r.migration.candidatesSkipped));
    field("wastedMigrations", "%llu",
          static_cast<unsigned long long>(r.migration.wastedMigrations));
    field("demandFast", "%llu",
          static_cast<unsigned long long>(r.memStats.demandFast));
    field("demandSlow", "%llu",
          static_cast<unsigned long long>(r.memStats.demandSlow));
    field("migrationFast", "%llu",
          static_cast<unsigned long long>(r.memStats.migrationFast));
    field("migrationSlow", "%llu",
          static_cast<unsigned long long>(r.memStats.migrationSlow));
    field("bookkeepingFast", "%llu",
          static_cast<unsigned long long>(r.memStats.bookkeepingFast));
    field("bookkeepingSlow", "%llu",
          static_cast<unsigned long long>(r.memStats.bookkeepingSlow));
    field("podLocalMigrations", "%d", r.podLocalMigrations ? 1 : 0);
    field("blockedPs", "%llu",
          static_cast<unsigned long long>(r.migration.blockedPs));
    field("metadataPs", "%llu",
          static_cast<unsigned long long>(r.migration.metadataPs));
    field("attribution.mshrWaitNs", "%a", r.attribution.mshrWaitNs);
    field("attribution.metadataNs", "%a", r.attribution.metadataNs);
    field("attribution.blockedNs", "%a", r.attribution.blockedNs);
    field("attribution.queueWaitNs", "%a", r.attribution.queueWaitNs);
    field("attribution.serviceNs", "%a", r.attribution.serviceNs);
    field("latencyP50Ns", "%a", r.latency.p50Ns);
    field("latencyP95Ns", "%a", r.latency.p95Ns);
    field("latencyP99Ns", "%a", r.latency.p99Ns);
    for (double a : r.perCoreAmmatNs)
        field("perCoreAmmatNs", "%a", a);
    for (const LatencyPercentiles &lp : r.perCoreLatency) {
        field("perCoreLatencyP50Ns", "%a", lp.p50Ns);
        field("perCoreLatencyP95Ns", "%a", lp.p95Ns);
        field("perCoreLatencyP99Ns", "%a", lp.p99Ns);
    }
    return out;
}

} // namespace mempod
