#include "sim/parallel.h"

#include <algorithm>

#include "common/log.h"
#include "mem/memory_system.h"

namespace mempod {

ParallelExecutor::ParallelExecutor(EventQueue &coordinator,
                                   std::size_t num_channels,
                                   unsigned shards, TimePs lookahead_ps,
                                   TimePs sample_period_ps)
    : coord_(coordinator),
      shards_(std::min<unsigned>(std::max(shards, 1u),
                                 static_cast<unsigned>(num_channels))),
      lookahead_(lookahead_ps),
      samplePeriod_(sample_period_ps)
{
    MEMPOD_ASSERT(num_channels > 0, "executor needs at least one channel");
    MEMPOD_ASSERT(lookahead_ > 0,
                  "conservative execution needs positive lookahead");
    lanes_.reserve(num_channels);
    for (std::size_t i = 0; i < num_channels; ++i) {
        auto lane = std::make_unique<Lane>();
        lane->q.setHomeDomain(static_cast<DomainId>(1 + i));
        lane->q.routeCrossDomain(true);
        lanes_.push_back(std::move(lane));
    }
    workers_.reserve(shards_);
    for (unsigned s = 0; s < shards_; ++s)
        workers_.emplace_back(&ParallelExecutor::workerLoop, this, s);
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        shutdown_ = true;
    }
    cvWork_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

std::vector<EventQueue *>
ParallelExecutor::channelQueues()
{
    std::vector<EventQueue *> qs;
    qs.reserve(lanes_.size());
    for (auto &lane : lanes_)
        qs.push_back(&lane->q);
    return qs;
}

EventQueue &
ParallelExecutor::channelQueue(std::size_t ch)
{
    return lanes_[ch]->q;
}

void
ParallelExecutor::bindChannels(MemorySystem &mem)
{
    MEMPOD_ASSERT(mem.numChannels() == lanes_.size(),
                  "executor lanes (%zu) != memory channels (%zu)",
                  lanes_.size(), mem.numChannels());
    for (std::size_t i = 0; i < lanes_.size(); ++i)
        lanes_[i]->chan = &mem.channel(i);
}

void
ParallelExecutor::enableTracing(const TracerConfig &cfg)
{
    coordStaging_ = std::make_unique<Tracer>(cfg, /*staging=*/true);
    coord_.setTracer(coordStaging_.get());
    for (auto &lane : lanes_) {
        lane->staging = std::make_unique<Tracer>(cfg, /*staging=*/true);
        lane->q.setTracer(lane->staging.get());
    }
}

void
ParallelExecutor::absorbTraces(Tracer &master)
{
    std::vector<Tracer *> staged;
    if (coordStaging_)
        staged.push_back(coordStaging_.get());
    for (auto &lane : lanes_)
        if (lane->staging)
            staged.push_back(lane->staging.get());
    master.absorb(staged);
}

void
ParallelExecutor::dispatch(std::size_t ch, Request req, ChannelAddr where)
{
    // Called from MemorySystem::access inside a coordinator event (the
    // workers are parked, so the inbox append is single-threaded). The
    // calling event's key positions the enqueue in the lane's merged
    // order; the reserved key replays the counter the serial kernel's
    // inline scheduleTick would have consumed at this very call.
    Lane &lane = *lanes_[ch];
    lane.inbox.push_back(Delivery{coord_.currentKey(), coord_.reserveKey(),
                                  std::move(req), where});
}

void
ParallelExecutor::applyDelivery(Lane &lane, Delivery &d)
{
    lane.q.beginApply(d.pos.when, d.reserved);
    lane.chan->enqueue(std::move(d.req), d.where);
    lane.q.endApply();
}

void
ParallelExecutor::runLane(Lane &lane, const EventKey &bound)
{
    // Merge the lane's own wheel with its inbox in canonical key
    // order. Inbox entries are already pos-sorted (appended while the
    // coordinator executed in key order), and every pos precedes the
    // window bound by construction.
    for (;;) {
        EventKey qk;
        const bool have_ev = lane.q.peekNextKey(qk);
        if (lane.inboxPos < lane.inbox.size()) {
            const Delivery &d = lane.inbox[lane.inboxPos];
            MEMPOD_ASSERT(d.pos < bound,
                          "inbox delivery beyond the window bound");
            if (!have_ev || d.pos < qk) {
                applyDelivery(lane, lane.inbox[lane.inboxPos]);
                ++lane.inboxPos;
                continue;
            }
        }
        if (!have_ev || !(qk < bound))
            break;
        lane.q.runOne();
    }
    if (lane.inboxPos == lane.inbox.size()) {
        lane.inbox.clear();
        lane.inboxPos = 0;
    }
}

void
ParallelExecutor::workerLoop(unsigned shard)
{
    // Generation-counted barrier: every hand-off of lane state between
    // the coordinator and this worker goes through mu_, so phase
    // transitions are happens-before edges and the lanes themselves
    // need no synchronization. The same applies to the perf lanes:
    // pm_ is read and this shard's accumulators are written only with
    // mu_ held, so host profiling adds no new synchronization — and
    // the stall/busy clock reads happen only when a monitor is
    // attached (`pm` snapshot below), so a disabled run pays one
    // pointer test per window.
    std::unique_lock<std::mutex> lk(mu_);
    std::uint64_t seen = 0;
    for (;;) {
        // Snapshot pm_ so the stall start and end reads agree even if
        // setPerf lands mid-wait (that first park is setup time, not a
        // window barrier, and is deliberately not counted).
        PerfMonitor *const pm = pm_;
        const std::uint64_t stall0 = pm ? perfNowNs() : 0;
        cvWork_.wait(lk, [&] { return shutdown_ || gen_ != seen; });
        if (pm)
            pm->shard(shard).stallNs += perfNowNs() - stall0;
        if (shutdown_)
            return;
        seen = gen_;
        const EventKey bound = bound_;
        lk.unlock();
        const std::uint64_t busy0 = pm ? perfNowNs() : 0;
        for (std::size_t i = shard; i < lanes_.size(); i += shards_)
            runLane(*lanes_[i], bound);
        const std::uint64_t busy_ns = pm ? perfNowNs() - busy0 : 0;
        lk.lock();
        if (pm)
            pm->shard(shard).busyNs += busy_ns;
        if (--pending_ == 0)
            cvDone_.notify_one();
    }
}

void
ParallelExecutor::runPhaseB(const EventKey &bound)
{
    std::unique_lock<std::mutex> lk(mu_);
    bound_ = bound;
    pending_ = shards_;
    ++gen_;
    cvWork_.notify_all();
    cvDone_.wait(lk, [&] { return pending_ == 0; });
    for (auto &lane : lanes_)
        MEMPOD_ASSERT(lane->inboxPos == 0 && lane->inbox.empty(),
                      "inbox not fully consumed by phase B");
}

void
ParallelExecutor::mergeOutboxes(TimePs window_end)
{
    for (auto &lane : lanes_) {
        for (EventQueue::CrossEvent &e : lane->q.outbox()) {
            MEMPOD_ASSERT(e.target == EventQueue::kCoordinatorDomain,
                          "outbox event targets a non-coordinator domain");
            // The horizon invariant: everything a channel sends back is
            // at least one lookahead past the window start, i.e. at or
            // beyond the bound every phase-A event executed under. A
            // violation means the lookahead overstates the true minimum
            // cross-domain latency — panic rather than reorder.
            MEMPOD_ASSERT(
                e.key.when >= window_end,
                "horizon violation: completion at %llu inside window "
                "ending %llu (lookahead %llu ps overstates the minimum "
                "channel->coordinator latency)",
                static_cast<unsigned long long>(e.key.when),
                static_cast<unsigned long long>(window_end),
                static_cast<unsigned long long>(lookahead_));
            if (pm_) {
                // How close the completion came to piercing the
                // horizon; min over the run is the near-miss gauge.
                const std::uint64_t slack = e.key.when - window_end;
                slackHist_->sample(slack);
                if (slack < minSlack_)
                    minSlack_ = slack;
            }
            coord_.admitForeign(EventQueue::kCoordinatorDomain, e.key,
                                std::move(e.cb));
        }
        lane->q.outbox().clear();
    }
}

ParallelExecutor::Step
ParallelExecutor::boundaryStep(TimePs t)
{
    // Sampler instant: the interval sampler reads channel counters
    // from a coordinator event, so every event at exactly `t` must
    // execute in global canonical order on one thread. Deliveries
    // created mid-step (a coordinator event at `t` enqueueing on a
    // channel) are merged at their position like any other event.
    ++samplerSyncs_;
    const EventKey bound{t + 1, 0, 0};
    for (;;) {
        enum class What
        {
            kNone,
            kCoord,
            kLaneEvent,
            kLaneDelivery,
        };
        What what = What::kNone;
        EventKey best{};
        std::size_t bi = 0;
        EventKey k;
        if (coord_.peekNextKey(k) && k < bound) {
            what = What::kCoord;
            best = k;
        }
        for (std::size_t i = 0; i < lanes_.size(); ++i) {
            Lane &lane = *lanes_[i];
            if (lane.inboxPos < lane.inbox.size()) {
                const EventKey &dk = lane.inbox[lane.inboxPos].pos;
                if (dk < bound &&
                    (what == What::kNone || dk < best)) {
                    what = What::kLaneDelivery;
                    best = dk;
                    bi = i;
                }
            }
            if (lane.q.peekNextKey(k) && k < bound &&
                (what == What::kNone || k < best)) {
                what = What::kLaneEvent;
                best = k;
                bi = i;
            }
        }
        if (what == What::kNone)
            break;
        switch (what) {
          case What::kCoord:
            coord_.runOne();
            if (drained_ && drained_()) {
                finished_ = true;
                return Step::kFinished;
            }
            break;
          case What::kLaneEvent:
            lanes_[bi]->q.runOne();
            break;
          case What::kLaneDelivery:
            applyDelivery(*lanes_[bi], lanes_[bi]->inbox[lanes_[bi]->inboxPos]);
            ++lanes_[bi]->inboxPos;
            break;
          case What::kNone:
            break;
        }
    }
    for (auto &lane : lanes_) {
        MEMPOD_ASSERT(lane->inboxPos == lane->inbox.size(),
                      "boundary step left an unapplied delivery");
        lane->inbox.clear();
        lane->inboxPos = 0;
    }
    mergeOutboxes(t + 1);
    ++windows_;
    return Step::kWindow;
}

ParallelExecutor::Step
ParallelExecutor::runWindow()
{
    if (finished_)
        return Step::kFinished;
    if (drained_ && drained_()) {
        finished_ = true;
        return Step::kFinished;
    }

    // Window start: the earliest pending instant anywhere. Inboxes and
    // outboxes are empty between windows, so the queues are the whole
    // picture; idle stretches are skipped in one hop.
    TimePs w = coord_.nextTime();
    for (auto &lane : lanes_)
        w = std::min(w, lane->q.nextTime());
    if (w == kTimeNever)
        return Step::kIdle;

    if (samplePeriod_ > 0 && w > 0 && w % samplePeriod_ == 0) {
        lastWindowStart_ = w;
        lastWindowEnd_ = w + 1;
        return boundaryStep(w);
    }

    // Horizon: one lookahead past the start, clipped so no window ever
    // straddles a sampler instant (those become boundary steps).
    TimePs e = w + lookahead_;
    if (samplePeriod_ > 0)
        e = std::min(e, (w / samplePeriod_ + 1) * samplePeriod_);
    lastWindowStart_ = w;
    lastWindowEnd_ = e;
    const EventKey bound{e, 0, 0};

    // Phase A: coordinator events below the horizon. Every enqueue they
    // issue is deferred into a lane inbox at the calling event's key.
    EventKey k;
    while (coord_.peekNextKey(k) && k < bound) {
        coord_.runOne();
        if (drained_ && drained_()) {
            // The terminating event is always a coordinator event (the
            // predicate can only flip there). Channels still owe the
            // events the serial kernel executed before it: one final
            // pass bounded just past the terminating key settles them.
            // No completion can emerge (drained => nothing in flight)
            // and no delivery can be pending (a pending delivery means
            // in-flight work), so the ledger closes exactly here.
            const EventKey kt = coord_.currentKey();
            runPhaseB(EventKey{kt.when, kt.schedTime, kt.ord + 1});
            finished_ = true;
            ++windows_;
            return Step::kFinished;
        }
    }

    // Phase B: every lane runs its wheel merged with its inbox up to
    // the same bound, on the worker threads.
    runPhaseB(bound);

    // Barrier: completions the lanes produced are all at or beyond the
    // horizon (asserted) and merge into the coordinator's wheel under
    // the canonical comparator.
    mergeOutboxes(e);
    ++windows_;
    return Step::kWindow;
}

std::uint64_t
ParallelExecutor::totalExecuted() const
{
    std::uint64_t n = coord_.executed();
    for (const auto &lane : lanes_)
        n += lane->q.executed();
    return n;
}

std::vector<std::uint64_t>
ParallelExecutor::perDomainExecuted() const
{
    std::vector<std::uint64_t> out;
    out.reserve(1 + lanes_.size());
    out.push_back(coord_.executed());
    for (const auto &lane : lanes_)
        out.push_back(lane->q.executed());
    return out;
}

void
ParallelExecutor::setPerf(PerfMonitor *pm)
{
    // Under mu_ so parked workers observe the pointer (and the sized
    // shard lanes) at their next wakeup, never mid-window.
    std::lock_guard<std::mutex> lk(mu_);
    pm_ = pm;
    slackHist_ = nullptr;
    if (pm_ != nullptr) {
        pm_->resizeShards(shards_);
        slackHist_ = &pm_->histogram("exec.lookahead_slack_ps");
    }
}

std::uint64_t
ParallelExecutor::perShardExecuted(unsigned s) const
{
    std::uint64_t n = 0;
    for (std::size_t i = s; i < lanes_.size(); i += shards_)
        n += lanes_[i]->q.executed();
    return n;
}

} // namespace mempod
