#include "sim/simulation.h"

#include <algorithm>

#include "common/log.h"
#include "mem/manager_factory.h"

namespace mempod {

TimePs
Simulation::lookaheadPs(const SimConfig &config)
{
    const auto tier_min = [](const DramSpec &s) {
        return std::min(s.timing.tCL, s.timing.tCWL) + s.timing.tBL;
    };
    TimePs l = tier_min(config.near);
    if (config.geom.slowChannels > 0)
        l = std::min(l, tier_min(config.far));
    return l + config.extraLatencyPs;
}

double
Simulation::benefitPerTouchNs(const SimConfig &config)
{
    const auto access_ps = [](const DramSpec &s) {
        return static_cast<double>(s.timing.tRCD + s.timing.tCL +
                                   s.timing.tBL);
    };
    return (access_ps(config.far) - access_ps(config.near)) / 1000.0;
}

Simulation::Simulation(const SimConfig &config) : config_(config)
{
    if (config_.perfEnabled)
        perf_ = std::make_unique<PerfMonitor>();
    PerfScope setup_scope(perf_.get(), "setup");

    config_.geom.validate();
    if (config_.dramModel == DramModel::kFunctional) {
        MEMPOD_PANIC("dram.model=functional is not a measurement "
                     "model; use it as sim.sampling.fastfwd_model");
    }
    if (config_.sampling.enabled && config_.shards > 0 &&
        config_.sampling.fastfwdModel == DramModel::kFunctional) {
        MEMPOD_PANIC(
            "sampled simulation with the functional fast-forward "
            "model requires the serial kernel (sim.shards=0): "
            "functional completions run frontend and manager code "
            "synchronously inside the channel lane");
    }
    if (config_.shards > 0) {
        const std::size_t channels =
            config_.geom.fastChannels + config_.geom.slowChannels;
        exec_ = std::make_unique<ParallelExecutor>(
            eq_, channels, config_.shards, lookaheadPs(config_),
            config_.statsIntervalPs);
    }
    if (config_.tracer.enabled) {
        tracer_ = std::make_unique<Tracer>(config_.tracer);
        if (exec_) {
            // Sharded: records stage per domain, stamped with their
            // event's canonical key; absorbed into the master after the
            // run in serial emission order (byte-identical JSON).
            exec_->enableTracing(config_.tracer);
        } else {
            eq_.setTracer(tracer_.get());
        }
    }
    ShardPlan plan;
    if (exec_) {
        plan.channelQueues = exec_->channelQueues();
        plan.dispatch = [ex = exec_.get()](std::size_t ch, Request req,
                                           ChannelAddr where) {
            ex->dispatch(ch, std::move(req), where);
        };
    }
    ModelPlan models;
    models.primary = config_.dramModel;
    models.warmEnabled = config_.sampling.enabled;
    models.warm = config_.sampling.fastfwdModel;
    mem_ = std::make_unique<MemorySystem>(eq_, config_.geom, config_.near,
                                          config_.far,
                                          config_.extraLatencyPs,
                                          config_.controller,
                                          exec_ ? &plan : nullptr,
                                          models);
    if (exec_)
        exec_->bindChannels(*mem_);
    placement_ = std::make_unique<LogicalToPhysical>(
        config_.geom.totalPages(), config_.numCores,
        config_.placementSeed);

    manager_ = ManagerFactory::build(config_, eq_, *mem_);

    frontend_ = std::make_unique<TraceFrontend>(
        eq_, *manager_, *placement_, config_.maxOutstanding);

    // Mechanisms whose bookkeeping pauses the cores (HMA's epoch sort)
    // override the hook; for everyone else this is a no-op.
    manager_->setCoreStallHook(
        [this](TimePs duration) { frontend_->suspendCores(duration); });

    // Decision epochs use the MemPod interval uniformly, so ledgers
    // from different mechanisms line up when compared.
    const TimePs epoch_ps = std::max<TimePs>(config_.mempod.interval, 1);
    if (config_.decisionsEnabled) {
        decisions_ = std::make_unique<DecisionLog>(
            epoch_ps, benefitPerTouchNs(config_));
        manager_->setDecisionLog(decisions_.get());
    }
    if (config_.validateEnabled) {
        validator_ = std::make_unique<InvariantChecker>(
            config_, *frontend_, *mem_, *manager_, decisions_.get(),
            epoch_ps);
    }
    if (config_.sampling.enabled) {
        fidelity_ = std::make_unique<FidelityController>(
            eq_, *mem_, *frontend_, config_.sampling,
            config_.dramModel);
    }

    registerAllMetrics();

    if (exec_)
        exec_->setPerf(perf_.get());
}

void
Simulation::registerAllMetrics()
{
    registry_.addCounterFn("sim.events_executed",
                           "events executed by the queue",
                           [this] {
                               return exec_ ? exec_->totalExecuted()
                                            : eq_.executed();
                           });
    mem_->registerMetrics(registry_);
    manager_->registerMetrics(registry_);
    frontend_->registerMetrics(registry_, config_.numCores);
    if (config_.statsIntervalPs > 0) {
        sampler_ = std::make_unique<IntervalSampler>(
            eq_, registry_, config_.statsIntervalPs);
    }
}

Simulation::~Simulation() = default;

RunResult
Simulation::run(const Trace &trace, const std::string &workload_name)
{
    VectorTraceSource source(trace);
    return run(source, workload_name);
}

RunResult
Simulation::run(TraceSource &source, const std::string &workload_name)
{
    PerfScope run_scope(perf_.get(), "run");
    const std::uint64_t trace_records = source.size();
    frontend_->setSource(source);
    manager_->start();
    frontend_->start();
    if (sampler_)
        sampler_->start();
    if (fidelity_)
        fidelity_->begin();

    auto drained = [&] {
        return frontend_->done() && mem_->inFlight() == 0 &&
               manager_->pendingWork() == 0;
    };
    // Heartbeat progress lines (stderr; stdout stays byte-identical):
    // a cheap countdown amortizes the wall-clock reads, then the
    // monitor rate-limits actual printing to one line per 5 s.
    constexpr std::uint64_t kHeartbeatStride = 4096;
    std::uint64_t hb_countdown = kHeartbeatStride;
    const auto heartbeat = [&] {
        if (!perf_) // disabled: one branch per progress check
            return;
        if (--hb_countdown != 0)
            return;
        hb_countdown = kHeartbeatStride;
        if (!perf_->heartbeatDue(5'000'000'000ull))
            return;
        const double wall =
            static_cast<double>(perfNowNs() - perf_->startNs()) / 1e9;
        const std::uint64_t events =
            exec_ ? exec_->totalExecuted() : eq_.executed();
        const std::uint64_t done_n = frontend_->completed();
        const double frac =
            trace_records ? static_cast<double>(done_n) /
                                static_cast<double>(trace_records)
                          : 0.0;
        const double sim_ms = static_cast<double>(eq_.now()) / 1e9;
        std::fprintf(
            stderr,
            "[perf]%s%s sim %.3f ms | %llu/%llu demands | %.2f M ev/s | "
            "%.2f ms sim/s | ETA %.0f s\n",
            workload_name.empty() ? "" : " ",
            workload_name.c_str(), sim_ms,
            static_cast<unsigned long long>(done_n),
            static_cast<unsigned long long>(trace_records),
            wall > 0 ? static_cast<double>(events) / wall / 1e6 : 0.0,
            wall > 0 ? sim_ms / wall : 0.0,
            frac > 0.0 ? wall * (1.0 - frac) / frac : 0.0);
        std::fflush(stderr);
    };
    // Watchdog: recurring timers keep the queue non-empty forever, so
    // a stuck drain would otherwise spin silently. One simulated
    // second without any forward progress is a bug.
    std::uint64_t last_progress = 0;
    TimePs progress_at = 0;
    const auto check_progress = [&] {
        // Timer self-rescheduling executes events without advancing
        // the workload; only demand completions count as progress.
        const std::uint64_t progress = frontend_->completed();
        if (progress != last_progress || progress_at == 0) {
            last_progress = progress;
            progress_at = eq_.now();
        } else if (eq_.now() > progress_at + 1'000'000'000'000ull) {
            MEMPOD_PANIC("simulation livelock: no progress for 1 s of "
                         "simulated time (pending=%llu)",
                         static_cast<unsigned long long>(
                             manager_->pendingWork()));
        }
        // Read-only conservation checks, self-rate-limited to one pass
        // per epoch of *simulated* time — the serial and sharded loops
        // call at different real cadences, but a read-and-panic probe
        // cannot perturb any output either way.
        if (validator_)
            validator_->periodicCheck(eq_.now());
        heartbeat();
    };
    const auto panic_deadlock = [&] {
        MEMPOD_PANIC(
            "simulation deadlock: frontend done=%d inflight=%llu "
            "managerPending=%llu",
            frontend_->done() ? 1 : 0,
            static_cast<unsigned long long>(mem_->inFlight()),
            static_cast<unsigned long long>(manager_->pendingWork()));
    };
    if (exec_) {
        exec_->setDrained(drained);
        for (;;) {
            const ParallelExecutor::Step step = exec_->runWindow();
            if (step == ParallelExecutor::Step::kFinished)
                break;
            if (step == ParallelExecutor::Step::kIdle)
                panic_deadlock();
            check_progress();
        }
        if (tracer_)
            exec_->absorbTraces(*tracer_);
    } else {
        while (!drained()) {
            if (!eq_.runOne())
                panic_deadlock();
            check_progress();
        }
    }

    if (sampler_)
        sampler_->finalize(eq_.now());
    finalSnapshot_ = registry_.snapshot(eq_.now());
    // "run" ends when the queue drains; derivation below is "report".
    run_scope.close();
    PerfScope report_scope(perf_.get(), "report");

    // The RunResult is *derived from the snapshot* so the registry
    // export and the printed tables can never disagree. Every gauge
    // below reads the exact function the old direct path called, so
    // the derivation is bit-identical.
    const MetricSnapshot &s = finalSnapshot_;
    RunResult r;
    r.workload = workload_name;
    r.mechanism = manager_->name();
    r.ammatNs = s.real("frontend.ammat_ps") / 1000.0;
    r.demandRequests = trace_records;
    r.completed = s.u64("frontend.completed");
    const std::uint64_t demand_fast = s.u64("mem.demand_fast");
    const std::uint64_t demand_total =
        demand_fast + s.u64("mem.demand_slow");
    r.fastServiceFraction =
        demand_total
            ? static_cast<double>(demand_fast) / demand_total
            : 0.0;
    r.rowHitRate = s.real("mem.row_hit_rate");
    r.rowHitRateFast = s.real("mem.fast.row_hit_rate");
    r.simulatedPs = s.simTimePs;
    r.eventsExecuted = s.u64("sim.events_executed");
    r.migration.migrations = s.u64("migration.migrations");
    r.migration.bytesMoved = s.u64("migration.bytes_moved");
    r.migration.blockedRequests = s.u64("migration.blocked_requests");
    r.migration.intervals = s.u64("migration.intervals");
    r.migration.candidatesSkipped = s.u64("migration.candidates_skipped");
    r.migration.wastedMigrations = s.u64("migration.wasted");
    r.migration.metaCacheHits = s.u64("migration.meta_cache_hits");
    r.migration.metaCacheMisses = s.u64("migration.meta_cache_misses");
    r.migration.blockedPs = s.u64("migration.blocked_ps");
    r.migration.metadataPs = s.u64("migration.metadata_ps");
    r.memStats.demandFast = demand_fast;
    r.memStats.demandSlow = s.u64("mem.demand_slow");
    r.memStats.migrationFast = s.u64("mem.migration_fast");
    r.memStats.migrationSlow = s.u64("mem.migration_slow");
    r.memStats.bookkeepingFast = s.u64("mem.bookkeeping_fast");
    r.memStats.bookkeepingSlow = s.u64("mem.bookkeeping_slow");
    r.podLocalMigrations = config_.mechanism == Mechanism::kMemPod;

    // AMMAT attribution: the per-stage picosecond sums partition every
    // completed demand's arrival-to-finish interval, so dividing by the
    // AMMAT denominator (the trace length) makes them sum to ammatNs.
    if (trace_records != 0) {
        const double denom =
            static_cast<double>(trace_records) * 1000.0; // ps -> ns
        r.attribution.mshrWaitNs =
            static_cast<double>(s.u64("frontend.mshr_wait_ps")) / denom;
        r.attribution.metadataNs =
            static_cast<double>(s.u64("migration.metadata_ps")) / denom;
        r.attribution.blockedNs =
            static_cast<double>(s.u64("migration.blocked_ps")) / denom;
        r.attribution.queueWaitNs =
            static_cast<double>(s.u64("mem.demand_queue_wait_ps")) /
            denom;
        r.attribution.serviceNs =
            static_cast<double>(s.u64("mem.demand_service_ps")) / denom;
    }
    r.latency.p50Ns = s.real("frontend.latency_p50_ns");
    r.latency.p95Ns = s.real("frontend.latency_p95_ns");
    r.latency.p99Ns = s.real("frontend.latency_p99_ns");

    if (fidelity_) {
        fidelity_->finish();
        const WindowStats &w = fidelity_->windowStats();
        r.sampled = true;
        r.sampledAmmatNs = w.mean() / 1000.0;
        r.sampledCiNs = w.ciHalfWidth() / 1000.0;
        r.sampleWindows = w.count();
    }

    // Per-core metrics are registered for [0, numCores); a trace with
    // out-of-range core ids still gets its AMMAT from the frontend.
    const std::size_t cores_seen = frontend_->coresSeen();
    for (std::size_t c = 0; c < cores_seen; ++c) {
        const std::string cp = "core" + std::to_string(c);
        if (s.has(cp + ".ammat_ps")) {
            r.perCoreAmmatNs.push_back(s.real(cp + ".ammat_ps") /
                                       1000.0);
        } else {
            r.perCoreAmmatNs.push_back(frontend_->perCoreAmmatPs()[c] /
                                       1000.0);
        }
        LatencyPercentiles lp;
        if (s.has(cp + ".latency_p50_ns")) {
            lp.p50Ns = s.real(cp + ".latency_p50_ns");
            lp.p95Ns = s.real(cp + ".latency_p95_ns");
            lp.p99Ns = s.real(cp + ".latency_p99_ns");
        } else if (const Log2Histogram *h =
                       frontend_->coreLatencyHistogramNs(c)) {
            lp.p50Ns = static_cast<double>(h->percentile(0.50));
            lp.p95Ns = static_cast<double>(h->percentile(0.95));
            lp.p99Ns = static_cast<double>(h->percentile(0.99));
        }
        r.perCoreLatency.push_back(lp);
    }

    // End-of-run audit over the fully assembled result (includes the
    // paranoid-depth mechanism scan; the run is over, so it is free).
    if (validator_)
        validator_->finalCheck(r);

    report_scope.close();
    collectPerf(r);
    return r;
}

void
Simulation::collectPerf(const RunResult &r)
{
    if (!perf_)
        return;
    PerfMonitor &pm = *perf_;

    // Timing-wheel mechanics, summed over the coordinator and (when
    // sharded) every lane wheel. All deterministic sim-side counts.
    const auto add_eq = [&pm](const EventQueue &q) {
        const EventQueue::HostStats &h = q.hostStats();
        for (unsigned l = 0; l < EventQueue::kWheels; ++l)
            pm.counterAdd("eq.placed_level" + std::to_string(l),
                          h.placedAtLevel[l]);
        pm.counterAdd("eq.front_spills", h.frontSpills);
        pm.counterAdd("eq.drain_inserts", h.drainInserts);
        pm.counterAdd("eq.list_allocs", h.listAllocs);
        pm.counterAdd("eq.list_reuses", h.listReuses);
        pm.counterMax("eq.peak_pending", h.peakPending);
        pm.counterAdd("eq.cascades", q.cascades());
        pm.counterAdd("eq.ladder_deferred", q.ladderDeferred());
    };
    add_eq(eq_);
    if (exec_) {
        for (std::size_t i = 0; i < exec_->numLanes(); ++i)
            add_eq(exec_->channelQueue(i));
        const std::vector<std::uint64_t> dom = exec_->perDomainExecuted();
        for (std::size_t d = 0; d < dom.size(); ++d)
            pm.counterAdd("eq.domain" + std::to_string(d) + ".executed",
                          dom[d]);
    } else {
        pm.counterAdd("eq.domain0.executed", eq_.executed());
    }
    // FR-FCFS arbiter density across every channel controller.
    std::uint64_t ticks = 0, arb = 0, issued = 0, work_banks = 0;
    for (std::size_t ch = 0; ch < mem_->numChannels(); ++ch) {
        const Channel::HostStats &h = mem_->channel(ch).hostStats();
        ticks += h.ticks;
        arb += h.arbPasses;
        issued += h.issued;
        work_banks += h.workBanks;
    }
    pm.counterAdd("channel.ticks", ticks);
    pm.counterAdd("channel.arb_passes", arb);
    pm.counterAdd("channel.issued", issued);
    pm.gaugeSet("channel.work_bank_density",
                arb ? static_cast<double>(work_banks) /
                          static_cast<double>(arb)
                    : 0.0);

    // Executor health: shard event ledger, horizon near-miss, and the
    // work-imbalance ratio (busiest shard / mean).
    if (exec_) {
        std::uint64_t max_ev = 0, sum_ev = 0;
        for (unsigned s = 0; s < exec_->shards(); ++s) {
            const std::uint64_t ev = exec_->perShardExecuted(s);
            pm.shard(s).events = ev;
            max_ev = std::max(max_ev, ev);
            sum_ev += ev;
        }
        const double mean =
            static_cast<double>(sum_ev) /
            static_cast<double>(std::max(1u, exec_->shards()));
        pm.gaugeSet("exec.work_imbalance",
                    mean > 0 ? static_cast<double>(max_ev) / mean : 0.0);
        const std::uint64_t slack = exec_->minHorizonSlackPs();
        pm.gaugeSet("exec.horizon_min_slack_ps",
                    slack == ~std::uint64_t{0}
                        ? 0.0
                        : static_cast<double>(slack));
        pm.counterAdd("exec.sampler_syncs", exec_->samplerSyncs());
    }

    perfReport_ = pm.report(r.simulatedPs, r.eventsExecuted);
    perfReport_.windows = exec_ ? exec_->windows() : 0;
    havePerfReport_ = true;
}

RunResult
runSimulation(const SimConfig &config, const Trace &trace,
              const std::string &workload_name)
{
    Simulation sim(config);
    return sim.run(trace, workload_name);
}

RunResult
runSimulation(const SimConfig &config, TraceSource &source,
              const std::string &workload_name)
{
    Simulation sim(config);
    return sim.run(source, workload_name);
}

} // namespace mempod
