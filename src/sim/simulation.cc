#include "sim/simulation.h"

#include <algorithm>

#include "common/log.h"
#include "mem/manager_factory.h"

namespace mempod {

TimePs
Simulation::lookaheadPs(const SimConfig &config)
{
    const auto tier_min = [](const DramSpec &s) {
        return std::min(s.timing.tCL, s.timing.tCWL) + s.timing.tBL;
    };
    TimePs l = tier_min(config.near);
    if (config.geom.slowChannels > 0)
        l = std::min(l, tier_min(config.far));
    return l + config.extraLatencyPs;
}

Simulation::Simulation(const SimConfig &config) : config_(config)
{
    config_.geom.validate();
    if (config_.shards > 0) {
        const std::size_t channels =
            config_.geom.fastChannels + config_.geom.slowChannels;
        exec_ = std::make_unique<ParallelExecutor>(
            eq_, channels, config_.shards, lookaheadPs(config_),
            config_.statsIntervalPs);
    }
    if (config_.tracer.enabled) {
        tracer_ = std::make_unique<Tracer>(config_.tracer);
        if (exec_) {
            // Sharded: records stage per domain, stamped with their
            // event's canonical key; absorbed into the master after the
            // run in serial emission order (byte-identical JSON).
            exec_->enableTracing(config_.tracer);
        } else {
            eq_.setTracer(tracer_.get());
        }
    }
    ShardPlan plan;
    if (exec_) {
        plan.channelQueues = exec_->channelQueues();
        plan.dispatch = [ex = exec_.get()](std::size_t ch, Request req,
                                           ChannelAddr where) {
            ex->dispatch(ch, std::move(req), where);
        };
    }
    mem_ = std::make_unique<MemorySystem>(eq_, config_.geom, config_.near,
                                          config_.far,
                                          config_.extraLatencyPs,
                                          config_.controller,
                                          exec_ ? &plan : nullptr);
    if (exec_)
        exec_->bindChannels(*mem_);
    placement_ = std::make_unique<LogicalToPhysical>(
        config_.geom.totalPages(), config_.numCores,
        config_.placementSeed);

    manager_ = ManagerFactory::build(config_, eq_, *mem_);

    frontend_ = std::make_unique<TraceFrontend>(
        eq_, *manager_, *placement_, config_.maxOutstanding);

    // Mechanisms whose bookkeeping pauses the cores (HMA's epoch sort)
    // override the hook; for everyone else this is a no-op.
    manager_->setCoreStallHook(
        [this](TimePs duration) { frontend_->suspendCores(duration); });

    registerAllMetrics();
}

void
Simulation::registerAllMetrics()
{
    registry_.addCounterFn("sim.events_executed",
                           "events executed by the queue",
                           [this] {
                               return exec_ ? exec_->totalExecuted()
                                            : eq_.executed();
                           });
    mem_->registerMetrics(registry_);
    manager_->registerMetrics(registry_);
    frontend_->registerMetrics(registry_, config_.numCores);
    if (config_.statsIntervalPs > 0) {
        sampler_ = std::make_unique<IntervalSampler>(
            eq_, registry_, config_.statsIntervalPs);
    }
}

Simulation::~Simulation() = default;

RunResult
Simulation::run(const Trace &trace, const std::string &workload_name)
{
    frontend_->setTrace(trace);
    manager_->start();
    frontend_->start();
    if (sampler_)
        sampler_->start();

    auto drained = [&] {
        return frontend_->done() && mem_->inFlight() == 0 &&
               manager_->pendingWork() == 0;
    };
    // Watchdog: recurring timers keep the queue non-empty forever, so
    // a stuck drain would otherwise spin silently. One simulated
    // second without any forward progress is a bug.
    std::uint64_t last_progress = 0;
    TimePs progress_at = 0;
    const auto check_progress = [&] {
        // Timer self-rescheduling executes events without advancing
        // the workload; only demand completions count as progress.
        const std::uint64_t progress = frontend_->completed();
        if (progress != last_progress || progress_at == 0) {
            last_progress = progress;
            progress_at = eq_.now();
        } else if (eq_.now() > progress_at + 1'000'000'000'000ull) {
            MEMPOD_PANIC("simulation livelock: no progress for 1 s of "
                         "simulated time (pending=%llu)",
                         static_cast<unsigned long long>(
                             manager_->pendingWork()));
        }
    };
    const auto panic_deadlock = [&] {
        MEMPOD_PANIC(
            "simulation deadlock: frontend done=%d inflight=%llu "
            "managerPending=%llu",
            frontend_->done() ? 1 : 0,
            static_cast<unsigned long long>(mem_->inFlight()),
            static_cast<unsigned long long>(manager_->pendingWork()));
    };
    if (exec_) {
        exec_->setDrained(drained);
        for (;;) {
            const ParallelExecutor::Step step = exec_->runWindow();
            if (step == ParallelExecutor::Step::kFinished)
                break;
            if (step == ParallelExecutor::Step::kIdle)
                panic_deadlock();
            check_progress();
        }
        if (tracer_)
            exec_->absorbTraces(*tracer_);
    } else {
        while (!drained()) {
            if (!eq_.runOne())
                panic_deadlock();
            check_progress();
        }
    }

    if (sampler_)
        sampler_->finalize(eq_.now());
    finalSnapshot_ = registry_.snapshot(eq_.now());

    // The RunResult is *derived from the snapshot* so the registry
    // export and the printed tables can never disagree. Every gauge
    // below reads the exact function the old direct path called, so
    // the derivation is bit-identical.
    const MetricSnapshot &s = finalSnapshot_;
    RunResult r;
    r.workload = workload_name;
    r.mechanism = manager_->name();
    r.ammatNs = s.real("frontend.ammat_ps") / 1000.0;
    r.demandRequests = trace.size();
    r.completed = s.u64("frontend.completed");
    const std::uint64_t demand_fast = s.u64("mem.demand_fast");
    const std::uint64_t demand_total =
        demand_fast + s.u64("mem.demand_slow");
    r.fastServiceFraction =
        demand_total
            ? static_cast<double>(demand_fast) / demand_total
            : 0.0;
    r.rowHitRate = s.real("mem.row_hit_rate");
    r.rowHitRateFast = s.real("mem.fast.row_hit_rate");
    r.simulatedPs = s.simTimePs;
    r.eventsExecuted = s.u64("sim.events_executed");
    r.migration.migrations = s.u64("migration.migrations");
    r.migration.bytesMoved = s.u64("migration.bytes_moved");
    r.migration.blockedRequests = s.u64("migration.blocked_requests");
    r.migration.intervals = s.u64("migration.intervals");
    r.migration.candidatesSkipped = s.u64("migration.candidates_skipped");
    r.migration.wastedMigrations = s.u64("migration.wasted");
    r.migration.metaCacheHits = s.u64("migration.meta_cache_hits");
    r.migration.metaCacheMisses = s.u64("migration.meta_cache_misses");
    r.migration.blockedPs = s.u64("migration.blocked_ps");
    r.migration.metadataPs = s.u64("migration.metadata_ps");
    r.memStats.demandFast = demand_fast;
    r.memStats.demandSlow = s.u64("mem.demand_slow");
    r.memStats.migrationFast = s.u64("mem.migration_fast");
    r.memStats.migrationSlow = s.u64("mem.migration_slow");
    r.memStats.bookkeepingFast = s.u64("mem.bookkeeping_fast");
    r.memStats.bookkeepingSlow = s.u64("mem.bookkeeping_slow");
    r.podLocalMigrations = config_.mechanism == Mechanism::kMemPod;

    // AMMAT attribution: the per-stage picosecond sums partition every
    // completed demand's arrival-to-finish interval, so dividing by the
    // AMMAT denominator (the trace length) makes them sum to ammatNs.
    if (!trace.empty()) {
        const double denom =
            static_cast<double>(trace.size()) * 1000.0; // ps -> ns
        r.attribution.mshrWaitNs =
            static_cast<double>(s.u64("frontend.mshr_wait_ps")) / denom;
        r.attribution.metadataNs =
            static_cast<double>(s.u64("migration.metadata_ps")) / denom;
        r.attribution.blockedNs =
            static_cast<double>(s.u64("migration.blocked_ps")) / denom;
        r.attribution.queueWaitNs =
            static_cast<double>(s.u64("mem.demand_queue_wait_ps")) /
            denom;
        r.attribution.serviceNs =
            static_cast<double>(s.u64("mem.demand_service_ps")) / denom;
    }
    r.latency.p50Ns = s.real("frontend.latency_p50_ns");
    r.latency.p95Ns = s.real("frontend.latency_p95_ns");
    r.latency.p99Ns = s.real("frontend.latency_p99_ns");

    // Per-core metrics are registered for [0, numCores); a trace with
    // out-of-range core ids still gets its AMMAT from the frontend.
    const std::size_t cores_seen = frontend_->coresSeen();
    for (std::size_t c = 0; c < cores_seen; ++c) {
        const std::string cp = "core" + std::to_string(c);
        if (s.has(cp + ".ammat_ps")) {
            r.perCoreAmmatNs.push_back(s.real(cp + ".ammat_ps") /
                                       1000.0);
        } else {
            r.perCoreAmmatNs.push_back(frontend_->perCoreAmmatPs()[c] /
                                       1000.0);
        }
        LatencyPercentiles lp;
        if (s.has(cp + ".latency_p50_ns")) {
            lp.p50Ns = s.real(cp + ".latency_p50_ns");
            lp.p95Ns = s.real(cp + ".latency_p95_ns");
            lp.p99Ns = s.real(cp + ".latency_p99_ns");
        } else if (const Log2Histogram *h =
                       frontend_->coreLatencyHistogramNs(c)) {
            lp.p50Ns = static_cast<double>(h->percentile(0.50));
            lp.p95Ns = static_cast<double>(h->percentile(0.95));
            lp.p99Ns = static_cast<double>(h->percentile(0.99));
        }
        r.perCoreLatency.push_back(lp);
    }
    return r;
}

RunResult
runSimulation(const SimConfig &config, const Trace &trace,
              const std::string &workload_name)
{
    Simulation sim(config);
    return sim.run(trace, workload_name);
}

} // namespace mempod
