#include "sim/simulation.h"

#include "baselines/no_migration.h"
#include "common/log.h"

namespace mempod {

Simulation::Simulation(const SimConfig &config) : config_(config)
{
    config_.geom.validate();
    mem_ = std::make_unique<MemorySystem>(eq_, config_.geom, config_.fast,
                                          config_.slow,
                                          config_.extraLatencyPs,
                                          config_.controller);
    placement_ = std::make_unique<LogicalToPhysical>(
        config_.geom.totalPages(), config_.numCores,
        config_.placementSeed);

    switch (config_.mechanism) {
      case Mechanism::kNoMigration:
        manager_ = std::make_unique<NoMigrationManager>(*mem_);
        break;
      case Mechanism::kMemPod:
        manager_ = std::make_unique<MemPodManager>(eq_, *mem_,
                                                   config_.mempod);
        break;
      case Mechanism::kHma:
        manager_ =
            std::make_unique<HmaManager>(eq_, *mem_, config_.hma);
        break;
      case Mechanism::kThm:
        manager_ =
            std::make_unique<ThmManager>(eq_, *mem_, config_.thm);
        break;
      case Mechanism::kCameo:
        manager_ =
            std::make_unique<CameoManager>(eq_, *mem_, config_.cameo);
        break;
    }

    frontend_ = std::make_unique<TraceFrontend>(
        eq_, *manager_, *placement_, config_.maxOutstanding);

    if (auto *hma = dynamic_cast<HmaManager *>(manager_.get())) {
        hma->setStallHook([this](TimePs duration) {
            frontend_->suspendCores(duration);
        });
    }
}

Simulation::~Simulation() = default;

RunResult
Simulation::run(const Trace &trace, const std::string &workload_name)
{
    frontend_->setTrace(trace);
    manager_->start();
    frontend_->start();

    auto drained = [&] {
        return frontend_->done() && mem_->inFlight() == 0 &&
               manager_->pendingWork() == 0;
    };
    // Watchdog: recurring timers keep the queue non-empty forever, so
    // a stuck drain would otherwise spin silently. One simulated
    // second without any forward progress is a bug.
    std::uint64_t last_progress = 0;
    TimePs progress_at = 0;
    while (!drained()) {
        if (!eq_.runOne()) {
            MEMPOD_PANIC(
                "simulation deadlock: frontend done=%d inflight=%llu "
                "managerPending=%llu",
                frontend_->done() ? 1 : 0,
                static_cast<unsigned long long>(mem_->inFlight()),
                static_cast<unsigned long long>(
                    manager_->pendingWork()));
        }
        // Timer self-rescheduling executes events without advancing
        // the workload; only demand completions count as progress.
        const std::uint64_t progress = frontend_->completed();
        if (progress != last_progress || progress_at == 0) {
            last_progress = progress;
            progress_at = eq_.now();
        } else if (eq_.now() > progress_at + 1'000'000'000'000ull) {
            MEMPOD_PANIC("simulation livelock: no progress for 1 s of "
                         "simulated time (pending=%llu)",
                         static_cast<unsigned long long>(
                             manager_->pendingWork()));
        }
    }

    RunResult r;
    r.workload = workload_name;
    r.mechanism = manager_->name();
    r.ammatNs = frontend_->ammatPs() / 1000.0;
    r.demandRequests = trace.size();
    r.completed = frontend_->completed();
    const auto &ms = mem_->stats();
    const std::uint64_t demand_total = ms.demandFast + ms.demandSlow;
    r.fastServiceFraction =
        demand_total
            ? static_cast<double>(ms.demandFast) / demand_total
            : 0.0;
    r.rowHitRate = mem_->rowHitRate();
    r.rowHitRateFast = mem_->rowHitRate(MemTier::kFast);
    r.simulatedPs = eq_.now();
    r.eventsExecuted = eq_.executed();
    r.migration = manager_->migrationStats();
    r.memStats = mem_->stats();
    r.podLocalMigrations = config_.mechanism == Mechanism::kMemPod;
    for (double ps : frontend_->perCoreAmmatPs())
        r.perCoreAmmatNs.push_back(ps / 1000.0);
    return r;
}

RunResult
runSimulation(const SimConfig &config, const Trace &trace,
              const std::string &workload_name)
{
    Simulation sim(config);
    return sim.run(trace, workload_name);
}

} // namespace mempod
