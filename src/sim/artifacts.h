/**
 * @file
 * ArtifactSink: one run directory owning every per-job artifact kind.
 *
 * A batch run used to take four parallel directory options
 * (stats/trace/perf/decisions), each plumbed separately through every
 * harness, tool and test. The sink replaces them with a single run
 * directory plus per-kind enable bits; artifact kinds live in fixed
 * subdirectories so downstream consumers (CI diff steps, validators,
 * explain_tool) can address them by convention:
 *
 *   <root>/stats/      job<NNN>_<label>_<workload>.json[l]
 *   <root>/traces/     <stem>.trace.json      (Chrome trace events)
 *   <root>/decisions/  <stem>.decisions.jsonl (migration ledger)
 *   <root>/perf/       <stem>.perf.json       (host profiles)
 *
 * stats/traces/decisions are byte-deterministic at any --jobs/--shards
 * setting and safe to `diff -r` whole; perf/ carries wall times and is
 * not, which is why it is a distinct subdirectory rather than a file
 * suffix — determinism checks diff the siblings and skip it.
 */
#pragma once

#include <filesystem>
#include <string>

namespace mempod {

/** One run directory with per-kind enable bits; empty root = off. */
struct ArtifactSink
{
    /** Run directory; empty disables every artifact kind. */
    std::string root;

    bool stats = true;      //!< registry JSON (+ JSONL time series)
    bool traces = true;     //!< Chrome trace-event JSON
    bool decisions = true;  //!< migration decision ledgers
    bool perf = false;      //!< host-profile sidecars (wall times)

    bool enabled() const { return !root.empty(); }

    bool wantStats() const { return enabled() && stats; }
    bool wantTraces() const { return enabled() && traces; }
    bool wantDecisions() const { return enabled() && decisions; }
    bool wantPerf() const { return enabled() && perf; }

    /** Directory for a kind; empty string when that kind is off. */
    std::string
    statsDir() const
    {
        return wantStats() ? root + "/stats" : std::string();
    }
    std::string
    tracesDir() const
    {
        return wantTraces() ? root + "/traces" : std::string();
    }
    std::string
    decisionsDir() const
    {
        return wantDecisions() ? root + "/decisions" : std::string();
    }
    std::string
    perfDir() const
    {
        return wantPerf() ? root + "/perf" : std::string();
    }

    /**
     * Create the run directory and every enabled subdirectory. Called
     * once from the main thread before workers race to write. Throws
     * std::filesystem::filesystem_error on failure.
     */
    void
    prepare() const
    {
        if (!enabled())
            return;
        for (const std::string &d :
             {statsDir(), tracesDir(), decisionsDir(), perfDir()})
            if (!d.empty())
                std::filesystem::create_directories(d);
    }
};

/**
 * Apply a comma-separated kind list ("stats,traces,decisions,perf")
 * to the sink's enable bits: everything off, then each listed kind
 * on. Returns false (and names the token in *bad, when non-null) on
 * an unknown kind; the sink is left partially updated in that case,
 * so callers should treat false as fatal.
 */
inline bool
applyEmitList(const std::string &csv, ArtifactSink &sink,
              std::string *bad = nullptr)
{
    sink.stats = sink.traces = sink.decisions = sink.perf = false;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        const std::string kind = csv.substr(start, end - start);
        if (!kind.empty()) {
            if (kind == "stats")
                sink.stats = true;
            else if (kind == "traces")
                sink.traces = true;
            else if (kind == "decisions")
                sink.decisions = true;
            else if (kind == "perf")
                sink.perf = true;
            else {
                if (bad)
                    *bad = kind;
                return false;
            }
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return true;
}

} // namespace mempod
