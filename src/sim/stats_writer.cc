#include "sim/stats_writer.h"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include <unistd.h>

namespace mempod {

namespace {

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

void
appendKeyString(std::string &out, const char *key, const std::string &v)
{
    out += '"';
    out += key;
    out += "\":\"";
    out += StatsWriter::jsonEscape(v);
    out += '"';
}

void
appendKeyU64(std::string &out, const char *key, std::uint64_t v)
{
    out += '"';
    out += key;
    out += "\":";
    appendU64(out, v);
}

void
appendKeyDouble(std::string &out, const char *key, double v)
{
    out += '"';
    out += key;
    out += "\":";
    out += StatsWriter::formatDouble(v);
}

void
appendBuckets(std::string &out, const std::vector<std::uint64_t> &b)
{
    out += '[';
    for (std::size_t i = 0; i < b.size(); ++i) {
        if (i)
            out += ',';
        appendU64(out, b[i]);
    }
    out += ']';
}

/** Emit `"kind":...,<payload fields>` without surrounding braces. */
void
appendMetricValue(std::string &out, const MetricValue &v)
{
    out += "\"kind\":\"";
    out += metricKindName(v.kind);
    out += '"';
    switch (v.kind) {
      case MetricKind::kCounter:
        out += ',';
        appendKeyU64(out, "value", v.count);
        break;
      case MetricKind::kGauge:
        out += ',';
        appendKeyDouble(out, "value", v.real);
        break;
      case MetricKind::kScalar:
        out += ',';
        appendKeyU64(out, "count", v.count);
        out += ',';
        appendKeyDouble(out, "sum", v.real);
        out += ',';
        appendKeyDouble(out, "min", v.min);
        out += ',';
        appendKeyDouble(out, "max", v.max);
        out += ',';
        appendKeyDouble(out, "mean", v.mean);
        out += ',';
        appendKeyDouble(out, "stddev", v.stddev);
        break;
      case MetricKind::kRatio:
        out += ',';
        appendKeyU64(out, "hits", v.hits);
        out += ',';
        appendKeyU64(out, "total", v.count);
        out += ',';
        appendKeyDouble(out, "rate", v.rate());
        break;
      case MetricKind::kHistogram:
        out += ',';
        appendKeyU64(out, "count", v.count);
        out += ",\"buckets\":";
        appendBuckets(out, v.buckets);
        break;
    }
}

} // namespace

std::string
StatsWriter::jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
StatsWriter::formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    // to_chars emits the shortest representation that round-trips to
    // the identical bit pattern, and — unlike printf's %g — never
    // consults LC_NUMERIC, so goldens hold on any host locale.
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec; // 64 bytes always fit a double
    return std::string(buf, end);
}

std::string
StatsWriter::toJson(const MetricRegistry &reg, const MetricSnapshot &snap,
                    const RunResult &r)
{
    std::string out;
    out.reserve(16 * 1024);
    out += "{\n  ";
    appendKeyString(out, "schema", "mempod-stats-v1");
    out += ",\n  ";
    appendKeyString(out, "workload", r.workload);
    out += ",\n  ";
    appendKeyString(out, "mechanism", r.mechanism);
    out += ",\n  ";
    appendKeyU64(out, "sim_time_ps", snap.simTimePs);
    out += ",\n  \"summary\": {\n    ";
    appendKeyDouble(out, "ammat_ns", r.ammatNs);
    out += ",\n    ";
    // Sampled-simulation keys appear only on sampled runs so detailed
    // goldens stay byte-identical.
    if (r.sampled) {
        appendKeyDouble(out, "sampled_ammat_ns", r.sampledAmmatNs);
        out += ",\n    ";
        appendKeyDouble(out, "sampled_ci_ns", r.sampledCiNs);
        out += ",\n    ";
        appendKeyU64(out, "sample_windows", r.sampleWindows);
        out += ",\n    ";
    }
    appendKeyU64(out, "demand_requests", r.demandRequests);
    out += ",\n    ";
    appendKeyU64(out, "completed", r.completed);
    out += ",\n    ";
    appendKeyDouble(out, "fast_service_fraction", r.fastServiceFraction);
    out += ",\n    ";
    appendKeyDouble(out, "row_hit_rate", r.rowHitRate);
    out += ",\n    ";
    appendKeyDouble(out, "row_hit_rate_fast", r.rowHitRateFast);
    out += ",\n    ";
    appendKeyU64(out, "simulated_ps", r.simulatedPs);
    out += ",\n    ";
    appendKeyU64(out, "events_executed", r.eventsExecuted);
    out += ",\n    ";
    appendKeyU64(out, "migrations", r.migration.migrations);
    out += ",\n    ";
    appendKeyU64(out, "bytes_moved", r.migration.bytesMoved);
    out += ",\n    ";
    appendKeyDouble(out, "data_moved_mib", r.dataMovedMiB());
    out += ",\n    ";
    appendKeyU64(out, "blocked_requests", r.migration.blockedRequests);
    out += ",\n    ";
    appendKeyU64(out, "intervals", r.migration.intervals);
    out += ",\n    ";
    appendKeyU64(out, "candidates_skipped",
                 r.migration.candidatesSkipped);
    out += ",\n    ";
    appendKeyU64(out, "wasted_migrations", r.migration.wastedMigrations);
    out += ",\n    ";
    appendKeyU64(out, "meta_cache_hits", r.migration.metaCacheHits);
    out += ",\n    ";
    appendKeyU64(out, "meta_cache_misses", r.migration.metaCacheMisses);
    out += ",\n    ";
    out += "\"pod_local_migrations\":";
    out += r.podLocalMigrations ? "true" : "false";
    out += ",\n    \"per_core_ammat_ns\":[";
    for (std::size_t c = 0; c < r.perCoreAmmatNs.size(); ++c) {
        if (c)
            out += ',';
        out += formatDouble(r.perCoreAmmatNs[c]);
    }
    out += "],\n    \"attribution_ns\": {";
    appendKeyDouble(out, "mshr_wait", r.attribution.mshrWaitNs);
    out += ',';
    appendKeyDouble(out, "metadata", r.attribution.metadataNs);
    out += ',';
    appendKeyDouble(out, "blocked", r.attribution.blockedNs);
    out += ',';
    appendKeyDouble(out, "queue_wait", r.attribution.queueWaitNs);
    out += ',';
    appendKeyDouble(out, "service", r.attribution.serviceNs);
    out += ',';
    appendKeyDouble(out, "total", r.attribution.totalNs());
    out += "},\n    \"latency_ns\": {";
    appendKeyDouble(out, "p50", r.latency.p50Ns);
    out += ',';
    appendKeyDouble(out, "p95", r.latency.p95Ns);
    out += ',';
    appendKeyDouble(out, "p99", r.latency.p99Ns);
    out += "},\n    \"per_core_latency_ns\":[";
    for (std::size_t c = 0; c < r.perCoreLatency.size(); ++c) {
        if (c)
            out += ',';
        out += '{';
        appendKeyDouble(out, "p50", r.perCoreLatency[c].p50Ns);
        out += ',';
        appendKeyDouble(out, "p95", r.perCoreLatency[c].p95Ns);
        out += ',';
        appendKeyDouble(out, "p99", r.perCoreLatency[c].p99Ns);
        out += '}';
    }
    out += "]\n  },\n  \"metrics\": {\n";
    bool first = true;
    for (const auto &[name, value] : snap.values) {
        if (!first)
            out += ",\n";
        first = false;
        out += "    \"";
        out += jsonEscape(name);
        out += "\": {";
        appendKeyString(out, "desc", reg.description(name));
        out += ',';
        appendMetricValue(out, value);
        out += '}';
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
StatsWriter::toJsonl(const std::vector<IntervalRecord> &records)
{
    std::string out;
    for (const IntervalRecord &rec : records) {
        out += "{";
        appendKeyU64(out, "interval", rec.index);
        out += ',';
        appendKeyU64(out, "start_ps", rec.startPs);
        out += ',';
        appendKeyU64(out, "end_ps", rec.endPs);
        out += ",\"counters\":{";
        bool first = true;
        for (const auto &[name, v] : rec.delta.values) {
            if (v.kind != MetricKind::kCounter || v.count == 0)
                continue;
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(name);
            out += "\":";
            appendU64(out, v.count);
        }
        out += "},\"gauges\":{";
        first = true;
        for (const auto &[name, v] : rec.delta.values) {
            if (v.kind != MetricKind::kGauge)
                continue;
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(name);
            out += "\":";
            out += formatDouble(v.real);
        }
        out += "}}\n";
    }
    return out;
}

std::string
StatsWriter::decisionsToJsonl(const DecisionLog &log,
                              const std::string &workload,
                              const std::string &mechanism)
{
    std::string out;
    out.reserve(128 + 160 * log.size());
    out += '{';
    appendKeyString(out, "schema", "mempod-decisions-v1");
    out += ',';
    appendKeyString(out, "workload", workload);
    out += ',';
    appendKeyString(out, "mechanism", mechanism);
    out += ',';
    appendKeyU64(out, "epoch_ps", log.epochPs());
    out += ',';
    appendKeyDouble(out, "benefit_per_touch_ns",
                    log.benefitPerTouchNs());
    out += ',';
    appendKeyU64(out, "decisions", log.size());
    out += ',';
    appendKeyU64(out, "committed", log.committedCount());
    out += ',';
    appendKeyU64(out, "aborted", log.abortedCount());
    out += ',';
    appendKeyU64(out, "ping_pongs", log.pingPongCount());
    out += "}\n";
    for (const DecisionLog::Record &d : log.records()) {
        out += '{';
        appendKeyU64(out, "seq", d.seq);
        out += ',';
        appendKeyU64(out, "time_ps", d.timePs);
        out += ',';
        appendKeyU64(out, "epoch", d.epoch);
        out += ",\"pod\":";
        if (d.pod == DecisionLog::kNoPod)
            out += "null"; // centralized mechanism, no Pod identity
        else
            appendU64(out, d.pod);
        out += ',';
        appendKeyU64(out, "page", d.page);
        out += ',';
        appendKeyU64(out, "victim", d.victim);
        out += ',';
        appendKeyU64(out, "tracker_count", d.trackerCount);
        out += ',';
        appendKeyDouble(out, "predicted_benefit_ns",
                        d.predictedBenefitNs);
        out += ',';
        appendKeyString(out, "outcome",
                        DecisionLog::outcomeName(d.outcome));
        out += ',';
        appendKeyU64(out, "commit_ps", d.commitPs);
        out += ",\"ping_pong\":";
        out += d.pingPong ? "true" : "false";
        out += ',';
        appendKeyU64(out, "realized_near_hits", d.realizedNearHits);
        out += "}\n";
    }
    return out;
}

std::string
StatsWriter::jobFileStem(std::size_t index, const std::string &label,
                         const std::string &workload)
{
    auto sanitize = [](const std::string &s) {
        std::string out;
        out.reserve(s.size());
        for (const char c : s) {
            const bool ok = (c >= 'a' && c <= 'z') ||
                            (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '.' ||
                            c == '_' || c == '-';
            out += ok ? c : '-';
        }
        return out;
    };
    char buf[32];
    std::snprintf(buf, sizeof(buf), "job%03zu", index);
    std::string stem = buf;
    if (!label.empty())
        stem += "_" + sanitize(label);
    if (!workload.empty())
        stem += "_" + sanitize(workload);
    return stem;
}

std::string
StatsWriter::perfToJson(const PerfReport &r)
{
    const PerfHostInfo host = perfHostInfo();
    std::string out;
    out.reserve(4 * 1024);
    out += "{\n  ";
    appendKeyString(out, "schema", "mempod-perf-v1");
    out += ",\n  \"host\": {";
    appendKeyString(out, "sysname", host.sysname);
    out += ',';
    appendKeyString(out, "machine", host.machine);
    out += ',';
    appendKeyU64(out, "cpus", host.cpus);
    out += "},\n  ";
    appendKeyDouble(out, "wall_seconds", r.wallSeconds);
    out += ",\n  ";
    appendKeyU64(out, "max_rss_kib", r.maxRssKib);
    out += ",\n  ";
    appendKeyU64(out, "sim_time_ps", r.simTimePs);
    out += ",\n  ";
    appendKeyU64(out, "events_executed", r.eventsExecuted);
    out += ",\n  ";
    appendKeyDouble(out, "events_per_second", r.eventsPerSecond);
    out += ",\n  ";
    appendKeyU64(out, "windows", r.windows);
    out += ",\n  \"phases_ns\": {";
    bool first = true;
    for (const auto &[name, ns] : r.phasesNs) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += jsonEscape(name);
        out += "\":";
        appendU64(out, ns);
    }
    out += "},\n  \"counters\": {";
    first = true;
    for (const auto &[name, v] : r.counters) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += jsonEscape(name);
        out += "\":";
        appendU64(out, v);
    }
    out += "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, v] : r.gauges) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += jsonEscape(name);
        out += "\":";
        out += formatDouble(v);
    }
    out += "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, buckets] : r.histograms) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += jsonEscape(name);
        out += "\":";
        appendBuckets(out, buckets);
    }
    out += "},\n  \"shards\": [";
    for (std::size_t s = 0; s < r.shards.size(); ++s) {
        if (s)
            out += ',';
        out += '{';
        appendKeyU64(out, "busy_ns", r.shards[s].busyNs);
        out += ',';
        appendKeyU64(out, "stall_ns", r.shards[s].stallNs);
        out += ',';
        appendKeyU64(out, "events", r.shards[s].events);
        out += '}';
    }
    out += "]\n}\n";
    return out;
}

void
StatsWriter::writeFile(const std::string &path,
                       const std::string &content)
{
    // Temp-then-rename in the same directory: rename(2) is atomic on
    // POSIX when source and target share a filesystem, so a crash at
    // any point leaves either the previous file or the complete new
    // one. The pid keeps concurrent writers of *different* paths in
    // one directory from colliding on the temp name.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw std::runtime_error("cannot open stats file: " + tmp);
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    const bool write_ok = n == content.size();
    if (std::fclose(f) != 0 || !write_ok) {
        std::remove(tmp.c_str());
        throw std::runtime_error("short write on stats file: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename stats file into place: " +
                                 path);
    }
}

} // namespace mempod
