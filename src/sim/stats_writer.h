/**
 * @file
 * Structured exporters over the metric registry: an end-of-run JSON
 * document (summary block derived from the RunResult plus every
 * registered instrument with its description) and a JSONL interval
 * trace (one line per IntervalSampler record with the non-zero counter
 * deltas and the gauge levels at the interval boundary). Both are
 * emitted from name-ordered snapshots, so the bytes are deterministic
 * for a given run regardless of registration order or worker count.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sim/report.h"

namespace mempod {

/** JSON / JSONL rendering of run statistics. */
class StatsWriter
{
  public:
    /** Escape `s` for inclusion inside a JSON string literal. */
    static std::string jsonEscape(const std::string &s);

    /**
     * Shortest round-trip decimal rendering of `v`; non-finite values
     * become `null` (JSON has no NaN/Inf).
     */
    static std::string formatDouble(double v);

    /**
     * Full end-of-run document: run identity, a "summary" object
     * mirroring the RunResult (the numbers the console tables print),
     * and a "metrics" object with every registered instrument.
     */
    static std::string toJson(const MetricRegistry &reg,
                              const MetricSnapshot &snap,
                              const RunResult &result);

    /**
     * One JSON line per interval: index, [start_ps, end_ps), the
     * non-zero counter deltas and the gauge values at the interval
     * end. Returns "" when there are no records.
     */
    static std::string
    toJsonl(const std::vector<IntervalRecord> &records);

    /**
     * Deterministic per-job file stem "job<NNN>[_<label>]_<workload>"
     * keyed by the submission index, so a batch writes the same file
     * set at any worker count. Label/workload are sanitized to
     * [A-Za-z0-9._-].
     */
    static std::string jobFileStem(std::size_t index,
                                   const std::string &label,
                                   const std::string &workload);

    /** Write `content` to `path`; throws std::runtime_error on error. */
    static void writeFile(const std::string &path,
                          const std::string &content);
};

} // namespace mempod
