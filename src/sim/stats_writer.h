/**
 * @file
 * Structured exporters over the metric registry: an end-of-run JSON
 * document (summary block derived from the RunResult plus every
 * registered instrument with its description) and a JSONL interval
 * trace (one line per IntervalSampler record with the non-zero counter
 * deltas and the gauge levels at the interval boundary). Both are
 * emitted from name-ordered snapshots, so the bytes are deterministic
 * for a given run regardless of registration order or worker count.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/decision_log.h"
#include "common/metrics.h"
#include "common/perf.h"
#include "sim/report.h"

namespace mempod {

/** JSON / JSONL rendering of run statistics. */
class StatsWriter
{
  public:
    /** Escape `s` for inclusion inside a JSON string literal. */
    static std::string jsonEscape(const std::string &s);

    /**
     * Shortest round-trip decimal rendering of `v`; non-finite values
     * become `null` (JSON has no NaN/Inf). Uses std::to_chars, so the
     * bytes are identical under any host LC_NUMERIC locale.
     */
    static std::string formatDouble(double v);

    /**
     * Full end-of-run document: run identity, a "summary" object
     * mirroring the RunResult (the numbers the console tables print),
     * and a "metrics" object with every registered instrument.
     */
    static std::string toJson(const MetricRegistry &reg,
                              const MetricSnapshot &snap,
                              const RunResult &result);

    /**
     * One JSON line per interval: index, [start_ps, end_ps), the
     * non-zero counter deltas and the gauge values at the interval
     * end. Returns "" when there are no records.
     */
    static std::string
    toJsonl(const std::vector<IntervalRecord> &records);

    /**
     * Migration decision ledger as a "mempod-decisions-v1" JSONL
     * sidecar: a header line with run identity and ledger totals,
     * then one line per decision in the order the policy made them.
     * The ledger is populated entirely in the coordinator domain, so
     * these bytes are identical at any jobs/shards setting. The
     * schema is documented in EXPERIMENTS.md.
     */
    static std::string decisionsToJsonl(const DecisionLog &log,
                                        const std::string &workload,
                                        const std::string &mechanism);

    /**
     * Deterministic per-job file stem "job<NNN>[_<label>]_<workload>"
     * keyed by the submission index, so a batch writes the same file
     * set at any worker count. Label/workload are sanitized to
     * [A-Za-z0-9._-].
     */
    static std::string jobFileStem(std::size_t index,
                                   const std::string &label,
                                   const std::string &workload);

    /**
     * Host-profile sidecar document ("mempod-perf-v1"): wall/RSS/rate
     * header, phase wall times, host counters/gauges/histograms and
     * the per-shard busy/stall ledger. Host facts only — this file is
     * intentionally *not* deterministic, which is why it lives beside
     * (never inside) the stats directory CI byte-compares.
     */
    static std::string perfToJson(const PerfReport &r);

    /**
     * Write `content` to `path`; throws std::runtime_error on error.
     * Crash-safe: the bytes go to a temp file in the target directory
     * which is atomically renamed over `path`, so a killed run leaves
     * either the old file or the complete new one — never a truncated
     * JSON document.
     */
    static void writeFile(const std::string &path,
                          const std::string &content);
};

} // namespace mempod
