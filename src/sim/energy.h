/**
 * @file
 * Data-movement energy model for Section 5.3's claim: by restricting
 * migration to sibling MCs inside a Pod, MemPod bounds the distance
 * migrated data travels, so its migration energy rides cheap local
 * links while a centralized design hauls every page across the global
 * switch.
 *
 * The model charges every 64 B line transfer (a) a DRAM access cost
 * per tier and (b) an interconnect cost that depends on how far the
 * data moves: demand traffic and bookkeeping always cross the global
 * switch (LLC <-> MC); migration traffic crosses it only under a
 * centralized driver. Per-bit figures are representative published
 * values (HBM ~4 pJ/bit, DDR4 ~18 pJ/bit, on-die links ~0.5 pJ/bit,
 * global switch + long wires ~2 pJ/bit) and are fully configurable.
 */
#pragma once

#include <cstdint>

#include "mem/memory_system.h"

namespace mempod {

/** Per-bit energy coefficients (picojoules per bit). */
struct EnergyParams
{
    double fastAccessPjPerBit = 3.9;  //!< HBM array + IO
    double slowAccessPjPerBit = 18.0; //!< DDR4 array + channel IO
    double localHopPjPerBit = 0.5;    //!< intra-Pod link
    double globalHopPjPerBit = 2.0;   //!< global switch traversal
};

/** Energy totals of one run, in microjoules. */
struct EnergyEstimate
{
    double demandUj = 0.0;      //!< demand DRAM + global traversal
    double migrationUj = 0.0;   //!< migration DRAM + link traversal
    double bookkeepingUj = 0.0; //!< metadata fills

    double
    totalUj() const
    {
        return demandUj + migrationUj + bookkeepingUj;
    }
};

/**
 * Estimate movement energy from a run's per-tier line counts.
 *
 * @param stats Per-kind/per-tier line counters from the MemorySystem.
 * @param pod_local_migrations True when the mechanism's migration
 *        traffic stays inside a Pod (MemPod); false for centralized
 *        drivers whose swaps cross the global switch (HMA/THM/CAMEO).
 */
EnergyEstimate estimateEnergy(const MemorySystem::Stats &stats,
                              bool pod_local_migrations,
                              const EnergyParams &params = {});

} // namespace mempod
