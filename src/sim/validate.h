/**
 * @file
 * Always-on invariant checker: conservation laws the simulation must
 * obey at every epoch and at end of run — demand requests issued ==
 * completed + in-flight, remap tables remain bijections, the AMMAT
 * attribution components sum exactly to the measured AMMAT, energy
 * terms recompute from the line counters, and per-mechanism migration
 * counts match their engines' committed swaps.
 *
 * The checker only *reads* simulation state: its periodic hook rides
 * the existing progress probe (no events are added to the queue, so
 * golden executed-event counts are untouched), and every violation
 * panics with a structured `invariant violated [law]` diagnostic. The
 * individual laws are exposed as free functions so unit tests can
 * feed them deliberately corrupted state.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/memory_system.h"
#include "sim/energy.h"

namespace mempod {

class DecisionLog;
class MemoryManager;
class TraceFrontend;
struct RunResult;
struct SimConfig;

/**
 * Verify that `location` (id -> slot) and `resident` (slot -> id)
 * describe mutually inverse permutations, the remap-table bijection
 * law. Panics naming `what` on the first inconsistent entry.
 */
void checkPermutation(const char *what,
                      const std::vector<std::uint32_t> &location,
                      const std::vector<std::uint32_t> &resident);

/**
 * Verify the AMMAT attribution components sum to the measured AMMAT
 * (relative tolerance 1e-9: the components partition every demand's
 * lifetime exactly, so only rounding may separate them).
 */
void checkAmmatAttribution(const RunResult &r);

/**
 * Verify a reported energy estimate recomputes exactly from the line
 * counters it claims to derive from (and that its terms sum to the
 * reported total). Panics on divergence.
 */
void checkEnergyBalance(const MemorySystem::Stats &stats,
                        bool pod_local_migrations,
                        const EnergyEstimate &reported);

/** Verify a mechanism's commit count matches its engine's. */
void checkMigrationConservation(const char *mechanism,
                                std::uint64_t migrations,
                                std::uint64_t engine_commits);

/**
 * The per-run checker the Simulation owns. Cheap count cross-checks
 * run once per epoch (simulated time) from the progress probe; the
 * full audit — including a paranoid-depth mechanism scan — runs once
 * against the final RunResult.
 */
class InvariantChecker
{
  public:
    /**
     * @param period_ps epoch length between periodic checks.
     * @param decisions the shared ledger, or null when disabled.
     */
    InvariantChecker(const SimConfig &config,
                     const TraceFrontend &frontend,
                     const MemorySystem &mem,
                     const MemoryManager &manager,
                     const DecisionLog *decisions, TimePs period_ps);

    /** Rate-limited per-epoch conservation checks (read-only). */
    void periodicCheck(TimePs now);

    /** End-of-run audit over the assembled RunResult. */
    void finalCheck(const RunResult &r);

    std::uint64_t checksRun() const { return checksRun_; }

  private:
    void checkLiveCounters();

    const SimConfig &config_;
    const TraceFrontend &frontend_;
    const MemorySystem &mem_;
    const MemoryManager &manager_;
    const DecisionLog *decisions_;
    TimePs periodPs_;
    TimePs nextCheckPs_ = 0;
    std::uint64_t lastCompleted_ = 0;
    std::uint64_t checksRun_ = 0;
};

} // namespace mempod
