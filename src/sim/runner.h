/**
 * @file
 * Parallel batch execution of independent simulation and interval-
 * study jobs. Every figure/table harness is a cross product of
 * workloads and configurations whose runs share nothing but the input
 * traces, so the BatchRunner executes them on a fixed-size worker
 * pool: each job builds its own Simulation (own EventQueue, own RNG
 * state) and the generated traces are shared read-only through a
 * mutex-guarded, generate-once TraceCache. Results come back in
 * submission order regardless of completion order, and a job that
 * throws is captured as a per-job failure instead of killing the
 * batch — so a 27-workload x 6-configuration sweep reports the one
 * broken cell and still fills in the other 161.
 *
 * Determinism guarantee: the simulator is bit-reproducible given
 * (config, trace), and trace generation is bit-reproducible given
 * (workload, GeneratorConfig), no matter which worker thread runs
 * either. Hence the results of a batch are identical at any worker
 * count, including 1.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/interval_study.h"
#include "common/perf.h"
#include "sim/artifacts.h"
#include "sim/config.h"
#include "sim/report.h"
#include "trace/catalog.h"
#include "trace/generator.h"
#include "trace/record.h"

namespace mempod {

/**
 * Keyed store cache: at most one TraceStore per catalog entry +
 * generator/scaling params (workload, requests, seed, footprintScale,
 * rateScale), safe to hit from many threads. The first requester of a
 * key builds the store while the lock is released; concurrent
 * requesters of the same key block on its future instead of
 * duplicating the work, and requesters of other keys build in
 * parallel. For synthetic workloads the store holds the
 * generated-once trace; for manifest-declared external traces it
 * holds the validated recipe and each job opens a cheap streaming
 * cursor — the trace bytes are never duplicated per job.
 */
class TraceCache
{
  public:
    /** Resolves names through this catalog; default is the global. */
    explicit TraceCache(const WorkloadCatalog *catalog = nullptr)
        : catalog_(catalog)
    {
    }

    /**
     * Fetch (or build) the shared store for `workload` under `gen`.
     * Throws std::invalid_argument for an unknown workload name.
     */
    std::shared_ptr<const TraceStore> get(const std::string &workload,
                                          const GeneratorConfig &gen);

    /** Number of distinct stores built so far. */
    std::size_t size() const;

  private:
    using Key = std::tuple<std::string, std::uint64_t, std::uint64_t,
                           double, double>;

    const WorkloadCatalog *catalog_;
    mutable std::mutex mu_;
    std::map<Key, std::shared_future<std::shared_ptr<const TraceStore>>>
        entries_;
};

/** What a BatchJob asks the worker to run over its trace. */
enum class JobKind
{
    kTiming,        //!< full timing simulation -> RunResult
    kIntervalStudy, //!< Section 3 offline study -> IntervalStudyResult
};

/** One unit of work: a configuration plus a trace (or its recipe). */
struct BatchJob
{
    JobKind kind = JobKind::kTiming;

    SimConfig config;          //!< used by kTiming jobs
    IntervalStudyConfig study; //!< used by kIntervalStudy jobs

    /** Workload name; keys trace generation and labels the result. */
    std::string workload;

    /** Trace recipe (requests, seed, scales) for the cache. */
    GeneratorConfig gen;

    /** Explicit pre-built trace; bypasses the cache when set. */
    std::shared_ptr<const Trace> trace;

    /** Display label for progress/error reports (e.g. "MemPod"). */
    std::string label;
};

/** Outcome of one job; exactly one payload is meaningful. */
struct JobResult
{
    bool ok = false;
    std::string error; //!< exception message when !ok

    std::string workload; //!< copied from the job, for reporting
    std::string label;

    RunResult result;          //!< kTiming payload
    IntervalStudyResult study; //!< kIntervalStudy payload

    double wallSeconds = 0.0;

    /** Host profile of the run; set when the job's config enabled it. */
    bool hasPerf = false;
    PerfReport perf;
};

/** Worker-pool knobs. */
struct RunnerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /** Print a line per completed job (from the main thread only). */
    bool progress = false;

    /** Progress destination; nullptr = stderr. */
    std::FILE *progressStream = nullptr;

    /** Share a cache across runners; nullptr = runner-private cache. */
    TraceCache *cache = nullptr;

    /**
     * Run-directory sink for every per-job artifact. When its root is
     * non-empty, each timing job writes the enabled kinds under fixed
     * subdirectories:
     *
     *   stats/      "job<NNN>[_<label>]_<workload>.json" (plus
     *               ".jsonl" when the job's config armed the interval
     *               sampler); NNN is the submission index, so the file
     *               set and its bytes are identical at any worker
     *               count.
     *   traces/     "<same stem>.trace.json" (Chrome trace-event
     *               JSON) when the job's config armed the tracer;
     *               deterministic sampling keeps the bytes identical
     *               at any worker count.
     *   decisions/  "<same stem>.decisions.jsonl"
     *               ("mempod-decisions-v1") when the job's config
     *               enabled the ledger; populated entirely in the
     *               coordinator domain, so deterministic and safe to
     *               `diff -r` across --jobs/--shards settings.
     *   perf/       "<same stem>.perf.json" when the job's config
     *               enabled the host profiler. Deliberately a sibling
     *               of stats/: perf sidecars carry wall times and are
     *               *not* byte-deterministic, so determinism checks
     *               diff the other subdirectories and skip this one.
     */
    ArtifactSink artifacts;
};

/**
 * Fixed-size worker pool over a list of independent jobs.
 *
 *   BatchRunner runner({.jobs = 4});
 *   for (...) runner.add({...});
 *   std::vector<JobResult> results = runner.runAll();
 *
 * runAll() blocks until every job finished and returns results in
 * submission order. It may be called repeatedly; each call runs the
 * jobs added since the previous one.
 */
class BatchRunner
{
  public:
    explicit BatchRunner(RunnerOptions opt = {});

    /** Enqueue a job; returns its index into runAll()'s result. */
    std::size_t add(BatchJob job);

    /** Jobs queued for the next runAll(). */
    std::size_t pending() const { return jobs_.size(); }

    /** Worker-thread count runAll() will use. */
    unsigned workerCount() const;

    /** The cache jobs resolve their traces through. */
    TraceCache &traceCache();

    /** Run everything; blocking. Results are in submission order. */
    std::vector<JobResult> runAll();

  private:
    JobResult execute(const BatchJob &job, std::size_t index);

    RunnerOptions opt_;
    TraceCache own_cache_;
    std::vector<BatchJob> jobs_;
    std::size_t statsIndexBase_ = 0; //!< jobs run by prior runAll()s
};

/**
 * Canonical textual form of a RunResult with bit-exact floating-point
 * fields (hex-float rendering) — the determinism tests compare these
 * across worker counts, and it is handy for debugging goldens.
 */
std::string serializeRunResult(const RunResult &r);

} // namespace mempod
