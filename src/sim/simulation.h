/**
 * @file
 * The top-level simulation driver: builds the memory system, the
 * configured migration manager and the trace frontend over one event
 * queue, runs a trace to completion (including draining in-flight
 * migrations), and returns the measured statistics.
 */
#pragma once

#include <memory>
#include <string>

#include "common/decision_log.h"
#include "common/event_queue.h"
#include "common/metrics.h"
#include "common/perf.h"
#include "common/tracer.h"
#include "mem/frontend.h"
#include "mem/manager.h"
#include "mem/memory_system.h"
#include "sim/config.h"
#include "sim/fidelity.h"
#include "sim/parallel.h"
#include "sim/report.h"
#include "sim/validate.h"
#include "trace/record.h"
#include "trace/source.h"

namespace mempod {

/** One configured system instance; run one trace through it. */
class Simulation
{
  public:
    explicit Simulation(const SimConfig &config);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /**
     * Replay a record stream to completion and collect statistics.
     * Streaming sources (disk-backed replays) run in O(1) memory; the
     * frontend keeps only a one-record lookahead.
     */
    RunResult run(TraceSource &source,
                  const std::string &workload_name = "");

    /** Convenience: replay an in-memory trace. */
    RunResult run(const Trace &trace,
                  const std::string &workload_name = "");

    EventQueue &eq() { return eq_; }
    MemorySystem &mem() { return *mem_; }
    MemoryManager &manager() { return *manager_; }
    TraceFrontend &frontend() { return *frontend_; }
    const SimConfig &config() const { return config_; }

    /** Every instrument registered by this simulation's components. */
    const MetricRegistry &registry() const { return registry_; }

    /** Snapshot taken after the last run() drained; empty before. */
    const MetricSnapshot &finalSnapshot() const { return finalSnapshot_; }

    /** Interval sampler, or nullptr when statsIntervalPs == 0. */
    const IntervalSampler *sampler() const { return sampler_.get(); }

    /** Event tracer, or nullptr when config.tracer.enabled is false. */
    const Tracer *tracer() const { return tracer_.get(); }

    /** PDES executor, or nullptr when config.shards == 0 (serial). */
    const ParallelExecutor *executor() const { return exec_.get(); }

    /** Host profiler, or nullptr when config.perfEnabled is false. */
    PerfMonitor *perf() { return perf_.get(); }

    /**
     * Migration decision ledger, or nullptr when
     * config.decisionsEnabled is false. Populated entirely from
     * coordinator-domain manager callbacks, so its contents are
     * byte-identical at any jobs/shards setting.
     */
    const DecisionLog *decisionLog() const { return decisions_.get(); }

    /** Invariant checker, or nullptr when validation is disabled. */
    const InvariantChecker *validator() const { return validator_.get(); }

    /** Sampling controller, or nullptr when sampling is disabled. */
    const FidelityController *fidelity() const { return fidelity_.get(); }

    /**
     * The per-touch fast-vs-slow latency gap (ns) used to price
     * predicted migration benefit: the difference in tRCD+tCL+tBL
     * between the far and near device specs. Exposed for tests.
     */
    static double benefitPerTouchNs(const SimConfig &config);

    /**
     * Host profile of the last run(), or nullptr before the first run
     * or when profiling is disabled. Wall times/RSS here are host
     * facts — everything simulation-visible stays byte-identical
     * whether or not this exists.
     */
    const PerfReport *
    perfReport() const
    {
        return havePerfReport_ ? &perfReport_ : nullptr;
    }

    /**
     * The static lookahead a sharded run of `config` synchronizes at:
     * the minimum channel->coordinator completion delay, min over the
     * present tiers of (min(tCL, tCWL) + tBL) plus the interconnect
     * latency. Exposed so tests can pin the derivation.
     */
    static TimePs lookaheadPs(const SimConfig &config);

  private:
    void registerAllMetrics();
    /** Fold every layer's host counters into perfReport_ after run(). */
    void collectPerf(const RunResult &r);

    SimConfig config_;
    EventQueue eq_;
    std::unique_ptr<PerfMonitor> perf_;
    std::unique_ptr<Tracer> tracer_;
    // Declared before mem_: the channels hold references to the
    // executor's per-lane queues, so the executor must be destroyed
    // after the memory system (members destroy in reverse order).
    std::unique_ptr<ParallelExecutor> exec_;
    std::unique_ptr<MemorySystem> mem_;
    std::unique_ptr<LogicalToPhysical> placement_;
    std::unique_ptr<MemoryManager> manager_;
    std::unique_ptr<TraceFrontend> frontend_;
    std::unique_ptr<DecisionLog> decisions_;
    std::unique_ptr<InvariantChecker> validator_;
    std::unique_ptr<FidelityController> fidelity_;
    MetricRegistry registry_;
    std::unique_ptr<IntervalSampler> sampler_;
    MetricSnapshot finalSnapshot_;
    PerfReport perfReport_;
    bool havePerfReport_ = false;
};

/** Convenience: build + run in one call. */
RunResult runSimulation(const SimConfig &config, const Trace &trace,
                        const std::string &workload_name = "");
RunResult runSimulation(const SimConfig &config, TraceSource &source,
                        const std::string &workload_name = "");

} // namespace mempod
