/**
 * @file
 * SimConfig JSON round-trip and dotted-key overrides, built on one
 * field table so toJson(), fromJson() and set() can never disagree
 * about which knobs exist. The schema is the table below verbatim;
 * EXPERIMENTS.md documents it for experiment authors.
 */
#include "sim/config.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "common/log.h"

namespace mempod {

namespace {

/** Parse a non-negative integer, rejecting trailing junk/overflow. */
template <typename T>
void
parseValue(T &dst, const std::string &v, const char *key)
{
    static_assert(std::is_unsigned_v<T>);
    if (v.empty() ||
        v.find_first_not_of("0123456789") != std::string::npos) {
        MEMPOD_PANIC("config key '%s': '%s' is not a non-negative "
                     "integer",
                     key, v.c_str());
    }
    errno = 0;
    const unsigned long long raw = std::strtoull(v.c_str(), nullptr, 10);
    if (errno != 0 || raw > std::numeric_limits<T>::max()) {
        MEMPOD_PANIC("config key '%s': value %s out of range", key,
                     v.c_str());
    }
    dst = static_cast<T>(raw);
}

void
parseValue(bool &dst, const std::string &v, const char *key)
{
    if (v == "true" || v == "1") {
        dst = true;
    } else if (v == "false" || v == "0") {
        dst = false;
    } else {
        MEMPOD_PANIC("config key '%s': '%s' is not a boolean", key,
                     v.c_str());
    }
}

void
parseValue(std::string &dst, const std::string &v, const char *)
{
    dst = v;
}

void
parseValue(Mechanism &dst, const std::string &v, const char *key)
{
    if (!mechanismFromName(v, dst)) {
        MEMPOD_PANIC("config key '%s': unknown mechanism '%s'", key,
                     v.c_str());
    }
}

void
parseValue(DramModel &dst, const std::string &v, const char *key)
{
    if (!dramModelFromName(v, dst)) {
        MEMPOD_PANIC("config key '%s': unknown memory model '%s' "
                     "(detailed, fast or functional)",
                     key, v.c_str());
    }
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

std::string
printValue(bool v)
{
    return v ? "true" : "false";
}

std::string
printValue(const std::string &v)
{
    return quoted(v);
}

std::string
printValue(Mechanism m)
{
    return quoted(mechanismName(m));
}

std::string
printValue(DramModel m)
{
    return quoted(dramModelName(m));
}

template <typename T>
std::string
printValue(T v)
{
    static_assert(std::is_unsigned_v<T>);
    return std::to_string(v);
}

/** One leaf knob: a dotted key plus its accessors. */
struct Field
{
    const char *key;
    std::function<std::string(const SimConfig &)> get;
    std::function<void(SimConfig &, const std::string &)> set;
};

/** One table entry for the member reached by expression `expr`. */
#define MEMPOD_CONFIG_FIELD(key, expr)                                 \
    Field                                                              \
    {                                                                  \
        key, [](const SimConfig &c) { return printValue(c.expr); },    \
            [](SimConfig &c, const std::string &v) {                   \
                parseValue(c.expr, v, key);                            \
            }                                                          \
    }

/**
 * The 22 per-device leaves, shared between `dram.near` (the fast,
 * on-package device) and `dram.far` (the slow, off-chip device).
 * Timing leaves are picoseconds, matching the ps-native DramTiming,
 * so sweeps can dial any constraint without knowing the device clock.
 */
#define MEMPOD_CONFIG_DRAM_FIELDS(tier, member)                        \
    MEMPOD_CONFIG_FIELD("dram." tier ".name", member.name),            \
        MEMPOD_CONFIG_FIELD("dram." tier ".clock_ps",                  \
                            member.timing.clockPeriodPs),              \
        MEMPOD_CONFIG_FIELD("dram." tier ".tCL_ps", member.timing.tCL),\
        MEMPOD_CONFIG_FIELD("dram." tier ".tCWL_ps",                   \
                            member.timing.tCWL),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".tRCD_ps",                   \
                            member.timing.tRCD),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".tRP_ps", member.timing.tRP),\
        MEMPOD_CONFIG_FIELD("dram." tier ".tRAS_ps",                   \
                            member.timing.tRAS),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".tBL_ps", member.timing.tBL),\
        MEMPOD_CONFIG_FIELD("dram." tier ".tCCD_ps",                   \
                            member.timing.tCCD),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".tWR_ps", member.timing.tWR),\
        MEMPOD_CONFIG_FIELD("dram." tier ".tWTR_ps",                   \
                            member.timing.tWTR),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".tRTP_ps",                   \
                            member.timing.tRTP),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".tRTW_ps",                   \
                            member.timing.tRTW),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".tRRD_ps",                   \
                            member.timing.tRRD),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".tFAW_ps",                   \
                            member.timing.tFAW),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".tREFI_ps",                  \
                            member.timing.tREFI),                      \
        MEMPOD_CONFIG_FIELD("dram." tier ".tRFC_ps",                   \
                            member.timing.tRFC),                       \
        MEMPOD_CONFIG_FIELD("dram." tier ".ranks", member.org.ranks),  \
        MEMPOD_CONFIG_FIELD("dram." tier ".banksPerRank",              \
                            member.org.banksPerRank),                  \
        MEMPOD_CONFIG_FIELD("dram." tier ".rowsPerBank",               \
                            member.org.rowsPerBank),                   \
        MEMPOD_CONFIG_FIELD("dram." tier ".rowBufferBytes",            \
                            member.org.rowBufferBytes),                \
        MEMPOD_CONFIG_FIELD("dram." tier ".busBits",                   \
                            member.org.busBits)

/**
 * Every serialized knob, in schema order. toJson() emits exactly this
 * sequence; fromJson()/set() accept exactly these keys.
 */
const std::vector<Field> &
fieldTable()
{
    static const std::vector<Field> table = {
        MEMPOD_CONFIG_FIELD("mechanism", mechanism),
        MEMPOD_CONFIG_FIELD("geom.fastBytes", geom.fastBytes),
        MEMPOD_CONFIG_FIELD("geom.slowBytes", geom.slowBytes),
        MEMPOD_CONFIG_FIELD("geom.fastChannels", geom.fastChannels),
        MEMPOD_CONFIG_FIELD("geom.slowChannels", geom.slowChannels),
        MEMPOD_CONFIG_FIELD("geom.numPods", geom.numPods),
        MEMPOD_CONFIG_FIELD("dram.model", dramModel),
        MEMPOD_CONFIG_DRAM_FIELDS("near", near),
        MEMPOD_CONFIG_DRAM_FIELDS("far", far),
        MEMPOD_CONFIG_FIELD("mempod.interval", mempod.interval),
        MEMPOD_CONFIG_FIELD("mempod.pod.meaEntries",
                            mempod.pod.meaEntries),
        MEMPOD_CONFIG_FIELD("mempod.pod.meaCounterBits",
                            mempod.pod.meaCounterBits),
        MEMPOD_CONFIG_FIELD("mempod.pod.maxMigrationsPerInterval",
                            mempod.pod.maxMigrationsPerInterval),
        MEMPOD_CONFIG_FIELD("mempod.pod.minHotCount",
                            mempod.pod.minHotCount),
        MEMPOD_CONFIG_FIELD("mempod.pod.metaCacheEnabled",
                            mempod.pod.metaCacheEnabled),
        MEMPOD_CONFIG_FIELD("mempod.pod.metaCacheBytes",
                            mempod.pod.metaCacheBytes),
        MEMPOD_CONFIG_FIELD("mempod.pod.metaCacheAssoc",
                            mempod.pod.metaCacheAssoc),
        MEMPOD_CONFIG_FIELD("mempod.pod.remapEntryBytes",
                            mempod.pod.remapEntryBytes),
        MEMPOD_CONFIG_FIELD("hma.interval", hma.interval),
        MEMPOD_CONFIG_FIELD("hma.sortStall", hma.sortStall),
        MEMPOD_CONFIG_FIELD("hma.counterBits", hma.counterBits),
        MEMPOD_CONFIG_FIELD("hma.threshold", hma.threshold),
        MEMPOD_CONFIG_FIELD("hma.maxMigrationsPerInterval",
                            hma.maxMigrationsPerInterval),
        MEMPOD_CONFIG_FIELD("hma.metaCacheEnabled",
                            hma.metaCacheEnabled),
        MEMPOD_CONFIG_FIELD("hma.metaCacheBytes", hma.metaCacheBytes),
        MEMPOD_CONFIG_FIELD("hma.metaCacheAssoc", hma.metaCacheAssoc),
        MEMPOD_CONFIG_FIELD("hma.counterEntryBytes",
                            hma.counterEntryBytes),
        MEMPOD_CONFIG_FIELD("thm.threshold", thm.threshold),
        MEMPOD_CONFIG_FIELD("thm.counterBits", thm.counterBits),
        MEMPOD_CONFIG_FIELD("thm.metaCacheEnabled",
                            thm.metaCacheEnabled),
        MEMPOD_CONFIG_FIELD("thm.metaCacheBytes", thm.metaCacheBytes),
        MEMPOD_CONFIG_FIELD("thm.metaCacheAssoc", thm.metaCacheAssoc),
        MEMPOD_CONFIG_FIELD("thm.segEntryBytes", thm.segEntryBytes),
        MEMPOD_CONFIG_FIELD("cameo.engineParallelism",
                            cameo.engineParallelism),
        MEMPOD_CONFIG_FIELD("cameo.maxQueuedSwaps",
                            cameo.maxQueuedSwaps),
        MEMPOD_CONFIG_FIELD("maxOutstanding", maxOutstanding),
        MEMPOD_CONFIG_FIELD("placementSeed", placementSeed),
        MEMPOD_CONFIG_FIELD("extraLatencyPs", extraLatencyPs),
        MEMPOD_CONFIG_FIELD("numCores", numCores),
        MEMPOD_CONFIG_FIELD("controller.closedPage",
                            controller.closedPage),
        MEMPOD_CONFIG_FIELD("controller.fcfs", controller.fcfs),
        MEMPOD_CONFIG_FIELD("statsIntervalPs", statsIntervalPs),
        MEMPOD_CONFIG_FIELD("sim.shards", shards),
        MEMPOD_CONFIG_FIELD("sim.sampling.enabled", sampling.enabled),
        MEMPOD_CONFIG_FIELD("sim.sampling.measure_ps",
                            sampling.measurePs),
        MEMPOD_CONFIG_FIELD("sim.sampling.fastfwd_ps",
                            sampling.fastfwdPs),
        MEMPOD_CONFIG_FIELD("sim.sampling.warmup_pct",
                            sampling.warmupPct),
        MEMPOD_CONFIG_FIELD("sim.sampling.min_windows",
                            sampling.minWindows),
        MEMPOD_CONFIG_FIELD("sim.sampling.fastfwd_model",
                            sampling.fastfwdModel),
        MEMPOD_CONFIG_FIELD("tracer.enabled", tracer.enabled),
        MEMPOD_CONFIG_FIELD("tracer.sampleEvery", tracer.sampleEvery),
        MEMPOD_CONFIG_FIELD("tracer.seed", tracer.seed),
        MEMPOD_CONFIG_FIELD("perf.enabled", perfEnabled),
        MEMPOD_CONFIG_FIELD("decisions.enabled", decisionsEnabled),
        MEMPOD_CONFIG_FIELD("validate.enabled", validateEnabled),
        MEMPOD_CONFIG_FIELD("validate.paranoid", validateParanoid),
    };
    return table;
}

#undef MEMPOD_CONFIG_DRAM_FIELDS
#undef MEMPOD_CONFIG_FIELD

std::vector<std::string>
splitKey(const std::string &key)
{
    std::vector<std::string> segs;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= key.size(); ++i) {
        if (i == key.size() || key[i] == '.') {
            segs.push_back(key.substr(start, i - start));
            start = i + 1;
        }
    }
    return segs;
}

/**
 * Minimal JSON reader for the subset toJson() emits: objects whose
 * leaves are unsigned integers, booleans or strings. Produces the
 * flattened (dotted key, raw value) list in document order.
 */
class JsonFlattener
{
  public:
    explicit JsonFlattener(const std::string &text) : text_(text) {}

    std::vector<std::pair<std::string, std::string>>
    flatten()
    {
        std::vector<std::pair<std::string, std::string>> out;
        skipWs();
        parseObject("", out);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after top-level object");
        return out;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        MEMPOD_PANIC("SimConfig::fromJson: %s (at byte %zu)", what,
                     pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return s;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                const char e = text_[pos_++];
                if (e != '"' && e != '\\')
                    fail("unsupported escape sequence");
                s += e;
            } else {
                s += c;
            }
        }
    }

    std::string
    parseScalar()
    {
        if (peek() == '"')
            return parseString();
        std::string s;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_]))))
            s += text_[pos_++];
        if (s.empty())
            fail("expected a value");
        return s;
    }

    void
    parseObject(const std::string &prefix,
                std::vector<std::pair<std::string, std::string>> &out)
    {
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            skipWs();
            const std::string key = parseString();
            if (key.empty() || key.find('.') != std::string::npos)
                fail("invalid object key");
            skipWs();
            expect(':');
            skipWs();
            const std::string dotted =
                prefix.empty() ? key : prefix + "." + key;
            if (peek() == '{')
                parseObject(dotted, out);
            else
                out.emplace_back(dotted, parseScalar());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

namespace {

/** Order-preserving JSON tree assembled from the dotted field keys. */
struct JsonNode
{
    std::string value; // leaf payload (already JSON-encoded)
    std::vector<std::pair<std::string, JsonNode>> children;

    JsonNode &
    child(const std::string &name)
    {
        for (auto &[n, node] : children)
            if (n == name)
                return node;
        children.emplace_back(name, JsonNode{});
        return children.back().second;
    }

    void
    emit(std::string &out, std::size_t depth) const
    {
        if (children.empty()) {
            out += value;
            return;
        }
        out += "{\n";
        for (std::size_t i = 0; i < children.size(); ++i) {
            out.append(2 * (depth + 1), ' ');
            out += quoted(children[i].first) + ": ";
            children[i].second.emit(out, depth + 1);
            out += i + 1 < children.size() ? ",\n" : "\n";
        }
        out.append(2 * depth, ' ');
        out += "}";
    }
};

} // namespace

std::string
SimConfig::toJson() const
{
    JsonNode root;
    for (const Field &f : fieldTable()) {
        JsonNode *node = &root;
        for (const std::string &seg : splitKey(f.key))
            node = &node->child(seg);
        node->value = f.get(*this);
    }
    std::string out;
    root.emit(out, 0);
    out += "\n";
    return out;
}

void
SimConfig::set(const std::string &key, const std::string &value)
{
    for (const Field &f : fieldTable()) {
        if (key == f.key) {
            f.set(*this, value);
            return;
        }
    }
    MEMPOD_PANIC("unknown config key '%s' (see EXPERIMENTS.md for the "
                 "schema)",
                 key.c_str());
}

SimConfig
SimConfig::fromJson(const std::string &json)
{
    SimConfig cfg;
    for (const auto &[key, value] : JsonFlattener(json).flatten())
        cfg.set(key, value);
    return cfg;
}

} // namespace mempod
