#include "sim/fidelity.h"

#include <cmath>

#include "common/log.h"
#include "mem/frontend.h"
#include "mem/memory_system.h"

namespace mempod {

void
WindowStats::add(double x)
{
    // Welford's online update: numerically stable for long runs.
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
WindowStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
WindowStats::ciHalfWidth() const
{
    if (n_ < 2)
        return 0.0;
    const double s = std::sqrt(variance());
    return tCritical95(n_ - 1) * s / std::sqrt(static_cast<double>(n_));
}

double
WindowStats::tCritical95(std::uint64_t df)
{
    // Two-sided 95% critical values of Student's t distribution.
    static const double kTable[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 0.0;
    if (df <= sizeof(kTable) / sizeof(kTable[0]))
        return kTable[df - 1];
    return 1.96;
}

FidelityController::FidelityController(
    EventQueue &eq, MemorySystem &mem, TraceFrontend &frontend,
    const SimConfig::SamplingParams &params, DramModel measured)
    : eq_(eq),
      mem_(mem),
      frontend_(frontend),
      params_(params),
      measured_(measured)
{
    if (params_.measurePs == 0) {
        MEMPOD_PANIC("sim.sampling.measure_ps must be positive: a "
                     "zero-length measurement window can never "
                     "produce a sample");
    }
    if (params_.warmupPct > 99) {
        MEMPOD_PANIC("sim.sampling.warmup_pct must be in [0, 99], got "
                     "%u",
                     static_cast<unsigned>(params_.warmupPct));
    }
    warmupPs_ = params_.measurePs * params_.warmupPct / 100;
    if (warmupPs_ >= params_.measurePs) {
        MEMPOD_PANIC("sim.sampling warm-up slice (%llu ps) consumes "
                     "the whole measurement window (%llu ps)",
                     static_cast<unsigned long long>(warmupPs_),
                     static_cast<unsigned long long>(params_.measurePs));
    }
    // Batch admission collapses per-record pump events into one sweep
    // per window/timer boundary, but it is only honest when the warm
    // model completes instantly; a latency/bandwidth warm model keeps
    // per-record pacing so its queues see real arrival spacing.
    batchAdmit_ = params_.fastfwdModel == DramModel::kFunctional;
}

void
FidelityController::begin()
{
    enterFastForward();
    eq_.schedule(eq_.now() + params_.fastfwdPs,
                 [this] { onDetailedStart(); });
}

void
FidelityController::enterFastForward()
{
    mem_.setModel(params_.fastfwdModel);
    frontend_.setFastForward(true, batchAdmit_);
}

void
FidelityController::onDetailedStart()
{
    mem_.setModel(measured_);
    frontend_.setFastForward(false, false);
    eq_.schedule(eq_.now() + warmupPs_, [this] { onWarmupEnd(); });
}

void
FidelityController::onWarmupEnd()
{
    stallAtWarmupEnd_ = frontend_.totalStallPs();
    completedAtWarmupEnd_ = frontend_.completed();
    eq_.schedule(eq_.now() + (params_.measurePs - warmupPs_),
                 [this] { onMeasureEnd(); });
}

void
FidelityController::onMeasureEnd()
{
    const std::uint64_t completed =
        frontend_.completed() - completedAtWarmupEnd_;
    // An empty window (no demand completed) contributes no sample: the
    // estimator is per-completed-demand, so there is nothing to
    // average. finish() still enforces the minimum sample count.
    if (completed > 0) {
        const double stall =
            frontend_.totalStallPs() - stallAtWarmupEnd_;
        stats_.add(stall / static_cast<double>(completed));
    }
    enterFastForward();
    eq_.schedule(eq_.now() + params_.fastfwdPs,
                 [this] { onDetailedStart(); });
}

void
FidelityController::finish() const
{
    if (stats_.count() < params_.minWindows) {
        MEMPOD_PANIC(
            "sampled simulation completed only %llu of the required "
            "%u measurement windows; shorten sim.sampling.measure_ps/"
            "fastfwd_ps (period is %llu ps) or extend the trace",
            static_cast<unsigned long long>(stats_.count()),
            static_cast<unsigned>(params_.minWindows),
            static_cast<unsigned long long>(params_.measurePs +
                                            params_.fastfwdPs));
    }
}

} // namespace mempod
