/**
 * @file
 * Conservative parallel discrete-event executor: shards one
 * simulation across worker threads without changing a single output
 * byte.
 *
 * ## Partition
 *
 * Execution is split into domains: domain 0 (the coordinator) runs
 * the trace frontend, every migration manager/engine, interval
 * timers and channel completion callbacks; domain 1+i runs DRAM
 * channel i's controller. Channels are the finest partition the
 * memory system admits — they share no state and talk to the rest of
 * the system only through (a) enqueues from the coordinator and (b)
 * completion events back to it. Crucially the partition is fixed by
 * the *model*, not by the shard count: `--shards N` only distributes
 * the per-channel timing wheels over N worker threads, so the
 * canonical event order (common/event_queue.h) — and therefore
 * stdout, stats JSON and trace bytes — is invariant across N.
 *
 * ## Synchronization (conservative, null-message-free)
 *
 * The only channel -> coordinator traffic is the CAS completion,
 * whose delay is bounded below by
 *
 *     L = min over device specs of (min(tCL, tCWL) + tBL) + extraLatency
 *
 * so a window [W, W + L) can execute with no feedback: phase A runs
 * the coordinator's events below the horizon (deferring enqueues into
 * per-channel inboxes tagged with the calling event's canonical key),
 * phase B runs every channel's events merged with its inbox in key
 * order on the worker threads, and the barrier merges completion
 * outboxes — all provably at or beyond W + L — back into the
 * coordinator's wheel. Coordinator -> channel traffic has zero
 * lookahead, which is why it is phase-ordered (A before B) instead of
 * horizon-bounded. The executor asserts both horizon invariants: no
 * event beyond the window bound executes, and no merged event lands
 * in the coordinator's past (a violation panics — never silently
 * reorders).
 *
 * Why conservative rather than optimistic (Time Warp)? Rollback would
 * need checkpointing of controller slabs, stats counters and tracer
 * buffers — large, hot state — and the proof obligation here is
 * byte-identical output, which is trivial to establish for an
 * executor that never mis-speculates and brutal for one that must
 * unwind. The DRAM CAS latency gives a fat, static lookahead anyway,
 * so the conservative horizon costs little parallelism.
 *
 * ## Serialization points
 *
 * The interval sampler (statsIntervalPs > 0) reads channel counters
 * mid-run, which pierces the domain partition. Sampler instants are
 * exact period multiples, so any window starting on one is executed
 * as a single-threaded *boundary step*: a merged key-order sweep of
 * every domain's events at that instant, reproducing the serial
 * interleaving the sampler would have observed.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/event_queue.h"
#include "common/perf.h"
#include "common/tracer.h"
#include "dram/channel.h"
#include "mem/request.h"

namespace mempod {

class MemorySystem;

/** Conservative PDES executor over one coordinator + channel lanes. */
class ParallelExecutor
{
  public:
    /**
     * @param coordinator The simulation's main queue (domain 0).
     * @param num_channels One lane (domain, wheel) per channel.
     * @param shards Worker-thread count; clamped to [1, num_channels].
     * @param lookahead_ps Minimum channel->coordinator event delay.
     * @param sample_period_ps statsIntervalPs, 0 when not sampling.
     */
    ParallelExecutor(EventQueue &coordinator, std::size_t num_channels,
                     unsigned shards, TimePs lookahead_ps,
                     TimePs sample_period_ps);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Per-channel queues, channel order; for MemorySystem's ShardPlan. */
    std::vector<EventQueue *> channelQueues();
    EventQueue &channelQueue(std::size_t ch);

    /** Resolve memory-model pointers once the MemorySystem exists. */
    void bindChannels(MemorySystem &mem);

    /** Termination predicate, checked after every coordinator event. */
    void setDrained(std::function<bool()> fn) { drained_ = std::move(fn); }

    /**
     * Route trace records through per-domain staging buffers; call
     * absorbTraces() after the run to merge them into the master.
     */
    void enableTracing(const TracerConfig &cfg);
    void absorbTraces(Tracer &master);

    /**
     * MemorySystem::access hand-off: defer `req`'s enqueue on channel
     * `ch` into that lane's inbox, positioned at the calling event's
     * canonical key and carrying the reserved key its scheduleTick
     * would have consumed in the serial run.
     */
    void dispatch(std::size_t ch, Request req, ChannelAddr where);

    enum class Step
    {
        kWindow,   //!< executed one horizon window (or boundary step)
        kFinished, //!< drained() hit; the run is complete
        kIdle,     //!< no events anywhere — deadlock upstream
    };

    /** Execute the next window. */
    Step runWindow();

    bool finished() const { return finished_; }

    // -- Introspection (scaling reports, property tests) --
    TimePs lookaheadPs() const { return lookahead_; }
    unsigned shards() const { return shards_; }
    std::size_t numLanes() const { return lanes_.size(); }
    std::uint64_t windows() const { return windows_; }
    std::uint64_t samplerSyncs() const { return samplerSyncs_; }
    /** [start, end) of the most recent window; 0/0 before the first. */
    TimePs lastWindowStartPs() const { return lastWindowStart_; }
    TimePs lastWindowEndPs() const { return lastWindowEnd_; }
    /** Events executed across the coordinator and every lane. */
    std::uint64_t totalExecuted() const;
    /** Executed-event counts: index 0 coordinator, 1+i channel i. */
    std::vector<std::uint64_t> perDomainExecuted() const;
    /** Events executed by worker shard `s` (its lanes summed). */
    std::uint64_t perShardExecuted(unsigned s) const;

    /**
     * Attach a host profiler. Host time flows one way — out — so the
     * monitor cannot perturb event order; with none attached every
     * instrumented site is one branch on a null pointer. Workers write
     * only their own shard lane and every hand-off goes through mu_,
     * so no extra synchronization is needed. Call before runWindow().
     */
    void setPerf(PerfMonitor *pm);

    /** Smallest completion slack over the horizon seen so far, ps
     *  (~0ull before the first merge). Perf-only near-miss gauge. */
    std::uint64_t minHorizonSlackPs() const { return minSlack_; }

  private:
    /** One deferred coordinator -> channel enqueue. */
    struct Delivery
    {
        EventKey pos;      //!< calling event's key: merge position
        EventKey reserved; //!< key for the applied enqueue's schedule
        Request req;
        ChannelAddr where;
    };

    /** One channel domain: its wheel, inbox and staging tracer. */
    struct Lane
    {
        EventQueue q;
        std::vector<Delivery> inbox;
        std::size_t inboxPos = 0;
        MemoryModel *chan = nullptr;
        std::unique_ptr<Tracer> staging;
    };

    /** Run one lane up to (exclusive) canonical key `bound`. */
    void runLane(Lane &lane, const EventKey &bound);
    /** Phase B: run every lane to `bound` on the worker threads. */
    void runPhaseB(const EventKey &bound);
    /** Merge lane outboxes into the coordinator; asserts the horizon. */
    void mergeOutboxes(TimePs window_end);
    /** Single-threaded merged sweep of all events at instant `t`. */
    Step boundaryStep(TimePs t);
    void applyDelivery(Lane &lane, Delivery &d);
    void workerLoop(unsigned shard);

    EventQueue &coord_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    unsigned shards_;
    TimePs lookahead_;
    TimePs samplePeriod_;
    std::function<bool()> drained_;
    std::unique_ptr<Tracer> coordStaging_;

    PerfMonitor *pm_ = nullptr;
    Log2Histogram *slackHist_ = nullptr; //!< resolved once in setPerf
    std::uint64_t minSlack_ = ~std::uint64_t{0};

    bool finished_ = false;
    std::uint64_t windows_ = 0;
    std::uint64_t samplerSyncs_ = 0;
    TimePs lastWindowStart_ = 0;
    TimePs lastWindowEnd_ = 0;

    // Worker handshake: generation-counted barrier. All lane state is
    // handed between the coordinator and workers through mu_, so every
    // phase transition is a happens-before edge (ThreadSanitizer-clean
    // by construction, not by annotation).
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    std::uint64_t gen_ = 0;
    unsigned pending_ = 0;
    EventKey bound_{};
    bool shutdown_ = false;
};

} // namespace mempod
