/**
 * @file
 * On-chip cache for migration bookkeeping state (Section 6.3.3).
 * Remap-table entries / activity counters are packed into 64 B blocks
 * in a backing store carved out of stacked memory; this set-
 * associative LRU cache front-ends it. A miss must be filled by an
 * injected read request (the caller's job) before the blocked demand
 * request may proceed.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mempod {

/** Set-associative LRU cache over fixed-size metadata entries. */
class MetadataCache
{
  public:
    static constexpr std::uint32_t kBlockBytes = 64;

    /**
     * @param capacity_bytes Total cache capacity.
     * @param assoc Ways per set.
     * @param entry_bytes Size of one metadata entry (packed in blocks).
     */
    MetadataCache(std::uint64_t capacity_bytes, std::uint32_t assoc,
                  std::uint32_t entry_bytes);

    /** Metadata block holding `entry_idx`. */
    std::uint64_t
    blockOf(std::uint64_t entry_idx) const
    {
        return entry_idx / entriesPerBlock_;
    }

    /**
     * Probe for the block holding `entry_idx`.
     * @return true on hit (LRU updated); false on miss (no allocation —
     *         call fill() once the backing read returns).
     */
    bool lookup(std::uint64_t entry_idx);

    /** Install the block holding `entry_idx`, evicting LRU. */
    void fill(std::uint64_t entry_idx);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t capacityBytes() const { return capacityBytes_; }
    std::uint32_t entriesPerBlock() const { return entriesPerBlock_; }
    std::uint64_t numSets() const { return sets_; }

  private:
    struct Way
    {
        std::uint64_t tag = ~std::uint64_t{0};
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint64_t capacityBytes_;
    std::uint32_t assoc_;
    std::uint32_t entriesPerBlock_;
    std::uint64_t sets_;
    std::vector<Way> ways_; //!< sets_ x assoc_
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace mempod
