/**
 * @file
 * Configuration knobs for every migration mechanism, in one data-only
 * header. SimConfig embeds these by value, and pulling them out of the
 * mechanism headers is what lets sim/config.h stay free of mechanism
 * code: the mechanisms include this header (not the other way
 * around), and only the ManagerFactory ties a Mechanism tag to a
 * concrete manager class.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace mempod {

/** Per-Pod configuration knobs. */
struct PodParams
{
    std::uint32_t meaEntries = 64;    //!< K counters (paper optimum)
    std::uint32_t meaCounterBits = 2; //!< paper optimum at 50 us
    /** Migration cap per interval; 0 means "up to K". */
    std::uint32_t maxMigrationsPerInterval = 0;
    /**
     * Minimum MEA count for a tracked page to be migration-worthy.
     * Entries at count 1 are often one-touch insertions that survived
     * the last sweep by luck; moving them rarely amortizes the swap.
     */
    std::uint32_t minHotCount = 3;
    /** Remap-table cache (Figure 9); disabled = free on-chip lookups. */
    bool metaCacheEnabled = false;
    std::uint64_t metaCacheBytes = 16 * 1024;
    std::uint32_t metaCacheAssoc = 8;
    std::uint32_t remapEntryBytes = 4; //!< packed remap entry size
};

/** MemPod configuration. */
struct MemPodParams
{
    TimePs interval = 50_us; //!< migration epoch (paper optimum)
    PodParams pod;
};

/** HMA configuration. */
struct HmaParams
{
    TimePs interval = 100_ms;     //!< paper's optimal epoch
    TimePs sortStall = 7_ms;      //!< intake freeze per epoch
    std::uint32_t counterBits = 16;
    std::uint32_t threshold = 16; //!< min accesses to migrate a page
    std::uint32_t maxMigrationsPerInterval = 2048;
    /** Counter cache (Figure 9); disabled = free on-chip counters. */
    bool metaCacheEnabled = false;
    std::uint64_t metaCacheBytes = 16 * 1024;
    std::uint32_t metaCacheAssoc = 8;
    std::uint32_t counterEntryBytes = 2; //!< 16-bit packed counters
};

/** THM configuration. */
struct ThmParams
{
    std::uint32_t threshold = 16;  //!< competing-counter trigger
    std::uint32_t counterBits = 8; //!< paper: 8 bits per fast page
    /** Segment-state cache (Figure 9); disabled = free lookups. */
    bool metaCacheEnabled = false;
    std::uint64_t metaCacheBytes = 16 * 1024;
    std::uint32_t metaCacheAssoc = 8;
    std::uint32_t segEntryBytes = 4; //!< counter + remap state packed
};

/** CAMEO configuration. */
struct CameoParams
{
    /** Concurrent line swaps (swaps ride the MC queues, not a CPU). */
    std::uint32_t engineParallelism = 8;
    /**
     * Backpressure bound on queued swaps: beyond it new slow accesses
     * skip their swap instead of queueing unboundedly (the demand
     * itself is never skipped).
     */
    std::size_t maxQueuedSwaps = 256;
};

} // namespace mempod
