#include "sim/config.h"

#include <algorithm>
#include <cctype>

#include "common/log.h"

namespace mempod {

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::kNoMigration:
        return "NoMigration";
      case Mechanism::kMemPod:
        return "MemPod";
      case Mechanism::kHma:
        return "HMA";
      case Mechanism::kThm:
        return "THM";
      case Mechanism::kCameo:
        return "CAMEO";
    }
    return "?";
}

bool
mechanismFromName(const std::string &name, Mechanism &out)
{
    std::string low(name.size(), '\0');
    std::transform(name.begin(), name.end(), low.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (low == "nomigration" || low == "none" || low == "tlm")
        out = Mechanism::kNoMigration;
    else if (low == "mempod")
        out = Mechanism::kMemPod;
    else if (low == "hma")
        out = Mechanism::kHma;
    else if (low == "thm")
        out = Mechanism::kThm;
    else if (low == "cameo")
        out = Mechanism::kCameo;
    else
        return false;
    return true;
}

SimConfig
SimConfig::paper(Mechanism m)
{
    SimConfig c;
    c.mechanism = m;
    return c;
}

SimConfig
SimConfig::future(Mechanism m)
{
    SimConfig c;
    c.mechanism = m;
    c.near = DramSpec::hbm4GHz();
    c.far = DramSpec::ddr4_2400();
    // The paper reduces HMA's fixed sorting penalty by 40% for the
    // faster future processor.
    c.hma.sortStall = static_cast<TimePs>(c.hma.sortStall * 0.6);
    return c;
}

SimConfig
SimConfig::fastOnly(bool future)
{
    SimConfig c;
    c.mechanism = Mechanism::kNoMigration;
    c.geom = SystemGeometry::singleTier(9_GiB, 8);
    c.near = future ? DramSpec::hbm4GHz() : DramSpec::hbm1GHz();
    return c;
}

SimConfig
SimConfig::slowOnly(bool future)
{
    SimConfig c;
    c.mechanism = Mechanism::kNoMigration;
    c.geom = SystemGeometry::singleTier(9_GiB, 4);
    c.near = future ? DramSpec::ddr4_2400() : DramSpec::ddr4_1600();
    return c;
}

void
SimConfig::scaleHmaEpoch(double epoch_ratio)
{
    MEMPOD_ASSERT(epoch_ratio >= 1.0, "HMA epoch below MemPod interval");
    const double stall_ratio =
        static_cast<double>(hma.sortStall) /
        static_cast<double>(hma.interval);
    hma.interval =
        static_cast<TimePs>(mempod.interval * epoch_ratio);
    hma.sortStall = static_cast<TimePs>(hma.interval * stall_ratio);
}

std::string
SimConfig::describe() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s on %s(%uch) + %s(%uch), %.1f+%.1f GiB, %u pods",
                  mechanismName(mechanism), near.name.c_str(),
                  geom.fastChannels, far.name.c_str(), geom.slowChannels,
                  static_cast<double>(geom.fastBytes) / (1_GiB),
                  static_cast<double>(geom.slowBytes) / (1_GiB),
                  geom.numPods);
    return buf;
}

} // namespace mempod
