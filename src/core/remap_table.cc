#include "core/remap_table.h"

#include <bit>

#include "common/log.h"

namespace mempod {

RemapTable::RemapTable(std::uint64_t num_pages, std::uint64_t fast_slots)
    : fastSlots_(fast_slots)
{
    MEMPOD_ASSERT(num_pages > 0, "empty remap table");
    MEMPOD_ASSERT(fast_slots <= num_pages, "more fast slots than pages");
    MEMPOD_ASSERT(num_pages <= ~std::uint32_t{0},
                  "pod page count exceeds 32-bit entry encoding");
    location_.resize(num_pages);
    resident_.resize(num_pages);
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        location_[i] = static_cast<std::uint32_t>(i);
        resident_[i] = static_cast<std::uint32_t>(i);
    }
}

std::uint64_t
RemapTable::locationOf(std::uint64_t orig) const
{
    MEMPOD_ASSERT(orig < location_.size(), "remap lookup out of range");
    return location_[orig];
}

std::uint64_t
RemapTable::residentOf(std::uint64_t slot) const
{
    MEMPOD_ASSERT(slot < resident_.size(), "inverted lookup out of range");
    return resident_[slot];
}

void
RemapTable::swap(std::uint64_t orig_a, std::uint64_t orig_b)
{
    MEMPOD_ASSERT(orig_a < location_.size() && orig_b < location_.size(),
                  "swap out of range");
    const std::uint32_t loc_a = location_[orig_a];
    const std::uint32_t loc_b = location_[orig_b];
    // Incremental occupancy bookkeeping: count displaced fast slots
    // before and after so occupiedFastSlots() stays O(1).
    auto displaced_fast = [this](std::uint64_t slot) {
        return slot < fastSlots_ && resident_[slot] != slot;
    };
    const std::uint64_t before = (displaced_fast(loc_a) ? 1u : 0u) +
                                 (displaced_fast(loc_b) ? 1u : 0u);
    location_[orig_a] = loc_b;
    location_[orig_b] = loc_a;
    resident_[loc_a] = static_cast<std::uint32_t>(orig_b);
    resident_[loc_b] = static_cast<std::uint32_t>(orig_a);
    const std::uint64_t after = (displaced_fast(loc_a) ? 1u : 0u) +
                                (displaced_fast(loc_b) ? 1u : 0u);
    occupiedFast_ += after;
    MEMPOD_ASSERT(occupiedFast_ >= before, "occupancy underflow");
    occupiedFast_ -= before;
}

bool
RemapTable::isIdentity() const
{
    for (std::uint64_t i = 0; i < location_.size(); ++i)
        if (location_[i] != i)
            return false;
    return true;
}

std::uint64_t
RemapTable::storageBitsRemap() const
{
    const std::uint64_t entry_bits =
        std::bit_width(location_.size() - 1);
    return location_.size() * entry_bits;
}

std::uint64_t
RemapTable::storageBitsInverted() const
{
    const std::uint64_t entry_bits =
        std::bit_width(location_.size() - 1);
    return fastSlots_ * entry_bits;
}

void
RemapTable::checkConsistency() const
{
    for (std::uint64_t i = 0; i < location_.size(); ++i) {
        MEMPOD_ASSERT(resident_[location_[i]] == i,
                      "remap permutation corrupted at page %llu",
                      static_cast<unsigned long long>(i));
    }
}

} // namespace mempod
