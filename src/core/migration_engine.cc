#include "core/migration_engine.h"

#include <memory>

#include "common/log.h"
#include "common/tracer.h"

namespace mempod {

MigrationEngine::MigrationEngine(EventQueue &eq, MemorySystem &mem,
                                 std::uint32_t max_in_flight_ops,
                                 std::string trace_track)
    : eq_(eq),
      mem_(mem),
      maxInFlight_(max_in_flight_ops),
      traceTrack_(std::move(trace_track))
{
    MEMPOD_ASSERT(max_in_flight_ops >= 1, "engine needs one op slot");
}

void
MigrationEngine::registerMetrics(MetricRegistry &reg,
                                 const std::string &prefix) const
{
    reg.attachCounter(prefix + ".ops_committed",
                      "swap operations fully committed",
                      &stats_.opsCommitted);
    reg.attachCounter(prefix + ".ops_dropped",
                      "queued swaps dropped before starting",
                      &stats_.opsDropped);
    reg.attachCounter(prefix + ".lines_moved",
                      "line transfers issued for migrations",
                      &stats_.linesMoved);
    reg.attachCounter(prefix + ".bytes_moved",
                      "migration bytes moved by this engine",
                      &stats_.bytesMoved);
    reg.addGauge(prefix + ".queued_ops",
                 "swaps waiting for an engine slot",
                 [this] { return static_cast<double>(queue_.size()); });
    reg.addGauge(prefix + ".active_ops", "swaps currently moving data",
                 [this] { return static_cast<double>(active_); });
}

void
MigrationEngine::submit(SwapOp op)
{
    MEMPOD_ASSERT(op.lines > 0, "empty swap");
    queue_.push_back(std::move(op));
    tryStart();
}

void
MigrationEngine::clearQueued()
{
    stats_.opsDropped += queue_.size();
    // Dropped candidates must release any blocked state *without*
    // committing the remap update (no data actually moved).
    for (auto &op : queue_)
        if (op.onAbort)
            op.onAbort();
    queue_.clear();
}

void
MigrationEngine::tryStart()
{
    while (active_ < maxInFlight_ && !queue_.empty()) {
        SwapOp op = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        run(std::move(op));
    }
}

void
MigrationEngine::run(SwapOp op)
{
    if (op.onStart)
        op.onStart();
    // Swap spans are async (b/e): engines with parallelism > 1 (CAMEO)
    // interleave ops on one track, which B/E nesting cannot express.
    if (op.traceId != 0) {
        if (Tracer *tr = eq_.tracer()) {
            const std::uint32_t tid = tr->track(traceTrack_);
            TraceArgs a;
            a.add("lines", op.lines * 2);
            tr->flowStep(tid, eq_.now(), "mig", op.traceId, "migration");
            tr->asyncBegin(tid, eq_.now(), "mig", op.traceId, "swap",
                           a.str());
            tr->asyncBegin(tid, eq_.now(), "mig", op.traceId,
                           "read_phase");
        }
    }
    // Phase 1: read both candidates into the swap buffer; phase 2:
    // write both back to their exchanged locations; then commit.
    struct OpState
    {
        SwapOp op;
        std::uint32_t readsLeft;
        std::uint32_t writesLeft;
    };
    auto st = std::make_shared<OpState>(
        OpState{std::move(op), 0, 0});
    st->readsLeft = st->op.lines * 2;
    st->writesLeft = st->op.lines * 2;

    auto finishOp = [this, st] {
        stats_.linesMoved += 2ull * st->op.lines;
        stats_.bytesMoved += 2ull * st->op.lines * kLineBytes;
        ++stats_.opsCommitted;
        if (st->op.traceId != 0) {
            if (Tracer *tr = eq_.tracer()) {
                const std::uint32_t tid = tr->track(traceTrack_);
                tr->asyncEnd(tid, eq_.now(), "mig", st->op.traceId,
                             "write_phase");
                tr->asyncEnd(tid, eq_.now(), "mig", st->op.traceId,
                             "swap");
            }
        }
        if (st->op.onCommit)
            st->op.onCommit();
        MEMPOD_ASSERT(active_ > 0, "engine slot underflow");
        --active_;
        tryStart();
    };

    auto startWrites = [this, st, finishOp] {
        if (st->op.traceId != 0) {
            if (Tracer *tr = eq_.tracer()) {
                const std::uint32_t tid = tr->track(traceTrack_);
                tr->asyncEnd(tid, eq_.now(), "mig", st->op.traceId,
                             "read_phase");
                tr->asyncBegin(tid, eq_.now(), "mig", st->op.traceId,
                               "write_phase");
            }
        }
        for (std::uint32_t i = 0; i < st->op.lines; ++i) {
            for (const Addr base : {st->op.locA, st->op.locB}) {
                Request w;
                w.addr = base + i * kLineBytes;
                w.type = AccessType::kWrite;
                w.kind = Request::Kind::kMigration;
                w.arrival = eq_.now();
                w.onComplete = [st, finishOp](TimePs) {
                    MEMPOD_ASSERT(st->writesLeft > 0, "write underflow");
                    if (--st->writesLeft == 0)
                        finishOp();
                };
                mem_.access(std::move(w));
            }
        }
    };

    for (std::uint32_t i = 0; i < st->op.lines; ++i) {
        for (const Addr base : {st->op.locA, st->op.locB}) {
            Request r;
            r.addr = base + i * kLineBytes;
            r.type = AccessType::kRead;
            r.kind = Request::Kind::kMigration;
            r.arrival = eq_.now();
            r.onComplete = [st, startWrites](TimePs) {
                MEMPOD_ASSERT(st->readsLeft > 0, "read underflow");
                if (--st->readsLeft == 0)
                    startWrites();
            };
            mem_.access(std::move(r));
        }
    }
}

} // namespace mempod
