#include "core/mempod_manager.h"

#include <memory>

#include "common/log.h"
#include "mem/manager_factory.h"

namespace mempod {

MemPodManager::MemPodManager(EventQueue &eq, MemorySystem &mem,
                             const MemPodParams &params)
    : eq_(eq), mem_(mem), params_(params),
      intervalTimer_(eq, params.interval, [this] {
          // All Pods run their migration passes in parallel (each via
          // its own engine); the timer then re-arms.
          for (auto &pod : pods_)
              pod->onInterval();
      })
{
    const std::uint32_t n = mem.geom().numPods;
    pods_.reserve(n);
    for (std::uint32_t p = 0; p < n; ++p)
        pods_.push_back(std::make_unique<Pod>(p, eq, mem, params.pod));
}

void
MemPodManager::handleDemand(Demand d)
{
    const PageId page = AddressMap::pageOf(d.homeAddr);
    const std::uint32_t pod = mem_.map().podOfPage(page);
    const std::uint64_t offset = d.homeAddr % kPageBytes;
    pods_[pod]->handleDemand(page, offset, std::move(d));
}

void
MemPodManager::start()
{
    intervalTimer_.start();
}

void
MemPodManager::setDecisionLog(DecisionLog *log)
{
    MemoryManager::setDecisionLog(log);
    for (auto &pod : pods_)
        pod->setDecisionLog(log);
}

void
MemPodManager::validateInvariants(bool paranoid) const
{
    for (const auto &pod : pods_)
        pod->validateInvariants(paranoid);
}

const MigrationStats &
MemPodManager::migrationStats() const
{
    aggregated_ = MigrationStats{};
    for (const auto &pod : pods_) {
        const MigrationStats &s = pod->stats();
        aggregated_.migrations += s.migrations;
        aggregated_.bytesMoved += s.bytesMoved;
        aggregated_.blockedRequests += s.blockedRequests;
        aggregated_.intervals += s.intervals;
        aggregated_.candidatesSkipped += s.candidatesSkipped;
        aggregated_.metaCacheHits += s.metaCacheHits;
        aggregated_.metaCacheMisses += s.metaCacheMisses;
        aggregated_.blockedPs += s.blockedPs;
        aggregated_.metadataPs += s.metadataPs;
    }
    // All pods share one timer; report timer firings, not the sum.
    if (!pods_.empty())
        aggregated_.intervals = pods_.front()->stats().intervals;
    return aggregated_;
}

void
MemPodManager::registerMetrics(MetricRegistry &reg)
{
    MemoryManager::registerMetrics(reg);
    for (const auto &pod : pods_)
        pod->registerMetrics(reg);
}

std::uint64_t
MemPodManager::pendingWork() const
{
    std::uint64_t total = 0;
    for (const auto &pod : pods_)
        total += pod->pendingWork();
    return total;
}

std::uint64_t
MemPodManager::trackingStorageBits() const
{
    std::uint64_t total = 0;
    for (const auto &pod : pods_)
        total += pod->trackingStorageBits();
    return total;
}

std::uint64_t
MemPodManager::remapStorageBits() const
{
    std::uint64_t total = 0;
    for (const auto &pod : pods_)
        total += pod->remapStorageBits();
    return total;
}

MEMPOD_REGISTER_MANAGER(
    Mechanism::kMemPod,
    [](const SimConfig &cfg, EventQueue &eq, MemorySystem &mem) {
        return std::make_unique<MemPodManager>(eq, mem, cfg.mempod);
    })

} // namespace mempod
