/**
 * @file
 * The migration driver/datapath (Section 4.4): executes page (or
 * line) swaps by issuing the full read/write traffic through the
 * normal memory controllers — for a 2 KB page, 32 reads of each
 * migration candidate followed by 32 write-backs of each, exactly as
 * the paper models it. Swap ops run with configurable parallelism
 * (MemPod: one engine per Pod; HMA/THM: one centralized engine;
 * CAMEO: per-channel concurrency).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/event_queue.h"
#include "common/metrics.h"
#include "common/types.h"
#include "mem/memory_system.h"

namespace mempod {

/** Executes queued page/line swaps through the memory system. */
class MigrationEngine
{
  public:
    /** One swap between the data at two physical locations. */
    struct SwapOp
    {
        Addr locA = 0;           //!< first page/line physical base
        Addr locB = 0;           //!< second page/line physical base
        std::uint32_t lines = 0; //!< line transfers per side
        /**
         * Runs when the engine begins moving data. Demand blocking
         * must begin here, not at scheduling time: a queued candidate
         * is still serviceable at its old location until its swap
         * actually starts.
         */
        std::function<void()> onStart;
        std::function<void()> onCommit; //!< runs when the swap is durable
        std::function<void()> onAbort;  //!< runs if dropped before start
        /** Migration-lifecycle flow id (0 = not traced). */
        std::uint64_t traceId = 0;
    };

    struct Stats
    {
        std::uint64_t opsCommitted = 0;
        std::uint64_t opsDropped = 0; //!< cleared before starting
        std::uint64_t linesMoved = 0;
        std::uint64_t bytesMoved = 0;
    };

    /**
     * @param trace_track Tracer track name for this engine's swap
     *        spans ("pod0.engine", "hma.engine", ...).
     */
    MigrationEngine(EventQueue &eq, MemorySystem &mem,
                    std::uint32_t max_in_flight_ops = 1,
                    std::string trace_track = "engine");

    /** Queue a swap; starts immediately if a slot is free. */
    void submit(SwapOp op);

    /** Drop ops not yet started (stale candidates at a new interval). */
    void clearQueued();

    std::size_t queuedOps() const { return queue_.size(); }
    std::uint32_t activeOps() const { return active_; }
    bool busy() const { return active_ > 0 || !queue_.empty(); }

    const Stats &stats() const { return stats_; }

    /** Register op/traffic counters and queue gauges under `prefix`. */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    void tryStart();
    void run(SwapOp op);

    EventQueue &eq_;
    MemorySystem &mem_;
    std::uint32_t maxInFlight_;
    std::string traceTrack_;
    std::uint32_t active_ = 0;
    std::deque<SwapOp> queue_;
    Stats stats_;
};

} // namespace mempod
