/**
 * @file
 * One memory Pod (Figure 5): the MEA activity-tracking unit, the
 * per-Pod remap table with its inverted fast-slot view, the request
 * forwarding path, and the Pod-local migration driver. Pods operate
 * fully independently; migrations never cross Pod boundaries.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/event_queue.h"
#include "core/migration_engine.h"
#include "core/remap_table.h"
#include "mem/manager.h"
#include "mem/memory_system.h"
#include "sim/metadata_path.h"
#include "tracking/mea.h"

namespace mempod {

/** Per-Pod configuration knobs. */
struct PodParams
{
    std::uint32_t meaEntries = 64;    //!< K counters (paper optimum)
    std::uint32_t meaCounterBits = 2; //!< paper optimum at 50 us
    /** Migration cap per interval; 0 means "up to K". */
    std::uint32_t maxMigrationsPerInterval = 0;
    /**
     * Minimum MEA count for a tracked page to be migration-worthy.
     * Entries at count 1 are often one-touch insertions that survived
     * the last sweep by luck; moving them rarely amortizes the swap.
     */
    std::uint32_t minHotCount = 3;
    /** Remap-table cache (Figure 9); disabled = free on-chip lookups. */
    bool metaCacheEnabled = false;
    std::uint64_t metaCacheBytes = 16 * 1024;
    std::uint32_t metaCacheAssoc = 8;
    std::uint32_t remapEntryBytes = 4; //!< packed remap entry size
};

/** A Pod: clustered MCs with private migration machinery. */
class Pod
{
  public:
    Pod(std::uint32_t id, EventQueue &eq, MemorySystem &mem,
        const PodParams &params);

    /**
     * Forward one demand access whose home page belongs to this Pod.
     * @param home_page Global page id of the OS-assigned home.
     * @param offset_in_page Byte offset of the line within the page.
     */
    void handleDemand(PageId home_page, std::uint64_t offset_in_page,
                      AccessType type, TimePs arrival, std::uint8_t core,
                      MemoryManager::CompletionFn done,
                      std::uint64_t trace_id = 0);

    /** Interval boundary: pick hot pages and schedule migrations. */
    void onInterval();

    std::uint32_t id() const { return id_; }
    MeaTracker &mea() { return mea_; }
    const RemapTable &remap() const { return remap_; }
    const MigrationEngine &engine() const { return engine_; }
    const MigrationStats &stats() const { return stats_; }
    const MetadataPath *metaPath() const
    {
        return metaPath_ ? &*metaPath_ : nullptr;
    }

    /** Blocked demands + queued/active migration work. */
    std::uint64_t pendingWork() const;

    /** Register this Pod's instruments under "pod<id>.*". */
    void registerMetrics(MetricRegistry &reg) const;

    /** Modeled hardware cost of this Pod's structures, in bits. */
    std::uint64_t trackingStorageBits() const
    {
        return mea_.storageBits();
    }
    std::uint64_t remapStorageBits() const
    {
        return remap_.storageBitsRemap();
    }

  private:
    struct BlockedReq
    {
        std::uint64_t offset;
        AccessType type;
        TimePs arrival;
        std::uint8_t core;
        std::uint64_t traceId; //!< 0 = request not sampled
        TimePs parkedAt;       //!< when a swap lock parked it
        MemoryManager::CompletionFn done;
    };

    /** Stage 2: after any metadata-cache fill, check migration locks. */
    void proceed(std::uint64_t local, BlockedReq r);

    /** Stage 3: translate through the remap table and dispatch. */
    void issueToCurrentLocation(std::uint64_t local, BlockedReq r);

    /** Physical byte address of a pod-local slot. */
    Addr addrOfSlot(std::uint64_t slot) const;

    /** Backing-store address of a metadata block (in fast memory). */
    Addr backingAddrOfBlock(std::uint64_t block) const;

    std::uint64_t findVictimSlot(
        const std::unordered_set<std::uint64_t> &hot_set);

    void scheduleSwap(std::uint64_t hot_local,
                      std::uint64_t victim_resident);

    void unlockAndDrain(std::uint64_t local);

    /** Tracer track for this Pod's lifecycle events ("pod<id>"). */
    std::uint32_t podTrack(Tracer &tr) const;

    static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

    std::uint32_t id_;
    EventQueue &eq_;
    MemorySystem &mem_;
    PodParams params_;
    MeaTracker mea_;
    RemapTable remap_;
    MigrationEngine engine_;
    std::optional<MetadataPath> metaPath_;

    std::uint64_t victimScan_ = 0; //!< rotating fast-slot pointer
    /** Pages with a scheduled or active swap (candidate exclusion). */
    std::unordered_set<std::uint64_t> migrating_;
    /** Pages whose swap has *started* (demands must block). */
    std::unordered_set<std::uint64_t> locked_;
    std::unordered_map<std::uint64_t, std::vector<BlockedReq>> blocked_;
    std::uint64_t blockedCount_ = 0;

    MigrationStats stats_;
};

} // namespace mempod
