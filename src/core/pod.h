/**
 * @file
 * One memory Pod (Figure 5): the MEA activity-tracking unit, the
 * per-Pod remap table with its inverted fast-slot view, the request
 * forwarding path, and the Pod-local migration driver. Pods operate
 * fully independently; migrations never cross Pod boundaries.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/event_queue.h"
#include "core/migration_engine.h"
#include "core/remap_table.h"
#include "mem/manager.h"
#include "mem/memory_system.h"
#include "sim/mechanism_params.h"
#include "sim/metadata_path.h"
#include "tracking/mea.h"

namespace mempod {

/** A Pod: clustered MCs with private migration machinery. */
class Pod
{
  public:
    Pod(std::uint32_t id, EventQueue &eq, MemorySystem &mem,
        const PodParams &params);

    /**
     * Forward one demand access whose home page belongs to this Pod.
     * @param home_page Global page id of the OS-assigned home.
     * @param offset_in_page Byte offset of the line within the page.
     * @param d The demand (d.homeAddr is already decomposed into the
     *        first two parameters; only the remaining fields matter).
     */
    void handleDemand(PageId home_page, std::uint64_t offset_in_page,
                      Demand d);

    /** Interval boundary: pick hot pages and schedule migrations. */
    void onInterval();

    /** Attach the shared migration decision ledger (may stay null). */
    void setDecisionLog(DecisionLog *log) { decisions_ = log; }

    /**
     * Pod-level conservation laws: committed swaps must match the
     * engine's commit count; with `paranoid`, additionally verify the
     * remap table is still a permutation. Panics on violation.
     */
    void validateInvariants(bool paranoid) const;

    std::uint32_t id() const { return id_; }
    MeaTracker &mea() { return mea_; }
    const RemapTable &remap() const { return remap_; }
    const MigrationEngine &engine() const { return engine_; }
    const MigrationStats &stats() const { return stats_; }
    const MetadataPath *metaPath() const
    {
        return metaPath_ ? &*metaPath_ : nullptr;
    }

    /** Blocked demands + queued/active migration work. */
    std::uint64_t pendingWork() const;

    /** Register this Pod's instruments under "pod<id>.*". */
    void registerMetrics(MetricRegistry &reg) const;

    /** Modeled hardware cost of this Pod's structures, in bits. */
    std::uint64_t trackingStorageBits() const
    {
        return mea_.storageBits();
    }
    std::uint64_t remapStorageBits() const
    {
        return remap_.storageBitsRemap();
    }

  private:
    struct BlockedReq
    {
        std::uint64_t offset;
        AccessType type;
        TimePs arrival;
        std::uint8_t core;
        std::uint64_t traceId; //!< 0 = request not sampled
        TimePs parkedAt;       //!< when a swap lock parked it
        MemoryManager::CompletionFn done;
    };

    /** Stage 2: after any metadata-cache fill, check migration locks. */
    void proceed(std::uint64_t local, BlockedReq r);

    /** Stage 3: translate through the remap table and dispatch. */
    void issueToCurrentLocation(std::uint64_t local, BlockedReq r);

    /** Physical byte address of a pod-local slot. */
    Addr addrOfSlot(std::uint64_t slot) const;

    /** Backing-store address of a metadata block (in fast memory). */
    Addr backingAddrOfBlock(std::uint64_t block) const;

    std::uint64_t findVictimSlot(
        const std::unordered_set<std::uint64_t> &hot_set);

    void scheduleSwap(std::uint64_t hot_local,
                      std::uint64_t victim_resident,
                      std::uint32_t tracker_count);

    void unlockAndDrain(std::uint64_t local);

    /** Tracer track for this Pod's lifecycle events ("pod<id>"). */
    std::uint32_t podTrack(Tracer &tr) const;

    static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

    std::uint32_t id_;
    EventQueue &eq_;
    MemorySystem &mem_;
    PodParams params_;
    MeaTracker mea_;
    RemapTable remap_;
    MigrationEngine engine_;
    std::optional<MetadataPath> metaPath_;

    std::uint64_t victimScan_ = 0; //!< rotating fast-slot pointer
    /** Pages with a scheduled or active swap (candidate exclusion). */
    std::unordered_set<std::uint64_t> migrating_;
    /** Pages whose swap has *started* (demands must block). */
    std::unordered_set<std::uint64_t> locked_;
    std::unordered_map<std::uint64_t, std::vector<BlockedReq>> blocked_;
    std::uint64_t blockedCount_ = 0;

    DecisionLog *decisions_ = nullptr; //!< shared ledger (may be null)

    MigrationStats stats_;
};

} // namespace mempod
