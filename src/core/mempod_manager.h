/**
 * @file
 * The top-level MemPod mechanism (Section 5): N independent Pods
 * behind one MemoryManager facade, plus the global interval timer
 * that fires every Pod's migration pass in parallel.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "core/pod.h"
#include "mem/manager.h"
#include "mem/memory_system.h"

namespace mempod {

/** MemPod configuration. */
struct MemPodParams
{
    TimePs interval = 50_us; //!< migration epoch (paper optimum)
    PodParams pod;
};

/** Clustered interval-based migration manager. */
class MemPodManager : public MemoryManager
{
  public:
    MemPodManager(EventQueue &eq, MemorySystem &mem,
                  const MemPodParams &params);

    void handleDemand(Addr home_addr, AccessType type, TimePs arrival,
                      std::uint8_t core, CompletionFn done,
                      std::uint64_t trace_id = 0) override;

    void start() override;

    std::string name() const override { return "MemPod"; }

    const MigrationStats &migrationStats() const override;

    std::uint64_t pendingWork() const override;

    /** Aggregate migration.* plus per-Pod pod<i>.* instruments. */
    void registerMetrics(MetricRegistry &reg) override;

    std::size_t numPods() const { return pods_.size(); }
    Pod &pod(std::size_t i) { return *pods_[i]; }
    const Pod &pod(std::size_t i) const { return *pods_[i]; }

    const MemPodParams &params() const { return params_; }

    /** Total modeled tracking storage across Pods (Table 1). */
    std::uint64_t trackingStorageBits() const;

    /** Total modeled remap-table storage across Pods (Table 1). */
    std::uint64_t remapStorageBits() const;

  private:
    void onIntervalTimer();

    EventQueue &eq_;
    MemorySystem &mem_;
    MemPodParams params_;
    std::vector<std::unique_ptr<Pod>> pods_;
    mutable MigrationStats aggregated_;
};

} // namespace mempod
