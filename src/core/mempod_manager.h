/**
 * @file
 * The top-level MemPod mechanism (Section 5): N independent Pods
 * behind one MemoryManager facade, plus the global interval timer
 * that fires every Pod's migration pass in parallel.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "core/pod.h"
#include "mem/manager.h"
#include "mem/memory_system.h"
#include "sim/mechanism_params.h"

namespace mempod {

/** Clustered interval-based migration manager. */
class MemPodManager : public MemoryManager
{
  public:
    MemPodManager(EventQueue &eq, MemorySystem &mem,
                  const MemPodParams &params);

    void handleDemand(Demand d) override;

    void start() override;

    std::string name() const override { return "MemPod"; }

    const MigrationStats &migrationStats() const override;

    std::uint64_t pendingWork() const override;

    /** Forward the ledger to every Pod (each records under its id). */
    void setDecisionLog(DecisionLog *log) override;

    /** Run every Pod's conservation checks. */
    void validateInvariants(bool paranoid) const override;

    /** Aggregate migration.* plus per-Pod pod<i>.* instruments. */
    void registerMetrics(MetricRegistry &reg) override;

    std::size_t numPods() const { return pods_.size(); }
    Pod &pod(std::size_t i) { return *pods_[i]; }
    const Pod &pod(std::size_t i) const { return *pods_[i]; }

    const MemPodParams &params() const { return params_; }

    /** Total modeled tracking storage across Pods (Table 1). */
    std::uint64_t trackingStorageBits() const;

    /** Total modeled remap-table storage across Pods (Table 1). */
    std::uint64_t remapStorageBits() const;

  private:
    EventQueue &eq_;
    MemorySystem &mem_;
    MemPodParams params_;
    std::vector<std::unique_ptr<Pod>> pods_;
    /** Fires every Pod's migration pass in parallel, every interval. */
    PeriodicTimer intervalTimer_;
    mutable MigrationStats aggregated_;
};

} // namespace mempod
