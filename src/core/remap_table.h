/**
 * @file
 * Per-Pod remap table (Section 5.2): a full permutation between a
 * Pod's original page ids and their current locations, plus the
 * inverted view needed to find the original page residing in each
 * fast slot when choosing an eviction victim.
 *
 * Pod-local page ids: [0, fastSlots) are fast-memory locations,
 * [fastSlots, numPages) are slow-memory locations. Initially the
 * mapping is the identity (every page at its home).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mempod {

/** Bidirectional page-location permutation for one Pod. */
class RemapTable
{
  public:
    /**
     * @param num_pages Pages managed by this Pod (fast + slow).
     * @param fast_slots How many of them are fast-memory locations.
     */
    RemapTable(std::uint64_t num_pages, std::uint64_t fast_slots);

    /** Current location (slot) of original page `orig`. */
    std::uint64_t locationOf(std::uint64_t orig) const;

    /** Original page currently residing in `slot`. */
    std::uint64_t residentOf(std::uint64_t slot) const;

    /** Exchange the locations of two original pages. */
    void swap(std::uint64_t orig_a, std::uint64_t orig_b);

    std::uint64_t numPages() const { return location_.size(); }
    std::uint64_t fastSlots() const { return fastSlots_; }

    /** Is `orig` currently resident in fast memory? */
    bool
    inFast(std::uint64_t orig) const
    {
        return locationOf(orig) < fastSlots_;
    }

    /** True when no page has migrated. */
    bool isIdentity() const;

    /** Fast slots currently holding a page other than their home. */
    std::uint64_t occupiedFastSlots() const { return occupiedFast_; }

    /** occupiedFastSlots() / fastSlots(), the remap-table occupancy. */
    double
    fastOccupancy() const
    {
        return fastSlots_ ? static_cast<double>(occupiedFast_) /
                                static_cast<double>(fastSlots_)
                          : 0.0;
    }

    /** Modeled hardware cost: one location entry per page. */
    std::uint64_t storageBitsRemap() const;

    /** Modeled hardware cost of the inverted fast-slot table. */
    std::uint64_t storageBitsInverted() const;

    /** Verify the permutation invariant; panics on corruption. */
    void checkConsistency() const;

  private:
    std::uint64_t fastSlots_;
    std::uint64_t occupiedFast_ = 0; //!< fast slots holding a guest page
    std::vector<std::uint32_t> location_; //!< orig -> slot
    std::vector<std::uint32_t> resident_; //!< slot -> orig
};

} // namespace mempod
