#include "core/pod.h"

#include <algorithm>

#include "common/log.h"
#include "common/tracer.h"

namespace mempod {

namespace {

std::uint32_t
effectiveMigrationCap(const PodParams &p)
{
    return p.maxMigrationsPerInterval ? p.maxMigrationsPerInterval
                                      : p.meaEntries;
}

std::uint32_t
podIdBits(std::uint64_t pages_per_pod)
{
    std::uint32_t bits = 0;
    while ((1ull << bits) < pages_per_pod)
        ++bits;
    return bits;
}

} // namespace

Pod::Pod(std::uint32_t id, EventQueue &eq, MemorySystem &mem,
         const PodParams &params)
    : id_(id),
      eq_(eq),
      mem_(mem),
      params_(params),
      mea_(params.meaEntries, params.meaCounterBits,
           podIdBits(mem.geom().pagesPerPod())),
      remap_(mem.geom().pagesPerPod(), mem.geom().fastPagesPerPod()),
      engine_(eq, mem, /*max_in_flight_ops=*/1,
              "pod" + std::to_string(id) + ".engine")
{
    if (params_.metaCacheEnabled) {
        metaPath_.emplace(eq, mem, params_.metaCacheBytes,
                          params_.metaCacheAssoc, params_.remapEntryBytes,
                          [this](std::uint64_t block) {
                              return backingAddrOfBlock(block);
                          });
    }
}

Addr
Pod::addrOfSlot(std::uint64_t slot) const
{
    return AddressMap::addrOfPage(mem_.map().pageOfPodLocal(id_, slot));
}

Addr
Pod::backingAddrOfBlock(std::uint64_t block) const
{
    // The backing store occupies the tail of this Pod's fast slots.
    const std::uint64_t byte_off = block * MetadataCache::kBlockBytes;
    const std::uint64_t page_off = byte_off / kPageBytes;
    const std::uint64_t fast_slots = remap_.fastSlots();
    const std::uint64_t slot =
        fast_slots - 1 - (page_off % fast_slots);
    return addrOfSlot(slot) + byte_off % kPageBytes;
}

void
Pod::handleDemand(PageId home_page, std::uint64_t offset_in_page,
                  Demand d)
{
    const std::uint64_t local = mem_.map().podLocalOfPage(home_page);
    mea_.touch(local);
    if (decisions_)
        decisions_->noteAccess(id_, local, remap_.inFast(local),
                               eq_.now());
    BlockedReq r{offset_in_page, d.type,    d.arrival,
                 d.core,         d.traceId, /*parkedAt=*/0,
                 std::move(d.done)};
    if (!metaPath_) {
        proceed(local, std::move(r));
        return;
    }
    const std::uint64_t misses_before = metaPath_->misses();
    const TimePs t0 = eq_.now();
    metaPath_->access(local,
                      [this, local, t0, r = std::move(r)]() mutable {
                          // Hits continue synchronously (zero delay);
                          // misses charge the fill wait to metadata.
                          stats_.metadataPs += eq_.now() - t0;
                          proceed(local, std::move(r));
                      });
    if (metaPath_->misses() > misses_before)
        ++stats_.metaCacheMisses;
    else
        ++stats_.metaCacheHits;
}

void
Pod::proceed(std::uint64_t local, BlockedReq r)
{
    if (locked_.contains(local)) {
        ++stats_.blockedRequests;
        ++blockedCount_;
        r.parkedAt = eq_.now();
        if (r.traceId != 0) {
            if (Tracer *tr = eq_.tracer()) {
                TraceArgs a;
                a.add("page", local);
                tr->asyncBegin(podTrack(*tr), eq_.now(), "req",
                               r.traceId, "blocked", a.str());
            }
        }
        blocked_[local].push_back(std::move(r));
        return;
    }
    issueToCurrentLocation(local, std::move(r));
}

void
Pod::issueToCurrentLocation(std::uint64_t local, BlockedReq r)
{
    const std::uint64_t slot = remap_.locationOf(local);
    Request req;
    req.addr = addrOfSlot(slot) + r.offset;
    req.type = r.type;
    req.kind = Request::Kind::kDemand;
    req.arrival = r.arrival;
    req.core = r.core;
    req.traceId = r.traceId;
    req.onComplete = std::move(r.done);
    mem_.access(std::move(req));
}

std::uint64_t
Pod::findVictimSlot(const std::unordered_set<std::uint64_t> &hot_set)
{
    const std::uint64_t fast_slots = remap_.fastSlots();
    for (std::uint64_t n = 0; n < fast_slots; ++n) {
        const std::uint64_t slot = victimScan_;
        victimScan_ = (victimScan_ + 1) % fast_slots;
        const std::uint64_t resident = remap_.residentOf(slot);
        if (hot_set.contains(resident) || migrating_.contains(resident))
            continue;
        return slot;
    }
    return kNoSlot;
}

std::uint32_t
Pod::podTrack(Tracer &tr) const
{
    return tr.track("pod" + std::to_string(id_));
}

void
Pod::scheduleSwap(std::uint64_t hot_local, std::uint64_t victim_resident,
                  std::uint32_t tracker_count)
{
    migrating_.insert(hot_local);
    migrating_.insert(victim_resident);
    const std::uint64_t decision =
        decisions_ ? decisions_->record(id_, hot_local, victim_resident,
                                        tracker_count, eq_.now())
                   : DecisionLog::kNoId;

    // Migration lifecycle: the MEA victory selects the candidate here;
    // the flow continues through the engine's swap and ends at the
    // remap commit below.
    std::uint64_t flow = 0;
    if (Tracer *tr = eq_.tracer()) {
        flow = tr->newFlowId();
        const std::uint32_t tid = podTrack(*tr);
        TraceArgs a;
        a.add("hot_page", hot_local).add("victim_page", victim_resident);
        tr->instant(tid, eq_.now(), "mea_victory", a.str());
        tr->asyncBegin(tid, eq_.now(), "mig", flow, "migration",
                       a.str());
        tr->flowStart(tid, eq_.now(), "mig", flow, "migration");
    }

    MigrationEngine::SwapOp op;
    op.locA = addrOfSlot(remap_.locationOf(hot_local));
    op.locB = addrOfSlot(remap_.locationOf(victim_resident));
    op.lines = static_cast<std::uint32_t>(kLinesPerPage);
    op.traceId = flow;
    op.onStart = [this, hot_local, victim_resident] {
        locked_.insert(hot_local);
        locked_.insert(victim_resident);
    };
    op.onCommit = [this, hot_local, victim_resident, flow, decision] {
        remap_.swap(hot_local, victim_resident);
        ++stats_.migrations;
        stats_.bytesMoved += 2 * kPageBytes;
        if (decision != DecisionLog::kNoId)
            decisions_->commit(decision, eq_.now());
        if (flow != 0) {
            if (Tracer *tr = eq_.tracer()) {
                const std::uint32_t tid = podTrack(*tr);
                tr->instant(tid, eq_.now(), "remap_commit");
                tr->flowEnd(tid, eq_.now(), "mig", flow, "migration");
                tr->asyncEnd(tid, eq_.now(), "mig", flow, "migration");
            }
        }
        unlockAndDrain(hot_local);
        unlockAndDrain(victim_resident);
    };
    op.onAbort = [this, hot_local, victim_resident, flow, decision] {
        if (decision != DecisionLog::kNoId)
            decisions_->abort(decision, eq_.now());
        if (flow != 0) {
            if (Tracer *tr = eq_.tracer()) {
                const std::uint32_t tid = podTrack(*tr);
                tr->instant(tid, eq_.now(), "swap_aborted");
                tr->flowEnd(tid, eq_.now(), "mig", flow, "migration");
                tr->asyncEnd(tid, eq_.now(), "mig", flow, "migration");
            }
        }
        unlockAndDrain(hot_local);
        unlockAndDrain(victim_resident);
    };
    engine_.submit(std::move(op));
}

void
Pod::unlockAndDrain(std::uint64_t local)
{
    migrating_.erase(local);
    locked_.erase(local);
    auto it = blocked_.find(local);
    if (it == blocked_.end())
        return;
    std::vector<BlockedReq> reqs = std::move(it->second);
    blocked_.erase(it);
    MEMPOD_ASSERT(blockedCount_ >= reqs.size(), "blocked accounting");
    blockedCount_ -= reqs.size();
    const TimePs now = eq_.now();
    for (auto &r : reqs) {
        stats_.blockedPs += now - r.parkedAt;
        if (r.traceId != 0) {
            if (Tracer *tr = eq_.tracer())
                tr->asyncEnd(podTrack(*tr), now, "req", r.traceId,
                             "blocked");
        }
        issueToCurrentLocation(local, std::move(r));
    }
}

void
Pod::onInterval()
{
    ++stats_.intervals;
    // Candidates identified last interval but never started are stale.
    engine_.clearQueued();

    const auto hot = mea_.snapshot();
    std::unordered_set<std::uint64_t> hot_set;
    hot_set.reserve(hot.size() * 2);
    for (const auto &e : hot)
        hot_set.insert(e.id);

    const std::uint32_t cap = effectiveMigrationCap(params_);
    // Narrow counters saturate below the configured floor; clamp so a
    // 1-bit configuration still migrates its (count-1) tracked pages.
    const std::uint32_t min_hot =
        std::min(params_.minHotCount, mea_.counterMax());
    std::uint32_t scheduled = 0;
    for (const auto &e : hot) {
        if (scheduled >= cap)
            break;
        if (e.count < min_hot)
            break; // hot list is sorted by count
        const std::uint64_t h = e.id;
        if (migrating_.contains(h))
            continue;
        if (remap_.inFast(h)) {
            ++stats_.candidatesSkipped; // already resident in fast
            continue;
        }
        const std::uint64_t victim = findVictimSlot(hot_set);
        if (victim == kNoSlot)
            break; // every fast slot is hot or busy
        scheduleSwap(h, remap_.residentOf(victim), e.count);
        ++scheduled;
    }
    mea_.reset();
}

void
Pod::validateInvariants(bool paranoid) const
{
    if (stats_.migrations != engine_.stats().opsCommitted)
        MEMPOD_PANIC(
            "invariant violated [pod_migration_conservation]: pod %u "
            "counted %llu migrations but its engine committed %llu",
            id_, static_cast<unsigned long long>(stats_.migrations),
            static_cast<unsigned long long>(
                engine_.stats().opsCommitted));
    if (paranoid)
        remap_.checkConsistency();
}

std::uint64_t
Pod::pendingWork() const
{
    return blockedCount_ + engine_.queuedOps() + engine_.activeOps() +
           (metaPath_ ? metaPath_->outstandingFills() : 0);
}

void
Pod::registerMetrics(MetricRegistry &reg) const
{
    const std::string p = "pod" + std::to_string(id_);
    reg.attachCounter(p + ".migration.migrations",
                      "page swaps committed by this Pod",
                      &stats_.migrations);
    reg.attachCounter(p + ".migration.bytes_moved",
                      "migration bytes moved by this Pod",
                      &stats_.bytesMoved);
    reg.attachCounter(p + ".migration.blocked_requests",
                      "demands delayed by an in-progress swap",
                      &stats_.blockedRequests);
    reg.attachCounter(p + ".migration.intervals",
                      "interval-trigger firings seen by this Pod",
                      &stats_.intervals);
    reg.attachCounter(p + ".migration.candidates_skipped",
                      "hot candidates already resident in fast",
                      &stats_.candidatesSkipped);
    reg.attachCounter(p + ".migration.blocked_ps",
                      "summed demand delay behind this Pod's swaps",
                      &stats_.blockedPs);
    reg.attachCounter(p + ".migration.metadata_ps",
                      "summed demand delay on metadata-cache misses",
                      &stats_.metadataPs);
    reg.addGauge(p + ".blocked_demands",
                 "demand requests currently held by a swap lock",
                 [this] { return static_cast<double>(blockedCount_); });

    reg.addCounterFn(p + ".mea.sweeps",
                     "MEA decrement-all sweeps (operation (c))",
                     [this] { return mea_.sweeps(); });
    reg.addCounterFn(p + ".mea.evictions",
                     "MEA entries evicted at count zero",
                     [this] { return mea_.evictions(); });
    reg.addCounterFn(p + ".mea.resets",
                     "MEA tracker clears at interval boundaries",
                     [this] { return mea_.resets(); });
    reg.addGauge(p + ".mea.tracked_entries",
                 "pages currently tracked by the MEA map",
                 [this] { return static_cast<double>(mea_.size()); });

    reg.addGauge(p + ".remap.occupied_fast_slots",
                 "fast slots holding a page other than their home",
                 [this] {
                     return static_cast<double>(
                         remap_.occupiedFastSlots());
                 });
    reg.addGauge(p + ".remap.occupancy",
                 "fraction of fast slots holding a migrated page",
                 [this] { return remap_.fastOccupancy(); });

    engine_.registerMetrics(reg, p + ".engine");
    if (metaPath_)
        metaPath_->registerMetrics(reg, p + ".meta_cache");
}

} // namespace mempod
