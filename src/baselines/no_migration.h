/**
 * @file
 * The no-migration baseline: requests are served wherever the OS
 * placed them. With the paper's two-level geometry this is the "TLM"
 * normalization baseline of Figures 8-10; with a single-tier geometry
 * it models the HBM-only / DDR-only configurations.
 */
#pragma once

#include "mem/manager.h"
#include "mem/memory_system.h"

namespace mempod {

/** Static placement; the identity memory manager. */
class NoMigrationManager : public MemoryManager
{
  public:
    explicit NoMigrationManager(MemorySystem &mem) : mem_(mem) {}

    void handleDemand(Demand d) override;

    std::string name() const override { return "NoMigration"; }

    /** Static placement never migrates; panic if counters say so. */
    void validateInvariants(bool paranoid) const override;

  private:
    MemorySystem &mem_;
};

} // namespace mempod
