/**
 * @file
 * THM baseline (Sim et al., MICRO-47): transparent hardware management
 * with migrations restricted to *segments* — one fast page plus N slow
 * pages (N = slow:fast capacity ratio). A per-segment competing
 * counter triggers a threshold-based swap of the winning slow page
 * with the current fast-resident page. Cheap bookkeeping, limited
 * flexibility: at most one hot page per segment can live in fast
 * memory, and unlucky counter races admit cold pages (false
 * positives) — the tradeoffs Table 1 of the paper records.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "baselines/lock_table.h"
#include "common/event_queue.h"
#include "core/migration_engine.h"
#include "mem/manager.h"
#include "mem/memory_system.h"
#include "sim/mechanism_params.h"
#include "sim/metadata_path.h"
#include "tracking/competing_counter.h"

namespace mempod {

/** Segment-restricted threshold-triggered migration manager. */
class ThmManager : public MemoryManager
{
  public:
    ThmManager(EventQueue &eq, MemorySystem &mem, const ThmParams &params);

    void handleDemand(Demand d) override;

    std::string name() const override { return "THM"; }

    std::uint64_t pendingWork() const override;

    /**
     * Committed swaps must match the engine's commit count; with
     * `paranoid`, additionally verify every segment's member->slot
     * table is still a permutation. Panics on violation.
     */
    void validateInvariants(bool paranoid) const override;

    void
    registerMetrics(MetricRegistry &reg) override
    {
        MemoryManager::registerMetrics(reg);
        engine_.registerMetrics(reg, "thm.engine");
        if (metaPath_)
            metaPath_->registerMetrics(reg, "thm.meta_cache");
        reg.addGauge("thm.segments_allocated",
                     "segments with live counter/remap state", [this] {
                         return static_cast<double>(segs_.size());
                     });
    }

    std::uint64_t numSegments() const { return numSegments_; }
    std::uint64_t slowPerSegment() const { return ratio_; }

    /** Modeled tracking storage (Table 1): 8 bits per segment. */
    std::uint64_t trackingStorageBits() const
    {
        return numSegments_ * params_.counterBits;
    }

    /** Modeled remap storage: one fast-slot pointer per segment. */
    std::uint64_t remapStorageBits() const;

    /** Current fast-resident member of a segment (0 = original). */
    std::uint32_t fastResidentMember(std::uint64_t seg) const;

    const MigrationEngine &engine() const { return engine_; }
    const ThmParams &params() const { return params_; }

  private:
    /** Per-segment migration state, allocated on first touch. */
    struct SegState
    {
        CompetingCounter cc;
        std::vector<std::uint8_t> slotOf; //!< member -> slot (0 = fast)
    };

    SegState &segState(std::uint64_t seg);

    /** (segment, member) of a home page; member 0 is the fast page. */
    std::pair<std::uint64_t, std::uint32_t> segmentOf(PageId page) const;

    /** Home page of (segment, slot). */
    PageId pageAt(std::uint64_t seg, std::uint32_t slot) const;

    void proceed(Demand d);
    void issueAt(std::uint64_t seg, std::uint32_t slot, Demand d);
    void scheduleSwap(std::uint64_t seg, std::uint32_t member);

    EventQueue &eq_;
    MemorySystem &mem_;
    ThmParams params_;
    std::uint64_t ratio_;
    std::uint64_t numSegments_;
    std::unordered_map<std::uint64_t, SegState> segs_;
    MigrationEngine engine_;
    LockTable locks_; //!< segments whose swap started (demand block)
    /** Segments with a scheduled-or-active swap. */
    std::unordered_set<std::uint64_t> busySegs_;
    std::optional<MetadataPath> metaPath_;
};

} // namespace mempod
