/**
 * @file
 * HMA baseline (Meswani et al., HPCA 2015): a HW/SW mechanism with one
 * full counter per page, OS-driven any-to-any migration at very large
 * epochs, and a fixed sorting penalty that freezes memory intake at
 * every epoch boundary (the paper models 7 ms after generously
 * discounting a measured 1.95 s quicksort). HMA needs no remap table
 * at runtime — the OS rewrites page tables — so lookups are free, but
 * its counters are large (16 bits x every page = 9 MB) and its epochs
 * 2000x longer than MemPod's.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "baselines/lock_table.h"
#include "common/event_queue.h"
#include "core/migration_engine.h"
#include "core/remap_table.h"
#include "mem/manager.h"
#include "mem/memory_system.h"
#include "sim/mechanism_params.h"
#include "sim/metadata_path.h"
#include "tracking/full_counters.h"

#include <optional>

namespace mempod {

/** Full-counter, OS-epoch migration manager. */
class HmaManager : public MemoryManager
{
  public:
    HmaManager(EventQueue &eq, MemorySystem &mem, const HmaParams &params);

    void handleDemand(Demand d) override;

    void start() override;

    std::string name() const override { return "HMA"; }

    const MigrationStats &migrationStats() const override
    {
        return mstats_;
    }

    std::uint64_t pendingWork() const override;

    /**
     * Committed swaps must match the engine's commit count; with
     * `paranoid`, additionally verify the OS placement view is still
     * a permutation. Panics on violation.
     */
    void validateInvariants(bool paranoid) const override;

    void
    registerMetrics(MetricRegistry &reg) override
    {
        MemoryManager::registerMetrics(reg);
        engine_.registerMetrics(reg, "hma.engine");
        if (metaPath_)
            metaPath_->registerMetrics(reg, "hma.meta_cache");
        reg.addGauge("hma.placement.occupied_fast_slots",
                     "fast slots holding a page other than their home",
                     [this] {
                         return static_cast<double>(
                             placement_.occupiedFastSlots());
                     });
        reg.addGauge("hma.placement.occupancy",
                     "fraction of fast slots holding a migrated page",
                     [this] { return placement_.fastOccupancy(); });
    }

    /** Receives the sort *duration* each epoch (core freeze). */
    void setCoreStallHook(std::function<void(TimePs)> hook) override
    {
        stallHook_ = std::move(hook);
    }

    const FullCounters &counters() const { return counters_; }
    const RemapTable &placement() const { return placement_; }
    const MigrationEngine &engine() const { return engine_; }
    const HmaParams &params() const { return params_; }

    /** Modeled tracking storage (Table 1): 16 bits per page. */
    std::uint64_t trackingStorageBits() const
    {
        return counters_.storageBits();
    }

  private:
    void onInterval();
    void issueToCurrentLocation(Demand d);
    std::uint64_t findVictimSlot(
        const std::unordered_set<std::uint64_t> &hot_set);

    /** Count/park/issue; stage after any counter-cache fill. */
    void proceed(Demand d);

    EventQueue &eq_;
    MemorySystem &mem_;
    HmaParams params_;
    FullCounters counters_;
    RemapTable placement_; //!< models the OS page-table view
    MigrationEngine engine_;
    LockTable locks_; //!< pages whose swap has started (demand block)
    /** Pages with a scheduled-or-active swap (candidate exclusion). */
    std::unordered_set<std::uint64_t> busy_;
    std::optional<MetadataPath> metaPath_;
    std::function<void(TimePs)> stallHook_;
    PeriodicTimer epochTimer_;
    std::uint64_t victimScan_ = 0;
};

} // namespace mempod
