#include "baselines/hma.h"

#include "common/log.h"

namespace mempod {

HmaManager::HmaManager(EventQueue &eq, MemorySystem &mem,
                       const HmaParams &params)
    : eq_(eq),
      mem_(mem),
      params_(params),
      counters_(mem.geom().totalPages(), params.counterBits),
      placement_(mem.geom().totalPages(), mem.geom().fastPages()),
      engine_(eq, mem, /*max_in_flight_ops=*/1)
{
    if (params_.metaCacheEnabled) {
        const std::uint64_t fast_bytes = mem.geom().fastBytes;
        metaPath_.emplace(
            eq, mem, params_.metaCacheBytes, params_.metaCacheAssoc,
            params_.counterEntryBytes, [fast_bytes](std::uint64_t block) {
                // Counters live in a backing store carved out of
                // stacked memory.
                return (block * MetadataCache::kBlockBytes) % fast_bytes;
            });
    }
}

void
HmaManager::handleDemand(Addr home_addr, AccessType type, TimePs arrival,
                         std::uint8_t core, CompletionFn done)
{
    BlockedDemand d{home_addr, type, arrival, core, std::move(done)};
    if (!metaPath_) {
        proceed(std::move(d));
        return;
    }
    // The per-page counter must be fetched to be updated; a miss
    // blocks the request just like the paper's model.
    const PageId page = AddressMap::pageOf(home_addr);
    const std::uint64_t misses_before = metaPath_->misses();
    metaPath_->access(page, [this, d = std::move(d)]() mutable {
        proceed(std::move(d));
    });
    if (metaPath_->misses() > misses_before)
        ++mstats_.metaCacheMisses;
    else
        ++mstats_.metaCacheHits;
}

void
HmaManager::proceed(BlockedDemand d)
{
    const PageId page = AddressMap::pageOf(d.homeAddr);
    counters_.touch(page);
    if (locks_.isLocked(page)) {
        ++mstats_.blockedRequests;
        locks_.park(page, std::move(d));
        return;
    }
    issueToCurrentLocation(d);
}

void
HmaManager::issueToCurrentLocation(const BlockedDemand &d)
{
    const PageId page = AddressMap::pageOf(d.homeAddr);
    const std::uint64_t slot = placement_.locationOf(page);
    Request req;
    req.addr = AddressMap::addrOfPage(slot) + d.homeAddr % kPageBytes;
    req.type = d.type;
    req.kind = Request::Kind::kDemand;
    req.arrival = d.arrival;
    req.core = d.core;
    req.onComplete = [done = d.done](TimePs fin) {
        if (done)
            done(fin);
    };
    mem_.access(std::move(req));
}

void
HmaManager::start()
{
    eq_.scheduleAfter(params_.interval, [this] {
        onInterval();
        start();
    });
}

std::uint64_t
HmaManager::findVictimSlot(
    const std::unordered_set<std::uint64_t> &hot_set)
{
    const std::uint64_t fast_slots = placement_.fastSlots();
    for (std::uint64_t n = 0; n < fast_slots; ++n) {
        const std::uint64_t slot = victimScan_;
        victimScan_ = (victimScan_ + 1) % fast_slots;
        const std::uint64_t resident = placement_.residentOf(slot);
        if (hot_set.contains(resident) || busy_.contains(resident))
            continue;
        return slot;
    }
    return ~std::uint64_t{0};
}

void
HmaManager::onInterval()
{
    ++mstats_.intervals;

    // The OS interrupt: the cores sort counters for sortStall; they
    // issue no memory requests meanwhile (the application is paused,
    // not queuing up memory stall).
    if (stallHook_)
        stallHook_(params_.sortStall);

    engine_.clearQueued();

    const auto ranked = counters_.topN(params_.maxMigrationsPerInterval);
    std::unordered_set<std::uint64_t> hot_set;
    hot_set.reserve(ranked.size() * 2);
    for (const auto &e : ranked)
        if (e.count >= params_.threshold)
            hot_set.insert(e.id);

    for (const auto &e : ranked) {
        if (e.count < params_.threshold)
            break; // ranked is sorted descending
        const PageId page = e.id;
        if (busy_.contains(page))
            continue;
        if (placement_.inFast(page)) {
            ++mstats_.candidatesSkipped;
            continue;
        }
        const std::uint64_t victim = findVictimSlot(hot_set);
        if (victim == ~std::uint64_t{0})
            break;
        const std::uint64_t resident = placement_.residentOf(victim);
        busy_.insert(page);
        busy_.insert(resident);

        MigrationEngine::SwapOp op;
        op.locA = AddressMap::addrOfPage(placement_.locationOf(page));
        op.locB = AddressMap::addrOfPage(victim);
        op.lines = static_cast<std::uint32_t>(kLinesPerPage);
        auto release = [this](std::uint64_t key) {
            busy_.erase(key);
            for (auto &d : locks_.unlock(key))
                issueToCurrentLocation(d);
        };
        // Demands block only while the data is actually in flight.
        op.onStart = [this, page, resident] {
            locks_.lock(page);
            locks_.lock(resident);
        };
        op.onCommit = [this, page, resident, release] {
            placement_.swap(page, resident);
            ++mstats_.migrations;
            mstats_.bytesMoved += 2 * kPageBytes;
            release(page);
            release(resident);
        };
        op.onAbort = [page, resident, release] {
            release(page);
            release(resident);
        };
        engine_.submit(std::move(op));
    }

    counters_.reset();
}

std::uint64_t
HmaManager::pendingWork() const
{
    return locks_.parkedCount() + engine_.queuedOps() +
           engine_.activeOps() +
           (metaPath_ ? metaPath_->outstandingFills() : 0);
}

} // namespace mempod
