#include "baselines/hma.h"

#include <memory>

#include "common/log.h"
#include "common/tracer.h"
#include "mem/manager_factory.h"

namespace mempod {

HmaManager::HmaManager(EventQueue &eq, MemorySystem &mem,
                       const HmaParams &params)
    : eq_(eq),
      mem_(mem),
      params_(params),
      counters_(mem.geom().totalPages(), params.counterBits),
      placement_(mem.geom().totalPages(), mem.geom().fastPages()),
      engine_(eq, mem, /*max_in_flight_ops=*/1, "hma.engine"),
      epochTimer_(eq, params.interval, [this] { onInterval(); })
{
    if (params_.metaCacheEnabled) {
        const std::uint64_t fast_bytes = mem.geom().fastBytes;
        metaPath_.emplace(
            eq, mem, params_.metaCacheBytes, params_.metaCacheAssoc,
            params_.counterEntryBytes, [fast_bytes](std::uint64_t block) {
                // Counters live in a backing store carved out of
                // stacked memory.
                return (block * MetadataCache::kBlockBytes) % fast_bytes;
            });
    }
}

void
HmaManager::handleDemand(Demand d)
{
    if (!metaPath_) {
        proceed(std::move(d));
        return;
    }
    // The per-page counter must be fetched to be updated; a miss
    // blocks the request just like the paper's model.
    const PageId page = AddressMap::pageOf(d.homeAddr);
    const std::uint64_t misses_before = metaPath_->misses();
    const TimePs t0 = eq_.now();
    metaPath_->access(page, [this, t0, d = std::move(d)]() mutable {
        mstats_.metadataPs += eq_.now() - t0;
        proceed(std::move(d));
    });
    if (metaPath_->misses() > misses_before)
        ++mstats_.metaCacheMisses;
    else
        ++mstats_.metaCacheHits;
}

void
HmaManager::proceed(Demand d)
{
    const PageId page = AddressMap::pageOf(d.homeAddr);
    counters_.touch(page);
    if (decisions_)
        decisions_->noteAccess(DecisionLog::kNoPod, page,
                               placement_.inFast(page), eq_.now());
    if (locks_.isLocked(page)) {
        ++mstats_.blockedRequests;
        d.parkedAt = eq_.now();
        if (d.traceId != 0) {
            if (Tracer *tr = eq_.tracer()) {
                TraceArgs a;
                a.add("page", page);
                tr->asyncBegin(tr->track("hma"), eq_.now(), "req",
                               d.traceId, "blocked", a.str());
            }
        }
        locks_.park(page, std::move(d));
        return;
    }
    issueToCurrentLocation(std::move(d));
}

void
HmaManager::issueToCurrentLocation(Demand d)
{
    const PageId page = AddressMap::pageOf(d.homeAddr);
    const std::uint64_t slot = placement_.locationOf(page);
    Request req;
    req.addr = AddressMap::addrOfPage(slot) + d.homeAddr % kPageBytes;
    req.type = d.type;
    req.kind = Request::Kind::kDemand;
    req.arrival = d.arrival;
    req.core = d.core;
    req.traceId = d.traceId;
    req.onComplete = std::move(d.done);
    mem_.access(std::move(req));
}

void
HmaManager::start()
{
    epochTimer_.start();
}

std::uint64_t
HmaManager::findVictimSlot(
    const std::unordered_set<std::uint64_t> &hot_set)
{
    const std::uint64_t fast_slots = placement_.fastSlots();
    for (std::uint64_t n = 0; n < fast_slots; ++n) {
        const std::uint64_t slot = victimScan_;
        victimScan_ = (victimScan_ + 1) % fast_slots;
        const std::uint64_t resident = placement_.residentOf(slot);
        if (hot_set.contains(resident) || busy_.contains(resident))
            continue;
        return slot;
    }
    return ~std::uint64_t{0};
}

void
HmaManager::onInterval()
{
    ++mstats_.intervals;

    // The OS interrupt: the cores sort counters for sortStall; they
    // issue no memory requests meanwhile (the application is paused,
    // not queuing up memory stall).
    if (stallHook_)
        stallHook_(params_.sortStall);

    engine_.clearQueued();

    const auto ranked = counters_.topN(params_.maxMigrationsPerInterval);
    std::unordered_set<std::uint64_t> hot_set;
    hot_set.reserve(ranked.size() * 2);
    for (const auto &e : ranked)
        if (e.count >= params_.threshold)
            hot_set.insert(e.id);

    for (const auto &e : ranked) {
        if (e.count < params_.threshold)
            break; // ranked is sorted descending
        const PageId page = e.id;
        if (busy_.contains(page))
            continue;
        if (placement_.inFast(page)) {
            ++mstats_.candidatesSkipped;
            continue;
        }
        const std::uint64_t victim = findVictimSlot(hot_set);
        if (victim == ~std::uint64_t{0})
            break;
        const std::uint64_t resident = placement_.residentOf(victim);
        busy_.insert(page);
        busy_.insert(resident);
        const std::uint64_t decision =
            decisions_ ? decisions_->record(DecisionLog::kNoPod, page,
                                            resident, e.count, eq_.now())
                       : DecisionLog::kNoId;

        std::uint64_t flow = 0;
        if (Tracer *tr = eq_.tracer()) {
            flow = tr->newFlowId();
            const std::uint32_t tid = tr->track("hma");
            TraceArgs a;
            a.add("hot_page", page).add("victim_page", resident);
            tr->instant(tid, eq_.now(), "candidate_selected", a.str());
            tr->asyncBegin(tid, eq_.now(), "mig", flow, "migration",
                           a.str());
            tr->flowStart(tid, eq_.now(), "mig", flow, "migration");
        }

        MigrationEngine::SwapOp op;
        op.locA = AddressMap::addrOfPage(placement_.locationOf(page));
        op.locB = AddressMap::addrOfPage(victim);
        op.lines = static_cast<std::uint32_t>(kLinesPerPage);
        op.traceId = flow;
        auto release = [this](std::uint64_t key) {
            busy_.erase(key);
            const TimePs now = eq_.now();
            for (auto &d : locks_.unlock(key)) {
                mstats_.blockedPs += now - d.parkedAt;
                if (d.traceId != 0) {
                    if (Tracer *tr = eq_.tracer())
                        tr->asyncEnd(tr->track("hma"), now, "req",
                                     d.traceId, "blocked");
                }
                issueToCurrentLocation(std::move(d));
            }
        };
        // Demands block only while the data is actually in flight.
        op.onStart = [this, page, resident] {
            locks_.lock(page);
            locks_.lock(resident);
        };
        op.onCommit = [this, page, resident, release, flow, decision] {
            placement_.swap(page, resident);
            ++mstats_.migrations;
            mstats_.bytesMoved += 2 * kPageBytes;
            if (decision != DecisionLog::kNoId)
                decisions_->commit(decision, eq_.now());
            if (flow != 0) {
                if (Tracer *tr = eq_.tracer()) {
                    const std::uint32_t tid = tr->track("hma");
                    tr->instant(tid, eq_.now(), "remap_commit");
                    tr->flowEnd(tid, eq_.now(), "mig", flow, "migration");
                    tr->asyncEnd(tid, eq_.now(), "mig", flow,
                                 "migration");
                }
            }
            release(page);
            release(resident);
        };
        op.onAbort = [this, page, resident, release, flow, decision] {
            if (decision != DecisionLog::kNoId)
                decisions_->abort(decision, eq_.now());
            if (flow != 0) {
                if (Tracer *tr = eq_.tracer()) {
                    const std::uint32_t tid = tr->track("hma");
                    tr->instant(tid, eq_.now(), "swap_aborted");
                    tr->flowEnd(tid, eq_.now(), "mig", flow, "migration");
                    tr->asyncEnd(tid, eq_.now(), "mig", flow,
                                 "migration");
                }
            }
            release(page);
            release(resident);
        };
        engine_.submit(std::move(op));
    }

    counters_.reset();
}

void
HmaManager::validateInvariants(bool paranoid) const
{
    if (mstats_.migrations != engine_.stats().opsCommitted)
        MEMPOD_PANIC(
            "invariant violated [hma_migration_conservation]: counted "
            "%llu migrations but the engine committed %llu",
            static_cast<unsigned long long>(mstats_.migrations),
            static_cast<unsigned long long>(
                engine_.stats().opsCommitted));
    if (paranoid)
        placement_.checkConsistency();
}

std::uint64_t
HmaManager::pendingWork() const
{
    return locks_.parkedCount() + engine_.queuedOps() +
           engine_.activeOps() +
           (metaPath_ ? metaPath_->outstandingFills() : 0);
}

MEMPOD_REGISTER_MANAGER(
    Mechanism::kHma,
    [](const SimConfig &cfg, EventQueue &eq, MemorySystem &mem) {
        return std::make_unique<HmaManager>(eq, mem, cfg.hma);
    })

} // namespace mempod
