#include "baselines/no_migration.h"

namespace mempod {

void
NoMigrationManager::handleDemand(Addr home_addr, AccessType type,
                                 TimePs arrival, std::uint8_t core,
                                 CompletionFn done)
{
    Request req;
    req.addr = home_addr;
    req.type = type;
    req.kind = Request::Kind::kDemand;
    req.arrival = arrival;
    req.core = core;
    req.onComplete = [done = std::move(done)](TimePs fin) {
        if (done)
            done(fin);
    };
    mem_.access(std::move(req));
}

} // namespace mempod
