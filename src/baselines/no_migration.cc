#include "baselines/no_migration.h"

#include <memory>

#include "common/log.h"
#include "mem/manager_factory.h"

namespace mempod {

void
NoMigrationManager::handleDemand(Demand d)
{
    Request req;
    req.addr = d.homeAddr;
    req.type = d.type;
    req.kind = Request::Kind::kDemand;
    req.arrival = d.arrival;
    req.core = d.core;
    req.traceId = d.traceId;
    req.onComplete = std::move(d.done);
    mem_.access(std::move(req));
}

void
NoMigrationManager::validateInvariants(bool paranoid) const
{
    (void)paranoid;
    if (mstats_.migrations != 0 || mstats_.bytesMoved != 0)
        MEMPOD_PANIC(
            "invariant violated [static_placement]: NoMigration "
            "reports %llu migrations / %llu bytes moved",
            static_cast<unsigned long long>(mstats_.migrations),
            static_cast<unsigned long long>(mstats_.bytesMoved));
}

MEMPOD_REGISTER_MANAGER(
    Mechanism::kNoMigration,
    [](const SimConfig &, EventQueue &, MemorySystem &mem) {
        return std::make_unique<NoMigrationManager>(mem);
    })

} // namespace mempod
