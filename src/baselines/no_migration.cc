#include "baselines/no_migration.h"

namespace mempod {

void
NoMigrationManager::handleDemand(Addr home_addr, AccessType type,
                                 TimePs arrival, std::uint8_t core,
                                 CompletionFn done,
                                 std::uint64_t trace_id)
{
    Request req;
    req.addr = home_addr;
    req.type = type;
    req.kind = Request::Kind::kDemand;
    req.arrival = arrival;
    req.core = core;
    req.traceId = trace_id;
    req.onComplete = std::move(done);
    mem_.access(std::move(req));
}

} // namespace mempod
