/**
 * @file
 * CAMEO baseline (Chou, Jaleel, Qureshi, MICRO-47): cache-line (64 B)
 * granularity flat-space management. Lines form congruence groups of
 * one fast line plus N slow lines; *every* access to a slow line
 * triggers an immediate swap with the group's fast line (event-based
 * trigger, no activity tracking). Line-location state is packed per
 * group; swaps move 2 x 64 B. At high slow:fast ratios the groups
 * thrash — the pathology Figure 8 of the paper shows as a 41% AMMAT
 * degradation.
 */
#pragma once

#include <cstdint>
#include <unordered_map>

#include "baselines/lock_table.h"
#include "common/event_queue.h"
#include "core/migration_engine.h"
#include "mem/manager.h"
#include "mem/memory_system.h"
#include "sim/mechanism_params.h"

namespace mempod {

/** Line-granularity swap-on-access migration manager. */
class CameoManager : public MemoryManager
{
  public:
    CameoManager(EventQueue &eq, MemorySystem &mem,
                 const CameoParams &params);

    void handleDemand(Demand d) override;

    std::string name() const override { return "CAMEO"; }

    std::uint64_t pendingWork() const override;

    /**
     * Committed swaps must match the engine's commit count; with
     * `paranoid`, additionally verify every group's packed slot state
     * is still a permutation. Panics on violation.
     */
    void validateInvariants(bool paranoid) const override;

    void
    registerMetrics(MetricRegistry &reg) override
    {
        MemoryManager::registerMetrics(reg);
        engine_.registerMetrics(reg, "cameo.engine");
        reg.attachCounter("cameo.swaps_skipped",
                          "swaps skipped by the queued-swap bound",
                          &swapsSkipped_);
        reg.addGauge("cameo.groups_allocated",
                     "congruence groups with live location state",
                     [this] {
                         return static_cast<double>(groups_.size());
                     });
    }

    std::uint64_t numGroups() const { return fastLines_; }
    std::uint64_t slowPerGroup() const { return ratio_; }

    /** Swaps skipped due to the queued-swap bound. */
    std::uint64_t swapsSkipped() const { return swapsSkipped_; }

    /** Line-location-table storage (Table 1): one entry per line. */
    std::uint64_t remapStorageBits() const;

    /** Current slot of `member` within `group` (0 = fast). */
    std::uint32_t slotOfMember(std::uint64_t group,
                               std::uint32_t member) const;

    const MigrationEngine &engine() const { return engine_; }

  private:
    /**
     * Per-group location state packed in a word: 4 bits per member
     * (slot index), plus "fast line used since last swap" and "group
     * ever migrated" flags for wasted-migration accounting.
     */
    static constexpr std::uint64_t kUsedFlag = 1ull << 62;
    static constexpr std::uint64_t kMigratedFlag = 1ull << 63;

    std::uint64_t identityState() const;
    std::uint64_t &groupState(std::uint64_t group);

    static std::uint32_t
    unpackSlot(std::uint64_t state, std::uint32_t member)
    {
        return (state >> (4 * member)) & 0xF;
    }
    static void
    packSlot(std::uint64_t &state, std::uint32_t member,
             std::uint32_t slot)
    {
        state &= ~(0xFull << (4 * member));
        state |= static_cast<std::uint64_t>(slot & 0xF) << (4 * member);
    }

    /** (group, member) of a home line; member 0 is the fast line. */
    std::pair<std::uint64_t, std::uint32_t> groupOf(LineId line) const;

    /** Home line of (group, slot). */
    LineId lineAt(std::uint64_t group, std::uint32_t slot) const;

    void proceed(Demand d);
    void scheduleSwap(std::uint64_t group, std::uint32_t member);

    EventQueue &eq_;
    MemorySystem &mem_;
    CameoParams params_;
    std::uint64_t fastLines_;
    std::uint64_t ratio_;
    std::unordered_map<std::uint64_t, std::uint64_t> groups_;
    MigrationEngine engine_;
    LockTable locks_; //!< groups whose swap started (demand block)
    /** Groups with a scheduled-or-active swap. */
    std::unordered_set<std::uint64_t> busyGroups_;
    std::uint64_t swapsSkipped_ = 0;
};

} // namespace mempod
