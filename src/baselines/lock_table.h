/**
 * @file
 * Shared helper for migration blocking: while a swap involving a page
 * (or segment/group) is in flight, demand requests touching it must be
 * parked and re-issued after the swap commits, to preserve functional
 * correctness (Section 4.3).
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "mem/request.h"

namespace mempod {

/** Lock/park bookkeeping keyed by a mechanism-defined region id. */
class LockTable
{
  public:
    bool isLocked(std::uint64_t key) const { return locked_.contains(key); }

    void lock(std::uint64_t key) { locked_.insert(key); }

    /** Park a demand against a locked key. */
    void
    park(std::uint64_t key, Demand d)
    {
        parked_[key].push_back(std::move(d));
        ++parkedCount_;
    }

    /** Unlock `key` and return (draining) everything parked on it. */
    std::vector<Demand>
    unlock(std::uint64_t key)
    {
        locked_.erase(key);
        auto it = parked_.find(key);
        if (it == parked_.end())
            return {};
        std::vector<Demand> out = std::move(it->second);
        parked_.erase(it);
        parkedCount_ -= out.size();
        return out;
    }

    std::uint64_t parkedCount() const { return parkedCount_; }
    std::size_t lockedCount() const { return locked_.size(); }

  private:
    std::unordered_set<std::uint64_t> locked_;
    std::unordered_map<std::uint64_t, std::vector<Demand>> parked_;
    std::uint64_t parkedCount_ = 0;
};

} // namespace mempod
