/**
 * @file
 * Shared helper for migration blocking: while a swap involving a page
 * (or segment/group) is in flight, demand requests touching it must be
 * parked and re-issued after the swap commits, to preserve functional
 * correctness (Section 4.3).
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "mem/manager.h"

namespace mempod {

/** A demand access held while its page migrates. */
struct BlockedDemand
{
    Addr homeAddr = 0;
    AccessType type = AccessType::kRead;
    TimePs arrival = 0;
    std::uint8_t core = 0;
    std::uint64_t traceId = 0; //!< 0 = request not sampled
    TimePs parkedAt = 0;       //!< when a swap lock parked it
    MemoryManager::CompletionFn done;
};

/** Lock/park bookkeeping keyed by a mechanism-defined region id. */
class LockTable
{
  public:
    bool isLocked(std::uint64_t key) const { return locked_.contains(key); }

    void lock(std::uint64_t key) { locked_.insert(key); }

    /** Park a demand against a locked key. */
    void
    park(std::uint64_t key, BlockedDemand d)
    {
        parked_[key].push_back(std::move(d));
        ++parkedCount_;
    }

    /** Unlock `key` and return (draining) everything parked on it. */
    std::vector<BlockedDemand>
    unlock(std::uint64_t key)
    {
        locked_.erase(key);
        auto it = parked_.find(key);
        if (it == parked_.end())
            return {};
        std::vector<BlockedDemand> out = std::move(it->second);
        parked_.erase(it);
        parkedCount_ -= out.size();
        return out;
    }

    std::uint64_t parkedCount() const { return parkedCount_; }
    std::size_t lockedCount() const { return locked_.size(); }

  private:
    std::unordered_set<std::uint64_t> locked_;
    std::unordered_map<std::uint64_t, std::vector<BlockedDemand>> parked_;
    std::uint64_t parkedCount_ = 0;
};

} // namespace mempod
