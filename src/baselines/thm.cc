#include "baselines/thm.h"

#include <bit>
#include <memory>

#include "common/log.h"
#include "common/tracer.h"
#include "mem/manager_factory.h"

namespace mempod {

ThmManager::ThmManager(EventQueue &eq, MemorySystem &mem,
                       const ThmParams &params)
    : eq_(eq),
      mem_(mem),
      params_(params),
      ratio_(mem.geom().slowPages() / mem.geom().fastPages()),
      numSegments_(mem.geom().fastPages()),
      engine_(eq, mem, /*max_in_flight_ops=*/1, "thm.engine")
{
    MEMPOD_ASSERT(mem.geom().slowPages() % mem.geom().fastPages() == 0,
                  "THM needs an integer slow:fast capacity ratio");
    MEMPOD_ASSERT(ratio_ >= 1 && ratio_ <= 200,
                  "implausible segment ratio %llu",
                  static_cast<unsigned long long>(ratio_));
    if (params_.metaCacheEnabled) {
        const std::uint64_t fast_bytes = mem.geom().fastBytes;
        metaPath_.emplace(
            eq, mem, params_.metaCacheBytes, params_.metaCacheAssoc,
            params_.segEntryBytes, [fast_bytes](std::uint64_t block) {
                return (block * MetadataCache::kBlockBytes) % fast_bytes;
            });
    }
}

ThmManager::SegState &
ThmManager::segState(std::uint64_t seg)
{
    auto it = segs_.find(seg);
    if (it != segs_.end())
        return it->second;
    SegState st;
    st.cc = CompetingCounter(params_.counterBits);
    st.slotOf.resize(ratio_ + 1);
    for (std::uint32_t m = 0; m <= ratio_; ++m)
        st.slotOf[m] = static_cast<std::uint8_t>(m);
    return segs_.emplace(seg, std::move(st)).first->second;
}

std::pair<std::uint64_t, std::uint32_t>
ThmManager::segmentOf(PageId page) const
{
    if (page < numSegments_)
        return {page, 0};
    // Contiguous grouping: slow pages [s*ratio, (s+1)*ratio) belong to
    // segment s. Spatially local regions therefore compete for one
    // fast page — the restriction the paper analyzes (Section 2).
    const std::uint64_t slow_idx = page - numSegments_;
    return {slow_idx / ratio_,
            1 + static_cast<std::uint32_t>(slow_idx % ratio_)};
}

PageId
ThmManager::pageAt(std::uint64_t seg, std::uint32_t slot) const
{
    if (slot == 0)
        return seg;
    return numSegments_ + seg * ratio_ + (slot - 1);
}

std::uint32_t
ThmManager::fastResidentMember(std::uint64_t seg) const
{
    auto it = segs_.find(seg);
    if (it == segs_.end())
        return 0;
    for (std::uint32_t m = 0; m <= ratio_; ++m)
        if (it->second.slotOf[m] == 0)
            return m;
    MEMPOD_PANIC("segment %llu has no fast resident",
                 static_cast<unsigned long long>(seg));
}

void
ThmManager::handleDemand(Demand d)
{
    if (!metaPath_) {
        proceed(std::move(d));
        return;
    }
    const auto [seg, member] = segmentOf(AddressMap::pageOf(d.homeAddr));
    (void)member;
    const std::uint64_t misses_before = metaPath_->misses();
    const TimePs t0 = eq_.now();
    metaPath_->access(seg, [this, t0, d = std::move(d)]() mutable {
        mstats_.metadataPs += eq_.now() - t0;
        proceed(std::move(d));
    });
    if (metaPath_->misses() > misses_before)
        ++mstats_.metaCacheMisses;
    else
        ++mstats_.metaCacheHits;
}

void
ThmManager::proceed(Demand d)
{
    const auto [seg, member] = segmentOf(AddressMap::pageOf(d.homeAddr));
    if (locks_.isLocked(seg)) {
        ++mstats_.blockedRequests;
        d.parkedAt = eq_.now();
        if (d.traceId != 0) {
            if (Tracer *tr = eq_.tracer()) {
                TraceArgs a;
                a.add("segment", seg);
                tr->asyncBegin(tr->track("thm"), eq_.now(), "req",
                               d.traceId, "blocked", a.str());
            }
        }
        locks_.park(seg, std::move(d));
        return;
    }

    SegState &st = segState(seg);
    const std::uint32_t slot = st.slotOf[member];
    if (decisions_)
        decisions_->noteAccess(DecisionLog::kNoPod,
                               AddressMap::pageOf(d.homeAddr),
                               slot == 0, eq_.now());

    // Service the access from the page's current location first.
    issueAt(seg, slot, std::move(d));

    // Then update the competing counter and maybe trigger a swap.
    if (slot == 0) {
        st.cc.accessFast();
        return;
    }
    const bool trigger = st.cc.accessSlow(member, params_.threshold);
    if (trigger)
        scheduleSwap(seg, member);
}

void
ThmManager::issueAt(std::uint64_t seg, std::uint32_t slot,
                    Demand d)
{
    Request req;
    req.addr = AddressMap::addrOfPage(pageAt(seg, slot)) +
               d.homeAddr % kPageBytes;
    req.type = d.type;
    req.kind = Request::Kind::kDemand;
    req.arrival = d.arrival;
    req.core = d.core;
    req.traceId = d.traceId;
    req.onComplete = std::move(d.done);
    mem_.access(std::move(req));
}

void
ThmManager::scheduleSwap(std::uint64_t seg, std::uint32_t member)
{
    SegState &st = segState(seg);
    const std::uint32_t occupant = fastResidentMember(seg);
    if (occupant == member)
        return; // already resident
    if (busySegs_.contains(seg))
        return; // a swap for this segment is already scheduled
    busySegs_.insert(seg);
    // The competing counter clears on trigger, so the decision-time
    // count is the threshold it just reached.
    const std::uint64_t decision =
        decisions_
            ? decisions_->record(DecisionLog::kNoPod,
                                 pageAt(seg, member),
                                 pageAt(seg, occupant),
                                 params_.threshold, eq_.now())
            : DecisionLog::kNoId;

    std::uint64_t flow = 0;
    if (Tracer *tr = eq_.tracer()) {
        flow = tr->newFlowId();
        const std::uint32_t tid = tr->track("thm");
        TraceArgs a;
        a.add("segment", seg).add("member", member);
        tr->instant(tid, eq_.now(), "counter_victory", a.str());
        tr->asyncBegin(tid, eq_.now(), "mig", flow, "migration",
                       a.str());
        tr->flowStart(tid, eq_.now(), "mig", flow, "migration");
    }

    MigrationEngine::SwapOp op;
    op.locA = AddressMap::addrOfPage(pageAt(seg, st.slotOf[member]));
    op.locB = AddressMap::addrOfPage(pageAt(seg, 0));
    op.lines = static_cast<std::uint32_t>(kLinesPerPage);
    op.traceId = flow;
    op.onStart = [this, seg] { locks_.lock(seg); };
    auto release = [this, seg] {
        busySegs_.erase(seg);
        const TimePs now = eq_.now();
        for (auto &d : locks_.unlock(seg)) {
            mstats_.blockedPs += now - d.parkedAt;
            d.parkedAt = 0;
            if (d.traceId != 0) {
                if (Tracer *tr = eq_.tracer())
                    tr->asyncEnd(tr->track("thm"), now, "req",
                                 d.traceId, "blocked");
            }
            proceed(std::move(d));
        }
    };
    op.onCommit = [this, seg, member, occupant, release, flow,
                   decision] {
        SegState &s = segState(seg);
        std::swap(s.slotOf[member], s.slotOf[occupant]);
        ++mstats_.migrations;
        mstats_.bytesMoved += 2 * kPageBytes;
        if (decision != DecisionLog::kNoId)
            decisions_->commit(decision, eq_.now());
        if (flow != 0) {
            if (Tracer *tr = eq_.tracer()) {
                const std::uint32_t tid = tr->track("thm");
                tr->instant(tid, eq_.now(), "remap_commit");
                tr->flowEnd(tid, eq_.now(), "mig", flow, "migration");
                tr->asyncEnd(tid, eq_.now(), "mig", flow, "migration");
            }
        }
        release();
    };
    op.onAbort = [this, release, flow, decision] {
        if (decision != DecisionLog::kNoId)
            decisions_->abort(decision, eq_.now());
        if (flow != 0) {
            if (Tracer *tr = eq_.tracer()) {
                const std::uint32_t tid = tr->track("thm");
                tr->instant(tid, eq_.now(), "swap_aborted");
                tr->flowEnd(tid, eq_.now(), "mig", flow, "migration");
                tr->asyncEnd(tid, eq_.now(), "mig", flow, "migration");
            }
        }
        release();
    };
    engine_.submit(std::move(op));
}

void
ThmManager::validateInvariants(bool paranoid) const
{
    if (mstats_.migrations != engine_.stats().opsCommitted)
        MEMPOD_PANIC(
            "invariant violated [thm_migration_conservation]: counted "
            "%llu migrations but the engine committed %llu",
            static_cast<unsigned long long>(mstats_.migrations),
            static_cast<unsigned long long>(
                engine_.stats().opsCommitted));
    if (!paranoid)
        return;
    for (const auto &[seg, st] : segs_) {
        std::vector<bool> seen(ratio_ + 2, false);
        for (std::uint32_t m = 0; m <= ratio_; ++m) {
            const std::uint8_t slot = st.slotOf[m];
            if (slot > ratio_ || seen[slot])
                MEMPOD_PANIC(
                    "invariant violated [thm_slot_permutation]: "
                    "segment %llu member %u maps to slot %u "
                    "(duplicate or out of range)",
                    static_cast<unsigned long long>(seg), m, slot);
            seen[slot] = true;
        }
    }
}

std::uint64_t
ThmManager::pendingWork() const
{
    return locks_.parkedCount() + engine_.queuedOps() +
           engine_.activeOps() +
           (metaPath_ ? metaPath_->outstandingFills() : 0);
}

std::uint64_t
ThmManager::remapStorageBits() const
{
    // One "which member is fast-resident" pointer per segment.
    return numSegments_ * std::bit_width(ratio_);
}

MEMPOD_REGISTER_MANAGER(
    Mechanism::kThm,
    [](const SimConfig &cfg, EventQueue &eq, MemorySystem &mem) {
        return std::make_unique<ThmManager>(eq, mem, cfg.thm);
    })

} // namespace mempod
