#include "baselines/cameo.h"

#include <bit>
#include <memory>

#include "common/log.h"
#include "common/tracer.h"
#include "mem/manager_factory.h"

namespace mempod {

CameoManager::CameoManager(EventQueue &eq, MemorySystem &mem,
                           const CameoParams &params)
    : eq_(eq),
      mem_(mem),
      params_(params),
      fastLines_(mem.geom().fastBytes / kLineBytes),
      ratio_(mem.geom().slowBytes / mem.geom().fastBytes),
      engine_(eq, mem, params.engineParallelism, "cameo.engine")
{
    MEMPOD_ASSERT(mem.geom().slowBytes % mem.geom().fastBytes == 0,
                  "CAMEO needs an integer slow:fast capacity ratio");
    MEMPOD_ASSERT(ratio_ >= 1 && ratio_ <= 14,
                  "group ratio %llu does not fit the packed encoding",
                  static_cast<unsigned long long>(ratio_));
}

std::uint64_t
CameoManager::identityState() const
{
    std::uint64_t st = 0;
    for (std::uint32_t m = 0; m <= ratio_; ++m)
        packSlot(st, m, m);
    return st;
}

std::uint64_t &
CameoManager::groupState(std::uint64_t group)
{
    auto it = groups_.find(group);
    if (it != groups_.end())
        return it->second;
    return groups_.emplace(group, identityState()).first->second;
}

std::pair<std::uint64_t, std::uint32_t>
CameoManager::groupOf(LineId line) const
{
    if (line < fastLines_)
        return {line, 0};
    // Contiguous grouping: ratio consecutive slow lines share one fast
    // slot, so spatially local streams swap on every line and thrash —
    // the pathology the paper attributes to CAMEO at 1:8 ratios.
    const std::uint64_t slow_idx = line - fastLines_;
    return {slow_idx / ratio_,
            1 + static_cast<std::uint32_t>(slow_idx % ratio_)};
}

LineId
CameoManager::lineAt(std::uint64_t group, std::uint32_t slot) const
{
    if (slot == 0)
        return group;
    return fastLines_ + group * ratio_ + (slot - 1);
}

std::uint32_t
CameoManager::slotOfMember(std::uint64_t group, std::uint32_t member) const
{
    auto it = groups_.find(group);
    if (it == groups_.end())
        return member; // untouched group: identity
    return unpackSlot(it->second, member);
}

void
CameoManager::handleDemand(Demand d)
{
    proceed(std::move(d));
}

void
CameoManager::proceed(Demand d)
{
    const LineId line = d.homeAddr / kLineBytes;
    const auto [group, member] = groupOf(line);
    if (locks_.isLocked(group)) {
        ++mstats_.blockedRequests;
        d.parkedAt = eq_.now();
        if (d.traceId != 0) {
            if (Tracer *tr = eq_.tracer()) {
                TraceArgs a;
                a.add("group", group);
                tr->asyncBegin(tr->track("cameo"), eq_.now(), "req",
                               d.traceId, "blocked", a.str());
            }
        }
        locks_.park(group, std::move(d));
        return;
    }

    std::uint64_t &st = groupState(group);
    const std::uint32_t slot = unpackSlot(st, member);
    if (decisions_)
        decisions_->noteAccess(DecisionLog::kNoPod, line, slot == 0,
                               eq_.now());

    Request req;
    req.addr =
        lineAt(group, slot) * kLineBytes + d.homeAddr % kLineBytes;
    req.type = d.type;
    req.kind = Request::Kind::kDemand;
    req.arrival = d.arrival;
    req.core = d.core;
    req.traceId = d.traceId;
    req.onComplete = std::move(d.done);
    mem_.access(std::move(req));

    if (slot == 0) {
        st |= kUsedFlag; // the fast-resident line produced a hit
        return;
    }

    // Event trigger: every slow access swaps the line into fast.
    if (busyGroups_.contains(group))
        return; // this group already has a swap in flight
    if (engine_.queuedOps() >= params_.maxQueuedSwaps) {
        ++swapsSkipped_;
        return;
    }
    scheduleSwap(group, member);
}

void
CameoManager::scheduleSwap(std::uint64_t group, std::uint32_t member)
{
    std::uint64_t &st = groupState(group);
    // Find the current fast occupant.
    std::uint32_t occupant = 0;
    for (std::uint32_t m = 0; m <= ratio_; ++m) {
        if (unpackSlot(st, m) == 0) {
            occupant = m;
            break;
        }
    }
    MEMPOD_ASSERT(occupant != member, "swap of fast-resident line");
    busyGroups_.insert(group);
    // CAMEO is event-triggered: a single slow access is the whole
    // activity evidence, so the tracked count is 1.
    const std::uint64_t decision =
        decisions_ ? decisions_->record(DecisionLog::kNoPod,
                                        lineAt(group, member),
                                        lineAt(group, occupant),
                                        /*trackerCount=*/1, eq_.now())
                   : DecisionLog::kNoId;

    std::uint64_t flow = 0;
    if (Tracer *tr = eq_.tracer()) {
        flow = tr->newFlowId();
        const std::uint32_t tid = tr->track("cameo");
        TraceArgs a;
        a.add("group", group).add("member", member);
        tr->instant(tid, eq_.now(), "swap_trigger", a.str());
        tr->asyncBegin(tid, eq_.now(), "mig", flow, "migration",
                       a.str());
        tr->flowStart(tid, eq_.now(), "mig", flow, "migration");
    }

    MigrationEngine::SwapOp op;
    op.locA = lineAt(group, unpackSlot(st, member)) * kLineBytes;
    op.locB = lineAt(group, 0) * kLineBytes;
    op.lines = 1;
    op.traceId = flow;
    op.onStart = [this, group] { locks_.lock(group); };
    auto release = [this, group] {
        busyGroups_.erase(group);
        const TimePs now = eq_.now();
        for (auto &d : locks_.unlock(group)) {
            mstats_.blockedPs += now - d.parkedAt;
            d.parkedAt = 0;
            if (d.traceId != 0) {
                if (Tracer *tr = eq_.tracer())
                    tr->asyncEnd(tr->track("cameo"), now, "req",
                                 d.traceId, "blocked");
            }
            proceed(std::move(d));
        }
    };
    op.onCommit = [this, group, member, occupant, release, flow,
                   decision] {
        std::uint64_t &s = groupState(group);
        if ((s & kMigratedFlag) && !(s & kUsedFlag))
            ++mstats_.wastedMigrations; // evicted before ever touched
        const std::uint32_t slot_m = unpackSlot(s, member);
        const std::uint32_t slot_o = unpackSlot(s, occupant);
        packSlot(s, member, slot_o);
        packSlot(s, occupant, slot_m);
        s |= kMigratedFlag;
        s &= ~kUsedFlag;
        ++mstats_.migrations;
        mstats_.bytesMoved += 2 * kLineBytes;
        if (decision != DecisionLog::kNoId)
            decisions_->commit(decision, eq_.now());
        if (flow != 0) {
            if (Tracer *tr = eq_.tracer()) {
                const std::uint32_t tid = tr->track("cameo");
                tr->instant(tid, eq_.now(), "remap_commit");
                tr->flowEnd(tid, eq_.now(), "mig", flow, "migration");
                tr->asyncEnd(tid, eq_.now(), "mig", flow, "migration");
            }
        }
        release();
    };
    op.onAbort = [this, release, flow, decision] {
        if (decision != DecisionLog::kNoId)
            decisions_->abort(decision, eq_.now());
        if (flow != 0) {
            if (Tracer *tr = eq_.tracer()) {
                const std::uint32_t tid = tr->track("cameo");
                tr->instant(tid, eq_.now(), "swap_aborted");
                tr->flowEnd(tid, eq_.now(), "mig", flow, "migration");
                tr->asyncEnd(tid, eq_.now(), "mig", flow, "migration");
            }
        }
        release();
    };
    engine_.submit(std::move(op));
}

void
CameoManager::validateInvariants(bool paranoid) const
{
    if (mstats_.migrations != engine_.stats().opsCommitted)
        MEMPOD_PANIC(
            "invariant violated [cameo_migration_conservation]: "
            "counted %llu migrations but the engine committed %llu",
            static_cast<unsigned long long>(mstats_.migrations),
            static_cast<unsigned long long>(
                engine_.stats().opsCommitted));
    if (!paranoid)
        return;
    for (const auto &[group, st] : groups_) {
        std::uint32_t seen = 0; // ratio_ <= 14, so a bitmask suffices
        for (std::uint32_t m = 0; m <= ratio_; ++m) {
            const std::uint32_t slot = unpackSlot(st, m);
            if (slot > ratio_ || (seen & (1u << slot)))
                MEMPOD_PANIC(
                    "invariant violated [cameo_slot_permutation]: "
                    "group %llu member %u maps to slot %u "
                    "(duplicate or out of range)",
                    static_cast<unsigned long long>(group), m, slot);
            seen |= 1u << slot;
        }
    }
}

std::uint64_t
CameoManager::pendingWork() const
{
    return locks_.parkedCount() + engine_.queuedOps() +
           engine_.activeOps();
}

std::uint64_t
CameoManager::remapStorageBits() const
{
    // One location entry per fast line in the Line Location Table view
    // the paper costs out (72 kB for 1 GB of fast memory): the slot of
    // each group's fast-resident line needs log2(ratio+1) bits, and a
    // full LLT needs one entry per line in the group.
    return fastLines_ * (ratio_ + 1) * std::bit_width(ratio_);
}

MEMPOD_REGISTER_MANAGER(
    Mechanism::kCameo,
    [](const SimConfig &cfg, EventQueue &eq, MemorySystem &mem) {
        return std::make_unique<CameoManager>(eq, mem, cfg.cameo);
    })

} // namespace mempod
