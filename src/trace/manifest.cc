#include "trace/manifest.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/log.h"

namespace mempod {

namespace {

/**
 * A minimal string-preserving JSON value tree. The repo's flat_json
 * helper deliberately drops strings (it flattens numeric stats files);
 * the manifest is mostly strings, so it gets its own tiny parser.
 */
struct JsonValue
{
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, const std::string &path)
        : text_(text), path_(path)
    {
    }

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        std::size_t line = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
            if (text_[i] == '\n')
                ++line;
        MEMPOD_FATAL("'%s' line %zu: %s", path_.c_str(), line,
                     what.c_str());
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of file");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::kObject;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            JsonValue key = parseString();
            expect(':');
            v.members.emplace_back(key.text, parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::kArray;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated string escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  default:
                    fail(std::string("unsupported string escape '\\") +
                         e + "'");
                }
            }
            v.text.push_back(c);
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("malformed literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("malformed literal");
        pos_ += 4;
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::kNumber;
        try {
            v.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            fail("malformed number '" +
                 text_.substr(start, pos_ - start) + "'");
        }
        return v;
    }

    const std::string &text_;
    std::string path_;
    std::size_t pos_ = 0;
};

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        MEMPOD_FATAL("cannot open trace manifest '%s'", path.c_str());
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

std::string
resolvePath(const std::string &base, const std::string &path)
{
    if (!path.empty() && path[0] == '/')
        return path;
    return base + "/" + path;
}

/** Require a specific kind, with the manifest path in the error. */
const JsonValue &
require(const JsonValue *v, JsonValue::Kind kind, const char *what,
        const std::string &manifest)
{
    static const char *names[] = {"null",   "bool",  "number",
                                  "string", "array", "object"};
    if (v == nullptr) {
        MEMPOD_FATAL("trace manifest '%s': missing required key %s",
                     manifest.c_str(), what);
    }
    if (v->kind != kind) {
        MEMPOD_FATAL("trace manifest '%s': %s must be a %s (got %s)",
                     manifest.c_str(), what,
                     names[static_cast<int>(kind)],
                     names[static_cast<int>(v->kind)]);
    }
    return *v;
}

std::uint64_t
asU64(const JsonValue &v, const char *what, const std::string &manifest)
{
    if (v.number < 0 || v.number != static_cast<double>(
                                        static_cast<std::uint64_t>(
                                            v.number))) {
        MEMPOD_FATAL("trace manifest '%s': %s must be a non-negative "
                     "integer",
                     manifest.c_str(), what);
    }
    return static_cast<std::uint64_t>(v.number);
}

void
rejectUnknownKeys(const JsonValue &obj,
                  const std::set<std::string> &known,
                  const char *where, const std::string &manifest)
{
    for (const auto &[k, v] : obj.members) {
        (void)v;
        if (known.count(k) == 0) {
            MEMPOD_FATAL("trace manifest '%s': unknown key \"%s\" in "
                         "%s — check for a typo (known keys are "
                         "documented in EXPERIMENTS.md)",
                         manifest.c_str(), k.c_str(), where);
        }
    }
}

} // namespace

std::vector<ExternalTraceSpec>
loadTraceManifest(const std::string &path)
{
    const std::string text = readFile(path);
    const std::string base = dirnameOf(path);
    JsonValue root = JsonParser(text, path).parse();
    if (root.kind != JsonValue::Kind::kObject)
        MEMPOD_FATAL("trace manifest '%s': top level must be an object",
                     path.c_str());
    rejectUnknownKeys(root, {"version", "traces"}, "the manifest", path);
    const JsonValue &version = require(
        root.find("version"), JsonValue::Kind::kNumber, "\"version\"",
        path);
    if (asU64(version, "\"version\"", path) != 1) {
        MEMPOD_FATAL("trace manifest '%s': version %.0f, but this "
                     "build reads version 1",
                     path.c_str(), version.number);
    }
    const JsonValue &traces = require(
        root.find("traces"), JsonValue::Kind::kArray, "\"traces\"",
        path);

    std::vector<ExternalTraceSpec> out;
    std::set<std::string> names;
    for (const JsonValue &entry : traces.items) {
        if (entry.kind != JsonValue::Kind::kObject) {
            MEMPOD_FATAL("trace manifest '%s': each \"traces\" entry "
                         "must be an object",
                         path.c_str());
        }
        rejectUnknownKeys(entry,
                          {"name", "format", "file", "files", "timing",
                           "period_ps", "addr_bias", "time_scale"},
                          "a trace entry", path);
        ExternalTraceSpec spec;
        spec.name = require(entry.find("name"),
                            JsonValue::Kind::kString, "\"name\"", path)
                        .text;
        spec.format = require(entry.find("format"),
                              JsonValue::Kind::kString, "\"format\"",
                              path)
                          .text;
        if (spec.format != "native" && spec.format != "champsim" &&
            spec.format != "sift") {
            MEMPOD_FATAL("trace manifest '%s': trace \"%s\" has format "
                         "\"%s\"; supported formats are native, "
                         "champsim, sift",
                         path.c_str(), spec.name.c_str(),
                         spec.format.c_str());
        }
        if (!names.insert(spec.name).second) {
            MEMPOD_FATAL("trace manifest '%s': duplicate trace name "
                         "\"%s\"",
                         path.c_str(), spec.name.c_str());
        }

        const JsonValue *file = entry.find("file");
        const JsonValue *files = entry.find("files");
        if (spec.format == "native") {
            const JsonValue &f = require(file, JsonValue::Kind::kString,
                                         "\"file\"", path);
            if (files != nullptr) {
                MEMPOD_FATAL("trace manifest '%s': trace \"%s\" is "
                             "native; use \"file\", not \"files\"",
                             path.c_str(), spec.name.c_str());
            }
            spec.files.push_back({resolvePath(base, f.text), 0});
        } else {
            if (file != nullptr) {
                MEMPOD_FATAL("trace manifest '%s': trace \"%s\" is "
                             "%s; use per-core \"files\", not "
                             "\"file\"",
                             path.c_str(), spec.name.c_str(),
                             spec.format.c_str());
            }
            const JsonValue &fs = require(
                files, JsonValue::Kind::kArray, "\"files\"", path);
            if (fs.items.empty()) {
                MEMPOD_FATAL("trace manifest '%s': trace \"%s\" has an "
                             "empty \"files\" list",
                             path.c_str(), spec.name.c_str());
            }
            std::set<std::uint64_t> cores;
            for (const JsonValue &fe : fs.items) {
                if (fe.kind != JsonValue::Kind::kObject) {
                    MEMPOD_FATAL("trace manifest '%s': \"files\" "
                                 "entries must be objects with "
                                 "\"path\" and \"core\"",
                                 path.c_str());
                }
                rejectUnknownKeys(fe, {"path", "core"},
                                  "a \"files\" entry", path);
                ManifestFile mf;
                mf.path = resolvePath(
                    base, require(fe.find("path"),
                                  JsonValue::Kind::kString, "\"path\"",
                                  path)
                              .text);
                const std::uint64_t core =
                    asU64(require(fe.find("core"),
                                  JsonValue::Kind::kNumber, "\"core\"",
                                  path),
                          "\"core\"", path);
                if (core > 255 || !cores.insert(core).second) {
                    MEMPOD_FATAL("trace manifest '%s': trace \"%s\" "
                                 "core %llu is out of range or "
                                 "duplicated",
                                 path.c_str(), spec.name.c_str(),
                                 static_cast<unsigned long long>(core));
                }
                mf.core = static_cast<std::uint8_t>(core);
                spec.files.push_back(mf);
            }
        }

        if (const JsonValue *t = entry.find("timing")) {
            if (spec.format != "champsim") {
                MEMPOD_FATAL("trace manifest '%s': \"timing\" only "
                             "applies to champsim traces (trace "
                             "\"%s\" is %s)",
                             path.c_str(), spec.name.c_str(),
                             spec.format.c_str());
            }
            spec.timing = require(t, JsonValue::Kind::kString,
                                  "\"timing\"", path)
                              .text;
            if (spec.timing != "period" && spec.timing != "ip") {
                MEMPOD_FATAL("trace manifest '%s': trace \"%s\" timing "
                             "\"%s\"; supported timings are period, "
                             "ip",
                             path.c_str(), spec.name.c_str(),
                             spec.timing.c_str());
            }
        }
        if (const JsonValue *p = entry.find("period_ps")) {
            spec.periodPs = asU64(require(p, JsonValue::Kind::kNumber,
                                          "\"period_ps\"", path),
                                  "\"period_ps\"", path);
        }
        if (const JsonValue *b = entry.find("addr_bias")) {
            if (spec.format != "champsim") {
                MEMPOD_FATAL("trace manifest '%s': \"addr_bias\" only "
                             "applies to champsim traces (trace "
                             "\"%s\" is %s)",
                             path.c_str(), spec.name.c_str(),
                             spec.format.c_str());
            }
            spec.addrBias = asU64(require(b, JsonValue::Kind::kNumber,
                                          "\"addr_bias\"", path),
                                  "\"addr_bias\"", path);
        }
        if (const JsonValue *s = entry.find("time_scale")) {
            spec.timeScale = require(s, JsonValue::Kind::kNumber,
                                     "\"time_scale\"", path)
                                 .number;
            if (!(spec.timeScale > 0)) {
                MEMPOD_FATAL("trace manifest '%s': trace \"%s\" "
                             "time_scale must be > 0",
                             path.c_str(), spec.name.c_str());
            }
        }
        out.push_back(std::move(spec));
    }
    return out;
}

} // namespace mempod
