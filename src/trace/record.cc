#include "trace/record.h"

#include <cstdio>
#include <unordered_set>

#include "common/log.h"

namespace mempod {

namespace {
constexpr std::uint64_t kTraceMagic = 0x4d454d504f445452ull; // "MEMPODTR"
} // namespace

void
saveTrace(const Trace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        MEMPOD_FATAL("cannot open trace file '%s' for writing",
                     path.c_str());
    const std::uint64_t count = trace.size();
    std::fwrite(&kTraceMagic, sizeof(kTraceMagic), 1, f);
    std::fwrite(&count, sizeof(count), 1, f);
    for (const auto &r : trace) {
        std::fwrite(&r.time, sizeof(r.time), 1, f);
        std::fwrite(&r.coreLocal, sizeof(r.coreLocal), 1, f);
        const std::uint8_t core = r.core;
        const std::uint8_t type =
            r.type == AccessType::kWrite ? 1 : 0;
        std::fwrite(&core, 1, 1, f);
        std::fwrite(&type, 1, 1, f);
    }
    std::fclose(f);
}

Trace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        MEMPOD_FATAL("cannot open trace file '%s'", path.c_str());
    std::uint64_t magic = 0;
    std::uint64_t count = 0;
    if (std::fread(&magic, sizeof(magic), 1, f) != 1 ||
        magic != kTraceMagic) {
        std::fclose(f);
        MEMPOD_FATAL("'%s' is not a mempod trace", path.c_str());
    }
    if (std::fread(&count, sizeof(count), 1, f) != 1) {
        std::fclose(f);
        MEMPOD_FATAL("'%s': truncated header", path.c_str());
    }
    Trace trace;
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        std::uint8_t core = 0;
        std::uint8_t type = 0;
        if (std::fread(&r.time, sizeof(r.time), 1, f) != 1 ||
            std::fread(&r.coreLocal, sizeof(r.coreLocal), 1, f) != 1 ||
            std::fread(&core, 1, 1, f) != 1 ||
            std::fread(&type, 1, 1, f) != 1) {
            std::fclose(f);
            MEMPOD_FATAL("'%s': truncated at record %llu", path.c_str(),
                         static_cast<unsigned long long>(i));
        }
        r.core = core;
        r.type = type ? AccessType::kWrite : AccessType::kRead;
        trace.push_back(r);
    }
    std::fclose(f);
    return trace;
}

TraceSummary
summarize(const Trace &trace)
{
    TraceSummary s;
    s.records = trace.size();
    std::unordered_set<std::uint64_t> pages;
    for (const auto &r : trace) {
        if (r.type == AccessType::kWrite)
            ++s.writes;
        else
            ++s.reads;
        pages.insert((static_cast<std::uint64_t>(r.core) << 56) |
                     (r.coreLocal / kPageBytes));
    }
    s.touchedPages = pages.size();
    if (!trace.empty()) {
        s.duration = trace.back().time - trace.front().time;
        if (s.duration > 0) {
            s.requestsPerUs = static_cast<double>(s.records) /
                              (static_cast<double>(s.duration) / 1e6);
        }
    }
    return s;
}

} // namespace mempod
