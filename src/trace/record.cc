#include "trace/record.h"

#include <unordered_set>

#include "trace/native.h"
#include "trace/source.h"

namespace mempod {

void
saveTrace(const Trace &trace, const std::string &path)
{
    writeNativeTrace(trace, path);
}

Trace
loadTrace(const std::string &path)
{
    NativeTraceSource source(path);
    return materialize(source);
}

TraceSummary
summarize(const Trace &trace)
{
    TraceSummary s;
    s.records = trace.size();
    std::unordered_set<std::uint64_t> pages;
    for (const auto &r : trace) {
        if (r.type == AccessType::kWrite)
            ++s.writes;
        else
            ++s.reads;
        pages.insert((static_cast<std::uint64_t>(r.core) << 56) |
                     (r.coreLocal / kPageBytes));
    }
    s.touchedPages = pages.size();
    if (!trace.empty()) {
        s.duration = trace.back().time - trace.front().time;
        if (s.duration > 0) {
            s.requestsPerUs = static_cast<double>(s.records) /
                              (static_cast<double>(s.duration) / 1e6);
        }
    }
    return s;
}

} // namespace mempod
