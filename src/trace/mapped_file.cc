#include "trace/mapped_file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/log.h"

namespace mempod {

MappedFile::MappedFile(const std::string &path,
                       std::uint64_t window_bytes)
    : path_(path),
      windowBytes_(std::max<std::uint64_t>(window_bytes, 4096))
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
        MEMPOD_FATAL("cannot open trace file '%s': %s", path.c_str(),
                     std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
        MEMPOD_FATAL("cannot stat trace file '%s': %s", path.c_str(),
                     std::strerror(errno));
    }
    fileSize_ = static_cast<std::uint64_t>(st.st_size);
}

MappedFile::~MappedFile()
{
    if (base_ != nullptr)
        ::munmap(base_, mapLen_);
    if (fd_ >= 0)
        ::close(fd_);
}

const std::uint8_t *
MappedFile::at(std::uint64_t off, std::uint64_t len)
{
    if (off + len > fileSize_ || off + len < off) {
        MEMPOD_FATAL("'%s': truncated trace — need bytes [%llu, %llu) "
                     "but the file is only %llu bytes",
                     path_.c_str(),
                     static_cast<unsigned long long>(off),
                     static_cast<unsigned long long>(off + len),
                     static_cast<unsigned long long>(fileSize_));
    }
    if (base_ == nullptr || off < mapOff_ ||
        off + len > mapOff_ + mapLen_)
        remap(off, len);
    return base_ + (off - mapOff_);
}

void
MappedFile::remap(std::uint64_t off, std::uint64_t len)
{
    if (base_ != nullptr) {
        ::munmap(base_, mapLen_);
        base_ = nullptr;
    }
    // Page-align the window start; extend it to cover the request even
    // when a single record straddles the nominal window size.
    const std::uint64_t page = 4096;
    const std::uint64_t new_off = (off / page) * page;
    std::uint64_t new_len =
        std::max(windowBytes_, (off - new_off) + len);
    new_len = std::min(new_len, fileSize_ - new_off);
    void *m = ::mmap(nullptr, new_len, PROT_READ, MAP_PRIVATE, fd_,
                     static_cast<off_t>(new_off));
    if (m == MAP_FAILED) {
        MEMPOD_FATAL("mmap of '%s' failed at offset %llu: %s",
                     path_.c_str(),
                     static_cast<unsigned long long>(new_off),
                     std::strerror(errno));
    }
    ::madvise(m, new_len, MADV_SEQUENTIAL);
    base_ = static_cast<std::uint8_t *>(m);
    mapOff_ = new_off;
    mapLen_ = new_len;
    maxMapped_ = std::max(maxMapped_, new_len);
}

} // namespace mempod
