/**
 * @file
 * Windowed read-only mmap over a trace file: the streaming readers
 * decode through a bounded sliding window instead of mapping (or
 * worse, reading) the whole file, so peak resident memory for a
 * multi-GB replay is a constant — the window size — no matter how
 * long the trace is. The high-water mark of mapped bytes is exposed
 * so tests can pin that bound.
 */
#pragma once

#include <cstdint>
#include <string>

namespace mempod {

/** Read-only file access through one bounded, sliding mmap window. */
class MappedFile
{
  public:
    /** Default window: plenty for sequential decode, tiny vs a trace. */
    static constexpr std::uint64_t kDefaultWindowBytes = 4ull << 20;

    /**
     * Open and stat `path`; fatal (with the path in the message) when
     * the file cannot be opened. `window_bytes` bounds how much of the
     * file is mapped at once (tests shrink it to prove the bound).
     */
    explicit MappedFile(const std::string &path,
                        std::uint64_t window_bytes = kDefaultWindowBytes);
    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** Total file size in bytes. */
    std::uint64_t size() const { return fileSize_; }

    /**
     * Pointer to `len` contiguous bytes at file offset `off`, sliding
     * the window forward if needed. Fatal when the range runs past end
     * of file (a truncated trace). The pointer is valid until the next
     * at() call.
     */
    const std::uint8_t *at(std::uint64_t off, std::uint64_t len);

    /** High-water mark of bytes mapped at once (the streaming bound). */
    std::uint64_t maxMappedBytes() const { return maxMapped_; }

    const std::string &path() const { return path_; }

  private:
    void remap(std::uint64_t off, std::uint64_t len);

    std::string path_;
    int fd_ = -1;
    std::uint64_t fileSize_ = 0;
    std::uint64_t windowBytes_;

    std::uint8_t *base_ = nullptr; //!< current window mapping
    std::uint64_t mapOff_ = 0;
    std::uint64_t mapLen_ = 0;
    std::uint64_t maxMapped_ = 0;
};

} // namespace mempod
