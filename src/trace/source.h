/**
 * @file
 * TraceSource: the pull-based stream of trace records every frontend
 * consumes. A source yields TraceRecords in non-decreasing time order,
 * one at a time, so a multi-GB on-disk trace replays in O(1) memory
 * (file-backed sources decode through a bounded mmap window) while a
 * generated synthetic trace streams straight out of its vector.
 *
 * Sources are single-owner cursors: cheap to open, not shared across
 * threads. Shared immutable state (a materialized synthetic trace, a
 * validated on-disk file) lives behind the TraceCache, which hands
 * each job its own cursor over the common backing.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/record.h"

namespace mempod {

/** A forward-only stream of time-ordered trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Yield the next record; false at end of stream. */
    virtual bool next(TraceRecord &out) = 0;

    /** Rewind to the first record. */
    virtual void reset() = 0;

    /**
     * Total records this source yields (after any record limit). Known
     * up front for every backend — the native header carries the
     * count, and the file readers pre-scan once at open — because the
     * frontend's AMMAT denominator and progress reporting need it
     * before the stream is consumed.
     */
    virtual std::uint64_t size() const = 0;

    /**
     * Peak bytes of file data this source keeps mapped at once; 0 for
     * in-memory sources. Independent of trace length for the streaming
     * readers (bounded by the mmap window) — the property the
     * streaming tests pin.
     */
    virtual std::uint64_t maxResidentBytes() const { return 0; }
};

/**
 * In-memory source over a Trace vector. Non-owning when built from a
 * raw reference (caller keeps the vector alive); owning when built
 * from a shared_ptr (the cache's handout path).
 */
class VectorTraceSource final : public TraceSource
{
  public:
    explicit VectorTraceSource(const Trace &trace) : trace_(&trace) {}
    explicit VectorTraceSource(std::shared_ptr<const Trace> trace)
        : owned_(std::move(trace)), trace_(owned_.get())
    {
    }

    bool
    next(TraceRecord &out) override
    {
        if (idx_ >= trace_->size())
            return false;
        out = (*trace_)[idx_++];
        return true;
    }

    void reset() override { idx_ = 0; }
    std::uint64_t size() const override { return trace_->size(); }

  private:
    std::shared_ptr<const Trace> owned_;
    const Trace *trace_;
    std::uint64_t idx_ = 0;
};

/**
 * Scales every timestamp of an inner source by a constant (manifest
 * time_scale and the generator's rateScale applied to external
 * traces). Rounding is llround — fixed and platform-independent, so
 * scaled replays stay deterministic.
 */
class ScaledTraceSource final : public TraceSource
{
  public:
    ScaledTraceSource(std::unique_ptr<TraceSource> inner, double scale)
        : inner_(std::move(inner)), scale_(scale)
    {
    }

    bool next(TraceRecord &out) override;
    void reset() override { inner_->reset(); }
    std::uint64_t size() const override { return inner_->size(); }
    std::uint64_t maxResidentBytes() const override
    {
        return inner_->maxResidentBytes();
    }

  private:
    std::unique_ptr<TraceSource> inner_;
    double scale_;
};

/** Drain a source into a materialized vector (offline analyses). */
Trace materialize(TraceSource &source);

/** Streaming TraceSummary over a source; resets the source first. */
TraceSummary summarize(TraceSource &source);

} // namespace mempod
