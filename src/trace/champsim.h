/**
 * @file
 * ChampSim-format trace backend. ChampSim input traces are a flat
 * array of 64-byte `input_instr` records (no file header): the
 * instruction pointer, branch bytes, register ids, then two
 * destination (store) and four source (load) memory addresses, where
 * an address of zero means "slot unused".
 *
 * The format carries neither timestamps nor a core id, so two manifest
 * knobs recover them:
 *  - core mapping: one file per core, each manifest entry naming its
 *    core index; the reader k-way-merges the per-core streams keyed
 *    (time, core, per-file order) — the exact tie order the synthetic
 *    generator's stable time sort produces, which is what makes
 *    record-and-replay through ChampSim files byte-identical.
 *  - timing: "period" synthesizes time = instruction-index × periodPs
 *    (for traces from real ChampSim tooling); "ip" reads the arrival
 *    time in picoseconds out of the ip field (our converter stores it
 *    there, making the round trip lossless).
 *
 * A converter-side address bias (default 64, one line) keeps the
 * all-zero core-local address representable despite the zero-means-
 * unused convention; the reader subtracts it back out.
 *
 * Only raw (uncompressed) files are supported — decompress .xz/.gz
 * captures before pointing the manifest at them.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/mapped_file.h"
#include "trace/source.h"

namespace mempod {

namespace champsim {
constexpr std::uint64_t kInstrBytes = 64;
constexpr std::uint64_t kDstSlots = 2; //!< store addresses per instr
constexpr std::uint64_t kSrcSlots = 4; //!< load addresses per instr
/** Converter default: bias addresses by one line so 0 stays usable. */
constexpr std::uint64_t kDefaultAddrBias = 64;
} // namespace champsim

/** How a ChampSim stream gets its timestamps (see file comment). */
enum class ChampSimTiming
{
    kPeriod, //!< time = per-file instruction index × periodPs
    kIp,     //!< time = the instr's ip field, in picoseconds
};

/** One per-core ChampSim file. */
struct ChampSimFileSpec
{
    std::string path;
    std::uint8_t core = 0;
};

/**
 * Streaming reader over a set of per-core ChampSim files: decodes
 * through bounded mmap windows and k-way-merges the per-core streams
 * into one time-ordered stream. Pre-scans each file once at open to
 * learn the record count (TraceSource::size contract).
 */
class ChampSimTraceSource final : public TraceSource
{
  public:
    ChampSimTraceSource(
        std::vector<ChampSimFileSpec> files, ChampSimTiming timing,
        TimePs period_ps, std::uint64_t addr_bias,
        std::uint64_t max_records = 0,
        std::uint64_t window_bytes = MappedFile::kDefaultWindowBytes);

    bool next(TraceRecord &out) override;
    void reset() override;
    std::uint64_t size() const override { return limit_; }
    std::uint64_t maxResidentBytes() const override;

  private:
    /** Per-core cursor: one file, a few pending records per instr. */
    struct PerFile
    {
        std::unique_ptr<MappedFile> file;
        std::uint8_t core = 0;
        std::uint64_t instrCount = 0;
        std::uint64_t instrIdx = 0;
        TraceRecord pending[champsim::kDstSlots + champsim::kSrcSlots];
        int pendingN = 0;
        int pendingI = 0;
        bool headValid = false;
        TraceRecord head;
    };

    void advance(PerFile &pf);

    std::vector<PerFile> files_;
    ChampSimTiming timing_;
    TimePs periodPs_;
    std::uint64_t addrBias_;
    std::uint64_t limit_ = 0;
    std::uint64_t emitted_ = 0;
};

/** What convertToChampSim wrote (feed straight into a manifest). */
struct ChampSimConvertResult
{
    std::vector<ChampSimFileSpec> files;
    std::uint64_t records = 0;
};

/**
 * Split a time-ordered stream into per-core ChampSim files named
 * `<stem>.core<k>.champsim`, one instruction per record. With
 * ChampSimTiming::kIp the arrival time is stored in the ip field and
 * the round trip is lossless; with kPeriod the ip holds the original
 * core-local address (cosmetic) and timing is resynthesized on read.
 */
ChampSimConvertResult convertToChampSim(TraceSource &source,
                                        const std::string &stem,
                                        ChampSimTiming timing,
                                        std::uint64_t addr_bias =
                                            champsim::kDefaultAddrBias);

} // namespace mempod
