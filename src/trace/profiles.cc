#include "trace/profiles.h"

#include "common/log.h"

namespace mempod {

const std::vector<BenchmarkProfile> &
allProfiles()
{
    // name, footprint, hotFrac, hotProb, zipf, stream, span, wr,
    // req/us, dwell, phasePeriod, phaseShift. Most benchmarks carry a slow
    // hot-set drift (short period, small shift) — real programs'
    // working sets move, which is what gives recency its predictive
    // edge on the fringe tiers (Figure 2).
    static const std::vector<BenchmarkProfile> profiles = {
        // Irregular graph search; moderate footprint, skewed reuse,
        // frontier drifts as the search advances.
        {"astar", 170_MiB, 0.02, 0.85, 0.9, 0.05, 4, 0.25, 6.0, 14, 30_us, 0.02},
        // Streams through structures larger than any interval: the
        // past interval barely overlaps the next (paper Section 3).
        {"bwaves", 400_MiB, 0.05, 0.08, 0.30, 0.85, 1536, 0.3, 18.0, 4, 0, 0.0},
        // Block compression: windowed reuse plus buffer streaming.
        {"bzip", 120_MiB, 0.03, 0.7, 0.8, 0.3, 256, 0.35, 10.0, 14, 40_us, 0.025},
        // Stable, *evenly* accessed hot set: exact counting (FC) beats
        // MEA's recency bias here — the paper's one FC win.
        {"cactus", 160_MiB, 0.003, 0.92, 0.9, 0.0, 8, 0.3, 8.0, 4, 0, 0.0},
        // FEM solver: medium footprint, moderate locality.
        {"dealii", 100_MiB, 0.03, 0.8, 0.9, 0.2, 128, 0.25, 9.0, 14, 40_us, 0.025},
        // Compiler: small hot set, low request rate.
        {"gcc", 90_MiB, 0.04, 0.75, 1.0, 0.25, 16, 0.3, 5.0, 14, 50_us, 0.03},
        // Large scientific footprint with streaming phases.
        {"gems", 350_MiB, 0.015, 0.7, 0.8, 0.4, 768, 0.3, 14.0, 12, 25_us, 0.02},
        // Lattice-Boltzmann: streams a large set doing constant work
        // per page — full counters rank *finished* pages highest while
        // MEA keeps the pages still being worked on (paper Section 3).
        {"lbm", 420_MiB, 0.01, 0.15, 0.80, 0.85, 2048, 0.45, 20.0, 6, 0, 0.0},
        // Mixed stencil/stream behaviour.
        {"leslie", 130_MiB, 0.02, 0.65, 0.7, 0.5, 768, 0.35, 12.0, 12, 25_us, 0.02},
        // Small working set that fits entirely in fast memory with
        // heavy reuse: after a few epochs the hot pages are all
        // resident in HBM (paper Section 6.3.2).
        {"libquantum", 256_KiB, 0.15, 0.30, 0.80, 0.90, 512, 0.25, 25.0, 4, 0, 0.0},
        // Pointer chasing over a huge sparse structure whose hot nodes
        // drift.
        {"mcf", 900_MiB, 0.01, 0.6, 0.75, 0.02, 2, 0.2, 22.0, 3, 40_us, 0.02},
        // QCD: strided sweeps with moderate reuse.
        {"milc", 300_MiB, 0.015, 0.55, 0.6, 0.6, 512, 0.35, 13.0, 12, 25_us, 0.02},
        // Discrete-event simulation: heap-heavy skewed reuse.
        {"omnetpp", 140_MiB, 0.03, 0.8, 1.05, 0.1, 4, 0.3, 10.0, 10, 50_us, 0.025},
        // LP solver: sparse matrix sweeps.
        {"soplex", 220_MiB, 0.02, 0.7, 0.85, 0.35, 384, 0.25, 12.0, 12, 40_us, 0.025},
        // Speech recognition: compact models, read-dominated.
        {"sphinx", 80_MiB, 0.04, 0.85, 1.0, 0.15, 8, 0.15, 9.0, 16, 60_us, 0.03},
        // XML transform: highly skewed hot set with large phase
        // changes — where MEA's recency bias pays off most.
        {"xalanc", 180_MiB, 0.015, 0.85, 1.1, 0.1, 6, 0.25, 15.0, 10, 25_us, 0.015},
        // Astrophysics CFD: streaming plus rotating hot regions.
        {"zeusmp", 260_MiB, 0.015, 0.65, 0.95, 0.45, 768, 0.35, 12.0, 12, 30_us, 0.02},
    };
    return profiles;
}

bool
hasProfile(const std::string &name)
{
    for (const auto &p : allProfiles())
        if (p.name == name)
            return true;
    return false;
}

const BenchmarkProfile &
findProfile(const std::string &name)
{
    for (const auto &p : allProfiles())
        if (p.name == name)
            return p;
    MEMPOD_FATAL("unknown benchmark profile '%s'", name.c_str());
}

} // namespace mempod
