#include "trace/generator.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/log.h"
#include "common/rng.h"

namespace mempod {

namespace {

/** State machine producing one core's access stream. */
class CoreModel
{
  public:
    CoreModel(const BenchmarkProfile &prof, std::uint8_t core,
              const GeneratorConfig &cfg)
        : prof_(prof),
          core_(core),
          rng_(cfg.seed * 0x100 + core + 1)
    {
        footprintPages_ = std::max<std::uint64_t>(
            4, static_cast<std::uint64_t>(
                   static_cast<double>(prof.footprintBytes / kPageBytes) *
                   cfg.footprintScale));
        hotPages_ = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(footprintPages_ *
                                          prof.hotFraction));
        linesPerFootprint_ = footprintPages_ * kLinesPerPage;
        const double rate = prof.reqsPerUs * cfg.rateScale;
        MEMPOD_ASSERT(rate > 0, "profile '%s' has zero request rate",
                      prof.name.c_str());
        meanGapPs_ = 1e6 / rate;
        // Desynchronize phase boundaries across cores.
        if (prof_.phasePeriod > 0)
            nextPhaseAt_ = prof_.phasePeriod +
                           rng_.nextBelow(prof_.phasePeriod);
    }

    /** Produce the next record for this core. */
    TraceRecord
    next()
    {
        advanceClock();
        maybeRotatePhase();

        TraceRecord r;
        r.time = now_;
        r.core = core_;
        r.type = rng_.nextBool(prof_.writeFraction) ? AccessType::kWrite
                                                    : AccessType::kRead;

        std::uint64_t line;
        // Revisit one of the recently drawn hot pages: each hot draw
        // grants ~dwellLines-1 further visits (credits), spread over
        // the small active ring and interleaved in time (the LLC
        // absorbs truly back-to-back same-page touches, so an LLC-miss
        // stream never shows them consecutively).
        if (activeCount_ > 0 && dwellCredits_ > 0) {
            --dwellCredits_;
            const std::uint64_t page =
                active_[rng_.nextBelow(activeCount_)];
            line = page * kLinesPerPage + rng_.nextBelow(kLinesPerPage);
            r.coreLocal = line * kLineBytes;
            return r;
        }
        if (rng_.nextBool(prof_.streamFraction)) {
            // Working-front stream: scatter over a span behind the
            // advancing cursor (constant work per page).
            const auto span = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(prof_.streamSpanLines));
            const std::uint64_t back = rng_.nextBelow(span);
            line = (cursor_ + linesPerFootprint_ - back) %
                   linesPerFootprint_;
            cursor_ = (cursor_ + 1) % linesPerFootprint_;
        } else if (rng_.nextBool(prof_.hotAccessProb)) {
            // A fresh hot page joins the active working set; cold
            // touches below stay single-line.
            const std::uint64_t page =
                hotPage(rng_.nextZipf(hotPages_, prof_.zipfS));
            line = page * kLinesPerPage +
                   rng_.nextBelow(kLinesPerPage);
            active_[activeNext_] = page;
            activeNext_ = (activeNext_ + 1) % active_.size();
            activeCount_ =
                std::min(activeCount_ + 1, active_.size());
            dwellCredits_ += rng_.nextGeometric(prof_.dwellLines) - 1;
        } else {
            line = rng_.nextBelow(footprintPages_) * kLinesPerPage +
                   rng_.nextBelow(kLinesPerPage);
        }
        r.coreLocal = line * kLineBytes;
        return r;
    }

    TimePs now() const { return now_; }

  private:
    void
    advanceClock()
    {
        // Exponential inter-arrival gap, floored at 1 ps.
        const double u = rng_.nextDouble();
        const double gap = -meanGapPs_ * std::log1p(-u);
        now_ += std::max<TimePs>(1, static_cast<TimePs>(gap));
    }

    /**
     * Map a zipf rank to a page. The head ranks are pinned (a stable
     * hottest set), while fringe ranks slide over the footprint as
     * drift_ advances: a page entering the fringe window ramps from
     * cold through the warm ranks and back out — the cold->hot->cold
     * life cycle of real working sets that rewards recency-based
     * prediction on the lower tiers.
     */
    std::uint64_t
    hotPage(std::uint64_t rank) const
    {
        const std::uint64_t head =
            std::min<std::uint64_t>(3, hotPages_);
        if (rank < head)
            return rank;
        const std::uint64_t window = footprintPages_ - head;
        return head + (drift_ + (rank - head)) % window;
    }

    void
    maybeRotatePhase()
    {
        if (prof_.phasePeriod == 0 || now_ < nextPhaseAt_)
            return;
        const auto shift = static_cast<std::uint64_t>(
            std::max(1.0, hotPages_ * prof_.phaseShift));
        drift_ += shift;
        nextPhaseAt_ += prof_.phasePeriod;
    }

    const BenchmarkProfile &prof_;
    std::uint8_t core_;
    Rng rng_;
    std::uint64_t footprintPages_ = 0;
    std::uint64_t hotPages_ = 0;
    std::uint64_t linesPerFootprint_ = 0;
    double meanGapPs_ = 0.0;
    TimePs now_ = 0;
    TimePs nextPhaseAt_ = 0;
    std::uint64_t drift_ = 0; //!< fringe-window position
    std::uint64_t cursor_ = 0;
    std::array<std::uint64_t, 6> active_{}; //!< recent hot pages
    std::size_t activeCount_ = 0;
    std::size_t activeNext_ = 0;
    std::uint64_t dwellCredits_ = 0;
};

} // namespace

Trace
generateTrace(const std::vector<BenchmarkProfile> &core_profiles,
              const GeneratorConfig &config)
{
    MEMPOD_ASSERT(!core_profiles.empty(), "no core profiles");
    MEMPOD_ASSERT(config.totalRequests > 0, "empty trace requested");

    const std::size_t cores = core_profiles.size();
    std::vector<CoreModel> models;
    models.reserve(cores);
    for (std::size_t c = 0; c < cores; ++c)
        models.emplace_back(core_profiles[c],
                            static_cast<std::uint8_t>(c), config);

    // Each core contributes requests proportional to its rate so the
    // merged stream reflects the profiles' relative intensities.
    double rate_sum = 0.0;
    for (const auto &p : core_profiles)
        rate_sum += p.reqsPerUs;
    std::vector<std::uint64_t> quota(cores);
    std::uint64_t assigned = 0;
    for (std::size_t c = 0; c < cores; ++c) {
        quota[c] = static_cast<std::uint64_t>(
            config.totalRequests *
            (core_profiles[c].reqsPerUs / rate_sum));
        assigned += quota[c];
    }
    quota[0] += config.totalRequests - assigned; // rounding remainder

    Trace trace;
    trace.reserve(config.totalRequests);
    for (std::size_t c = 0; c < cores; ++c)
        for (std::uint64_t i = 0; i < quota[c]; ++i)
            trace.push_back(models[c].next());

    std::stable_sort(trace.begin(), trace.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.time < b.time;
                     });
    return trace;
}

} // namespace mempod
