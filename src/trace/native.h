/**
 * @file
 * The native on-disk trace format (version 2): a self-describing
 * header — magic, version, endianness tag, record count, record size —
 * followed by fixed-width 18-byte records. The header lets the reader
 * fail fast with an actionable message on foreign files, truncation,
 * version skew, or cross-endian captures instead of silently
 * misparsing raw bytes (the v1 format's failure mode).
 *
 * Layout (all fields little-endian on the machines we run on; the
 * endianTag detects a byte-swapped capture):
 *
 *   offset  size  field
 *        0     8  magic        "MPODTRC2"
 *        8     4  version      2
 *       12     4  endianTag    0x01020304
 *       16     8  recordCount
 *       24     4  recordBytes  18
 *       28     4  reserved     0
 *       32   18n  records      { u64 timePs, u64 coreLocal, u8 core,
 *                                u8 type (0=read, 1=write) }
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/mapped_file.h"
#include "trace/source.h"

namespace mempod {

namespace native_trace {
constexpr char kMagic[8] = {'M', 'P', 'O', 'D', 'T', 'R', 'C', '2'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint64_t kHeaderBytes = 32;
constexpr std::uint32_t kRecordBytes = 18;
} // namespace native_trace

/**
 * Streaming sink for the native format: records are appended one at a
 * time (the recording frontend taps them off live simulation) and the
 * header's record count is patched in at close. Fatal on I/O errors.
 */
class NativeTraceWriter
{
  public:
    explicit NativeTraceWriter(const std::string &path);
    ~NativeTraceWriter();

    NativeTraceWriter(const NativeTraceWriter &) = delete;
    NativeTraceWriter &operator=(const NativeTraceWriter &) = delete;

    void append(const TraceRecord &rec);

    /** Flush, patch the record count into the header, and close. */
    void close();

    std::uint64_t recordsWritten() const { return count_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
};

/**
 * Streaming reader for the native format: validates the header at
 * open, then decodes records through a bounded mmap window. A non-zero
 * `max_records` caps the stream (harness --requests applies uniformly
 * to external traces).
 */
class NativeTraceSource final : public TraceSource
{
  public:
    explicit NativeTraceSource(
        const std::string &path, std::uint64_t max_records = 0,
        std::uint64_t window_bytes = MappedFile::kDefaultWindowBytes);

    bool next(TraceRecord &out) override;
    void reset() override;
    std::uint64_t size() const override { return limit_; }
    std::uint64_t maxResidentBytes() const override
    {
        return file_.maxMappedBytes();
    }

  private:
    MappedFile file_;
    std::uint64_t limit_ = 0; //!< records this cursor will yield
    std::uint64_t idx_ = 0;
    TimePs prevTime_ = 0;
};

/** One-shot write of a materialized trace (saveTrace's backend). */
void writeNativeTrace(const Trace &trace, const std::string &path);

} // namespace mempod
