/**
 * @file
 * Per-benchmark behaviour profiles for the synthetic SPEC CPU2006
 * stand-in workloads. Each profile parameterizes a per-core access
 * stream: footprint, hot-set size and skew, streaming behaviour,
 * write ratio, request rate and phase changes. The parameters are
 * tuned to reproduce the qualitative behaviours the paper relies on
 * (see DESIGN.md section 1): libquantum's tiny working set, the
 * bwaves/lbm streaming that defeats full counters, cactus's stable
 * evenly-hot set where exact counting beats MEA, xalanc's skewed and
 * phase-changing reuse, mcf's irregular pointer chasing.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace mempod {

/** Parametric behaviour description of one benchmark. */
struct BenchmarkProfile
{
    std::string name;
    std::uint64_t footprintBytes = 0; //!< per-core resident set
    double hotFraction = 0.1;    //!< hot pages / footprint pages
    double hotAccessProb = 0.8;  //!< P(non-stream access hits hot set)
    double zipfS = 0.9;          //!< skew within the hot set
    double streamFraction = 0.2; //!< P(access from the streaming front)
    /**
     * Working-front depth: stream accesses scatter over this many
     * lines behind the advancing cursor, modelling stencil/multi-array
     * kernels that do a constant amount of work per page. Pages near
     * the front are "in progress" at interval boundaries — the
     * behaviour that makes recency (MEA) predictive where exact
     * counting (FC) is not.
     */
    double streamSpanLines = 8.0;
    double writeFraction = 0.3;
    double reqsPerUs = 10.0;     //!< per-core average request rate
    /**
     * Mean number of consecutive accesses to a hot/cold page before a
     * new page is drawn (geometric): page-granularity spatial
     * locality. Pointer chasers sit near 1; stencil codes higher.
     */
    double dwellLines = 4.0;
    TimePs phasePeriod = 0;      //!< hot-set rotation period (0 = stable)
    double phaseShift = 0.5;     //!< hot-set fraction replaced per phase
};

/** All 17 benchmark profiles (Table 3 row set). */
const std::vector<BenchmarkProfile> &allProfiles();

/** Find a profile by name; fatal if unknown. */
const BenchmarkProfile &findProfile(const std::string &name);

/** True if a profile with this name exists. */
bool hasProfile(const std::string &name);

} // namespace mempod
