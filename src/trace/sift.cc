#include "trace/sift.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/log.h"

namespace mempod {

namespace {

using namespace sift;

std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/** Validate the SIFT header; returns the payload start offset. */
std::uint64_t
checkHeader(MappedFile &file)
{
    if (file.size() < kHeaderBytes) {
        MEMPOD_FATAL("'%s' is not a SIFT trace: %llu bytes is smaller "
                     "than the %llu-byte header",
                     file.path().c_str(),
                     static_cast<unsigned long long>(file.size()),
                     static_cast<unsigned long long>(kHeaderBytes));
    }
    const std::uint8_t *h = file.at(0, kHeaderBytes);
    std::uint32_t magic = 0, headerSize = 0;
    std::uint64_t options = 0;
    std::memcpy(&magic, h, 4);
    std::memcpy(&headerSize, h + 4, 4);
    std::memcpy(&options, h + 8, 8);
    if (magic != kMagic) {
        MEMPOD_FATAL("'%s' is not a SIFT trace (bad magic 0x%08x, "
                     "expected 0x%08x \"SIFT\")",
                     file.path().c_str(), magic, kMagic);
    }
    if (options != 0) {
        MEMPOD_FATAL("'%s': SIFT options 0x%llx — compressed or "
                     "extended streams are not supported; write an "
                     "uncompressed trace (options = 0)",
                     file.path().c_str(),
                     static_cast<unsigned long long>(options));
    }
    if (headerSize < kHeaderBytes || headerSize > file.size()) {
        MEMPOD_FATAL("'%s': SIFT header size %u is outside the file",
                     file.path().c_str(), headerSize);
    }
    return headerSize;
}

} // namespace

SiftTraceSource::SiftTraceSource(std::vector<SiftFileSpec> files,
                                 TimePs period_ps,
                                 std::uint64_t max_records,
                                 std::uint64_t window_bytes)
    : periodPs_(period_ps)
{
    if (files.empty())
        MEMPOD_FATAL("sift trace needs at least one file");
    if (periodPs_ == 0)
        MEMPOD_FATAL("sift timing needs period_ps > 0");
    std::uint64_t total = 0;
    for (auto &spec : files) {
        PerFile pf;
        pf.file = std::make_unique<MappedFile>(spec.path, window_bytes);
        pf.core = spec.core;
        pf.offset = checkHeader(*pf.file);
        // Pre-scan once: walk the record stream to count accesses and
        // surface corruption at open rather than mid-run.
        std::uint64_t off = pf.offset;
        bool ended = false;
        while (off < pf.file->size()) {
            const std::uint8_t kind = *pf.file->at(off, 1);
            if (kind == kRecordEnd) {
                ended = true;
                break;
            }
            if (kind != kRecordMemAccess) {
                MEMPOD_FATAL("'%s': unknown SIFT record kind 0x%02x at "
                             "offset %llu — only the uncompressed "
                             "MemAccess subset is supported",
                             spec.path.c_str(), kind,
                             static_cast<unsigned long long>(off));
            }
            pf.file->at(off, kMemAccessBytes); // fatal if truncated
            off += kMemAccessBytes;
            ++total;
        }
        if (!ended && off != pf.file->size()) {
            MEMPOD_FATAL("'%s': truncated SIFT trace at offset %llu",
                         spec.path.c_str(),
                         static_cast<unsigned long long>(off));
        }
        files_.push_back(std::move(pf));
    }
    limit_ = max_records > 0 ? std::min(max_records, total) : total;
    reset();
}

void
SiftTraceSource::advance(PerFile &pf)
{
    if (pf.offset >= pf.file->size()) {
        pf.headValid = false;
        return;
    }
    const std::uint8_t kind = *pf.file->at(pf.offset, 1);
    if (kind == kRecordEnd) {
        pf.headValid = false;
        return;
    }
    const std::uint8_t *p = pf.file->at(pf.offset, kMemAccessBytes);
    const std::uint64_t icount = readU64(p + 1);
    pf.head.time = icount * periodPs_;
    pf.head.coreLocal = readU64(p + 9);
    pf.head.core = pf.core;
    pf.head.type = p[17] ? AccessType::kWrite : AccessType::kRead;
    pf.headValid = true;
    pf.offset += kMemAccessBytes;
}

bool
SiftTraceSource::next(TraceRecord &out)
{
    if (emitted_ >= limit_)
        return false;
    PerFile *best = nullptr;
    for (auto &pf : files_) {
        if (!pf.headValid)
            continue;
        if (best == nullptr || pf.head.time < best->head.time ||
            (pf.head.time == best->head.time &&
             pf.core < best->core)) {
            best = &pf;
        }
    }
    if (best == nullptr)
        return false;
    out = best->head;
    advance(*best);
    if (best->headValid && best->head.time < out.time) {
        MEMPOD_FATAL("'%s': records are not in icount order — SIFT "
                     "per-core files must be monotonically counted",
                     best->file->path().c_str());
    }
    ++emitted_;
    return true;
}

void
SiftTraceSource::reset()
{
    emitted_ = 0;
    for (auto &pf : files_) {
        pf.offset = checkHeader(*pf.file);
        pf.headValid = false;
        advance(pf);
    }
}

std::uint64_t
SiftTraceSource::maxResidentBytes() const
{
    std::uint64_t total = 0;
    for (const auto &pf : files_)
        total += pf.file->maxMappedBytes();
    return total;
}

SiftConvertResult
convertToSift(TraceSource &source, const std::string &stem,
              TimePs period_ps)
{
    if (period_ps == 0)
        MEMPOD_FATAL("sift conversion needs period_ps > 0");
    source.reset();
    std::map<std::uint8_t, std::FILE *> out;
    SiftConvertResult result;
    TraceRecord rec;
    while (source.next(rec)) {
        std::FILE *&f = out[rec.core];
        if (f == nullptr) {
            const std::string path = stem + ".core" +
                                     std::to_string(rec.core) + ".sift";
            f = std::fopen(path.c_str(), "wb");
            if (!f) {
                MEMPOD_FATAL("cannot open '%s' for writing",
                             path.c_str());
            }
            std::uint8_t header[sift::kHeaderBytes] = {0};
            const std::uint32_t magic = sift::kMagic;
            const std::uint32_t headerSize = sift::kHeaderBytes;
            std::memcpy(header, &magic, 4);
            std::memcpy(header + 4, &headerSize, 4);
            if (std::fwrite(header, sift::kHeaderBytes, 1, f) != 1) {
                MEMPOD_FATAL("write to '%s' failed", path.c_str());
            }
            result.files.push_back({path, rec.core});
        }
        std::uint8_t buf[sift::kMemAccessBytes];
        buf[0] = sift::kRecordMemAccess;
        const std::uint64_t icount = rec.time / period_ps;
        std::memcpy(buf + 1, &icount, 8);
        std::memcpy(buf + 9, &rec.coreLocal, 8);
        buf[17] = rec.type == AccessType::kWrite ? 1 : 0;
        if (std::fwrite(buf, sift::kMemAccessBytes, 1, f) != 1)
            MEMPOD_FATAL("write to SIFT file for core %u failed",
                         rec.core);
        ++result.records;
    }
    for (auto &[core, f] : out) {
        const std::uint8_t end = sift::kRecordEnd;
        if (std::fwrite(&end, 1, 1, f) != 1 || std::fclose(f) != 0)
            MEMPOD_FATAL("closing SIFT file for core %u failed", core);
    }
    std::sort(result.files.begin(), result.files.end(),
              [](const auto &a, const auto &b) {
                  return a.core < b.core;
              });
    source.reset();
    return result;
}

} // namespace mempod
