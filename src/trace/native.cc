#include "trace/native.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace mempod {

namespace {

using namespace native_trace;

/** First 8 bytes of the retired, unversioned v1 format ("MEMPODTR"). */
constexpr std::uint64_t kLegacyMagic = 0x4d454d504f445452ull;

void
encodeHeader(std::uint8_t out[kHeaderBytes], std::uint64_t count)
{
    std::memset(out, 0, kHeaderBytes);
    std::memcpy(out, kMagic, sizeof(kMagic));
    const std::uint32_t version = kVersion;
    const std::uint32_t endian = kEndianTag;
    const std::uint32_t recBytes = kRecordBytes;
    std::memcpy(out + 8, &version, 4);
    std::memcpy(out + 12, &endian, 4);
    std::memcpy(out + 16, &count, 8);
    std::memcpy(out + 24, &recBytes, 4);
}

void
encodeRecord(std::uint8_t out[kRecordBytes], const TraceRecord &rec)
{
    std::memcpy(out, &rec.time, 8);
    std::memcpy(out + 8, &rec.coreLocal, 8);
    out[16] = rec.core;
    out[17] = rec.type == AccessType::kWrite ? 1 : 0;
}

} // namespace

NativeTraceWriter::NativeTraceWriter(const std::string &path)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        MEMPOD_FATAL("cannot open trace file '%s' for writing",
                     path.c_str());
    }
    std::uint8_t header[kHeaderBytes];
    encodeHeader(header, 0); // count patched in at close()
    if (std::fwrite(header, kHeaderBytes, 1, file_) != 1)
        MEMPOD_FATAL("write to trace file '%s' failed", path.c_str());
}

NativeTraceWriter::~NativeTraceWriter()
{
    if (file_)
        close();
}

void
NativeTraceWriter::append(const TraceRecord &rec)
{
    MEMPOD_ASSERT(file_ != nullptr,
                  "append to closed trace writer '%s'", path_.c_str());
    std::uint8_t buf[kRecordBytes];
    encodeRecord(buf, rec);
    if (std::fwrite(buf, kRecordBytes, 1, file_) != 1)
        MEMPOD_FATAL("write to trace file '%s' failed", path_.c_str());
    ++count_;
}

void
NativeTraceWriter::close()
{
    MEMPOD_ASSERT(file_ != nullptr,
                  "double close of trace writer '%s'", path_.c_str());
    std::uint8_t header[kHeaderBytes];
    encodeHeader(header, count_);
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(header, kHeaderBytes, 1, file_) != 1 ||
        std::fclose(file_) != 0) {
        file_ = nullptr;
        MEMPOD_FATAL("finalizing trace file '%s' failed", path_.c_str());
    }
    file_ = nullptr;
}

NativeTraceSource::NativeTraceSource(const std::string &path,
                                     std::uint64_t max_records,
                                     std::uint64_t window_bytes)
    : file_(path, window_bytes)
{
    if (file_.size() < kHeaderBytes) {
        MEMPOD_FATAL("'%s' is not a mempod trace: %llu bytes is smaller "
                     "than the %llu-byte header",
                     path.c_str(),
                     static_cast<unsigned long long>(file_.size()),
                     static_cast<unsigned long long>(kHeaderBytes));
    }
    const std::uint8_t *h = file_.at(0, kHeaderBytes);
    if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
        std::uint64_t asU64 = 0;
        std::memcpy(&asU64, h, 8);
        if (asU64 == kLegacyMagic) {
            MEMPOD_FATAL("'%s' is a v1 (unversioned) mempod trace; the "
                         "format is now versioned — re-record it with "
                         "this build (trace_tool record / --record)",
                         path.c_str());
        }
        MEMPOD_FATAL("'%s' is not a mempod trace (bad magic; expected "
                     "\"MPODTRC2\")",
                     path.c_str());
    }
    std::uint32_t version = 0, endian = 0, recBytes = 0;
    std::uint64_t count = 0;
    std::memcpy(&version, h + 8, 4);
    std::memcpy(&endian, h + 12, 4);
    std::memcpy(&count, h + 16, 8);
    std::memcpy(&recBytes, h + 24, 4);
    if (version != kVersion) {
        MEMPOD_FATAL("'%s': trace format version %u, but this build "
                     "reads version %u — re-record the trace or use a "
                     "matching build",
                     path.c_str(), version, kVersion);
    }
    if (endian != kEndianTag) {
        MEMPOD_FATAL("'%s': endianness mismatch (tag 0x%08x, expected "
                     "0x%08x) — the trace was captured on an "
                     "opposite-endian machine",
                     path.c_str(), endian, kEndianTag);
    }
    if (recBytes != kRecordBytes) {
        MEMPOD_FATAL("'%s': header declares %u-byte records, but this "
                     "build reads %u-byte records",
                     path.c_str(), recBytes, kRecordBytes);
    }
    const std::uint64_t payload = file_.size() - kHeaderBytes;
    if (payload / kRecordBytes < count) {
        MEMPOD_FATAL("'%s': truncated trace — header declares %llu "
                     "records but only %llu fit in the file",
                     path.c_str(),
                     static_cast<unsigned long long>(count),
                     static_cast<unsigned long long>(payload /
                                                     kRecordBytes));
    }
    limit_ = max_records > 0 ? std::min(max_records, count) : count;
}

bool
NativeTraceSource::next(TraceRecord &out)
{
    if (idx_ >= limit_)
        return false;
    const std::uint8_t *p =
        file_.at(kHeaderBytes + idx_ * kRecordBytes, kRecordBytes);
    std::memcpy(&out.time, p, 8);
    std::memcpy(&out.coreLocal, p + 8, 8);
    out.core = p[16];
    out.type = p[17] ? AccessType::kWrite : AccessType::kRead;
    if (idx_ > 0 && out.time < prevTime_) {
        MEMPOD_FATAL("'%s': record %llu is out of time order (%llu ps "
                     "after %llu ps) — the trace is corrupt or was not "
                     "time-sorted",
                     file_.path().c_str(),
                     static_cast<unsigned long long>(idx_),
                     static_cast<unsigned long long>(out.time),
                     static_cast<unsigned long long>(prevTime_));
    }
    prevTime_ = out.time;
    ++idx_;
    return true;
}

void
NativeTraceSource::reset()
{
    idx_ = 0;
    prevTime_ = 0;
}

void
writeNativeTrace(const Trace &trace, const std::string &path)
{
    NativeTraceWriter writer(path);
    for (const auto &r : trace)
        writer.append(r);
    writer.close();
}

} // namespace mempod
