#include "trace/source.h"

#include <cmath>
#include <unordered_set>

namespace mempod {

bool
ScaledTraceSource::next(TraceRecord &out)
{
    if (!inner_->next(out))
        return false;
    out.time = static_cast<TimePs>(
        std::llround(static_cast<double>(out.time) * scale_));
    return true;
}

Trace
materialize(TraceSource &source)
{
    source.reset();
    Trace out;
    out.reserve(source.size());
    TraceRecord r;
    while (source.next(r))
        out.push_back(r);
    return out;
}

TraceSummary
summarize(TraceSource &source)
{
    source.reset();
    TraceSummary s;
    std::unordered_set<std::uint64_t> pages;
    TraceRecord r;
    TimePs first = 0, last = 0;
    while (source.next(r)) {
        if (s.records == 0)
            first = r.time;
        last = r.time;
        ++s.records;
        if (r.type == AccessType::kWrite)
            ++s.writes;
        else
            ++s.reads;
        pages.insert((static_cast<std::uint64_t>(r.core) << 56) |
                     (r.coreLocal / kPageBytes));
    }
    s.touchedPages = pages.size();
    if (s.records > 0) {
        s.duration = last - first;
        if (s.duration > 0) {
            s.requestsPerUs = static_cast<double>(s.records) /
                              (static_cast<double>(s.duration) / 1e6);
        }
    }
    source.reset();
    return s;
}

} // namespace mempod
