#include "trace/champsim.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/log.h"

namespace mempod {

namespace {

using namespace champsim;

/** Byte offsets inside ChampSim's 64-byte input_instr. */
constexpr std::uint64_t kIpOff = 0;
constexpr std::uint64_t kDstMemOff = 16; //!< u64 dst_mem[2] (stores)
constexpr std::uint64_t kSrcMemOff = 32; //!< u64 src_mem[4] (loads)

std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

} // namespace

ChampSimTraceSource::ChampSimTraceSource(
    std::vector<ChampSimFileSpec> files, ChampSimTiming timing,
    TimePs period_ps, std::uint64_t addr_bias,
    std::uint64_t max_records, std::uint64_t window_bytes)
    : timing_(timing), periodPs_(period_ps), addrBias_(addr_bias)
{
    if (files.empty())
        MEMPOD_FATAL("champsim trace needs at least one file");
    if (timing_ == ChampSimTiming::kPeriod && periodPs_ == 0)
        MEMPOD_FATAL("champsim 'period' timing needs period_ps > 0");
    std::uint64_t total = 0;
    for (auto &spec : files) {
        PerFile pf;
        pf.file = std::make_unique<MappedFile>(spec.path, window_bytes);
        pf.core = spec.core;
        if (pf.file->size() % kInstrBytes != 0) {
            MEMPOD_FATAL("'%s' is not a raw ChampSim trace: %llu bytes "
                         "is not a multiple of the %llu-byte "
                         "input_instr (compressed captures must be "
                         "decompressed first)",
                         spec.path.c_str(),
                         static_cast<unsigned long long>(
                             pf.file->size()),
                         static_cast<unsigned long long>(kInstrBytes));
        }
        pf.instrCount = pf.file->size() / kInstrBytes;
        // Pre-scan once: count used memory slots so size() is known up
        // front. Streams through the same bounded window.
        std::uint64_t recs = 0;
        for (std::uint64_t i = 0; i < pf.instrCount; ++i) {
            const std::uint8_t *instr =
                pf.file->at(i * kInstrBytes, kInstrBytes);
            for (std::uint64_t s = 0; s < kSrcSlots; ++s)
                if (readU64(instr + kSrcMemOff + 8 * s) != 0)
                    ++recs;
            for (std::uint64_t s = 0; s < kDstSlots; ++s)
                if (readU64(instr + kDstMemOff + 8 * s) != 0)
                    ++recs;
        }
        total += recs;
        files_.push_back(std::move(pf));
    }
    limit_ = max_records > 0 ? std::min(max_records, total) : total;
    reset();
}

void
ChampSimTraceSource::advance(PerFile &pf)
{
    while (pf.pendingI >= pf.pendingN) {
        if (pf.instrIdx >= pf.instrCount) {
            pf.headValid = false;
            return;
        }
        const std::uint8_t *instr =
            pf.file->at(pf.instrIdx * kInstrBytes, kInstrBytes);
        const TimePs time =
            timing_ == ChampSimTiming::kIp
                ? readU64(instr + kIpOff)
                : pf.instrIdx * periodPs_;
        pf.pendingN = 0;
        pf.pendingI = 0;
        // Loads first, then stores — all at the instruction's time.
        for (std::uint64_t s = 0; s < kSrcSlots; ++s) {
            const std::uint64_t a = readU64(instr + kSrcMemOff + 8 * s);
            if (a == 0)
                continue;
            if (a < addrBias_) {
                MEMPOD_FATAL("'%s': address 0x%llx at instruction %llu "
                             "is below the manifest addr_bias %llu",
                             pf.file->path().c_str(),
                             static_cast<unsigned long long>(a),
                             static_cast<unsigned long long>(
                                 pf.instrIdx),
                             static_cast<unsigned long long>(
                                 addrBias_));
            }
            pf.pending[pf.pendingN++] = TraceRecord{
                time, a - addrBias_, pf.core, AccessType::kRead};
        }
        for (std::uint64_t s = 0; s < kDstSlots; ++s) {
            const std::uint64_t a = readU64(instr + kDstMemOff + 8 * s);
            if (a == 0)
                continue;
            if (a < addrBias_) {
                MEMPOD_FATAL("'%s': address 0x%llx at instruction %llu "
                             "is below the manifest addr_bias %llu",
                             pf.file->path().c_str(),
                             static_cast<unsigned long long>(a),
                             static_cast<unsigned long long>(
                                 pf.instrIdx),
                             static_cast<unsigned long long>(
                                 addrBias_));
            }
            pf.pending[pf.pendingN++] = TraceRecord{
                time, a - addrBias_, pf.core, AccessType::kWrite};
        }
        ++pf.instrIdx;
    }
    pf.head = pf.pending[pf.pendingI++];
    pf.headValid = true;
}

bool
ChampSimTraceSource::next(TraceRecord &out)
{
    if (emitted_ >= limit_)
        return false;
    // Pick the file with the smallest (time, core). Each file is one
    // core and within a file records stay in file order, so this key
    // reproduces the generator's stable-sort tie order exactly.
    PerFile *best = nullptr;
    for (auto &pf : files_) {
        if (!pf.headValid)
            continue;
        if (best == nullptr || pf.head.time < best->head.time ||
            (pf.head.time == best->head.time &&
             pf.core < best->core)) {
            best = &pf;
        }
    }
    if (best == nullptr)
        return false;
    out = best->head;
    advance(*best);
    if (best->headValid && best->head.time < out.time) {
        MEMPOD_FATAL("'%s': records are not in time order (%llu ps "
                     "after %llu ps) — ChampSim per-core files must be "
                     "time-sorted",
                     best->file->path().c_str(),
                     static_cast<unsigned long long>(best->head.time),
                     static_cast<unsigned long long>(out.time));
    }
    ++emitted_;
    return true;
}

void
ChampSimTraceSource::reset()
{
    emitted_ = 0;
    for (auto &pf : files_) {
        pf.instrIdx = 0;
        pf.pendingN = 0;
        pf.pendingI = 0;
        pf.headValid = false;
        advance(pf);
    }
}

std::uint64_t
ChampSimTraceSource::maxResidentBytes() const
{
    std::uint64_t total = 0;
    for (const auto &pf : files_)
        total += pf.file->maxMappedBytes();
    return total;
}

ChampSimConvertResult
convertToChampSim(TraceSource &source, const std::string &stem,
                  ChampSimTiming timing, std::uint64_t addr_bias)
{
    source.reset();
    std::map<std::uint8_t, std::FILE *> out;
    ChampSimConvertResult result;
    TraceRecord rec;
    while (source.next(rec)) {
        std::FILE *&f = out[rec.core];
        if (f == nullptr) {
            const std::string path = stem + ".core" +
                                     std::to_string(rec.core) +
                                     ".champsim";
            f = std::fopen(path.c_str(), "wb");
            if (!f) {
                MEMPOD_FATAL("cannot open '%s' for writing",
                             path.c_str());
            }
            result.files.push_back({path, rec.core});
        }
        std::uint8_t instr[kInstrBytes] = {0};
        const std::uint64_t ip = timing == ChampSimTiming::kIp
                                     ? rec.time
                                     : rec.coreLocal;
        const std::uint64_t addr = rec.coreLocal + addr_bias;
        std::memcpy(instr + kIpOff, &ip, 8);
        if (rec.type == AccessType::kWrite)
            std::memcpy(instr + kDstMemOff, &addr, 8);
        else
            std::memcpy(instr + kSrcMemOff, &addr, 8);
        if (std::fwrite(instr, kInstrBytes, 1, f) != 1)
            MEMPOD_FATAL("write to ChampSim file for core %u failed",
                         rec.core);
        ++result.records;
    }
    for (auto &[core, f] : out) {
        if (std::fclose(f) != 0)
            MEMPOD_FATAL("closing ChampSim file for core %u failed",
                         core);
    }
    // Manifest order: ascending core index (std::map iteration gave us
    // open-order; re-sort for stability when cores first appear late).
    std::sort(result.files.begin(), result.files.end(),
              [](const auto &a, const auto &b) {
                  return a.core < b.core;
              });
    source.reset();
    return result;
}

} // namespace mempod
