/**
 * @file
 * WorkloadCatalog: the one registry every harness and tool resolves
 * workload names through. It unifies the paper's 27 synthetic specs
 * (15 homogeneous + the Table 3 mixes) with manifest-declared external
 * traces behind a single name → TraceSource factory, replacing the old
 * free-function lookup surface (allWorkloads / findWorkload /
 * tryFindWorkload / buildWorkloadTrace).
 *
 * A manifest entry may reuse a synthetic name — the external trace
 * then *shadows* the generator for that name (inheriting its
 * homogeneous flag so grouping and output naming are unchanged). That
 * is what makes record-and-replay transparent: replaying a captured
 * "xalanc" produces sidecars named and grouped exactly like the live
 * synthetic run, so CI can diff them byte for byte.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "trace/manifest.h"
#include "trace/record.h"
#include "trace/source.h"

namespace mempod {

/** An 8-core multi-programmed synthetic workload. */
struct WorkloadSpec
{
    std::string name;
    bool homogeneous = false;
    std::vector<std::string> benchmarks; //!< exactly 8 entries
};

/** One named workload: a synthetic spec or an external trace. */
struct CatalogEntry
{
    enum class Kind { kSynthetic, kExternal };

    std::string name;
    Kind kind = Kind::kSynthetic;
    bool homogeneous = false;
    WorkloadSpec synthetic;    //!< valid when kind == kSynthetic
    ExternalTraceSpec external; //!< valid when kind == kExternal
};

/**
 * Shared immutable backing for one (workload, generator-params) pair —
 * what the TraceCache holds, one per key, handed to every job. For a
 * synthetic workload it is the trace generated once; for an external
 * trace it is the open-validated spec (jobs each open a cheap cursor;
 * the OS page cache shares the file data between them).
 */
class TraceStore
{
  public:
    /** New single-owner cursor over the shared backing. */
    std::unique_ptr<TraceSource> open() const;

    /** Records every cursor will yield. */
    std::uint64_t records() const { return records_; }

    bool external() const { return external_; }

    /** The materialized trace; synthetic stores only. */
    std::shared_ptr<const Trace> trace() const { return trace_; }

  private:
    friend class WorkloadCatalog;

    std::shared_ptr<const Trace> trace_; //!< synthetic backing
    ExternalTraceSpec spec_;             //!< external backing
    std::uint64_t maxRecords_ = 0;
    double timeScale_ = 1.0;
    std::uint64_t records_ = 0;
    bool external_ = false;
};

/** Name → workload registry; see file comment. */
class WorkloadCatalog
{
  public:
    /** A catalog seeded with the 27 synthetic paper workloads. */
    WorkloadCatalog();

    /** The process-wide catalog (harnesses load manifests into it). */
    static WorkloadCatalog &global();

    /**
     * Register every trace of a traces.json manifest; entries reusing
     * a synthetic name shadow the generator for that name.
     */
    void loadManifest(const std::string &path);

    /** Register one external trace (loadManifest's worker; tests). */
    void registerExternal(const ExternalTraceSpec &spec);

    /** Lookup by name; nullptr if unknown (recoverable callers). */
    const CatalogEntry *tryFind(const std::string &name) const;

    /** Lookup by name; fatal if unknown. */
    const CatalogEntry &find(const std::string &name) const;

    /** All names, synthetic suite order then manifest order. */
    std::vector<std::string> names() const;

    /** Names of the homogeneous subset. */
    std::vector<std::string> homogeneousNames() const;

    /** Names of the mixed subset (Table 3). */
    std::vector<std::string> mixedNames() const;

    /** The representative subset used by reduced-scale benches. */
    static std::vector<std::string> representativeNames();

    /**
     * Open a fresh streaming cursor for a workload. Synthetic entries
     * generate (materialize) their trace; external entries stream from
     * disk with gen.totalRequests as the record cap and gen.rateScale
     * folded into the manifest time_scale. gen.seed/footprintScale
     * apply to synthetic entries only.
     */
    std::unique_ptr<TraceSource> open(const std::string &name,
                                      const GeneratorConfig &gen) const;

    /** Materialize a workload's trace (offline analyses, tools). */
    Trace build(const std::string &name,
                const GeneratorConfig &gen) const;

    /** Shared backing for (name, gen) — the TraceCache's value. */
    std::shared_ptr<const TraceStore>
    makeStore(const std::string &name, const GeneratorConfig &gen) const;

  private:
    void insert(CatalogEntry entry);

    std::vector<CatalogEntry> entries_;
    std::map<std::string, std::size_t> byName_;
};

} // namespace mempod
