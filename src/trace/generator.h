/**
 * @file
 * The synthetic multi-programmed trace generator: one behaviour model
 * per core driven by its BenchmarkProfile, merged into a single
 * time-ordered stream. Fully deterministic given (profiles, config).
 *
 * Per-core model, per request:
 *  - with streamFraction: the next line from a monotonically advancing
 *    cursor sweeping the footprint (wrapping);
 *  - else with hotAccessProb: a Zipf-distributed page from the current
 *    hot window (which rotates every phasePeriod);
 *  - else: a uniform page from the whole footprint.
 * Inter-arrival gaps are exponential with the profile's rate.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "trace/profiles.h"
#include "trace/record.h"

namespace mempod {

/** Knobs shared by all cores of one generated trace. */
struct GeneratorConfig
{
    std::uint64_t totalRequests = 2'000'000; //!< across all cores
    std::uint64_t seed = 42;
    /** Shrink per-core footprints (unit tests on tiny geometries). */
    double footprintScale = 1.0;
    /** Scale request rates (load sensitivity studies). */
    double rateScale = 1.0;
};

/**
 * Generate a multi-programmed trace; one profile per core.
 * Records are sorted by time; core-local addresses start at 0 for
 * every core.
 */
Trace generateTrace(const std::vector<BenchmarkProfile> &core_profiles,
                    const GeneratorConfig &config);

} // namespace mempod
