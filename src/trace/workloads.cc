#include "trace/workloads.h"

#include "common/log.h"
#include "trace/profiles.h"

namespace mempod {

namespace {

WorkloadSpec
homogeneous(const std::string &bench)
{
    WorkloadSpec w;
    w.name = bench;
    w.homogeneous = true;
    w.benchmarks.assign(8, bench);
    return w;
}

WorkloadSpec
mix(const std::string &name, std::vector<std::string> benches)
{
    MEMPOD_ASSERT(benches.size() == 8, "mix '%s' must have 8 cores",
                  name.c_str());
    WorkloadSpec w;
    w.name = name;
    w.homogeneous = false;
    w.benchmarks = std::move(benches);
    return w;
}

std::vector<WorkloadSpec>
buildAll()
{
    std::vector<WorkloadSpec> all;
    // The paper's 15 homogeneous workloads.
    for (const char *b :
         {"astar", "bwaves", "bzip", "cactus", "gcc", "lbm", "leslie",
          "libquantum", "mcf", "milc", "omnetpp", "soplex", "sphinx",
          "xalanc", "zeusmp"})
        all.push_back(homogeneous(b));

    // Table 3 mixes, normalized to 8 cores (see header comment).
    all.push_back(mix("mix1", {"astar", "gcc", "gems", "lbm", "leslie",
                               "mcf", "milc", "omnetpp"}));
    all.push_back(mix("mix2", {"gcc", "gems", "leslie", "mcf", "omnetpp",
                               "sphinx", "zeusmp", "gcc"}));
    all.push_back(mix("mix3", {"gcc", "lbm", "leslie", "libquantum",
                               "mcf", "milc", "sphinx", "gcc"}));
    all.push_back(mix("mix4", {"bzip", "dealii", "dealii", "gcc", "mcf",
                               "mcf", "milc", "soplex"}));
    all.push_back(mix("mix5", {"bwaves", "bzip", "bzip", "cactus",
                               "dealii", "dealii", "mcf", "xalanc"}));
    all.push_back(mix("mix6", {"astar", "bwaves", "bzip", "gcc", "gcc",
                               "lbm", "libquantum", "mcf"}));
    all.push_back(mix("mix7", {"astar", "bwaves", "bwaves", "bzip",
                               "bzip", "dealii", "gems", "leslie"}));
    all.push_back(mix("mix8", {"astar", "astar", "bwaves", "bzip",
                               "cactus", "dealii", "omnetpp", "xalanc"}));
    all.push_back(mix("mix9", {"bwaves", "dealii", "gems", "leslie",
                               "sphinx", "bwaves", "dealii", "gems"}));
    all.push_back(mix("mix10", {"astar", "astar", "gcc", "gcc", "lbm",
                                "libquantum", "libquantum", "mcf"}));
    all.push_back(mix("mix11", {"bzip", "bzip", "gems", "leslie",
                                "leslie", "omnetpp", "sphinx", "bzip"}));
    all.push_back(mix("mix12", {"bwaves", "cactus", "cactus", "dealii",
                                "dealii", "xalanc", "bwaves", "cactus"}));

    for (const auto &w : all)
        for (const auto &b : w.benchmarks)
            MEMPOD_ASSERT(hasProfile(b),
                          "workload '%s' references unknown benchmark "
                          "'%s'",
                          w.name.c_str(), b.c_str());
    return all;
}

} // namespace

const std::vector<WorkloadSpec> &
allWorkloads()
{
    static const std::vector<WorkloadSpec> all = buildAll();
    return all;
}

std::vector<WorkloadSpec>
homogeneousWorkloads()
{
    std::vector<WorkloadSpec> out;
    for (const auto &w : allWorkloads())
        if (w.homogeneous)
            out.push_back(w);
    return out;
}

std::vector<WorkloadSpec>
mixedWorkloads()
{
    std::vector<WorkloadSpec> out;
    for (const auto &w : allWorkloads())
        if (!w.homogeneous)
            out.push_back(w);
    return out;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    if (const WorkloadSpec *w = tryFindWorkload(name))
        return *w;
    MEMPOD_FATAL("unknown workload '%s'", name.c_str());
}

const WorkloadSpec *
tryFindWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

Trace
buildWorkloadTrace(const WorkloadSpec &spec, const GeneratorConfig &config)
{
    std::vector<BenchmarkProfile> profiles;
    profiles.reserve(spec.benchmarks.size());
    for (const auto &b : spec.benchmarks)
        profiles.push_back(findProfile(b));
    // Decorrelate seeds across workloads deterministically.
    GeneratorConfig cfg = config;
    for (char ch : spec.name)
        cfg.seed = cfg.seed * 131 + static_cast<unsigned char>(ch);
    return generateTrace(profiles, cfg);
}

std::vector<std::string>
representativeWorkloads()
{
    // One of each behaviour family: skewed-stable, streaming-huge,
    // tiny-resident, pointer-chase, phase-changing, plus two mixes.
    return {"xalanc", "lbm", "libquantum", "mcf", "zeusmp", "mix5",
            "mix10"};
}

} // namespace mempod
