/**
 * @file
 * Trace records: the multi-programmed memory-request streams fed to
 * the timing simulator. Addresses are *core-local* (each core sees its
 * own zero-based footprint); the OS-allocation stand-in maps them onto
 * the physical space at simulation time, so the same trace drives
 * every memory geometry (TLM, HBM-only, DDR-only).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace mempod {

/** One LLC miss as captured by the (synthetic) CPU frontend. */
struct TraceRecord
{
    TimePs time = 0;      //!< arrival at the memory system
    Addr coreLocal = 0;   //!< core-local byte address
    std::uint8_t core = 0;
    AccessType type = AccessType::kRead;
};

using Trace = std::vector<TraceRecord>;

/**
 * Serialize a trace to the native on-disk format (versioned header;
 * see trace/native.h).
 */
void saveTrace(const Trace &trace, const std::string &path);

/**
 * Materialize a trace written by saveTrace. Fatal, with an actionable
 * message, on foreign/truncated/version- or endian-mismatched files.
 * Streaming replay should use NativeTraceSource directly.
 */
Trace loadTrace(const std::string &path);

/** Summary statistics of a trace (for tests and reports). */
struct TraceSummary
{
    std::uint64_t records = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    TimePs duration = 0;
    std::uint64_t touchedPages = 0; //!< distinct (core, page) pairs
    double requestsPerUs = 0.0;
};

TraceSummary summarize(const Trace &trace);

} // namespace mempod
