#include "trace/catalog.h"

#include <utility>

#include "common/log.h"
#include "trace/champsim.h"
#include "trace/native.h"
#include "trace/profiles.h"
#include "trace/sift.h"

namespace mempod {

namespace {

WorkloadSpec
homogeneous(const std::string &bench)
{
    WorkloadSpec w;
    w.name = bench;
    w.homogeneous = true;
    w.benchmarks.assign(8, bench);
    return w;
}

WorkloadSpec
mix(const std::string &name, std::vector<std::string> benches)
{
    MEMPOD_ASSERT(benches.size() == 8, "mix '%s' must have 8 cores",
                  name.c_str());
    WorkloadSpec w;
    w.name = name;
    w.homogeneous = false;
    w.benchmarks = std::move(benches);
    return w;
}

/**
 * The paper's workload suite: 15 homogeneous 8-core workloads and the
 * 12 mixed workloads of Table 3, normalized to exactly eight cores
 * (documented in DESIGN.md).
 */
std::vector<WorkloadSpec>
syntheticSuite()
{
    std::vector<WorkloadSpec> all;
    for (const char *b :
         {"astar", "bwaves", "bzip", "cactus", "gcc", "lbm", "leslie",
          "libquantum", "mcf", "milc", "omnetpp", "soplex", "sphinx",
          "xalanc", "zeusmp"})
        all.push_back(homogeneous(b));

    all.push_back(mix("mix1", {"astar", "gcc", "gems", "lbm", "leslie",
                               "mcf", "milc", "omnetpp"}));
    all.push_back(mix("mix2", {"gcc", "gems", "leslie", "mcf", "omnetpp",
                               "sphinx", "zeusmp", "gcc"}));
    all.push_back(mix("mix3", {"gcc", "lbm", "leslie", "libquantum",
                               "mcf", "milc", "sphinx", "gcc"}));
    all.push_back(mix("mix4", {"bzip", "dealii", "dealii", "gcc", "mcf",
                               "mcf", "milc", "soplex"}));
    all.push_back(mix("mix5", {"bwaves", "bzip", "bzip", "cactus",
                               "dealii", "dealii", "mcf", "xalanc"}));
    all.push_back(mix("mix6", {"astar", "bwaves", "bzip", "gcc", "gcc",
                               "lbm", "libquantum", "mcf"}));
    all.push_back(mix("mix7", {"astar", "bwaves", "bwaves", "bzip",
                               "bzip", "dealii", "gems", "leslie"}));
    all.push_back(mix("mix8", {"astar", "astar", "bwaves", "bzip",
                               "cactus", "dealii", "omnetpp", "xalanc"}));
    all.push_back(mix("mix9", {"bwaves", "dealii", "gems", "leslie",
                               "sphinx", "bwaves", "dealii", "gems"}));
    all.push_back(mix("mix10", {"astar", "astar", "gcc", "gcc", "lbm",
                                "libquantum", "libquantum", "mcf"}));
    all.push_back(mix("mix11", {"bzip", "bzip", "gems", "leslie",
                                "leslie", "omnetpp", "sphinx", "bzip"}));
    all.push_back(mix("mix12", {"bwaves", "cactus", "cactus", "dealii",
                                "dealii", "xalanc", "bwaves", "cactus"}));

    for (const auto &w : all)
        for (const auto &b : w.benchmarks)
            MEMPOD_ASSERT(hasProfile(b),
                          "workload '%s' references unknown benchmark "
                          "'%s'",
                          w.name.c_str(), b.c_str());
    return all;
}

Trace
generateSynthetic(const WorkloadSpec &spec, const GeneratorConfig &gen)
{
    std::vector<BenchmarkProfile> profiles;
    profiles.reserve(spec.benchmarks.size());
    for (const auto &b : spec.benchmarks)
        profiles.push_back(findProfile(b));
    // Decorrelate seeds across workloads deterministically.
    GeneratorConfig cfg = gen;
    for (char ch : spec.name)
        cfg.seed = cfg.seed * 131 + static_cast<unsigned char>(ch);
    return generateTrace(profiles, cfg);
}

/** Open the raw (unscaled, uncapped-scale) external stream. */
std::unique_ptr<TraceSource>
openExternal(const ExternalTraceSpec &spec, std::uint64_t max_records)
{
    if (spec.format == "native") {
        return std::make_unique<NativeTraceSource>(spec.files[0].path,
                                                   max_records);
    }
    if (spec.format == "champsim") {
        std::vector<ChampSimFileSpec> files;
        for (const auto &f : spec.files)
            files.push_back({f.path, f.core});
        return std::make_unique<ChampSimTraceSource>(
            std::move(files),
            spec.timing == "ip" ? ChampSimTiming::kIp
                                : ChampSimTiming::kPeriod,
            spec.periodPs, spec.addrBias, max_records);
    }
    if (spec.format == "sift") {
        std::vector<SiftFileSpec> files;
        for (const auto &f : spec.files)
            files.push_back({f.path, f.core});
        return std::make_unique<SiftTraceSource>(
            std::move(files), spec.periodPs, max_records);
    }
    MEMPOD_PANIC("unreachable trace format '%s'", spec.format.c_str());
}

std::unique_ptr<TraceSource>
openExternalScaled(const ExternalTraceSpec &spec,
                   const GeneratorConfig &gen)
{
    std::unique_ptr<TraceSource> src =
        openExternal(spec, gen.totalRequests);
    const double scale = spec.timeScale / gen.rateScale;
    if (scale != 1.0) {
        src = std::make_unique<ScaledTraceSource>(std::move(src),
                                                  scale);
    }
    return src;
}

} // namespace

std::unique_ptr<TraceSource>
TraceStore::open() const
{
    if (!external_)
        return std::make_unique<VectorTraceSource>(trace_);
    std::unique_ptr<TraceSource> src =
        openExternal(spec_, maxRecords_);
    if (timeScale_ != 1.0) {
        src = std::make_unique<ScaledTraceSource>(std::move(src),
                                                  timeScale_);
    }
    return src;
}

WorkloadCatalog::WorkloadCatalog()
{
    for (auto &spec : syntheticSuite()) {
        CatalogEntry e;
        e.name = spec.name;
        e.kind = CatalogEntry::Kind::kSynthetic;
        e.homogeneous = spec.homogeneous;
        e.synthetic = std::move(spec);
        insert(std::move(e));
    }
}

WorkloadCatalog &
WorkloadCatalog::global()
{
    static WorkloadCatalog catalog;
    return catalog;
}

void
WorkloadCatalog::loadManifest(const std::string &path)
{
    for (const auto &spec : loadTraceManifest(path))
        registerExternal(spec);
}

void
WorkloadCatalog::registerExternal(const ExternalTraceSpec &spec)
{
    CatalogEntry e;
    e.name = spec.name;
    e.kind = CatalogEntry::Kind::kExternal;
    e.external = spec;
    if (const CatalogEntry *prior = tryFind(spec.name)) {
        // Shadowing a synthetic spec keeps its grouping flag so replay
        // output is named and grouped exactly like the live run.
        e.homogeneous = prior->homogeneous;
    }
    insert(std::move(e));
}

void
WorkloadCatalog::insert(CatalogEntry entry)
{
    auto it = byName_.find(entry.name);
    if (it != byName_.end()) {
        entries_[it->second] = std::move(entry);
        return;
    }
    byName_[entry.name] = entries_.size();
    entries_.push_back(std::move(entry));
}

const CatalogEntry *
WorkloadCatalog::tryFind(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : &entries_[it->second];
}

const CatalogEntry &
WorkloadCatalog::find(const std::string &name) const
{
    if (const CatalogEntry *e = tryFind(name))
        return *e;
    MEMPOD_FATAL("unknown workload '%s' (not a synthetic spec and not "
                 "in any loaded trace manifest)",
                 name.c_str());
}

std::vector<std::string>
WorkloadCatalog::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.name);
    return out;
}

std::vector<std::string>
WorkloadCatalog::homogeneousNames() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_)
        if (e.homogeneous)
            out.push_back(e.name);
    return out;
}

std::vector<std::string>
WorkloadCatalog::mixedNames() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_)
        if (!e.homogeneous)
            out.push_back(e.name);
    return out;
}

std::vector<std::string>
WorkloadCatalog::representativeNames()
{
    // One of each behaviour family: skewed-stable, streaming-huge,
    // tiny-resident, pointer-chase, phase-changing, plus two mixes.
    return {"xalanc", "lbm", "libquantum", "mcf", "zeusmp", "mix5",
            "mix10"};
}

std::unique_ptr<TraceSource>
WorkloadCatalog::open(const std::string &name,
                      const GeneratorConfig &gen) const
{
    const CatalogEntry &e = find(name);
    if (e.kind == CatalogEntry::Kind::kExternal)
        return openExternalScaled(e.external, gen);
    auto trace = std::make_shared<Trace>(
        generateSynthetic(e.synthetic, gen));
    return std::make_unique<VectorTraceSource>(
        std::shared_ptr<const Trace>(std::move(trace)));
}

Trace
WorkloadCatalog::build(const std::string &name,
                       const GeneratorConfig &gen) const
{
    const CatalogEntry &e = find(name);
    if (e.kind == CatalogEntry::Kind::kSynthetic)
        return generateSynthetic(e.synthetic, gen);
    std::unique_ptr<TraceSource> src = openExternalScaled(e.external,
                                                          gen);
    return materialize(*src);
}

std::shared_ptr<const TraceStore>
WorkloadCatalog::makeStore(const std::string &name,
                           const GeneratorConfig &gen) const
{
    const CatalogEntry &e = find(name);
    auto store = std::make_shared<TraceStore>();
    if (e.kind == CatalogEntry::Kind::kSynthetic) {
        store->trace_ = std::make_shared<const Trace>(
            generateSynthetic(e.synthetic, gen));
        store->records_ = store->trace_->size();
        store->external_ = false;
        return store;
    }
    store->external_ = true;
    store->spec_ = e.external;
    store->maxRecords_ = gen.totalRequests;
    store->timeScale_ = e.external.timeScale / gen.rateScale;
    // Open once now: validates headers/counts up front so a bad
    // manifest fails at batch start, not inside worker threads.
    std::unique_ptr<TraceSource> probe = store->open();
    store->records_ = probe->size();
    return store;
}

} // namespace mempod
