/**
 * @file
 * SIFT-format trace backend (the Sniper frontend's trace format). We
 * read the uncompressed memory-access subset of SIFT: a header
 * { u32 magic "SIFT", u32 headerSize, u64 options } followed by
 * kind-tagged records. Compressed streams (any non-zero options word)
 * are rejected with an actionable error — decompress with the Sniper
 * tooling first.
 *
 * Record subset (1-byte kind tag):
 *   0x00 End        — end of stream
 *   0x01 MemAccess  — { u64 icount, u64 vaddr, u8 isWrite }
 *
 * SIFT carries an instruction count per access, not wall time; the
 * manifest's period_ps converts it (time = icount × periodPs). Like
 * ChampSim, one file per core, merged on (time, core, file order).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/mapped_file.h"
#include "trace/source.h"

namespace mempod {

namespace sift {
constexpr std::uint32_t kMagic = 0x54464953u; // "SIFT" little-endian
constexpr std::uint64_t kHeaderBytes = 16;
constexpr std::uint8_t kRecordEnd = 0x00;
constexpr std::uint8_t kRecordMemAccess = 0x01;
constexpr std::uint64_t kMemAccessBytes = 18; //!< kind + payload
} // namespace sift

/** One per-core SIFT file. */
struct SiftFileSpec
{
    std::string path;
    std::uint8_t core = 0;
};

/**
 * Streaming reader over per-core SIFT files: header-validated at open,
 * decoded through bounded mmap windows, k-way-merged on
 * (time, core, file order). Pre-scans once to learn the record count.
 */
class SiftTraceSource final : public TraceSource
{
  public:
    SiftTraceSource(
        std::vector<SiftFileSpec> files, TimePs period_ps,
        std::uint64_t max_records = 0,
        std::uint64_t window_bytes = MappedFile::kDefaultWindowBytes);

    bool next(TraceRecord &out) override;
    void reset() override;
    std::uint64_t size() const override { return limit_; }
    std::uint64_t maxResidentBytes() const override;

  private:
    struct PerFile
    {
        std::unique_ptr<MappedFile> file;
        std::uint8_t core = 0;
        std::uint64_t offset = 0; //!< next record's byte offset
        bool headValid = false;
        TraceRecord head;
    };

    void advance(PerFile &pf);

    std::vector<PerFile> files_;
    TimePs periodPs_;
    std::uint64_t limit_ = 0;
    std::uint64_t emitted_ = 0;
};

/** What convertToSift wrote (feed straight into a manifest). */
struct SiftConvertResult
{
    std::vector<SiftFileSpec> files;
    std::uint64_t records = 0;
};

/**
 * Split a time-ordered stream into per-core SIFT files named
 * `<stem>.core<k>.sift`, one MemAccess per record with
 * icount = time / period_ps. Lossless when period_ps is 1 (or divides
 * every timestamp); otherwise timing quantizes to the period grid.
 */
SiftConvertResult convertToSift(TraceSource &source,
                                const std::string &stem,
                                TimePs period_ps);

} // namespace mempod
