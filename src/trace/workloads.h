/**
 * @file
 * The paper's workload suite: 15 homogeneous 8-core workloads (eight
 * copies of one benchmark, referred to by the benchmark's name) and
 * the 12 mixed workloads of Table 3. The published table marks more
 * than eight benchmarks for some mixes (an artifact of its rendering);
 * we normalize every mix to exactly eight cores by taking the marked
 * benchmarks in row order, duplicating double-checked entries, and
 * cycling from the top when fewer than eight remain (documented in
 * DESIGN.md).
 */
#pragma once

#include <string>
#include <vector>

#include "trace/generator.h"
#include "trace/record.h"

namespace mempod {

/** An 8-core multi-programmed workload. */
struct WorkloadSpec
{
    std::string name;
    bool homogeneous = false;
    std::vector<std::string> benchmarks; //!< exactly 8 entries
};

/** All 27 workloads: 15 homogeneous then mix1..mix12. */
const std::vector<WorkloadSpec> &allWorkloads();

/** The homogeneous subset. */
std::vector<WorkloadSpec> homogeneousWorkloads();

/** The mixed subset (Table 3). */
std::vector<WorkloadSpec> mixedWorkloads();

/** Lookup by name; fatal if unknown. */
const WorkloadSpec &findWorkload(const std::string &name);

/** Lookup by name; nullptr if unknown (for recoverable callers). */
const WorkloadSpec *tryFindWorkload(const std::string &name);

/** Generate the trace for a workload. */
Trace buildWorkloadTrace(const WorkloadSpec &spec,
                         const GeneratorConfig &config);

/** A small representative subset used by reduced-scale benches. */
std::vector<std::string> representativeWorkloads();

} // namespace mempod
