/**
 * @file
 * The trace corpus manifest (`traces.json`): declares external
 * captured traces as named workloads so BatchRunner and every harness
 * fan out over them exactly like the synthetic suite. Schema:
 *
 *   {
 *     "version": 1,
 *     "traces": [
 *       {
 *         "name": "xalanc",             // workload name (may shadow
 *                                       // a synthetic spec)
 *         "format": "native",           // native | champsim | sift
 *         "file": "captures/x.trc",     // native: single file
 *         "files": [                    // champsim/sift: per-core
 *           {"path": "x.core0.champsim", "core": 0}, ...
 *         ],
 *         "timing": "ip",               // champsim: period | ip
 *         "period_ps": 1000,            // champsim(period) & sift
 *         "addr_bias": 64,              // champsim address bias
 *         "time_scale": 1.0             // optional timestamp scaling
 *       }
 *     ]
 *   }
 *
 * Relative paths resolve against the manifest's own directory, so a
 * corpus directory is relocatable as a unit. Unknown keys are fatal —
 * a typo'd knob must not silently fall back to a default.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace mempod {

/** One per-core file of an external trace. */
struct ManifestFile
{
    std::string path;
    std::uint8_t core = 0;
};

/** One manifest-declared external trace. */
struct ExternalTraceSpec
{
    std::string name;
    std::string format;           //!< "native" | "champsim" | "sift"
    std::vector<ManifestFile> files;
    std::string timing = "period"; //!< champsim: "period" | "ip"
    TimePs periodPs = 1000;
    std::uint64_t addrBias = 0;
    double timeScale = 1.0;
};

/**
 * Parse a traces.json manifest; fatal with the offending key/line on
 * malformed input. Relative file paths are resolved against the
 * manifest's directory.
 */
std::vector<ExternalTraceSpec> loadTraceManifest(
    const std::string &path);

} // namespace mempod
