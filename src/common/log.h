/**
 * @file
 * Error-handling and status-message helpers following the gem5 idiom:
 * panic() for internal invariant violations (simulator bugs) and
 * fatal() for user-caused configuration errors; warn()/inform() for
 * non-terminating diagnostics.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mempod {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort on a condition that indicates a simulator bug. */
#define MEMPOD_PANIC(...)                                                     \
    ::mempod::detail::panicImpl(__FILE__, __LINE__,                           \
                                ::mempod::detail::format(__VA_ARGS__))

/** Exit on a condition that indicates a user/configuration error. */
#define MEMPOD_FATAL(...)                                                     \
    ::mempod::detail::fatalImpl(__FILE__, __LINE__,                           \
                                ::mempod::detail::format(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define MEMPOD_ASSERT(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::mempod::detail::panicImpl(                                      \
                __FILE__, __LINE__,                                           \
                std::string("assertion failed: " #cond " — ") +               \
                    ::mempod::detail::format(__VA_ARGS__));                   \
        }                                                                     \
    } while (0)

#define MEMPOD_WARN(...)                                                      \
    ::mempod::detail::warnImpl(::mempod::detail::format(__VA_ARGS__))

#define MEMPOD_INFORM(...)                                                    \
    ::mempod::detail::informImpl(::mempod::detail::format(__VA_ARGS__))

/** Globally silence warn/inform (benchmark harnesses use this). */
void setQuietLogging(bool quiet);
bool quietLogging();

} // namespace mempod
