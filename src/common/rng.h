/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A self-contained xoshiro256** implementation keeps the trace
 * generator reproducible across standard libraries (std::mt19937 is
 * portable but the std distributions are not); all distributions used
 * by the generator live here.
 */
#pragma once

#include <cstdint>

namespace mempod {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds diverge immediately. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's reduction. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p. */
    bool nextBool(double p);

    /**
     * Approximate Zipf sample over [0, n) with exponent s, using the
     * inverse-CDF of the continuous bounded Pareto approximation.
     * Rank 0 is the most popular element.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Geometric run length with mean `mean` (>= 1). */
    std::uint64_t nextGeometric(double mean);

  private:
    std::uint64_t s_[4];
};

} // namespace mempod
