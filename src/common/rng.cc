#include "common/rng.h"

#include <cmath>

#include "common/log.h"

namespace mempod {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    MEMPOD_ASSERT(bound > 0, "nextBelow(0)");
    // Lemire's multiply-shift; bias is negligible for simulation use
    // and the retry loop removes it entirely.
    const std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    MEMPOD_ASSERT(lo <= hi, "bad range [%llu, %llu]",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    MEMPOD_ASSERT(n > 0, "nextZipf over empty domain");
    if (n == 1)
        return 0;
    if (s <= 0.0)
        return nextBelow(n);
    const double u = nextDouble();
    double rank;
    if (std::fabs(s - 1.0) < 1e-9) {
        // CDF of 1/x on [1, n+1): inverse is exp(u * ln(n+1)).
        rank = std::exp(u * std::log(static_cast<double>(n) + 1.0));
    } else {
        const double one_minus_s = 1.0 - s;
        const double hi = std::pow(static_cast<double>(n) + 1.0, one_minus_s);
        rank = std::pow(1.0 + u * (hi - 1.0), 1.0 / one_minus_s);
    }
    auto idx = static_cast<std::uint64_t>(rank) - 1;
    return idx >= n ? n - 1 : idx;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    const double p = 1.0 / mean;
    const double u = nextDouble();
    const double len = std::log1p(-u) / std::log1p(-p);
    auto v = static_cast<std::uint64_t>(len) + 1;
    return v == 0 ? 1 : v;
}

} // namespace mempod
