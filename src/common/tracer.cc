#include "common/tracer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mempod {

namespace {

/** splitmix64: cheap, well-mixed 64-bit hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

/** Render a ps timestamp as a decimal microsecond value. */
void
appendTsUs(std::string &out, TimePs ps)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                  ps / 1'000'000, ps % 1'000'000);
    out += buf;
}

} // namespace

TraceArgs &
TraceArgs::add(const char *key, std::uint64_t v)
{
    if (!body_.empty())
        body_ += ',';
    body_ += '"';
    body_ += key;
    body_ += "\":";
    appendU64(body_, v);
    return *this;
}

TraceArgs &
TraceArgs::add(const char *key, const char *v)
{
    if (!body_.empty())
        body_ += ',';
    body_ += '"';
    body_ += key;
    body_ += "\":\"";
    body_ += v; // callers pass identifier-like strings; no escaping
    body_ += '"';
    return *this;
}

Tracer::Tracer(const TracerConfig &cfg, bool staging)
    : cfg_(cfg), staging_(staging)
{
    if (cfg_.sampleEvery == 0)
        cfg_.sampleEvery = 1;
    events_.reserve(4096);
}

std::uint32_t
Tracer::track(const std::string &name)
{
    auto it = tracks_.find(name);
    if (it != tracks_.end())
        return it->second;
    const auto tid = static_cast<std::uint32_t>(trackNames_.size());
    tracks_.emplace(name, tid);
    trackNames_.push_back(name);
    return tid;
}

bool
Tracer::sampleDemand(std::uint64_t record_idx) const
{
    if (cfg_.sampleEvery <= 1)
        return true;
    return mix64(cfg_.seed ^ mix64(record_idx)) % cfg_.sampleEvery == 0;
}

void
Tracer::durBegin(std::uint32_t tid, TimePs ts, const char *name,
                 std::string args)
{
    events_.push_back(
        {ts, 'B', tid, 0, name, nullptr, std::move(args), curKey_});
}

void
Tracer::durEnd(std::uint32_t tid, TimePs ts)
{
    events_.push_back({ts, 'E', tid, 0, "", nullptr, {}, curKey_});
}

void
Tracer::instant(std::uint32_t tid, TimePs ts, const char *name,
                std::string args)
{
    events_.push_back(
        {ts, 'i', tid, 0, name, nullptr, std::move(args), curKey_});
}

void
Tracer::asyncBegin(std::uint32_t tid, TimePs ts, const char *cat,
                   std::uint64_t id, const char *name, std::string args)
{
    events_.push_back(
        {ts, 'b', tid, id, name, cat, std::move(args), curKey_});
}

void
Tracer::asyncEnd(std::uint32_t tid, TimePs ts, const char *cat,
                 std::uint64_t id, const char *name, std::string args)
{
    events_.push_back(
        {ts, 'e', tid, id, name, cat, std::move(args), curKey_});
}

void
Tracer::flowStart(std::uint32_t tid, TimePs ts, const char *cat,
                  std::uint64_t id, const char *name)
{
    events_.push_back({ts, 's', tid, id, name, cat, {}, curKey_});
}

void
Tracer::flowStep(std::uint32_t tid, TimePs ts, const char *cat,
                 std::uint64_t id, const char *name)
{
    events_.push_back({ts, 't', tid, id, name, cat, {}, curKey_});
}

void
Tracer::flowEnd(std::uint32_t tid, TimePs ts, const char *cat,
                std::uint64_t id, const char *name)
{
    events_.push_back({ts, 'f', tid, id, name, cat, {}, curKey_});
}

void
Tracer::absorb(const std::vector<Tracer *> &staged)
{
    // Global order: (event key, buffer, intra-buffer index). Keys are
    // unique per event and every event runs in exactly one domain, so
    // records with equal keys always come from one buffer and the
    // (buffer, index) tail only serializes same-event records — in
    // their emission order, exactly as the serial run appended them.
    struct Ref
    {
        std::uint32_t buf;
        std::uint32_t idx;
    };
    std::vector<Ref> order;
    std::size_t total = 0;
    for (const Tracer *t : staged)
        total += t->events_.size();
    order.reserve(total);
    for (std::uint32_t b = 0; b < staged.size(); ++b)
        for (std::uint32_t i = 0; i < staged[b]->events_.size(); ++i)
            order.push_back({b, i});
    std::sort(order.begin(), order.end(),
              [&](const Ref &a, const Ref &b) {
                  const Event &ea = staged[a.buf]->events_[a.idx];
                  const Event &eb = staged[b.buf]->events_[b.idx];
                  if (!(ea.key == eb.key))
                      return ea.key < eb.key;
                  if (a.buf != b.buf)
                      return a.buf < b.buf;
                  return a.idx < b.idx;
              });
    events_.reserve(events_.size() + total);
    for (const Ref &r : order) {
        Tracer *src = staged[r.buf];
        Event ev = std::move(src->events_[r.idx]);
        // Re-intern the track on first touch: absorb order is the
        // serial emission order, so master track ids (and thread_name
        // metadata order) match the serial run.
        ev.tid = track(src->trackNames_[ev.tid]);
        events_.push_back(std::move(ev));
    }
    for (Tracer *t : staged)
        t->events_.clear();
}

std::string
Tracer::toJson() const
{
    std::string out;
    out.reserve(128 + events_.size() * 96);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

    bool first = true;
    auto sep = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };

    // Process/track names first: Perfetto applies metadata regardless
    // of position, but leading metadata keeps the file human-scannable.
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
           "\"args\":{\"name\":\"mempod-sim\"}}";
    for (std::size_t t = 0; t < trackNames_.size(); ++t) {
        sep();
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
        appendU64(out, t);
        out += ",\"args\":{\"name\":\"";
        out += trackNames_[t];
        out += "\"}}";
    }

    for (const Event &e : events_) {
        sep();
        out += "{\"name\":\"";
        out += e.name;
        out += "\",\"ph\":\"";
        out += e.ph;
        out += "\",\"ts\":";
        appendTsUs(out, e.ts);
        out += ",\"pid\":0,\"tid\":";
        appendU64(out, e.tid);
        if (e.cat != nullptr) {
            out += ",\"cat\":\"";
            out += e.cat;
            out += "\",\"id\":\"";
            appendU64(out, e.id);
            out += '"';
        }
        // Flow "s"/"t"/"f" events require a binding point; "e" enclosing
        // slice binding is the default for flow ends.
        if (e.ph == 's' || e.ph == 't' || e.ph == 'f')
            out += ",\"bp\":\"e\"";
        out += ",\"args\":";
        out += e.args.empty() ? "{}" : e.args;
        out += '}';
    }

    out += "\n]}\n";
    return out;
}

} // namespace mempod
