/**
 * @file
 * Discrete-event scheduler driving the whole simulation.
 *
 * Every active component (channel controllers, interval timers, the
 * trace frontend, migration engines) schedules callbacks on a single
 * global queue; components that are idle schedule nothing, so
 * simulated idle time costs no host time.
 *
 * For sharded runs (sim.shards > 0) the same class doubles as a
 * per-domain queue: each DRAM channel owns one EventQueue and the
 * coordinator (frontend + managers) owns another, and the conservative
 * PDES executor in sim/parallel.{h,cc} stitches them together. The
 * canonical event order below is what makes the sharded run
 * byte-identical to the serial one.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/callback.h"
#include "common/types.h"

namespace mempod {

class Tracer;

/** Execution domain: 0 is the coordinator, 1+i is DRAM channel i. */
using DomainId = std::uint32_t;

/**
 * Canonical total order over events, shared by the serial kernel and
 * the sharded executor:
 *
 *   (when, schedTime, schedDomain, schedCounter)
 *
 * `when` is the event's due time; `schedTime` is the simulated time of
 * the schedule() call; `schedDomain` is the domain whose code made the
 * call and `schedCounter` is that domain's monotone call counter. The
 * last two are packed into `ord` (domain in the high bits), so the
 * comparison is (when, schedTime, ord). The key is a deterministic
 * function of the simulated history alone — it does not depend on how
 * domains are partitioned across threads — which is what lets any
 * shard count reproduce the serial event order exactly. Including
 * schedTime makes the order coincide with the legacy global-sequence
 * FIFO tie-break whenever the scheduling calls happened at different
 * instants, i.e. almost always.
 */
struct EventKey
{
    TimePs when = 0;
    TimePs schedTime = 0;
    std::uint64_t ord = 0; //!< schedDomain << kCounterBits | counter

    friend bool
    operator<(const EventKey &a, const EventKey &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.schedTime != b.schedTime)
            return a.schedTime < b.schedTime;
        return a.ord < b.ord;
    }
    friend bool
    operator==(const EventKey &a, const EventKey &b)
    {
        return a.when == b.when && a.schedTime == b.schedTime &&
               a.ord == b.ord;
    }
};

/**
 * Hierarchical timing-wheel discrete-event queue.
 *
 * Events are bucketed by arrival tick (kTickPs = 256 ps, finer than
 * any DRAM clock in the model) into kWheels wheels of kSlots slots
 * each. Wheel 0 resolves single ticks (~65 ns horizon); each higher
 * wheel covers a kSlots-times larger region and cascades whole slots
 * down as the cursor reaches them; deltas beyond the outermost wheel
 * (~1.1 s — interval timers, HMA epochs) wait in a small overflow
 * ladder. Scheduling and dispatch are O(1) amortized versus the
 * O(log n) sift of the binary heap this replaces, and slot storage is
 * recycled through a free list, so steady-state scheduling performs
 * no allocation.
 *
 * Ordering guarantee: events execute in ascending EventKey order (see
 * above). For a single scheduling domain this is exactly the legacy
 * (when, global seq) order; across domains the key is partition-
 * independent, so the sharded executor reproduces it bit for bit.
 */
class EventQueue
{
  public:
    /**
     * Move-only with a buffer sized for the largest hot-path capture
     * (a channel completion: this + slab slot + timestamp = 24 bytes);
     * anything bigger falls back to the heap. Kept tight on purpose:
     * slot drains and cascades move whole Events, so with the three
     * 8-byte key fields the Event is exactly one cache line.
     */
    using Callback = MoveFunction<void(), 24>;

    /** Wheel geometry. One tick = 256 ps. */
    static constexpr unsigned kTickShift = 8;
    static constexpr TimePs kTickPs = TimePs{1} << kTickShift;
    static constexpr unsigned kSlotBits = 8;
    static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
    static constexpr unsigned kWheels = 4;
    /** Deltas at/beyond roughly this defer to the overflow ladder. */
    static constexpr TimePs kWheelSpanPs =
        TimePs{1} << (kTickShift + kWheels * kSlotBits);

    /** Key packing: 40-bit per-domain counter, 12-bit domain ids. */
    static constexpr unsigned kCounterBits = 40;
    static constexpr unsigned kDomainBits = 12;
    static constexpr std::uint64_t kOrderMask =
        (std::uint64_t{1} << (kCounterBits + kDomainBits)) - 1;
    static constexpr DomainId kCoordinatorDomain = 0;

    EventQueue() = default;
    ~EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (time of the event being executed). */
    TimePs now() const { return now_; }

    /**
     * Schedule `cb` at absolute time `when` in this queue's home
     * domain. Scheduling in the past is a simulator bug (panics).
     * Events at the same timestamp run in canonical key order, which
     * for one domain is stable FIFO scheduling order.
     */
    void
    schedule(TimePs when, Callback cb)
    {
        scheduleIn(homeDomain_, when, std::move(cb));
    }

    /** Schedule `cb` `delta` picoseconds from now. */
    void scheduleAfter(TimePs delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /**
     * Schedule `cb` to execute in domain `target`. On the serial
     * single-queue kernel every domain is local; on a sharded
     * per-domain queue a non-home target (only the coordinator is
     * legal) is staged in the cross-domain outbox for the executor to
     * merge at the next horizon barrier.
     */
    void scheduleIn(DomainId target, TimePs when, Callback cb);

    /** Whether any events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Time of the earliest pending event, or kTimeNever. */
    TimePs nextTime() const;

    /** Execute the earliest event. Returns false if the queue is empty. */
    bool runOne();

    /** Run until the queue is empty or `limit` events have executed. */
    std::uint64_t runAll(std::uint64_t limit = ~std::uint64_t{0});

    /** Run all events with time <= `until`. */
    void runUntil(TimePs until);

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Slots cascaded down the hierarchy (introspection/benchmarks). */
    std::uint64_t cascades() const { return cascades_; }

    /** Events that entered the far-future overflow ladder. */
    std::uint64_t ladderDeferred() const { return ladderDeferred_; }

    /**
     * Wheel-mechanics counters for the host profiler. Like cascades()
     * these are unconditional and *deterministic* — pure functions of
     * the simulated schedule, never of wall time — so tests pin them
     * for known schedules and enabling perf cannot change them.
     */
    struct HostStats
    {
        /** place() landings per wheel level (incl. cascade re-places). */
        std::uint64_t placedAtLevel[kWheels] = {};
        /** Events spilled to the sorted front list (cursor overshoot). */
        std::uint64_t frontSpills = 0;
        /** Events spliced into the slot currently being drained. */
        std::uint64_t drainInserts = 0;
        /** Slot vectors newly heap-allocated vs recycled from the pool. */
        std::uint64_t listAllocs = 0;
        std::uint64_t listReuses = 0;
        /** High-water mark of pending events. */
        std::uint64_t peakPending = 0;
    };

    const HostStats &hostStats() const { return host_; }

    /**
     * The simulation-wide event tracer, or nullptr when tracing is
     * off. Components reach it through the queue they already hold, so
     * the disabled hot-path cost is this one pointer test.
     */
    Tracer *tracer() const { return tracer_; }
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    // ------------------------------------------------------------------
    // Sharded-executor surface (sim/parallel.{h,cc}). The serial
    // simulation never calls anything below; the methods exist so the
    // executor can reproduce the canonical order across queues.
    // ------------------------------------------------------------------

    /**
     * The domain this queue's events belong to by default. The serial
     * kernel keeps the default 0 and hosts every domain; a sharded
     * per-channel queue is set to its channel's domain.
     */
    void
    setHomeDomain(DomainId d)
    {
        homeDomain_ = d;
        ctxDomain_ = d;
    }
    DomainId homeDomain() const { return homeDomain_; }

    /** Cross-domain event staged by scheduleIn on a sharded queue. */
    struct CrossEvent
    {
        DomainId target;
        EventKey key; //!< key.when is the event's due time
        Callback cb;
    };

    /**
     * When enabled, scheduleIn to a non-home domain appends to the
     * outbox instead of placing locally. Only per-domain queues under
     * the executor enable this.
     */
    void routeCrossDomain(bool on) { routeCross_ = on; }
    std::vector<CrossEvent> &outbox() { return outbox_; }

    /**
     * Insert an event carried over from another queue's outbox,
     * preserving the key it was assigned at its original schedule
     * call. The canonical comparator makes insertion order irrelevant.
     */
    void admitForeign(DomainId exec, EventKey key, Callback cb);

    /**
     * Consume the next scheduling key for the current context without
     * scheduling anything. The executor reserves the key a deferred
     * cross-domain enqueue *would* have consumed, so per-domain
     * counters stay order-isomorphic with the serial run (gaps from
     * reservations that end up unused are harmless: only the relative
     * order of assigned keys matters).
     */
    EventKey reserveKey();

    /** Key of the event currently executing (valid inside runOne). */
    const EventKey &currentKey() const { return currentKey_; }

    /**
     * Bracket a deferred cross-domain hand-off (an inbox delivery):
     * advances now_ to key.when and primes `key` as the override for
     * the hand-off's first schedule call, so that call lands on the
     * exact key the serial run assigned it. Not an executed event.
     */
    void beginApply(TimePs when, EventKey key);
    void endApply();

    /**
     * Canonical key of the earliest pending event. Returns false when
     * empty. Like nextTime(), may cascade slots (logically const).
     */
    bool peekNextKey(EventKey &out);

  private:
    struct Event
    {
        TimePs when;
        TimePs schedTime; //!< simulated time of the schedule call
        /** execDomain << 52 | schedDomain << 40 | counter. */
        std::uint64_t ord;
        Callback cb;
    };
    using EventList = std::vector<Event>;

    struct Wheel
    {
        EventList *slots[kSlots] = {};
        /** One bit per slot; scanned circularly from the cursor. */
        std::uint64_t occupied[kSlots / 64] = {};
    };

    static bool
    earlier(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.schedTime != b.schedTime)
            return a.schedTime < b.schedTime;
        return (a.ord & kOrderMask) < (b.ord & kOrderMask);
    }

    static std::uint64_t
    packOrd(DomainId exec, std::uint64_t masked_ord)
    {
        return (static_cast<std::uint64_t>(exec)
                << (kCounterBits + kDomainBits)) |
               masked_ord;
    }

    /** Next (schedDomain, counter) word for the executing context. */
    std::uint64_t nextOrd();
    void dispatch(Event &ev);

    EventList *acquireList();
    void releaseList(EventList *list);
    void appendToSlot(unsigned level, std::size_t idx, Event ev);
    void place(Event ev);
    void fixupStranded();
    bool findNextSlot(std::uint64_t &out_tick);
    void claimSlot(std::uint64_t tick);
    bool popNext(Event &out);
    TimePs peekNextTime();

    Wheel wheels_[kWheels];
    /** Owns every slot vector ever created; capacity is recycled. */
    std::vector<std::unique_ptr<EventList>> pool_;
    std::vector<EventList *> freeLists_;
    EventList ladder_; //!< min-heap by canonical key, beyond the wheels
    EventList front_;  //!< sorted; peek-cascade overshoot spill
    EventList *drain_ = nullptr; //!< slot currently being executed
    std::size_t drainPos_ = 0;
    std::uint64_t drainTick_ = 0;
    std::uint64_t cursorTick_ = 0;

    Tracer *tracer_ = nullptr;
    TimePs now_ = 0;
    /** Per-domain schedule-call counters, indexed by DomainId. */
    std::vector<std::uint64_t> counters_;
    DomainId homeDomain_ = kCoordinatorDomain;
    DomainId ctxDomain_ = kCoordinatorDomain;
    EventKey currentKey_{};
    EventKey overrideKey_{};
    bool haveOverride_ = false;
    bool routeCross_ = false;
    std::vector<CrossEvent> outbox_;
    std::uint64_t executed_ = 0;
    std::size_t size_ = 0;
    std::uint64_t cascades_ = 0;
    std::uint64_t ladderDeferred_ = 0;
    HostStats host_;
};

/**
 * Fixed-period repeating timer for interval mechanisms (MemPod/HMA
 * epochs, the stats sampler). Fires `fn` every `period` after
 * start(), re-arming *after* the callback returns — the same
 * callback-then-re-arm order the mechanisms used to hand-roll with
 * recursive lambdas, so event keys (and therefore golden output) are
 * unchanged.
 */
class PeriodicTimer
{
  public:
    PeriodicTimer(EventQueue &eq, TimePs period, std::function<void()> fn)
        : eq_(eq), period_(period), fn_(std::move(fn))
    {
    }

    PeriodicTimer(const PeriodicTimer &) = delete;
    PeriodicTimer &operator=(const PeriodicTimer &) = delete;

    /** Arm the timer: first fire at now + period, then every period. */
    void start() { arm(); }

    TimePs period() const { return period_; }

  private:
    void
    arm()
    {
        eq_.scheduleAfter(period_, [this] {
            fn_();
            arm();
        });
    }

    EventQueue &eq_;
    TimePs period_;
    std::function<void()> fn_;
};

} // namespace mempod
