/**
 * @file
 * Discrete-event scheduler driving the whole simulation.
 *
 * Every active component (channel controllers, interval timers, the
 * trace frontend, migration engines) schedules callbacks on a single
 * global queue; components that are idle schedule nothing, so
 * simulated idle time costs no host time.
 */
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/callback.h"
#include "common/types.h"

namespace mempod {

class Tracer;

/** A single binary-heap discrete-event queue ordered by time. */
class EventQueue
{
  public:
    /**
     * Move-only with a buffer sized for the largest hot-path capture
     * (a channel completion: this + slab slot + timestamp = 24 bytes);
     * anything bigger falls back to the heap. Kept tight on purpose:
     * Events live in a binary heap whose sift operations move whole
     * elements, so with the 8-byte timestamp and sequence fields the
     * Event is exactly one cache line.
     */
    using Callback = MoveFunction<void(), 24>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (time of the event being executed). */
    TimePs now() const { return now_; }

    /**
     * Schedule `cb` at absolute time `when`. Scheduling in the past
     * is a simulator bug (panics). Events at the same timestamp run
     * in scheduling order (stable FIFO tie-break).
     */
    void schedule(TimePs when, Callback cb);

    /** Schedule `cb` `delta` picoseconds from now. */
    void scheduleAfter(TimePs delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Whether any events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event, or kTimeNever. */
    TimePs nextTime() const;

    /** Execute the earliest event. Returns false if the queue is empty. */
    bool runOne();

    /** Run until the queue is empty or `limit` events have executed. */
    std::uint64_t runAll(std::uint64_t limit = ~std::uint64_t{0});

    /** Run all events with time <= `until`. */
    void runUntil(TimePs until);

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * The simulation-wide event tracer, or nullptr when tracing is
     * off. Components reach it through the queue they already hold, so
     * the disabled hot-path cost is this one pointer test.
     */
    Tracer *tracer() const { return tracer_; }
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

  private:
    struct Event
    {
        TimePs when;
        std::uint64_t seq; //!< FIFO tie-break for equal timestamps
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tracer *tracer_ = nullptr;
    TimePs now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace mempod
