/**
 * @file
 * Discrete-event scheduler driving the whole simulation.
 *
 * Every active component (channel controllers, interval timers, the
 * trace frontend, migration engines) schedules callbacks on a single
 * global queue; components that are idle schedule nothing, so
 * simulated idle time costs no host time.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace mempod {

/** A single binary-heap discrete-event queue ordered by time. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (time of the event being executed). */
    TimePs now() const { return now_; }

    /**
     * Schedule `cb` at absolute time `when`. Scheduling in the past
     * is a simulator bug (panics). Events at the same timestamp run
     * in scheduling order (stable FIFO tie-break).
     */
    void schedule(TimePs when, Callback cb);

    /** Schedule `cb` `delta` picoseconds from now. */
    void scheduleAfter(TimePs delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Whether any events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event, or kTimeNever. */
    TimePs nextTime() const;

    /** Execute the earliest event. Returns false if the queue is empty. */
    bool runOne();

    /** Run until the queue is empty or `limit` events have executed. */
    std::uint64_t runAll(std::uint64_t limit = ~std::uint64_t{0});

    /** Run all events with time <= `until`. */
    void runUntil(TimePs until);

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        TimePs when;
        std::uint64_t seq; //!< FIFO tie-break for equal timestamps
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    TimePs now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace mempod
