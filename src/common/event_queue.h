/**
 * @file
 * Discrete-event scheduler driving the whole simulation.
 *
 * Every active component (channel controllers, interval timers, the
 * trace frontend, migration engines) schedules callbacks on a single
 * global queue; components that are idle schedule nothing, so
 * simulated idle time costs no host time.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/callback.h"
#include "common/types.h"

namespace mempod {

class Tracer;

/**
 * Hierarchical timing-wheel discrete-event queue.
 *
 * Events are bucketed by arrival tick (kTickPs = 256 ps, finer than
 * any DRAM clock in the model) into kWheels wheels of kSlots slots
 * each. Wheel 0 resolves single ticks (~65 ns horizon); each higher
 * wheel covers a kSlots-times larger region and cascades whole slots
 * down as the cursor reaches them; deltas beyond the outermost wheel
 * (~1.1 s — interval timers, HMA epochs) wait in a small overflow
 * ladder. Scheduling and dispatch are O(1) amortized versus the
 * O(log n) sift of the binary heap this replaces, and slot storage is
 * recycled through a free list, so steady-state scheduling performs
 * no allocation.
 *
 * Ordering guarantee: events execute in ascending (when, seq) order,
 * where seq is global scheduling order — exactly the total order of a
 * time-sorted heap with a FIFO tie-break, so replacing the heap
 * cannot change simulation output.
 */
class EventQueue
{
  public:
    /**
     * Move-only with a buffer sized for the largest hot-path capture
     * (a channel completion: this + slab slot + timestamp = 24 bytes);
     * anything bigger falls back to the heap. Kept tight on purpose:
     * slot drains and cascades move whole Events, so with the 8-byte
     * timestamp and sequence fields the Event is exactly one cache
     * line.
     */
    using Callback = MoveFunction<void(), 24>;

    /** Wheel geometry. One tick = 256 ps. */
    static constexpr unsigned kTickShift = 8;
    static constexpr TimePs kTickPs = TimePs{1} << kTickShift;
    static constexpr unsigned kSlotBits = 8;
    static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
    static constexpr unsigned kWheels = 4;
    /** Deltas at/beyond roughly this defer to the overflow ladder. */
    static constexpr TimePs kWheelSpanPs =
        TimePs{1} << (kTickShift + kWheels * kSlotBits);

    EventQueue() = default;
    ~EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (time of the event being executed). */
    TimePs now() const { return now_; }

    /**
     * Schedule `cb` at absolute time `when`. Scheduling in the past
     * is a simulator bug (panics). Events at the same timestamp run
     * in scheduling order (stable FIFO tie-break).
     */
    void schedule(TimePs when, Callback cb);

    /** Schedule `cb` `delta` picoseconds from now. */
    void scheduleAfter(TimePs delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Whether any events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Time of the earliest pending event, or kTimeNever. */
    TimePs nextTime() const;

    /** Execute the earliest event. Returns false if the queue is empty. */
    bool runOne();

    /** Run until the queue is empty or `limit` events have executed. */
    std::uint64_t runAll(std::uint64_t limit = ~std::uint64_t{0});

    /** Run all events with time <= `until`. */
    void runUntil(TimePs until);

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Slots cascaded down the hierarchy (introspection/benchmarks). */
    std::uint64_t cascades() const { return cascades_; }

    /** Events that entered the far-future overflow ladder. */
    std::uint64_t ladderDeferred() const { return ladderDeferred_; }

    /**
     * The simulation-wide event tracer, or nullptr when tracing is
     * off. Components reach it through the queue they already hold, so
     * the disabled hot-path cost is this one pointer test.
     */
    Tracer *tracer() const { return tracer_; }
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

  private:
    struct Event
    {
        TimePs when;
        std::uint64_t seq; //!< FIFO tie-break for equal timestamps
        Callback cb;
    };
    using EventList = std::vector<Event>;

    struct Wheel
    {
        EventList *slots[kSlots] = {};
        /** One bit per slot; scanned circularly from the cursor. */
        std::uint64_t occupied[kSlots / 64] = {};
    };

    static bool
    earlier(const Event &a, const Event &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    EventList *acquireList();
    void releaseList(EventList *list);
    void appendToSlot(unsigned level, std::size_t idx, Event ev);
    void place(Event ev);
    void fixupStranded();
    bool findNextSlot(std::uint64_t &out_tick);
    void claimSlot(std::uint64_t tick);
    bool popNext(Event &out);
    TimePs peekNextTime();

    Wheel wheels_[kWheels];
    /** Owns every slot vector ever created; capacity is recycled. */
    std::vector<std::unique_ptr<EventList>> pool_;
    std::vector<EventList *> freeLists_;
    EventList ladder_; //!< min-heap by (when, seq), beyond the wheels
    EventList front_;  //!< sorted; peek-cascade overshoot spill
    EventList *drain_ = nullptr; //!< slot currently being executed
    std::size_t drainPos_ = 0;
    std::uint64_t drainTick_ = 0;
    std::uint64_t cursorTick_ = 0;

    Tracer *tracer_ = nullptr;
    TimePs now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t size_ = 0;
    std::uint64_t cascades_ = 0;
    std::uint64_t ladderDeferred_ = 0;
};

/**
 * Fixed-period repeating timer for interval mechanisms (MemPod/HMA
 * epochs, the stats sampler). Fires `fn` every `period` after
 * start(), re-arming *after* the callback returns — the same
 * callback-then-re-arm order the mechanisms used to hand-roll with
 * recursive lambdas, so event sequence numbers (and therefore golden
 * output) are unchanged.
 */
class PeriodicTimer
{
  public:
    PeriodicTimer(EventQueue &eq, TimePs period, std::function<void()> fn)
        : eq_(eq), period_(period), fn_(std::move(fn))
    {
    }

    PeriodicTimer(const PeriodicTimer &) = delete;
    PeriodicTimer &operator=(const PeriodicTimer &) = delete;

    /** Arm the timer: first fire at now + period, then every period. */
    void start() { arm(); }

    TimePs period() const { return period_; }

  private:
    void
    arm()
    {
        eq_.scheduleAfter(period_, [this] {
            fn_();
            arm();
        });
    }

    EventQueue &eq_;
    TimePs period_;
    std::function<void()> fn_;
};

} // namespace mempod
