#include "common/metrics.h"

#include <cmath>

#include "common/log.h"

namespace mempod {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::kCounter:
        return "counter";
      case MetricKind::kGauge:
        return "gauge";
      case MetricKind::kScalar:
        return "scalar";
      case MetricKind::kRatio:
        return "ratio";
      case MetricKind::kHistogram:
        return "histogram";
    }
    return "unknown";
}

bool
MetricSnapshot::has(const std::string &name) const
{
    return values.find(name) != values.end();
}

const MetricValue &
MetricSnapshot::at(const std::string &name) const
{
    auto it = values.find(name);
    if (it == values.end())
        MEMPOD_PANIC("snapshot has no metric '%s'", name.c_str());
    return it->second;
}

std::uint64_t
MetricSnapshot::u64(const std::string &name) const
{
    return at(name).count;
}

double
MetricSnapshot::real(const std::string &name) const
{
    return at(name).real;
}

MetricSnapshot
metricDelta(const MetricSnapshot &earlier, const MetricSnapshot &later)
{
    MEMPOD_ASSERT(earlier.values.size() == later.values.size(),
                  "snapshot shapes differ: %zu vs %zu metrics",
                  earlier.values.size(), later.values.size());
    MetricSnapshot out;
    out.simTimePs = later.simTimePs;
    for (const auto &[name, after] : later.values) {
        auto it = earlier.values.find(name);
        if (it == earlier.values.end())
            MEMPOD_PANIC("metric '%s' missing from earlier snapshot",
                         name.c_str());
        const MetricValue &before = it->second;
        MetricValue d = after;
        switch (after.kind) {
          case MetricKind::kCounter:
          case MetricKind::kRatio:
            MEMPOD_ASSERT(after.count >= before.count &&
                              after.hits >= before.hits,
                          "metric '%s' went backwards", name.c_str());
            d.count = after.count - before.count;
            d.hits = after.hits - before.hits;
            break;
          case MetricKind::kScalar:
            d.count = after.count - before.count;
            d.real = after.real - before.real; // sum
            break;
          case MetricKind::kHistogram:
            d.count = after.count - before.count;
            for (std::size_t b = 0; b < d.buckets.size(); ++b) {
                const std::uint64_t prev =
                    b < before.buckets.size() ? before.buckets[b] : 0;
                d.buckets[b] -= prev;
            }
            break;
          case MetricKind::kGauge:
            break; // level metric: keep the later value
        }
        out.values.emplace(name, std::move(d));
    }
    return out;
}

MetricRegistry::Instrument &
MetricRegistry::emplace(const std::string &name, MetricKind kind,
                        const std::string &desc)
{
    MEMPOD_ASSERT(!name.empty(), "metric name must not be empty");
    auto [it, inserted] = instruments_.try_emplace(name);
    if (!inserted)
        MEMPOD_PANIC("metric name collision: '%s' already registered "
                     "as %s",
                     name.c_str(), metricKindName(it->second.kind));
    it->second.kind = kind;
    it->second.desc = desc;
    return it->second;
}

Counter &
MetricRegistry::counter(const std::string &name, const std::string &desc)
{
    Instrument &inst = emplace(name, MetricKind::kCounter, desc);
    inst.owned = std::make_unique<Counter>();
    return *inst.owned;
}

void
MetricRegistry::attachCounter(const std::string &name,
                              const std::string &desc,
                              const std::uint64_t *source)
{
    MEMPOD_ASSERT(source != nullptr, "null source for '%s'", name.c_str());
    emplace(name, MetricKind::kCounter, desc).u64Source = source;
}

void
MetricRegistry::addCounterFn(const std::string &name,
                             const std::string &desc,
                             std::function<std::uint64_t()> fn)
{
    MEMPOD_ASSERT(fn != nullptr, "null fn for '%s'", name.c_str());
    emplace(name, MetricKind::kCounter, desc).u64Fn = std::move(fn);
}

void
MetricRegistry::addGauge(const std::string &name, const std::string &desc,
                         std::function<double()> fn)
{
    MEMPOD_ASSERT(fn != nullptr, "null fn for '%s'", name.c_str());
    emplace(name, MetricKind::kGauge, desc).gaugeFn = std::move(fn);
}

void
MetricRegistry::attachScalar(const std::string &name,
                             const std::string &desc,
                             const ScalarStat *source)
{
    MEMPOD_ASSERT(source != nullptr, "null source for '%s'", name.c_str());
    emplace(name, MetricKind::kScalar, desc).scalar = source;
}

void
MetricRegistry::attachRatio(const std::string &name,
                            const std::string &desc,
                            const RatioStat *source)
{
    MEMPOD_ASSERT(source != nullptr, "null source for '%s'", name.c_str());
    emplace(name, MetricKind::kRatio, desc).ratio = source;
}

void
MetricRegistry::attachHistogram(const std::string &name,
                                const std::string &desc,
                                const Log2Histogram *source)
{
    MEMPOD_ASSERT(source != nullptr, "null source for '%s'", name.c_str());
    emplace(name, MetricKind::kHistogram, desc).histogram = source;
}

bool
MetricRegistry::contains(const std::string &name) const
{
    return instruments_.find(name) != instruments_.end();
}

const std::string &
MetricRegistry::description(const std::string &name) const
{
    auto it = instruments_.find(name);
    if (it == instruments_.end())
        MEMPOD_PANIC("no metric '%s' registered", name.c_str());
    return it->second.desc;
}

MetricKind
MetricRegistry::kind(const std::string &name) const
{
    auto it = instruments_.find(name);
    if (it == instruments_.end())
        MEMPOD_PANIC("no metric '%s' registered", name.c_str());
    return it->second.kind;
}

std::vector<std::string>
MetricRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(instruments_.size());
    for (const auto &[name, inst] : instruments_)
        out.push_back(name);
    return out;
}

MetricSnapshot
MetricRegistry::snapshot(TimePs now) const
{
    MetricSnapshot snap;
    snap.simTimePs = now;
    for (const auto &[name, inst] : instruments_) {
        MetricValue v;
        v.kind = inst.kind;
        switch (inst.kind) {
          case MetricKind::kCounter:
            if (inst.owned)
                v.count = inst.owned->value();
            else if (inst.u64Source)
                v.count = *inst.u64Source;
            else
                v.count = inst.u64Fn();
            break;
          case MetricKind::kGauge:
            v.real = inst.gaugeFn();
            break;
          case MetricKind::kScalar:
            v.count = inst.scalar->count();
            v.real = inst.scalar->sum();
            v.min = inst.scalar->min();
            v.max = inst.scalar->max();
            v.mean = inst.scalar->mean();
            v.stddev = inst.scalar->stddev();
            break;
          case MetricKind::kRatio:
            v.count = inst.ratio->total();
            v.hits = inst.ratio->hits();
            v.real = inst.ratio->rate();
            break;
          case MetricKind::kHistogram:
            v.count = inst.histogram->count();
            v.buckets = inst.histogram->buckets();
            break;
        }
        snap.values.emplace(name, std::move(v));
    }
    return snap;
}

IntervalSampler::IntervalSampler(EventQueue &eq, MetricRegistry &registry,
                                 TimePs period)
    : eq_(eq), registry_(registry), period_(period),
      timer_(eq, period, [this] { onTick(); })
{
    MEMPOD_ASSERT(period > 0, "sampling period must be positive");
}

void
IntervalSampler::start()
{
    MEMPOD_ASSERT(!started_, "sampler already started");
    started_ = true;
    last_ = registry_.snapshot(eq_.now());
    timer_.start();
}

void
IntervalSampler::onTick()
{
    const TimePs now = eq_.now();
    MetricSnapshot cur = registry_.snapshot(now);
    IntervalRecord rec;
    rec.index = records_.size();
    rec.startPs = last_.simTimePs;
    rec.endPs = now;
    rec.delta = metricDelta(last_, cur);
    records_.push_back(std::move(rec));
    last_ = std::move(cur);
}

void
IntervalSampler::finalize(TimePs now)
{
    if (!started_ || now <= last_.simTimePs)
        return;
    MetricSnapshot cur = registry_.snapshot(now);
    IntervalRecord rec;
    rec.index = records_.size();
    rec.startPs = last_.simTimePs;
    rec.endPs = now;
    rec.delta = metricDelta(last_, cur);
    records_.push_back(std::move(rec));
    last_ = std::move(cur);
}

} // namespace mempod
