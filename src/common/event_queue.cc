#include "common/event_queue.h"

#include "common/log.h"

namespace mempod {

void
EventQueue::schedule(TimePs when, Callback cb)
{
    MEMPOD_ASSERT(when >= now_,
                  "event scheduled in the past (when=%llu now=%llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    heap_.push(Event{when, nextSeq_++, std::move(cb)});
}

TimePs
EventQueue::nextTime() const
{
    return heap_.empty() ? kTimeNever : heap_.top().when;
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because pop() follows immediately.
    Event ev = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::runAll(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && runOne())
        ++n;
    return n;
}

void
EventQueue::runUntil(TimePs until)
{
    while (!heap_.empty() && heap_.top().when <= until)
        runOne();
    if (now_ < until)
        now_ = until;
}

} // namespace mempod
