#include "common/event_queue.h"

#include <algorithm>
#include <bit>

#include "common/log.h"
#include "common/tracer.h"

namespace mempod {

namespace {

constexpr std::size_t kWords = EventQueue::kSlots / 64;

/**
 * Find the first set bit at circular distance d in [0, kSlots-1] from
 * `start`; returns d, or -1 when the bitmap is empty.
 */
int
circularFindSet(const std::uint64_t *words, unsigned start)
{
    const unsigned w0 = start >> 6;
    const unsigned b0 = start & 63;
    const std::uint64_t first = words[w0] & (~std::uint64_t{0} << b0);
    if (first) {
        return static_cast<int>((w0 << 6) + std::countr_zero(first) -
                                start);
    }
    for (unsigned k = 1; k <= kWords; ++k) {
        const unsigned w = (w0 + k) % kWords;
        std::uint64_t v = words[w];
        if (w == w0)
            v &= ~(~std::uint64_t{0} << b0); // wrapped: below start only
        if (v) {
            const int idx =
                static_cast<int>((w << 6) + std::countr_zero(v));
            const int d = idx - static_cast<int>(start);
            return d >= 0 ? d : d + static_cast<int>(EventQueue::kSlots);
        }
    }
    return -1;
}

} // namespace

std::uint64_t
EventQueue::nextOrd()
{
    if (ctxDomain_ >= counters_.size())
        counters_.resize(ctxDomain_ + 1, 0);
    const std::uint64_t c = counters_[ctxDomain_]++;
    return (static_cast<std::uint64_t>(ctxDomain_) << kCounterBits) | c;
}

void
EventQueue::scheduleIn(DomainId target, TimePs when, Callback cb)
{
    MEMPOD_ASSERT(when >= now_,
                  "event scheduled in the past (when=%llu now=%llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    TimePs sched_time;
    std::uint64_t masked;
    if (haveOverride_) {
        // A deferred cross-domain hand-off replays the key its serial
        // counterpart consumed at the original call site.
        haveOverride_ = false;
        sched_time = overrideKey_.schedTime;
        masked = overrideKey_.ord;
    } else {
        sched_time = now_;
        masked = nextOrd();
    }
    if (routeCross_ && target != homeDomain_) {
        // Sharded per-domain queue: the only legal foreign target is
        // the coordinator (channel completions); the executor merges
        // the outbox at the next horizon barrier.
        MEMPOD_ASSERT(target == kCoordinatorDomain,
                      "cross-domain schedule to domain %u (only the "
                      "coordinator may be targeted across domains)",
                      static_cast<unsigned>(target));
        outbox_.push_back(CrossEvent{
            target, EventKey{when, sched_time, masked}, std::move(cb)});
        return;
    }
    ++size_;
    if (size_ > host_.peakPending)
        host_.peakPending = size_;
    place(Event{when, sched_time, packOrd(target, masked),
                std::move(cb)});
}

void
EventQueue::admitForeign(DomainId exec, EventKey key, Callback cb)
{
    MEMPOD_ASSERT(key.when >= now_,
                  "foreign event arrives in this domain's past "
                  "(when=%llu now=%llu)",
                  static_cast<unsigned long long>(key.when),
                  static_cast<unsigned long long>(now_));
    ++size_;
    if (size_ > host_.peakPending)
        host_.peakPending = size_;
    place(Event{key.when, key.schedTime, packOrd(exec, key.ord),
                std::move(cb)});
}

EventKey
EventQueue::reserveKey()
{
    return EventKey{now_, now_, nextOrd()};
}

void
EventQueue::beginApply(TimePs when, EventKey key)
{
    MEMPOD_ASSERT(when >= now_, "apply rewinds domain time");
    MEMPOD_ASSERT(!haveOverride_, "unconsumed apply key");
    now_ = when;
    overrideKey_ = key;
    haveOverride_ = true;
    ctxDomain_ = static_cast<DomainId>(key.ord >> kCounterBits);
    if (tracer_)
        tracer_->setEventKey(EventKey{when, key.schedTime, key.ord});
}

void
EventQueue::endApply()
{
    // The hand-off may legitimately schedule nothing (e.g. a
    // controller tick already armed at an earlier time).
    haveOverride_ = false;
    ctxDomain_ = homeDomain_;
}

EventQueue::EventList *
EventQueue::acquireList()
{
    if (freeLists_.empty()) {
        ++host_.listAllocs;
        pool_.push_back(std::make_unique<EventList>());
        return pool_.back().get();
    }
    ++host_.listReuses;
    EventList *list = freeLists_.back();
    freeLists_.pop_back();
    return list;
}

void
EventQueue::releaseList(EventList *list)
{
    list->clear(); // keeps capacity for reuse
    freeLists_.push_back(list);
}

void
EventQueue::appendToSlot(unsigned level, std::size_t idx, Event ev)
{
    Wheel &w = wheels_[level];
    if (w.slots[idx] == nullptr) {
        w.slots[idx] = acquireList();
        w.occupied[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }
    w.slots[idx]->push_back(std::move(ev));
}

void
EventQueue::place(Event ev)
{
    const std::uint64_t tick = ev.when >> kTickShift;
    if (drain_ != nullptr && tick == drainTick_) {
        // Joins the slot currently executing: splice into the
        // undrained tail at its canonical key position. The tail is
        // key-sorted (claimSlot sorted it and insertions keep it so),
        // so upper_bound by the full key preserves the total order —
        // a when-only probe would misplace events that tie on `when`
        // but differ in (schedTime, domain).
        auto pos = std::upper_bound(
            drain_->begin() + static_cast<std::ptrdiff_t>(drainPos_),
            drain_->end(), ev,
            [](const Event &a, const Event &b) { return earlier(a, b); });
        drain_->insert(pos, std::move(ev));
        ++host_.drainInserts;
        return;
    }
    if (tick < cursorTick_) {
        // A nextTime()/runUntil() scan cascaded the cursor ahead of
        // now_ and this event landed in the gap. Such events precede
        // everything in the wheels, so keep them in a small sorted
        // spill drained before any slot.
        auto pos = std::upper_bound(
            front_.begin(), front_.end(), ev,
            [](const Event &a, const Event &b) { return earlier(a, b); });
        front_.insert(pos, std::move(ev));
        ++host_.frontSpills;
        return;
    }
    for (unsigned level = 0; level < kWheels; ++level) {
        const unsigned shift = level * kSlotBits;
        // Compare in level units, not raw ticks: a raw-delta check
        // would lap slots when the cursor sits mid-region.
        if ((tick >> shift) - (cursorTick_ >> shift) < kSlots) {
            ++host_.placedAtLevel[level];
            appendToSlot(level, (tick >> shift) & (kSlots - 1),
                         std::move(ev));
            return;
        }
    }
    ladder_.push_back(std::move(ev));
    std::push_heap(
        ladder_.begin(), ladder_.end(),
        [](const Event &a, const Event &b) { return earlier(b, a); });
    ++ladderDeferred_;
}

void
EventQueue::fixupStranded()
{
    // After the cursor jumps, any higher-level slot whose region now
    // *starts* at the cursor sits at circular distance 0 and would be
    // invisible to the scan; cascade each one down immediately. The
    // re-placed events always land at a strictly lower level, so the
    // high-to-low sweep never refills a slot it already drained.
    for (unsigned level = kWheels - 1; level >= 1; --level) {
        const unsigned shift = level * kSlotBits;
        const std::size_t idx = (cursorTick_ >> shift) & (kSlots - 1);
        Wheel &w = wheels_[level];
        if (!(w.occupied[idx >> 6] & (std::uint64_t{1} << (idx & 63))))
            continue;
        EventList *list = w.slots[idx];
        w.slots[idx] = nullptr;
        w.occupied[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
        ++cascades_;
        for (Event &ev : *list)
            place(std::move(ev));
        releaseList(list);
    }
}

bool
EventQueue::findNextSlot(std::uint64_t &out_tick)
{
    for (;;) {
        std::uint64_t best = ~std::uint64_t{0};
        int best_level = -1; // kWheels == ladder

        // Wheel-0 candidate: the exact tick of the earliest slot.
        {
            const unsigned idx0 =
                static_cast<unsigned>(cursorTick_ & (kSlots - 1));
            const int d = circularFindSet(wheels_[0].occupied, idx0);
            if (d >= 0) {
                best = cursorTick_ + static_cast<unsigned>(d);
                best_level = 0;
            }
        }
        // Higher wheels: region start of the earliest occupied slot.
        for (unsigned level = 1; level < kWheels; ++level) {
            const unsigned shift = level * kSlotBits;
            const std::uint64_t cur = cursorTick_ >> shift;
            const unsigned idx = static_cast<unsigned>(cur & (kSlots - 1));
            const int d = circularFindSet(wheels_[level].occupied,
                                          (idx + 1) & (kSlots - 1));
            if (d < 0)
                continue;
            // fixupStranded keeps distance-0 slots empty, so the hit
            // can never be the cursor's own slot (distance kSlots).
            MEMPOD_ASSERT(d < static_cast<int>(kSlots) - 1 ||
                              ((idx + 1 + d) & (kSlots - 1)) != idx,
                          "stranded wheel slot at level %u", level);
            const std::uint64_t cand = (cur + 1 + static_cast<unsigned>(d))
                                       << shift;
            if (cand < best) {
                best = cand;
                best_level = static_cast<int>(level);
            }
        }
        if (!ladder_.empty()) {
            const std::uint64_t cand = ladder_.front().when >> kTickShift;
            if (cand < best) {
                best = cand;
                best_level = static_cast<int>(kWheels);
            }
        }

        if (best_level < 0)
            return false;
        if (best_level == 0) {
            out_tick = best;
            return true;
        }

        // Cascade: advance the cursor to the earliest region start —
        // provably <= every pending tick — and redistribute.
        // fixupStranded drains the chosen slot, now at distance 0.
        cursorTick_ = best;
        fixupStranded();
        if (best_level == static_cast<int>(kWheels)) {
            // Pull every ladder event now inside the wheel horizon.
            const auto later = [](const Event &a, const Event &b) {
                return earlier(b, a);
            };
            const unsigned top_shift = (kWheels - 1) * kSlotBits;
            while (!ladder_.empty() &&
                   ((ladder_.front().when >> kTickShift) >> top_shift) -
                           (cursorTick_ >> top_shift) <
                       kSlots) {
                std::pop_heap(ladder_.begin(), ladder_.end(), later);
                Event ev = std::move(ladder_.back());
                ladder_.pop_back();
                place(std::move(ev));
            }
        }
    }
}

void
EventQueue::claimSlot(std::uint64_t tick)
{
    Wheel &w = wheels_[0];
    const std::size_t idx = tick & (kSlots - 1);
    MEMPOD_ASSERT(w.slots[idx] != nullptr, "claiming an empty slot");
    drain_ = w.slots[idx];
    w.slots[idx] = nullptr;
    w.occupied[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    std::sort(drain_->begin(), drain_->end(),
              [](const Event &a, const Event &b) { return earlier(a, b); });
    drainTick_ = tick;
    drainPos_ = 0;
}

bool
EventQueue::popNext(Event &out)
{
    if (!front_.empty()) {
        MEMPOD_ASSERT(drain_ == nullptr, "front spill during slot drain");
        out = std::move(front_.front());
        front_.erase(front_.begin());
        --size_;
        return true;
    }
    if (drain_ == nullptr) {
        std::uint64_t tick;
        if (!findNextSlot(tick))
            return false;
        claimSlot(tick);
    }
    out = std::move((*drain_)[drainPos_++]);
    if (drainPos_ == drain_->size()) {
        releaseList(drain_);
        drain_ = nullptr;
    }
    --size_;
    return true;
}

TimePs
EventQueue::peekNextTime()
{
    if (!front_.empty())
        return front_.front().when;
    if (drain_ != nullptr)
        return (*drain_)[drainPos_].when;
    std::uint64_t tick;
    if (!findNextSlot(tick))
        return kTimeNever;
    TimePs min_when = kTimeNever;
    for (const Event &ev : *wheels_[0].slots[tick & (kSlots - 1)])
        min_when = std::min(min_when, ev.when);
    return min_when;
}

bool
EventQueue::peekNextKey(EventKey &out)
{
    const Event *best = nullptr;
    if (!front_.empty()) {
        best = &front_.front();
    } else if (drain_ != nullptr) {
        best = &(*drain_)[drainPos_];
    } else {
        std::uint64_t tick;
        if (!findNextSlot(tick))
            return false;
        for (const Event &ev : *wheels_[0].slots[tick & (kSlots - 1)])
            if (best == nullptr || earlier(ev, *best))
                best = &ev;
    }
    out = EventKey{best->when, best->schedTime, best->ord & kOrderMask};
    return true;
}

TimePs
EventQueue::nextTime() const
{
    // The scan may cascade slots down the hierarchy, but cascading
    // only relocates pending events — it cannot change execution
    // order — so this is logically const.
    return const_cast<EventQueue *>(this)->peekNextTime();
}

void
EventQueue::dispatch(Event &ev)
{
    now_ = ev.when;
    ctxDomain_ =
        static_cast<DomainId>(ev.ord >> (kCounterBits + kDomainBits));
    currentKey_ = EventKey{ev.when, ev.schedTime, ev.ord & kOrderMask};
    ++executed_;
    if (tracer_)
        tracer_->setEventKey(currentKey_);
    ev.cb();
}

bool
EventQueue::runOne()
{
    Event ev;
    if (!popNext(ev))
        return false;
    dispatch(ev);
    return true;
}

std::uint64_t
EventQueue::runAll(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && runOne())
        ++n;
    return n;
}

void
EventQueue::runUntil(TimePs until)
{
    for (;;) {
        if (!front_.empty()) {
            if (front_.front().when > until)
                break;
        } else {
            if (drain_ == nullptr) {
                std::uint64_t tick;
                if (!findNextSlot(tick))
                    break;
                if (tick > (until >> kTickShift))
                    break; // whole slot beyond the horizon
                claimSlot(tick);
            }
            if ((*drain_)[drainPos_].when > until)
                break; // claimed slot straddles `until`; resume later
        }
        Event ev;
        popNext(ev);
        dispatch(ev);
    }
    if (now_ < until)
        now_ = until;
}

} // namespace mempod
