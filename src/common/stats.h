/**
 * @file
 * Lightweight statistics accumulators used throughout the simulator:
 * scalar counters with mean/min/max and Welford variance, and a
 * log2-bucketed histogram for latency distributions.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mempod {

/** Running scalar statistic (count / sum / min / max / mean / var). */
class ScalarStat
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (v < min_ || count_ == 1)
            min_ = v;
        if (v > max_ || count_ == 1)
            max_ = v;
        // Welford's online algorithm: numerically stable second moment.
        const double delta = v - runningMean_;
        runningMean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - runningMean_);
    }

    void reset() { *this = ScalarStat{}; }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance (M2 / n); 0 with fewer than two samples. */
    double variance() const;

    /** Unbiased sample variance (M2 / (n-1)). */
    double sampleVariance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double runningMean_ = 0.0; //!< Welford state (mean() uses sum_)
    double m2_ = 0.0;          //!< sum of squared deviations
};

/** Histogram with power-of-two buckets: [0,1), [1,2), [2,4), ... */
class Log2Histogram
{
  public:
    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }

    /** Raw bucket counts; bucket b>=1 covers [2^(b-1), 2^b). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /**
     * Value below which `q` (0..1) of samples fall, linearly
     * interpolated within the winning bucket's value range.
     */
    std::uint64_t percentile(double q) const;

    /** Render a compact textual summary. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
};

/** Ratio helper for hit-rate style statistics. */
class RatioStat
{
  public:
    void hit() { ++hits_; ++total_; }
    void miss() { ++total_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t total() const { return total_; }
    double rate() const
    {
        return total_ ? static_cast<double>(hits_) / total_ : 0.0;
    }

  private:
    std::uint64_t hits_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace mempod
