/**
 * @file
 * A move-only callable wrapper with small-buffer storage, replacing
 * std::function on the per-request hot path. std::function requires a
 * copyable target and heap-allocates once captures outgrow its tiny
 * internal buffer; every demand request used to pay one allocation for
 * its completion chain. MoveFunction stores any nothrow-movable
 * callable up to Cap bytes inline (larger or throwing-move targets
 * fall back to the heap) and never requires copyability, so move-only
 * captures compose without wrapper layers.
 */
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace mempod {

template <typename Sig, std::size_t Cap = 64>
class MoveFunction;

/** Move-only callable; inline up to Cap bytes, heap beyond. */
template <typename R, typename... Args, std::size_t Cap>
class MoveFunction<R(Args...), Cap>
{
  public:
    MoveFunction() = default;
    MoveFunction(std::nullptr_t) {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, MoveFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    MoveFunction(F &&f)
    {
        emplace<D>(std::forward<F>(f));
    }

    MoveFunction(MoveFunction &&other) noexcept { moveFrom(other); }

    MoveFunction &
    operator=(MoveFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    MoveFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    MoveFunction(const MoveFunction &) = delete;
    MoveFunction &operator=(const MoveFunction &) = delete;

    ~MoveFunction() { reset(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    /** Call the target; undefined when empty (check bool first). */
    R
    operator()(Args... args)
    {
        return invoke_(&storage_, std::forward<Args>(args)...);
    }

  private:
    /** Target stored directly in the inline buffer. */
    template <typename F>
    struct Inline
    {
        static R
        invoke(void *s, Args... a)
        {
            return (*static_cast<F *>(s))(std::forward<Args>(a)...);
        }
        static void
        relocate(void *dst, void *src) noexcept
        {
            ::new (dst) F(std::move(*static_cast<F *>(src)));
            static_cast<F *>(src)->~F();
        }
        static void destroy(void *s) { static_cast<F *>(s)->~F(); }
    };

    /** Oversized target: the buffer holds an owning pointer. */
    template <typename F>
    struct Boxed
    {
        static R
        invoke(void *s, Args... a)
        {
            return (**static_cast<F **>(s))(std::forward<Args>(a)...);
        }
        static void
        relocate(void *dst, void *src) noexcept
        {
            ::new (dst) (F *)(*static_cast<F **>(src));
        }
        static void destroy(void *s) { delete *static_cast<F **>(s); }
    };

    /**
     * Relocation for trivially-copyable inline targets: one shared
     * memcpy of the whole buffer instead of a per-type move+destroy.
     * Hot containers (event heap, controller queues) move these
     * constantly, so the shared, branch-predictable target matters.
     */
    static void
    trivialRelocate(void *dst, void *src) noexcept
    {
        std::memcpy(dst, src, Cap);
    }

    template <typename F, typename G>
    void
    emplace(G &&g)
    {
        if constexpr (sizeof(F) <= Cap &&
                      alignof(F) <= alignof(std::max_align_t) &&
                      std::is_trivially_copyable_v<F>) {
            ::new (static_cast<void *>(&storage_)) F(std::forward<G>(g));
            invoke_ = &Inline<F>::invoke;
            relocate_ = &trivialRelocate;
            destroy_ = nullptr; // trivially destructible
        } else if constexpr (sizeof(F) <= Cap &&
                             alignof(F) <=
                                 alignof(std::max_align_t) &&
                             std::is_nothrow_move_constructible_v<F>) {
            ::new (static_cast<void *>(&storage_)) F(std::forward<G>(g));
            invoke_ = &Inline<F>::invoke;
            relocate_ = &Inline<F>::relocate;
            destroy_ = &Inline<F>::destroy;
        } else {
            ::new (static_cast<void *>(&storage_)) (F *)(
                new F(std::forward<G>(g)));
            invoke_ = &Boxed<F>::invoke;
            relocate_ = &Boxed<F>::relocate;
            destroy_ = &Boxed<F>::destroy;
        }
    }

    void
    moveFrom(MoveFunction &other) noexcept
    {
        invoke_ = other.invoke_;
        relocate_ = other.relocate_;
        destroy_ = other.destroy_;
        if (invoke_) {
            relocate_(&storage_, &other.storage_);
            other.invoke_ = nullptr;
            other.relocate_ = nullptr;
            other.destroy_ = nullptr;
        }
    }

    void
    reset()
    {
        if (destroy_)
            destroy_(&storage_);
        invoke_ = nullptr;
        relocate_ = nullptr;
        destroy_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char storage_[Cap];
    R (*invoke_)(void *, Args...) = nullptr;
    void (*relocate_)(void *, void *) noexcept = nullptr;
    void (*destroy_)(void *) = nullptr;
};

} // namespace mempod
