#include "common/perf.h"

#include <chrono>
#include <thread>

#include <sys/resource.h>
#include <sys/utsname.h>

namespace mempod {

std::uint64_t
perfNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
perfMaxRssKib()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in KiB already.
    return static_cast<std::uint64_t>(ru.ru_maxrss);
}

PerfHostInfo
perfHostInfo()
{
    PerfHostInfo info;
    struct utsname u;
    if (uname(&u) == 0) {
        info.sysname = u.sysname;
        info.machine = u.machine;
    }
    info.cpus = std::thread::hardware_concurrency();
    return info;
}

void
PerfMonitor::phaseAddNs(const std::string &phase, std::uint64_t ns)
{
    for (auto &[name, total] : phases_) {
        if (name == phase) {
            total += ns;
            return;
        }
    }
    phases_.emplace_back(phase, ns);
}

std::uint64_t
PerfMonitor::phaseNs(const std::string &phase) const
{
    for (const auto &[name, total] : phases_)
        if (name == phase)
            return total;
    return 0;
}

bool
PerfMonitor::heartbeatDue(std::uint64_t interval_ns)
{
    const std::uint64_t now = perfNowNs();
    if (lastHeartbeatNs_ == 0)
        lastHeartbeatNs_ = startNs_;
    if (now - lastHeartbeatNs_ < interval_ns)
        return false;
    lastHeartbeatNs_ = now;
    return true;
}

PerfReport
PerfMonitor::report(std::uint64_t sim_time_ps, std::uint64_t events) const
{
    PerfReport r;
    r.wallSeconds =
        static_cast<double>(perfNowNs() - startNs_) / 1e9;
    r.maxRssKib = perfMaxRssKib();
    r.simTimePs = sim_time_ps;
    r.eventsExecuted = events;
    const std::uint64_t run_ns = phaseNs("run");
    const double denom =
        run_ns ? static_cast<double>(run_ns) / 1e9 : r.wallSeconds;
    r.eventsPerSecond =
        denom > 0 ? static_cast<double>(events) / denom : 0.0;
    r.phasesNs = phases_;
    r.counters = counters_;
    r.gauges = gauges_;
    for (const auto &[name, h] : histograms_)
        r.histograms.emplace(name, h.buckets());
    r.shards = shards_;
    return r;
}

void
PerfReport::merge(const PerfReport &other)
{
    wallSeconds += other.wallSeconds;
    maxRssKib = std::max(maxRssKib, other.maxRssKib);
    simTimePs += other.simTimePs;
    eventsExecuted += other.eventsExecuted;
    windows += other.windows;
    for (const auto &[name, ns] : other.phasesNs) {
        bool found = false;
        for (auto &[mine, total] : phasesNs) {
            if (mine == name) {
                total += ns;
                found = true;
                break;
            }
        }
        if (!found)
            phasesNs.emplace_back(name, ns);
    }
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    // Gauges don't sum meaningfully across runs; keep the last value.
    for (const auto &[name, v] : other.gauges)
        gauges[name] = v;
    for (const auto &[name, b] : other.histograms) {
        std::vector<std::uint64_t> &mine = histograms[name];
        if (mine.size() < b.size())
            mine.resize(b.size(), 0);
        for (std::size_t i = 0; i < b.size(); ++i)
            mine[i] += b[i];
    }
    if (shards.size() < other.shards.size())
        shards.resize(other.shards.size());
    for (std::size_t s = 0; s < other.shards.size(); ++s) {
        shards[s].busyNs += other.shards[s].busyNs;
        shards[s].stallNs += other.shards[s].stallNs;
        shards[s].events += other.shards[s].events;
    }
    // Recompute the aggregate rate from the merged totals.
    std::uint64_t run_ns = 0;
    for (const auto &[name, ns] : phasesNs)
        if (name == "run")
            run_ns = ns;
    const double denom =
        run_ns ? static_cast<double>(run_ns) / 1e9 : wallSeconds;
    eventsPerSecond =
        denom > 0 ? static_cast<double>(eventsExecuted) / denom : 0.0;
}

void
PerfReport::printTable(std::FILE *out, const std::string &title) const
{
    std::fprintf(out, "\n-- host profile: %s --\n", title.c_str());
    std::fprintf(out,
                 "wall %.3f s  peak RSS %.1f MiB  sim %.3f ms  "
                 "events %llu  (%.2f M ev/s, %.2f ms sim/s)\n",
                 wallSeconds,
                 static_cast<double>(maxRssKib) / 1024.0,
                 static_cast<double>(simTimePs) / 1e9,
                 static_cast<unsigned long long>(eventsExecuted),
                 eventsPerSecond / 1e6,
                 wallSeconds > 0
                     ? static_cast<double>(simTimePs) / 1e9 / wallSeconds
                     : 0.0);
    if (!phasesNs.empty()) {
        std::uint64_t total = 0;
        for (const auto &[name, ns] : phasesNs)
            total += ns;
        std::fprintf(out, "phases:\n");
        for (const auto &[name, ns] : phasesNs) {
            std::fprintf(out, "  %-10s %10.3f ms  %5.1f%%\n",
                         name.c_str(), static_cast<double>(ns) / 1e6,
                         total ? 100.0 * static_cast<double>(ns) /
                                     static_cast<double>(total)
                               : 0.0);
        }
    }
    if (!shards.empty()) {
        std::fprintf(out,
                     "shards (%zu, %llu windows):\n", shards.size(),
                     static_cast<unsigned long long>(windows));
        for (std::size_t s = 0; s < shards.size(); ++s) {
            const Shard &sh = shards[s];
            const double denom =
                static_cast<double>(sh.busyNs + sh.stallNs);
            std::fprintf(
                out,
                "  shard %-2zu busy %10.3f ms (%5.1f%%)  stall "
                "%10.3f ms (%5.1f%%)  events %llu\n",
                s, static_cast<double>(sh.busyNs) / 1e6,
                denom > 0 ? 100.0 * static_cast<double>(sh.busyNs) / denom
                          : 0.0,
                static_cast<double>(sh.stallNs) / 1e6,
                denom > 0
                    ? 100.0 * static_cast<double>(sh.stallNs) / denom
                    : 0.0,
                static_cast<unsigned long long>(sh.events));
        }
    }
    if (!counters.empty()) {
        std::fprintf(out, "counters:\n");
        for (const auto &[name, v] : counters)
            std::fprintf(out, "  %-36s %llu\n", name.c_str(),
                         static_cast<unsigned long long>(v));
    }
    if (!gauges.empty()) {
        std::fprintf(out, "gauges:\n");
        for (const auto &[name, v] : gauges)
            std::fprintf(out, "  %-36s %.6g\n", name.c_str(), v);
    }
    for (const auto &[name, buckets] : histograms) {
        std::uint64_t n = 0;
        for (const std::uint64_t b : buckets)
            n += b;
        std::fprintf(out, "histogram %s (%llu samples):", name.c_str(),
                     static_cast<unsigned long long>(n));
        for (std::size_t b = 0; b < buckets.size(); ++b)
            if (buckets[b])
                std::fprintf(out, " [2^%zu)=%llu", b,
                             static_cast<unsigned long long>(buckets[b]));
        std::fprintf(out, "\n");
    }
    std::fflush(out);
}

} // namespace mempod
