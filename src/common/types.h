/**
 * @file
 * Fundamental scalar types shared across the MemPod simulator.
 *
 * All simulated time is kept in integer picoseconds so that channels
 * with different clock periods (1 GHz HBM, 800 MHz DDR4-1600,
 * 1.2 GHz DDR4-2400, 4 GHz overclocked HBM) share one exact timeline.
 */
#pragma once

#include <cstdint>

namespace mempod {

/** Physical byte address in the flat (fast + slow) address space. */
using Addr = std::uint64_t;

/** Simulated time in picoseconds. */
using TimePs = std::uint64_t;

/** A clock-domain-local cycle count. */
using Cycle = std::uint64_t;

/** Global page number (address / kPageBytes). */
using PageId = std::uint64_t;

/** Global 64B line number (address / kLineBytes). */
using LineId = std::uint64_t;

/** Sentinel for "no time scheduled". */
inline constexpr TimePs kTimeNever = ~TimePs{0};

/** Data transfer granularity of one memory request (one LLC line). */
inline constexpr std::uint64_t kLineBytes = 64;

/** Migration granularity: one DRAM page (the paper uses 2 KB pages). */
inline constexpr std::uint64_t kPageBytes = 2048;

/** Number of line-sized requests needed to move one page. */
inline constexpr std::uint64_t kLinesPerPage = kPageBytes / kLineBytes;

/** Convenience literals for capacities. */
inline constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}
inline constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}
inline constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** Time literals (picoseconds base). */
inline constexpr TimePs operator""_ps(unsigned long long v) { return v; }
inline constexpr TimePs operator""_ns(unsigned long long v)
{
    return v * 1000;
}
inline constexpr TimePs operator""_us(unsigned long long v)
{
    return v * 1000 * 1000;
}
inline constexpr TimePs operator""_ms(unsigned long long v)
{
    return v * 1000ull * 1000 * 1000;
}

/** Kind of a memory access. */
enum class AccessType : std::uint8_t { kRead, kWrite };

/** Which technology tier an address belongs to. */
enum class MemTier : std::uint8_t { kFast, kSlow };

} // namespace mempod
