/**
 * @file
 * Host-side self-profiling for the simulator: where does the *host's*
 * time go, as opposed to the simulated system's (common/metrics.h).
 *
 * A PerfMonitor accumulates wall-clock phase times (RAII PerfScope on
 * a monotonic clock), named host counters/gauges/histograms, and
 * per-shard busy/stall lanes for the PDES executor. Everything here is
 * strictly *outside* deterministic simulation state: host time is only
 * ever read, never fed back into event scheduling, so enabling the
 * monitor cannot change a single output byte at any --shards/--jobs
 * value (proven by pdes_determinism_test). When no monitor is attached
 * the instrumented layers pay exactly one branch on a null pointer.
 *
 * Thread discipline: the monitor itself is not locked. The coordinator
 * thread owns the maps; worker threads touch only their own shard lane
 * (resized once, before workers observe the monitor), and every lane
 * hand-off in sim/parallel.cc flows through the executor's mutex, so
 * the accesses are ordered without atomics.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace mempod {

/** Monotonic host clock, nanoseconds since an arbitrary epoch. */
std::uint64_t perfNowNs();

/** Peak resident set size of this process, in KiB (0 if unknown). */
std::uint64_t perfMaxRssKib();

/** Host identity stamped into bench/perf artifacts. */
struct PerfHostInfo
{
    std::string sysname; //!< uname sysname, e.g. "Linux"
    std::string machine; //!< uname machine, e.g. "x86_64"
    unsigned cpus = 0;   //!< hardware_concurrency
};

PerfHostInfo perfHostInfo();

/**
 * Snapshot of one run's host profile, assembled by
 * Simulation::collect after the run drains. Plain data so it can be
 * copied into JobResult and serialized by StatsWriter::perfToJson.
 */
struct PerfReport
{
    double wallSeconds = 0.0;        //!< monitor lifetime (all phases)
    std::uint64_t maxRssKib = 0;     //!< process peak RSS
    std::uint64_t simTimePs = 0;     //!< simulated time covered
    std::uint64_t eventsExecuted = 0;
    double eventsPerSecond = 0.0;    //!< events / run-phase seconds
    std::uint64_t windows = 0;       //!< PDES windows (0 when serial)

    /** Phase wall times, in first-recorded order (setup/run/report). */
    std::vector<std::pair<std::string, std::uint64_t>> phasesNs;

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    /** Log2 bucket arrays; bucket b>=1 covers [2^(b-1), 2^b). */
    std::map<std::string, std::vector<std::uint64_t>> histograms;

    /** One PDES worker shard's host accounting. */
    struct Shard
    {
        std::uint64_t busyNs = 0;  //!< running lane events
        std::uint64_t stallNs = 0; //!< parked at the window barrier
        std::uint64_t events = 0;  //!< lane events it executed
    };
    std::vector<Shard> shards;

    /** Fold another report into this one (bench aggregation). */
    void merge(const PerfReport &other);

    /** The one-page `--perf` host-profile table (stderr-friendly). */
    void printTable(std::FILE *out, const std::string &title) const;
};

/** Accumulator behind the PerfScope/instrumentation hooks. */
class PerfMonitor
{
  public:
    PerfMonitor() : startNs_(perfNowNs()) {}

    PerfMonitor(const PerfMonitor &) = delete;
    PerfMonitor &operator=(const PerfMonitor &) = delete;

    std::uint64_t startNs() const { return startNs_; }

    void phaseAddNs(const std::string &phase, std::uint64_t ns);
    std::uint64_t phaseNs(const std::string &phase) const;

    void
    counterAdd(const std::string &name, std::uint64_t delta)
    {
        counters_[name] += delta;
    }

    void
    counterMax(const std::string &name, std::uint64_t v)
    {
        std::uint64_t &slot = counters_[name];
        if (v > slot)
            slot = v;
    }

    void gaugeSet(const std::string &name, double v) { gauges_[name] = v; }

    /**
     * Named histogram; the returned reference is stable, so hot paths
     * resolve it once and sample through the pointer thereafter.
     */
    Log2Histogram &histogram(const std::string &name)
    {
        return histograms_[name];
    }

    /** Size the per-shard lanes; call before workers see the monitor. */
    void resizeShards(std::size_t n) { shards_.resize(n); }
    PerfReport::Shard &shard(std::size_t s) { return shards_[s]; }
    std::size_t numShards() const { return shards_.size(); }

    /**
     * Rate-limited heartbeat: true when at least `interval_ns` of wall
     * time passed since the last true return (or since construction).
     */
    bool heartbeatDue(std::uint64_t interval_ns);

    /**
     * Assemble the report: every accumulator plus the derived rates.
     * `sim_time_ps`/`events` come from the simulation; events/s uses
     * the "run" phase when recorded, total wall otherwise.
     */
    PerfReport report(std::uint64_t sim_time_ps,
                      std::uint64_t events) const;

  private:
    std::uint64_t startNs_;
    std::uint64_t lastHeartbeatNs_ = 0;
    /** Insertion-ordered so the report prints setup/run/report. */
    std::vector<std::pair<std::string, std::uint64_t>> phases_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Log2Histogram> histograms_;
    std::vector<PerfReport::Shard> shards_;
};

/**
 * RAII wall-clock phase scope. A null monitor makes construction and
 * destruction a single branch each — the disabled cost everywhere.
 */
class PerfScope
{
  public:
    PerfScope(PerfMonitor *pm, const char *phase)
        : pm_(pm), phase_(phase), t0_(pm ? perfNowNs() : 0)
    {
    }

    ~PerfScope() { close(); }

    /** End the phase before scope exit (idempotent). */
    void
    close()
    {
        if (pm_) {
            pm_->phaseAddNs(phase_, perfNowNs() - t0_);
            pm_ = nullptr;
        }
    }

    PerfScope(const PerfScope &) = delete;
    PerfScope &operator=(const PerfScope &) = delete;

  private:
    PerfMonitor *pm_;
    const char *phase_;
    std::uint64_t t0_;
};

} // namespace mempod
