/**
 * @file
 * Sampling event tracer: records causally-linked spans through the
 * whole stack (demand requests, migration lifecycles, metadata fills,
 * refreshes) and exports them as Chrome trace-event JSON loadable in
 * Perfetto or chrome://tracing.
 *
 * Design constraints:
 *  - Off by default and reachable only through an EventQueue pointer,
 *    so the disabled cost on the hot path is one branch, never an
 *    allocation.
 *  - Deterministic: demand sampling is a pure hash of (seed, record
 *    index), ids derive from record indices and an internal counter,
 *    and the export renders timestamps with integer math — so the
 *    trace bytes are identical at any --jobs worker count.
 *  - Demand and migration spans use async ("b"/"e") phases keyed by
 *    (cat, id): request lifetimes interleave freely, which the
 *    stack-nested "B"/"E" phases cannot express. Serialized per-track
 *    work (channel refresh) uses "B"/"E".
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "common/types.h"

namespace mempod {

/** Tracing knobs; carried inside SimConfig. */
struct TracerConfig
{
    bool enabled = false;
    /** Trace 1 in N demand requests (1 = every request). */
    std::uint64_t sampleEvery = 64;
    /** Sampling seed; harnesses pass the trace-generator seed. */
    std::uint64_t seed = 0;
};

/** Helper building the "args" JSON object of one trace event. */
class TraceArgs
{
  public:
    TraceArgs &add(const char *key, std::uint64_t v);
    TraceArgs &add(const char *key, const char *v);

    /** The finished object, e.g. {"core":3,"write":0}. */
    std::string str() const { return body_.empty() ? "" : "{" + body_ + "}"; }

  private:
    std::string body_;
};

/** Records spans; one instance per Simulation. */
class Tracer
{
  public:
    /**
     * `staging` instances buffer one execution domain's records during
     * a sharded run; the master tracer absorb()s them post-run in
     * canonical event-key order, reproducing the serial byte stream.
     */
    explicit Tracer(const TracerConfig &cfg, bool staging = false);

    /**
     * Get (or create) the track with `name`; returns its tid. Tracks
     * render as named threads in Perfetto (thread_name metadata).
     */
    std::uint32_t track(const std::string &name);

    /** Deterministic 1-in-N choice for trace record `record_idx`. */
    bool sampleDemand(std::uint64_t record_idx) const;

    /**
     * Fresh id for a migration flow. Offset away from demand ids
     * (which are record_idx + 1) so "req" and "mig" spans never
     * collide even in tools that ignore the category.
     */
    std::uint64_t newFlowId() { return kFlowIdBase + nextFlow_++; }

    // -- Stack-nested duration span (serialized per track) --
    void durBegin(std::uint32_t tid, TimePs ts, const char *name,
                  std::string args = {});
    void durEnd(std::uint32_t tid, TimePs ts);

    /** Thread-scoped instant marker. */
    void instant(std::uint32_t tid, TimePs ts, const char *name,
                 std::string args = {});

    // -- Async span keyed by (cat, id); may interleave/nest --
    void asyncBegin(std::uint32_t tid, TimePs ts, const char *cat,
                    std::uint64_t id, const char *name,
                    std::string args = {});
    void asyncEnd(std::uint32_t tid, TimePs ts, const char *cat,
                  std::uint64_t id, const char *name,
                  std::string args = {});

    // -- Flow arrows (start -> step... -> end) keyed by (cat, id) --
    void flowStart(std::uint32_t tid, TimePs ts, const char *cat,
                   std::uint64_t id, const char *name);
    void flowStep(std::uint32_t tid, TimePs ts, const char *cat,
                  std::uint64_t id, const char *name);
    void flowEnd(std::uint32_t tid, TimePs ts, const char *cat,
                 std::uint64_t id, const char *name);

    std::size_t eventCount() const { return events_.size(); }
    std::uint64_t sampleEvery() const { return cfg_.sampleEvery; }

    /**
     * Canonical key of the event whose callback is now running; the
     * EventQueue stamps it before each dispatch so every record can be
     * attributed to its emitting event. Needed only to merge staged
     * buffers, but recorded unconditionally (three stores).
     */
    void setEventKey(const EventKey &key) { curKey_ = key; }

    /** Whether this instance is a per-domain staging buffer. */
    bool staging() const { return staging_; }

    /**
     * Merge staged per-domain buffers into this (master) tracer.
     * Records are interleaved by (event key, buffer, intra-buffer
     * order) — exactly the order the serial run appended them in —
     * and track ids are re-interned on first touch, reproducing the
     * serial track-id assignment and metadata order byte for byte.
     */
    void absorb(const std::vector<Tracer *> &staged);

    /**
     * Chrome trace-event JSON: {"displayTimeUnit":"ns",
     * "traceEvents":[...]} with one event per line. Timestamps are
     * microseconds rendered from picoseconds by integer division, so
     * the bytes are platform- and locale-independent.
     */
    std::string toJson() const;

  private:
    struct Event
    {
        TimePs ts;
        char ph;
        std::uint32_t tid;
        std::uint64_t id;   //!< meaningful for async/flow phases
        const char *name;   //!< static string; never freed
        const char *cat;    //!< static string or nullptr
        std::string args;   //!< preformatted JSON object or empty
        EventKey key;       //!< emitting event; drives absorb() merge
    };

    static constexpr std::uint64_t kFlowIdBase = 1ull << 32;

    TracerConfig cfg_;
    bool staging_ = false;
    std::map<std::string, std::uint32_t> tracks_;
    std::vector<std::string> trackNames_; //!< index = tid
    std::vector<Event> events_;
    std::uint64_t nextFlow_ = 0;
    EventKey curKey_{};
};

} // namespace mempod
