#include "common/log.h"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <vector>

namespace mempod {

namespace {

/**
 * Read/written across BatchRunner worker threads (harness main thread
 * toggles it, workers consult it), so it must be atomic; relaxed order
 * suffices for a quiet flag.
 */
std::atomic<bool> g_quiet{false};

/** Serializes warn/inform stderr writes so multi-job output from
 *  concurrent workers cannot interleave mid-line. */
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

void
setQuietLogging(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

bool
quietLogging()
{
    return g_quiet.load(std::memory_order_relaxed);
}

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (quietLogging())
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (quietLogging())
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace mempod
