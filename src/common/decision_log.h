/**
 * @file
 * Simulated-time migration decision ledger. Every migration decision a
 * manager makes — regardless of mechanism — is recorded here at the
 * moment the policy fires: candidate page, victim, the tracker count
 * that justified it, the predicted benefit, and the epoch/pod context.
 * Outcomes (committed / aborted) are folded in when the migration
 * engine resolves the swap, and a one-epoch watch window after each
 * commit accumulates the *realized* near-tier hits the migrated page
 * actually received, so predicted and delivered benefit can be
 * compared per decision.
 *
 * Determinism contract: all mutations happen from manager callbacks,
 * which the PDES kernel executes in the coordinator domain in
 * canonical order. Every field is derived from simulated time and
 * policy state only, so the ledger — and its JSONL export — is
 * byte-identical at any `--jobs`/`--shards` setting.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace mempod {

/** Append-only record of migration decisions and their outcomes. */
class DecisionLog
{
  public:
    /** What eventually happened to a recorded decision. */
    enum class Outcome : std::uint8_t
    {
        kPending,   //!< swap still queued or in flight at end of run
        kCompleted, //!< engine committed the swap
        kAborted,   //!< dropped (interval expiry / queue clear)
    };

    /** Pod id used by the centralized baselines (exported as null). */
    static constexpr std::uint32_t kNoPod = 0xffffffffu;

    /** Sentinel decision id when recording is disabled. */
    static constexpr std::uint64_t kNoId = ~std::uint64_t{0};

    /** One migration decision, in the order the policy made them. */
    struct Record
    {
        std::uint64_t seq = 0;    //!< 0-based decision index
        TimePs timePs = 0;        //!< simulated time of the decision
        std::uint64_t epoch = 0;  //!< timePs / epochPs
        std::uint32_t pod = kNoPod;
        std::uint64_t page = 0;   //!< migrating-in page (pod-local for
                                  //!< MemPod, global page/line otherwise)
        std::uint64_t victim = 0; //!< page evicted from the fast slot
        std::uint32_t trackerCount = 0; //!< MEA/counter value at decision
        double predictedBenefitNs = 0;  //!< trackerCount x per-touch gap
        Outcome outcome = Outcome::kPending;
        TimePs commitPs = 0;      //!< commit time (0 unless completed)
        /** Committed, then evicted again within two epochs. */
        bool pingPong = false;
        /** Near-tier demand hits within one epoch after the commit. */
        std::uint64_t realizedNearHits = 0;
    };

    /**
     * @param epochPs decision-epoch length; the MemPod interval is used
     *        uniformly for all mechanisms so epochs line up across runs
     * @param benefitPerTouchNs fast-vs-slow access-latency gap, the
     *        per-touch payoff a migration is predicted to deliver
     */
    DecisionLog(TimePs epochPs, double benefitPerTouchNs);

    /** Record a decision at the moment the policy fires. */
    std::uint64_t record(std::uint32_t pod, std::uint64_t page,
                         std::uint64_t victim,
                         std::uint32_t trackerCount, TimePs now);

    /** The engine committed decision `id`'s swap at `now`. */
    void commit(std::uint64_t id, TimePs now);

    /** Decision `id`'s swap was dropped before starting. */
    void abort(std::uint64_t id, TimePs now);

    /**
     * A demand touched (`pod`, `page`); credits realized near-tier
     * hits to the decision that migrated the page in, while its
     * one-epoch watch window is open. One hash probe per demand.
     */
    void noteAccess(std::uint32_t pod, std::uint64_t page,
                    bool nearTier, TimePs now);

    const std::vector<Record> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    std::uint64_t committedCount() const { return committed_; }
    std::uint64_t abortedCount() const { return aborted_; }
    std::uint64_t pingPongCount() const { return pingPongs_; }
    TimePs epochPs() const { return epochPs_; }
    double benefitPerTouchNs() const { return benefitPerTouchNs_; }

    /** Stable name for an outcome, as exported in the JSONL. */
    static const char *outcomeName(Outcome o);

  private:
    using Key = std::pair<std::uint32_t, std::uint64_t>;

    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            // Fibonacci-mix the page and fold in the pod; exactness is
            // carried by pair equality, this only spreads buckets.
            return static_cast<std::size_t>(
                (k.second + k.first) * 0x9e3779b97f4a7c15ull);
        }
    };

    /** Realized-benefit watch window opened by a commit. */
    struct Watch
    {
        std::uint64_t seq = 0;
        TimePs deadline = 0;
    };

    TimePs epochPs_;
    double benefitPerTouchNs_;
    std::vector<Record> records_;
    /** (pod, page) -> open realized-hits window. */
    std::unordered_map<Key, Watch, KeyHash> watch_;
    /** (pod, page) -> seq of the commit that migrated it in. */
    std::unordered_map<Key, std::uint64_t, KeyHash> migratedIn_;
    std::uint64_t committed_ = 0;
    std::uint64_t aborted_ = 0;
    std::uint64_t pingPongs_ = 0;
};

} // namespace mempod
