/**
 * @file
 * Unified metrics registry (Ramulator Stat.h / gem5 stats idiom): every
 * component registers its typed instruments — counters, gauges,
 * ScalarStat, RatioStat, Log2Histogram — under a hierarchical
 * dot-separated name ("pod3.migration.bytes_moved",
 * "mem.fast0.row_hits") with a one-line description. The registry can
 * be snapshotted at any simulated time; snapshots support delta
 * arithmetic, which the EventQueue-driven IntervalSampler uses to
 * record a per-run time-series of every monotonic metric.
 *
 * Instruments either live in the registry (Counter) or stay owned by
 * their component and are *attached* by pointer/callback; attached
 * sources must outlive every snapshot() call. Registration order does
 * not matter: snapshots are name-ordered, so any export derived from
 * them is deterministic.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "common/stats.h"
#include "common/types.h"

namespace mempod {

/** Monotonic event count owned by the registry. */
class Counter
{
  public:
    void inc() { ++value_; }
    void add(std::uint64_t n) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Instrument categories a registry entry can hold. */
enum class MetricKind : std::uint8_t
{
    kCounter,   //!< monotonic uint64
    kGauge,     //!< point-in-time double (derived / level metric)
    kScalar,    //!< ScalarStat moments
    kRatio,     //!< RatioStat hits/total
    kHistogram, //!< Log2Histogram buckets
};

const char *metricKindName(MetricKind kind);

/** One metric's value as captured by a snapshot. */
struct MetricValue
{
    MetricKind kind = MetricKind::kCounter;

    std::uint64_t count = 0; //!< counter value / sample count / total
    std::uint64_t hits = 0;  //!< ratio numerator
    double real = 0.0;       //!< gauge value / scalar sum
    double min = 0.0;        //!< scalar min
    double max = 0.0;        //!< scalar max
    double mean = 0.0;       //!< scalar mean
    double stddev = 0.0;     //!< scalar population stddev
    std::vector<std::uint64_t> buckets; //!< histogram buckets

    /** Ratio hits/total, 0 when empty. */
    double
    rate() const
    {
        return count ? static_cast<double>(hits) / count : 0.0;
    }
};

/** Name-ordered capture of every registered metric at one time. */
struct MetricSnapshot
{
    TimePs simTimePs = 0;
    std::map<std::string, MetricValue> values;

    bool has(const std::string &name) const;

    /** Counter/count field of `name`; panics if unregistered. */
    std::uint64_t u64(const std::string &name) const;

    /** Gauge/real field of `name`; panics if unregistered. */
    double real(const std::string &name) const;

    const MetricValue &at(const std::string &name) const;
};

/**
 * Difference `later - earlier` for the monotonic fields (counter
 * values, ratio hits/totals, scalar counts/sums, histogram counts and
 * buckets); gauges and scalar min/max/mean/stddev keep their `later`
 * value. Both snapshots must cover the same metric set.
 */
MetricSnapshot metricDelta(const MetricSnapshot &earlier,
                           const MetricSnapshot &later);

/** The per-simulation instrument registry. */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Create (and own) a counter. Panics on a duplicate name. */
    Counter &counter(const std::string &name, const std::string &desc);

    /** Attach an external monotonic uint64 (e.g. a stats field). */
    void attachCounter(const std::string &name, const std::string &desc,
                       const std::uint64_t *source);

    /** Attach a computed monotonic count (e.g. a sum over channels). */
    void addCounterFn(const std::string &name, const std::string &desc,
                      std::function<std::uint64_t()> fn);

    /** Attach a point-in-time derived value. */
    void addGauge(const std::string &name, const std::string &desc,
                  std::function<double()> fn);

    void attachScalar(const std::string &name, const std::string &desc,
                      const ScalarStat *source);

    void attachRatio(const std::string &name, const std::string &desc,
                     const RatioStat *source);

    void attachHistogram(const std::string &name, const std::string &desc,
                         const Log2Histogram *source);

    std::size_t size() const { return instruments_.size(); }
    bool contains(const std::string &name) const;

    /** Registered description; panics if unregistered. */
    const std::string &description(const std::string &name) const;

    MetricKind kind(const std::string &name) const;

    /** Names in lexicographic order (the export order). */
    std::vector<std::string> names() const;

    /** Capture every instrument's current value at time `now`. */
    MetricSnapshot snapshot(TimePs now) const;

  private:
    struct Instrument
    {
        MetricKind kind;
        std::string desc;
        std::unique_ptr<Counter> owned;          //!< kCounter (owned)
        const std::uint64_t *u64Source = nullptr; //!< kCounter (attached)
        std::function<std::uint64_t()> u64Fn;     //!< kCounter (computed)
        std::function<double()> gaugeFn;          //!< kGauge
        const ScalarStat *scalar = nullptr;
        const RatioStat *ratio = nullptr;
        const Log2Histogram *histogram = nullptr;
    };

    Instrument &emplace(const std::string &name, MetricKind kind,
                        const std::string &desc);

    std::map<std::string, Instrument> instruments_;
};

/** One sampled interval: deltas over [startPs, endPs). */
struct IntervalRecord
{
    std::uint64_t index = 0;
    TimePs startPs = 0;
    TimePs endPs = 0;
    MetricSnapshot delta;
};

/**
 * Snapshots the registry every `period` of *simulated* time off the
 * EventQueue and records per-interval deltas. Sampling events read
 * state only, so arming a sampler never changes simulation behavior —
 * only the event count.
 */
class IntervalSampler
{
  public:
    IntervalSampler(EventQueue &eq, MetricRegistry &registry,
                    TimePs period);

    /** Arm the recurring timer; first tick at now + period. */
    void start();

    TimePs period() const { return period_; }

    /** Completed intervals so far. */
    const std::vector<IntervalRecord> &records() const { return records_; }

    /**
     * Capture the trailing partial interval [last tick, now), if any
     * time elapsed since the last tick. Call once after the run drains.
     */
    void finalize(TimePs now);

  private:
    void onTick();

    EventQueue &eq_;
    MetricRegistry &registry_;
    TimePs period_;
    PeriodicTimer timer_;
    bool started_ = false;
    MetricSnapshot last_;
    std::vector<IntervalRecord> records_;
};

} // namespace mempod
