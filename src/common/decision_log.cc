/**
 * @file
 * DecisionLog implementation: append-only record list plus two small
 * hash maps — the open realized-hits watch windows and the
 * migrated-in index used for ping-pong detection.
 */
#include "common/decision_log.h"

#include "common/log.h"

namespace mempod {

DecisionLog::DecisionLog(TimePs epochPs, double benefitPerTouchNs)
    : epochPs_(epochPs), benefitPerTouchNs_(benefitPerTouchNs)
{
    MEMPOD_ASSERT(epochPs_ > 0,
                  "DecisionLog epoch length must be positive");
}

std::uint64_t
DecisionLog::record(std::uint32_t pod, std::uint64_t page,
                    std::uint64_t victim, std::uint32_t trackerCount,
                    TimePs now)
{
    Record r;
    r.seq = records_.size();
    r.timePs = now;
    r.epoch = now / epochPs_;
    r.pod = pod;
    r.page = page;
    r.victim = victim;
    r.trackerCount = trackerCount;
    r.predictedBenefitNs = trackerCount * benefitPerTouchNs_;
    records_.push_back(r);
    return r.seq;
}

void
DecisionLog::commit(std::uint64_t id, TimePs now)
{
    MEMPOD_ASSERT(id < records_.size(),
                  "DecisionLog::commit: bad id %llu",
                  static_cast<unsigned long long>(id));
    Record &r = records_[id];
    r.outcome = Outcome::kCompleted;
    r.commitPs = now;
    ++committed_;

    // Ping-pong: the page we just evicted was itself migrated in
    // recently. Mark the *earlier* decision — its benefit window was
    // cut short — and retire its migrated-in entry.
    const Key victimKey{r.pod, r.victim};
    if (const auto it = migratedIn_.find(victimKey);
        it != migratedIn_.end()) {
        Record &earlier = records_[it->second];
        if (now - earlier.commitPs <= 2 * epochPs_ && !earlier.pingPong) {
            earlier.pingPong = true;
            ++pingPongs_;
        }
        migratedIn_.erase(it);
    }

    const Key key{r.pod, r.page};
    migratedIn_[key] = r.seq;
    watch_[key] = Watch{r.seq, now + epochPs_};
}

void
DecisionLog::abort(std::uint64_t id, TimePs now)
{
    MEMPOD_ASSERT(id < records_.size(),
                  "DecisionLog::abort: bad id %llu",
                  static_cast<unsigned long long>(id));
    (void)now;
    Record &r = records_[id];
    r.outcome = Outcome::kAborted;
    ++aborted_;
}

void
DecisionLog::noteAccess(std::uint32_t pod, std::uint64_t page,
                        bool nearTier, TimePs now)
{
    const auto it = watch_.find(Key{pod, page});
    if (it == watch_.end())
        return;
    if (now >= it->second.deadline) {
        watch_.erase(it); // lazy expiry: window closed
        return;
    }
    if (nearTier)
        ++records_[it->second.seq].realizedNearHits;
}

const char *
DecisionLog::outcomeName(Outcome o)
{
    switch (o) {
    case Outcome::kPending:
        return "pending";
    case Outcome::kCompleted:
        return "completed";
    case Outcome::kAborted:
        return "aborted";
    }
    return "unknown";
}

} // namespace mempod
