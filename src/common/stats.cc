#include "common/stats.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace mempod {

double
ScalarStat::variance() const
{
    return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double
ScalarStat::sampleVariance() const
{
    return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
ScalarStat::stddev() const
{
    return std::sqrt(variance());
}

void
Log2Histogram::sample(std::uint64_t v)
{
    const std::size_t bucket = v == 0 ? 0 : std::bit_width(v);
    if (bucket >= buckets_.size())
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
    ++count_;
}

std::uint64_t
Log2Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(count_);
    double seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        if (buckets_[b] == 0)
            continue;
        const double in_bucket = static_cast<double>(buckets_[b]);
        if (seen + in_bucket >= target) {
            // Bucket 0 holds only the value 0; bucket b >= 1 covers
            // [2^(b-1), 2^b). Interpolate linearly within that range
            // by the rank position inside the bucket.
            if (b == 0)
                return 0;
            const std::uint64_t lo = 1ull << (b - 1);
            const std::uint64_t span = 1ull << (b - 1); // hi - lo
            const double frac = (target - seen) / in_bucket;
            std::uint64_t v =
                lo + static_cast<std::uint64_t>(
                         frac * static_cast<double>(span));
            const std::uint64_t hi_inclusive = (1ull << b) - 1;
            if (v > hi_inclusive)
                v = hi_inclusive;
            return v;
        }
        seen += in_bucket;
    }
    return buckets_.empty() ? 0 : (1ull << (buckets_.size() - 1));
}

std::string
Log2Histogram::toString() const
{
    std::string out;
    char buf[64];
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        if (buckets_[b] == 0)
            continue;
        const std::uint64_t lo = b == 0 ? 0 : 1ull << (b - 1);
        std::snprintf(buf, sizeof(buf), "[%llu..): %llu  ",
                      static_cast<unsigned long long>(lo),
                      static_cast<unsigned long long>(buckets_[b]));
        out += buf;
    }
    return out;
}

} // namespace mempod
