#include "common/stats.h"

#include <bit>
#include <cstdio>

namespace mempod {

void
Log2Histogram::sample(std::uint64_t v)
{
    const std::size_t bucket = v == 0 ? 0 : std::bit_width(v);
    if (bucket >= buckets_.size())
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
    ++count_;
}

std::uint64_t
Log2Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const auto target = static_cast<std::uint64_t>(q * count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen >= target)
            return b == 0 ? 0 : (1ull << b) - 1; // bucket upper bound
    }
    return buckets_.empty() ? 0 : (1ull << (buckets_.size() - 1));
}

std::string
Log2Histogram::toString() const
{
    std::string out;
    char buf[64];
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        if (buckets_[b] == 0)
            continue;
        const std::uint64_t lo = b == 0 ? 0 : 1ull << (b - 1);
        std::snprintf(buf, sizeof(buf), "[%llu..): %llu  ",
                      static_cast<unsigned long long>(lo),
                      static_cast<unsigned long long>(buckets_[b]));
        out += buf;
    }
    return out;
}

} // namespace mempod
