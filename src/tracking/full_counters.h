/**
 * @file
 * The Full Counters (FC) baseline tracker: one saturating access
 * counter per memory page, as used by HMA and by the Section 3
 * accuracy study. Exact counting, but linear storage (the paper's
 * 1+8 GB system needs 4.5 M counters = 9 MB at 16 bits) and an
 * expensive sort at every epoch.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tracking/tracker.h"

namespace mempod {

/** Dense per-page counters with touched-set tracking for cheap topN. */
class FullCounters : public ActivityTracker
{
  public:
    /**
     * @param num_ids Total pages tracked (one counter each).
     * @param counter_bits Saturating counter width (paper: 16).
     */
    explicit FullCounters(std::uint64_t num_ids,
                          std::uint32_t counter_bits = 16);

    void touch(std::uint64_t id) override;
    void reset() override;

    /** All touched pages, count desc (exact ranking). */
    std::vector<TrackedEntry> snapshot() const override;

    /** The n most-accessed pages of the interval. */
    std::vector<TrackedEntry> topN(std::size_t n) const;

    std::uint64_t count(std::uint64_t id) const;
    std::uint64_t touchedCount() const { return touched_.size(); }

    std::uint64_t storageBits() const override
    {
        return numIds_ * counterBits_;
    }

    std::string name() const override { return "FullCounters"; }

  private:
    std::uint64_t numIds_;
    std::uint32_t counterBits_;
    std::uint32_t counterMax_;
    std::vector<std::uint16_t> counters_;
    std::vector<std::uint64_t> touched_; //!< ids with nonzero count
};

} // namespace mempod
