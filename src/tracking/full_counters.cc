#include "tracking/full_counters.h"

#include <algorithm>

#include "common/log.h"

namespace mempod {

FullCounters::FullCounters(std::uint64_t num_ids,
                           std::uint32_t counter_bits)
    : numIds_(num_ids),
      counterBits_(counter_bits),
      counterMax_(counter_bits >= 16
                      ? 0xFFFFu
                      : (std::uint32_t{1} << counter_bits) - 1),
      counters_(num_ids, 0)
{
    MEMPOD_ASSERT(counter_bits >= 1 && counter_bits <= 16,
                  "FC counter width %u out of range", counter_bits);
}

void
FullCounters::touch(std::uint64_t id)
{
    MEMPOD_ASSERT(id < numIds_, "page id %llu out of range",
                  static_cast<unsigned long long>(id));
    auto &c = counters_[id];
    if (c == 0)
        touched_.push_back(id);
    if (c < counterMax_)
        ++c;
}

void
FullCounters::reset()
{
    // Zero only the touched counters: resets stay O(working set)
    // instead of O(memory capacity).
    for (std::uint64_t id : touched_)
        counters_[id] = 0;
    touched_.clear();
}

std::vector<TrackedEntry>
FullCounters::snapshot() const
{
    std::vector<TrackedEntry> out;
    out.reserve(touched_.size());
    for (std::uint64_t id : touched_)
        out.push_back(TrackedEntry{id, counters_[id]});
    std::sort(out.begin(), out.end(),
              [](const TrackedEntry &a, const TrackedEntry &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.id < b.id;
              });
    return out;
}

std::vector<TrackedEntry>
FullCounters::topN(std::size_t n) const
{
    std::vector<TrackedEntry> all;
    all.reserve(touched_.size());
    for (std::uint64_t id : touched_)
        all.push_back(TrackedEntry{id, counters_[id]});
    auto cmp = [](const TrackedEntry &a, const TrackedEntry &b) {
        if (a.count != b.count)
            return a.count > b.count;
        return a.id < b.id;
    };
    if (n < all.size()) {
        std::nth_element(all.begin(),
                         all.begin() + static_cast<std::ptrdiff_t>(n),
                         all.end(), cmp);
        all.resize(n);
    }
    std::sort(all.begin(), all.end(), cmp);
    return all;
}

std::uint64_t
FullCounters::count(std::uint64_t id) const
{
    MEMPOD_ASSERT(id < numIds_, "page id out of range");
    return counters_[id];
}

} // namespace mempod
