#include "tracking/mea.h"

#include <algorithm>

#include "common/log.h"

namespace mempod {

MeaTracker::MeaTracker(std::uint32_t entries, std::uint32_t counter_bits,
                       std::uint32_t id_bits)
    : entries_(entries),
      counterBits_(counter_bits),
      counterMax_(counter_bits >= 32
                      ? ~std::uint32_t{0}
                      : (std::uint32_t{1} << counter_bits) - 1),
      idBits_(id_bits)
{
    MEMPOD_ASSERT(entries > 0, "MEA needs at least one entry");
    MEMPOD_ASSERT(counter_bits >= 1 && counter_bits <= 32,
                  "counter width %u out of range", counter_bits);
    map_.reserve(entries * 2);
}

void
MeaTracker::touch(std::uint64_t id)
{
    auto it = map_.find(id);
    if (it != map_.end()) {
        // Operation (a): saturating increment.
        if (it->second < counterMax_)
            ++it->second;
        return;
    }
    if (map_.size() < entries_) {
        // Operation (b): claim a free entry.
        map_.emplace(id, 1);
        return;
    }
    // Operation (c): decrement all counters, evict zeros. In hardware
    // this is one cycle of parallel subtract-and-compare.
    ++sweeps_;
    for (auto cur = map_.begin(); cur != map_.end();) {
        if (--cur->second == 0) {
            cur = map_.erase(cur);
            ++evictions_;
        } else {
            ++cur;
        }
    }
}

void
MeaTracker::reset()
{
    ++resets_;
    map_.clear();
}

std::vector<TrackedEntry>
MeaTracker::snapshot() const
{
    std::vector<TrackedEntry> out;
    out.reserve(map_.size());
    for (const auto &[id, count] : map_)
        out.push_back(TrackedEntry{id, count});
    std::sort(out.begin(), out.end(),
              [](const TrackedEntry &a, const TrackedEntry &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.id < b.id;
              });
    return out;
}

std::vector<std::uint64_t>
MeaTracker::trackedIds() const
{
    std::vector<std::uint64_t> out;
    out.reserve(map_.size());
    for (const auto &[id, count] : map_)
        out.push_back(id);
    return out;
}

std::uint64_t
MeaTracker::storageBits() const
{
    return static_cast<std::uint64_t>(entries_) * (idBits_ + counterBits_);
}

} // namespace mempod
