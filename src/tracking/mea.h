/**
 * @file
 * The Majority Element Algorithm (MEA) activity tracker — the paper's
 * central contribution (Section 3, Algorithm 1). A map of K entries
 * associates page ids with small saturating counters:
 *
 *  - id present            -> increment its counter (saturating);
 *  - id absent, free entry -> insert with count 1;
 *  - id absent, map full   -> decrement every counter and evict zeros.
 *
 * All three operations are single-cycle in hardware (parallel
 * decrement/compare); here they are O(1)/O(K) with K <= 512. Because
 * the access stream rarely satisfies the formal majority condition,
 * MEA acts as an approximation that *favors recency over quantity*
 * (the paper's key observation), which makes it a better predictor of
 * next-interval hot pages than exact full counters.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tracking/tracker.h"

namespace mempod {

/** MEA frequent-elements tracker with saturating counters. */
class MeaTracker : public ActivityTracker
{
  public:
    /**
     * @param entries Number of map entries K (counters).
     * @param counter_bits Width of each saturating counter (paper: 2).
     * @param id_bits Width of the page-id tag (paper: 21 per Pod);
     *        only used for storage-cost reporting.
     */
    MeaTracker(std::uint32_t entries, std::uint32_t counter_bits = 2,
               std::uint32_t id_bits = 21);

    void touch(std::uint64_t id) override;
    void reset() override;

    /** Entries currently tracked (count desc, id asc). */
    std::vector<TrackedEntry> snapshot() const override;

    /** Ids currently tracked (unsorted membership test set). */
    std::vector<std::uint64_t> trackedIds() const;

    bool contains(std::uint64_t id) const
    {
        return map_.find(id) != map_.end();
    }

    /** Current counter value for `id` (0 when untracked) — the
     *  decision-time snapshot the migration ledger records. */
    std::uint32_t countOf(std::uint64_t id) const
    {
        const auto it = map_.find(id);
        return it == map_.end() ? 0 : it->second;
    }

    std::uint32_t entries() const { return entries_; }
    std::uint32_t counterBits() const { return counterBits_; }
    std::uint32_t counterMax() const { return counterMax_; }
    std::size_t size() const { return map_.size(); }

    /** Modeled hardware cost in bits: K * (id + counter). */
    std::uint64_t storageBits() const override;

    /** Number of decrement-all sweeps performed (operation (c)). */
    std::uint64_t sweeps() const { return sweeps_; }

    /** Entries erased at count zero during sweeps. */
    std::uint64_t evictions() const { return evictions_; }

    /** Full tracker clears (interval boundaries). */
    std::uint64_t resets() const { return resets_; }

    std::string name() const override { return "MEA"; }

  private:
    std::uint32_t entries_;
    std::uint32_t counterBits_;
    std::uint32_t counterMax_;
    std::uint32_t idBits_;
    std::unordered_map<std::uint64_t, std::uint32_t> map_;
    std::uint64_t sweeps_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t resets_ = 0;
};

} // namespace mempod
