#include "tracking/competing_counter.h"

namespace mempod {

bool
CompetingCounter::accessSlow(std::uint32_t member, std::uint32_t threshold)
{
    if (candidate_ == kNoCandidate) {
        candidate_ = member;
        count_ = 1;
    } else if (member == candidate_) {
        if (count_ < counterMax_)
            ++count_;
    } else {
        // A competing slow page: weaken the current candidate and take
        // over the slot when it drains.
        if (count_ > 0) {
            --count_;
        }
        if (count_ == 0) {
            candidate_ = member;
            count_ = 1;
        }
    }
    if (candidate_ == member && count_ >= threshold) {
        clear();
        return true;
    }
    return false;
}

void
CompetingCounter::accessFast()
{
    if (count_ > 0)
        --count_;
    if (count_ == 0)
        candidate_ = kNoCandidate;
}

void
CompetingCounter::clear()
{
    candidate_ = kNoCandidate;
    count_ = 0;
}

} // namespace mempod
