/**
 * @file
 * THM's per-segment "competing counter" (Sim et al., MICRO-47). Each
 * segment (one fast page + N slow pages) keeps a single counter and a
 * candidate slot: accesses to the candidate slow page strengthen it,
 * accesses to other slow pages or to the fast page weaken it, and a
 * different slow page takes over the candidacy when the counter drains
 * to zero. Reaching the threshold triggers a swap of the candidate
 * with the fast-resident page — occasionally a false positive, which
 * is the cost the paper attributes to this scheme.
 */
#pragma once

#include <cstdint>

namespace mempod {

/** One segment's competing counter. */
class CompetingCounter
{
  public:
    static constexpr std::uint32_t kNoCandidate = ~std::uint32_t{0};

    explicit CompetingCounter(std::uint32_t counter_bits = 8)
        : counterMax_((std::uint32_t{1} << counter_bits) - 1)
    {
    }

    /**
     * Record an access to slow-segment member `member`.
     * @return true if the threshold was reached and a migration of the
     *         current candidate should trigger (counter resets).
     */
    bool accessSlow(std::uint32_t member, std::uint32_t threshold);

    /** Record an access to the fast-resident page (weakens candidate). */
    void accessFast();

    std::uint32_t candidate() const { return candidate_; }
    std::uint32_t count() const { return count_; }

    /** Clear after a triggered migration. */
    void clear();

  private:
    std::uint32_t candidate_ = kNoCandidate;
    std::uint32_t count_ = 0;
    std::uint32_t counterMax_;
};

} // namespace mempod
