/**
 * @file
 * Common interface for activity-tracking schemes (Section 4.2 of the
 * paper): MEA and the Full Counters baseline both observe a stream of
 * page ids and report the pages they consider hot.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mempod {

/** A tracked (id, count) pair. */
struct TrackedEntry
{
    std::uint64_t id = 0;
    std::uint64_t count = 0;

    bool
    operator==(const TrackedEntry &o) const
    {
        return id == o.id && count == o.count;
    }
};

/** Observes page accesses and identifies hot pages per interval. */
class ActivityTracker
{
  public:
    virtual ~ActivityTracker() = default;

    /** Record one access to `id`. */
    virtual void touch(std::uint64_t id) = 0;

    /** Clear interval state. */
    virtual void reset() = 0;

    /** Current hot candidates, hottest first (count desc, id asc). */
    virtual std::vector<TrackedEntry> snapshot() const = 0;

    /** Modeled hardware storage cost in bits. */
    virtual std::uint64_t storageBits() const = 0;

    virtual std::string name() const = 0;
};

} // namespace mempod
