/**
 * @file
 * Flat address-space geometry: the fast (die-stacked) region occupies
 * physical addresses [0, fastBytes) and the slow (off-chip) region
 * [fastBytes, fastBytes + slowBytes). Pages are interleaved across
 * Pods, and each Pod's pages across its member channels, exactly as in
 * Figure 4 of the paper (channel c belongs to Pod c % numPods).
 *
 * Also provides LogicalToPhysical, the OS-allocation stand-in that
 * scatters each core's logical pages over the whole physical space via
 * an affine bijection (deterministic, collision-free, seedable).
 */
#pragma once

#include <cstdint>

#include "common/types.h"
#include "dram/spec.h"

namespace mempod {

/** Capacities and partitioning of the two-level memory. */
struct SystemGeometry
{
    std::uint64_t fastBytes = 1_GiB;
    std::uint64_t slowBytes = 8_GiB;
    std::uint32_t fastChannels = 8;
    std::uint32_t slowChannels = 4;
    std::uint32_t numPods = 4;

    std::uint64_t totalBytes() const { return fastBytes + slowBytes; }
    std::uint64_t fastPages() const { return fastBytes / kPageBytes; }
    std::uint64_t slowPages() const { return slowBytes / kPageBytes; }
    std::uint64_t totalPages() const { return totalBytes() / kPageBytes; }

    std::uint64_t fastPagesPerPod() const { return fastPages() / numPods; }
    std::uint64_t slowPagesPerPod() const { return slowPages() / numPods; }
    std::uint64_t pagesPerPod() const
    {
        return fastPagesPerPod() + slowPagesPerPod();
    }

    std::uint32_t fastChannelsPerPod() const
    {
        return fastChannels / numPods;
    }
    std::uint32_t slowChannelsPerPod() const
    {
        return slowChannels / numPods;
    }

    /** Panics if the interleave constraints do not hold. */
    void validate() const;

    /** The paper's Table 2 system: 1 GB HBM + 8 GB DDR4, 4 Pods. */
    static SystemGeometry paper();

    /** A tiny instance for unit tests (16 MB + 128 MB). */
    static SystemGeometry tiny();

    /** Single-technology geometry (all capacity "fast"). */
    static SystemGeometry
    singleTier(std::uint64_t bytes, std::uint32_t channels);
};

/** Fully decoded coordinates of a physical address. */
struct DecodedAddr
{
    MemTier tier = MemTier::kFast;
    std::uint32_t pod = 0;
    std::uint32_t channel = 0; //!< global channel index
    std::uint32_t bank = 0;
    std::int64_t row = 0;
    std::uint64_t offsetInRow = 0;
};

/** Address decoding for a given geometry + device organizations. */
class AddressMap
{
  public:
    AddressMap(const SystemGeometry &geom, const DramOrganization &fast,
               const DramOrganization &slow);

    const SystemGeometry &geom() const { return geom_; }

    MemTier tierOf(Addr a) const
    {
        return a < geom_.fastBytes ? MemTier::kFast : MemTier::kSlow;
    }

    MemTier
    tierOfPage(PageId p) const
    {
        return p < geom_.fastPages() ? MemTier::kFast : MemTier::kSlow;
    }

    static PageId pageOf(Addr a) { return a / kPageBytes; }
    static Addr addrOfPage(PageId p) { return p * kPageBytes; }

    /** Pod owning a page (same pod before and after migration). */
    std::uint32_t podOfPage(PageId p) const;

    /**
     * Pod-local page index: [0, fastPagesPerPod) are fast slots,
     * [fastPagesPerPod, pagesPerPod) are slow slots.
     */
    std::uint64_t podLocalOfPage(PageId p) const;

    /** Inverse of podLocalOfPage. */
    PageId pageOfPodLocal(std::uint32_t pod, std::uint64_t local) const;

    bool
    podLocalIsFast(std::uint64_t local) const
    {
        return local < geom_.fastPagesPerPod();
    }

    /** Full physical decode (tier, pod, channel, bank, row). */
    DecodedAddr decode(Addr a) const;

    std::uint32_t totalChannels() const
    {
        return geom_.fastChannels + geom_.slowChannels;
    }

  private:
    SystemGeometry geom_;
    DramOrganization fastOrg_;
    DramOrganization slowOrg_;
};

/**
 * OS page-allocation stand-in: an affine bijection from logical page
 * ids (core-partitioned) onto the full physical page space.
 */
class LogicalToPhysical
{
  public:
    LogicalToPhysical(std::uint64_t total_pages, std::uint32_t num_cores,
                      std::uint64_t seed = 1);

    /** Pages each core may address. */
    std::uint64_t pagesPerCore() const { return pagesPerCore_; }

    /** Map (core, core-local byte address) to a physical address. */
    Addr physicalAddr(std::uint8_t core, Addr core_local) const;

    /** Map a logical page id to its physical page. */
    PageId physicalPage(std::uint64_t logical_page) const;

  private:
    std::uint64_t totalPages_;
    std::uint64_t pagesPerCore_;
    std::uint64_t stride_;
    std::uint64_t offset_;
};

} // namespace mempod
