#include "mem/memory_system.h"

#include "common/log.h"

namespace mempod {

MemorySystem::MemorySystem(EventQueue &eq, const SystemGeometry &geom,
                           const DramSpec &fast, const DramSpec &slow,
                           TimePs extra_latency_ps,
                           ControllerPolicy policy)
    : eq_(eq),
      map_(geom,
           fast.withChannelBytes(geom.fastBytes / geom.fastChannels).org,
           geom.slowChannels
               ? slow.withChannelBytes(geom.slowBytes / geom.slowChannels)
                     .org
               : slow.org)
{
    const DramSpec fast_sized =
        fast.withChannelBytes(geom.fastBytes / geom.fastChannels);
    channels_.reserve(geom.fastChannels + geom.slowChannels);
    for (std::uint32_t c = 0; c < geom.fastChannels; ++c) {
        channels_.push_back(std::make_unique<Channel>(
            eq_, fast_sized, "fast" + std::to_string(c),
            extra_latency_ps, policy));
    }
    if (geom.slowChannels > 0) {
        const DramSpec slow_sized =
            slow.withChannelBytes(geom.slowBytes / geom.slowChannels);
        for (std::uint32_t c = 0; c < geom.slowChannels; ++c) {
            channels_.push_back(std::make_unique<Channel>(
                eq_, slow_sized, "slow" + std::to_string(c),
                extra_latency_ps, policy));
        }
    }
    // One shared hook per channel keeps in-flight tracking off the
    // per-request path: requests carry their own callback unwrapped.
    for (auto &ch : channels_)
        ch->setCompletionHook([this](TimePs) { --inFlight_; });
}

void
MemorySystem::access(Request req)
{
    const DecodedAddr d = map_.decode(req.addr);

    const bool fast = d.tier == MemTier::kFast;
    switch (req.kind) {
      case Request::Kind::kDemand:
        ++(fast ? stats_.demandFast : stats_.demandSlow);
        break;
      case Request::Kind::kMigration:
        ++(fast ? stats_.migrationFast : stats_.migrationSlow);
        break;
      case Request::Kind::kBookkeeping:
        ++(fast ? stats_.bookkeepingFast : stats_.bookkeepingSlow);
        break;
    }

    ++inFlight_;
    channels_[d.channel]->enqueue(std::move(req),
                                  ChannelAddr{d.bank, d.row});
}

std::uint64_t
MemorySystem::Stats::linesByKindTier(Request::Kind kind,
                                     MemTier tier) const
{
    const bool fast = tier == MemTier::kFast;
    switch (kind) {
      case Request::Kind::kDemand:
        return fast ? demandFast : demandSlow;
      case Request::Kind::kMigration:
        return fast ? migrationFast : migrationSlow;
      case Request::Kind::kBookkeeping:
        return fast ? bookkeepingFast : bookkeepingSlow;
    }
    return 0;
}

double
MemorySystem::rowHitRate(MemTier tier) const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    const std::uint32_t begin =
        tier == MemTier::kFast ? 0 : geom().fastChannels;
    const std::uint32_t end = tier == MemTier::kFast
                                  ? geom().fastChannels
                                  : geom().fastChannels +
                                        geom().slowChannels;
    for (std::uint32_t c = begin; c < end; ++c) {
        hits += channels_[c]->stats().rowHits;
        total += channels_[c]->stats().rowHits +
                 channels_[c]->stats().rowMisses;
    }
    return total ? static_cast<double>(hits) / total : 0.0;
}

double
MemorySystem::rowHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const auto &ch : channels_) {
        hits += ch->stats().rowHits;
        total += ch->stats().rowHits + ch->stats().rowMisses;
    }
    return total ? static_cast<double>(hits) / total : 0.0;
}

std::uint64_t
MemorySystem::rowHits(MemTier tier) const
{
    const std::uint32_t begin =
        tier == MemTier::kFast ? 0 : geom().fastChannels;
    const std::uint32_t end =
        tier == MemTier::kFast
            ? geom().fastChannels
            : geom().fastChannels + geom().slowChannels;
    std::uint64_t hits = 0;
    for (std::uint32_t c = begin; c < end; ++c)
        hits += channels_[c]->stats().rowHits;
    return hits;
}

std::uint64_t
MemorySystem::rowMisses(MemTier tier) const
{
    const std::uint32_t begin =
        tier == MemTier::kFast ? 0 : geom().fastChannels;
    const std::uint32_t end =
        tier == MemTier::kFast
            ? geom().fastChannels
            : geom().fastChannels + geom().slowChannels;
    std::uint64_t misses = 0;
    for (std::uint32_t c = begin; c < end; ++c)
        misses += channels_[c]->stats().rowMisses;
    return misses;
}

void
MemorySystem::registerMetrics(MetricRegistry &reg) const
{
    reg.attachCounter("mem.demand_fast",
                      "demand lines served by the fast tier",
                      &stats_.demandFast);
    reg.attachCounter("mem.demand_slow",
                      "demand lines served by the slow tier",
                      &stats_.demandSlow);
    reg.attachCounter("mem.migration_fast",
                      "migration lines on fast-tier channels",
                      &stats_.migrationFast);
    reg.attachCounter("mem.migration_slow",
                      "migration lines on slow-tier channels",
                      &stats_.migrationSlow);
    reg.attachCounter("mem.bookkeeping_fast",
                      "bookkeeping lines on fast-tier channels",
                      &stats_.bookkeepingFast);
    reg.attachCounter("mem.bookkeeping_slow",
                      "bookkeeping lines on slow-tier channels",
                      &stats_.bookkeepingSlow);
    reg.addCounterFn("mem.fast.row_hits",
                     "CAS row hits summed over fast channels",
                     [this] { return rowHits(MemTier::kFast); });
    reg.addCounterFn("mem.fast.row_misses",
                     "CAS row misses summed over fast channels",
                     [this] { return rowMisses(MemTier::kFast); });
    reg.addCounterFn("mem.slow.row_hits",
                     "CAS row hits summed over slow channels",
                     [this] { return rowHits(MemTier::kSlow); });
    reg.addCounterFn("mem.slow.row_misses",
                     "CAS row misses summed over slow channels",
                     [this] { return rowMisses(MemTier::kSlow); });
    reg.addGauge("mem.row_hit_rate",
                 "aggregate row-buffer hit rate, all channels",
                 [this] { return rowHitRate(); });
    reg.addGauge("mem.fast.row_hit_rate",
                 "row-buffer hit rate over fast channels",
                 [this] { return rowHitRate(MemTier::kFast); });
    reg.addGauge("mem.slow.row_hit_rate",
                 "row-buffer hit rate over slow channels",
                 [this] { return rowHitRate(MemTier::kSlow); });
    reg.addGauge("mem.in_flight",
                 "line transfers dispatched but not completed",
                 [this] { return static_cast<double>(inFlight_); });
    reg.addCounterFn("mem.demand_queue_wait_ps",
                     "summed demand enqueue-to-CAS wait, all channels",
                     [this] {
                         std::uint64_t sum = 0;
                         for (const auto &ch : channels_)
                             sum += ch->stats().demandQueueWaitPs;
                         return sum;
                     });
    reg.addCounterFn("mem.demand_service_ps",
                     "summed demand CAS-to-completion time, all channels",
                     [this] {
                         std::uint64_t sum = 0;
                         for (const auto &ch : channels_)
                             sum += ch->stats().demandServicePs;
                         return sum;
                     });
    for (const auto &ch : channels_)
        ch->registerMetrics(reg, "mem." + ch->name());
}

} // namespace mempod
