#include "mem/memory_system.h"

#include "common/log.h"

namespace mempod {

MemorySystem::MemorySystem(EventQueue &eq, const SystemGeometry &geom,
                           const DramSpec &fast, const DramSpec &slow,
                           TimePs extra_latency_ps,
                           ControllerPolicy policy)
    : eq_(eq),
      map_(geom,
           fast.withChannelBytes(geom.fastBytes / geom.fastChannels).org,
           geom.slowChannels
               ? slow.withChannelBytes(geom.slowBytes / geom.slowChannels)
                     .org
               : slow.org)
{
    const DramSpec fast_sized =
        fast.withChannelBytes(geom.fastBytes / geom.fastChannels);
    channels_.reserve(geom.fastChannels + geom.slowChannels);
    for (std::uint32_t c = 0; c < geom.fastChannels; ++c) {
        channels_.push_back(std::make_unique<Channel>(
            eq_, fast_sized, "fast" + std::to_string(c),
            extra_latency_ps, policy));
    }
    if (geom.slowChannels > 0) {
        const DramSpec slow_sized =
            slow.withChannelBytes(geom.slowBytes / geom.slowChannels);
        for (std::uint32_t c = 0; c < geom.slowChannels; ++c) {
            channels_.push_back(std::make_unique<Channel>(
                eq_, slow_sized, "slow" + std::to_string(c),
                extra_latency_ps, policy));
        }
    }
}

void
MemorySystem::access(Request req)
{
    const DecodedAddr d = map_.decode(req.addr);

    const bool fast = d.tier == MemTier::kFast;
    switch (req.kind) {
      case Request::Kind::kDemand:
        ++(fast ? stats_.demandFast : stats_.demandSlow);
        break;
      case Request::Kind::kMigration:
        ++(fast ? stats_.migrationFast : stats_.migrationSlow);
        break;
      case Request::Kind::kBookkeeping:
        ++(fast ? stats_.bookkeepingFast : stats_.bookkeepingSlow);
        break;
    }

    ++inFlight_;
    auto inner = std::move(req.onComplete);
    req.onComplete = [this, cb = std::move(inner)](TimePs finish) {
        --inFlight_;
        if (cb)
            cb(finish);
    };

    channels_[d.channel]->enqueue(std::move(req),
                                  ChannelAddr{d.bank, d.row});
}

std::uint64_t
MemorySystem::Stats::linesByKindTier(Request::Kind kind,
                                     MemTier tier) const
{
    const bool fast = tier == MemTier::kFast;
    switch (kind) {
      case Request::Kind::kDemand:
        return fast ? demandFast : demandSlow;
      case Request::Kind::kMigration:
        return fast ? migrationFast : migrationSlow;
      case Request::Kind::kBookkeeping:
        return fast ? bookkeepingFast : bookkeepingSlow;
    }
    return 0;
}

double
MemorySystem::rowHitRate(MemTier tier) const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    const std::uint32_t begin =
        tier == MemTier::kFast ? 0 : geom().fastChannels;
    const std::uint32_t end = tier == MemTier::kFast
                                  ? geom().fastChannels
                                  : geom().fastChannels +
                                        geom().slowChannels;
    for (std::uint32_t c = begin; c < end; ++c) {
        hits += channels_[c]->stats().rowHits;
        total += channels_[c]->stats().rowHits +
                 channels_[c]->stats().rowMisses;
    }
    return total ? static_cast<double>(hits) / total : 0.0;
}

double
MemorySystem::rowHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const auto &ch : channels_) {
        hits += ch->stats().rowHits;
        total += ch->stats().rowHits + ch->stats().rowMisses;
    }
    return total ? static_cast<double>(hits) / total : 0.0;
}

} // namespace mempod
