#include "mem/memory_system.h"

#include "common/log.h"
#include "dram/fast_channel.h"
#include "dram/functional_model.h"

namespace mempod {

void
MemorySystem::Slot::add(DramModel kind,
                        std::unique_ptr<MemoryModel> m)
{
    models_.emplace_back(kind, std::move(m));
    if (!primary_) {
        primary_ = models_.back().second.get();
        active_ = primary_;
    }
}

void
MemorySystem::Slot::select(DramModel kind)
{
    MemoryModel *m = find(kind);
    MEMPOD_ASSERT(m != nullptr,
                  "memory model '%s' was not built for this run",
                  dramModelName(kind));
    active_ = m;
}

MemoryModel *
MemorySystem::Slot::find(DramModel kind) const
{
    for (const auto &[k, m] : models_)
        if (k == kind)
            return m.get();
    return nullptr;
}

namespace {

std::unique_ptr<MemoryModel>
makeModel(DramModel kind, EventQueue &eq, const DramSpec &spec,
          std::string name, TimePs extra_latency_ps,
          ControllerPolicy policy, DomainId domain)
{
    switch (kind) {
      case DramModel::kDetailed:
        return std::make_unique<Channel>(eq, spec, std::move(name),
                                         extra_latency_ps, policy,
                                         domain);
      case DramModel::kFast:
        return std::make_unique<FastChannel>(
            eq, spec, std::move(name), extra_latency_ps);
      case DramModel::kFunctional:
        return std::make_unique<FunctionalModel>(eq, spec,
                                                 std::move(name));
    }
    MEMPOD_FATAL("unknown memory model %d", static_cast<int>(kind));
}

} // namespace

MemorySystem::MemorySystem(EventQueue &eq, const SystemGeometry &geom,
                           const DramSpec &fast, const DramSpec &slow,
                           TimePs extra_latency_ps,
                           ControllerPolicy policy, const ShardPlan *plan,
                           const ModelPlan &models)
    : eq_(eq),
      map_(geom,
           fast.withChannelBytes(geom.fastBytes / geom.fastChannels).org,
           geom.slowChannels
               ? slow.withChannelBytes(geom.slowBytes / geom.slowChannels)
                     .org
               : slow.org),
      dispatch_(plan ? plan->dispatch : nullptr),
      activeModel_(models.primary)
{
    // Channel i always owns execution domain 1 + i — also in the
    // serial single-queue run, so the canonical event order (and thus
    // every output byte) is identical at any shard count.
    const auto queue_for = [&](std::size_t i) -> EventQueue & {
        return plan ? *plan->channelQueues[i] : eq_;
    };
    const auto add_channel = [&](const DramSpec &spec,
                                 const std::string &base) {
        const std::size_t i = slots_.size();
        const DomainId domain = static_cast<DomainId>(1 + i);
        auto slot = std::make_unique<Slot>();
        // Primary first: it owns the base name and the observer API.
        slot->add(models.primary,
                  makeModel(models.primary, queue_for(i), spec, base,
                            extra_latency_ps, policy, domain));
        if (models.wantsWarm())
            slot->add(models.warm,
                      makeModel(models.warm, queue_for(i), spec,
                                base + ".warm", extra_latency_ps,
                                policy, domain));
        slots_.push_back(std::move(slot));
    };

    const DramSpec fast_sized =
        fast.withChannelBytes(geom.fastBytes / geom.fastChannels);
    slots_.reserve(geom.fastChannels + geom.slowChannels);
    for (std::uint32_t c = 0; c < geom.fastChannels; ++c)
        add_channel(fast_sized, "fast" + std::to_string(c));
    if (geom.slowChannels > 0) {
        const DramSpec slow_sized =
            slow.withChannelBytes(geom.slowBytes / geom.slowChannels);
        for (std::uint32_t c = 0; c < geom.slowChannels; ++c)
            add_channel(slow_sized, "slow" + std::to_string(c));
    }
    // One shared hook per channel keeps in-flight tracking off the
    // per-request path: requests carry their own callback unwrapped.
    for (auto &slot : slots_)
        slot->setCompletionHook([this](TimePs) { --inFlight_; });

    views_.reserve(slots_.size() * (models.wantsWarm() ? 2 : 1));
    for (std::size_t c = 0; c < slots_.size(); ++c) {
        const MemTier tier =
            c < geom.fastChannels ? MemTier::kFast : MemTier::kSlow;
        ChannelTelemetry v = slots_[c]->telemetry();
        v.tier = tier;
        views_.push_back(std::move(v));
        if (models.wantsWarm()) {
            ChannelTelemetry w =
                slots_[c]->find(models.warm)->telemetry();
            w.tier = tier;
            views_.push_back(std::move(w));
        }
    }
}

void
MemorySystem::setModel(DramModel m)
{
    if (m == activeModel_)
        return;
    for (auto &slot : slots_) {
        slot->select(m);
        // The incoming model sat idle while the outgoing one served
        // traffic; let it forgive time-based obligations (refresh
        // debt) before the first enqueue lands.
        slot->find(m)->resumeAt(eq_.now());
    }
    activeModel_ = m;
}

void
MemorySystem::access(Request req)
{
    const DecodedAddr d = map_.decode(req.addr);

    const bool fast = d.tier == MemTier::kFast;
    switch (req.kind) {
      case Request::Kind::kDemand:
        ++(fast ? stats_.demandFast : stats_.demandSlow);
        break;
      case Request::Kind::kMigration:
        ++(fast ? stats_.migrationFast : stats_.migrationSlow);
        break;
      case Request::Kind::kBookkeeping:
        ++(fast ? stats_.bookkeepingFast : stats_.bookkeepingSlow);
        break;
    }

    ++inFlight_;
    if (dispatch_) {
        // Sharded run: the executor applies the enqueue on the owning
        // channel's queue at this call's canonical key position.
        dispatch_(d.channel, std::move(req), ChannelAddr{d.bank, d.row});
        return;
    }
    slots_[d.channel]->enqueue(std::move(req),
                               ChannelAddr{d.bank, d.row});
}

std::uint64_t
MemorySystem::Stats::linesByKindTier(Request::Kind kind,
                                     MemTier tier) const
{
    const bool fast = tier == MemTier::kFast;
    switch (kind) {
      case Request::Kind::kDemand:
        return fast ? demandFast : demandSlow;
      case Request::Kind::kMigration:
        return fast ? migrationFast : migrationSlow;
      case Request::Kind::kBookkeeping:
        return fast ? bookkeepingFast : bookkeepingSlow;
    }
    return 0;
}

double
MemorySystem::rowHitRate(MemTier tier) const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const ChannelTelemetry &v : views_) {
        if (v.tier != tier)
            continue;
        hits += v.stats->rowHits;
        total += v.stats->rowHits + v.stats->rowMisses;
    }
    return total ? static_cast<double>(hits) / total : 0.0;
}

double
MemorySystem::rowHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const ChannelTelemetry &v : views_) {
        hits += v.stats->rowHits;
        total += v.stats->rowHits + v.stats->rowMisses;
    }
    return total ? static_cast<double>(hits) / total : 0.0;
}

std::uint64_t
MemorySystem::rowHits(MemTier tier) const
{
    std::uint64_t hits = 0;
    for (const ChannelTelemetry &v : views_)
        if (v.tier == tier)
            hits += v.stats->rowHits;
    return hits;
}

std::uint64_t
MemorySystem::rowMisses(MemTier tier) const
{
    std::uint64_t misses = 0;
    for (const ChannelTelemetry &v : views_)
        if (v.tier == tier)
            misses += v.stats->rowMisses;
    return misses;
}

void
MemorySystem::registerMetrics(MetricRegistry &reg) const
{
    reg.attachCounter("mem.demand_fast",
                      "demand lines served by the fast tier",
                      &stats_.demandFast);
    reg.attachCounter("mem.demand_slow",
                      "demand lines served by the slow tier",
                      &stats_.demandSlow);
    reg.attachCounter("mem.migration_fast",
                      "migration lines on fast-tier channels",
                      &stats_.migrationFast);
    reg.attachCounter("mem.migration_slow",
                      "migration lines on slow-tier channels",
                      &stats_.migrationSlow);
    reg.attachCounter("mem.bookkeeping_fast",
                      "bookkeeping lines on fast-tier channels",
                      &stats_.bookkeepingFast);
    reg.attachCounter("mem.bookkeeping_slow",
                      "bookkeeping lines on slow-tier channels",
                      &stats_.bookkeepingSlow);
    reg.addCounterFn("mem.fast.row_hits",
                     "CAS row hits summed over fast channels",
                     [this] { return rowHits(MemTier::kFast); });
    reg.addCounterFn("mem.fast.row_misses",
                     "CAS row misses summed over fast channels",
                     [this] { return rowMisses(MemTier::kFast); });
    reg.addCounterFn("mem.slow.row_hits",
                     "CAS row hits summed over slow channels",
                     [this] { return rowHits(MemTier::kSlow); });
    reg.addCounterFn("mem.slow.row_misses",
                     "CAS row misses summed over slow channels",
                     [this] { return rowMisses(MemTier::kSlow); });
    reg.addGauge("mem.row_hit_rate",
                 "aggregate row-buffer hit rate, all channels",
                 [this] { return rowHitRate(); });
    reg.addGauge("mem.fast.row_hit_rate",
                 "row-buffer hit rate over fast channels",
                 [this] { return rowHitRate(MemTier::kFast); });
    reg.addGauge("mem.slow.row_hit_rate",
                 "row-buffer hit rate over slow channels",
                 [this] { return rowHitRate(MemTier::kSlow); });
    reg.addGauge("mem.in_flight",
                 "line transfers dispatched but not completed",
                 [this] { return static_cast<double>(inFlight_); });
    reg.addCounterFn("mem.demand_queue_wait_ps",
                     "summed demand enqueue-to-CAS wait, all channels",
                     [this] {
                         std::uint64_t sum = 0;
                         for (const ChannelTelemetry &v : views_)
                             sum += v.stats->demandQueueWaitPs;
                         return sum;
                     });
    reg.addCounterFn("mem.demand_service_ps",
                     "summed demand CAS-to-completion time, all channels",
                     [this] {
                         std::uint64_t sum = 0;
                         for (const ChannelTelemetry &v : views_)
                             sum += v.stats->demandServicePs;
                         return sum;
                     });
    for (const ChannelTelemetry &v : views_)
        registerChannelMetrics(reg, "mem." + v.name, v);
}

void
MemorySystem::registerChannelMetrics(MetricRegistry &reg,
                                     const std::string &prefix,
                                     const ChannelTelemetry &v) const
{
    const ChannelStats *s = v.stats;
    reg.attachCounter(prefix + ".reads", "read CAS commands issued",
                      &s->reads);
    reg.attachCounter(prefix + ".writes", "write CAS commands issued",
                      &s->writes);
    reg.attachCounter(prefix + ".row_hits",
                      "CAS commands that required no ACT",
                      &s->rowHits);
    reg.attachCounter(prefix + ".row_misses",
                      "CAS commands preceded by their own ACT",
                      &s->rowMisses);
    reg.attachCounter(prefix + ".activates", "ACT commands issued",
                      &s->activates);
    reg.attachCounter(prefix + ".precharges", "PRE commands issued",
                      &s->precharges);
    reg.attachCounter(prefix + ".refreshes", "refresh cycles performed",
                      &s->refreshes);
    reg.attachCounter(prefix + ".bus_busy_ps",
                      "picoseconds the data bus carried a burst",
                      &s->busBusyPs);
    reg.attachCounter(prefix + ".demand_queue_wait_ps",
                      "summed demand wait from enqueue to CAS",
                      &s->demandQueueWaitPs);
    reg.attachCounter(prefix + ".demand_service_ps",
                      "summed demand CAS-to-completion time",
                      &s->demandServicePs);
    reg.addGauge(prefix + ".queue_depth",
                 "requests queued at the controller right now",
                 [s] { return static_cast<double>(s->queuedNow); });
    reg.addGauge(prefix + ".max_queue_depth",
                 "high-water mark of the controller queues", [s] {
                     return static_cast<double>(s->maxQueueDepth);
                 });
    reg.addGauge(prefix + ".row_hit_rate",
                 "fraction of CAS commands hitting the open row",
                 [s] { return channelRowHitRate(*s); });
    reg.addGauge(prefix + ".bus_utilization",
                 "fraction of simulated time the data bus was busy",
                 [s, this] {
                     return channelBusUtilization(*s, eq_.now());
                 });
    for (std::uint32_t b = 0; b < v.numBanks; ++b) {
        const std::string bp = prefix + ".bank" + std::to_string(b);
        reg.attachCounter(bp + ".activates", "per-bank ACT commands",
                          &v.bankActivates[b]);
        reg.attachCounter(bp + ".reads", "per-bank read CAS commands",
                          &v.bankReads[b]);
        reg.attachCounter(bp + ".writes", "per-bank write CAS commands",
                          &v.bankWrites[b]);
    }
}

} // namespace mempod
