/**
 * @file
 * Trace-replay frontend approximating Ramulator's simple CPU model:
 * requests enter the memory system at their trace timestamps, subject
 * to an MSHR-style cap on outstanding misses (resource-induced
 * stalls), and an intake freeze hook used to model HMA's sorting
 * penalty. AMMAT is accumulated here with a fixed denominator equal to
 * the original trace length.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "common/event_queue.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/tracer.h"
#include "mem/address_map.h"
#include "mem/manager.h"
#include "trace/record.h"
#include "trace/source.h"

namespace mempod {

/** Replays a trace stream through a MemoryManager. */
class TraceFrontend
{
  public:
    /**
     * @param eq Global event queue.
     * @param manager Mechanism under test.
     * @param placement OS allocation stand-in (core-local -> physical).
     * @param max_outstanding MSHR-style cap on in-flight demands.
     */
    TraceFrontend(EventQueue &eq, MemoryManager &manager,
                  const LogicalToPhysical &placement,
                  std::uint32_t max_outstanding = 64);

    /**
     * Provide the record stream (kept by reference; must outlive the
     * run). The frontend holds a one-record lookahead, so a streaming
     * source replays in O(1) memory. Resets the source and primes the
     * lookahead.
     */
    void setSource(TraceSource &source);

    /** Convenience: stream an in-memory trace (must outlive the run). */
    void setTrace(const Trace &trace);

    /** Schedule the first arrival. */
    void start();

    /** Freeze intake until `until` (HMA sort stall). */
    void stallUntil(TimePs until);

    /**
     * Fast-forward mode (sampled simulation): demands keep flowing —
     * every tracker, remap table and decision ledger downstream stays
     * warm, and completed_/per-core issue counters still advance — but
     * stall-time, MSHR-wait and latency-histogram accounting is
     * suppressed, so measurement-window deltas are untouched by
     * warm-up traffic. With `batch_admit` (functional warm model only)
     * the pump also admits future-timestamped records early, bounded
     * by the next scheduled event, collapsing per-record pump events
     * into one sweep per window/timer boundary. Record-index tracer
     * sampling is fidelity-independent, so the set of traced demand
     * ids matches a detailed replay either way.
     */
    void setFastForward(bool on, bool batch_admit);

    /** True while in a fast-forward window. */
    bool fastForward() const { return fastForward_; }

    /**
     * Suspend the cores for `duration` (HMA's OS sorting interrupt):
     * no requests are issued meanwhile and the remaining trace shifts
     * later by `duration`, so the pause does not masquerade as memory
     * stall time — the cost of the long epoch is the *stale placement*
     * it forces, exactly as in the paper's evaluation.
     */
    void suspendCores(TimePs duration);

    /** All records admitted and completed. */
    bool done() const;

    /** Demand requests admitted but not yet completed. */
    std::uint32_t outstanding() const { return outstanding_; }

    /** Total memory stall time over all completed demands (ps). */
    double totalStallPs() const { return totalStallPs_; }

    /** Summed admission delay behind the MSHR cap / intake stalls. */
    std::uint64_t mshrWaitPs() const { return mshrWaitPs_; }

    /** AMMAT in picoseconds: total stall / original trace length. */
    double ammatPs() const;

    /** Per-request latency distribution. */
    const Log2Histogram &latencyHistogramNs() const { return latencyNs_; }

    /**
     * Per-core latency distribution, or nullptr when the core issued
     * nothing (index = core id).
     */
    const Log2Histogram *
    coreLatencyHistogramNs(std::size_t core) const
    {
        return core < perCore_.size() ? &perCore_[core].latencyNs
                                      : nullptr;
    }

    std::uint64_t completed() const { return completed_; }

    /** Per-core AMMAT in picoseconds (index = core id). */
    std::vector<double> perCoreAmmatPs() const;

    /** Cores that issued at least one request so far. */
    std::size_t coresSeen() const { return perCore_.size(); }

    /**
     * Register frontend instruments under "frontend.*" and per-core
     * issued/completed/stall/AMMAT under "core<i>.*" for cores
     * [0, num_cores).
     */
    void registerMetrics(MetricRegistry &reg,
                         std::uint32_t num_cores) const;

  private:
    void pump();
    void schedulePump(TimePs when);

    /** Tracer track for a core's demand spans ("core<i>"). */
    static std::uint32_t coreTrack(Tracer &tr, std::uint8_t core);

    EventQueue &eq_;
    MemoryManager &manager_;
    const LogicalToPhysical &placement_;
    TraceSource *source_ = nullptr;
    std::unique_ptr<TraceSource> ownedSource_; //!< setTrace() wrapper
    std::uint64_t totalRecords_ = 0;

    /** One-record lookahead: the next record to admit, if any. */
    TraceRecord head_;
    bool headValid_ = false;

    std::uint32_t maxOutstanding_;
    bool fastForward_ = false;
    bool batchAdmit_ = false;
    bool inPump_ = false; //!< guards against pump reentry on instant completion
    std::uint32_t outstanding_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    TimePs stalledUntil_ = 0;
    TimePs timeShift_ = 0; //!< accumulated core-suspension time
    TimePs pumpScheduledAt_ = kTimeNever;

    double totalStallPs_ = 0.0;
    std::uint64_t mshrWaitPs_ = 0; //!< attribution: admit - arrival
    Log2Histogram latencyNs_;

    struct PerCore
    {
        double stallPs = 0.0;
        std::uint64_t requests = 0;
        std::uint64_t completed = 0;
        Log2Histogram latencyNs;
    };
    std::vector<PerCore> perCore_;
};

} // namespace mempod
