/**
 * @file
 * The physical memory system: all fast + slow channels behind one
 * decode/dispatch facade. Managers direct post-remap physical
 * addresses here; the MemorySystem decodes them, tracks tier/kind
 * statistics and forwards to the owning channel controller.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/metrics.h"
#include "dram/channel.h"
#include "dram/telemetry.h"
#include "mem/address_map.h"
#include "mem/request.h"

namespace mempod {

/**
 * Sharded-run wiring for the memory system. `channelQueues[i]` hosts
 * channel i's controller events (its own timing wheel under the PDES
 * executor) and `dispatch` replaces the synchronous enqueue in
 * access() with a deferred hand-off the executor applies in canonical
 * event order. Both referents must outlive the MemorySystem. The
 * serial simulation passes no plan and behaves exactly as before.
 */
struct ShardPlan
{
    std::vector<EventQueue *> channelQueues;
    std::function<void(std::size_t ch, Request req, ChannelAddr where)>
        dispatch;
};

/** All channels of the two-level memory plus shared statistics. */
class MemorySystem
{
  public:
    struct Stats
    {
        std::uint64_t demandFast = 0; //!< demand lines served by HBM
        std::uint64_t demandSlow = 0;
        std::uint64_t migrationFast = 0; //!< migration lines on HBM
        std::uint64_t migrationSlow = 0;
        std::uint64_t bookkeepingFast = 0;
        std::uint64_t bookkeepingSlow = 0;

        std::uint64_t
        migrationLines() const
        {
            return migrationFast + migrationSlow;
        }
        std::uint64_t
        bookkeepingLines() const
        {
            return bookkeepingFast + bookkeepingSlow;
        }
        std::uint64_t
        linesByKindTier(Request::Kind kind, MemTier tier) const;
    };

    MemorySystem(EventQueue &eq, const SystemGeometry &geom,
                 const DramSpec &fast, const DramSpec &slow,
                 TimePs extra_latency_ps = 5000,
                 ControllerPolicy policy = {},
                 const ShardPlan *plan = nullptr);

    /** Dispatch one line transfer at a physical address. */
    void access(Request req);

    const AddressMap &map() const { return map_; }
    const SystemGeometry &geom() const { return map_.geom(); }

    std::size_t numChannels() const { return channels_.size(); }
    Channel &channel(std::size_t i) { return *channels_[i]; }
    const Channel &channel(std::size_t i) const { return *channels_[i]; }

    /** Line transfers dispatched but not yet completed. */
    std::uint64_t inFlight() const { return inFlight_; }

    const Stats &stats() const { return stats_; }

    /**
     * Read-only per-channel telemetry views, one per channel in
     * channel order. Captured once at construction; the counters
     * behind the pointers stay live for the system's lifetime.
     */
    const std::vector<ChannelTelemetry> &
    telemetry() const
    {
        return views_;
    }

    /** Aggregate row-buffer hit rate over one tier's channels. */
    double rowHitRate(MemTier tier) const;

    /** Aggregate row-buffer hit rate over all channels. */
    double rowHitRate() const;

    /** Aggregate CAS row hits / misses over one tier's channels. */
    std::uint64_t rowHits(MemTier tier) const;
    std::uint64_t rowMisses(MemTier tier) const;

    /**
     * Register tier aggregates under "mem.*" plus every channel (and
     * bank) under "mem.<channel-name>.*".
     */
    void registerMetrics(MetricRegistry &reg) const;

  private:
    /** Register one channel's instruments from its telemetry view. */
    void registerChannelMetrics(MetricRegistry &reg,
                                const std::string &prefix,
                                const ChannelTelemetry &v) const;

    EventQueue &eq_;
    AddressMap map_;
    std::function<void(std::size_t, Request, ChannelAddr)> dispatch_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<ChannelTelemetry> views_;
    std::uint64_t inFlight_ = 0;
    Stats stats_;
};

} // namespace mempod
