/**
 * @file
 * The physical memory system: all fast + slow channels behind one
 * decode/dispatch facade. Managers direct post-remap physical
 * addresses here; the MemorySystem decodes them, tracks tier/kind
 * statistics and forwards to the owning channel controller.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/metrics.h"
#include "dram/channel.h"
#include "dram/memory_model.h"
#include "dram/telemetry.h"
#include "mem/address_map.h"
#include "mem/request.h"

namespace mempod {

/**
 * Sharded-run wiring for the memory system. `channelQueues[i]` hosts
 * channel i's controller events (its own timing wheel under the PDES
 * executor) and `dispatch` replaces the synchronous enqueue in
 * access() with a deferred hand-off the executor applies in canonical
 * event order. Both referents must outlive the MemorySystem. The
 * serial simulation passes no plan and behaves exactly as before.
 */
struct ShardPlan
{
    std::vector<EventQueue *> channelQueues;
    std::function<void(std::size_t ch, Request req, ChannelAddr where)>
        dispatch;
};

/**
 * Which memory models each channel hosts and which one starts active.
 * The primary model is the run's measurement fidelity (dram.model); it
 * owns the channel's base telemetry name. Sampled simulation adds a
 * second, warm-up model per channel (named "<base>.warm") that the
 * FidelityController swaps in during fast-forward windows. The
 * default plan — detailed only — builds exactly the pre-sampling
 * system: one Channel per physical channel, no extra telemetry.
 */
struct ModelPlan
{
    DramModel primary = DramModel::kDetailed;
    bool warmEnabled = false;
    DramModel warm = DramModel::kFunctional;

    /** True when a distinct warm-up backend must be built. */
    bool
    wantsWarm() const
    {
        return warmEnabled && warm != primary;
    }
};

/** All channels of the two-level memory plus shared statistics. */
class MemorySystem
{
  public:
    struct Stats
    {
        std::uint64_t demandFast = 0; //!< demand lines served by HBM
        std::uint64_t demandSlow = 0;
        std::uint64_t migrationFast = 0; //!< migration lines on HBM
        std::uint64_t migrationSlow = 0;
        std::uint64_t bookkeepingFast = 0;
        std::uint64_t bookkeepingSlow = 0;

        std::uint64_t
        migrationLines() const
        {
            return migrationFast + migrationSlow;
        }
        std::uint64_t
        bookkeepingLines() const
        {
            return bookkeepingFast + bookkeepingSlow;
        }
        std::uint64_t
        linesByKindTier(Request::Kind kind, MemTier tier) const;
    };

    MemorySystem(EventQueue &eq, const SystemGeometry &geom,
                 const DramSpec &fast, const DramSpec &slow,
                 TimePs extra_latency_ps = 5000,
                 ControllerPolicy policy = {},
                 const ShardPlan *plan = nullptr,
                 const ModelPlan &models = {});

    /** Dispatch one line transfer at a physical address. */
    void access(Request req);

    const AddressMap &map() const { return map_; }
    const SystemGeometry &geom() const { return map_.geom(); }

    std::size_t numChannels() const { return slots_.size(); }
    MemoryModel &channel(std::size_t i) { return *slots_[i]; }
    const MemoryModel &
    channel(std::size_t i) const
    {
        return *slots_[i];
    }

    /**
     * Switch every channel to `m` for subsequent enqueues. Requests
     * already accepted by the previous model finish under it; both
     * models' completions keep feeding the shared in-flight count.
     * Panics if the plan never built `m`.
     */
    void setModel(DramModel m);

    /** The model new requests are routed to. */
    DramModel activeModel() const { return activeModel_; }

    /** Line transfers dispatched but not yet completed. */
    std::uint64_t inFlight() const { return inFlight_; }

    const Stats &stats() const { return stats_; }

    /**
     * Read-only per-channel telemetry views, one per channel in
     * channel order. Captured once at construction; the counters
     * behind the pointers stay live for the system's lifetime.
     */
    const std::vector<ChannelTelemetry> &
    telemetry() const
    {
        return views_;
    }

    /** Aggregate row-buffer hit rate over one tier's channels. */
    double rowHitRate(MemTier tier) const;

    /** Aggregate row-buffer hit rate over all channels. */
    double rowHitRate() const;

    /** Aggregate CAS row hits / misses over one tier's channels. */
    std::uint64_t rowHits(MemTier tier) const;
    std::uint64_t rowMisses(MemTier tier) const;

    /**
     * Register tier aggregates under "mem.*" plus every channel (and
     * bank) under "mem.<channel-name>.*".
     */
    void registerMetrics(MetricRegistry &reg) const;

  private:
    /**
     * One channel's router: owns every model the plan built for the
     * channel and forwards new enqueues to the active one. Stable
     * identity — the PDES executor binds a lane to the Slot once and
     * fidelity switches happen inside it — while observer methods
     * (stats, spec, telemetry) always answer for the primary model,
     * so detailed-only behavior is unchanged.
     */
    class Slot final : public MemoryModel
    {
      public:
        void
        enqueue(Request req, ChannelAddr where) override
        {
            active_->enqueue(std::move(req), where);
        }

        void
        setCompletionHook(std::function<void(TimePs)> hook) override
        {
            for (auto &[kind, m] : models_)
                m->setCompletionHook(hook);
        }

        std::size_t
        queued() const override
        {
            std::size_t q = 0;
            for (const auto &[kind, m] : models_)
                q += m->queued();
            return q;
        }

        bool idle() const override { return queued() == 0; }

        const ChannelStats &
        stats() const override
        {
            return primary_->stats();
        }
        const DramSpec &spec() const override
        {
            return primary_->spec();
        }
        const std::string &name() const override
        {
            return primary_->name();
        }
        ChannelTelemetry
        telemetry() const override
        {
            return primary_->telemetry();
        }
        const ChannelHostStats &
        hostStats() const override
        {
            return primary_->hostStats();
        }

        /** Register a model; the first one added becomes primary. */
        void add(DramModel kind, std::unique_ptr<MemoryModel> m);

        /** Route subsequent enqueues to `kind`; panics if unbuilt. */
        void select(DramModel kind);

        /** The model `kind` resolves to; nullptr when unbuilt. */
        MemoryModel *find(DramModel kind) const;

      private:
        std::vector<std::pair<DramModel, std::unique_ptr<MemoryModel>>>
            models_;
        MemoryModel *primary_ = nullptr;
        MemoryModel *active_ = nullptr;
    };

    /** Register one channel's instruments from its telemetry view. */
    void registerChannelMetrics(MetricRegistry &reg,
                                const std::string &prefix,
                                const ChannelTelemetry &v) const;

    EventQueue &eq_;
    AddressMap map_;
    std::function<void(std::size_t, Request, ChannelAddr)> dispatch_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::vector<ChannelTelemetry> views_;
    DramModel activeModel_ = DramModel::kDetailed;
    std::uint64_t inFlight_ = 0;
    Stats stats_;
};

} // namespace mempod
