#include "mem/frontend.h"

#include <algorithm>

#include "common/log.h"

namespace mempod {

TraceFrontend::TraceFrontend(EventQueue &eq, MemoryManager &manager,
                             const LogicalToPhysical &placement,
                             std::uint32_t max_outstanding)
    : eq_(eq),
      manager_(manager),
      placement_(placement),
      maxOutstanding_(max_outstanding)
{
    MEMPOD_ASSERT(max_outstanding > 0, "need at least one MSHR");
}

void
TraceFrontend::setSource(TraceSource &source)
{
    ownedSource_.reset();
    source_ = &source;
    source_->reset();
    totalRecords_ = source_->size();
    headValid_ = source_->next(head_);
}

void
TraceFrontend::setTrace(const Trace &trace)
{
    auto owned = std::make_unique<VectorTraceSource>(trace);
    setSource(*owned);
    ownedSource_ = std::move(owned); // keep alive; setSource cleared it
}

void
TraceFrontend::start()
{
    MEMPOD_ASSERT(source_ != nullptr, "no trace source set");
    if (!headValid_)
        return;
    schedulePump(std::max(eq_.now(), head_.time));
}

void
TraceFrontend::stallUntil(TimePs until)
{
    if (until <= stalledUntil_)
        return;
    stalledUntil_ = until;
    schedulePump(until);
}

void
TraceFrontend::suspendCores(TimePs duration)
{
    timeShift_ += duration;
    stallUntil(eq_.now() + duration);
}

void
TraceFrontend::setFastForward(bool on, bool batch_admit)
{
    fastForward_ = on;
    batchAdmit_ = on && batch_admit;
}

bool
TraceFrontend::done() const
{
    return source_ != nullptr && !headValid_ && outstanding_ == 0;
}

double
TraceFrontend::ammatPs() const
{
    if (source_ == nullptr || totalRecords_ == 0)
        return 0.0;
    return totalStallPs_ / static_cast<double>(totalRecords_);
}

void
TraceFrontend::registerMetrics(MetricRegistry &reg,
                               std::uint32_t num_cores) const
{
    reg.addCounterFn("frontend.issued",
                     "trace records admitted into the memory system",
                     [this] { return issued_; });
    reg.attachCounter("frontend.completed",
                      "demand requests completed", &completed_);
    reg.addGauge("frontend.outstanding",
                 "demand requests in flight (MSHR occupancy)",
                 [this] { return static_cast<double>(outstanding_); });
    reg.addGauge("frontend.total_stall_ps",
                 "summed memory stall time over completed demands",
                 [this] { return totalStallPs_; });
    reg.addGauge("frontend.ammat_ps",
                 "average main-memory access time (total stall / "
                 "trace length)",
                 [this] { return ammatPs(); });
    reg.addGauge("frontend.cores_seen",
                 "cores that issued at least one request",
                 [this] { return static_cast<double>(perCore_.size()); });
    reg.attachCounter("frontend.mshr_wait_ps",
                      "summed admission delay behind the MSHR cap",
                      &mshrWaitPs_);
    reg.attachHistogram("frontend.latency_ns",
                        "per-request latency distribution (ns)",
                        &latencyNs_);
    reg.addGauge("frontend.latency_p50_ns",
                 "median per-request latency (ns)", [this] {
                     return static_cast<double>(latencyNs_.percentile(0.50));
                 });
    reg.addGauge("frontend.latency_p95_ns",
                 "95th-percentile per-request latency (ns)", [this] {
                     return static_cast<double>(latencyNs_.percentile(0.95));
                 });
    reg.addGauge("frontend.latency_p99_ns",
                 "99th-percentile per-request latency (ns)", [this] {
                     return static_cast<double>(latencyNs_.percentile(0.99));
                 });
    // Per-core series: the perCore_ vector grows on first touch, so
    // read through bounds-checked closures rather than raw pointers.
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        const std::string cp = "core" + std::to_string(c);
        reg.addCounterFn(cp + ".issued", "requests issued by this core",
                         [this, c] {
                             return c < perCore_.size()
                                        ? perCore_[c].requests
                                        : 0;
                         });
        reg.addCounterFn(cp + ".completed",
                         "requests completed for this core", [this, c] {
                             return c < perCore_.size()
                                        ? perCore_[c].completed
                                        : 0;
                         });
        reg.addGauge(cp + ".stall_ps",
                     "summed memory stall time for this core",
                     [this, c] {
                         return c < perCore_.size()
                                    ? perCore_[c].stallPs
                                    : 0.0;
                     });
        reg.addGauge(cp + ".ammat_ps",
                     "per-core AMMAT (stall / requests)", [this, c] {
                         if (c >= perCore_.size() ||
                             perCore_[c].requests == 0)
                             return 0.0;
                         return perCore_[c].stallPs /
                                perCore_[c].requests;
                     });
        // Percentiles, like everything per-core, read through
        // bounds-checked closures: perCore_ reallocates on growth.
        const double qs[] = {0.50, 0.95, 0.99};
        const char *names[] = {".latency_p50_ns", ".latency_p95_ns",
                               ".latency_p99_ns"};
        for (int i = 0; i < 3; ++i) {
            reg.addGauge(cp + names[i],
                         "per-core request-latency percentile (ns)",
                         [this, c, q = qs[i]] {
                             return c < perCore_.size()
                                        ? static_cast<double>(
                                              perCore_[c]
                                                  .latencyNs.percentile(q))
                                        : 0.0;
                         });
        }
    }
}

std::vector<double>
TraceFrontend::perCoreAmmatPs() const
{
    std::vector<double> out;
    out.reserve(perCore_.size());
    for (const auto &pc : perCore_)
        out.push_back(pc.requests ? pc.stallPs / pc.requests : 0.0);
    return out;
}

void
TraceFrontend::schedulePump(TimePs when)
{
    when = std::max(when, eq_.now());
    if (pumpScheduledAt_ <= when)
        return;
    pumpScheduledAt_ = when;
    eq_.schedule(when, [this, when] {
        if (pumpScheduledAt_ == when)
            pumpScheduledAt_ = kTimeNever;
        pump();
    });
}

void
TraceFrontend::pump()
{
    const TimePs now = eq_.now();
    if (now < stalledUntil_) {
        schedulePump(stalledUntil_);
        return;
    }
    inPump_ = true;
    while (headValid_ && outstanding_ < maxOutstanding_) {
        const TraceRecord rec = head_;
        const TimePs due = rec.time + timeShift_;
        if (due > now) {
            // Fast-forward batch admission: with an instant-completion
            // warm model, future records may be admitted early — but
            // never past the next scheduled event (window boundary,
            // migration timer), which must observe the record stream
            // at its own instant.
            if (!batchAdmit_ || due >= eq_.nextTime()) {
                schedulePump(due);
                inPump_ = false;
                return;
            }
        }
        const bool ff = fastForward_;
        const std::uint64_t record = issued_;
        ++issued_;
        headValid_ = source_->next(head_);
        ++outstanding_;
        const Addr phys = placement_.physicalAddr(rec.core, rec.coreLocal);
        const TimePs arrival = due;
        const std::uint8_t core = rec.core;
        if (core >= perCore_.size())
            perCore_.resize(core + 1);
        ++perCore_[core].requests;
        if (!ff)
            mshrWaitPs_ += now - arrival;
        std::uint64_t trace_id = 0;
        if (Tracer *tr = eq_.tracer();
            tr != nullptr && tr->sampleDemand(record)) {
            trace_id = record + 1;
            const std::uint32_t tid = coreTrack(*tr, core);
            TraceArgs a;
            a.add("core", core)
                .add("write",
                     rec.type == AccessType::kWrite ? 1u : 0u)
                .add("record", record);
            tr->asyncBegin(tid, arrival, "req", trace_id, "demand",
                           a.str());
            if (!ff && now > arrival) {
                tr->asyncBegin(tid, arrival, "req", trace_id,
                               "mshr_wait");
                tr->asyncEnd(tid, now, "req", trace_id, "mshr_wait");
            }
        }
        Demand d;
        d.homeAddr = phys;
        d.type = rec.type;
        d.arrival = arrival;
        d.core = rec.core;
        d.traceId = trace_id;
        d.done = [this, arrival, core, trace_id, ff](TimePs fin) {
            if (!ff) {
                MEMPOD_ASSERT(fin >= arrival,
                              "completion precedes arrival");
                totalStallPs_ += static_cast<double>(fin - arrival);
                perCore_[core].stallPs +=
                    static_cast<double>(fin - arrival);
                latencyNs_.sample((fin - arrival) / 1000);
                perCore_[core].latencyNs.sample((fin - arrival) / 1000);
            }
            ++perCore_[core].completed;
            if (trace_id != 0) {
                if (Tracer *tr = eq_.tracer()) {
                    TraceArgs a;
                    if (!ff)
                        a.add("latency_ns", (fin - arrival) / 1000);
                    // Batch-admitted records can complete "before"
                    // their arrival timestamp; clamp so the span
                    // stays well-formed (zero-length).
                    tr->asyncEnd(coreTrack(*tr, core),
                                 std::max(fin, arrival), "req",
                                 trace_id, "demand", a.str());
                }
            }
            ++completed_;
            MEMPOD_ASSERT(outstanding_ > 0, "completion underflow");
            --outstanding_;
            // Instant (functional) completions land while the pump
            // loop is still running; it will admit the next record
            // itself, so re-entering here would recurse unboundedly.
            if (!inPump_)
                pump();
        };
        manager_.handleDemand(std::move(d));
    }
    inPump_ = false;
}

std::uint32_t
TraceFrontend::coreTrack(Tracer &tr, std::uint8_t core)
{
    return tr.track("core" + std::to_string(core));
}

} // namespace mempod
