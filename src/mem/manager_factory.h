/**
 * @file
 * Self-registering factory tying the Mechanism tag to concrete
 * MemoryManager classes. Each mechanism's translation unit registers
 * its builder from a static initializer, so SimConfig stays data-only
 * (sim/config.h includes no mechanism headers) and adding a mechanism
 * touches only its own files plus one registration line.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.h"

namespace mempod {

class EventQueue;
class MemoryManager;
class MemorySystem;

class ManagerFactory
{
  public:
    /** Builds a manager for `cfg.mechanism` from the full config. */
    using Builder = std::function<std::unique_ptr<MemoryManager>(
        const SimConfig &cfg, EventQueue &eq, MemorySystem &mem)>;

    /**
     * Register `builder` for `m`. Call once per mechanism, from a
     * static initializer (see MEMPOD_REGISTER_MANAGER); duplicate
     * registration panics.
     */
    static void registerBuilder(Mechanism m, Builder builder);

    /** True when a builder for `m` is registered. */
    static bool known(Mechanism m);

    /** Canonical names of every registered mechanism, sorted. */
    static std::vector<std::string> registeredNames();

    /**
     * Build the manager selected by `cfg.mechanism`. Panics when no
     * builder is registered for it.
     */
    static std::unique_ptr<MemoryManager> build(const SimConfig &cfg,
                                                EventQueue &eq,
                                                MemorySystem &mem);
};

/**
 * Registers `builder_expr` (a ManagerFactory::Builder) for `mech` at
 * static-initialization time. Use at namespace scope in the
 * mechanism's .cc file.
 */
#define MEMPOD_REGISTER_MANAGER(mech, builder_expr)                        \
    namespace {                                                            \
    const bool mempodManagerRegistered_ = [] {                             \
        ::mempod::ManagerFactory::registerBuilder((mech), (builder_expr)); \
        return true;                                                       \
    }();                                                                   \
    }

} // namespace mempod
