#include "mem/address_map.h"

#include <numeric>

#include "common/log.h"

namespace mempod {

void
SystemGeometry::validate() const
{
    MEMPOD_ASSERT(numPods >= 1, "need at least one pod");
    MEMPOD_ASSERT(fastBytes % kPageBytes == 0 && slowBytes % kPageBytes == 0,
                  "capacities must be page aligned");
    MEMPOD_ASSERT(fastChannels >= 1, "need fast channels");
    MEMPOD_ASSERT(fastChannels % numPods == 0,
                  "fast channels (%u) must divide evenly into pods (%u)",
                  fastChannels, numPods);
    MEMPOD_ASSERT(slowChannels % numPods == 0 || slowChannels == 0,
                  "slow channels (%u) must divide evenly into pods (%u)",
                  slowChannels, numPods);
    MEMPOD_ASSERT(fastPages() % fastChannels == 0,
                  "fast pages must interleave evenly over channels");
    if (slowChannels > 0) {
        MEMPOD_ASSERT(slowPages() % slowChannels == 0,
                      "slow pages must interleave evenly over channels");
    } else {
        MEMPOD_ASSERT(slowBytes == 0, "slow capacity without channels");
    }
}

SystemGeometry
SystemGeometry::paper()
{
    return SystemGeometry{1_GiB, 8_GiB, 8, 4, 4};
}

SystemGeometry
SystemGeometry::tiny()
{
    return SystemGeometry{16_MiB, 128_MiB, 8, 4, 4};
}

SystemGeometry
SystemGeometry::singleTier(std::uint64_t bytes, std::uint32_t channels)
{
    SystemGeometry g;
    g.fastBytes = bytes;
    g.slowBytes = 0;
    g.fastChannels = channels;
    g.slowChannels = 0;
    g.numPods = 1;
    return g;
}

AddressMap::AddressMap(const SystemGeometry &geom,
                       const DramOrganization &fast,
                       const DramOrganization &slow)
    : geom_(geom), fastOrg_(fast), slowOrg_(slow)
{
    geom_.validate();
}

std::uint32_t
AddressMap::podOfPage(PageId p) const
{
    if (p < geom_.fastPages())
        return static_cast<std::uint32_t>(p % geom_.numPods);
    return static_cast<std::uint32_t>((p - geom_.fastPages()) %
                                      geom_.numPods);
}

std::uint64_t
AddressMap::podLocalOfPage(PageId p) const
{
    if (p < geom_.fastPages())
        return p / geom_.numPods;
    return geom_.fastPagesPerPod() +
           (p - geom_.fastPages()) / geom_.numPods;
}

PageId
AddressMap::pageOfPodLocal(std::uint32_t pod, std::uint64_t local) const
{
    MEMPOD_ASSERT(pod < geom_.numPods, "pod %u out of range", pod);
    MEMPOD_ASSERT(local < geom_.pagesPerPod(), "pod-local page overflow");
    if (local < geom_.fastPagesPerPod())
        return local * geom_.numPods + pod;
    const std::uint64_t slow_local = local - geom_.fastPagesPerPod();
    return geom_.fastPages() + slow_local * geom_.numPods + pod;
}

DecodedAddr
AddressMap::decode(Addr a) const
{
    MEMPOD_ASSERT(a < geom_.totalBytes(), "address 0x%llx out of range",
                  static_cast<unsigned long long>(a));
    DecodedAddr d;
    const PageId page = pageOf(a);
    const std::uint64_t in_page = a % kPageBytes;
    d.tier = tierOf(a);
    d.pod = podOfPage(page);

    std::uint64_t ch_local_page;
    const DramOrganization *org;
    if (d.tier == MemTier::kFast) {
        const std::uint64_t fpage = page;
        d.channel = static_cast<std::uint32_t>(fpage % geom_.fastChannels);
        ch_local_page = fpage / geom_.fastChannels;
        org = &fastOrg_;
    } else {
        const std::uint64_t spage = page - geom_.fastPages();
        d.channel = geom_.fastChannels +
                    static_cast<std::uint32_t>(spage % geom_.slowChannels);
        ch_local_page = spage / geom_.slowChannels;
        org = &slowOrg_;
    }

    const std::uint64_t ch_offset = ch_local_page * kPageBytes + in_page;
    const std::uint64_t chunk = ch_offset / org->rowBufferBytes;
    d.offsetInRow = ch_offset % org->rowBufferBytes;
    d.bank = static_cast<std::uint32_t>(chunk % org->totalBanks());
    d.row = static_cast<std::int64_t>(chunk / org->totalBanks());
    return d;
}

LogicalToPhysical::LogicalToPhysical(std::uint64_t total_pages,
                                     std::uint32_t num_cores,
                                     std::uint64_t seed)
    : totalPages_(total_pages), pagesPerCore_(total_pages / num_cores)
{
    MEMPOD_ASSERT(total_pages > 0 && num_cores > 0, "empty placement");
    // Pick a multiplicative stride coprime with totalPages so that the
    // affine map is a bijection on page ids.
    std::uint64_t s =
        (static_cast<std::uint64_t>(total_pages * 0.6180339887) | 1) +
        2 * (seed % 1024);
    if (s >= total_pages)
        s %= total_pages;
    if (s == 0)
        s = 1;
    while (std::gcd(s, total_pages) != 1)
        s += 2;
    stride_ = s % total_pages;
    offset_ = (seed * 0x9E3779B97F4A7C15ull) % total_pages;
}

PageId
LogicalToPhysical::physicalPage(std::uint64_t logical_page) const
{
    MEMPOD_ASSERT(logical_page < totalPages_, "logical page overflow");
    const __uint128_t prod =
        static_cast<__uint128_t>(logical_page) * stride_ + offset_;
    return static_cast<PageId>(prod % totalPages_);
}

Addr
LogicalToPhysical::physicalAddr(std::uint8_t core, Addr core_local) const
{
    const std::uint64_t core_page = core_local / kPageBytes;
    MEMPOD_ASSERT(core_page < pagesPerCore_,
                  "core %u footprint exceeds its allocation slice", core);
    const std::uint64_t logical = core * pagesPerCore_ + core_page;
    return physicalPage(logical) * kPageBytes + core_local % kPageBytes;
}

} // namespace mempod
