/**
 * @file
 * The memory request type exchanged between the frontend, migration
 * managers, and channel controllers. All requests move one 64 B line.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"

namespace mempod {

/** One 64 B memory transaction. */
struct Request
{
    /** Why this request exists; drives statistics attribution. */
    enum class Kind : std::uint8_t
    {
        kDemand,      //!< an original LLC-miss from the trace
        kMigration,   //!< page/line movement traffic
        kBookkeeping, //!< metadata-cache miss fill
    };

    Addr addr = 0;          //!< physical (post-remap) byte address
    AccessType type = AccessType::kRead;
    Kind kind = Kind::kDemand;
    TimePs arrival = 0;     //!< trace arrival time, for AMMAT accounting
    std::uint8_t core = 0;  //!< issuing core (demand requests)

    /** Invoked exactly once when the line transfer finishes. */
    std::function<void(TimePs finish)> onComplete;
};

} // namespace mempod
