/**
 * @file
 * The memory request type exchanged between the frontend, migration
 * managers, and channel controllers. All requests move one 64 B line.
 */
#pragma once

#include <cstdint>

#include "common/callback.h"
#include "common/types.h"

namespace mempod {

/**
 * Completion callback carried by every request. Move-only with a
 * 40-byte inline buffer: the demand path stores the frontend's
 * accounting closure (32 bytes) here directly — no wrapper layers, so
 * issuing a demand performs no heap allocation. The buffer is kept
 * deliberately tight because channels park these in a slab while the
 * data transfer completes; rare larger captures (migration-engine
 * barriers) take the boxed fallback.
 */
using CompletionCallback = MoveFunction<void(TimePs), 40>;

/**
 * One demand line access as a MemoryManager receives it: the OS view
 * of the address plus completion plumbing, before any remap. Field
 * order mirrors the old positional handleDemand signature, so brace
 * initialization reads the same way the call sites used to.
 */
struct Demand
{
    Addr homeAddr = 0; //!< OS-assigned physical address (pre-remap)
    AccessType type = AccessType::kRead;
    TimePs arrival = 0;    //!< trace arrival time (AMMAT accounting)
    std::uint8_t core = 0; //!< issuing core
    /** Tracing correlation id (0 = request not sampled). */
    std::uint64_t traceId = 0;
    /** When a migration lock parked it (blocked-time attribution). */
    TimePs parkedAt = 0;
    /** Invoked exactly once when the data transfer finishes. */
    CompletionCallback done{};
};

/** One 64 B memory transaction. */
struct Request
{
    /** Why this request exists; drives statistics attribution. */
    enum class Kind : std::uint8_t
    {
        kDemand,      //!< an original LLC-miss from the trace
        kMigration,   //!< page/line movement traffic
        kBookkeeping, //!< metadata-cache miss fill
    };

    Addr addr = 0;          //!< physical (post-remap) byte address
    AccessType type = AccessType::kRead;
    Kind kind = Kind::kDemand;
    TimePs arrival = 0;     //!< trace arrival time, for AMMAT accounting
    std::uint8_t core = 0;  //!< issuing core (demand requests)

    /**
     * Tracing correlation id: nonzero for sampled demand requests
     * (trace record index + 1), zero otherwise. Channels use it to
     * emit per-phase spans for exactly the sampled requests.
     */
    std::uint64_t traceId = 0;

    /** Invoked exactly once when the line transfer finishes. */
    CompletionCallback onComplete;
};

} // namespace mempod
