/**
 * @file
 * The dynamic memory-manager interface. A manager receives every
 * demand request at its OS-assigned physical home address, may
 * transparently remap it to the page's current location, updates its
 * activity tracking, and is responsible for eventually completing the
 * request (possibly after holding it while a migration involving its
 * page commits).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/decision_log.h"
#include "common/metrics.h"
#include "common/types.h"
#include "mem/request.h"

namespace mempod {

/** Statistics every migration mechanism reports. */
struct MigrationStats
{
    std::uint64_t migrations = 0;      //!< committed swaps (pages or lines)
    std::uint64_t bytesMoved = 0;      //!< total migration traffic
    std::uint64_t blockedRequests = 0; //!< demands delayed by a migration
    std::uint64_t intervals = 0;       //!< interval-trigger firings
    std::uint64_t candidatesSkipped = 0; //!< hot pages already in fast
    std::uint64_t wastedMigrations = 0;  //!< evicted before ever re-used
    std::uint64_t metaCacheHits = 0;
    std::uint64_t metaCacheMisses = 0;
    /** Summed demand delay behind in-flight swaps (AMMAT attribution). */
    std::uint64_t blockedPs = 0;
    /** Summed demand delay on metadata-cache misses (attribution). */
    std::uint64_t metadataPs = 0;
};

/** Base class for MemPod and all baseline mechanisms. */
class MemoryManager
{
  public:
    using CompletionFn = CompletionCallback;

    virtual ~MemoryManager() = default;

    /**
     * Handle one demand line access. `d.done` must be called exactly
     * once when the data transfer finishes; everything else is input.
     * (Until PR 4 this took six positional parameters — external
     * callers now brace-initialize a Demand in the same field order.)
     */
    virtual void handleDemand(Demand d) = 0;

    /** Arm interval timers; called once before the trace starts. */
    virtual void start() {}

    /**
     * Install a hook invoked when the mechanism freezes the cores for
     * a modeled software pass (duration as argument); the simulation
     * wires it to TraceFrontend::suspendCores. Mechanisms without such
     * stalls ignore it.
     */
    virtual void setCoreStallHook(std::function<void(TimePs)>) {}

    /** Mechanism name for reports. */
    virtual std::string name() const = 0;

    /**
     * Attach the shared migration decision ledger. Mechanisms record
     * every candidate selection, its tracker state and outcome, plus
     * per-demand near-tier touches for realized-benefit accounting.
     * Called before start(); never called when the ledger is disabled,
     * so `decisions_` doubles as the enable flag on the hot path.
     */
    virtual void setDecisionLog(DecisionLog *log) { decisions_ = log; }

    /**
     * Mechanism-level conservation laws, called by the invariant
     * checker: cheap count cross-checks every epoch, plus full remap /
     * location-table bijection scans when `paranoid`. Implementations
     * panic with a structured diagnostic on violation.
     */
    virtual void validateInvariants(bool paranoid) const
    {
        (void)paranoid;
    }

    virtual const MigrationStats &migrationStats() const { return mstats_; }

    /**
     * Demand requests (or parts of migrations) still owned by the
     * manager, in addition to MemorySystem::inFlight(). The simulation
     * drains until both are zero.
     */
    virtual std::uint64_t pendingWork() const { return 0; }

    /**
     * Register this mechanism's instruments. The base implementation
     * registers the aggregate MigrationStats under "migration.*"
     * (reading through migrationStats(), so mechanisms that aggregate
     * on demand stay consistent); overrides should call it and then
     * add their mechanism-specific instruments.
     */
    virtual void
    registerMetrics(MetricRegistry &reg)
    {
        reg.addCounterFn("migration.migrations",
                         "committed swaps (pages or lines)",
                         [this] { return migrationStats().migrations; });
        reg.addCounterFn("migration.bytes_moved",
                         "total migration traffic in bytes",
                         [this] { return migrationStats().bytesMoved; });
        reg.addCounterFn(
            "migration.blocked_requests",
            "demand requests delayed by an in-progress migration",
            [this] { return migrationStats().blockedRequests; });
        reg.addCounterFn("migration.intervals",
                         "interval-trigger firings",
                         [this] { return migrationStats().intervals; });
        reg.addCounterFn(
            "migration.candidates_skipped",
            "hot candidates already resident in fast memory",
            [this] { return migrationStats().candidatesSkipped; });
        reg.addCounterFn(
            "migration.wasted",
            "migrated pages evicted before ever being re-used",
            [this] { return migrationStats().wastedMigrations; });
        reg.addCounterFn("migration.meta_cache_hits",
                         "bookkeeping-cache hits on the demand path",
                         [this] { return migrationStats().metaCacheHits; });
        reg.addCounterFn(
            "migration.meta_cache_misses",
            "bookkeeping-cache misses on the demand path",
            [this] { return migrationStats().metaCacheMisses; });
        reg.addCounterFn(
            "migration.blocked_ps",
            "summed demand delay behind in-flight swaps",
            [this] { return migrationStats().blockedPs; });
        reg.addCounterFn(
            "migration.metadata_ps",
            "summed demand delay on metadata-cache misses",
            [this] { return migrationStats().metadataPs; });
    }

  protected:
    MigrationStats mstats_;
    DecisionLog *decisions_ = nullptr; //!< shared ledger (may be null)
};

} // namespace mempod
