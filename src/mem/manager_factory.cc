#include "mem/manager_factory.h"

#include <algorithm>
#include <map>

#include "common/log.h"
#include "mem/manager.h"

namespace mempod {

namespace {

/** Meyers singleton: safe against TU initialization order. */
std::map<Mechanism, ManagerFactory::Builder> &
registry()
{
    static std::map<Mechanism, ManagerFactory::Builder> builders;
    return builders;
}

} // namespace

void
ManagerFactory::registerBuilder(Mechanism m, Builder builder)
{
    MEMPOD_ASSERT(builder != nullptr, "null builder for %s",
                  mechanismName(m));
    const bool inserted =
        registry().emplace(m, std::move(builder)).second;
    MEMPOD_ASSERT(inserted, "duplicate manager registration for %s",
                  mechanismName(m));
}

bool
ManagerFactory::known(Mechanism m)
{
    return registry().contains(m);
}

std::vector<std::string>
ManagerFactory::registeredNames()
{
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &[m, builder] : registry())
        names.emplace_back(mechanismName(m));
    std::sort(names.begin(), names.end());
    return names;
}

std::unique_ptr<MemoryManager>
ManagerFactory::build(const SimConfig &cfg, EventQueue &eq,
                      MemorySystem &mem)
{
    auto it = registry().find(cfg.mechanism);
    MEMPOD_ASSERT(it != registry().end(),
                  "no manager registered for mechanism '%s'",
                  mechanismName(cfg.mechanism));
    return it->second(cfg, eq, mem);
}

} // namespace mempod
