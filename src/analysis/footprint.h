/**
 * @file
 * Offline trace characterization: traffic concentration (what share
 * of accesses the hottest N pages absorb — the quantity that decides
 * whether page migration can pay), working-set growth over time, and
 * per-core composition. Used by tools/trace_tool and by tests that
 * pin down the synthetic workloads' shapes.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.h"

namespace mempod {

/** Concentration and footprint statistics of one trace. */
struct FootprintStats
{
    std::uint64_t totalAccesses = 0;
    std::uint64_t distinctPages = 0; //!< (core, page) pairs

    /**
     * Traffic concentration curve: share of all accesses absorbed by
     * the hottest 1 / 10 / 100 / 1k / 10k pages (cumulative, 0..1).
     */
    std::vector<double> concentration; //!< size 5

    /** Share of pages touched exactly once. */
    double singleTouchFraction = 0.0;

    /** Gini-style skew index: 0 = uniform, ->1 = fully concentrated. */
    double skewIndex = 0.0;

    /**
     * Working-set curve: distinct pages touched within consecutive
     * windows of `windowRequests` accesses.
     */
    std::uint64_t windowRequests = 0;
    std::vector<std::uint64_t> workingSetPerWindow;

    /** Mean of workingSetPerWindow. */
    double meanWindowWorkingSet() const;
};

/** The pages-per-bucket boundaries of the concentration curve. */
inline constexpr std::uint64_t kConcentrationBuckets[5] = {1, 10, 100,
                                                           1000, 10000};

/**
 * Characterize a trace.
 * @param window_requests Working-set window (default: the paper's
 *        5500-request interval).
 */
FootprintStats analyzeFootprint(const Trace &trace,
                                std::uint64_t window_requests = 5500);

} // namespace mempod
