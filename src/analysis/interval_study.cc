#include "analysis/interval_study.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/log.h"
#include "tracking/mea.h"

namespace mempod {

namespace {

/** Exact (count desc, id asc) ranking of one interval. */
std::vector<std::uint64_t>
oracleRanking(const std::vector<std::uint64_t> &stream, std::size_t begin,
              std::size_t end)
{
    std::unordered_map<std::uint64_t, std::uint64_t> counts;
    for (std::size_t i = begin; i < end; ++i)
        ++counts[stream[i]];
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked(
        counts.begin(), counts.end());
    std::sort(ranked.begin(), ranked.end(), [](auto &a, auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    std::vector<std::uint64_t> ids;
    ids.reserve(ranked.size());
    for (auto &[id, cnt] : ranked)
        ids.push_back(id);
    return ids;
}

/** Intersection size between a tier slice and a prediction set. */
std::size_t
tierHits(const std::vector<std::uint64_t> &ranking, std::size_t tier,
         const std::unordered_set<std::uint64_t> &predicted)
{
    const std::size_t begin = tier * 10;
    const std::size_t end = std::min(ranking.size(), begin + 10);
    std::size_t hits = 0;
    for (std::size_t i = begin; i < end; ++i)
        if (predicted.contains(ranking[i]))
            ++hits;
    return hits;
}

} // namespace

std::vector<std::uint64_t>
pageStreamFromTrace(const Trace &trace)
{
    std::vector<std::uint64_t> stream;
    stream.reserve(trace.size());
    for (const auto &r : trace) {
        stream.push_back((static_cast<std::uint64_t>(r.core) << 48) |
                         (r.coreLocal / kPageBytes));
    }
    return stream;
}

std::vector<std::uint64_t>
pageStreamFromSource(TraceSource &source)
{
    source.reset();
    std::vector<std::uint64_t> stream;
    stream.reserve(source.size());
    TraceRecord r;
    while (source.next(r)) {
        stream.push_back((static_cast<std::uint64_t>(r.core) << 48) |
                         (r.coreLocal / kPageBytes));
    }
    source.reset();
    return stream;
}

IntervalStudyResult
runIntervalStudy(const std::vector<std::uint64_t> &page_stream,
                 const IntervalStudyConfig &config)
{
    MEMPOD_ASSERT(config.intervalRequests >= 30,
                  "interval too small for tier analysis");
    IntervalStudyResult res;
    const std::size_t n_intervals =
        page_stream.size() / config.intervalRequests;
    if (n_intervals < 2)
        return res; // need at least one (past, next) pair

    // Oracle rankings for every interval.
    std::vector<std::vector<std::uint64_t>> rankings(n_intervals);
    for (std::size_t i = 0; i < n_intervals; ++i) {
        rankings[i] =
            oracleRanking(page_stream, i * config.intervalRequests,
                          (i + 1) * config.intervalRequests);
    }

    std::array<double, 3> counting{};
    std::array<double, 3> mea_hits{};
    std::array<double, 3> fc_hits{};
    double mea_pred_sizes = 0.0;

    for (std::size_t i = 0; i + 1 < n_intervals; ++i) {
        // Fresh trackers each interval: predictions are derived from
        // the *past interval* only.
        MeaTracker mea(config.meaEntries, config.meaCounterBits, 48);
        const std::size_t begin = i * config.intervalRequests;
        const std::size_t end = begin + config.intervalRequests;
        for (std::size_t k = begin; k < end; ++k)
            mea.touch(page_stream[k]);

        const auto mea_ranked = mea.snapshot();

        // Figure 1: bin-to-bin overlap of MEA's own ranking with the
        // oracle ranking of the same (past) interval.
        for (std::size_t t = 0; t < 3; ++t) {
            std::unordered_set<std::uint64_t> mea_bin;
            const std::size_t b = t * 10;
            for (std::size_t k = b;
                 k < std::min<std::size_t>(b + 10, mea_ranked.size());
                 ++k)
                mea_bin.insert(mea_ranked[k].id);
            counting[t] +=
                static_cast<double>(tierHits(rankings[i], t, mea_bin)) /
                10.0;
        }

        // Figures 2-3: predictions vs. next interval's tiers. MEA
        // predicts everything it tracks; FC gets the same budget.
        std::unordered_set<std::uint64_t> mea_pred;
        for (const auto &e : mea_ranked)
            mea_pred.insert(e.id);
        mea_pred_sizes += static_cast<double>(mea_pred.size());

        std::unordered_set<std::uint64_t> fc_pred;
        for (std::size_t k = 0;
             k < std::min(mea_pred.size(), rankings[i].size()); ++k)
            fc_pred.insert(rankings[i][k]);

        for (std::size_t t = 0; t < 3; ++t) {
            mea_hits[t] += static_cast<double>(
                tierHits(rankings[i + 1], t, mea_pred));
            fc_hits[t] += static_cast<double>(
                tierHits(rankings[i + 1], t, fc_pred));
        }
    }

    const double pairs = static_cast<double>(n_intervals - 1);
    res.intervals = n_intervals - 1;
    for (std::size_t t = 0; t < 3; ++t) {
        res.meaCountingAccuracy[t] = counting[t] / pairs;
        res.meaPredictionHits[t] = mea_hits[t] / pairs;
        res.fcPredictionHits[t] = fc_hits[t] / pairs;
        res.meaPredictionAccuracy[t] = res.meaPredictionHits[t] / 10.0;
        res.fcPredictionAccuracy[t] = res.fcPredictionHits[t] / 10.0;
    }
    res.meaPredictionsPerInterval = mea_pred_sizes / pairs;
    return res;
}

} // namespace mempod
