/**
 * @file
 * The Section 3 offline accuracy study: slice a page-access stream
 * into fixed-size intervals, run MEA and Full Counters side by side
 * with oracle knowledge of the next interval, and score both schemes'
 * counting accuracy (past interval) and prediction accuracy (next
 * interval) on the top three tiers of pages (ranks 1-10, 11-20,
 * 21-30) — the data behind Figures 1, 2 and 3.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/record.h"
#include "trace/source.h"

namespace mempod {

/** Parameters of the offline study (paper defaults). */
struct IntervalStudyConfig
{
    std::uint64_t intervalRequests = 5500; //!< avg requests per 50 us
    std::uint32_t meaEntries = 128;
    std::uint32_t meaCounterBits = 16; //!< study uses wide counters
};

/** Per-tier results, tiers = ranks 1-10 / 11-20 / 21-30. */
struct IntervalStudyResult
{
    std::uint64_t intervals = 0;

    /** Figure 1: MEA's own rank-bin overlap with oracle bins (0..1). */
    std::array<double, 3> meaCountingAccuracy{};

    /** Figures 2-3: average next-interval hits per tier (0..10). */
    std::array<double, 3> meaPredictionHits{};
    std::array<double, 3> fcPredictionHits{};

    /** Same, as fractions of tier size. */
    std::array<double, 3> meaPredictionAccuracy{};
    std::array<double, 3> fcPredictionAccuracy{};

    /** Average number of predictions MEA emitted per interval. */
    double meaPredictionsPerInterval = 0.0;
};

/** Reduce a trace to its page-id stream (core-disambiguated). */
std::vector<std::uint64_t> pageStreamFromTrace(const Trace &trace);

/** Same, streaming from a TraceSource (resets it first). */
std::vector<std::uint64_t> pageStreamFromSource(TraceSource &source);

/** Run the study over a page-id stream. */
IntervalStudyResult runIntervalStudy(
    const std::vector<std::uint64_t> &page_stream,
    const IntervalStudyConfig &config);

} // namespace mempod
