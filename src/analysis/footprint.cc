#include "analysis/footprint.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/log.h"

namespace mempod {

namespace {

std::uint64_t
pageKey(const TraceRecord &r)
{
    return (static_cast<std::uint64_t>(r.core) << 48) |
           (r.coreLocal / kPageBytes);
}

} // namespace

double
FootprintStats::meanWindowWorkingSet() const
{
    if (workingSetPerWindow.empty())
        return 0.0;
    double sum = 0;
    for (auto v : workingSetPerWindow)
        sum += static_cast<double>(v);
    return sum / static_cast<double>(workingSetPerWindow.size());
}

FootprintStats
analyzeFootprint(const Trace &trace, std::uint64_t window_requests)
{
    MEMPOD_ASSERT(window_requests > 0, "empty analysis window");
    FootprintStats out;
    out.totalAccesses = trace.size();
    out.windowRequests = window_requests;
    if (trace.empty())
        return out;

    std::unordered_map<std::uint64_t, std::uint64_t> counts;
    counts.reserve(trace.size() / 4);
    std::unordered_set<std::uint64_t> window;
    std::uint64_t in_window = 0;
    for (const auto &r : trace) {
        ++counts[pageKey(r)];
        window.insert(pageKey(r));
        if (++in_window == window_requests) {
            out.workingSetPerWindow.push_back(window.size());
            window.clear();
            in_window = 0;
        }
    }
    out.distinctPages = counts.size();

    // Sort access counts descending for the concentration curve.
    std::vector<std::uint64_t> sorted;
    sorted.reserve(counts.size());
    std::uint64_t single = 0;
    for (const auto &[page, c] : counts) {
        sorted.push_back(c);
        if (c == 1)
            ++single;
    }
    std::sort(sorted.rbegin(), sorted.rend());
    out.singleTouchFraction =
        static_cast<double>(single) / static_cast<double>(counts.size());

    const double total = static_cast<double>(trace.size());
    out.concentration.assign(5, 0.0);
    double cum = 0;
    std::size_t idx = 0;
    for (std::size_t b = 0; b < 5; ++b) {
        const std::uint64_t limit = kConcentrationBuckets[b];
        while (idx < sorted.size() && idx < limit)
            cum += static_cast<double>(sorted[idx++]);
        out.concentration[b] = cum / total;
    }

    // Gini-style skew over the sorted counts.
    double weighted = 0;
    double mass = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        weighted += static_cast<double>(sorted[i]) *
                    static_cast<double>(i + 1);
        mass += static_cast<double>(sorted[i]);
    }
    const double n = static_cast<double>(sorted.size());
    if (n > 1 && mass > 0) {
        // For counts sorted descending, Gini = (n + 1 - 2*weighted/mass)/n.
        out.skewIndex =
            std::max(0.0, (n + 1.0 - 2.0 * weighted / mass) / n);
    }
    return out;
}

} // namespace mempod
