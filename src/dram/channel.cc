#include "dram/channel.h"

#include <algorithm>

#include "common/log.h"
#include "common/tracer.h"

namespace mempod {

Channel::Channel(EventQueue &eq, const DramSpec &spec, std::string name,
                 TimePs extra_latency_ps, ControllerPolicy policy)
    : eq_(eq),
      spec_(spec),
      name_(std::move(name)),
      extraLatencyPs_(extra_latency_ps),
      policy_(policy),
      banks_(spec_.org.totalBanks()),
      autoPrePending_(spec_.org.totalBanks(), false)
{
    ranks_.reserve(spec_.org.ranks);
    for (std::uint32_t r = 0; r < spec_.org.ranks; ++r)
        ranks_.emplace_back(spec_.timing);
    nextRefreshAt_ = spec_.timing.ps(spec_.timing.tREFI);
}

TimePs
Channel::alignUp(TimePs t) const
{
    const TimePs p = spec_.timing.clockPeriodPs;
    return (t + p - 1) / p * p;
}

void
Channel::enqueue(Request req, ChannelAddr where)
{
    MEMPOD_ASSERT(where.bank < banks_.size(), "bank %u out of range",
                  where.bank);
    MEMPOD_ASSERT(where.row >= 0 &&
                      where.row < static_cast<std::int64_t>(
                                      spec_.org.rowsPerBank),
                  "row out of range");
    Entry e;
    e.at = where;
    e.enqueuedAt = eq_.now();
    e.traceId = req.traceId;
    e.kind = req.kind;
    if (req.onComplete) {
        if (freeCompletionSlots_.empty()) {
            e.cbSlot =
                static_cast<std::uint32_t>(completionSlots_.size());
            completionSlots_.emplace_back();
        } else {
            e.cbSlot = freeCompletionSlots_.back();
            freeCompletionSlots_.pop_back();
        }
        completionSlots_[e.cbSlot] = std::move(req.onComplete);
    }
    auto &q = req.type == AccessType::kWrite ? writeQ_ : readQ_;
    q.push_back(std::move(e));
    stats_.maxQueueDepth = std::max<std::uint64_t>(
        stats_.maxQueueDepth, readQ_.size() + writeQ_.size());
    scheduleTick(alignUp(eq_.now()));
}

void
Channel::scheduleTick(TimePs when)
{
    when = std::max(when, alignUp(eq_.now()));
    if (scheduledTickAt_ <= when)
        return; // an earlier or equal wakeup is already pending
    scheduledTickAt_ = when;
    eq_.schedule(when, [this, when] {
        if (scheduledTickAt_ == when)
            scheduledTickAt_ = kTimeNever;
        tick();
    });
}

void
Channel::performRefresh()
{
    const TimePs now = eq_.now();
    // All banks must be precharged; model the worst pending constraint.
    TimePs start = now;
    for (auto &b : banks_)
        if (b.isOpen())
            start = std::max(start, b.preAllowedAt());
    const TimePs end =
        start + spec_.timing.ps(spec_.timing.tRP + spec_.timing.tRFC);
    for (auto &b : banks_) {
        if (b.isOpen())
            b.blockUntil(start); // wait out tRAS, then implicit PRE
        // Force-close and block through the refresh cycle.
        if (b.isOpen())
            b.precharge(std::max(now, b.preAllowedAt()), spec_.timing);
        b.blockUntil(end);
    }
    nextRefreshAt_ += spec_.timing.ps(spec_.timing.tREFI);
    ++stats_.refreshes;
    if (Tracer *tr = eq_.tracer()) {
        const std::uint32_t tid = tr->track(name_);
        tr->durBegin(tid, start, "refresh");
        tr->durEnd(tid, end);
    }
}

void
Channel::tick()
{
    const TimePs now = eq_.now();

    if (now >= nextRefreshAt_) {
        performRefresh();
        if (!readQ_.empty() || !writeQ_.empty())
            scheduleTick(alignUp(earliestWork()));
        else
            scheduleTick(alignUp(nextRefreshAt_));
        return;
    }

    // Closed-page policy: retire auto-precharges that became legal
    // (even while the request queues are empty).
    if (policy_.closedPage) {
        for (std::uint32_t b = 0; b < banks_.size(); ++b) {
            if (!autoPrePending_[b] || !banks_[b].isOpen()) {
                autoPrePending_[b] = false;
                continue;
            }
            if (pendingHitFor(b, banks_[b].openRow()))
                continue; // a new hit arrived; keep the row open
            if (now >= banks_[b].preAllowedAt()) {
                banks_[b].precharge(now, spec_.timing);
                ++stats_.precharges;
                autoPrePending_[b] = false;
            }
        }
    }

    if (readQ_.empty() && writeQ_.empty()) {
        // Idle: stay armed only to finish pending auto-precharges;
        // closed banks refresh lazily when work next arrives.
        if (policy_.closedPage) {
            for (std::uint32_t b = 0; b < banks_.size(); ++b) {
                if (autoPrePending_[b] && banks_[b].isOpen()) {
                    scheduleTick(alignUp(std::max(
                        now + spec_.timing.clockPeriodPs,
                        banks_[b].preAllowedAt())));
                    break;
                }
            }
        }
        return;
    }

    const bool issued = tryIssue();

    // Reschedule: after issuing, try again next cycle; otherwise sleep
    // until the earliest timing constraint expires.
    if (issued)
        scheduleTick(now + spec_.timing.clockPeriodPs);
    else
        scheduleTick(alignUp(std::min(earliestWork(), nextRefreshAt_)));
}

bool
Channel::tryIssue()
{
    // Write-drain hysteresis.
    if (writeQ_.size() >= kDrainHigh)
        draining_ = true;
    else if (writeQ_.size() <= kDrainLow)
        draining_ = false;

    const bool writes_first = draining_ || readQ_.empty();
    if (writes_first) {
        if (tryIssueFrom(writeQ_, true))
            return true;
        return tryIssueFrom(readQ_, false);
    }
    if (tryIssueFrom(readQ_, false))
        return true;
    return tryIssueFrom(writeQ_, true);
}

bool
Channel::tryIssueFrom(std::vector<Entry> &q, bool is_write_queue)
{
    if (q.empty())
        return false;

    const TimePs now = eq_.now();
    const TimePs cas_gate = is_write_queue ? nextWrCasAt_ : nextRdCasAt_;

    // Anti-starvation: if the oldest entry has waited too long, only
    // consider it. Plain FCFS always considers only the oldest.
    const bool starved =
        policy_.fcfs || now - q.front().enqueuedAt > kStarvationAgePs;
    const std::size_t scan_limit = starved ? 1 : q.size();

    // Pass 1 (FR-FCFS): oldest ready row hit.
    for (std::size_t i = 0; i < scan_limit; ++i) {
        Entry &e = q[i];
        Bank &b = banks_[e.at.bank];
        if (b.openRow() != e.at.row)
            continue;
        if (now < b.casAllowedAt() || now < cas_gate)
            continue;
        const TimePs data_start =
            now + spec_.timing.ps(is_write_queue ? spec_.timing.tCWL
                                                 : spec_.timing.tCL);
        if (data_start < busFreeAt_)
            continue;
        issueCas(q, i, is_write_queue);
        return true;
    }

    // Pass 2: oldest entry whose bank is closed -> ACT.
    for (std::size_t i = 0; i < scan_limit; ++i) {
        Entry &e = q[i];
        Bank &b = banks_[e.at.bank];
        if (b.isOpen())
            continue;
        const std::uint32_t rank = e.at.bank / spec_.org.banksPerRank;
        const TimePs ready =
            std::max(b.actAllowedAt(), ranks_[rank].actAllowedAt());
        if (now < ready)
            continue;
        b.activate(now, e.at.row, spec_.timing);
        ranks_[rank].recordAct(now);
        e.causedAct = true;
        ++stats_.activates;
        return true;
    }

    // Pass 3: oldest conflicting entry -> PRE, unless the open row
    // still has pending hits (and we are not starving).
    for (std::size_t i = 0; i < scan_limit; ++i) {
        Entry &e = q[i];
        Bank &b = banks_[e.at.bank];
        if (!b.isOpen() || b.openRow() == e.at.row)
            continue;
        if (!starved && pendingHitFor(e.at.bank, b.openRow()))
            continue;
        if (now < b.preAllowedAt())
            continue;
        b.precharge(now, spec_.timing);
        ++stats_.precharges;
        return true;
    }

    return false;
}

void
Channel::issueCas(std::vector<Entry> &q, std::size_t idx,
                  bool is_write_queue)
{
    const TimePs now = eq_.now();
    Entry e = std::move(q[idx]);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));

    Bank &b = banks_[e.at.bank];
    const DramTiming &t = spec_.timing;
    TimePs data_end;
    if (is_write_queue) {
        data_end = b.write(now, t);
        ++stats_.writes;
        nextWrCasAt_ = std::max(nextWrCasAt_, now + t.ps(t.tCCD));
        nextRdCasAt_ =
            std::max(nextRdCasAt_, now + t.ps(t.tCWL + t.tBL + t.tWTR));
    } else {
        data_end = b.read(now, t);
        ++stats_.reads;
        nextRdCasAt_ = std::max(nextRdCasAt_, now + t.ps(t.tCCD));
        // Write data may start only after read data ends plus
        // turnaround: wrCas + tCWL >= rdCas + tCL + tBL + tRTW.
        const std::uint32_t rd_to_wr =
            t.tCL + t.tBL + t.tRTW > t.tCWL
                ? t.tCL + t.tBL + t.tRTW - t.tCWL
                : 0;
        nextWrCasAt_ = std::max(nextWrCasAt_, now + t.ps(rd_to_wr));
    }
    busFreeAt_ = std::max(busFreeAt_, data_end);
    stats_.busBusyPs += t.ps(t.tBL);

    if (e.causedAct)
        ++stats_.rowMisses;
    else
        ++stats_.rowHits;

    // Closed-page: close the row once nothing queued still wants it.
    if (policy_.closedPage)
        autoPrePending_[e.at.bank] = true;

    const TimePs finish = data_end + extraLatencyPs_;

    if (e.kind == Request::Kind::kDemand) {
        stats_.demandQueueWaitPs += now - e.enqueuedAt;
        stats_.demandServicePs += finish - now;
    }

    if (e.traceId != 0) {
        if (Tracer *tr = eq_.tracer()) {
            const std::uint32_t tid = tr->track(name_);
            const std::uint64_t id = e.traceId;
            tr->asyncBegin(tid, e.enqueuedAt, "req", id, "queue");
            tr->asyncEnd(tid, now, "req", id, "queue");
            TraceArgs a;
            a.add("bank", e.at.bank)
                .add("row_hit", e.causedAct ? 0u : 1u)
                .add("write", is_write_queue ? 1u : 0u);
            tr->asyncBegin(tid, now, "req", id, "service", a.str());
            tr->asyncEnd(tid, finish, "req", id, "service");
        }
    }

    if (completionHook_ || e.cbSlot != kNoSlot) {
        eq_.schedule(finish, [this, slot = e.cbSlot, finish] {
            CompletionCallback cb;
            if (slot != kNoSlot) {
                cb = std::move(completionSlots_[slot]);
                // Release before invoking: the callback may enqueue a
                // new request that reuses (or grows past) this slot.
                freeCompletionSlots_.push_back(slot);
            }
            if (completionHook_)
                completionHook_(finish);
            if (cb)
                cb(finish);
        });
    }
}

bool
Channel::pendingHitFor(std::uint32_t bank, std::int64_t row) const
{
    for (const auto &e : readQ_)
        if (e.at.bank == bank && e.at.row == row)
            return true;
    for (const auto &e : writeQ_)
        if (e.at.bank == bank && e.at.row == row)
            return true;
    return false;
}

TimePs
Channel::earliestWork() const
{
    const TimePs now = eq_.now();
    TimePs best = kTimeNever;

    auto consider = [&](const std::vector<Entry> &q, bool is_write) {
        const TimePs cas_gate = is_write ? nextWrCasAt_ : nextRdCasAt_;
        for (const auto &e : q) {
            const Bank &b = banks_[e.at.bank];
            TimePs ready;
            if (b.openRow() == e.at.row) {
                ready = std::max(b.casAllowedAt(), cas_gate);
                const TimePs cl =
                    spec_.timing.ps(is_write ? spec_.timing.tCWL
                                             : spec_.timing.tCL);
                if (ready + cl < busFreeAt_)
                    ready = busFreeAt_ - cl;
            } else if (!b.isOpen()) {
                const std::uint32_t rank =
                    e.at.bank / spec_.org.banksPerRank;
                ready = std::max(b.actAllowedAt(),
                                 ranks_[rank].actAllowedAt());
            } else {
                ready = b.preAllowedAt();
            }
            best = std::min(best, std::max(ready, now));
        }
    };
    consider(readQ_, false);
    consider(writeQ_, true);

    if (best == kTimeNever)
        return nextRefreshAt_;
    // Never return "now" exactly: the caller already failed to issue at
    // now, so wait at least one cycle to avoid a zero-progress respin.
    return std::max(best, now + spec_.timing.clockPeriodPs);
}

double
Channel::rowHitRate() const
{
    const std::uint64_t total = stats_.rowHits + stats_.rowMisses;
    return total ? static_cast<double>(stats_.rowHits) / total : 0.0;
}

double
Channel::busUtilization() const
{
    const TimePs now = eq_.now();
    return now ? static_cast<double>(stats_.busBusyPs) / now : 0.0;
}

void
Channel::registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const
{
    reg.attachCounter(prefix + ".reads", "read CAS commands issued",
                      &stats_.reads);
    reg.attachCounter(prefix + ".writes", "write CAS commands issued",
                      &stats_.writes);
    reg.attachCounter(prefix + ".row_hits",
                      "CAS commands that required no ACT",
                      &stats_.rowHits);
    reg.attachCounter(prefix + ".row_misses",
                      "CAS commands preceded by their own ACT",
                      &stats_.rowMisses);
    reg.attachCounter(prefix + ".activates", "ACT commands issued",
                      &stats_.activates);
    reg.attachCounter(prefix + ".precharges", "PRE commands issued",
                      &stats_.precharges);
    reg.attachCounter(prefix + ".refreshes", "refresh cycles performed",
                      &stats_.refreshes);
    reg.attachCounter(prefix + ".bus_busy_ps",
                      "picoseconds the data bus carried a burst",
                      &stats_.busBusyPs);
    reg.attachCounter(prefix + ".demand_queue_wait_ps",
                      "summed demand wait from enqueue to CAS",
                      &stats_.demandQueueWaitPs);
    reg.attachCounter(prefix + ".demand_service_ps",
                      "summed demand CAS-to-completion time",
                      &stats_.demandServicePs);
    reg.addGauge(prefix + ".queue_depth",
                 "requests queued at the controller right now",
                 [this] { return static_cast<double>(queued()); });
    reg.addGauge(prefix + ".max_queue_depth",
                 "high-water mark of the controller queues", [this] {
                     return static_cast<double>(stats_.maxQueueDepth);
                 });
    reg.addGauge(prefix + ".row_hit_rate",
                 "fraction of CAS commands hitting the open row",
                 [this] { return rowHitRate(); });
    reg.addGauge(prefix + ".bus_utilization",
                 "fraction of simulated time the data bus was busy",
                 [this] { return busUtilization(); });
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        const std::string bp = prefix + ".bank" + std::to_string(b);
        const Bank::Stats &bs = banks_[b].stats();
        reg.attachCounter(bp + ".activates", "per-bank ACT commands",
                          &bs.activates);
        reg.attachCounter(bp + ".reads", "per-bank read CAS commands",
                          &bs.reads);
        reg.attachCounter(bp + ".writes", "per-bank write CAS commands",
                          &bs.writes);
    }
}

} // namespace mempod
