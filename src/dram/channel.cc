#include "dram/channel.h"

#include <algorithm>

#include "common/log.h"
#include "common/tracer.h"

namespace mempod {

Channel::Channel(EventQueue &eq, const DramSpec &spec, std::string name,
                 TimePs extra_latency_ps, ControllerPolicy policy,
                 DomainId domain)
    : eq_(eq),
      spec_(spec),
      tbl_(CommandTimingTable::build(spec.timing)),
      name_(std::move(name)),
      extraLatencyPs_(extra_latency_ps),
      policy_(policy),
      domain_(domain),
      banks_(tbl_, spec_.org.totalBanks(), spec_.org.banksPerRank),
      autoPrePending_(spec_.org.totalBanks(), false)
{
    const std::uint32_t nbanks = spec_.org.totalBanks();
    const std::size_t words = (nbanks + 63) / 64;
    for (Queue *q : {&readQ_, &writeQ_}) {
        q->banks.assign(nbanks, BankList{});
        q->workWords.assign(words, 0);
    }
    nextRefreshAt_ = spec_.timing.tREFI;
}

TimePs
Channel::alignUp(TimePs t) const
{
    const TimePs p = spec_.timing.clockPeriodPs;
    return (t + p - 1) / p * p;
}

void
Channel::pushEntry(Queue &q, std::uint32_t idx)
{
    Entry &e = entries_[idx];
    e.prevG = q.tail;
    e.nextG = kNil;
    if (q.tail != kNil)
        entries_[q.tail].nextG = idx;
    else
        q.head = idx;
    q.tail = idx;

    const std::uint32_t b = e.at.bank;
    BankList &bl = q.banks[b];
    e.prevB = bl.tail;
    e.nextB = kNil;
    if (bl.tail != kNil) {
        entries_[bl.tail].nextB = idx;
    } else {
        bl.head = idx;
        q.workWords[b / 64] |= std::uint64_t{1} << (b % 64);
    }
    bl.tail = idx;
    ++q.size;

    // The hit/conflict caches are maintained only while the row is
    // open; a closed bank recomputes them on its next ACT.
    if (banks_.isOpen(b)) {
        if (banks_.openRow(b) == e.at.row) {
            if (bl.oldestHit == kNil)
                bl.oldestHit = idx;
        } else if (bl.oldestMiss == kNil) {
            bl.oldestMiss = idx;
        }
    }
}

void
Channel::removeEntry(Queue &q, std::uint32_t idx)
{
    Entry &e = entries_[idx];
    if (e.prevG != kNil)
        entries_[e.prevG].nextG = e.nextG;
    else
        q.head = e.nextG;
    if (e.nextG != kNil)
        entries_[e.nextG].prevG = e.prevG;
    else
        q.tail = e.prevG;

    const std::uint32_t b = e.at.bank;
    BankList &bl = q.banks[b];
    if (e.prevB != kNil)
        entries_[e.prevB].nextB = e.nextB;
    else
        bl.head = e.nextB;
    if (e.nextB != kNil)
        entries_[e.nextB].prevB = e.prevB;
    else
        bl.tail = e.prevB;
    --q.size;

    if (bl.head == kNil) {
        q.workWords[b / 64] &= ~(std::uint64_t{1} << (b % 64));
        bl.oldestHit = kNil;
        bl.oldestMiss = kNil;
        return;
    }
    // The bank FIFO is age-ordered, so the next cached entry is the
    // first match at or after the removed entry's successor.
    if (bl.oldestHit == idx) {
        bl.oldestHit = kNil;
        const std::int64_t row = banks_.openRow(b);
        for (std::uint32_t i = e.nextB; i != kNil;
             i = entries_[i].nextB) {
            if (entries_[i].at.row == row) {
                bl.oldestHit = i;
                break;
            }
        }
    }
    if (bl.oldestMiss == idx) {
        bl.oldestMiss = kNil;
        const std::int64_t row = banks_.openRow(b);
        for (std::uint32_t i = e.nextB; i != kNil;
             i = entries_[i].nextB) {
            if (entries_[i].at.row != row) {
                bl.oldestMiss = i;
                break;
            }
        }
    }
}

void
Channel::refreshBankCaches(Queue &q, std::uint32_t b)
{
    BankList &bl = q.banks[b];
    bl.oldestHit = kNil;
    bl.oldestMiss = kNil;
    if (!banks_.isOpen(b))
        return;
    const std::int64_t row = banks_.openRow(b);
    for (std::uint32_t i = bl.head; i != kNil; i = entries_[i].nextB) {
        if (entries_[i].at.row == row) {
            if (bl.oldestHit == kNil)
                bl.oldestHit = i;
        } else if (bl.oldestMiss == kNil) {
            bl.oldestMiss = i;
        }
        if (bl.oldestHit != kNil && bl.oldestMiss != kNil)
            break;
    }
}

void
Channel::enqueue(Request req, ChannelAddr where)
{
    MEMPOD_ASSERT(where.bank < banks_.numBanks(), "bank %u out of range",
                  where.bank);
    MEMPOD_ASSERT(where.row >= 0 &&
                      where.row < static_cast<std::int64_t>(
                                      spec_.org.rowsPerBank),
                  "row out of range");
    std::uint32_t idx;
    if (freeEntries_.empty()) {
        idx = static_cast<std::uint32_t>(entries_.size());
        entries_.emplace_back();
    } else {
        idx = freeEntries_.back();
        freeEntries_.pop_back();
        entries_[idx] = Entry{};
    }
    Entry &e = entries_[idx];
    e.at = where;
    e.enqueuedAt = eq_.now();
    e.seq = nextSeq_++;
    e.traceId = req.traceId;
    e.kind = req.kind;
    if (req.onComplete) {
        if (freeCompletionSlots_.empty()) {
            e.cbSlot =
                static_cast<std::uint32_t>(completionSlots_.size());
            completionSlots_.emplace_back();
        } else {
            e.cbSlot = freeCompletionSlots_.back();
            freeCompletionSlots_.pop_back();
        }
        completionSlots_[e.cbSlot] = std::move(req.onComplete);
    }
    pushEntry(req.type == AccessType::kWrite ? writeQ_ : readQ_, idx);
    ++stats_.queuedNow;
    stats_.maxQueueDepth =
        std::max(stats_.maxQueueDepth, stats_.queuedNow);
    scheduleTick(alignUp(eq_.now()));
}

void
Channel::scheduleTick(TimePs when)
{
    when = std::max(when, alignUp(eq_.now()));
    if (scheduledTickAt_ <= when)
        return; // an earlier or equal wakeup is already pending
    scheduledTickAt_ = when;
    eq_.scheduleIn(domain_, when, [this, when] {
        if (scheduledTickAt_ == when)
            scheduledTickAt_ = kTimeNever;
        tick();
    });
}

void
Channel::resumeAt(TimePs now)
{
    const TimePs refi = spec_.timing.tREFI;
    if (refi == 0 || nextRefreshAt_ > now)
        return;
    const std::uint64_t missed = (now - nextRefreshAt_) / refi + 1;
    nextRefreshAt_ += missed * refi;
    stats_.refreshes += missed;
}

void
Channel::performRefresh()
{
    const TimePs now = eq_.now();
    const std::uint32_t nbanks = banks_.numBanks();
    // All banks must be precharged; model the worst pending constraint.
    TimePs start = now;
    for (std::uint32_t b = 0; b < nbanks; ++b)
        if (banks_.isOpen(b))
            start = std::max(start, banks_.readyAt(b, DramCmd::kPre));
    const TimePs end = start + spec_.timing.tRP + spec_.timing.tRFC;
    for (std::uint32_t b = 0; b < nbanks; ++b) {
        if (banks_.isOpen(b)) {
            // Wait out tRAS, then implicit PRE (uncounted: refresh
            // precharges are part of the refresh cycle, not demand).
            banks_.blockUntil(b, start);
            banks_.precharge(
                std::max(now, banks_.readyAt(b, DramCmd::kPre)), b);
        }
        // Block through the refresh cycle.
        banks_.blockUntil(b, end);
        // Every row is closed now; the caches rebuild on the next ACT.
        readQ_.banks[b].oldestHit = kNil;
        readQ_.banks[b].oldestMiss = kNil;
        writeQ_.banks[b].oldestHit = kNil;
        writeQ_.banks[b].oldestMiss = kNil;
    }
    nextRefreshAt_ += spec_.timing.tREFI;
    ++stats_.refreshes;
    if (Tracer *tr = eq_.tracer()) {
        const std::uint32_t tid = tr->track(name_);
        tr->durBegin(tid, start, "refresh");
        tr->durEnd(tid, end);
    }
}

void
Channel::tick()
{
    const TimePs now = eq_.now();

    if (now >= nextRefreshAt_) {
        performRefresh();
        if (readQ_.size != 0 || writeQ_.size != 0)
            scheduleTick(alignUp(earliestWork()));
        else
            scheduleTick(alignUp(nextRefreshAt_));
        return;
    }

    // Closed-page policy: retire auto-precharges that became legal
    // (even while the request queues are empty).
    if (policy_.closedPage) {
        for (std::uint32_t b = 0; b < banks_.numBanks(); ++b) {
            if (!autoPrePending_[b] || !banks_.isOpen(b)) {
                autoPrePending_[b] = false;
                continue;
            }
            if (openRowHasPendingHit(b))
                continue; // a new hit arrived; keep the row open
            if (now >= banks_.readyAt(b, DramCmd::kPre)) {
                banks_.precharge(now, b);
                refreshBankCaches(readQ_, b);
                refreshBankCaches(writeQ_, b);
                ++stats_.precharges;
                autoPrePending_[b] = false;
            }
        }
    }

    if (readQ_.size == 0 && writeQ_.size == 0) {
        // Idle: stay armed only to finish pending auto-precharges;
        // closed banks refresh lazily when work next arrives.
        if (policy_.closedPage) {
            for (std::uint32_t b = 0; b < banks_.numBanks(); ++b) {
                if (autoPrePending_[b] && banks_.isOpen(b)) {
                    scheduleTick(alignUp(std::max(
                        now + spec_.timing.clockPeriodPs,
                        banks_.readyAt(b, DramCmd::kPre))));
                    break;
                }
            }
        }
        return;
    }

    const bool issued = tryIssue();
    ++hostStats_.ticks;
    if (issued)
        ++hostStats_.issued;

    // Reschedule: after issuing, try again next cycle; otherwise sleep
    // until the earliest timing constraint expires.
    if (issued)
        scheduleTick(now + spec_.timing.clockPeriodPs);
    else
        scheduleTick(alignUp(std::min(earliestWork(), nextRefreshAt_)));
}

bool
Channel::tryIssue()
{
    // Write-drain hysteresis.
    if (writeQ_.size >= kDrainHigh)
        draining_ = true;
    else if (writeQ_.size <= kDrainLow)
        draining_ = false;

    const bool writes_first = draining_ || readQ_.size == 0;
    if (writes_first) {
        if (tryIssueFrom(writeQ_, true))
            return true;
        return tryIssueFrom(readQ_, false);
    }
    if (tryIssueFrom(readQ_, false))
        return true;
    return tryIssueFrom(writeQ_, true);
}

bool
Channel::tryIssueFrom(Queue &q, bool is_write_queue)
{
    if (q.size == 0)
        return false;

    ++hostStats_.arbPasses;
    for (const std::uint64_t w : q.workWords)
        hostStats_.workBanks +=
            static_cast<std::uint64_t>(std::popcount(w));

    const TimePs now = eq_.now();
    const TimePs cas_gate = is_write_queue ? nextWrCasAt_ : nextRdCasAt_;
    const DramCmd cas = is_write_queue ? DramCmd::kWr : DramCmd::kRd;
    const TimePs cas_to_data =
        is_write_queue ? spec_.timing.tCWL : spec_.timing.tCL;

    // Anti-starvation: if the oldest entry has waited too long, only
    // consider it. Plain FCFS always considers only the oldest.
    const Entry &front = entries_[q.head];
    if (policy_.fcfs || now - front.enqueuedAt > kStarvationAgePs) {
        // Single-candidate arbitration on the globally oldest entry,
        // same CAS/ACT/PRE precedence as the general path below.
        const std::uint32_t b = front.at.bank;
        if (banks_.openRow(b) == front.at.row) {
            if (now >= banks_.readyAt(b, cas) && now >= cas_gate &&
                now + cas_to_data >= busFreeAt_) {
                issueCas(q, q.head, is_write_queue);
                return true;
            }
        } else if (!banks_.isOpen(b)) {
            if (now >= banks_.actReadyAt(b)) {
                Entry &e = entries_[q.head];
                banks_.activate(now, b, e.at.row);
                refreshBankCaches(readQ_, b);
                refreshBankCaches(writeQ_, b);
                e.causedAct = true;
                ++stats_.activates;
                return true;
            }
        } else if (now >= banks_.readyAt(b, DramCmd::kPre)) {
            // Starving: close the conflicting row even if other
            // queued requests still hit it.
            banks_.precharge(now, b);
            refreshBankCaches(readQ_, b);
            refreshBankCaches(writeQ_, b);
            ++stats_.precharges;
            return true;
        }
        return false;
    }

    // Pass 1 (FR-FCFS): oldest ready row hit. The CAS gate and the
    // data-bus check are bank-independent, so they hoist.
    if (now >= cas_gate && now + cas_to_data >= busFreeAt_) {
        std::uint32_t best = kNil;
        std::uint64_t best_seq = 0;
        forEachWorkBank(q, [&](std::uint32_t b) {
            const std::uint32_t h = q.banks[b].oldestHit;
            if (h == kNil || now < banks_.readyAt(b, cas))
                return;
            if (best == kNil || entries_[h].seq < best_seq) {
                best = h;
                best_seq = entries_[h].seq;
            }
        });
        if (best != kNil) {
            issueCas(q, best, is_write_queue);
            return true;
        }
    }

    // Pass 2: oldest entry whose bank is closed -> ACT.
    {
        std::uint32_t best = kNil;
        std::uint64_t best_seq = 0;
        forEachWorkBank(q, [&](std::uint32_t b) {
            if (banks_.isOpen(b) || now < banks_.actReadyAt(b))
                return;
            const std::uint32_t h = q.banks[b].head;
            if (best == kNil || entries_[h].seq < best_seq) {
                best = h;
                best_seq = entries_[h].seq;
            }
        });
        if (best != kNil) {
            Entry &e = entries_[best];
            const std::uint32_t b = e.at.bank;
            banks_.activate(now, b, e.at.row);
            refreshBankCaches(readQ_, b);
            refreshBankCaches(writeQ_, b);
            e.causedAct = true;
            ++stats_.activates;
            return true;
        }
    }

    // Pass 3: oldest conflicting entry -> PRE, unless the open row
    // still has pending hits.
    {
        std::uint32_t best = kNil;
        std::uint64_t best_seq = 0;
        forEachWorkBank(q, [&](std::uint32_t b) {
            const std::uint32_t m = q.banks[b].oldestMiss;
            if (m == kNil || openRowHasPendingHit(b) ||
                now < banks_.readyAt(b, DramCmd::kPre))
                return;
            if (best == kNil || entries_[m].seq < best_seq) {
                best = m;
                best_seq = entries_[m].seq;
            }
        });
        if (best != kNil) {
            const std::uint32_t b = entries_[best].at.bank;
            banks_.precharge(now, b);
            refreshBankCaches(readQ_, b);
            refreshBankCaches(writeQ_, b);
            ++stats_.precharges;
            return true;
        }
    }

    return false;
}

void
Channel::issueCas(Queue &q, std::uint32_t idx, bool is_write_queue)
{
    const TimePs now = eq_.now();
    Entry &e = entries_[idx];
    removeEntry(q, idx);
    --stats_.queuedNow;

    const std::uint32_t b = e.at.bank;
    const auto rd = cmdIndex(DramCmd::kRd);
    const auto wr = cmdIndex(DramCmd::kWr);
    TimePs data_end;
    if (is_write_queue) {
        data_end = banks_.write(now, b);
        ++stats_.writes;
        nextWrCasAt_ =
            std::max(nextWrCasAt_, now + tbl_.channel[wr][wr]);
        nextRdCasAt_ =
            std::max(nextRdCasAt_, now + tbl_.channel[wr][rd]);
    } else {
        data_end = banks_.read(now, b);
        ++stats_.reads;
        nextRdCasAt_ =
            std::max(nextRdCasAt_, now + tbl_.channel[rd][rd]);
        nextWrCasAt_ =
            std::max(nextWrCasAt_, now + tbl_.channel[rd][wr]);
    }
    busFreeAt_ = std::max(busFreeAt_, data_end);
    stats_.busBusyPs += tbl_.burstPs;

    if (e.causedAct)
        ++stats_.rowMisses;
    else
        ++stats_.rowHits;

    // Closed-page: close the row once nothing queued still wants it.
    if (policy_.closedPage)
        autoPrePending_[b] = true;

    const TimePs finish = data_end + extraLatencyPs_;

    if (e.kind == Request::Kind::kDemand) {
        stats_.demandQueueWaitPs += now - e.enqueuedAt;
        stats_.demandServicePs += finish - now;
    }

    if (e.traceId != 0) {
        if (Tracer *tr = eq_.tracer()) {
            const std::uint32_t tid = tr->track(name_);
            const std::uint64_t id = e.traceId;
            tr->asyncBegin(tid, e.enqueuedAt, "req", id, "queue");
            tr->asyncEnd(tid, now, "req", id, "queue");
            TraceArgs a;
            a.add("bank", e.at.bank)
                .add("row_hit", e.causedAct ? 0u : 1u)
                .add("write", is_write_queue ? 1u : 0u);
            tr->asyncBegin(tid, now, "req", id, "service", a.str());
            tr->asyncEnd(tid, finish, "req", id, "service");
        }
    }

    if (completionHook_ || e.cbSlot != kNil) {
        // Completions cross back to the coordinator domain: their
        // delta (CAS latency + burst + interconnect) lower-bounds the
        // executor's lookahead horizon.
        eq_.scheduleIn(EventQueue::kCoordinatorDomain, finish,
                       [this, slot = e.cbSlot, finish] {
            CompletionCallback cb;
            if (slot != kNil) {
                cb = std::move(completionSlots_[slot]);
                // Release before invoking: the callback may enqueue a
                // new request that reuses (or grows past) this slot.
                freeCompletionSlots_.push_back(slot);
            }
            if (completionHook_)
                completionHook_(finish);
            if (cb)
                cb(finish);
        });
    }

    freeEntries_.push_back(idx);
}

TimePs
Channel::earliestWork() const
{
    const TimePs now = eq_.now();
    TimePs best = kTimeNever;

    auto consider = [&](const Queue &q, bool is_write) {
        const TimePs cas_gate = is_write ? nextWrCasAt_ : nextRdCasAt_;
        const DramCmd cas = is_write ? DramCmd::kWr : DramCmd::kRd;
        const TimePs cl =
            is_write ? spec_.timing.tCWL : spec_.timing.tCL;
        forEachWorkBank(q, [&](std::uint32_t b) {
            const BankList &bl = q.banks[b];
            if (banks_.isOpen(b)) {
                if (bl.oldestHit != kNil) {
                    TimePs ready =
                        std::max(banks_.readyAt(b, cas), cas_gate);
                    if (ready + cl < busFreeAt_)
                        ready = busFreeAt_ - cl;
                    best = std::min(best, std::max(ready, now));
                }
                if (bl.oldestMiss != kNil) {
                    best = std::min(
                        best,
                        std::max(banks_.readyAt(b, DramCmd::kPre),
                                 now));
                }
            } else {
                best = std::min(
                    best, std::max(banks_.actReadyAt(b), now));
            }
        });
    };
    consider(readQ_, false);
    consider(writeQ_, true);

    if (best == kTimeNever)
        return nextRefreshAt_;
    // Never return "now" exactly: the caller already failed to issue at
    // now, so wait at least one cycle to avoid a zero-progress respin.
    return std::max(best, now + spec_.timing.clockPeriodPs);
}

ChannelTelemetry
Channel::telemetry() const
{
    ChannelTelemetry t;
    t.name = name_;
    t.stats = &stats_;
    t.bankActivates = banks_.activateCounts();
    t.bankReads = banks_.readCounts();
    t.bankWrites = banks_.writeCounts();
    t.numBanks = banks_.numBanks();
    return t;
}

} // namespace mempod
