/**
 * @file
 * The swappable memory-model interface. The MemorySystem routes every
 * line transfer through a MemoryModel per channel; which concrete
 * model sits behind the interface is a run-time choice:
 *
 *   kDetailed    the table-driven SoA channel controller (Channel):
 *                per-bank open-page state, FR-FCFS, refresh — the
 *                ground-truth engine.
 *   kFast        FastChannel: fixed per-tier service latency plus a
 *                bandwidth-capped queue, no bank state. Roughly an
 *                order of magnitude fewer events per request.
 *   kFunctional  FunctionalModel: completes every request inline at
 *                enqueue time with zero latency and zero events.
 *                Timing-free warming for sampled simulation: MEA
 *                trackers, remap tables and the decision ledger keep
 *                seeing the full demand stream while fast-forwarding.
 *
 * All models share the completion contract: the completion hook and
 * the request's own onComplete fire in the coordinator domain (for
 * event-driven models, via a scheduled completion whose delta is at
 * least the PDES lookahead; the functional model is serial-only and
 * fires them synchronously).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"
#include "dram/spec.h"
#include "dram/telemetry.h"
#include "mem/request.h"

namespace mempod {

/** Bank/row coordinates of a request within one channel. */
struct ChannelAddr
{
    std::uint32_t bank = 0; //!< rank-merged bank index
    std::int64_t row = 0;
};

/** Which memory model services a channel's requests. */
enum class DramModel : std::uint8_t
{
    kDetailed = 0,
    kFast = 1,
    kFunctional = 2,
};

/** Canonical config spelling ("detailed" / "fast" / "functional"). */
const char *dramModelName(DramModel m);

/** Parse a config spelling; returns false on an unknown name. */
bool dramModelFromName(const std::string &name, DramModel &out);

/**
 * Host-side controller mechanics for the profiler. Deterministic
 * (functions of the simulated request stream only) and always
 * counted. Event-free models leave everything zero.
 */
struct ChannelHostStats
{
    std::uint64_t ticks = 0;     //!< controller tick() invocations
    std::uint64_t arbPasses = 0; //!< per-queue arbitration passes
    std::uint64_t issued = 0;    //!< ticks that issued a command
    /** Sum over arbitration passes of banks-with-work (density =
     *  workBanks / arbPasses: how much of the ready-bank bitmask
     *  each FR-FCFS pass actually walks). */
    std::uint64_t workBanks = 0;
};

/** One channel's worth of memory behind a fidelity-agnostic API. */
class MemoryModel
{
  public:
    virtual ~MemoryModel() = default;

    /** Queue one line transfer; the model wakes itself up. */
    virtual void enqueue(Request req, ChannelAddr where) = 0;

    /**
     * Invoked inside every completion, before the request's own
     * onComplete. The MemorySystem uses this to track in-flight lines
     * without wrapping each request's callback. Set once at
     * construction time.
     */
    virtual void setCompletionHook(std::function<void(TimePs)> hook) = 0;

    /**
     * The fidelity controller is about to route traffic here again
     * after the model sat inactive since some earlier instant. Models
     * with wall-clock obligations forgive the debt accrued while
     * inactive — the detailed controller re-phases its refresh clock
     * so a measurement window is not spent retiring ~fastfwd/tREFI
     * catch-up refreshes that conceptually happened during warm-up.
     * Never called in single-fidelity runs (their outputs stay
     * byte-identical); default is a no-op.
     */
    virtual void resumeAt(TimePs) {}

    /** Requests accepted but not yet issued (or still in flight for
     *  models without an issue stage). */
    virtual std::size_t queued() const = 0;

    /** True when no request is queued. */
    virtual bool idle() const = 0;

    virtual const ChannelStats &stats() const = 0;
    virtual const DramSpec &spec() const = 0;
    virtual const std::string &name() const = 0;

    /** The read-only observer view of this model's counters. */
    virtual ChannelTelemetry telemetry() const = 0;

    virtual const ChannelHostStats &hostStats() const = 0;
};

} // namespace mempod
