/**
 * @file
 * FastChannel: the degenerate fast memory model — a fixed per-tier
 * service latency plus a bandwidth-capped queue, no bank state
 * (SimpleDram-style). One completion event per request instead of the
 * detailed controller's tick/arbitration cascade, so a fast-tier line
 * costs one event where the detailed model spends roughly ten.
 *
 * Model:
 *   issue  = max(now, data-bus free)       (bandwidth cap: one burst
 *   busFree = issue + tBL                   every tBL picoseconds)
 *   finish = issue + tRCD + tCL + tBL + extra_latency
 *
 * The service latency folds the average row activation in (every
 * access pays tRCD, none pays tRP), which keeps the constant within
 * the detailed model's hit/miss envelope without tracking rows. The
 * completion delta is always >= tRCD + tCL + tBL + extra, which
 * dominates the PDES lookahead bound (min(tCL, tCWL) + tBL + extra),
 * so the fast model is safe under any shard count.
 *
 * Statistics: reads/writes, bus occupancy, demand queue-wait/service
 * attribution and queue depth are maintained with the same meanings
 * as the detailed controller; bank-level counters (row hits, ACT/PRE,
 * refresh) stay zero because the model has no such state.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "common/types.h"
#include "dram/memory_model.h"
#include "dram/spec.h"
#include "dram/telemetry.h"
#include "mem/request.h"

namespace mempod {

/** Fixed-latency, bandwidth-capped memory model for one channel. */
class FastChannel final : public MemoryModel
{
  public:
    /**
     * @param eq Event queue hosting this channel's completions.
     * @param spec Device description; only tRCD/tCL/tBL are read.
     * @param name For diagnostics and telemetry ("fast0.warm", ...).
     * @param extra_latency_ps Fixed interconnect latency added to
     *        every completion, as in the detailed controller.
     */
    FastChannel(EventQueue &eq, const DramSpec &spec, std::string name,
                TimePs extra_latency_ps = 5000);

    FastChannel(const FastChannel &) = delete;
    FastChannel &operator=(const FastChannel &) = delete;

    void enqueue(Request req, ChannelAddr where) override;

    void
    setCompletionHook(std::function<void(TimePs)> hook) override
    {
        completionHook_ = std::move(hook);
    }

    /** Requests accepted whose completion has not fired yet. */
    std::size_t
    queued() const override
    {
        return static_cast<std::size_t>(stats_.queuedNow);
    }

    bool idle() const override { return queued() == 0; }

    const ChannelStats &stats() const override { return stats_; }
    const DramSpec &spec() const override { return spec_; }
    const std::string &name() const override { return name_; }

    ChannelTelemetry telemetry() const override;

    const ChannelHostStats &hostStats() const override
    {
        return hostStats_;
    }

    /** The model's fixed request service latency. */
    TimePs servicePs() const { return servicePs_; }

  private:
    static constexpr std::uint32_t kNil = ~std::uint32_t{0};

    EventQueue &eq_;
    DramSpec spec_;
    std::string name_;
    std::function<void(TimePs)> completionHook_;

    TimePs servicePs_ = 0; //!< tRCD + tCL + tBL + extra latency
    TimePs burstPs_ = 0;   //!< data-bus occupancy per request (tBL)
    TimePs busFreeAt_ = 0; //!< bandwidth cap: next issue opportunity

    /** Completion-callback parking slab, as in the detailed model. */
    std::vector<CompletionCallback> slots_;
    std::vector<std::uint32_t> freeSlots_;

    ChannelStats stats_;
    ChannelHostStats hostStats_; //!< all zero: no ticks, no arbiter
};

} // namespace mempod
