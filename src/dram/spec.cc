#include "dram/spec.h"

#include "common/log.h"

namespace mempod {

DramTiming
DramTiming::fromCycles(TimePs clock_ps, const Cycles &c)
{
    DramTiming t;
    t.clockPeriodPs = clock_ps;
    t.tCL = c.tCL * clock_ps;
    t.tCWL = c.tCWL * clock_ps;
    t.tRCD = c.tRCD * clock_ps;
    t.tRP = c.tRP * clock_ps;
    t.tRAS = c.tRAS * clock_ps;
    t.tBL = c.tBL * clock_ps;
    t.tCCD = c.tCCD * clock_ps;
    t.tWR = c.tWR * clock_ps;
    t.tWTR = c.tWTR * clock_ps;
    t.tRTP = c.tRTP * clock_ps;
    t.tRTW = c.tRTW * clock_ps;
    t.tRRD = c.tRRD * clock_ps;
    t.tFAW = c.tFAW * clock_ps;
    t.tREFI = c.tREFI * clock_ps;
    t.tRFC = c.tRFC * clock_ps;
    return t;
}

CommandTimingTable
CommandTimingTable::build(const DramTiming &t)
{
    CommandTimingTable tbl;
    const auto act = cmdIndex(DramCmd::kAct);
    const auto pre = cmdIndex(DramCmd::kPre);
    const auto rd = cmdIndex(DramCmd::kRd);
    const auto wr = cmdIndex(DramCmd::kWr);

    // Same bank: row-cycle and column constraints.
    tbl.bank[act][rd] = t.tRCD;
    tbl.bank[act][wr] = t.tRCD;
    tbl.bank[act][pre] = t.tRAS;
    tbl.bank[act][act] = t.tRC();
    tbl.bank[pre][act] = t.tRP;
    tbl.bank[rd][rd] = t.tCCD;
    tbl.bank[rd][wr] = t.tCCD;
    tbl.bank[rd][pre] = t.tRTP;
    tbl.bank[wr][rd] = t.tCCD;
    tbl.bank[wr][wr] = t.tCCD;
    // Write recovery: the row may close only tWR after the write data
    // finished, i.e. tCWL + tBL + tWR past the CAS itself.
    tbl.bank[wr][pre] = t.tCWL + t.tBL + t.tWR;

    // Same rank: activation spacing (the four-ACT window rides in
    // fawPs because it is a rolling constraint, not a pairwise one).
    tbl.rank[act][act] = t.tRRD;

    // Channel-global: CAS-to-CAS spacing and data-bus turnaround.
    tbl.channel[rd][rd] = t.tCCD;
    tbl.channel[wr][wr] = t.tCCD;
    // Write data may start only after read data ends plus turnaround:
    // wrCas + tCWL >= rdCas + tCL + tBL + tRTW.
    tbl.channel[rd][wr] = t.tCL + t.tBL + t.tRTW > t.tCWL
                              ? t.tCL + t.tBL + t.tRTW - t.tCWL
                              : 0;
    tbl.channel[wr][rd] = t.tCWL + t.tBL + t.tWTR;

    tbl.rdDataPs = t.tCL + t.tBL;
    tbl.wrDataPs = t.tCWL + t.tBL;
    tbl.burstPs = t.tBL;
    tbl.fawPs = t.tFAW;
    return tbl;
}

DramSpec
DramSpec::hbm1GHz()
{
    DramSpec s;
    s.name = "HBM-1GHz";
    // 1 GHz clock; tBL = 2 moves 64 B over a 128-bit DDR bus;
    // tREFI = 3.9 us, tRFC = 260 ns.
    s.timing = DramTiming::fromCycles(
        1000, {.tCL = 7,
               .tCWL = 5,
               .tRCD = 7,
               .tRP = 7,
               .tRAS = 17,
               .tBL = 2,
               .tCCD = 2,
               .tWR = 8,
               .tWTR = 4,
               .tRTP = 4,
               .tRTW = 2,
               .tRRD = 4,
               .tFAW = 16,
               .tREFI = 3900,
               .tRFC = 260});
    s.org.ranks = 1;
    s.org.banksPerRank = 16;
    s.org.rowBufferBytes = 8192;
    s.org.busBits = 128;
    // 1 GB over 8 channels -> 128 MB per channel.
    s.org.rowsPerBank = (128_MiB) / (16 * 8192);
    return s;
}

DramSpec
DramSpec::hbm4GHz()
{
    DramSpec s = hbm1GHz();
    s.name = "HBM-4GHz";
    // Same cycle counts at a 4x faster clock, except refresh keeps its
    // wall-clock cadence (tREFI/tRFC cycles scale with the clock).
    s.timing = DramTiming::fromCycles(
        250, {.tCL = 7,
              .tCWL = 5,
              .tRCD = 7,
              .tRP = 7,
              .tRAS = 17,
              .tBL = 2,
              .tCCD = 2,
              .tWR = 8,
              .tWTR = 4,
              .tRTP = 4,
              .tRTW = 2,
              .tRRD = 4,
              .tFAW = 16,
              .tREFI = 3900 * 4,
              .tRFC = 260 * 4});
    return s;
}

DramSpec
DramSpec::ddr4_1600()
{
    DramSpec s;
    s.name = "DDR4-1600";
    // 800 MHz clock (1600 MT/s); tBL = 4 is BL8 on a 64-bit bus;
    // tREFI = 7.8 us, tRFC = 350 ns.
    s.timing = DramTiming::fromCycles(
        1250, {.tCL = 11,
               .tCWL = 9,
               .tRCD = 11,
               .tRP = 11,
               .tRAS = 28,
               .tBL = 4,
               .tCCD = 4,
               .tWR = 12,
               .tWTR = 6,
               .tRTP = 6,
               .tRTW = 2,
               .tRRD = 5,
               .tFAW = 24,
               .tREFI = 6240,
               .tRFC = 280});
    s.org.ranks = 1;
    s.org.banksPerRank = 16;
    s.org.rowBufferBytes = 8192;
    s.org.busBits = 64;
    // 8 GB over 4 channels -> 2 GB per channel.
    s.org.rowsPerBank = (2_GiB) / (16 * 8192);
    return s;
}

DramSpec
DramSpec::ddr4_2400()
{
    DramSpec s = ddr4_1600();
    s.name = "DDR4-2400";
    // 1200 MHz clock, 2400 MT/s.
    s.timing = DramTiming::fromCycles(
        833, {.tCL = 16,
              .tCWL = 12,
              .tRCD = 16,
              .tRP = 16,
              .tRAS = 39,
              .tBL = 4,
              .tCCD = 4,
              .tWR = 18,
              .tWTR = 9,
              .tRTP = 9,
              .tRTW = 2,
              .tRRD = 6,
              .tFAW = 26,
              .tREFI = 9360,
              .tRFC = 420});
    return s;
}

DramSpec
DramSpec::withChannelBytes(std::uint64_t bytes) const
{
    DramSpec s = *this;
    const std::uint64_t bank_row_bytes =
        static_cast<std::uint64_t>(s.org.ranks) * s.org.banksPerRank *
        s.org.rowBufferBytes;
    MEMPOD_ASSERT(bytes % bank_row_bytes == 0,
                  "channel size %llu not a multiple of one row per bank "
                  "(%llu)",
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(bank_row_bytes));
    s.org.rowsPerBank = bytes / bank_row_bytes;
    return s;
}

TimePs
DramSpec::idealReadLatencyPs() const
{
    return timing.tRCD + timing.tCL + timing.tBL;
}

} // namespace mempod
