#include "dram/spec.h"

#include "common/log.h"

namespace mempod {

DramSpec
DramSpec::hbm1GHz()
{
    DramSpec s;
    s.name = "HBM-1GHz";
    s.timing.clockPeriodPs = 1000; // 1 GHz
    s.timing.tCL = 7;
    s.timing.tCWL = 5;
    s.timing.tRCD = 7;
    s.timing.tRP = 7;
    s.timing.tRAS = 17;
    s.timing.tBL = 2; // 64B over a 128-bit DDR bus
    s.timing.tCCD = 2;
    s.timing.tWR = 8;
    s.timing.tWTR = 4;
    s.timing.tRTP = 4;
    s.timing.tRTW = 2;
    s.timing.tRRD = 4;
    s.timing.tFAW = 16;
    s.timing.tREFI = 3900; // 3.9 us
    s.timing.tRFC = 260;   // 260 ns
    s.org.ranks = 1;
    s.org.banksPerRank = 16;
    s.org.rowBufferBytes = 8192;
    s.org.busBits = 128;
    // 1 GB over 8 channels -> 128 MB per channel.
    s.org.rowsPerBank = (128_MiB) / (16 * 8192);
    return s;
}

DramSpec
DramSpec::hbm4GHz()
{
    DramSpec s = hbm1GHz();
    s.name = "HBM-4GHz";
    s.timing.clockPeriodPs = 250; // same cycle counts, 4x faster clock
    s.timing.tREFI = 3900 * 4;    // keep refresh cadence in wall time
    s.timing.tRFC = 260 * 4;
    return s;
}

DramSpec
DramSpec::ddr4_1600()
{
    DramSpec s;
    s.name = "DDR4-1600";
    s.timing.clockPeriodPs = 1250; // 800 MHz clock, 1600 MT/s
    s.timing.tCL = 11;
    s.timing.tCWL = 9;
    s.timing.tRCD = 11;
    s.timing.tRP = 11;
    s.timing.tRAS = 28;
    s.timing.tBL = 4; // BL8 on a 64-bit bus
    s.timing.tCCD = 4;
    s.timing.tWR = 12;
    s.timing.tWTR = 6;
    s.timing.tRTP = 6;
    s.timing.tRTW = 2;
    s.timing.tRRD = 5;
    s.timing.tFAW = 24;
    s.timing.tREFI = 6240; // 7.8 us
    s.timing.tRFC = 280;   // 350 ns
    s.org.ranks = 1;
    s.org.banksPerRank = 16;
    s.org.rowBufferBytes = 8192;
    s.org.busBits = 64;
    // 8 GB over 4 channels -> 2 GB per channel.
    s.org.rowsPerBank = (2_GiB) / (16 * 8192);
    return s;
}

DramSpec
DramSpec::ddr4_2400()
{
    DramSpec s = ddr4_1600();
    s.name = "DDR4-2400";
    s.timing.clockPeriodPs = 833; // 1200 MHz clock, 2400 MT/s
    s.timing.tCL = 16;
    s.timing.tCWL = 12;
    s.timing.tRCD = 16;
    s.timing.tRP = 16;
    s.timing.tRAS = 39;
    s.timing.tWR = 18;
    s.timing.tWTR = 9;
    s.timing.tRTP = 9;
    s.timing.tRRD = 6;
    s.timing.tFAW = 26;
    s.timing.tREFI = 9360;
    s.timing.tRFC = 420;
    return s;
}

DramSpec
DramSpec::withChannelBytes(std::uint64_t bytes) const
{
    DramSpec s = *this;
    const std::uint64_t bank_row_bytes =
        static_cast<std::uint64_t>(s.org.ranks) * s.org.banksPerRank *
        s.org.rowBufferBytes;
    MEMPOD_ASSERT(bytes % bank_row_bytes == 0,
                  "channel size %llu not a multiple of one row per bank "
                  "(%llu)",
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(bank_row_bytes));
    s.org.rowsPerBank = bytes / bank_row_bytes;
    return s;
}

TimePs
DramSpec::idealReadLatencyPs() const
{
    return timing.ps(timing.tRCD + timing.tCL + timing.tBL);
}

} // namespace mempod
