/**
 * @file
 * Per-bank and per-rank DRAM timing state. A Bank tracks its open row
 * and the earliest times each command class may next be issued to it;
 * a Rank enforces the cross-bank tRRD and tFAW activation constraints.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "dram/spec.h"

namespace mempod {

/** Timing state of one DRAM bank (open-page policy). */
class Bank
{
  public:
    static constexpr std::int64_t kNoRow = -1;

    /** Per-bank command counters (metrics registration). */
    struct Stats
    {
        std::uint64_t activates = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    /** Row currently latched in the row buffer, or kNoRow. */
    std::int64_t openRow() const { return openRow_; }
    bool isOpen() const { return openRow_ != kNoRow; }

    const Stats &stats() const { return stats_; }

    TimePs actAllowedAt() const { return actAllowedAt_; }
    TimePs casAllowedAt() const { return casAllowedAt_; }
    TimePs preAllowedAt() const { return preAllowedAt_; }

    /** Apply an ACTIVATE at time `now`. */
    void activate(TimePs now, std::int64_t row, const DramTiming &t);

    /** Apply a PRECHARGE at time `now`. */
    void precharge(TimePs now, const DramTiming &t);

    /** Apply a read CAS at `now`; returns the data-end time. */
    TimePs read(TimePs now, const DramTiming &t);

    /** Apply a write CAS at `now`; returns the data-end time. */
    TimePs write(TimePs now, const DramTiming &t);

    /** Push all command windows past a refresh completing at `until`. */
    void blockUntil(TimePs until);

  private:
    std::int64_t openRow_ = kNoRow;
    TimePs actAllowedAt_ = 0;
    TimePs casAllowedAt_ = 0;
    TimePs preAllowedAt_ = 0;
    Stats stats_;
};

/** Cross-bank activation bookkeeping for one rank. */
class Rank
{
  public:
    explicit Rank(const DramTiming &t) : timing_(t) {}

    /** Earliest time a new ACT may issue in this rank. */
    TimePs actAllowedAt() const;

    /** Record an ACT at `now`. */
    void recordAct(TimePs now);

  private:
    const DramTiming &timing_;
    TimePs lastActAt_ = 0;
    bool anyAct_ = false;
    std::vector<TimePs> actWindow_; //!< last up-to-4 ACT times (tFAW)
};

} // namespace mempod
