/**
 * @file
 * Struct-of-arrays DRAM bank timing state. One BankStateArray holds
 * every bank of a channel: open rows, the next-ready time of each
 * command class per bank, and the per-rank activation windows (tRRD
 * and the rolling four-ACT tFAW window). Command legality and the
 * ready-time bumps come from the precomputed CommandTimingTable, so
 * issuing a command is table-lookup max-folding, never per-command
 * arithmetic.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "dram/spec.h"

namespace mempod {

/** Timing state of all banks in one channel (open-page policy). */
class BankStateArray
{
  public:
    static constexpr std::int64_t kNoRow = -1;

    /**
     * @param table Constraint table; must outlive this object.
     * @param num_banks Rank-merged bank count (ranks x banksPerRank).
     * @param banks_per_rank Banks per rank, for rank-scope windows.
     */
    BankStateArray(const CommandTimingTable &table,
                   std::uint32_t num_banks,
                   std::uint32_t banks_per_rank);

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(openRow_.size());
    }

    /** Row currently latched in bank `b`'s row buffer, or kNoRow. */
    std::int64_t openRow(std::uint32_t b) const { return openRow_[b]; }
    bool isOpen(std::uint32_t b) const { return openRow_[b] != kNoRow; }

    /** Bank-local earliest issue time of `c` at bank `b`. */
    TimePs
    readyAt(std::uint32_t b, DramCmd c) const
    {
        return ready_[cmdIndex(c)][b];
    }

    /**
     * Earliest ACT issue time at bank `b`, folding in the rank's tRRD
     * spacing and the rolling four-ACT (tFAW) window.
     */
    TimePs actReadyAt(std::uint32_t b) const;

    /** Apply an ACTIVATE at time `now`. */
    void activate(TimePs now, std::uint32_t b, std::int64_t row);

    /** Apply a PRECHARGE at time `now`. */
    void precharge(TimePs now, std::uint32_t b);

    /** Apply a read CAS at `now`; returns the data-end time. */
    TimePs read(TimePs now, std::uint32_t b);

    /** Apply a write CAS at `now`; returns the data-end time. */
    TimePs write(TimePs now, std::uint32_t b);

    /** Push bank `b`'s command windows past a refresh ending `until`. */
    void blockUntil(std::uint32_t b, TimePs until);

    /**
     * Per-bank command counters as flat arrays sized numBanks(); the
     * addresses are stable for the object's lifetime, so telemetry
     * can attach to them directly.
     */
    const std::uint64_t *activateCounts() const { return acts_.data(); }
    const std::uint64_t *readCounts() const { return reads_.data(); }
    const std::uint64_t *writeCounts() const { return writes_.data(); }

  private:
    /** Fold table row `c` into bank `b`'s ready times at `now`. */
    void applyBankRow(DramCmd c, std::uint32_t b, TimePs now);

    const CommandTimingTable &tbl_;
    std::uint32_t banksPerRank_;

    std::vector<std::int64_t> openRow_;
    /** ready_[cmd][bank]: earliest issue time per command class. */
    std::array<std::vector<TimePs>, kNumDramCmds> ready_;

    /** Per-rank tRRD gate (earliest next ACT in the rank). */
    std::vector<TimePs> rankActReady_;
    /** Per-rank ring of the last four ACT times (tFAW). */
    std::vector<std::array<TimePs, 4>> fawRing_;
    std::vector<std::uint8_t> fawHead_;
    std::vector<std::uint8_t> fawCount_;

    std::vector<std::uint64_t> acts_;
    std::vector<std::uint64_t> reads_;
    std::vector<std::uint64_t> writes_;
};

} // namespace mempod
