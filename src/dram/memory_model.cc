#include "dram/memory_model.h"

#include "common/tracer.h"
#include "dram/functional_model.h"

namespace mempod {

const char *
dramModelName(DramModel m)
{
    switch (m) {
      case DramModel::kDetailed:
        return "detailed";
      case DramModel::kFast:
        return "fast";
      case DramModel::kFunctional:
        return "functional";
    }
    return "detailed";
}

bool
dramModelFromName(const std::string &name, DramModel &out)
{
    if (name == "detailed") {
        out = DramModel::kDetailed;
        return true;
    }
    if (name == "fast") {
        out = DramModel::kFast;
        return true;
    }
    if (name == "functional") {
        out = DramModel::kFunctional;
        return true;
    }
    return false;
}

void
FunctionalModel::enqueue(Request req, ChannelAddr)
{
    const TimePs now = eq_.now();

    if (req.type == AccessType::kWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    if (req.traceId != 0) {
        // Zero-length service span: the sampled request keeps its
        // per-channel trace presence across fidelity modes.
        if (Tracer *tr = eq_.tracer()) {
            const std::uint32_t tid = tr->track(name_);
            tr->asyncBegin(tid, now, "req", req.traceId, "service");
            tr->asyncEnd(tid, now, "req", req.traceId, "service");
        }
    }

    // Synchronous completion: hook first (in-flight accounting), then
    // the request's own callback, both at the current time. The
    // callback is moved out first because it may enqueue again.
    CompletionCallback cb = std::move(req.onComplete);
    if (completionHook_)
        completionHook_(now);
    if (cb)
        cb(now);
}

ChannelTelemetry
FunctionalModel::telemetry() const
{
    ChannelTelemetry v;
    v.name = name_;
    v.stats = &stats_;
    v.numBanks = 0;
    return v;
}

} // namespace mempod
