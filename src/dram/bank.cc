#include "dram/bank.h"

#include <algorithm>

#include "common/log.h"

namespace mempod {

void
Bank::activate(TimePs now, std::int64_t row, const DramTiming &t)
{
    MEMPOD_ASSERT(!isOpen(), "ACT to open bank");
    MEMPOD_ASSERT(now >= actAllowedAt_, "ACT issued too early");
    openRow_ = row;
    ++stats_.activates;
    casAllowedAt_ = std::max(casAllowedAt_, now + t.ps(t.tRCD));
    preAllowedAt_ = std::max(preAllowedAt_, now + t.ps(t.tRAS));
    actAllowedAt_ = std::max(actAllowedAt_, now + t.ps(t.tRC()));
}

void
Bank::precharge(TimePs now, const DramTiming &t)
{
    MEMPOD_ASSERT(isOpen(), "PRE to closed bank");
    MEMPOD_ASSERT(now >= preAllowedAt_, "PRE issued too early");
    openRow_ = kNoRow;
    actAllowedAt_ = std::max(actAllowedAt_, now + t.ps(t.tRP));
}

TimePs
Bank::read(TimePs now, const DramTiming &t)
{
    MEMPOD_ASSERT(isOpen(), "read CAS to closed bank");
    MEMPOD_ASSERT(now >= casAllowedAt_, "read CAS issued too early");
    ++stats_.reads;
    const TimePs data_end = now + t.ps(t.tCL + t.tBL);
    preAllowedAt_ = std::max(preAllowedAt_, now + t.ps(t.tRTP));
    casAllowedAt_ = std::max(casAllowedAt_, now + t.ps(t.tCCD));
    return data_end;
}

TimePs
Bank::write(TimePs now, const DramTiming &t)
{
    MEMPOD_ASSERT(isOpen(), "write CAS to closed bank");
    MEMPOD_ASSERT(now >= casAllowedAt_, "write CAS issued too early");
    ++stats_.writes;
    const TimePs data_end = now + t.ps(t.tCWL + t.tBL);
    preAllowedAt_ = std::max(preAllowedAt_, data_end + t.ps(t.tWR));
    casAllowedAt_ = std::max(casAllowedAt_, now + t.ps(t.tCCD));
    return data_end;
}

void
Bank::blockUntil(TimePs until)
{
    actAllowedAt_ = std::max(actAllowedAt_, until);
    casAllowedAt_ = std::max(casAllowedAt_, until);
    preAllowedAt_ = std::max(preAllowedAt_, until);
}

TimePs
Rank::actAllowedAt() const
{
    TimePs earliest = 0;
    if (anyAct_)
        earliest = lastActAt_ + timing_.ps(timing_.tRRD);
    if (actWindow_.size() >= 4)
        earliest = std::max(earliest,
                            actWindow_.front() + timing_.ps(timing_.tFAW));
    return earliest;
}

void
Rank::recordAct(TimePs now)
{
    lastActAt_ = now;
    anyAct_ = true;
    actWindow_.push_back(now);
    if (actWindow_.size() > 4)
        actWindow_.erase(actWindow_.begin());
}

} // namespace mempod
