#include "dram/bank.h"

#include <algorithm>

#include "common/log.h"

namespace mempod {

BankStateArray::BankStateArray(const CommandTimingTable &table,
                               std::uint32_t num_banks,
                               std::uint32_t banks_per_rank)
    : tbl_(table),
      banksPerRank_(banks_per_rank),
      openRow_(num_banks, kNoRow),
      acts_(num_banks, 0),
      reads_(num_banks, 0),
      writes_(num_banks, 0)
{
    const std::uint32_t ranks =
        (num_banks + banks_per_rank - 1) / banks_per_rank;
    for (auto &r : ready_)
        r.assign(num_banks, 0);
    rankActReady_.assign(ranks, 0);
    fawRing_.assign(ranks, {});
    fawHead_.assign(ranks, 0);
    fawCount_.assign(ranks, 0);
}

void
BankStateArray::applyBankRow(DramCmd c, std::uint32_t b, TimePs now)
{
    const TimePs *row = tbl_.bank[cmdIndex(c)];
    for (std::size_t n = 0; n < kNumDramCmds; ++n)
        ready_[n][b] = std::max(ready_[n][b], now + row[n]);
}

TimePs
BankStateArray::actReadyAt(std::uint32_t b) const
{
    const std::uint32_t rank = b / banksPerRank_;
    TimePs earliest = std::max(ready_[cmdIndex(DramCmd::kAct)][b],
                               rankActReady_[rank]);
    if (fawCount_[rank] >= 4) {
        // The oldest of the last four ACTs gates the next one.
        earliest = std::max(earliest,
                            fawRing_[rank][fawHead_[rank]] + tbl_.fawPs);
    }
    return earliest;
}

void
BankStateArray::activate(TimePs now, std::uint32_t b, std::int64_t row)
{
    MEMPOD_ASSERT(!isOpen(b), "ACT to open bank");
    MEMPOD_ASSERT(now >= actReadyAt(b), "ACT issued too early");
    openRow_[b] = row;
    ++acts_[b];
    applyBankRow(DramCmd::kAct, b, now);

    const std::uint32_t rank = b / banksPerRank_;
    rankActReady_[rank] =
        std::max(rankActReady_[rank],
                 now + tbl_.rank[cmdIndex(DramCmd::kAct)]
                                [cmdIndex(DramCmd::kAct)]);
    auto &ring = fawRing_[rank];
    if (fawCount_[rank] < 4) {
        ring[(fawHead_[rank] + fawCount_[rank]) % 4] = now;
        ++fawCount_[rank];
    } else {
        ring[fawHead_[rank]] = now;
        fawHead_[rank] = static_cast<std::uint8_t>(
            (fawHead_[rank] + 1) % 4);
    }
}

void
BankStateArray::precharge(TimePs now, std::uint32_t b)
{
    MEMPOD_ASSERT(isOpen(b), "PRE to closed bank");
    MEMPOD_ASSERT(now >= readyAt(b, DramCmd::kPre),
                  "PRE issued too early");
    openRow_[b] = kNoRow;
    applyBankRow(DramCmd::kPre, b, now);
}

TimePs
BankStateArray::read(TimePs now, std::uint32_t b)
{
    MEMPOD_ASSERT(isOpen(b), "read CAS to closed bank");
    MEMPOD_ASSERT(now >= readyAt(b, DramCmd::kRd),
                  "read CAS issued too early");
    ++reads_[b];
    applyBankRow(DramCmd::kRd, b, now);
    return now + tbl_.rdDataPs;
}

TimePs
BankStateArray::write(TimePs now, std::uint32_t b)
{
    MEMPOD_ASSERT(isOpen(b), "write CAS to closed bank");
    MEMPOD_ASSERT(now >= readyAt(b, DramCmd::kWr),
                  "write CAS issued too early");
    ++writes_[b];
    applyBankRow(DramCmd::kWr, b, now);
    return now + tbl_.wrDataPs;
}

void
BankStateArray::blockUntil(std::uint32_t b, TimePs until)
{
    for (auto &r : ready_)
        r[b] = std::max(r[b], until);
}

} // namespace mempod
