/**
 * @file
 * DRAM device descriptions: timing parameters, organization geometry,
 * the named presets used by the paper's evaluation (Table 2 and the
 * Figure 10 "future system" experiment), and the precomputed
 * command-to-command constraint table the channel controller issues
 * against.
 *
 * Timing values the paper specifies (tCAS-tRCD-tRP-tRAS: 7-7-7-17 for
 * HBM at 1 GHz, 11-11-11-28 for DDR4-1600) are used verbatim; the
 * remaining constraints use representative JEDEC values and are
 * documented per preset.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace mempod {

/** DRAM command classes the controller schedules. */
enum class DramCmd : std::uint8_t
{
    kAct = 0, //!< ACTIVATE (open a row)
    kPre = 1, //!< PRECHARGE (close the open row)
    kRd = 2,  //!< read CAS
    kWr = 3,  //!< write CAS
};

inline constexpr std::size_t kNumDramCmds = 4;

inline constexpr std::size_t
cmdIndex(DramCmd c)
{
    return static_cast<std::size_t>(c);
}

/**
 * All timing constraints, expressed in picoseconds. Datasheets quote
 * these in device clock cycles; presets convert once via fromCycles()
 * so the simulator core never multiplies by the clock period again,
 * and config sweeps (`dram.near.tRCD_ps=...`) can dial any constraint
 * without knowing the clock.
 */
struct DramTiming
{
    TimePs clockPeriodPs = 1000; //!< one device (command-bus) clock

    TimePs tCL = 7000;   //!< CAS latency (read command -> data)
    TimePs tCWL = 5000;  //!< CAS write latency
    TimePs tRCD = 7000;  //!< ACT -> CAS
    TimePs tRP = 7000;   //!< PRE -> ACT
    TimePs tRAS = 17000; //!< ACT -> PRE
    TimePs tBL = 2000;   //!< burst duration on the data bus
    TimePs tCCD = 2000;  //!< CAS -> CAS, same channel
    TimePs tWR = 8000;   //!< end of write data -> PRE
    TimePs tWTR = 4000;  //!< end of write data -> read CAS
    TimePs tRTP = 4000;  //!< read CAS -> PRE
    TimePs tRTW = 2000;  //!< extra read -> write bus turnaround
    TimePs tRRD = 4000;  //!< ACT -> ACT, same rank
    TimePs tFAW = 16000; //!< four-ACT window, same rank
    TimePs tREFI = 3'900'000; //!< refresh interval
    TimePs tRFC = 260'000;    //!< refresh cycle time

    /** ACT -> ACT on the same bank (row cycle). */
    TimePs tRC() const { return tRAS + tRP; }

    /** Express a ps value in this device's clock cycles (printing). */
    Cycle cycles(TimePs ps) const { return ps / clockPeriodPs; }

    /** Datasheet cycle counts, converted by fromCycles(). */
    struct Cycles
    {
        std::uint32_t tCL, tCWL, tRCD, tRP, tRAS, tBL, tCCD, tWR,
            tWTR, tRTP, tRTW, tRRD, tFAW, tREFI, tRFC;
    };

    /** Build ps-valued timing from datasheet cycles at `clock_ps`. */
    static DramTiming fromCycles(TimePs clock_ps, const Cycles &c);
};

/**
 * The controller's issue rules, precomputed from a DramTiming once at
 * construction (Ramulator-style): entry [prev][next] is the minimum
 * gap in picoseconds between issuing `prev` and issuing `next` within
 * the given scope. Unconstrained pairs hold zero, so applying a table
 * row is branch-free max-folding instead of per-command arithmetic.
 */
struct CommandTimingTable
{
    /** Same-bank constraints (tRCD/tRAS/tRC/tRP/tCCD/tRTP/tWR). */
    TimePs bank[kNumDramCmds][kNumDramCmds] = {};
    /** Same-rank, cross-bank constraints (tRRD; tFAW is separate). */
    TimePs rank[kNumDramCmds][kNumDramCmds] = {};
    /** Channel-global constraints (CAS gates, bus turnaround). */
    TimePs channel[kNumDramCmds][kNumDramCmds] = {};

    TimePs rdDataPs = 0; //!< read CAS -> end of data burst
    TimePs wrDataPs = 0; //!< write CAS -> end of data burst
    TimePs burstPs = 0;  //!< data-bus occupancy per CAS (tBL)
    TimePs fawPs = 0;    //!< rolling four-ACT window (tFAW)

    static CommandTimingTable build(const DramTiming &t);
};

/** Per-channel organization. */
struct DramOrganization
{
    std::uint32_t ranks = 1;
    std::uint32_t banksPerRank = 16;
    std::uint64_t rowsPerBank = 1024;
    std::uint64_t rowBufferBytes = 8192;
    std::uint32_t busBits = 128;

    std::uint32_t totalBanks() const { return ranks * banksPerRank; }

    std::uint64_t
    channelBytes() const
    {
        return static_cast<std::uint64_t>(ranks) * banksPerRank *
               rowsPerBank * rowBufferBytes;
    }

    /** 2 KB migration pages per 8 KB row buffer. */
    std::uint64_t pagesPerRow() const { return rowBufferBytes / kPageBytes; }
};

/** A complete named device description. */
struct DramSpec
{
    std::string name;
    DramTiming timing;
    DramOrganization org;

    /** Paper Table 2: 1 GHz HBM, 128-bit bus, 16 banks, 8 KB rows. */
    static DramSpec hbm1GHz();

    /** Figure 10 "future" stacked memory: HBM timing at 4 GHz. */
    static DramSpec hbm4GHz();

    /** Paper Table 2: DDR4-1600 (800 MHz clock), 64-bit bus. */
    static DramSpec ddr4_1600();

    /** Figure 10 future off-chip memory: DDR4-2400 (1200 MHz clock). */
    static DramSpec ddr4_2400();

    /**
     * Shrink rows-per-bank so one channel holds `bytes`; used to build
     * laptop-sized unit-test instances with unchanged timing.
     */
    DramSpec withChannelBytes(std::uint64_t bytes) const;

    /** Zero-load read latency (ACT+CAS+burst) in picoseconds. */
    TimePs idealReadLatencyPs() const;
};

} // namespace mempod
