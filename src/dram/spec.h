/**
 * @file
 * DRAM device descriptions: timing parameters, organization geometry
 * and the named presets used by the paper's evaluation (Table 2 and
 * the Figure 10 "future system" experiment).
 *
 * Timing values the paper specifies (tCAS-tRCD-tRP-tRAS: 7-7-7-17 for
 * HBM at 1 GHz, 11-11-11-28 for DDR4-1600) are used verbatim; the
 * remaining constraints use representative JEDEC values and are
 * documented per preset.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace mempod {

/** All timing constraints, expressed in device clock cycles. */
struct DramTiming
{
    TimePs clockPeriodPs = 1000; //!< one device clock period

    std::uint32_t tCL = 7;    //!< CAS latency (read command -> data)
    std::uint32_t tCWL = 5;   //!< CAS write latency
    std::uint32_t tRCD = 7;   //!< ACT -> CAS
    std::uint32_t tRP = 7;    //!< PRE -> ACT
    std::uint32_t tRAS = 17;  //!< ACT -> PRE
    std::uint32_t tBL = 2;    //!< burst length on the data bus (cycles)
    std::uint32_t tCCD = 2;   //!< CAS -> CAS, same channel
    std::uint32_t tWR = 8;    //!< end of write data -> PRE
    std::uint32_t tWTR = 4;   //!< end of write data -> read CAS
    std::uint32_t tRTP = 4;   //!< read CAS -> PRE
    std::uint32_t tRTW = 2;   //!< extra read -> write bus turnaround
    std::uint32_t tRRD = 4;   //!< ACT -> ACT, same rank
    std::uint32_t tFAW = 16;  //!< four-ACT window, same rank
    std::uint32_t tREFI = 3900; //!< refresh interval
    std::uint32_t tRFC = 260;   //!< refresh cycle time

    /** Convert a cycle count of this domain into picoseconds. */
    TimePs ps(std::uint64_t cycles) const { return cycles * clockPeriodPs; }

    /** ACT -> ACT on the same bank (row cycle). */
    std::uint32_t tRC() const { return tRAS + tRP; }
};

/** Per-channel organization. */
struct DramOrganization
{
    std::uint32_t ranks = 1;
    std::uint32_t banksPerRank = 16;
    std::uint64_t rowsPerBank = 1024;
    std::uint64_t rowBufferBytes = 8192;
    std::uint32_t busBits = 128;

    std::uint32_t totalBanks() const { return ranks * banksPerRank; }

    std::uint64_t
    channelBytes() const
    {
        return static_cast<std::uint64_t>(ranks) * banksPerRank *
               rowsPerBank * rowBufferBytes;
    }

    /** 2 KB migration pages per 8 KB row buffer. */
    std::uint64_t pagesPerRow() const { return rowBufferBytes / kPageBytes; }
};

/** A complete named device description. */
struct DramSpec
{
    std::string name;
    DramTiming timing;
    DramOrganization org;

    /** Paper Table 2: 1 GHz HBM, 128-bit bus, 16 banks, 8 KB rows. */
    static DramSpec hbm1GHz();

    /** Figure 10 "future" stacked memory: HBM timing at 4 GHz. */
    static DramSpec hbm4GHz();

    /** Paper Table 2: DDR4-1600 (800 MHz clock), 64-bit bus. */
    static DramSpec ddr4_1600();

    /** Figure 10 future off-chip memory: DDR4-2400 (1200 MHz clock). */
    static DramSpec ddr4_2400();

    /**
     * Shrink rows-per-bank so one channel holds `bytes`; used to build
     * laptop-sized unit-test instances with unchanged timing.
     */
    DramSpec withChannelBytes(std::uint64_t bytes) const;

    /** Zero-load read latency (ACT+CAS+burst) in picoseconds. */
    TimePs idealReadLatencyPs() const;
};

} // namespace mempod
