/**
 * @file
 * Read-only telemetry views over the DRAM layer. Observers (metric
 * registration, reports, aggregation) consume these plain-data views
 * instead of reaching into Channel/Bank internals, so src/common and
 * src/mem code never depends on controller implementation details.
 *
 * A view is a bundle of stable pointers: the channel publishes it
 * once at construction and the counters behind it keep updating, so
 * registering a view with a MetricRegistry is enough to export live
 * values for the run's whole lifetime.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace mempod {

/** Aggregate command/occupancy counters of one channel controller. */
struct ChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;   //!< CAS that required no ACT
    std::uint64_t rowMisses = 0; //!< CAS preceded by own ACT
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t maxQueueDepth = 0;
    std::uint64_t queuedNow = 0; //!< live queue depth (gauge source)
    std::uint64_t busBusyPs = 0; //!< data-bus burst occupancy
    /** Summed demand wait from enqueue to CAS (attribution). */
    std::uint64_t demandQueueWaitPs = 0;
    /** Summed demand CAS-to-completion time (attribution). */
    std::uint64_t demandServicePs = 0;
};

/**
 * Everything an observer may read about one channel: identity, the
 * aggregate counters and the per-bank SoA counter arrays. All
 * pointers remain valid and live for the owning channel's lifetime.
 */
struct ChannelTelemetry
{
    std::string name;             //!< "fast0", "slow2", ...
    MemTier tier = MemTier::kFast;
    const ChannelStats *stats = nullptr;
    const std::uint64_t *bankActivates = nullptr; //!< [numBanks]
    const std::uint64_t *bankReads = nullptr;     //!< [numBanks]
    const std::uint64_t *bankWrites = nullptr;    //!< [numBanks]
    std::uint32_t numBanks = 0;
};

/** Fraction of CAS commands that were row-buffer hits. */
inline double
channelRowHitRate(const ChannelStats &s)
{
    const std::uint64_t total = s.rowHits + s.rowMisses;
    return total ? static_cast<double>(s.rowHits) / total : 0.0;
}

/** Fraction of simulated time (up to `now`) the data bus was busy. */
inline double
channelBusUtilization(const ChannelStats &s, TimePs now)
{
    return now ? static_cast<double>(s.busBusyPs) / now : 0.0;
}

} // namespace mempod
