#include "dram/fast_channel.h"

#include <algorithm>

#include "common/tracer.h"

namespace mempod {

FastChannel::FastChannel(EventQueue &eq, const DramSpec &spec,
                         std::string name, TimePs extra_latency_ps)
    : eq_(eq),
      spec_(spec),
      name_(std::move(name)),
      servicePs_(spec.timing.tRCD + spec.timing.tCL + spec.timing.tBL +
                 extra_latency_ps),
      burstPs_(spec.timing.tBL)
{
}

void
FastChannel::enqueue(Request req, ChannelAddr)
{
    const TimePs now = eq_.now();

    if (req.type == AccessType::kWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    const TimePs issue = std::max(now, busFreeAt_);
    busFreeAt_ = issue + burstPs_;
    const TimePs finish = issue + servicePs_;
    stats_.busBusyPs += burstPs_;

    if (req.kind == Request::Kind::kDemand) {
        stats_.demandQueueWaitPs +=
            static_cast<std::uint64_t>(issue - now);
        stats_.demandServicePs +=
            static_cast<std::uint64_t>(finish - issue);
    }

    ++stats_.queuedNow;
    stats_.maxQueueDepth =
        std::max(stats_.maxQueueDepth, stats_.queuedNow);

    if (req.traceId != 0) {
        if (Tracer *tr = eq_.tracer()) {
            const std::uint32_t tid = tr->track(name_);
            const std::uint64_t id = req.traceId;
            tr->asyncBegin(tid, now, "req", id, "queue");
            tr->asyncEnd(tid, issue, "req", id, "queue");
            TraceArgs a;
            a.add("write",
                  req.type == AccessType::kWrite ? 1u : 0u);
            tr->asyncBegin(tid, issue, "req", id, "service", a.str());
            tr->asyncEnd(tid, finish, "req", id, "service");
        }
    }

    std::uint32_t slot = kNil;
    if (req.onComplete) {
        if (freeSlots_.empty()) {
            slot = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        } else {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
        }
        slots_[slot] = std::move(req.onComplete);
    }

    // Completions cross back to the coordinator domain; the delta is
    // at least servicePs_, which dominates the executor's lookahead.
    eq_.scheduleIn(EventQueue::kCoordinatorDomain, finish,
                   [this, slot, finish] {
        CompletionCallback cb;
        if (slot != kNil) {
            cb = std::move(slots_[slot]);
            // Release before invoking: the callback may enqueue a new
            // request that reuses (or grows past) this slot.
            freeSlots_.push_back(slot);
        }
        --stats_.queuedNow;
        if (completionHook_)
            completionHook_(finish);
        if (cb)
            cb(finish);
    });
}

ChannelTelemetry
FastChannel::telemetry() const
{
    ChannelTelemetry v;
    v.name = name_;
    v.stats = &stats_;
    v.numBanks = 0; // no bank state, no per-bank counters
    return v;
}

} // namespace mempod
