/**
 * @file
 * FunctionalModel: the zero-latency, zero-event warming model. Every
 * request completes synchronously inside enqueue() — the completion
 * hook and the request's own callback fire at the current simulated
 * time before enqueue() returns, and nothing is ever scheduled.
 *
 * This is what makes SMARTS-style fast-forward windows cheap: the
 * whole policy stack (MEA trackers, remap tables, epoch timers, the
 * decision ledger) sees the full demand and migration stream, while
 * the memory system costs a couple of counter increments per line
 * instead of an event cascade.
 *
 * Serial-kernel only: synchronous completion would run manager and
 * frontend code on a shard worker under the PDES executor, so the
 * Simulation refuses to combine this model with sim.shards > 0.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/event_queue.h"
#include "common/types.h"
#include "dram/memory_model.h"
#include "dram/spec.h"
#include "dram/telemetry.h"
#include "mem/request.h"

namespace mempod {

/** Instant-completion memory model for one channel. */
class FunctionalModel final : public MemoryModel
{
  public:
    FunctionalModel(EventQueue &eq, const DramSpec &spec,
                    std::string name)
        : eq_(eq), spec_(spec), name_(std::move(name))
    {
    }

    FunctionalModel(const FunctionalModel &) = delete;
    FunctionalModel &operator=(const FunctionalModel &) = delete;

    void enqueue(Request req, ChannelAddr where) override;

    void
    setCompletionHook(std::function<void(TimePs)> hook) override
    {
        completionHook_ = std::move(hook);
    }

    /** Nothing ever stays queued: completion is synchronous. */
    std::size_t queued() const override { return 0; }
    bool idle() const override { return true; }

    const ChannelStats &stats() const override { return stats_; }
    const DramSpec &spec() const override { return spec_; }
    const std::string &name() const override { return name_; }

    ChannelTelemetry telemetry() const override;

    const ChannelHostStats &hostStats() const override
    {
        return hostStats_;
    }

  private:
    EventQueue &eq_;
    DramSpec spec_;
    std::string name_;
    std::function<void(TimePs)> completionHook_;

    ChannelStats stats_;         //!< only reads/writes ever move
    ChannelHostStats hostStats_; //!< all zero
};

} // namespace mempod
