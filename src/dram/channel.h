/**
 * @file
 * A cycle-level DRAM channel controller: per-bank open-page state,
 * FR-FCFS scheduling with read priority and write-drain watermarks,
 * rank activation windows (tRRD/tFAW), data-bus contention, bus
 * turnaround penalties and periodic refresh.
 *
 * The controller is event-driven: it schedules itself on the global
 * EventQueue only while it has work, and when blocked purely on timing
 * it sleeps until the earliest constraint expires, so simulated idle
 * memory is free.
 *
 * Requests live in per-bank intrusive FIFO lists (plus one global age
 * list per read/write queue), with cached oldest-hit/oldest-conflict
 * entries per bank, so FR-FCFS arbitration walks banks-with-work via
 * a ready-bank bitmask instead of scanning the whole queue three
 * times per tick. The scheduling policy is unchanged: oldest ready
 * row hit, then oldest ready activate, then oldest conflicting
 * precharge, with the same anti-starvation rule.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "common/types.h"
#include "dram/bank.h"
#include "dram/memory_model.h"
#include "dram/spec.h"
#include "dram/telemetry.h"
#include "mem/request.h"

namespace mempod {

/** Controller policy knobs (defaults match the paper's setup). */
struct ControllerPolicy
{
    /**
     * Row-buffer management: open-page leaves rows latched for
     * spatial locality; closed-page auto-precharges once no queued
     * request still targets the open row.
     */
    bool closedPage = false;
    /**
     * Scheduling: FR-FCFS (default) reorders for row hits; plain FCFS
     * serves strictly oldest-first within each queue.
     */
    bool fcfs = false;
};

/** One memory channel and its controller (the detailed model). */
class Channel final : public MemoryModel
{
  public:
    using Stats = ChannelStats;

    /**
     * @param eq Global event queue.
     * @param spec Device description (timing + organization).
     * @param name For diagnostics ("hbm0", "ddr2", ...).
     * @param extra_latency_ps Fixed interconnect latency added to every
     *        completion (LLC-to-MC traversal both ways).
     * @param domain Execution domain of this controller's tick events.
     *        Completion callbacks always target the coordinator domain;
     *        everything else the controller schedules stays local. The
     *        default keeps standalone (single-queue) use unchanged.
     */
    Channel(EventQueue &eq, const DramSpec &spec, std::string name,
            TimePs extra_latency_ps = 5000,
            ControllerPolicy policy = {},
            DomainId domain = EventQueue::kCoordinatorDomain);

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** Queue one line transfer. The controller wakes itself up. */
    void enqueue(Request req, ChannelAddr where) override;

    /**
     * Fidelity switch-in: re-phase the refresh clock past `now`,
     * forgiving intervals that elapsed while another model carried
     * the traffic (the real device refreshed on schedule meanwhile).
     * Skipped cycles still count as refreshes so the rate stays
     * physical. Without this, every measurement window would open
     * with ~window/tREFI back-to-back catch-up refreshes.
     */
    void resumeAt(TimePs now) override;

    /**
     * Invoked inside every completion event, before the request's own
     * onComplete. The MemorySystem uses this to track in-flight lines
     * without wrapping each request's callback in a heap-allocated
     * closure. Set once at construction time.
     */
    void
    setCompletionHook(std::function<void(TimePs)> hook) override
    {
        completionHook_ = std::move(hook);
    }

    /** Requests accepted but not yet issued to the device. */
    std::size_t
    queued() const override
    {
        return static_cast<std::size_t>(stats_.queuedNow);
    }

    /** True when no request is queued (in-flight data may remain). */
    bool idle() const override { return queued() == 0; }

    const Stats &stats() const override { return stats_; }
    const DramSpec &spec() const override { return spec_; }
    const std::string &name() const override { return name_; }

    /** Fraction of CAS commands that were row-buffer hits. */
    double rowHitRate() const { return channelRowHitRate(stats_); }

    /** Fraction of simulated time the data bus carried a burst. */
    double
    busUtilization() const
    {
        return channelBusUtilization(stats_, eq_.now());
    }

    /**
     * The read-only observer view of this controller: stable pointers
     * to the aggregate counters and the per-bank SoA counter arrays.
     * The MemorySystem registers this once; src/common observers
     * never touch Channel internals.
     */
    ChannelTelemetry telemetry() const override;

    /** FR-FCFS arbiter mechanics for the host profiler. */
    using HostStats = ChannelHostStats;

    const HostStats &hostStats() const override { return hostStats_; }

  private:
    /** Sentinel index for intrusive lists and callback slots. */
    static constexpr std::uint32_t kNil = ~std::uint32_t{0};

    /**
     * One queued line transfer. Deliberately NOT the whole Request:
     * only the fields the arbiter reads live here; the completion
     * callback is parked in the slab under cbSlot. Entries are slab
     * slots threaded onto two intrusive lists: the per-queue age list
     * (prevG/nextG, FIFO by seq) and the per-bank FIFO (prevB/nextB).
     * Padded to one cache line so neighbouring slots never share one.
     */
    struct alignas(64) Entry
    {
        ChannelAddr at;
        TimePs enqueuedAt = 0;
        std::uint64_t seq = 0;     //!< global arrival order
        std::uint64_t traceId = 0; //!< sampled-demand span id
        std::uint32_t prevG = kNil, nextG = kNil; //!< age list
        std::uint32_t prevB = kNil, nextB = kNil; //!< bank FIFO
        std::uint32_t cbSlot = kNil; //!< completionSlots_ index
        Request::Kind kind = Request::Kind::kDemand;
        bool causedAct = false; //!< an ACT was issued on its behalf
    };

    /** Per-bank FIFO plus cached oldest hit/conflict entries. */
    struct BankList
    {
        std::uint32_t head = kNil, tail = kNil;
        /** Oldest entry targeting the bank's open row (open only). */
        std::uint32_t oldestHit = kNil;
        /** Oldest entry conflicting with the open row (open only). */
        std::uint32_t oldestMiss = kNil;
    };

    /** One scheduling queue (reads or writes). */
    struct Queue
    {
        std::uint32_t head = kNil, tail = kNil; //!< global age list
        std::size_t size = 0;
        std::vector<BankList> banks;
        /** Ready-bank index: bit b set iff banks[b] is non-empty. */
        std::vector<std::uint64_t> workWords;
    };

    void tick();
    void scheduleTick(TimePs when);
    void performRefresh();

    /** Issue one command if possible; returns true if one was issued. */
    bool tryIssue();

    /** Attempt to issue for queue `q`; CAS/ACT/PRE per FR-FCFS. */
    bool tryIssueFrom(Queue &q, bool is_write_queue);

    /** Complete entry `idx` of `q` with a CAS at the current time. */
    void issueCas(Queue &q, std::uint32_t idx, bool is_write_queue);

    /** Earliest future time any queued entry could issue a command. */
    TimePs earliestWork() const;

    /** True if some queued entry targets bank `b`'s open row. */
    bool
    openRowHasPendingHit(std::uint32_t b) const
    {
        return readQ_.banks[b].oldestHit != kNil ||
               writeQ_.banks[b].oldestHit != kNil;
    }

    /** Append slab entry `idx` to `q`'s age and bank lists. */
    void pushEntry(Queue &q, std::uint32_t idx);

    /** Unlink slab entry `idx` from `q`, fixing the bank caches. */
    void removeEntry(Queue &q, std::uint32_t idx);

    /** Recompute one bank's hit/conflict caches after a row change. */
    void refreshBankCaches(Queue &q, std::uint32_t b);

    /** Invoke `f(bank)` for each bank with queued work, ascending. */
    template <typename F>
    void
    forEachWorkBank(const Queue &q, F &&f) const
    {
        for (std::size_t w = 0; w < q.workWords.size(); ++w) {
            std::uint64_t bits = q.workWords[w];
            while (bits != 0) {
                const int bit = std::countr_zero(bits);
                bits &= bits - 1;
                f(static_cast<std::uint32_t>(w * 64 + bit));
            }
        }
    }

    TimePs alignUp(TimePs t) const;

    EventQueue &eq_;
    DramSpec spec_;
    CommandTimingTable tbl_; //!< precomputed from spec_.timing
    std::string name_;
    TimePs extraLatencyPs_;
    ControllerPolicy policy_;
    DomainId domain_;
    std::function<void(TimePs)> completionHook_;

    /**
     * Parking slab for completion callbacks from enqueue until the
     * data burst completes: queue Entries and the scheduled completion
     * event carry only a slot index, so queue relinking and event
     * scheduling never move the callable, and freed slots are reused
     * so a steady-state run performs no per-request allocation.
     */
    std::vector<CompletionCallback> completionSlots_;
    std::vector<std::uint32_t> freeCompletionSlots_;

    /** Entry slab + free list (indices are stable handles). */
    std::vector<Entry> entries_;
    std::vector<std::uint32_t> freeEntries_;

    BankStateArray banks_;
    std::vector<bool> autoPrePending_; //!< closed-page policy state
    Queue readQ_;
    Queue writeQ_;
    std::uint64_t nextSeq_ = 0;

    TimePs busFreeAt_ = 0;
    TimePs nextRdCasAt_ = 0;
    TimePs nextWrCasAt_ = 0;
    TimePs nextRefreshAt_ = 0;
    TimePs scheduledTickAt_ = kTimeNever;
    bool draining_ = false;

    /** Write-drain watermarks. */
    static constexpr std::size_t kDrainHigh = 16;
    static constexpr std::size_t kDrainLow = 4;
    /** Anti-starvation: oldest-first overrides row hits past this age. */
    static constexpr TimePs kStarvationAgePs = 2'000'000; // 2 us

    Stats stats_;
    HostStats hostStats_;
};

} // namespace mempod
