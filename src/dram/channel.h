/**
 * @file
 * A cycle-level DRAM channel controller: per-bank open-page state,
 * FR-FCFS scheduling with read priority and write-drain watermarks,
 * rank activation windows (tRRD/tFAW), data-bus contention, bus
 * turnaround penalties and periodic refresh.
 *
 * The controller is event-driven: it schedules itself on the global
 * EventQueue only while it has work, and when blocked purely on timing
 * it sleeps until the earliest constraint expires, so simulated idle
 * memory is free.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "common/metrics.h"
#include "common/types.h"
#include "dram/bank.h"
#include "dram/spec.h"
#include "mem/request.h"

namespace mempod {

/** Bank/row coordinates of a request within one channel. */
struct ChannelAddr
{
    std::uint32_t bank = 0; //!< rank-merged bank index
    std::int64_t row = 0;
};

/** Controller policy knobs (defaults match the paper's setup). */
struct ControllerPolicy
{
    /**
     * Row-buffer management: open-page leaves rows latched for
     * spatial locality; closed-page auto-precharges once no queued
     * request still targets the open row.
     */
    bool closedPage = false;
    /**
     * Scheduling: FR-FCFS (default) reorders for row hits; plain FCFS
     * serves strictly oldest-first within each queue.
     */
    bool fcfs = false;
};

/** One memory channel and its controller. */
class Channel
{
  public:
    struct Stats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t rowHits = 0;   //!< CAS that required no ACT
        std::uint64_t rowMisses = 0; //!< CAS preceded by own ACT
        std::uint64_t activates = 0;
        std::uint64_t precharges = 0;
        std::uint64_t refreshes = 0;
        std::uint64_t maxQueueDepth = 0;
        std::uint64_t busBusyPs = 0; //!< data-bus burst occupancy
    };

    /**
     * @param eq Global event queue.
     * @param spec Device description (timing + organization).
     * @param name For diagnostics ("hbm0", "ddr2", ...).
     * @param extra_latency_ps Fixed interconnect latency added to every
     *        completion (LLC-to-MC traversal both ways).
     */
    Channel(EventQueue &eq, const DramSpec &spec, std::string name,
            TimePs extra_latency_ps = 5000,
            ControllerPolicy policy = {});

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** Queue one line transfer. The controller wakes itself up. */
    void enqueue(Request req, ChannelAddr where);

    /** Requests accepted but not yet issued to the device. */
    std::size_t queued() const { return readQ_.size() + writeQ_.size(); }

    /** True when no request is queued (in-flight data may remain). */
    bool idle() const { return queued() == 0; }

    const Stats &stats() const { return stats_; }
    const DramSpec &spec() const { return spec_; }
    const std::string &name() const { return name_; }

    /** Fraction of CAS commands that were row-buffer hits. */
    double rowHitRate() const;

    /** Fraction of simulated time the data bus carried a burst. */
    double busUtilization() const;

    /**
     * Register this channel's instruments (and its banks') under
     * `prefix` ("mem.fast0" -> "mem.fast0.reads",
     * "mem.fast0.bank3.activates", ...).
     */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    struct Entry
    {
        Request req;
        ChannelAddr at;
        TimePs enqueuedAt = 0;
        bool causedAct = false; //!< an ACT was issued on its behalf
    };

    void tick();
    void scheduleTick(TimePs when);
    void performRefresh();

    /** Issue one command if possible; returns true if one was issued. */
    bool tryIssue();

    /** Attempt to issue for queue `q`; CAS/ACT/PRE per FR-FCFS. */
    bool tryIssueFrom(std::vector<Entry> &q, bool is_write_queue);

    /** Complete `e` with a CAS at the current time. */
    void issueCas(std::vector<Entry> &q, std::size_t idx,
                  bool is_write_queue);

    /** Earliest future time any queued entry could issue a command. */
    TimePs earliestWork() const;

    /** True if some queued entry still targets this bank's open row. */
    bool pendingHitFor(std::uint32_t bank, std::int64_t row) const;

    TimePs alignUp(TimePs t) const;

    EventQueue &eq_;
    DramSpec spec_;
    std::string name_;
    TimePs extraLatencyPs_;
    ControllerPolicy policy_;

    std::vector<Bank> banks_;
    std::vector<bool> autoPrePending_; //!< closed-page policy state
    std::vector<Rank> ranks_;
    std::vector<Entry> readQ_;
    std::vector<Entry> writeQ_;

    TimePs busFreeAt_ = 0;
    TimePs nextRdCasAt_ = 0;
    TimePs nextWrCasAt_ = 0;
    TimePs nextRefreshAt_ = 0;
    TimePs scheduledTickAt_ = kTimeNever;
    bool draining_ = false;

    /** Write-drain watermarks. */
    static constexpr std::size_t kDrainHigh = 16;
    static constexpr std::size_t kDrainLow = 4;
    /** Anti-starvation: oldest-first overrides row hits past this age. */
    static constexpr TimePs kStarvationAgePs = 2'000'000; // 2 us

    Stats stats_;
};

} // namespace mempod
