/**
 * @file
 * A cycle-level DRAM channel controller: per-bank open-page state,
 * FR-FCFS scheduling with read priority and write-drain watermarks,
 * rank activation windows (tRRD/tFAW), data-bus contention, bus
 * turnaround penalties and periodic refresh.
 *
 * The controller is event-driven: it schedules itself on the global
 * EventQueue only while it has work, and when blocked purely on timing
 * it sleeps until the earliest constraint expires, so simulated idle
 * memory is free.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "common/metrics.h"
#include "common/types.h"
#include "dram/bank.h"
#include "dram/spec.h"
#include "mem/request.h"

namespace mempod {

/** Bank/row coordinates of a request within one channel. */
struct ChannelAddr
{
    std::uint32_t bank = 0; //!< rank-merged bank index
    std::int64_t row = 0;
};

/** Controller policy knobs (defaults match the paper's setup). */
struct ControllerPolicy
{
    /**
     * Row-buffer management: open-page leaves rows latched for
     * spatial locality; closed-page auto-precharges once no queued
     * request still targets the open row.
     */
    bool closedPage = false;
    /**
     * Scheduling: FR-FCFS (default) reorders for row hits; plain FCFS
     * serves strictly oldest-first within each queue.
     */
    bool fcfs = false;
};

/** One memory channel and its controller. */
class Channel
{
  public:
    struct Stats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t rowHits = 0;   //!< CAS that required no ACT
        std::uint64_t rowMisses = 0; //!< CAS preceded by own ACT
        std::uint64_t activates = 0;
        std::uint64_t precharges = 0;
        std::uint64_t refreshes = 0;
        std::uint64_t maxQueueDepth = 0;
        std::uint64_t busBusyPs = 0; //!< data-bus burst occupancy
        /** Summed demand wait from enqueue to CAS (attribution). */
        std::uint64_t demandQueueWaitPs = 0;
        /** Summed demand CAS-to-completion time (attribution). */
        std::uint64_t demandServicePs = 0;
    };

    /**
     * @param eq Global event queue.
     * @param spec Device description (timing + organization).
     * @param name For diagnostics ("hbm0", "ddr2", ...).
     * @param extra_latency_ps Fixed interconnect latency added to every
     *        completion (LLC-to-MC traversal both ways).
     */
    Channel(EventQueue &eq, const DramSpec &spec, std::string name,
            TimePs extra_latency_ps = 5000,
            ControllerPolicy policy = {});

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** Queue one line transfer. The controller wakes itself up. */
    void enqueue(Request req, ChannelAddr where);

    /**
     * Invoked inside every completion event, before the request's own
     * onComplete. The MemorySystem uses this to track in-flight lines
     * without wrapping each request's callback in a heap-allocated
     * closure. Set once at construction time.
     */
    void
    setCompletionHook(std::function<void(TimePs)> hook)
    {
        completionHook_ = std::move(hook);
    }

    /** Requests accepted but not yet issued to the device. */
    std::size_t queued() const { return readQ_.size() + writeQ_.size(); }

    /** True when no request is queued (in-flight data may remain). */
    bool idle() const { return queued() == 0; }

    const Stats &stats() const { return stats_; }
    const DramSpec &spec() const { return spec_; }
    const std::string &name() const { return name_; }

    /** Fraction of CAS commands that were row-buffer hits. */
    double rowHitRate() const;

    /** Fraction of simulated time the data bus carried a burst. */
    double busUtilization() const;

    /**
     * Register this channel's instruments (and its banks') under
     * `prefix` ("mem.fast0" -> "mem.fast0.reads",
     * "mem.fast0.bank3.activates", ...).
     */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    /** No parked completion callback for this entry. */
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

    /**
     * One queued line transfer. Deliberately NOT the whole Request:
     * FR-FCFS scans these linearly every tick, so only the fields the
     * controller reads live here; the completion callback is parked in
     * the slab under cbSlot. Padded out to exactly one cache line —
     * measurably faster than the denser 40-byte packing, where entries
     * straddle line boundaries and the scan pays split loads.
     */
    struct alignas(64) Entry
    {
        ChannelAddr at;
        TimePs enqueuedAt = 0;
        std::uint64_t traceId = 0;      //!< sampled-demand span id
        std::uint32_t cbSlot = kNoSlot; //!< completionSlots_ index
        Request::Kind kind = Request::Kind::kDemand;
        bool causedAct = false; //!< an ACT was issued on its behalf
    };

    void tick();
    void scheduleTick(TimePs when);
    void performRefresh();

    /** Issue one command if possible; returns true if one was issued. */
    bool tryIssue();

    /** Attempt to issue for queue `q`; CAS/ACT/PRE per FR-FCFS. */
    bool tryIssueFrom(std::vector<Entry> &q, bool is_write_queue);

    /** Complete `e` with a CAS at the current time. */
    void issueCas(std::vector<Entry> &q, std::size_t idx,
                  bool is_write_queue);

    /** Earliest future time any queued entry could issue a command. */
    TimePs earliestWork() const;

    /** True if some queued entry still targets this bank's open row. */
    bool pendingHitFor(std::uint32_t bank, std::int64_t row) const;

    TimePs alignUp(TimePs t) const;

    EventQueue &eq_;
    DramSpec spec_;
    std::string name_;
    TimePs extraLatencyPs_;
    ControllerPolicy policy_;
    std::function<void(TimePs)> completionHook_;

    /**
     * Parking slab for completion callbacks from enqueue until the
     * data burst completes: queue Entries and the scheduled completion
     * event carry only a slot index, so FR-FCFS queue shifts and
     * event-heap sifts never move the callable, and freed slots are
     * reused so a steady-state run performs no per-request allocation.
     */
    std::vector<CompletionCallback> completionSlots_;
    std::vector<std::uint32_t> freeCompletionSlots_;

    std::vector<Bank> banks_;
    std::vector<bool> autoPrePending_; //!< closed-page policy state
    std::vector<Rank> ranks_;
    std::vector<Entry> readQ_;
    std::vector<Entry> writeQ_;

    TimePs busFreeAt_ = 0;
    TimePs nextRdCasAt_ = 0;
    TimePs nextWrCasAt_ = 0;
    TimePs nextRefreshAt_ = 0;
    TimePs scheduledTickAt_ = kTimeNever;
    bool draining_ = false;

    /** Write-drain watermarks. */
    static constexpr std::size_t kDrainHigh = 16;
    static constexpr std::size_t kDrainLow = 4;
    /** Anti-starvation: oldest-first overrides row hits past this age. */
    static constexpr TimePs kStarvationAgePs = 2'000'000; // 2 us

    Stats stats_;
};

} // namespace mempod
