/** @file Unit tests for the discrete-event queue. */
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/event_queue.h"

namespace mempod {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, FifoTieBreakAtEqualTimes)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(50, [&, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesOnlyOnExecution)
{
    EventQueue eq;
    eq.schedule(500, [] {});
    EXPECT_EQ(eq.now(), 0u);
    eq.runOne();
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    TimePs seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsScheduledDuringExecutionRun)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleAfter(10, recurse);
    };
    eq.schedule(0, recurse);
    eq.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextTime(), kTimeNever);
    eq.schedule(70, [] {});
    eq.schedule(30, [] {});
    EXPECT_EQ(eq.nextTime(), 30u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    std::vector<TimePs> ran;
    for (TimePs t : {10u, 20u, 30u, 40u})
        eq.schedule(t, [&, t] { ran.push_back(t); });
    eq.runUntil(30);
    EXPECT_EQ(ran, (std::vector<TimePs>{10, 20, 30}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesNowWhenIdle)
{
    EventQueue eq;
    eq.runUntil(12345);
    EXPECT_EQ(eq.now(), 12345u);
}

TEST(EventQueue, RunAllHonorsLimit)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [&] { ++count; });
    EXPECT_EQ(eq.runAll(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.size(), 6u);
}

TEST(EventQueue, ExecutedCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runOne();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

// ---- timing-wheel specifics: cross-level ordering and slot edges ----

TEST(EventQueueWheel, FifoTieBreakAcrossWheelLevels)
{
    // Two events with the same timestamp, scheduled from different
    // distances: the first lands in an outer wheel (delta >> wheel-0
    // horizon), the second is scheduled 100 ps beforehand and lands in
    // wheel 0. The cascade must not lose the FIFO tie-break.
    EventQueue eq;
    const TimePs when = 3 * EventQueue::kTickPs * EventQueue::kSlots *
                        EventQueue::kSlots; // wheel-2 territory
    std::vector<int> order;
    eq.schedule(when, [&] { order.push_back(1); }); // seq 0, outer wheel
    eq.schedule(when - 100, [&] {
        eq.scheduleAfter(100, [&] { order.push_back(2); }); // wheel 0
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), when);
}

TEST(EventQueueWheel, FifoTieBreakAcrossLadderBoundary)
{
    // Same timestamp, one event deferred to the overflow ladder (delta
    // beyond the outermost wheel), one scheduled later from close by.
    EventQueue eq;
    const TimePs when = 2 * EventQueue::kWheelSpanPs + 12345;
    std::vector<int> order;
    eq.schedule(when, [&] { order.push_back(1); });
    EXPECT_EQ(eq.ladderDeferred(), 1u);
    eq.schedule(when - EventQueue::kTickPs, [&] {
        eq.scheduleAfter(EventQueue::kTickPs,
                         [&] { order.push_back(2); });
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), when);
}

TEST(EventQueueWheel, LadderEventFiresAtExactTime)
{
    EventQueue eq;
    const TimePs far = 3 * EventQueue::kWheelSpanPs + 777;
    TimePs fired = 0;
    eq.schedule(far, [&] { fired = eq.now(); });
    // An intermediate event forces cursor movement through all wheels.
    eq.schedule(EventQueue::kWheelSpanPs / 2, [] {});
    eq.runAll();
    EXPECT_EQ(fired, far);
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueueWheel, RunUntilAtSlotEdges)
{
    // Events straddling a wheel-0 slot boundary: runUntil exactly at
    // the boundary must execute the boundary event but nothing after,
    // even though later events share its slot region.
    EventQueue eq;
    const TimePs tick = EventQueue::kTickPs;
    std::vector<TimePs> ran;
    for (TimePs t : {tick - 1, tick, tick + 1, 2 * tick - 1, 2 * tick})
        eq.schedule(t, [&, t] { ran.push_back(t); });
    eq.runUntil(tick);
    EXPECT_EQ(ran, (std::vector<TimePs>{tick - 1, tick}));
    EXPECT_EQ(eq.now(), tick);
    eq.runUntil(2 * tick - 1);
    EXPECT_EQ(ran.size(), 4u);
    EXPECT_EQ(eq.now(), 2 * tick - 1);
    eq.runUntil(2 * tick);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 2 * tick);
}

TEST(EventQueueWheel, NextTimePeeksAcrossAllLevels)
{
    EventQueue eq;
    const TimePs far = EventQueue::kWheelSpanPs + 999; // ladder
    eq.schedule(far, [] {});
    EXPECT_EQ(eq.nextTime(), far);
    const TimePs mid =
        EventQueue::kTickPs * EventQueue::kSlots * 7; // wheel >= 1
    eq.schedule(mid, [] {});
    EXPECT_EQ(eq.nextTime(), mid);
    eq.schedule(42, [] {}); // wheel 0
    EXPECT_EQ(eq.nextTime(), 42u);
    // Peeking never reorders: execution still follows (when, seq).
    std::vector<TimePs> ran;
    while (eq.runOne())
        ran.push_back(eq.now());
    EXPECT_EQ(ran, (std::vector<TimePs>{42, mid, far}));
}

TEST(EventQueueWheel, StressMatchesStableSortReference)
{
    // Deterministic pseudo-random schedule spanning every level
    // (wheel 0 through the ladder), with re-scheduling from inside
    // callbacks. Execution order must equal a stable sort by time of
    // scheduling order — the heap semantics the wheel replaced.
    EventQueue eq;
    std::uint64_t lcg = 12345;
    auto rnd = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
    };
    std::vector<std::pair<TimePs, int>> expected; // (when, seq)
    std::vector<int> ran;
    int seq = 0;
    auto scheduleOne = [&](TimePs when) {
        const int id = seq++;
        expected.emplace_back(when, id);
        eq.schedule(when, [&ran, id] { ran.push_back(id); });
    };
    for (int i = 0; i < 400; ++i) {
        // Mix of deltas: same-tick, slot-distance, cross-wheel, ladder.
        const std::uint64_t pick = rnd() % 5;
        const TimePs base = eq.now();
        TimePs delta;
        switch (pick) {
          case 0: delta = rnd() % 4; break;
          case 1: delta = rnd() % (EventQueue::kTickPs * 4); break;
          case 2: delta = rnd() % (EventQueue::kTickPs *
                                   EventQueue::kSlots * 4); break;
          case 3: delta = rnd() % (EventQueue::kWheelSpanPs / 16); break;
          default: delta = EventQueue::kWheelSpanPs + rnd(); break;
        }
        scheduleOne(base + delta);
        // Occasionally drain a few events so scheduling happens from
        // many different cursor positions.
        if (i % 7 == 0)
            eq.runAll(3);
    }
    eq.runAll();
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(ran.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(ran[i], expected[i].second) << "at position " << i;
}

// ---- host-profiler counters: deterministic, pinned per schedule ----

TEST(EventQueueHostStats, PlacementLevelsPinned)
{
    // With the cursor at tick 0, each delta selects a known level:
    //   1'000 ps, 50'000 ps         -> wheel 0   (tick < 256)
    //   100'000 ps                  -> wheel 1
    //   1 << 25 ps                  -> wheel 2
    //   1 << 33 ps                  -> wheel 3
    //   1 << 41 ps                  -> overflow ladder
    // The counters are pure functions of this schedule — perf on or
    // off, serial or sharded — so exact pins are safe.
    EventQueue eq;
    for (const TimePs when :
         {TimePs{1'000}, TimePs{50'000}, TimePs{100'000},
          TimePs{1} << 25, TimePs{1} << 33, TimePs{1} << 41})
        eq.schedule(when, [] {});
    const EventQueue::HostStats &hs = eq.hostStats();
    EXPECT_EQ(hs.placedAtLevel[0], 2u);
    EXPECT_EQ(hs.placedAtLevel[1], 1u);
    EXPECT_EQ(hs.placedAtLevel[2], 1u);
    EXPECT_EQ(hs.placedAtLevel[3], 1u);
    EXPECT_EQ(eq.ladderDeferred(), 1u);
    EXPECT_EQ(hs.peakPending, 6u);
    EXPECT_EQ(hs.frontSpills, 0u);
    EXPECT_EQ(hs.drainInserts, 0u);
    eq.runAll();
    EXPECT_EQ(eq.executed(), 6u);
    EXPECT_EQ(eq.hostStats().peakPending, 6u); // high-water, not size
}

TEST(EventQueueHostStats, DrainInsertCounted)
{
    // Two events share wheel-0 slot tick 3 (1000 and 1010 ps); the
    // first schedules a third at its own timestamp while the slot is
    // mid-drain, which must splice into the draining slot.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1'000, [&] {
        order.push_back(1);
        eq.schedule(eq.now(), [&] { order.push_back(2); });
    });
    eq.schedule(1'010, [&] { order.push_back(3); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.hostStats().drainInserts, 1u);
    EXPECT_EQ(eq.hostStats().frontSpills, 0u);
}

TEST(EventQueueHostStats, FrontSpillCounted)
{
    // nextTime() on a wheel-1-only queue cascades the cursor forward;
    // a subsequent schedule behind the cursor must spill to the sorted
    // front list (and still execute first).
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100'000, [&] { order.push_back(2); });
    EXPECT_EQ(eq.nextTime(), 100'000u);
    eq.schedule(2'000, [&] { order.push_back(1); });
    EXPECT_EQ(eq.hostStats().frontSpills, 1u);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueHostStats, SlotListsRecycled)
{
    // The first slot ever opened allocates; after it drains, the next
    // slot reuses the pooled vector instead of allocating again.
    EventQueue eq;
    eq.schedule(1'000, [] {});
    eq.runAll();
    EXPECT_EQ(eq.hostStats().listAllocs, 1u);
    eq.schedule(100'000, [] {}); // fresh wheel-1 slot
    EXPECT_EQ(eq.hostStats().listAllocs, 1u);
    EXPECT_EQ(eq.hostStats().listReuses, 1u);
    eq.runAll();
    EXPECT_EQ(eq.executed(), 2u);
}

// ---------------------------------------------------------------------
// Canonical cross-domain ordering (the sharded-executor surface):
// events carried between per-domain wheels must land in the one total
// order (when, schedTime, schedDomain, schedCounter) regardless of
// which wheel they came from or when they were merged.
// ---------------------------------------------------------------------

TEST(EventQueueDomains, CrossDomainScheduleStagesInOutbox)
{
    EventQueue lane;
    lane.setHomeDomain(3);
    lane.routeCrossDomain(true);
    std::size_t ran = 0;
    lane.schedule(100, [&] {
        ++ran; // home-domain events stay local even when routed
        lane.scheduleIn(EventQueue::kCoordinatorDomain, 500, [&] { ++ran; });
    });
    lane.runAll();
    EXPECT_EQ(ran, 1u);
    ASSERT_EQ(lane.outbox().size(), 1u);
    EXPECT_EQ(lane.outbox()[0].target, EventQueue::kCoordinatorDomain);
    EXPECT_EQ(lane.outbox()[0].key.when, 500u);
    EXPECT_EQ(lane.outbox()[0].key.schedTime, 100u);
    EXPECT_TRUE(lane.empty());
}

TEST(EventQueueDomains, EqualWhenMergeOrdersByDomainThenCounter)
{
    // Three domains schedule for the same instant at the same simulated
    // time; merge the foreign ones in *reverse* domain order — the
    // canonical comparator, not insertion order, must decide.
    EventQueue coord; // home domain 0
    EventQueue lane1;
    lane1.setHomeDomain(1);
    lane1.routeCrossDomain(true);
    EventQueue lane2;
    lane2.setHomeDomain(2);
    lane2.routeCrossDomain(true);

    std::vector<int> order;
    const TimePs when = 700; // same tick for everyone
    coord.schedule(when, [&] { order.push_back(1); });
    coord.schedule(when, [&] { order.push_back(2); });
    lane1.scheduleIn(0, when, [&] { order.push_back(11); });
    lane1.scheduleIn(0, when, [&] { order.push_back(12); });
    lane2.scheduleIn(0, when, [&] { order.push_back(21); });
    lane2.scheduleIn(0, when, [&] { order.push_back(22); });

    for (EventQueue *src : {&lane2, &lane1}) { // deliberately reversed
        for (EventQueue::CrossEvent &e : src->outbox())
            coord.admitForeign(0, e.key, std::move(e.cb));
        src->outbox().clear();
    }
    coord.runAll();
    // Domain rank breaks the (when, schedTime) tie; the per-domain
    // counter (the pinned seq tiebreak) orders within each domain.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12, 21, 22}));
}

TEST(EventQueueDomains, SchedTimePrecedesDomainRank)
{
    // A *later* scheduling call always runs after an earlier one at
    // the same `when`, even when made by a lower-ranked domain — the
    // legacy global-FIFO order, reproduced without any global counter.
    EventQueue coord;
    EventQueue lane2;
    lane2.setHomeDomain(2);
    lane2.routeCrossDomain(true);

    std::vector<int> order;
    const TimePs when = 4000;
    lane2.schedule(10, [&] {
        lane2.scheduleIn(0, when, [&] { order.push_back(2); });
    });
    lane2.runAll(); // schedTime 10
    coord.schedule(20, [&] {
        coord.schedule(when, [&] { order.push_back(0); });
    });
    coord.runAll(1); // run only the scheduler event (schedTime 20)
    for (EventQueue::CrossEvent &e : lane2.outbox())
        coord.admitForeign(0, e.key, std::move(e.cb));
    lane2.outbox().clear();
    coord.runAll();
    EXPECT_EQ(order, (std::vector<int>{2, 0}));
}

TEST(EventQueueDomains, EqualWhenMergeAcrossWheelLevels)
{
    // Same-`when` events from two domains placed while the cursor sits
    // far behind, so both land in a higher wheel and cascade down
    // before executing: the canonical key must survive the cascade.
    EventQueue coord;
    EventQueue lane1;
    lane1.setHomeDomain(1);
    lane1.routeCrossDomain(true);

    std::vector<int> order;
    const TimePs far_when =
        EventQueue::kTickPs * EventQueue::kSlots * 3 + 128;
    lane1.scheduleIn(0, far_when, [&] { order.push_back(10); });
    coord.schedule(far_when, [&] { order.push_back(0); });
    coord.schedule(far_when, [&] { order.push_back(1); });
    // Admit the foreign event *first*: it still runs last-of-none —
    // domain 0's calls precede domain 1's at the same (when, schedTime).
    for (EventQueue::CrossEvent &e : lane1.outbox())
        coord.admitForeign(0, e.key, std::move(e.cb));
    lane1.outbox().clear();
    coord.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10}));
}

TEST(EventQueueDomains, ReservedKeyReplaysAtApplyTime)
{
    // The executor's deferred-enqueue bracket: a key reserved on the
    // coordinator is consumed by the first schedule call inside
    // beginApply/endApply, so the applied event sorts exactly where
    // the serial run's inline call would have put it.
    EventQueue coord;
    EventQueue lane;
    lane.setHomeDomain(1);

    const EventKey reserved = coord.reserveKey(); // domain 0, counter 0
    std::vector<int> order;
    const TimePs when = 300;
    lane.schedule(when, [&] { order.push_back(1); }); // domain 1 call
    lane.beginApply(0, reserved);
    lane.schedule(when, [&] { order.push_back(0); }); // replays domain 0
    lane.endApply();
    lane.runAll();
    // Scheduled second, but the reserved coordinator key outranks the
    // lane's own at the tied (when, schedTime).
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(lane.executed(), 2u);
}

TEST(EventQueueDomainsDeathTest, ForeignEventInThePastPanics)
{
    EventQueue coord;
    coord.schedule(100, [] {});
    coord.runAll();
    EXPECT_DEATH(coord.admitForeign(0, EventKey{50, 10, 0}, [] {}),
                 "foreign event arrives in this domain's past");
}

} // namespace
} // namespace mempod
