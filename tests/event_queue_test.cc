/** @file Unit tests for the discrete-event queue. */
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/event_queue.h"

namespace mempod {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, FifoTieBreakAtEqualTimes)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(50, [&, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesOnlyOnExecution)
{
    EventQueue eq;
    eq.schedule(500, [] {});
    EXPECT_EQ(eq.now(), 0u);
    eq.runOne();
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    TimePs seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsScheduledDuringExecutionRun)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleAfter(10, recurse);
    };
    eq.schedule(0, recurse);
    eq.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextTime(), kTimeNever);
    eq.schedule(70, [] {});
    eq.schedule(30, [] {});
    EXPECT_EQ(eq.nextTime(), 30u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    std::vector<TimePs> ran;
    for (TimePs t : {10u, 20u, 30u, 40u})
        eq.schedule(t, [&, t] { ran.push_back(t); });
    eq.runUntil(30);
    EXPECT_EQ(ran, (std::vector<TimePs>{10, 20, 30}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesNowWhenIdle)
{
    EventQueue eq;
    eq.runUntil(12345);
    EXPECT_EQ(eq.now(), 12345u);
}

TEST(EventQueue, RunAllHonorsLimit)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [&] { ++count; });
    EXPECT_EQ(eq.runAll(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.size(), 6u);
}

TEST(EventQueue, ExecutedCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runOne();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

// ---- timing-wheel specifics: cross-level ordering and slot edges ----

TEST(EventQueueWheel, FifoTieBreakAcrossWheelLevels)
{
    // Two events with the same timestamp, scheduled from different
    // distances: the first lands in an outer wheel (delta >> wheel-0
    // horizon), the second is scheduled 100 ps beforehand and lands in
    // wheel 0. The cascade must not lose the FIFO tie-break.
    EventQueue eq;
    const TimePs when = 3 * EventQueue::kTickPs * EventQueue::kSlots *
                        EventQueue::kSlots; // wheel-2 territory
    std::vector<int> order;
    eq.schedule(when, [&] { order.push_back(1); }); // seq 0, outer wheel
    eq.schedule(when - 100, [&] {
        eq.scheduleAfter(100, [&] { order.push_back(2); }); // wheel 0
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), when);
}

TEST(EventQueueWheel, FifoTieBreakAcrossLadderBoundary)
{
    // Same timestamp, one event deferred to the overflow ladder (delta
    // beyond the outermost wheel), one scheduled later from close by.
    EventQueue eq;
    const TimePs when = 2 * EventQueue::kWheelSpanPs + 12345;
    std::vector<int> order;
    eq.schedule(when, [&] { order.push_back(1); });
    EXPECT_EQ(eq.ladderDeferred(), 1u);
    eq.schedule(when - EventQueue::kTickPs, [&] {
        eq.scheduleAfter(EventQueue::kTickPs,
                         [&] { order.push_back(2); });
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), when);
}

TEST(EventQueueWheel, LadderEventFiresAtExactTime)
{
    EventQueue eq;
    const TimePs far = 3 * EventQueue::kWheelSpanPs + 777;
    TimePs fired = 0;
    eq.schedule(far, [&] { fired = eq.now(); });
    // An intermediate event forces cursor movement through all wheels.
    eq.schedule(EventQueue::kWheelSpanPs / 2, [] {});
    eq.runAll();
    EXPECT_EQ(fired, far);
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueueWheel, RunUntilAtSlotEdges)
{
    // Events straddling a wheel-0 slot boundary: runUntil exactly at
    // the boundary must execute the boundary event but nothing after,
    // even though later events share its slot region.
    EventQueue eq;
    const TimePs tick = EventQueue::kTickPs;
    std::vector<TimePs> ran;
    for (TimePs t : {tick - 1, tick, tick + 1, 2 * tick - 1, 2 * tick})
        eq.schedule(t, [&, t] { ran.push_back(t); });
    eq.runUntil(tick);
    EXPECT_EQ(ran, (std::vector<TimePs>{tick - 1, tick}));
    EXPECT_EQ(eq.now(), tick);
    eq.runUntil(2 * tick - 1);
    EXPECT_EQ(ran.size(), 4u);
    EXPECT_EQ(eq.now(), 2 * tick - 1);
    eq.runUntil(2 * tick);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 2 * tick);
}

TEST(EventQueueWheel, NextTimePeeksAcrossAllLevels)
{
    EventQueue eq;
    const TimePs far = EventQueue::kWheelSpanPs + 999; // ladder
    eq.schedule(far, [] {});
    EXPECT_EQ(eq.nextTime(), far);
    const TimePs mid =
        EventQueue::kTickPs * EventQueue::kSlots * 7; // wheel >= 1
    eq.schedule(mid, [] {});
    EXPECT_EQ(eq.nextTime(), mid);
    eq.schedule(42, [] {}); // wheel 0
    EXPECT_EQ(eq.nextTime(), 42u);
    // Peeking never reorders: execution still follows (when, seq).
    std::vector<TimePs> ran;
    while (eq.runOne())
        ran.push_back(eq.now());
    EXPECT_EQ(ran, (std::vector<TimePs>{42, mid, far}));
}

TEST(EventQueueWheel, StressMatchesStableSortReference)
{
    // Deterministic pseudo-random schedule spanning every level
    // (wheel 0 through the ladder), with re-scheduling from inside
    // callbacks. Execution order must equal a stable sort by time of
    // scheduling order — the heap semantics the wheel replaced.
    EventQueue eq;
    std::uint64_t lcg = 12345;
    auto rnd = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
    };
    std::vector<std::pair<TimePs, int>> expected; // (when, seq)
    std::vector<int> ran;
    int seq = 0;
    auto scheduleOne = [&](TimePs when) {
        const int id = seq++;
        expected.emplace_back(when, id);
        eq.schedule(when, [&ran, id] { ran.push_back(id); });
    };
    for (int i = 0; i < 400; ++i) {
        // Mix of deltas: same-tick, slot-distance, cross-wheel, ladder.
        const std::uint64_t pick = rnd() % 5;
        const TimePs base = eq.now();
        TimePs delta;
        switch (pick) {
          case 0: delta = rnd() % 4; break;
          case 1: delta = rnd() % (EventQueue::kTickPs * 4); break;
          case 2: delta = rnd() % (EventQueue::kTickPs *
                                   EventQueue::kSlots * 4); break;
          case 3: delta = rnd() % (EventQueue::kWheelSpanPs / 16); break;
          default: delta = EventQueue::kWheelSpanPs + rnd(); break;
        }
        scheduleOne(base + delta);
        // Occasionally drain a few events so scheduling happens from
        // many different cursor positions.
        if (i % 7 == 0)
            eq.runAll(3);
    }
    eq.runAll();
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(ran.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(ran[i], expected[i].second) << "at position " << i;
}

} // namespace
} // namespace mempod
