/** @file Unit tests for the discrete-event queue. */
#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.h"

namespace mempod {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, FifoTieBreakAtEqualTimes)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(50, [&, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesOnlyOnExecution)
{
    EventQueue eq;
    eq.schedule(500, [] {});
    EXPECT_EQ(eq.now(), 0u);
    eq.runOne();
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    TimePs seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsScheduledDuringExecutionRun)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleAfter(10, recurse);
    };
    eq.schedule(0, recurse);
    eq.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextTime(), kTimeNever);
    eq.schedule(70, [] {});
    eq.schedule(30, [] {});
    EXPECT_EQ(eq.nextTime(), 30u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    std::vector<TimePs> ran;
    for (TimePs t : {10u, 20u, 30u, 40u})
        eq.schedule(t, [&, t] { ran.push_back(t); });
    eq.runUntil(30);
    EXPECT_EQ(ran, (std::vector<TimePs>{10, 20, 30}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesNowWhenIdle)
{
    EventQueue eq;
    eq.runUntil(12345);
    EXPECT_EQ(eq.now(), 12345u);
}

TEST(EventQueue, RunAllHonorsLimit)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [&] { ++count; });
    EXPECT_EQ(eq.runAll(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.size(), 6u);
}

TEST(EventQueue, ExecutedCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runOne();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

} // namespace
} // namespace mempod
