/**
 * @file
 * Tests for the streaming trace-ingestion subsystem: native
 * record-and-replay round trips, ChampSim and SIFT format round
 * trips, corrupt-input death tests, the bounded-memory mmap window,
 * and end-to-end replay determinism (a replayed run's serialized
 * statistics are byte-identical to the live run's).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/simulation.h"
#include "trace/catalog.h"
#include "trace/champsim.h"
#include "trace/mapped_file.h"
#include "trace/native.h"
#include "trace/sift.h"
#include "trace/source.h"

namespace mempod {
namespace {

std::string
testDir()
{
    const std::string dir = ::testing::TempDir() + "trace_source_test";
    const std::string mkdir = "mkdir -p " + dir;
    EXPECT_EQ(std::system(mkdir.c_str()), 0);
    return dir;
}

Trace
smallTrace(const char *workload = "mix5", std::uint64_t requests = 4000)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.footprintScale = 0.02;
    return WorkloadCatalog::global().build(workload, gc);
}

void
expectIdentical(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].time, b[i].time) << "record " << i;
        ASSERT_EQ(a[i].core, b[i].core) << "record " << i;
        ASSERT_EQ(a[i].coreLocal, b[i].coreLocal) << "record " << i;
        ASSERT_EQ(a[i].type, b[i].type) << "record " << i;
    }
}

TEST(NativeTrace, RoundTripIsLossless)
{
    const std::string path = testDir() + "/roundtrip.trc";
    const Trace original = smallTrace();
    writeNativeTrace(original, path);

    NativeTraceSource source(path);
    EXPECT_EQ(source.size(), original.size());
    expectIdentical(original, materialize(source));
}

TEST(NativeTrace, StreamingSummaryMatchesVectorSummary)
{
    const std::string path = testDir() + "/summary.trc";
    const Trace original = smallTrace();
    writeNativeTrace(original, path);

    const TraceSummary vec = summarize(original);
    NativeTraceSource source(path);
    const TraceSummary str = summarize(source);
    EXPECT_EQ(str.records, vec.records);
    EXPECT_EQ(str.reads, vec.reads);
    EXPECT_EQ(str.writes, vec.writes);
    EXPECT_EQ(str.duration, vec.duration);
    EXPECT_EQ(str.touchedPages, vec.touchedPages);
}

TEST(NativeTraceDeathTest, RejectsGarbage)
{
    const std::string path = testDir() + "/garbage.trc";
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace file, not even close, padding pad";
    out.close();
    EXPECT_DEATH(NativeTraceSource source(path), "not a mempod trace");
}

TEST(NativeTraceDeathTest, RejectsLegacyV1WithUpgradeHint)
{
    const std::string path = testDir() + "/legacy.trc";
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t legacy = 0x4d454d504f445452ull; // v1 magic
    out.write(reinterpret_cast<const char *>(&legacy), 8);
    const std::vector<char> pad(64, 0);
    out.write(pad.data(), static_cast<std::streamsize>(pad.size()));
    out.close();
    EXPECT_DEATH(NativeTraceSource source(path), "re-record");
}

TEST(NativeTraceDeathTest, RejectsTruncatedPayload)
{
    const std::string dir = testDir();
    const std::string full = dir + "/full.trc";
    const Trace original = smallTrace();
    writeNativeTrace(original, full);

    // Chop half the payload off; the header still declares the full
    // record count.
    std::ifstream in(full, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    const std::string cut = dir + "/truncated.trc";
    std::ofstream out(cut, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    EXPECT_DEATH(NativeTraceSource source(cut), "truncated");
}

TEST(NativeTraceDeathTest, RejectsVersionMismatch)
{
    const std::string dir = testDir();
    const std::string path = dir + "/future_version.trc";
    writeNativeTrace(smallTrace(), path);

    // Patch the version field (offset 8) to a future version.
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const std::uint32_t v99 = 99;
    f.write(reinterpret_cast<const char *>(&v99), 4);
    f.close();
    EXPECT_DEATH(NativeTraceSource source(path), "version");
}

TEST(NativeTrace, StreamingMemoryIsBoundedByWindow)
{
    const std::string path = testDir() + "/bounded.trc";
    const Trace original = smallTrace("mix5", 20000);
    writeNativeTrace(original, path);

    // Drain the whole file through a 4 KiB window: the high-water
    // mapped size must stay near the window, far below the file size.
    NativeTraceSource source(path, /*max_records=*/0,
                             /*window_bytes=*/4096);
    TraceRecord rec;
    std::uint64_t n = 0;
    while (source.next(rec))
        ++n;
    EXPECT_EQ(n, original.size());
    const std::uint64_t file_bytes =
        native_trace::kHeaderBytes +
        original.size() * native_trace::kRecordBytes;
    EXPECT_LE(source.maxResidentBytes(), 2 * 4096u);
    EXPECT_LT(source.maxResidentBytes(), file_bytes / 10);
}

TEST(ChampSimTrace, IpTimingRoundTripIsLossless)
{
    const std::string stem = testDir() + "/cs_ip";
    const Trace original = smallTrace();
    VectorTraceSource vec(original);
    const ChampSimConvertResult conv =
        convertToChampSim(vec, stem, ChampSimTiming::kIp);
    EXPECT_EQ(conv.records, original.size());
    EXPECT_GT(conv.files.size(), 1u); // multi-programmed => per-core

    ChampSimTraceSource source(conv.files, ChampSimTiming::kIp,
                               /*period_ps=*/1000,
                               champsim::kDefaultAddrBias);
    EXPECT_EQ(source.size(), original.size());
    expectIdentical(original, materialize(source));
}

TEST(ChampSimTrace, PeriodTimingPreservesPerCoreSequences)
{
    const std::string stem = testDir() + "/cs_period";
    const Trace original = smallTrace();
    VectorTraceSource vec(original);
    const ChampSimConvertResult conv =
        convertToChampSim(vec, stem, ChampSimTiming::kPeriod);

    const TimePs period = 500;
    ChampSimTraceSource source(conv.files, ChampSimTiming::kPeriod,
                               period, champsim::kDefaultAddrBias);
    const Trace replayed = materialize(source);
    ASSERT_EQ(replayed.size(), original.size());

    // Period timing synthesizes arrival times, so global interleaving
    // may shift — but each core's (address, type) sequence must be
    // exactly the original's, clocked at one instruction per period.
    std::map<std::uint8_t, std::vector<const TraceRecord *>> orig, rep;
    for (const auto &r : original)
        orig[r.core].push_back(&r);
    for (const auto &r : replayed)
        rep[r.core].push_back(&r);
    ASSERT_EQ(orig.size(), rep.size());
    for (const auto &[core, recs] : orig) {
        const auto &replay = rep.at(core);
        ASSERT_EQ(recs.size(), replay.size()) << "core " << int(core);
        for (std::size_t i = 0; i < recs.size(); ++i) {
            ASSERT_EQ(replay[i]->coreLocal, recs[i]->coreLocal);
            ASSERT_EQ(replay[i]->type, recs[i]->type);
            ASSERT_EQ(replay[i]->time, i * period);
        }
    }
}

TEST(ChampSimTraceDeathTest, RejectsNonMultipleFileSize)
{
    const std::string path = testDir() + "/ragged.champsim";
    std::ofstream out(path, std::ios::binary);
    const std::vector<char> bytes(100, 7); // not a multiple of 64
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    EXPECT_DEATH(ChampSimTraceSource source({{path, 0}},
                                            ChampSimTiming::kPeriod,
                                            1000,
                                            champsim::kDefaultAddrBias),
                 "64");
}

TEST(SiftTrace, RoundTripIsLossless)
{
    const std::string stem = testDir() + "/sift_rt";
    const Trace original = smallTrace();
    VectorTraceSource vec(original);
    // period 1: icount == time in ps, so the round trip is exact.
    const SiftConvertResult conv = convertToSift(vec, stem, 1);
    EXPECT_EQ(conv.records, original.size());

    SiftTraceSource source(conv.files, /*period_ps=*/1);
    EXPECT_EQ(source.size(), original.size());
    expectIdentical(original, materialize(source));
}

TEST(SiftTraceDeathTest, RejectsCompressedStreams)
{
    const std::string path = testDir() + "/compressed.sift";
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t magic = sift::kMagic, headerSize = 16;
    const std::uint64_t options = 0x7; // any nonzero = compressed/ext
    out.write(reinterpret_cast<const char *>(&magic), 4);
    out.write(reinterpret_cast<const char *>(&headerSize), 4);
    out.write(reinterpret_cast<const char *>(&options), 8);
    out.close();
    EXPECT_DEATH(SiftTraceSource source({{path, 0}}, 1000),
                 "not supported");
}

TEST(SiftTraceDeathTest, RejectsUnknownRecordKind)
{
    const std::string path = testDir() + "/badkind.sift";
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t magic = sift::kMagic, headerSize = 16;
    const std::uint64_t options = 0;
    out.write(reinterpret_cast<const char *>(&magic), 4);
    out.write(reinterpret_cast<const char *>(&headerSize), 4);
    out.write(reinterpret_cast<const char *>(&options), 8);
    const char bogus = 0x55;
    out.write(&bogus, 1);
    out.close();
    EXPECT_DEATH(SiftTraceSource source({{path, 0}}, 1000),
                 "unknown SIFT record kind");
}

TEST(MappedFileDeathTest, ReadPastEndIsActionable)
{
    const std::string path = testDir() + "/short.bin";
    std::ofstream out(path, std::ios::binary);
    out << "0123456789";
    out.close();
    MappedFile file(path, 4096);
    EXPECT_DEATH(file.at(8, 16), "truncated");
}

/**
 * The record-and-replay guarantee end to end: capture a workload,
 * replay it from disk (native and ChampSim), and require the full
 * serialized statistics bundle — every counter and hex-exact float —
 * to match the live run byte for byte.
 */
TEST(ReplayDeterminism, ReplayedStatsAreByteIdenticalToLive)
{
    const std::string dir = testDir();
    const Trace original = smallTrace("xalanc", 6000);
    const SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);

    const RunResult live = runSimulation(cfg, original, "xalanc");
    const std::string live_stats = serializeRunResult(live);

    const std::string native_path = dir + "/replay.trc";
    writeNativeTrace(original, native_path);
    NativeTraceSource native(native_path);
    const RunResult replay_native =
        runSimulation(cfg, native, "xalanc");
    EXPECT_EQ(serializeRunResult(replay_native), live_stats);

    VectorTraceSource vec(original);
    const ChampSimConvertResult conv = convertToChampSim(
        vec, dir + "/replay_cs", ChampSimTiming::kIp);
    ChampSimTraceSource cs(conv.files, ChampSimTiming::kIp, 1000,
                           champsim::kDefaultAddrBias);
    const RunResult replay_cs = runSimulation(cfg, cs, "xalanc");
    EXPECT_EQ(serializeRunResult(replay_cs), live_stats);
}

/** External traces flow through the TraceCache without duplication. */
TEST(ReplayDeterminism, TraceCacheServesExternalTraces)
{
    const std::string dir = testDir();
    const Trace original = smallTrace("xalanc", 3000);
    writeNativeTrace(original, dir + "/cached.trc");
    std::ofstream m(dir + "/traces.json");
    m << "{\"version\": 1, \"traces\": [{\"name\": \"cached\", "
         "\"format\": \"native\", \"file\": \"cached.trc\"}]}\n";
    m.close();

    WorkloadCatalog catalog;
    catalog.loadManifest(dir + "/traces.json");
    TraceCache cache(&catalog);
    GeneratorConfig gc;
    gc.totalRequests = 0;
    const auto store = cache.get("cached", gc);
    ASSERT_TRUE(store->external());
    EXPECT_EQ(store->records(), original.size());
    // Same key => same shared store, not a second validation pass.
    EXPECT_EQ(cache.get("cached", gc).get(), store.get());

    expectIdentical(original, materialize(*store->open()));
}

} // namespace
} // namespace mempod
