/**
 * @file
 * Invariant-checker tests: each conservation law is fed deliberately
 * corrupted state and must panic with its structured
 * `invariant violated [law]` diagnostic; clean runs of every
 * mechanism must pass the always-on checks (including --paranoid
 * depth) with the checker demonstrably having run.
 */
#include <gtest/gtest.h>

#include "sim/report.h"
#include "sim/simulation.h"
#include "sim/validate.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

TEST(Validate, PermutationAcceptsMutualInverses)
{
    const std::vector<std::uint32_t> location{2, 0, 1};
    const std::vector<std::uint32_t> resident{1, 2, 0};
    checkPermutation("test", location, resident); // must not panic
}

TEST(ValidateDeath, CorruptedRemapTablePanics)
{
    // Slot 1 duplicated: resident is no longer a permutation.
    const std::vector<std::uint32_t> location{0, 1, 2};
    const std::vector<std::uint32_t> resident{0, 1, 1};
    EXPECT_DEATH(checkPermutation("test", location, resident),
                 "invariant violated \\[remap_bijection\\]");
}

TEST(ValidateDeath, OneSidedRemapCorruptionPanics)
{
    // location[2] points at slot 0, but slot 0 holds id 0.
    const std::vector<std::uint32_t> location{0, 1, 0};
    const std::vector<std::uint32_t> resident{0, 1, 2};
    EXPECT_DEATH(checkPermutation("test", location, resident),
                 "invariant violated \\[remap_bijection\\]");
}

RunResult
consistentResult()
{
    RunResult r;
    r.attribution.mshrWaitNs = 1.25;
    r.attribution.metadataNs = 0.5;
    r.attribution.blockedNs = 2.0;
    r.attribution.queueWaitNs = 30.0;
    r.attribution.serviceNs = 20.25;
    r.ammatNs = r.attribution.totalNs();
    return r;
}

TEST(Validate, ExactAttributionSumPasses)
{
    checkAmmatAttribution(consistentResult()); // must not panic
}

TEST(ValidateDeath, CorruptedAttributionPanics)
{
    RunResult r = consistentResult();
    r.attribution.serviceNs += 0.001; // break the partition
    EXPECT_DEATH(checkAmmatAttribution(r),
                 "invariant violated \\[ammat_attribution_sum\\]");
}

MemorySystem::Stats
someTraffic()
{
    MemorySystem::Stats s;
    s.demandFast = 1000;
    s.demandSlow = 500;
    s.migrationFast = 256;
    s.migrationSlow = 256;
    s.bookkeepingFast = 32;
    s.bookkeepingSlow = 8;
    return s;
}

TEST(Validate, RecomputedEnergyBalances)
{
    const MemorySystem::Stats s = someTraffic();
    checkEnergyBalance(s, true, estimateEnergy(s, true));
}

TEST(ValidateDeath, CorruptedEnergyTermPanics)
{
    const MemorySystem::Stats s = someTraffic();
    EnergyEstimate e = estimateEnergy(s, true);
    e.migrationUj *= 1.01; // report drifts from its own counters
    EXPECT_DEATH(checkEnergyBalance(s, true, e),
                 "invariant violated \\[energy_balance\\]");
}

TEST(ValidateDeath, MigrationCountMismatchPanics)
{
    EXPECT_DEATH(checkMigrationConservation("MemPod", 7, 6),
                 "invariant violated \\[migration_conservation\\]");
}

SimConfig
tinyConfig(Mechanism m, bool paranoid)
{
    SimConfig c = SimConfig::paper(m);
    c.geom = SystemGeometry::tiny();
    c.mempod.interval = 20_us;
    c.mempod.pod.meaEntries = 16;
    c.validateParanoid = paranoid;
    return c;
}

Trace
tinyTrace(std::uint64_t requests = 30000)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.footprintScale = 0.015;
    return WorkloadCatalog::global().build("mix5", gc);
}

TEST(Validate, EveryMechanismPassesParanoidChecks)
{
    const Trace t = tinyTrace();
    for (Mechanism m :
         {Mechanism::kNoMigration, Mechanism::kMemPod, Mechanism::kHma,
          Mechanism::kThm, Mechanism::kCameo}) {
        Simulation sim(tinyConfig(m, /*paranoid=*/true));
        const RunResult r = sim.run(t, "mix5");
        EXPECT_EQ(r.completed, t.size()) << mechanismName(m);
        ASSERT_NE(sim.validator(), nullptr) << mechanismName(m);
        // The periodic probe fired at least once per simulated epoch,
        // plus the end-of-run audit.
        EXPECT_GT(sim.validator()->checksRun(), 1u) << mechanismName(m);
    }
}

TEST(Validate, ShardedRunPassesTheSameChecks)
{
    SimConfig c = tinyConfig(Mechanism::kMemPod, true);
    c.shards = 2;
    Simulation sim(c);
    const Trace t = tinyTrace();
    const RunResult r = sim.run(t, "mix5");
    EXPECT_EQ(r.completed, t.size());
    EXPECT_GT(sim.validator()->checksRun(), 1u);
}

TEST(Validate, DisabledByConfigLeavesNoChecker)
{
    SimConfig c = tinyConfig(Mechanism::kMemPod, false);
    c.validateEnabled = false;
    Simulation sim(c);
    sim.run(tinyTrace(10000), "mix5");
    EXPECT_EQ(sim.validator(), nullptr);
}

TEST(ValidateDeath, ManagerLevelCorruptionIsCaughtByParanoidScan)
{
    // End-to-end: corrupt a mechanism's migration counter after a run
    // and let the manager-level audit find the mismatch against its
    // engine's commit count.
    EXPECT_DEATH(
        {
            Simulation sim(tinyConfig(Mechanism::kMemPod, true));
            sim.run(tinyTrace(10000), "mix5");
            const MigrationStats &ms = sim.manager().migrationStats();
            checkMigrationConservation("MemPod", ms.migrations + 1,
                                       ms.migrations);
        },
        "invariant violated \\[migration_conservation\\]");
}

} // namespace
} // namespace mempod
