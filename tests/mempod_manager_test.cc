/** @file Unit tests for the top-level MemPod manager. */
#include <gtest/gtest.h>

#include "core/mempod_manager.h"

namespace mempod {
namespace {

struct ManagerFixture : ::testing::Test
{
    EventQueue eq;
    MemorySystem mem{eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600()};

    MemPodParams
    params()
    {
        MemPodParams p;
        p.interval = 10_us;
        p.pod.meaEntries = 8;
        p.pod.meaCounterBits = 8;
        return p;
    }
};

TEST_F(ManagerFixture, BuildsOnePodPerGeometryPod)
{
    MemPodManager mgr(eq, mem, params());
    EXPECT_EQ(mgr.numPods(), 4u);
}

TEST_F(ManagerFixture, RoutesDemandToOwningPod)
{
    MemPodManager mgr(eq, mem, params());
    // Slow page with global slow index 2 belongs to pod 2.
    const PageId page = mem.geom().fastPages() + 2;
    int done = 0;
    mgr.handleDemand({.homeAddr = AddressMap::addrOfPage(page) + 128,
                      .arrival = eq.now(),
                      .done = [&](TimePs) { ++done; }});
    eq.runAll();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(mgr.pod(2).mea().size(), 1u);
    EXPECT_EQ(mgr.pod(0).mea().size(), 0u);
}

TEST_F(ManagerFixture, IntervalTimerFiresAllPods)
{
    MemPodManager mgr(eq, mem, params());
    mgr.start();
    eq.runUntil(35_us); // three 10 us boundaries
    EXPECT_EQ(mgr.migrationStats().intervals, 3u);
    for (std::size_t p = 0; p < mgr.numPods(); ++p)
        EXPECT_EQ(mgr.pod(p).stats().intervals, 3u);
}

TEST_F(ManagerFixture, HotPagesMigrateViaTimer)
{
    MemPodManager mgr(eq, mem, params());
    mgr.start();
    // Hammer one slow page of pod 0.
    const PageId hot = mem.geom().fastPages();
    for (int i = 0; i < 10; ++i) {
        mgr.handleDemand({.homeAddr = AddressMap::addrOfPage(hot),
                          .arrival = eq.now()});
    }
    eq.runUntil(30_us);
    EXPECT_GE(mgr.migrationStats().migrations, 1u);
    EXPECT_TRUE(
        mgr.pod(0).remap().inFast(mem.map().podLocalOfPage(hot)));
}

TEST_F(ManagerFixture, AggregatesAcrossPods)
{
    MemPodManager mgr(eq, mem, params());
    mgr.start();
    // One hot slow page in each pod.
    for (std::uint32_t p = 0; p < 4; ++p) {
        const PageId hot = mem.geom().fastPages() + p;
        for (int i = 0; i < 5; ++i)
            mgr.handleDemand({.homeAddr = AddressMap::addrOfPage(hot),
                              .arrival = eq.now()});
    }
    eq.runUntil(30_us);
    EXPECT_EQ(mgr.migrationStats().migrations, 4u);
    EXPECT_EQ(mgr.migrationStats().bytesMoved, 4 * 2 * kPageBytes);
}

TEST_F(ManagerFixture, PodsMigrateInParallel)
{
    // Each pod has its own engine: all four swaps overlap in time
    // instead of serializing behind one driver.
    MemPodManager mgr(eq, mem, params());
    for (std::uint32_t p = 0; p < 4; ++p) {
        const PageId hot = mem.geom().fastPages() + p;
        for (int i = 0; i < 5; ++i)
            mgr.handleDemand({.homeAddr = AddressMap::addrOfPage(hot),
                              .arrival = eq.now()});
    }
    eq.runAll(); // drain demands without starting the timer
    for (std::size_t p = 0; p < mgr.numPods(); ++p)
        mgr.pod(p).onInterval();
    std::uint32_t active = 0;
    for (std::size_t p = 0; p < mgr.numPods(); ++p)
        active += mgr.pod(p).engine().activeOps();
    EXPECT_EQ(active, 4u);
    eq.runAll();
}

TEST(MemPodManager, PaperStorageNumbers)
{
    EventQueue eq;
    MemorySystem mem(eq, SystemGeometry::paper(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600());
    MemPodManager mgr(eq, mem, MemPodParams{});
    // Section 5.2: 64 entries x 23 bits x 4 pods = 736 B total.
    EXPECT_EQ(mgr.trackingStorageBits() / 8, 736u);
    // Remap tables: ~2.95 MB per pod (21-bit entries).
    EXPECT_NEAR(static_cast<double>(mgr.remapStorageBits()) / 8 /
                    (1 << 20),
                4 * 2.95, 0.2);
}

TEST_F(ManagerFixture, PendingWorkDrainsToZero)
{
    MemPodManager mgr(eq, mem, params());
    mgr.start();
    const PageId hot = mem.geom().fastPages();
    for (int i = 0; i < 10; ++i)
        mgr.handleDemand({.homeAddr = AddressMap::addrOfPage(hot),
                          .arrival = eq.now()});
    eq.runUntil(50_us);
    EXPECT_EQ(mgr.pendingWork(), 0u);
}

} // namespace
} // namespace mempod
