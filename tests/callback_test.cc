/** @file Unit tests for the move-only small-buffer callable. */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "common/callback.h"

namespace mempod {
namespace {

TEST(MoveFunction, EmptyIsFalseAndAssignable)
{
    MoveFunction<int()> f;
    EXPECT_FALSE(f);
    MoveFunction<int()> g = nullptr;
    EXPECT_FALSE(g);
    f = [] { return 7; };
    EXPECT_TRUE(f);
    EXPECT_EQ(f(), 7);
}

TEST(MoveFunction, InlineCaptureInvokes)
{
    int hits = 0;
    MoveFunction<void(int)> f = [&hits](int d) { hits += d; };
    f(3);
    f(4);
    EXPECT_EQ(hits, 7);
}

TEST(MoveFunction, MoveOnlyCaptureCompiles)
{
    // std::function rejects this target; the per-request completion
    // chain relies on move-only captures composing without wrappers.
    auto p = std::make_unique<int>(41);
    MoveFunction<int()> f = [p = std::move(p)] { return *p + 1; };
    EXPECT_EQ(f(), 42);
}

TEST(MoveFunction, MoveTransfersTarget)
{
    MoveFunction<int()> f = [] { return 5; };
    MoveFunction<int()> g = std::move(f);
    EXPECT_FALSE(f); // NOLINT(bugprone-use-after-move): spec'd empty
    ASSERT_TRUE(g);
    EXPECT_EQ(g(), 5);

    MoveFunction<int()> h;
    h = std::move(g);
    EXPECT_FALSE(g); // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(h(), 5);
}

TEST(MoveFunction, HeapFallbackForLargeCapture)
{
    struct Big
    {
        std::uint64_t pad[32]; // 256 bytes > any inline Cap we use
    };
    Big big{};
    big.pad[31] = 99;
    MoveFunction<std::uint64_t(), 64> f = [big] {
        return big.pad[31];
    };
    EXPECT_EQ(f(), 99u);
    MoveFunction<std::uint64_t(), 64> g = std::move(f);
    EXPECT_EQ(g(), 99u);
}

TEST(MoveFunction, DestructorRunsCaptureDestructors)
{
    auto counter = std::make_shared<int>(0);
    {
        MoveFunction<void()> f = [counter] { (void)counter; };
        EXPECT_EQ(counter.use_count(), 2);
    }
    EXPECT_EQ(counter.use_count(), 1);

    // Heap-fallback path too.
    struct Big
    {
        std::shared_ptr<int> sp;
        std::uint64_t pad[32];
    };
    {
        MoveFunction<void(), 64> f = [b = Big{counter, {}}] {
            (void)b;
        };
        EXPECT_EQ(counter.use_count(), 2);
    }
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(MoveFunction, ReassignmentDestroysOldTarget)
{
    auto a = std::make_shared<int>(0);
    auto b = std::make_shared<int>(0);
    MoveFunction<void()> f = [a] { (void)a; };
    EXPECT_EQ(a.use_count(), 2);
    f = [b] { (void)b; };
    EXPECT_EQ(a.use_count(), 1);
    EXPECT_EQ(b.use_count(), 2);
}

} // namespace
} // namespace mempod
