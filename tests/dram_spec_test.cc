/** @file Unit tests for DRAM device presets and geometry math. */
#include <gtest/gtest.h>

#include "dram/spec.h"

namespace mempod {
namespace {

TEST(DramSpec, Hbm1GHzMatchesPaperTable2)
{
    const DramSpec s = DramSpec::hbm1GHz();
    EXPECT_EQ(s.timing.clockPeriodPs, 1000u); // 1 GHz
    EXPECT_EQ(s.timing.tCL, 7000u);
    EXPECT_EQ(s.timing.tRCD, 7000u);
    EXPECT_EQ(s.timing.tRP, 7000u);
    EXPECT_EQ(s.timing.tRAS, 17000u);
    EXPECT_EQ(s.org.banksPerRank, 16u);
    EXPECT_EQ(s.org.rowBufferBytes, 8192u);
    EXPECT_EQ(s.org.busBits, 128u);
    // 1 GB over 8 channels.
    EXPECT_EQ(s.org.channelBytes(), 128_MiB);
}

TEST(DramSpec, Ddr4MatchesPaperTable2)
{
    const DramSpec s = DramSpec::ddr4_1600();
    EXPECT_EQ(s.timing.clockPeriodPs, 1250u); // 800 MHz
    EXPECT_EQ(s.timing.cycles(s.timing.tCL), 11u);
    EXPECT_EQ(s.timing.cycles(s.timing.tRCD), 11u);
    EXPECT_EQ(s.timing.cycles(s.timing.tRP), 11u);
    EXPECT_EQ(s.timing.cycles(s.timing.tRAS), 28u);
    EXPECT_EQ(s.org.busBits, 64u);
    // 8 GB over 4 channels.
    EXPECT_EQ(s.org.channelBytes(), 2_GiB);
}

TEST(DramSpec, BurstMovesOneLine)
{
    // tBL cycles x bus width x DDR must equal 64 bytes.
    for (const DramSpec &s :
         {DramSpec::hbm1GHz(), DramSpec::ddr4_1600(),
          DramSpec::ddr4_2400(), DramSpec::hbm4GHz()}) {
        const std::uint64_t bytes_per_cycle = s.org.busBits / 8 * 2;
        EXPECT_EQ(s.timing.cycles(s.timing.tBL) * bytes_per_cycle,
                  kLineBytes)
            << s.name;
    }
}

TEST(DramSpec, RowCycleIsRasPlusRp)
{
    const DramSpec s = DramSpec::hbm1GHz();
    EXPECT_EQ(s.timing.tRC(), 24000u); // 24 cycles at 1 ns
}

TEST(DramSpec, FutureHbmIsFourTimesFaster)
{
    const DramSpec base = DramSpec::hbm1GHz();
    const DramSpec fast = DramSpec::hbm4GHz();
    EXPECT_EQ(fast.timing.clockPeriodPs * 4, base.timing.clockPeriodPs);
    EXPECT_EQ(fast.idealReadLatencyPs() * 4, base.idealReadLatencyPs());
}

TEST(DramSpec, FutureSystemWidensLatencyRatio)
{
    // The Figure 10 premise: stacked memory accelerates more than
    // off-chip, so the fast:slow latency ratio grows.
    const double today =
        static_cast<double>(DramSpec::ddr4_1600().idealReadLatencyPs()) /
        DramSpec::hbm1GHz().idealReadLatencyPs();
    const double future =
        static_cast<double>(DramSpec::ddr4_2400().idealReadLatencyPs()) /
        DramSpec::hbm4GHz().idealReadLatencyPs();
    EXPECT_GT(future, today * 2);
}

TEST(DramSpec, WithChannelBytesResizesRows)
{
    const DramSpec s = DramSpec::hbm1GHz().withChannelBytes(2_MiB);
    EXPECT_EQ(s.org.channelBytes(), 2_MiB);
    EXPECT_EQ(s.org.rowsPerBank, 2_MiB / (16 * 8192));
    // Timing is untouched.
    EXPECT_EQ(s.timing.tCL, 7000u);
}

TEST(DramSpecDeathTest, MisalignedChannelSizePanics)
{
    EXPECT_DEATH(DramSpec::hbm1GHz().withChannelBytes(100'000),
                 "multiple");
}

TEST(DramSpec, IdealReadLatency)
{
    const DramSpec s = DramSpec::hbm1GHz();
    // ACT->CAS->data end = (7 + 7 + 2) cycles at 1 ns.
    EXPECT_EQ(s.idealReadLatencyPs(), 16000u);
}

TEST(DramSpec, PagesPerRow)
{
    EXPECT_EQ(DramSpec::hbm1GHz().org.pagesPerRow(), 4u);
}

TEST(CommandTimingTable, EncodesPairwiseConstraints)
{
    const DramTiming t = DramSpec::hbm1GHz().timing;
    const CommandTimingTable tbl = CommandTimingTable::build(t);
    const auto act = cmdIndex(DramCmd::kAct);
    const auto pre = cmdIndex(DramCmd::kPre);
    const auto rd = cmdIndex(DramCmd::kRd);
    const auto wr = cmdIndex(DramCmd::kWr);

    EXPECT_EQ(tbl.bank[act][rd], t.tRCD);
    EXPECT_EQ(tbl.bank[act][wr], t.tRCD);
    EXPECT_EQ(tbl.bank[act][pre], t.tRAS);
    EXPECT_EQ(tbl.bank[act][act], t.tRC());
    EXPECT_EQ(tbl.bank[pre][act], t.tRP);
    EXPECT_EQ(tbl.bank[rd][pre], t.tRTP);
    EXPECT_EQ(tbl.bank[wr][pre], t.tCWL + t.tBL + t.tWR);
    EXPECT_EQ(tbl.rank[act][act], t.tRRD);
    EXPECT_EQ(tbl.channel[rd][rd], t.tCCD);
    EXPECT_EQ(tbl.channel[wr][rd], t.tCWL + t.tBL + t.tWTR);
    EXPECT_EQ(tbl.channel[rd][wr], t.tCL + t.tBL + t.tRTW - t.tCWL);
    EXPECT_EQ(tbl.rdDataPs, t.tCL + t.tBL);
    EXPECT_EQ(tbl.wrDataPs, t.tCWL + t.tBL);
    EXPECT_EQ(tbl.burstPs, t.tBL);
    EXPECT_EQ(tbl.fawPs, t.tFAW);
    // Unconstrained pairs hold zero so max-folding them is a no-op.
    EXPECT_EQ(tbl.bank[rd][act], 0u);
    EXPECT_EQ(tbl.channel[act][act], 0u);
}

TEST(DramTiming, FromCyclesMultipliesByClock)
{
    const DramTiming t = DramTiming::fromCycles(
        1250, {.tCL = 11,
               .tCWL = 9,
               .tRCD = 11,
               .tRP = 11,
               .tRAS = 28,
               .tBL = 4,
               .tCCD = 4,
               .tWR = 12,
               .tWTR = 6,
               .tRTP = 6,
               .tRTW = 2,
               .tRRD = 5,
               .tFAW = 24,
               .tREFI = 6240,
               .tRFC = 280});
    EXPECT_EQ(t.clockPeriodPs, 1250u);
    EXPECT_EQ(t.tCL, 11u * 1250u);
    EXPECT_EQ(t.tFAW, 24u * 1250u);
    EXPECT_EQ(t.cycles(t.tREFI), 6240u);
}

} // namespace
} // namespace mempod
