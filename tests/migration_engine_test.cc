/** @file Unit tests for the migration driver/datapath. */
#include <gtest/gtest.h>

#include "common/event_queue.h"
#include "core/migration_engine.h"

namespace mempod {
namespace {

struct EngineFixture : ::testing::Test
{
    EventQueue eq;
    MemorySystem mem{eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600()};
};

TEST_F(EngineFixture, PageSwapIssuesFullDatapathTraffic)
{
    MigrationEngine eng(eq, mem, 1);
    bool committed = false;
    MigrationEngine::SwapOp op;
    op.locA = 16_MiB; // a slow page
    op.locB = 0;      // a fast page
    op.lines = static_cast<std::uint32_t>(kLinesPerPage);
    op.onCommit = [&] { committed = true; };
    eng.submit(std::move(op));
    eq.runAll();
    EXPECT_TRUE(committed);
    // 32 reads + 32 writes per candidate, both candidates: the paper's
    // 2 KB migration datapath (Section 6.2).
    EXPECT_EQ(mem.stats().migrationLines(), 4 * kLinesPerPage);
    EXPECT_EQ(eng.stats().opsCommitted, 1u);
    EXPECT_EQ(eng.stats().bytesMoved, 2 * kPageBytes);
}

TEST_F(EngineFixture, LineSwapMovesTwoLines)
{
    MigrationEngine eng(eq, mem, 1);
    MigrationEngine::SwapOp op;
    op.locA = 16_MiB;
    op.locB = 64;
    op.lines = 1;
    eng.submit(std::move(op));
    eq.runAll();
    EXPECT_EQ(mem.stats().migrationLines(), 4u); // 2 reads + 2 writes
    EXPECT_EQ(eng.stats().bytesMoved, 2 * kLineBytes);
}

TEST_F(EngineFixture, OpsSerializeWithSingleSlot)
{
    MigrationEngine eng(eq, mem, 1);
    std::vector<int> commits;
    for (int i = 0; i < 3; ++i) {
        MigrationEngine::SwapOp op;
        op.locA = 16_MiB + i * kPageBytes;
        op.locB = static_cast<Addr>(i) * kPageBytes;
        op.lines = 4;
        op.onCommit = [&, i] { commits.push_back(i); };
        eng.submit(std::move(op));
    }
    EXPECT_EQ(eng.activeOps(), 1u);
    EXPECT_EQ(eng.queuedOps(), 2u);
    eq.runAll();
    EXPECT_EQ(commits, (std::vector<int>{0, 1, 2}));
    EXPECT_FALSE(eng.busy());
}

TEST_F(EngineFixture, ParallelSlotsRunConcurrently)
{
    MigrationEngine eng(eq, mem, 4);
    for (int i = 0; i < 4; ++i) {
        MigrationEngine::SwapOp op;
        op.locA = 16_MiB + i * kPageBytes;
        op.locB = static_cast<Addr>(i) * kPageBytes;
        op.lines = 2;
        eng.submit(std::move(op));
    }
    EXPECT_EQ(eng.activeOps(), 4u);
    EXPECT_EQ(eng.queuedOps(), 0u);
    eq.runAll();
    EXPECT_EQ(eng.stats().opsCommitted, 4u);
}

TEST_F(EngineFixture, ClearQueuedAbortsWithoutCommitting)
{
    MigrationEngine eng(eq, mem, 1);
    int committed = 0, aborted = 0;
    for (int i = 0; i < 3; ++i) {
        MigrationEngine::SwapOp op;
        op.locA = 16_MiB + i * kPageBytes;
        op.locB = static_cast<Addr>(i) * kPageBytes;
        op.lines = 2;
        op.onCommit = [&] { ++committed; };
        op.onAbort = [&] { ++aborted; };
        eng.submit(std::move(op));
    }
    eng.clearQueued(); // two queued ops dropped; the active one runs
    eq.runAll();
    EXPECT_EQ(committed, 1);
    EXPECT_EQ(aborted, 2);
    EXPECT_EQ(eng.stats().opsDropped, 2u);
}

TEST_F(EngineFixture, WritesFollowReads)
{
    // The commit happens only after both phases: total migration lines
    // at commit time must be all reads plus all writes.
    MigrationEngine eng(eq, mem, 1);
    std::uint64_t lines_at_commit = 0;
    MigrationEngine::SwapOp op;
    op.locA = 16_MiB;
    op.locB = 0;
    op.lines = 8;
    op.onCommit = [&] { lines_at_commit = mem.stats().migrationLines(); };
    eng.submit(std::move(op));
    eq.runAll();
    EXPECT_EQ(lines_at_commit, 32u); // 16 reads + 16 writes dispatched
}

TEST_F(EngineFixture, FreedSlotStartsNextOp)
{
    MigrationEngine eng(eq, mem, 1);
    bool second_started_after_first = false;
    bool first_done = false;
    MigrationEngine::SwapOp a, b;
    a.locA = 16_MiB;
    a.locB = 0;
    a.lines = 2;
    a.onCommit = [&] { first_done = true; };
    b.locA = 17_MiB;
    b.locB = kPageBytes;
    b.lines = 2;
    b.onCommit = [&] { second_started_after_first = first_done; };
    eng.submit(std::move(a));
    eng.submit(std::move(b));
    eq.runAll();
    EXPECT_TRUE(second_started_after_first);
}

} // namespace
} // namespace mempod
