/**
 * @file
 * Property-based sweeps (parameterized gtest): invariants that must
 * hold across the whole design space, not just the paper's defaults.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pod.h"
#include "dram/channel.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

// ---------------------------------------------------------------------
// DRAM timing: across all device presets, a lone read always completes
// at exactly the zero-load latency, and consecutive same-row reads are
// never slower than row-conflict reads.
class SpecSweep : public ::testing::TestWithParam<int>
{
  public:
    static DramSpec
    spec(int idx)
    {
        switch (idx) {
          case 0:
            return DramSpec::hbm1GHz();
          case 1:
            return DramSpec::ddr4_1600();
          case 2:
            return DramSpec::ddr4_2400();
          default:
            return DramSpec::hbm4GHz();
        }
    }
};

TEST_P(SpecSweep, ZeroLoadLatencyIsIdeal)
{
    const DramSpec s = spec(GetParam()).withChannelBytes(4_MiB);
    EventQueue eq;
    Channel ch(eq, s, "p", 0);
    TimePs finish = 0;
    Request r;
    r.onComplete = [&](TimePs f) { finish = f; };
    ch.enqueue(std::move(r), ChannelAddr{0, 0});
    eq.runAll();
    EXPECT_EQ(finish, s.idealReadLatencyPs());
}

TEST_P(SpecSweep, RowLocalityNeverHurts)
{
    const DramSpec s = spec(GetParam()).withChannelBytes(4_MiB);
    auto run = [&](std::int64_t second_row) {
        EventQueue eq;
        Channel ch(eq, s, "p", 0);
        TimePs last = 0;
        for (std::int64_t row : {std::int64_t{0}, second_row}) {
            Request r;
            r.onComplete = [&](TimePs f) { last = f; };
            ch.enqueue(std::move(r), ChannelAddr{0, row});
        }
        eq.runAll();
        return last;
    };
    EXPECT_LE(run(0), run(1));
}

TEST_P(SpecSweep, ThroughputBoundedByBus)
{
    // 64 row hits cannot finish faster than 64 back-to-back bursts.
    const DramSpec s = spec(GetParam()).withChannelBytes(4_MiB);
    EventQueue eq;
    Channel ch(eq, s, "p", 0);
    TimePs last = 0;
    for (int i = 0; i < 64; ++i) {
        Request r;
        r.onComplete = [&](TimePs f) { last = std::max(last, f); };
        ch.enqueue(std::move(r), ChannelAddr{0, 0});
    }
    eq.runAll();
    EXPECT_GE(last, 64 * s.timing.tBL);
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SpecSweep, ::testing::Range(0, 4));

// ---------------------------------------------------------------------
// Pod migration: under random traffic, for every (entries, bits)
// combination the remap table stays a permutation, blocked requests
// all drain, and migrations never exceed the per-interval cap.
class PodSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(PodSweep, InvariantsUnderRandomTraffic)
{
    const auto [entries, bits] = GetParam();
    EventQueue eq;
    MemorySystem mem(eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600());
    PodParams params;
    params.meaEntries = entries;
    params.meaCounterBits = bits;
    Pod pod(0, eq, mem, params);
    Rng rng(entries * 31 + bits);

    std::uint64_t issued = 0, completed = 0;
    for (int interval = 0; interval < 8; ++interval) {
        for (int i = 0; i < 300; ++i) {
            // Mix of fast and slow home pages of pod 0, zipf-skewed.
            const bool fast = rng.nextBool(0.2);
            const std::uint64_t k = rng.nextZipf(40, 1.0);
            const PageId page =
                fast ? k * mem.geom().numPods
                     : mem.geom().fastPages() + k * mem.geom().numPods;
            ++issued;
            const std::uint64_t offset = 64 * rng.nextBelow(32);
            const AccessType type = rng.nextBool(0.3)
                                        ? AccessType::kWrite
                                        : AccessType::kRead;
            pod.handleDemand(page, offset,
                             {.type = type,
                              .arrival = eq.now(),
                              .done = [&](TimePs) { ++completed; }});
        }
        pod.onInterval();
        eq.runAll();
        ASSERT_LE(pod.stats().migrations,
                  static_cast<std::uint64_t>(entries) * (interval + 1));
    }
    eq.runAll();
    EXPECT_EQ(completed, issued);
    EXPECT_EQ(pod.pendingWork(), 0u);
    pod.remap().checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, PodSweep,
    ::testing::Combine(::testing::Values(4u, 16u, 64u),
                       ::testing::Values(2u, 8u)));

// ---------------------------------------------------------------------
// End-to-end: across mechanisms and workload families, every demand
// completes exactly once and AMMAT is finite and positive.
class MechanismSweep
    : public ::testing::TestWithParam<std::tuple<Mechanism,
                                                 const char *>>
{
};

TEST_P(MechanismSweep, CompletionAndSanity)
{
    const auto [mech, workload] = GetParam();
    SimConfig cfg = SimConfig::paper(mech);
    cfg.geom = SystemGeometry::tiny();
    cfg.mempod.interval = 20_us;
    cfg.hma.interval = 100_us;
    cfg.hma.sortStall = 7_us;
    GeneratorConfig gc;
    gc.totalRequests = 15000;
    gc.footprintScale = 0.015;
    const Trace t = WorkloadCatalog::global().build(workload, gc);
    const RunResult r = runSimulation(cfg, t, workload);
    EXPECT_EQ(r.completed, t.size());
    EXPECT_GT(r.ammatNs, 0.0);
    EXPECT_LT(r.ammatNs, 1e7);
    EXPECT_GE(r.fastServiceFraction, 0.0);
    EXPECT_LE(r.fastServiceFraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MechanismSweep,
    ::testing::Combine(::testing::Values(Mechanism::kNoMigration,
                                         Mechanism::kMemPod,
                                         Mechanism::kHma, Mechanism::kThm,
                                         Mechanism::kCameo),
                       ::testing::Values("xalanc", "lbm", "libquantum",
                                         "mix5")),
    [](const auto &info) {
        return std::string(mechanismName(std::get<0>(info.param))) +
               "_" + std::get<1>(info.param);
    });

} // namespace
} // namespace mempod
