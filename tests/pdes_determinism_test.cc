/**
 * @file
 * Determinism proof for the conservative PDES executor: the sharded
 * kernel must be *byte-identical* to the serial one — every metric,
 * every sampler interval, every trace record — at every shard count.
 * The tests sweep randomized seeds, mechanisms and shard counts and
 * compare full MetricSnapshots (not headline numbers), so any
 * divergence names the exact metric that moved.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

constexpr std::uint64_t kRequests = 6000;
constexpr unsigned kShardCounts[] = {1, 2, 4, 8};

Trace
makeTrace(const char *workload, std::uint64_t seed)
{
    GeneratorConfig gc;
    gc.totalRequests = kRequests;
    gc.seed = seed;
    return WorkloadCatalog::global().build(workload, gc);
}

/** Run one config at one shard count; returns the final snapshot. */
struct RunCapture
{
    RunResult result;
    MetricSnapshot snapshot;
    std::string traceJson;
    std::vector<IntervalRecord> intervals;
};

RunCapture
runAt(SimConfig cfg, const Trace &trace, unsigned shards)
{
    cfg.shards = shards;
    Simulation sim(cfg);
    RunCapture cap;
    cap.result = sim.run(trace, "determinism");
    cap.snapshot = sim.finalSnapshot();
    if (sim.tracer())
        cap.traceJson = sim.tracer()->toJson();
    if (sim.sampler())
        cap.intervals = sim.sampler()->records();
    return cap;
}

void
expectSnapshotsEqual(const MetricSnapshot &serial,
                     const MetricSnapshot &sharded,
                     const std::string &label)
{
    EXPECT_EQ(serial.simTimePs, sharded.simTimePs) << label;
    ASSERT_EQ(serial.values.size(), sharded.values.size()) << label;
    auto a = serial.values.begin();
    auto b = sharded.values.begin();
    for (; a != serial.values.end(); ++a, ++b) {
        ASSERT_EQ(a->first, b->first) << label;
        const std::string at = label + " metric " + a->first;
        const MetricValue &va = a->second;
        const MetricValue &vb = b->second;
        EXPECT_EQ(va.count, vb.count) << at;
        EXPECT_EQ(va.hits, vb.hits) << at;
        // Exact double equality on purpose: both runs derive gauges
        // from identical integer state with identical arithmetic.
        EXPECT_EQ(va.real, vb.real) << at;
        EXPECT_EQ(va.min, vb.min) << at;
        EXPECT_EQ(va.max, vb.max) << at;
        EXPECT_EQ(va.mean, vb.mean) << at;
        EXPECT_EQ(va.stddev, vb.stddev) << at;
        EXPECT_EQ(va.buckets, vb.buckets) << at;
    }
}

struct Scenario
{
    const char *label;
    Mechanism mechanism;
    const char *workload;
    std::uint64_t seed;
    TimePs statsIntervalPs; //!< 0 = no sampler (no boundary steps)
};

// Mechanism x workload x seed spread; CAMEO is the line-granularity
// stressor (most events, most cross-domain traffic), MemPod exercises
// pods + interval timers, HMA exercises the core-stall hook.
const Scenario kScenarios[] = {
    {"mempod-mix5-s7", Mechanism::kMemPod, "mix5", 7, 0},
    {"mempod-lbm-s99", Mechanism::kMemPod, "lbm", 99, 50'000'000},
    {"cameo-mix5-s1234", Mechanism::kCameo, "mix5", 1234, 0},
    {"cameo-mcf-s5", Mechanism::kCameo, "mcf", 5, 25'000'000},
    {"hma-mix5-s21", Mechanism::kHma, "mix5", 21, 0},
    {"nomigration-zeusmp-s3", Mechanism::kNoMigration, "zeusmp", 3, 0},
};

SimConfig
scenarioConfig(const Scenario &s)
{
    SimConfig cfg = SimConfig::paper(s.mechanism);
    if (s.mechanism == Mechanism::kHma)
        cfg.scaleHmaEpoch(4.0);
    cfg.statsIntervalPs = s.statsIntervalPs;
    return cfg;
}

TEST(PdesDeterminism, SnapshotsIdenticalAcrossShardCounts)
{
    for (const Scenario &s : kScenarios) {
        const Trace trace = makeTrace(s.workload, s.seed);
        const SimConfig cfg = scenarioConfig(s);
        const RunCapture serial = runAt(cfg, trace, 0);
        ASSERT_EQ(serial.result.completed, kRequests) << s.label;
        for (unsigned shards : kShardCounts) {
            const RunCapture sharded = runAt(cfg, trace, shards);
            expectSnapshotsEqual(serial.snapshot, sharded.snapshot,
                                 std::string(s.label) + " shards=" +
                                     std::to_string(shards));
        }
    }
}

TEST(PdesDeterminism, SamplerIntervalsIdentical)
{
    // Boundary steps serialize sampler instants; every interval delta
    // must match the serial sampler's, not just the final totals.
    const Scenario s = {"mempod-mix5-sampled", Mechanism::kMemPod,
                        "mix5", 11, 10'000'000};
    const Trace trace = makeTrace(s.workload, s.seed);
    const SimConfig cfg = scenarioConfig(s);
    const RunCapture serial = runAt(cfg, trace, 0);
    ASSERT_GT(serial.intervals.size(), 3u)
        << "scenario too short to exercise boundary steps";
    for (unsigned shards : kShardCounts) {
        const RunCapture sharded = runAt(cfg, trace, shards);
        const std::string label =
            std::string(s.label) + " shards=" + std::to_string(shards);
        ASSERT_EQ(serial.intervals.size(), sharded.intervals.size())
            << label;
        for (std::size_t i = 0; i < serial.intervals.size(); ++i) {
            const IntervalRecord &ia = serial.intervals[i];
            const IntervalRecord &ib = sharded.intervals[i];
            const std::string il =
                label + " interval " + std::to_string(i);
            EXPECT_EQ(ia.index, ib.index) << il;
            EXPECT_EQ(ia.startPs, ib.startPs) << il;
            EXPECT_EQ(ia.endPs, ib.endPs) << il;
            expectSnapshotsEqual(ia.delta, ib.delta, il);
        }
    }
}

TEST(PdesDeterminism, TraceBytesIdentical)
{
    // The strongest oracle: the rendered Chrome-trace JSON, which
    // bakes in record order, track-id interning order and flow ids.
    SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
    cfg.tracer.enabled = true;
    cfg.tracer.sampleEvery = 4;
    cfg.tracer.seed = 7;
    const Trace trace = makeTrace("mix5", 7);
    const RunCapture serial = runAt(cfg, trace, 0);
    ASSERT_FALSE(serial.traceJson.empty());
    for (unsigned shards : {1u, 4u}) {
        const RunCapture sharded = runAt(cfg, trace, shards);
        EXPECT_EQ(serial.traceJson, sharded.traceJson)
            << "trace bytes diverge at shards=" << shards;
    }
}

TEST(PdesDeterminism, PerfMonitorDoesNotPerturbOutput)
{
    // The host profiler reads wall clocks, but its numbers must never
    // flow back into simulated state: with tracing and the sampler
    // both on, a perf-enabled run must reproduce a perf-disabled run
    // byte for byte — serialized result, every snapshot metric, the
    // rendered trace JSON and every sampler interval — at any shard
    // count.
    SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
    cfg.tracer.enabled = true;
    cfg.tracer.sampleEvery = 4;
    cfg.tracer.seed = 7;
    cfg.statsIntervalPs = 25'000'000;
    const Trace trace = makeTrace("mix5", 7);
    for (unsigned shards : {0u, 4u}) {
        const RunCapture off = runAt(cfg, trace, shards);
        SimConfig on_cfg = cfg;
        on_cfg.perfEnabled = true;
        const RunCapture on = runAt(on_cfg, trace, shards);
        const std::string label =
            "perf on/off shards=" + std::to_string(shards);
        EXPECT_EQ(serializeRunResult(off.result),
                  serializeRunResult(on.result))
            << label;
        expectSnapshotsEqual(off.snapshot, on.snapshot, label);
        EXPECT_EQ(off.traceJson, on.traceJson) << label;
        ASSERT_EQ(off.intervals.size(), on.intervals.size()) << label;
        for (std::size_t i = 0; i < off.intervals.size(); ++i) {
            EXPECT_EQ(off.intervals[i].startPs, on.intervals[i].startPs);
            EXPECT_EQ(off.intervals[i].endPs, on.intervals[i].endPs);
            expectSnapshotsEqual(off.intervals[i].delta,
                                 on.intervals[i].delta,
                                 label + " interval " +
                                     std::to_string(i));
        }
    }
}

TEST(PdesDeterminism, ExecutorWorkPartition)
{
    // The host is allowed to be 1-core, so speedup is asserted by
    // work distribution, not wall clock: every shard must own a
    // non-trivial share of the channel events, and the executed-event
    // ledger must reconcile exactly with the serial kernel's count.
    const Trace trace = makeTrace("mix5", 7);
    SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
    const RunCapture serial = runAt(cfg, trace, 0);

    cfg.shards = 4;
    Simulation sim(cfg);
    const RunResult r = sim.run(trace, "partition");
    const ParallelExecutor *ex = sim.executor();
    ASSERT_NE(ex, nullptr);
    EXPECT_EQ(ex->shards(), 4u);
    EXPECT_EQ(r.eventsExecuted, serial.result.eventsExecuted);
    EXPECT_EQ(ex->totalExecuted(), serial.result.eventsExecuted);
    EXPECT_GT(ex->windows(), 0u);

    const std::vector<std::uint64_t> byDomain = ex->perDomainExecuted();
    ASSERT_EQ(byDomain.size(), 1 + ex->numLanes());
    std::uint64_t sum = 0;
    for (std::uint64_t n : byDomain)
        sum += n;
    EXPECT_EQ(sum, ex->totalExecuted());

    std::uint64_t shard_sum = 0;
    const std::uint64_t channel_events =
        ex->totalExecuted() - byDomain[0];
    for (unsigned s = 0; s < ex->shards(); ++s) {
        const std::uint64_t n = ex->perShardExecuted(s);
        shard_sum += n;
        // Round-robin lane placement across a symmetric channel set:
        // every worker gets a real share (>= half of fair share here).
        EXPECT_GT(n, channel_events / 8) << "shard " << s;
    }
    EXPECT_EQ(shard_sum, channel_events);
}

TEST(PdesDeterminism, ShardCountClampsToChannels)
{
    const Trace trace = makeTrace("mix5", 7);
    SimConfig cfg = SimConfig::paper(Mechanism::kNoMigration);
    const RunCapture serial = runAt(cfg, trace, 0);
    const std::size_t channels =
        cfg.geom.fastChannels + cfg.geom.slowChannels;

    cfg.shards = 64; // far beyond the channel count
    Simulation sim(cfg);
    const RunResult r = sim.run(trace, "clamp");
    ASSERT_NE(sim.executor(), nullptr);
    EXPECT_EQ(sim.executor()->shards(), channels);
    EXPECT_EQ(r.eventsExecuted, serial.result.eventsExecuted);
}

} // namespace
} // namespace mempod
