/** @file Unit tests for the end-to-end simulation driver. */
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

SimConfig
tinyConfig(Mechanism m)
{
    SimConfig c = SimConfig::paper(m);
    c.geom = SystemGeometry::tiny();
    c.mempod.interval = 20_us;
    c.mempod.pod.meaEntries = 16;
    c.hma.interval = 200_us;
    c.hma.sortStall = 14_us;
    c.hma.threshold = 4;
    return c;
}

Trace
tinyTrace(const std::string &workload, std::uint64_t requests = 40000)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.footprintScale = 0.015; // fit the tiny geometry's core slices
    return WorkloadCatalog::global().build(workload, gc);
}

TEST(Simulation, EveryMechanismRunsToCompletion)
{
    const Trace t = tinyTrace("mix5");
    for (Mechanism m :
         {Mechanism::kNoMigration, Mechanism::kMemPod, Mechanism::kHma,
          Mechanism::kThm, Mechanism::kCameo}) {
        const RunResult r = runSimulation(tinyConfig(m), t, "mix5");
        EXPECT_EQ(r.completed, t.size()) << mechanismName(m);
        EXPECT_GT(r.ammatNs, 0.0) << mechanismName(m);
        EXPECT_GT(r.simulatedPs, 0u) << mechanismName(m);
    }
}

TEST(Simulation, DeterministicAcrossRuns)
{
    const Trace t = tinyTrace("xalanc", 20000);
    const RunResult a = runSimulation(tinyConfig(Mechanism::kMemPod), t);
    const RunResult b = runSimulation(tinyConfig(Mechanism::kMemPod), t);
    EXPECT_DOUBLE_EQ(a.ammatNs, b.ammatNs);
    EXPECT_EQ(a.migration.migrations, b.migration.migrations);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
}

TEST(Simulation, NoMigrationFastFractionMatchesCapacityShare)
{
    const Trace t = tinyTrace("mix1");
    const RunResult r =
        runSimulation(tinyConfig(Mechanism::kNoMigration), t);
    // 16 MB of 144 MB total = 1/9 of pages.
    EXPECT_NEAR(r.fastServiceFraction, 1.0 / 9.0, 0.05);
}

TEST(Simulation, MemPodRaisesFastServiceFraction)
{
    const Trace t = tinyTrace("xalanc");
    const RunResult base =
        runSimulation(tinyConfig(Mechanism::kNoMigration), t);
    const RunResult pod =
        runSimulation(tinyConfig(Mechanism::kMemPod), t);
    EXPECT_GT(pod.fastServiceFraction, base.fastServiceFraction * 2);
    EXPECT_GT(pod.migration.migrations, 0u);
}

TEST(Simulation, MemPodBeatsNoMigrationOnSkewedWorkload)
{
    const Trace t = tinyTrace("xalanc");
    const RunResult base =
        runSimulation(tinyConfig(Mechanism::kNoMigration), t);
    const RunResult pod =
        runSimulation(tinyConfig(Mechanism::kMemPod), t);
    EXPECT_LT(pod.ammatNs, base.ammatNs);
}

TEST(Simulation, FastOnlyBeatsSlowOnly)
{
    SimConfig fast_cfg = SimConfig::fastOnly();
    fast_cfg.geom = SystemGeometry::singleTier(144_MiB, 8);
    SimConfig slow_cfg = SimConfig::slowOnly();
    slow_cfg.geom = SystemGeometry::singleTier(144_MiB, 4);
    const Trace t = tinyTrace("mix10", 20000);
    const RunResult fast = runSimulation(fast_cfg, t);
    const RunResult slow = runSimulation(slow_cfg, t);
    EXPECT_LT(fast.ammatNs, slow.ammatNs);
    EXPECT_DOUBLE_EQ(fast.fastServiceFraction, 1.0);
}

TEST(Simulation, HmaSortStallExtendsRuntimeNotAmmat)
{
    // The sorting interrupt pauses the cores: execution takes longer
    // (simulated completion time grows by ~one stall per epoch) but
    // the pause is not memory stall, so AMMAT barely moves.
    SimConfig with_stall = tinyConfig(Mechanism::kHma);
    SimConfig no_stall = with_stall;
    no_stall.hma.sortStall = 0;
    const Trace t = tinyTrace("mix1");
    const RunResult stalled = runSimulation(with_stall, t);
    const RunResult free_sort = runSimulation(no_stall, t);
    EXPECT_GT(stalled.simulatedPs,
              free_sort.simulatedPs + 10_us); // 14 us per 200 us epoch
    EXPECT_LT(stalled.ammatNs, free_sort.ammatNs * 1.5);
}

TEST(Simulation, CameoMovesDataInSmallQuanta)
{
    const Trace t = tinyTrace("mix5", 20000);
    const RunResult cameo =
        runSimulation(tinyConfig(Mechanism::kCameo), t);
    EXPECT_GT(cameo.migration.migrations, 0u);
    EXPECT_EQ(cameo.migration.bytesMoved,
              cameo.migration.migrations * 2 * kLineBytes);
}

TEST(Simulation, MigrationTrafficAccountedSeparately)
{
    SimConfig cfg = tinyConfig(Mechanism::kMemPod);
    const Trace t = tinyTrace("xalanc", 20000);
    Simulation sim(cfg);
    const RunResult r = sim.run(t);
    EXPECT_EQ(r.demandRequests, 20000u);
    // Migration lines hit the channels but never enter the demand
    // counters that define AMMAT's denominator.
    EXPECT_EQ(sim.mem().stats().demandFast +
                  sim.mem().stats().demandSlow,
              20000u);
    EXPECT_GT(sim.mem().stats().migrationLines(), 0u);
}

TEST(Simulation, ScaleHmaEpochKeepsRatios)
{
    SimConfig cfg = SimConfig::paper(Mechanism::kHma);
    cfg.scaleHmaEpoch(100.0); // 100x the MemPod interval
    EXPECT_EQ(cfg.hma.interval, cfg.mempod.interval * 100);
    EXPECT_NEAR(static_cast<double>(cfg.hma.sortStall) /
                    cfg.hma.interval,
                0.07, 0.001);
}

TEST(Simulation, RunResultCarriesEnergyInputs)
{
    const Trace t = tinyTrace("xalanc", 20000);
    const RunResult r =
        runSimulation(tinyConfig(Mechanism::kMemPod), t);
    EXPECT_TRUE(r.podLocalMigrations);
    EXPECT_GT(r.memStats.demandFast + r.memStats.demandSlow, 0u);
    EXPECT_GT(r.memStats.migrationLines(), 0u);
    const RunResult base =
        runSimulation(tinyConfig(Mechanism::kNoMigration), t);
    EXPECT_FALSE(base.podLocalMigrations);
    EXPECT_EQ(base.memStats.migrationLines(), 0u);
}

TEST(Simulation, PerCoreAmmatReported)
{
    const Trace t = tinyTrace("mix1", 20000);
    const RunResult r =
        runSimulation(tinyConfig(Mechanism::kNoMigration), t);
    ASSERT_EQ(r.perCoreAmmatNs.size(), 8u);
    for (double a : r.perCoreAmmatNs)
        EXPECT_GT(a, 0.0);
}

TEST(Simulation, ClosedPagePolicyLowersRowHits)
{
    const Trace t = tinyTrace("xalanc", 30000);
    SimConfig open_cfg = tinyConfig(Mechanism::kNoMigration);
    SimConfig closed_cfg = open_cfg;
    closed_cfg.controller.closedPage = true;
    const RunResult open_run = runSimulation(open_cfg, t);
    const RunResult closed_run = runSimulation(closed_cfg, t);
    EXPECT_LT(closed_run.rowHitRate, open_run.rowHitRate);
    EXPECT_EQ(closed_run.completed, t.size());
}

TEST(Simulation, FcfsSchedulerStillCompletes)
{
    const Trace t = tinyTrace("mix1", 20000);
    SimConfig cfg = tinyConfig(Mechanism::kMemPod);
    cfg.controller.fcfs = true;
    const RunResult r = runSimulation(cfg, t);
    EXPECT_EQ(r.completed, t.size());
}

TEST(Simulation, DescribeMentionsMechanismAndParts)
{
    const std::string d =
        SimConfig::paper(Mechanism::kMemPod).describe();
    EXPECT_NE(d.find("MemPod"), std::string::npos);
    EXPECT_NE(d.find("HBM"), std::string::npos);
    EXPECT_NE(d.find("DDR4"), std::string::npos);
}

} // namespace
} // namespace mempod
