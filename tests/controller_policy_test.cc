/** @file Unit tests for controller page-policy and scheduler options. */
#include <gtest/gtest.h>

#include "common/event_queue.h"
#include "dram/channel.h"

namespace mempod {
namespace {

DramSpec
spec()
{
    return DramSpec::hbm1GHz().withChannelBytes(2_MiB);
}

TimePs
runPair(ControllerPolicy pol, std::int64_t row1, std::int64_t row2,
        TimePs gap, Channel::Stats *out = nullptr)
{
    EventQueue eq;
    Channel ch(eq, spec(), "pol", 0, pol);
    TimePs last = 0;
    Request a;
    a.onComplete = [&](TimePs f) { last = std::max(last, f); };
    ch.enqueue(std::move(a), ChannelAddr{0, row1});
    eq.runUntil(gap);
    Request b;
    b.onComplete = [&](TimePs f) { last = std::max(last, f); };
    ch.enqueue(std::move(b), ChannelAddr{0, row2});
    eq.runAll();
    if (out)
        *out = ch.stats();
    return last;
}

TEST(ControllerPolicy, ClosedPageAutoPrecharges)
{
    Channel::Stats s;
    runPair(ControllerPolicy{.closedPage = true}, 0, 3, 10'000, &s);
    // Both accesses required their own ACT; the first row was closed
    // automatically (one auto-PRE), not by a conflict.
    EXPECT_EQ(s.rowMisses, 2u);
    EXPECT_GE(s.precharges, 1u);
}

TEST(ControllerPolicy, ClosedPageLosesRowHits)
{
    // The gap must exceed tRAS so the auto-precharge has fired.
    Channel::Stats open_stats, closed_stats;
    runPair(ControllerPolicy{}, 0, 0, 60'000, &open_stats);
    runPair(ControllerPolicy{.closedPage = true}, 0, 0, 60'000,
            &closed_stats);
    EXPECT_EQ(open_stats.rowHits, 1u);  // second access hits
    EXPECT_EQ(closed_stats.rowHits, 0u); // row was auto-closed
}

TEST(ControllerPolicy, ClosedPageSpeedsUpConflicts)
{
    // A conflicting access arrives after the row was auto-closed: it
    // skips the precharge it would otherwise pay.
    const TimePs open_t = runPair(ControllerPolicy{}, 0, 5, 60'000);
    const TimePs closed_t =
        runPair(ControllerPolicy{.closedPage = true}, 0, 5, 60'000);
    EXPECT_LT(closed_t, open_t);
}

TEST(ControllerPolicy, ClosedPageKeepsRowForPendingHits)
{
    EventQueue eq;
    Channel ch(eq, spec(), "pol", 0,
               ControllerPolicy{.closedPage = true});
    // Two same-row requests queued together: the second must still be
    // a row hit (auto-PRE waits for pending hits).
    int done = 0;
    for (int i = 0; i < 2; ++i) {
        Request r;
        r.onComplete = [&](TimePs) { ++done; };
        ch.enqueue(std::move(r), ChannelAddr{0, 7});
    }
    eq.runAll();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(ch.stats().rowHits, 1u);
}

TEST(ControllerPolicy, FcfsServesStrictlyInOrder)
{
    EventQueue eq;
    Channel ch(eq, spec(), "fcfs", 0, ControllerPolicy{.fcfs = true});
    std::vector<int> order;
    // Enqueue: conflict (bank0 row0), conflict (bank0 row9), then a
    // row-0 hit FR-FCFS would promote.
    for (int i = 0; i < 3; ++i) {
        Request r;
        r.onComplete = [&, i](TimePs) { order.push_back(i); };
        ch.enqueue(std::move(r),
                   ChannelAddr{0, i == 1 ? std::int64_t{9}
                                         : std::int64_t{0}});
    }
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ControllerPolicy, FrFcfsPromotesRowHits)
{
    EventQueue eq;
    Channel ch(eq, spec(), "frfcfs", 0, ControllerPolicy{});
    std::vector<int> order;
    Request a, b, c;
    a.onComplete = [&](TimePs) { order.push_back(0); };
    b.onComplete = [&](TimePs) { order.push_back(1); };
    c.onComplete = [&](TimePs) { order.push_back(2); };
    ch.enqueue(std::move(a), ChannelAddr{0, 0});
    ch.enqueue(std::move(b), ChannelAddr{0, 9}); // conflict
    ch.enqueue(std::move(c), ChannelAddr{0, 0}); // hit, jumps queue
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(ControllerPolicy, FcfsNeverSlowerToDrainThanZeroWork)
{
    // Sanity: FCFS still completes everything.
    EventQueue eq;
    Channel ch(eq, spec(), "fcfs", 0, ControllerPolicy{.fcfs = true});
    int done = 0;
    for (int i = 0; i < 40; ++i) {
        Request r;
        r.type = i % 2 ? AccessType::kWrite : AccessType::kRead;
        r.onComplete = [&](TimePs) { ++done; };
        ch.enqueue(std::move(r),
                   ChannelAddr{static_cast<std::uint32_t>(i % 16),
                               i % 5});
    }
    eq.runAll();
    EXPECT_EQ(done, 40);
}

} // namespace
} // namespace mempod
