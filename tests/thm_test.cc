/** @file Unit tests for the THM baseline. */
#include <gtest/gtest.h>

#include "baselines/thm.h"

namespace mempod {
namespace {

struct ThmFixture : ::testing::Test
{
    EventQueue eq;
    MemorySystem mem{eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600()};

    ThmParams
    params()
    {
        ThmParams p;
        p.threshold = 3;
        return p;
    }

    /** Home page of member m in segment s (m = 0 is the fast page). */
    PageId
    pageOf(std::uint64_t seg, std::uint32_t m)
    {
        if (m == 0)
            return seg;
        // Contiguous grouping: slow pages [8s, 8s+8) form segment s.
        return mem.geom().fastPages() + seg * 8 + (m - 1);
    }

    void
    touch(ThmManager &mgr, PageId page, int times)
    {
        for (int i = 0; i < times; ++i)
            mgr.handleDemand({.homeAddr = AddressMap::addrOfPage(page),
                              .arrival = eq.now()});
        eq.runAll();
    }
};

TEST_F(ThmFixture, SegmentGeometryMatchesCapacityRatio)
{
    ThmManager mgr(eq, mem, params());
    EXPECT_EQ(mgr.numSegments(), mem.geom().fastPages());
    EXPECT_EQ(mgr.slowPerSegment(), 8u);
}

TEST_F(ThmFixture, DemandsComplete)
{
    ThmManager mgr(eq, mem, params());
    int done = 0;
    mgr.handleDemand({.homeAddr = AddressMap::addrOfPage(pageOf(5, 2)) + 64,
                      .done = [&](TimePs) { ++done; }});
    eq.runAll();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(mem.stats().demandSlow, 1u);
}

TEST_F(ThmFixture, ThresholdTriggersSwapIntoFast)
{
    ThmManager mgr(eq, mem, params());
    const PageId slow = pageOf(9, 3);
    touch(mgr, slow, 3);
    EXPECT_EQ(mgr.migrationStats().migrations, 1u);
    EXPECT_EQ(mgr.fastResidentMember(9), 3u);
    // Now served from fast memory.
    const auto fast_before = mem.stats().demandFast;
    touch(mgr, slow, 1);
    EXPECT_EQ(mem.stats().demandFast, fast_before + 1);
}

TEST_F(ThmFixture, EvictedFastPageServedFromSlowSlot)
{
    ThmManager mgr(eq, mem, params());
    touch(mgr, pageOf(9, 3), 3); // member 3 takes the fast slot
    const auto slow_before = mem.stats().demandSlow;
    touch(mgr, pageOf(9, 0), 1); // the original fast page was evicted
    EXPECT_EQ(mem.stats().demandSlow, slow_before + 1);
}

TEST_F(ThmFixture, OnlyOneFastResidentPerSegment)
{
    ThmManager mgr(eq, mem, params());
    // Two hot pages in the same segment fight for one slot — the
    // paper's flexibility limitation.
    const PageId a = pageOf(4, 1);
    const PageId b = pageOf(4, 2);
    for (int round = 0; round < 6; ++round) {
        touch(mgr, a, 3);
        touch(mgr, b, 3);
    }
    const std::uint32_t resident = mgr.fastResidentMember(4);
    EXPECT_TRUE(resident == 1 || resident == 2);
    // Thrash: many migrations for only two pages.
    EXPECT_GE(mgr.migrationStats().migrations, 4u);
}

TEST_F(ThmFixture, SeparateSegmentsMigrateIndependently)
{
    ThmManager mgr(eq, mem, params());
    touch(mgr, pageOf(1, 2), 3);
    touch(mgr, pageOf(2, 5), 3);
    EXPECT_EQ(mgr.fastResidentMember(1), 2u);
    EXPECT_EQ(mgr.fastResidentMember(2), 5u);
}

TEST_F(ThmFixture, AlternatingAccessesNeverTrigger)
{
    // Competing counters suppress the ping-pong THM is praised for.
    ThmManager mgr(eq, mem, params());
    for (int i = 0; i < 30; ++i) {
        touch(mgr, pageOf(7, 1), 1);
        touch(mgr, pageOf(7, 2), 1);
    }
    EXPECT_EQ(mgr.migrationStats().migrations, 0u);
}

TEST_F(ThmFixture, FastAccessesWeakenCandidate)
{
    ThmManager mgr(eq, mem, params());
    // Slow member gains 2, fast accesses drain it back: no trigger.
    touch(mgr, pageOf(3, 1), 2);
    touch(mgr, pageOf(3, 0), 2);
    touch(mgr, pageOf(3, 1), 1);
    EXPECT_EQ(mgr.migrationStats().migrations, 0u);
}

TEST_F(ThmFixture, SwapMovesFullPages)
{
    ThmManager mgr(eq, mem, params());
    touch(mgr, pageOf(11, 4), 3);
    EXPECT_EQ(mgr.migrationStats().bytesMoved, 2 * kPageBytes);
    EXPECT_EQ(mem.stats().migrationLines(), 4 * kLinesPerPage);
}

TEST_F(ThmFixture, MetaCacheMissBlocksAndFills)
{
    ThmParams p = params();
    p.metaCacheEnabled = true;
    p.metaCacheBytes = 1024;
    ThmManager mgr(eq, mem, p);
    touch(mgr, pageOf(20, 1), 1);
    EXPECT_EQ(mgr.migrationStats().metaCacheMisses, 1u);
    EXPECT_EQ(mem.stats().bookkeepingLines(), 1u);
    touch(mgr, pageOf(20, 1), 1);
    EXPECT_EQ(mgr.migrationStats().metaCacheHits, 1u);
}

TEST_F(ThmFixture, StorageCostsMatchTable1Shape)
{
    EventQueue eq2;
    MemorySystem paper_mem(eq2, SystemGeometry::paper(),
                           DramSpec::hbm1GHz(), DramSpec::ddr4_1600());
    ThmManager mgr(eq2, paper_mem, ThmParams{});
    // Table 1: 8 bits per fast page = 512 KB of competing counters.
    EXPECT_EQ(mgr.trackingStorageBits() / 8 / 1024, 512u);
}

} // namespace
} // namespace mempod
