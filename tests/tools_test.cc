/**
 * @file
 * End-to-end tests of the CLI tools, invoking the real binaries
 * (paths injected by CMake as MEMPOD_*_TOOL_PATH):
 *   - trace_tool summary --json emits the pinned
 *     mempod-trace-summary-v1 schema
 *   - perf_tool diff tolerates metric keys present in only one file
 *     (reports "(new)"/"(removed)" instead of crashing or silently
 *     skipping)
 *   - explain_tool's per-component attribution sums exactly to the
 *     measured AMMAT delta between two real runs
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "sim/simulation.h"
#include "sim/stats_writer.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

/** stdout and exit code of a shell command. */
struct CmdResult
{
    std::string out;
    int status = -1;
};

CmdResult
run(const std::string &cmd)
{
    CmdResult r;
    std::FILE *p = popen((cmd + " 2>/dev/null").c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    const int rc = pclose(p);
    r.status = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return r;
}

std::filesystem::path
tmpDir()
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("mempod_tools_test_" + std::to_string(getpid()));
    std::filesystem::create_directories(dir);
    return dir;
}

void
writeText(const std::filesystem::path &p, const std::string &text)
{
    std::ofstream(p, std::ios::binary) << text;
}

SimConfig
tinyConfig(Mechanism m)
{
    SimConfig c = SimConfig::paper(m);
    c.geom = SystemGeometry::tiny();
    c.mempod.interval = 20_us;
    c.mempod.pod.meaEntries = 16;
    return c;
}

Trace
tinyTrace(std::uint64_t requests = 30000)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.footprintScale = 0.015;
    return WorkloadCatalog::global().build("xalanc", gc);
}

TEST(TraceTool, SummaryJsonMatchesPinnedSchema)
{
    const auto dir = tmpDir();
    SimConfig c = tinyConfig(Mechanism::kMemPod);
    c.tracer.enabled = true;
    c.tracer.sampleEvery = 8;
    Simulation sim(c);
    sim.run(tinyTrace(), "xalanc");
    ASSERT_NE(sim.tracer(), nullptr);
    const auto trace_file = dir / "run.trace.json";
    writeText(trace_file, sim.tracer()->toJson());

    const CmdResult r = run(std::string(MEMPOD_TRACE_TOOL_PATH) +
                            " summary " + trace_file.string() +
                            " --json");
    EXPECT_EQ(r.status, 0);
    // Golden schema keys: removing or renaming any of these breaks
    // downstream consumers and must be a deliberate schema bump.
    for (const char *key :
         {"\"schema\":\"mempod-trace-summary-v1\"", "\"events\":",
          "\"unmatched_ends\":", "\"open_spans\":", "\"counts\":",
          "\"markers\":", "\"demands\":", "\"migrations\":",
          "\"blocked\":", "\"complete\":", "\"total_us\":", "\"top\":"})
        EXPECT_NE(r.out.find(key), std::string::npos) << key;
    std::filesystem::remove_all(dir);
}

TEST(PerfTool, DiffReportsNewAndRemovedKeysWithoutFailing)
{
    const auto dir = tmpDir();
    writeText(dir / "base.json",
              "{\"events_per_second\": 100, \"old\": {\"wall_ms\": 5}}");
    writeText(dir / "cur.json",
              "{\"events_per_second\": 101, \"fresh\": {\"wall_ms\": 7}}");
    const CmdResult r =
        run(std::string(MEMPOD_PERF_TOOL_PATH) + " diff " +
            (dir / "base.json").string() + " " +
            (dir / "cur.json").string());
    // Schema drift alone is not a regression: exit 0.
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.out.find("(new)"), std::string::npos);
    EXPECT_NE(r.out.find("(removed)"), std::string::npos);
    EXPECT_NE(r.out.find("1 new, 1 removed"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(PerfTool, DiffStillFailsOnGenuineRegression)
{
    const auto dir = tmpDir();
    writeText(dir / "base.json", "{\"events_per_second\": 100}");
    writeText(dir / "cur.json", "{\"events_per_second\": 10}");
    const CmdResult r =
        run(std::string(MEMPOD_PERF_TOOL_PATH) + " diff " +
            (dir / "base.json").string() + " " +
            (dir / "cur.json").string());
    EXPECT_EQ(r.status, 1);
    EXPECT_NE(r.out.find("REGRESSION"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(ExplainTool, AttributionSumsExactlyToMeasuredAmmatDelta)
{
    const auto dir = tmpDir();
    const Trace t = tinyTrace();
    std::filesystem::path stats[2], decisions[2];
    int i = 0;
    for (Mechanism m : {Mechanism::kNoMigration, Mechanism::kMemPod}) {
        Simulation sim(tinyConfig(m));
        const RunResult r = sim.run(t, "xalanc");
        stats[i] = dir / (std::string(mechanismName(m)) + ".json");
        writeText(stats[i], StatsWriter::toJson(sim.registry(),
                                                sim.finalSnapshot(), r));
        decisions[i] =
            dir / (std::string(mechanismName(m)) + ".decisions.jsonl");
        writeText(decisions[i],
                  StatsWriter::decisionsToJsonl(*sim.decisionLog(),
                                                "xalanc", r.mechanism));
        ++i;
    }
    const CmdResult r = run(std::string(MEMPOD_EXPLAIN_TOOL_PATH) + " " +
                            stats[0].string() + " " + stats[1].string() +
                            " --decisions " + decisions[0].string() +
                            " " + decisions[1].string());
    // Exit 0 is the tool's own exactness guarantee: it verifies the
    // five component deltas sum to the measured AMMAT delta.
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("attribution_delta_check: OK"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("first diverging decision"), std::string::npos);
    EXPECT_NE(r.out.find("decisions: base 0"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(ExplainTool, IdenticalRunsReportIdenticalLedgers)
{
    const auto dir = tmpDir();
    const Trace t = tinyTrace(15000);
    Simulation sim(tinyConfig(Mechanism::kMemPod));
    const RunResult r = sim.run(t, "xalanc");
    const auto stats = dir / "run.json";
    const auto dec = dir / "run.decisions.jsonl";
    writeText(stats, StatsWriter::toJson(sim.registry(),
                                         sim.finalSnapshot(), r));
    writeText(dec, StatsWriter::decisionsToJsonl(*sim.decisionLog(),
                                                 "xalanc", r.mechanism));
    const CmdResult out = run(std::string(MEMPOD_EXPLAIN_TOOL_PATH) +
                              " " + stats.string() + " " +
                              stats.string() + " --decisions " +
                              dec.string() + " " + dec.string());
    EXPECT_EQ(out.status, 0);
    EXPECT_NE(out.out.find("decision ledgers are identical"),
              std::string::npos)
        << out.out;
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace mempod
