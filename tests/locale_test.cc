/**
 * @file
 * Locale independence of every number the repo byte-compares: the
 * stats-JSON double renderer and the report table formatter must emit
 * a '.' decimal point even under an LC_NUMERIC locale whose separator
 * is ',' — otherwise goldens and `diff -r` determinism checks break
 * on localized hosts. Both formatters use std::to_chars, which never
 * consults the locale; these tests pin that property.
 */
#include <gtest/gtest.h>

#include <clocale>
#include <string>

#include "sim/report.h"
#include "sim/stats_writer.h"

namespace mempod {
namespace {

/** RAII: switch LC_NUMERIC to a comma-separator locale if available. */
class CommaLocale
{
  public:
    CommaLocale()
    {
        for (const char *name :
             {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR",
              "nl_NL.UTF-8"}) {
            if (std::setlocale(LC_NUMERIC, name)) {
                active_ = name;
                break;
            }
        }
    }
    ~CommaLocale() { std::setlocale(LC_NUMERIC, "C"); }
    const char *active() const { return active_; }

  private:
    const char *active_ = nullptr;
};

TEST(Locale, FormatDoubleIgnoresLcNumeric)
{
    CommaLocale locale;
    if (!locale.active())
        GTEST_SKIP() << "no comma-separator locale installed";
    const std::string s = StatsWriter::formatDouble(3.14159);
    EXPECT_NE(s.find('.'), std::string::npos) << s;
    EXPECT_EQ(s.find(','), std::string::npos) << s;
    // Shortest-round-trip rendering of 0.1 is "0.1" — byte-for-byte,
    // not whatever the locale would print.
    EXPECT_EQ(StatsWriter::formatDouble(0.1), "0.1");
}

TEST(Locale, TableNumberIgnoresLcNumeric)
{
    CommaLocale locale;
    if (!locale.active())
        GTEST_SKIP() << "no comma-separator locale installed";
    const std::string s = TablePrinter::num(1234.5678, 2);
    EXPECT_EQ(s, "1234.57");
}

TEST(Locale, FormattersAreStableInTheCLocaleToo)
{
    // Sanity in the default locale: same bytes as under a comma one.
    EXPECT_EQ(TablePrinter::num(1234.5678, 2), "1234.57");
    EXPECT_EQ(TablePrinter::num(-0.125, 3), "-0.125");
    EXPECT_EQ(StatsWriter::formatDouble(16.5), "16.5");
    EXPECT_EQ(StatsWriter::formatDouble(0.0), "0");
}

} // namespace
} // namespace mempod
