/** @file Unit tests for the bookkeeping cache and its miss path. */
#include <gtest/gtest.h>

#include "common/event_queue.h"
#include "sim/metadata_path.h"

namespace mempod {
namespace {

TEST(MetadataCache, PacksEntriesIntoBlocks)
{
    MetadataCache c(1024, 4, 4);
    EXPECT_EQ(c.entriesPerBlock(), 16u);
    EXPECT_EQ(c.blockOf(0), 0u);
    EXPECT_EQ(c.blockOf(15), 0u);
    EXPECT_EQ(c.blockOf(16), 1u);
}

TEST(MetadataCache, MissThenHitAfterFill)
{
    MetadataCache c(1024, 4, 4);
    EXPECT_FALSE(c.lookup(5));
    c.fill(5);
    EXPECT_TRUE(c.lookup(5));
    // Same block: entry 6 also hits.
    EXPECT_TRUE(c.lookup(6));
    // Different block: miss.
    EXPECT_FALSE(c.lookup(100));
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(MetadataCache, LruEvictsColdest)
{
    // Direct-mapped-ish: 1 set with 2 ways.
    MetadataCache c(128, 2, 64);
    c.fill(0);
    c.fill(1);
    EXPECT_TRUE(c.lookup(0)); // 0 now MRU
    c.fill(2);                // evicts 1 (LRU)
    EXPECT_TRUE(c.lookup(0));
    EXPECT_FALSE(c.lookup(1));
    EXPECT_TRUE(c.lookup(2));
}

TEST(MetadataCache, DoubleFillIsIdempotent)
{
    MetadataCache c(128, 2, 64);
    c.fill(0);
    c.fill(0);
    EXPECT_TRUE(c.lookup(0));
}

TEST(MetadataCacheDeathTest, BadParamsPanic)
{
    EXPECT_DEATH(MetadataCache(64, 2, 128), "entry size");
    EXPECT_DEATH(MetadataCache(64, 4, 4), "smaller");
}

struct PathFixture : ::testing::Test
{
    EventQueue eq;
    MemorySystem mem{eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600()};
};

TEST_F(PathFixture, MissInjectsExactlyOneBlockingRead)
{
    MetadataPath path(eq, mem, 1024, 4, 4,
                      [](std::uint64_t block) { return block * 64; });
    int ready = 0;
    path.access(7, [&] { ++ready; });
    EXPECT_EQ(ready, 0); // blocked on the fill
    EXPECT_EQ(path.outstandingFills(), 1u);
    eq.runAll();
    EXPECT_EQ(ready, 1);
    EXPECT_EQ(mem.stats().bookkeepingLines(), 1u);
}

TEST_F(PathFixture, HitRunsSynchronously)
{
    MetadataPath path(eq, mem, 1024, 4, 4,
                      [](std::uint64_t block) { return block * 64; });
    path.access(7, [] {});
    eq.runAll();
    int ready = 0;
    path.access(7, [&] { ++ready; });
    EXPECT_EQ(ready, 1); // no event needed
    EXPECT_EQ(mem.stats().bookkeepingLines(), 1u);
}

TEST_F(PathFixture, ConcurrentMissesToOneBlockPiggyback)
{
    MetadataPath path(eq, mem, 1024, 4, 4,
                      [](std::uint64_t block) { return block * 64; });
    int ready = 0;
    path.access(8, [&] { ++ready; });
    path.access(9, [&] { ++ready; }); // same 16-entry block
    EXPECT_EQ(path.outstandingFills(), 1u);
    eq.runAll();
    EXPECT_EQ(ready, 2);
    EXPECT_EQ(mem.stats().bookkeepingLines(), 1u); // one fill, two wakeups
}

TEST_F(PathFixture, BackingAddressMappingUsed)
{
    Addr asked = 0;
    MetadataPath path(eq, mem, 1024, 4, 4, [&](std::uint64_t block) {
        asked = 4096 + block * 64;
        return asked;
    });
    path.access(40, [] {}); // block 2
    eq.runAll();
    EXPECT_EQ(asked, 4096u + 2 * 64);
}

} // namespace
} // namespace mempod
