/**
 * @file
 * Sampled-simulation tests: pinned WindowStats confidence-interval
 * math, death tests for degenerate sampling configurations,
 * fidelity-independent trace sampling (record-index keyed, so the
 * traced demand set is identical under detailed, fast and sampled
 * runs, including time-scaled replays), refresh re-phasing on
 * fidelity switch-in, FastChannel service/bandwidth behaviour, and a
 * sampled-vs-detailed accuracy smoke.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "common/event_queue.h"
#include "dram/channel.h"
#include "dram/fast_channel.h"
#include "sim/fidelity.h"
#include "sim/simulation.h"
#include "trace/catalog.h"
#include "trace/source.h"

namespace mempod {
namespace {

// ---------------------------------------------------------------
// WindowStats: pinned estimator math (satellite: CI-math tests).
// ---------------------------------------------------------------

TEST(WindowStats, PinnedMeanVarianceCi)
{
    WindowStats w;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        w.add(x);
    EXPECT_EQ(w.count(), 5u);
    EXPECT_DOUBLE_EQ(w.mean(), 3.0);
    EXPECT_DOUBLE_EQ(w.variance(), 2.5);
    // Half-width = t(4) * s / sqrt(n) = 2.776 * sqrt(2.5 / 5).
    EXPECT_NEAR(w.ciHalfWidth(), 2.776 * std::sqrt(0.5), 1e-12);
}

TEST(WindowStats, DegenerateCountsHaveZeroSpread)
{
    WindowStats w;
    EXPECT_EQ(w.count(), 0u);
    EXPECT_DOUBLE_EQ(w.variance(), 0.0);
    EXPECT_DOUBLE_EQ(w.ciHalfWidth(), 0.0);
    w.add(42.0);
    EXPECT_DOUBLE_EQ(w.mean(), 42.0);
    EXPECT_DOUBLE_EQ(w.variance(), 0.0);
    EXPECT_DOUBLE_EQ(w.ciHalfWidth(), 0.0);
}

TEST(WindowStats, TCriticalValuesArePinned)
{
    EXPECT_DOUBLE_EQ(WindowStats::tCritical95(0), 0.0);
    EXPECT_DOUBLE_EQ(WindowStats::tCritical95(1), 12.706);
    EXPECT_DOUBLE_EQ(WindowStats::tCritical95(2), 4.303);
    EXPECT_DOUBLE_EQ(WindowStats::tCritical95(4), 2.776);
    EXPECT_DOUBLE_EQ(WindowStats::tCritical95(30), 2.042);
    // Beyond the table the normal approximation takes over.
    EXPECT_DOUBLE_EQ(WindowStats::tCritical95(31), 1.96);
    EXPECT_DOUBLE_EQ(WindowStats::tCritical95(1000), 1.96);
}

// ---------------------------------------------------------------
// Degenerate configurations die loudly instead of mis-measuring.
// ---------------------------------------------------------------

SimConfig
tinyConfig(Mechanism m)
{
    SimConfig c = SimConfig::paper(m);
    c.geom = SystemGeometry::tiny();
    c.mempod.interval = 20_us;
    c.mempod.pod.meaEntries = 16;
    return c;
}

Trace
tinyTrace(std::uint64_t requests = 40000)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.footprintScale = 0.015;
    return WorkloadCatalog::global().build("xalanc", gc);
}

TEST(FidelityDeath, ZeroMeasureWindowPanics)
{
    SimConfig c = tinyConfig(Mechanism::kMemPod);
    c.sampling.enabled = true;
    c.sampling.measurePs = 0;
    EXPECT_DEATH(Simulation sim(c), "measure_ps must be positive");
}

TEST(FidelityDeath, WarmupPctAboveNinetyNinePanics)
{
    SimConfig c = tinyConfig(Mechanism::kMemPod);
    c.sampling.enabled = true;
    c.sampling.warmupPct = 100;
    EXPECT_DEATH(Simulation sim(c), "warmup_pct must be in");
}

TEST(FidelityDeath, FunctionalMeasurementModelPanics)
{
    SimConfig c = tinyConfig(Mechanism::kMemPod);
    c.dramModel = DramModel::kFunctional;
    EXPECT_DEATH(Simulation sim(c), "not a measurement model");
}

TEST(FidelityDeath, FunctionalWarmModelRequiresSerialKernel)
{
    SimConfig c = tinyConfig(Mechanism::kMemPod);
    c.sampling.enabled = true;
    c.shards = 2;
    EXPECT_DEATH(Simulation sim(c), "serial kernel");
}

TEST(FidelityDeath, TooFewWindowsPanicsAtFinish)
{
    SimConfig c = tinyConfig(Mechanism::kMemPod);
    c.sampling.enabled = true;
    // A fast-forward window longer than the whole trace: zero
    // measurement windows ever complete.
    c.sampling.fastfwdPs = 1'000'000'000'000;
    const Trace t = tinyTrace(4000);
    EXPECT_DEATH(
        {
            Simulation sim(c);
            sim.run(t, "xalanc");
        },
        "measurement windows");
}

// ---------------------------------------------------------------
// Trace sampling is record-index keyed: the set of traced demands
// is a pure function of the record stream, not of fidelity.
// ---------------------------------------------------------------

/** Ids of "demand" async-begin spans in a tracer JSON dump. */
std::set<std::uint64_t>
tracedDemandIds(const std::string &json)
{
    std::set<std::uint64_t> ids;
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"name\":\"demand\",\"ph\":\"b\"") ==
                std::string::npos ||
            line.find("\"cat\":\"req\"") == std::string::npos)
            continue;
        const std::size_t p = line.find("\"id\":\"");
        if (p == std::string::npos) {
            ADD_FAILURE() << "demand span without id: " << line;
            continue;
        }
        ids.insert(std::strtoull(line.c_str() + p + 6, nullptr, 10));
    }
    return ids;
}

std::set<std::uint64_t>
runAndCollectIds(SimConfig c, TraceSource &src)
{
    c.tracer.enabled = true;
    c.tracer.sampleEvery = 8;
    c.tracer.seed = 42;
    Simulation sim(c);
    sim.run(src, "xalanc");
    const Tracer *tr = sim.tracer();
    EXPECT_NE(tr, nullptr);
    std::set<std::uint64_t> ids;
    tracedDemandIds(tr->toJson()).swap(ids);
    return ids;
}

TEST(TraceSamplingFidelity, SameDemandsAcrossFidelities)
{
    const Trace t = tinyTrace();
    const SimConfig base = tinyConfig(Mechanism::kMemPod);

    VectorTraceSource detailedSrc(t);
    const std::set<std::uint64_t> detailed =
        runAndCollectIds(base, detailedSrc);
    ASSERT_FALSE(detailed.empty());

    SimConfig fast = base;
    fast.dramModel = DramModel::kFast;
    VectorTraceSource fastSrc(t);
    EXPECT_EQ(runAndCollectIds(fast, fastSrc), detailed);

    SimConfig sampled = base;
    sampled.sampling.enabled = true;
    sampled.sampling.measurePs = 10_us;
    sampled.sampling.fastfwdPs = 23_us;
    sampled.sampling.minWindows = 1;
    VectorTraceSource sampledSrc(t);
    EXPECT_EQ(runAndCollectIds(sampled, sampledSrc), detailed);
}

TEST(TraceSamplingFidelity, ScaledReplayKeepsTheSameDemandSet)
{
    // Time-scaling a replay changes every timestamp but no record
    // index, so the traced set must match the unscaled run's — under
    // every fidelity.
    const auto t = std::make_shared<const Trace>(tinyTrace());
    const SimConfig base = tinyConfig(Mechanism::kMemPod);

    VectorTraceSource plain(t);
    const std::set<std::uint64_t> unscaled =
        runAndCollectIds(base, plain);
    ASSERT_FALSE(unscaled.empty());

    ScaledTraceSource slow(std::make_unique<VectorTraceSource>(t), 2.0);
    EXPECT_EQ(runAndCollectIds(base, slow), unscaled);

    SimConfig sampled = base;
    sampled.sampling.enabled = true;
    sampled.sampling.measurePs = 10_us;
    sampled.sampling.fastfwdPs = 23_us;
    sampled.sampling.minWindows = 1;
    ScaledTraceSource slowAgain(std::make_unique<VectorTraceSource>(t),
                                2.0);
    EXPECT_EQ(runAndCollectIds(sampled, slowAgain), unscaled);
}

// ---------------------------------------------------------------
// Fidelity switch-in forgives refresh debt (resumeAt).
// ---------------------------------------------------------------

TEST(ResumeAt, SkipsMissedRefreshesButStillCountsThem)
{
    EventQueue eq;
    const DramSpec spec = DramSpec::hbm1GHz().withChannelBytes(2_MiB);
    Channel ch(eq, spec, "test", 5000);
    const std::uint64_t before = ch.stats().refreshes;

    // Pretend the channel sat inactive for ten refresh intervals.
    const TimePs idleEnd = eq.now() + 10 * spec.timing.tREFI;
    ch.resumeAt(idleEnd);
    const std::uint64_t skipped = ch.stats().refreshes - before;
    EXPECT_GE(skipped, 10u);
    EXPECT_LE(skipped, 11u);

    // Idempotent: the refresh clock already points past idleEnd.
    const std::uint64_t after = ch.stats().refreshes;
    ch.resumeAt(idleEnd);
    EXPECT_EQ(ch.stats().refreshes, after);
}

// ---------------------------------------------------------------
// FastChannel: fixed service latency + bandwidth-capped bus.
// ---------------------------------------------------------------

TEST(FastChannelModel, ServiceLatencyAndBandwidthCap)
{
    EventQueue eq;
    const DramSpec spec = DramSpec::hbm1GHz();
    constexpr TimePs kExtra = 5000;
    FastChannel fc(eq, spec, "fast0", kExtra);
    const TimePs service = spec.timing.tRCD + spec.timing.tCL +
                           spec.timing.tBL + kExtra;
    EXPECT_EQ(fc.servicePs(), service);

    TimePs f1 = 0, f2 = 0;
    Request r1;
    r1.type = AccessType::kRead;
    r1.onComplete = [&](TimePs f) { f1 = f; };
    Request r2;
    r2.type = AccessType::kWrite;
    r2.onComplete = [&](TimePs f) { f2 = f; };
    fc.enqueue(std::move(r1), ChannelAddr{0, 0});
    fc.enqueue(std::move(r2), ChannelAddr{1, 7});
    EXPECT_EQ(fc.queued(), 2u);
    eq.runAll();

    EXPECT_EQ(f1, service);
    // The second burst waits one bus slot: bandwidth cap, not banks.
    EXPECT_EQ(f2, service + spec.timing.tBL);
    EXPECT_EQ(fc.queued(), 0u);
    EXPECT_EQ(fc.stats().reads, 1u);
    EXPECT_EQ(fc.stats().writes, 1u);
    // No bank machinery: the bank-level counters stay zero.
    EXPECT_EQ(fc.stats().rowHits, 0u);
    EXPECT_EQ(fc.stats().activates, 0u);
    EXPECT_EQ(fc.stats().refreshes, 0u);
}

// ---------------------------------------------------------------
// Config plumbing for the new dotted keys.
// ---------------------------------------------------------------

TEST(SamplingConfig, DottedKeysSetAndRoundTrip)
{
    SimConfig c = SimConfig::paper(Mechanism::kMemPod);
    c.set("dram.model", "fast");
    c.set("sim.sampling.enabled", "true");
    c.set("sim.sampling.measure_ps", "1230000");
    c.set("sim.sampling.fastfwd_ps", "4560000");
    c.set("sim.sampling.warmup_pct", "25");
    c.set("sim.sampling.min_windows", "7");
    c.set("sim.sampling.fastfwd_model", "functional");
    EXPECT_EQ(c.dramModel, DramModel::kFast);
    EXPECT_TRUE(c.sampling.enabled);
    EXPECT_EQ(c.sampling.measurePs, 1'230'000u);
    EXPECT_EQ(c.sampling.fastfwdPs, 4'560'000u);
    EXPECT_EQ(c.sampling.warmupPct, 25u);
    EXPECT_EQ(c.sampling.minWindows, 7u);
    EXPECT_EQ(c.sampling.fastfwdModel, DramModel::kFunctional);

    const SimConfig rt = SimConfig::fromJson(c.toJson());
    EXPECT_EQ(rt.toJson(), c.toJson());
}

TEST(SamplingConfigDeath, UnknownModelNameRejected)
{
    SimConfig c = SimConfig::paper(Mechanism::kMemPod);
    EXPECT_DEATH(c.set("dram.model", "bogus"), "unknown memory model");
}

// ---------------------------------------------------------------
// Accuracy smoke: the sampled estimate lands near the detailed
// ground truth on the same trace. Everything here is deterministic,
// so the bound is tight enough to catch estimator regressions while
// leaving slack for window-placement sensitivity.
// ---------------------------------------------------------------

TEST(SampledAccuracy, EstimateTracksDetailedGroundTruth)
{
    const Trace t = tinyTrace(60000);
    const SimConfig base = tinyConfig(Mechanism::kMemPod);
    const RunResult detailed = runSimulation(base, t, "xalanc");
    ASSERT_FALSE(detailed.sampled);
    ASSERT_GT(detailed.ammatNs, 0.0);

    SimConfig sc = base;
    sc.sampling.enabled = true;
    sc.sampling.measurePs = 10_us;
    sc.sampling.fastfwdPs = 23_us; // period 33 us strides the 20 us epoch
    sc.sampling.minWindows = 3;
    const RunResult sampled = runSimulation(sc, t, "xalanc");
    ASSERT_TRUE(sampled.sampled);
    ASSERT_GE(sampled.sampleWindows, 3u);
    EXPECT_GT(sampled.sampledCiNs, 0.0);
    // Within the CI, plus 30% headroom for window-placement bias on a
    // trace this short.
    EXPECT_NEAR(sampled.sampledAmmatNs, detailed.ammatNs,
                sampled.sampledCiNs + 0.30 * detailed.ammatNs);
    // The sampled run still completes the whole trace (fast-forward
    // windows drain every record through the warm model).
    EXPECT_EQ(sampled.completed, t.size());
}

} // namespace
} // namespace mempod
