/** @file Unit tests for statistics accumulators. */
#include <gtest/gtest.h>

#include "common/stats.h"

namespace mempod {
namespace {

TEST(ScalarStat, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(ScalarStat, TracksMoments)
{
    ScalarStat s;
    for (double v : {4.0, 2.0, 6.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(ScalarStat, SingleSample)
{
    ScalarStat s;
    s.sample(-3.5);
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
    EXPECT_DOUBLE_EQ(s.mean(), -3.5);
}

TEST(ScalarStat, ResetClears)
{
    ScalarStat s;
    s.sample(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(ScalarStat, WelfordVariance)
{
    ScalarStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);       // population: M2 / n
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 32.0 / 7.0);
}

TEST(ScalarStat, VarianceNeedsTwoSamples)
{
    ScalarStat s;
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.sample(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    s.sample(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0); // identical samples
}

TEST(ScalarStat, WelfordMatchesNaiveOnShiftedData)
{
    // A large constant offset defeats the naive sum-of-squares
    // formula; Welford must still recover the small true variance.
    ScalarStat s;
    const double base = 1e9;
    for (double v : {base + 1.0, base + 2.0, base + 3.0})
        s.sample(v);
    EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(Log2Histogram, CountsSamples)
{
    Log2Histogram h;
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Log2Histogram, PercentileMonotone)
{
    Log2Histogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.sample(i);
    EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
    EXPECT_LE(h.percentile(0.9), h.percentile(1.0));
}

TEST(Log2Histogram, PercentileBracketsMedian)
{
    Log2Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(64); // all in bucket [64,128)
    const auto p50 = h.percentile(0.5);
    EXPECT_GE(p50, 64u);
    EXPECT_LE(p50, 127u);
}

TEST(Log2Histogram, PercentileInterpolatesWithinBucket)
{
    Log2Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(64); // bucket [64,128), span 64
    // Rank position q*count lands a fraction q into the bucket:
    // 64 + q * 64.
    EXPECT_EQ(h.percentile(0.25), 80u);
    EXPECT_EQ(h.percentile(0.5), 96u);
    EXPECT_EQ(h.percentile(0.75), 112u);
}

TEST(Log2Histogram, PercentileClampsToBucketTop)
{
    Log2Histogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.sample(i);
    // q=1 interpolates to the exclusive top of the last occupied
    // bucket [512,1024); the result must stay inside it.
    EXPECT_EQ(h.percentile(1.0), 1023u);
}

TEST(Log2Histogram, PercentileZeroBucket)
{
    Log2Histogram h;
    h.sample(0);
    h.sample(0);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Log2Histogram, BucketsAccessorExposesCounts)
{
    Log2Histogram h;
    h.sample(0); // bucket 0
    h.sample(1); // bucket 1
    h.sample(3); // bucket 2: [2,4)
    const auto &b = h.buckets();
    ASSERT_GE(b.size(), 3u);
    EXPECT_EQ(b[0], 1u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[2], 1u);
}

TEST(Log2Histogram, EmptyPercentileIsZero)
{
    Log2Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Log2Histogram, ToStringMentionsBuckets)
{
    Log2Histogram h;
    h.sample(5);
    EXPECT_NE(h.toString().find(':'), std::string::npos);
}

TEST(RatioStat, ComputesRate)
{
    RatioStat r;
    r.hit();
    r.hit();
    r.miss();
    r.miss();
    EXPECT_EQ(r.hits(), 2u);
    EXPECT_EQ(r.total(), 4u);
    EXPECT_DOUBLE_EQ(r.rate(), 0.5);
}

TEST(RatioStat, EmptyRateIsZero)
{
    RatioStat r;
    EXPECT_DOUBLE_EQ(r.rate(), 0.0);
}

} // namespace
} // namespace mempod
