/** @file Unit tests for statistics accumulators. */
#include <gtest/gtest.h>

#include "common/stats.h"

namespace mempod {
namespace {

TEST(ScalarStat, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(ScalarStat, TracksMoments)
{
    ScalarStat s;
    for (double v : {4.0, 2.0, 6.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(ScalarStat, SingleSample)
{
    ScalarStat s;
    s.sample(-3.5);
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
    EXPECT_DOUBLE_EQ(s.mean(), -3.5);
}

TEST(ScalarStat, ResetClears)
{
    ScalarStat s;
    s.sample(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Log2Histogram, CountsSamples)
{
    Log2Histogram h;
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Log2Histogram, PercentileMonotone)
{
    Log2Histogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.sample(i);
    EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
    EXPECT_LE(h.percentile(0.9), h.percentile(1.0));
}

TEST(Log2Histogram, PercentileBracketsMedian)
{
    Log2Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(64); // all in bucket [64,128)
    const auto p50 = h.percentile(0.5);
    EXPECT_GE(p50, 64u);
    EXPECT_LE(p50, 127u);
}

TEST(Log2Histogram, EmptyPercentileIsZero)
{
    Log2Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Log2Histogram, ToStringMentionsBuckets)
{
    Log2Histogram h;
    h.sample(5);
    EXPECT_NE(h.toString().find(':'), std::string::npos);
}

TEST(RatioStat, ComputesRate)
{
    RatioStat r;
    r.hit();
    r.hit();
    r.miss();
    r.miss();
    EXPECT_EQ(r.hits(), 2u);
    EXPECT_EQ(r.total(), 4u);
    EXPECT_DOUBLE_EQ(r.rate(), 0.5);
}

TEST(RatioStat, EmptyRateIsZero)
{
    RatioStat r;
    EXPECT_DOUBLE_EQ(r.rate(), 0.0);
}

} // namespace
} // namespace mempod
