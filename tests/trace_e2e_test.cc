/**
 * @file
 * End-to-end tests for event tracing and AMMAT attribution: the
 * attribution components must sum to the measured AMMAT exactly (they
 * partition every demand's arrival-to-finish interval), trace bytes
 * must be identical at any worker count, and bad output directories
 * must fail fast.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "sim/runner.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

SimConfig
tinyConfig(Mechanism m)
{
    SimConfig c = SimConfig::paper(m);
    c.geom = SystemGeometry::tiny();
    c.mempod.interval = 20_us;
    c.mempod.pod.meaEntries = 16;
    c.hma.interval = 200_us;
    c.hma.sortStall = 14_us;
    c.hma.threshold = 4;
    return c;
}

Trace
tinyTrace(const std::string &workload, std::uint64_t requests = 40000)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.footprintScale = 0.015;
    return WorkloadCatalog::global().build(workload, gc);
}

void
expectAttributionPartitions(Mechanism m)
{
    const Trace t = tinyTrace("xalanc");
    const RunResult r = runSimulation(tinyConfig(m), t, "xalanc");
    ASSERT_EQ(r.completed, t.size());
    // The five components are integer-ps sums over the same set of
    // completed demands AMMAT averages, divided by the same
    // denominator; only double rounding separates the two.
    EXPECT_NEAR(r.attribution.totalNs(), r.ammatNs,
                r.ammatNs * 1e-12)
        << mechanismName(m);
    EXPECT_GT(r.attribution.serviceNs, 0.0);
    EXPECT_GE(r.attribution.queueWaitNs, 0.0);
}

TEST(Attribution, SumsToAmmatMemPod)
{
    expectAttributionPartitions(Mechanism::kMemPod);
}

TEST(Attribution, SumsToAmmatHma)
{
    expectAttributionPartitions(Mechanism::kHma);
}

TEST(Attribution, SumsToAmmatNoMigration)
{
    expectAttributionPartitions(Mechanism::kNoMigration);
}

TEST(Attribution, MigrationComponentsAppearUnderMemPod)
{
    const Trace t = tinyTrace("xalanc");
    const RunResult r =
        runSimulation(tinyConfig(Mechanism::kMemPod), t, "xalanc");
    ASSERT_GT(r.migration.migrations, 0u);
    // Swaps lock pages, so some demands must have been parked.
    EXPECT_GT(r.migration.blockedPs, 0u);
    EXPECT_GT(r.attribution.blockedNs, 0.0);
}

TEST(Attribution, PercentilesAreOrderedAndExported)
{
    const Trace t = tinyTrace("mix5");
    const RunResult r =
        runSimulation(tinyConfig(Mechanism::kMemPod), t, "mix5");
    EXPECT_GT(r.latency.p50Ns, 0.0);
    EXPECT_LE(r.latency.p50Ns, r.latency.p95Ns);
    EXPECT_LE(r.latency.p95Ns, r.latency.p99Ns);
    ASSERT_FALSE(r.perCoreLatency.empty());
    for (const LatencyPercentiles &lp : r.perCoreLatency) {
        EXPECT_LE(lp.p50Ns, lp.p95Ns);
        EXPECT_LE(lp.p95Ns, lp.p99Ns);
    }
}

TEST(TraceE2E, MemPodTraceContainsFullMigrationLifecycle)
{
    SimConfig c = tinyConfig(Mechanism::kMemPod);
    c.tracer.enabled = true;
    c.tracer.sampleEvery = 8;
    c.tracer.seed = 42;
    Simulation sim(c);
    const Trace t = tinyTrace("xalanc");
    const RunResult r = sim.run(t, "xalanc");
    ASSERT_GT(r.migration.migrations, 0u);
    ASSERT_NE(sim.tracer(), nullptr);
    const std::string json = sim.tracer()->toJson();
    for (const char *needle :
         {"mea_victory", "\"migration\"", "read_phase", "write_phase",
          "remap_commit", "\"demand\"", "\"queue\"", "\"service\"",
          "\"ph\":\"s\"", "\"ph\":\"f\""}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
}

TEST(TraceE2E, TracingOffChangesNoResults)
{
    const Trace t = tinyTrace("xalanc", 20000);
    SimConfig off = tinyConfig(Mechanism::kMemPod);
    SimConfig on = off;
    on.tracer.enabled = true;
    on.tracer.sampleEvery = 4;
    const RunResult a = runSimulation(off, t, "xalanc");
    const RunResult b = runSimulation(on, t, "xalanc");
    // The tracer only records; goldens (event counts, AMMAT) hold.
    EXPECT_EQ(serializeRunResult(a), serializeRunResult(b));
}

std::string
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(TraceE2E, TraceBytesIdenticalAcrossWorkerCounts)
{
    const auto trace =
        std::make_shared<const Trace>(tinyTrace("xalanc", 20000));
    const std::filesystem::path base =
        std::filesystem::temp_directory_path() /
        "mempod_trace_jobs_test";
    std::filesystem::remove_all(base);

    auto runBatch = [&](unsigned jobs, const std::string &sub) {
        RunnerOptions ro;
        ro.jobs = jobs;
        ro.artifacts.root = (base / sub).string();
        BatchRunner runner(ro);
        for (Mechanism m : {Mechanism::kMemPod, Mechanism::kHma,
                            Mechanism::kNoMigration}) {
            BatchJob job;
            job.config = tinyConfig(m);
            job.config.tracer.enabled = true;
            job.config.tracer.sampleEvery = 8;
            job.config.tracer.seed = 42;
            job.workload = "xalanc";
            job.label = mechanismName(m);
            job.trace = trace;
            runner.add(job);
        }
        for (const JobResult &r : runner.runAll())
            ASSERT_TRUE(r.ok) << r.error;
    };
    runBatch(1, "j1");
    runBatch(4, "j4");

    std::size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(
             base / "j1" / "traces")) {
        ++files;
        const auto other =
            base / "j4" / "traces" / e.path().filename();
        ASSERT_TRUE(std::filesystem::exists(other))
            << e.path().filename();
        EXPECT_EQ(slurp(e.path()), slurp(other))
            << e.path().filename();
    }
    EXPECT_EQ(files, 3u);
    for (const auto &e : std::filesystem::directory_iterator(
             base / "j1" / "stats")) {
        const auto other = base / "j4" / "stats" / e.path().filename();
        ASSERT_TRUE(std::filesystem::exists(other));
        EXPECT_EQ(slurp(e.path()), slurp(other))
            << e.path().filename();
    }
    std::filesystem::remove_all(base);
}

TEST(OutputDirs, UnwritableOutDirFailsFast)
{
    // A path *under an existing file* can never become a directory.
    const std::filesystem::path file =
        std::filesystem::temp_directory_path() / "mempod_probe_file";
    std::FILE *f = std::fopen(file.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    const std::string bad = (file / "sub").string();
    EXPECT_EXIT(bench::ensureWritableDir(bad, "--out", "test"),
                ::testing::ExitedWithCode(2), "--out");
    EXPECT_EXIT(
        bench::ensureWritableDir(file.string(), "--out", "test"),
        ::testing::ExitedWithCode(2), "ot a directory");
    std::filesystem::remove(file);
}

} // namespace
} // namespace mempod
