/**
 * @file
 * Protocol-conformance tests: scripted command sequences through one
 * bank / one channel, asserting exact state transitions and ready
 * times hand-computed from the spec. Unlike the behavioural channel
 * tests these pin the precise picosecond schedule, so any change to
 * the timing tables or the arbitration order shows up as an exact
 * number, not a vague slowdown.
 *
 * HBM-1GHz reference values (all ps): tCL=7000 tCWL=5000 tRCD=7000
 * tRP=7000 tRAS=17000 tBL=2000 tCCD=2000 tWR=8000 tWTR=4000 tRTP=4000
 * tRTW=2000 tRRD=4000 tFAW=16000 tREFI=3.9e6 tRFC=260000.
 */
#include <gtest/gtest.h>

#include "common/event_queue.h"
#include "dram/bank.h"
#include "dram/channel.h"

namespace mempod {
namespace {

DramSpec
hbm()
{
    return DramSpec::hbm1GHz().withChannelBytes(2_MiB);
}

TimePs
enqueueRead(Channel &ch, std::uint32_t bank, std::int64_t row,
            TimePs *out)
{
    Request r;
    r.onComplete = [out](TimePs f) { *out = f; };
    ch.enqueue(std::move(r), ChannelAddr{bank, row});
    return 0;
}

TEST(DramProtocol, ColdReadFollowsActRcdCasBurst)
{
    // t=0 enqueue -> ACT@0 -> CAS@tRCD=7000 -> data end 7000+tCL+tBL.
    EventQueue eq;
    Channel ch(eq, hbm(), "p", /*extra_latency_ps=*/0);
    TimePs f = 0;
    enqueueRead(ch, 0, 0, &f);
    eq.runAll();
    EXPECT_EQ(f, 16'000u);
    EXPECT_EQ(ch.stats().activates, 1u);
    EXPECT_EQ(ch.stats().precharges, 0u);
    EXPECT_EQ(ch.stats().rowMisses, 1u);
}

TEST(DramProtocol, RowHitPipelinesAtCcdBehindFirstCas)
{
    // Two same-row reads: CAS1@7000, CAS2 gated by tCCD to 9000, so
    // the second burst ends exactly tCCD after the first (bus kept
    // 100% busy, no re-activation).
    EventQueue eq;
    Channel ch(eq, hbm(), "p", 0);
    TimePs f1 = 0, f2 = 0;
    enqueueRead(ch, 0, 0, &f1);
    enqueueRead(ch, 0, 0, &f2);
    eq.runAll();
    EXPECT_EQ(f1, 16'000u);
    EXPECT_EQ(f2, 18'000u);
    EXPECT_EQ(ch.stats().activates, 1u);
    EXPECT_EQ(ch.stats().rowHits, 1u);
}

TEST(DramProtocol, ConflictWaitsForRasPrechargesAndReactivates)
{
    // Read row0 then row5 on one bank. The conflicting PRE may only
    // issue once tRAS from the ACT has elapsed (17000 dominates the
    // read's tRTP at 7000+4000), then PRE@17000 -> ACT@24000 ->
    // CAS@31000 -> data end 40000.
    EventQueue eq;
    Channel ch(eq, hbm(), "p", 0);
    TimePs fa = 0, fb = 0;
    enqueueRead(ch, 0, 0, &fa);
    enqueueRead(ch, 0, 5, &fb);
    eq.runAll();
    EXPECT_EQ(fa, 16'000u);
    EXPECT_EQ(fb, 40'000u);
    EXPECT_EQ(ch.stats().activates, 2u);
    EXPECT_EQ(ch.stats().precharges, 1u);
    EXPECT_EQ(ch.stats().rowHits, 0u);
    EXPECT_EQ(ch.stats().rowMisses, 2u);
}

TEST(DramProtocol, FawGatesFifthActivateUntilWindowExpires)
{
    // A rank whose four-ACT window outlasts 4 x tRRD (tFAW=30000 vs
    // tRRD=4000): the fifth ACT is pushed from 16000 out to the
    // window edge, and the window then slides to the second ACT.
    DramTiming t = DramSpec::hbm1GHz().timing;
    t.tRRD = 4000;
    t.tFAW = 30'000;
    const CommandTimingTable tbl = CommandTimingTable::build(t);
    BankStateArray banks(tbl, 8, 8);
    for (std::uint32_t b = 0; b < 4; ++b) {
        EXPECT_EQ(banks.actReadyAt(b), b * 4000u);
        banks.activate(b * 4000, b, 0);
    }
    // tRRD alone would allow 16000; the first ACT's window says 30000.
    EXPECT_EQ(banks.actReadyAt(4), 30'000u);
    banks.activate(30'000, 4, 0);
    // Window now starts at the second ACT: 4000 + 30000 = 34000.
    EXPECT_EQ(banks.actReadyAt(5), 34'000u);
}

TEST(DramProtocol, RefreshPostponedByOpenRowThenBlocksBank)
{
    // A row activated 1000 ps before the refresh deadline postpones
    // the refresh until its tRAS allows the implicit precharge:
    //   ACT @ 3'899'000 (tREFI = 3'900'000)
    //   refresh start = 3'899'000 + tRAS       = 3'916'000
    //   refresh end   = start + tRP + tRFC     = 4'183'000
    //   re-ACT @ end, CAS @ +tRCD, data end @ +tCL+tBL = 4'199'000.
    EventQueue eq;
    const DramSpec spec = hbm();
    Channel ch(eq, spec, "p", 0);
    TimePs f = 0;
    eq.schedule(spec.timing.tREFI - 1000, [&] {
        enqueueRead(ch, 0, 0, &f);
    });
    eq.runAll();
    EXPECT_EQ(ch.stats().refreshes, 1u);
    EXPECT_EQ(ch.stats().activates, 2u);
    // Refresh precharges are part of the refresh cycle, not demand
    // scheduling.
    EXPECT_EQ(ch.stats().precharges, 0u);
    EXPECT_EQ(f, 4'199'000u);
}

TEST(DramProtocol, WriteThenReadPaysBusTurnaround)
{
    // Write CAS@tRCD=7000, then the read CAS on the same open row is
    // gated by the channel wr->rd constraint tCWL+tBL+tWTR = 11000
    // past the write: CAS@18000, data end 18000+9000 = 27000.
    EventQueue eq;
    Channel ch(eq, hbm(), "p", 0);
    // Leave the read queue empty until after the write CAS (7000) so
    // read priority cannot reorder the two.
    TimePs fw = 0, fr = 0;
    Request w;
    w.type = AccessType::kWrite;
    w.onComplete = [&](TimePs f) { fw = f; };
    ch.enqueue(std::move(w), ChannelAddr{0, 0});
    eq.schedule(8000, [&] {
        Request r;
        r.type = AccessType::kRead;
        r.onComplete = [&](TimePs f) { fr = f; };
        ch.enqueue(std::move(r), ChannelAddr{0, 0});
    });
    eq.runAll();
    // Write data: 7000 + tCWL + tBL = 14000.
    EXPECT_EQ(fw, 14'000u);
    EXPECT_EQ(fr, 27'000u);
    EXPECT_EQ(ch.stats().rowHits, 1u);
}

} // namespace
} // namespace mempod
