/** @file Unit tests for the trace-replay frontend. */
#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.h"
#include "mem/frontend.h"

namespace mempod {
namespace {

/** Manager double completing every request after a fixed delay. */
class FixedLatencyManager : public MemoryManager
{
  public:
    FixedLatencyManager(EventQueue &eq, TimePs latency)
        : eq_(eq), latency_(latency)
    {
    }

    void
    handleDemand(Demand d) override
    {
        ++received;
        addrs.push_back(d.homeAddr);
        ++inFlight_;
        eq_.scheduleAfter(latency_,
                          [this, done = std::move(d.done)]() mutable {
                              --inFlight_;
                              done(eq_.now());
                          });
    }

    std::string name() const override { return "fixed"; }
    std::uint64_t pendingWork() const override { return inFlight_; }

    int received = 0;
    std::vector<Addr> addrs;

  private:
    EventQueue &eq_;
    TimePs latency_;
    std::uint64_t inFlight_ = 0;
};

Trace
makeTrace(std::size_t n, TimePs gap)
{
    Trace t;
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord r;
        r.time = i * gap;
        r.coreLocal = i * kLineBytes;
        r.core = static_cast<std::uint8_t>(i % 8);
        t.push_back(r);
    }
    return t;
}

struct FrontendFixture : ::testing::Test
{
    EventQueue eq;
    FixedLatencyManager mgr{eq, 100};
    LogicalToPhysical l2p{1 << 20, 8, 1};
};

TEST_F(FrontendFixture, CompletesAllRecords)
{
    TraceFrontend fe(eq, mgr, l2p, 4);
    const Trace t = makeTrace(50, 10);
    fe.setTrace(t);
    fe.start();
    eq.runAll();
    EXPECT_TRUE(fe.done());
    EXPECT_EQ(fe.completed(), 50u);
    EXPECT_EQ(mgr.received, 50);
}

TEST_F(FrontendFixture, AmmatIsFixedLatencyWhenUncontended)
{
    TraceFrontend fe(eq, mgr, l2p, 64);
    const Trace t = makeTrace(20, 1000); // arrivals far apart
    fe.setTrace(t);
    fe.start();
    eq.runAll();
    EXPECT_DOUBLE_EQ(fe.ammatPs(), 100.0);
}

TEST_F(FrontendFixture, MshrCapLimitsOutstandingAndAddsQueueing)
{
    // 10 simultaneous arrivals through a 1-wide frontend serialize.
    TraceFrontend fe(eq, mgr, l2p, 1);
    const Trace t = makeTrace(10, 0);
    fe.setTrace(t);
    fe.start();
    eq.runAll();
    // i-th request waits i*100 before admission.
    EXPECT_DOUBLE_EQ(fe.ammatPs(), 100.0 + 9 * 100 / 2.0);
}

TEST_F(FrontendFixture, StallFreezesIntake)
{
    TraceFrontend fe(eq, mgr, l2p, 64);
    const Trace t = makeTrace(10, 10);
    fe.setTrace(t);
    fe.stallUntil(10'000);
    fe.start();
    eq.runAll();
    EXPECT_TRUE(fe.done());
    // Every record waited for the stall to lift: stall + latency.
    EXPECT_GT(fe.ammatPs(), 9'900.0);
}

TEST_F(FrontendFixture, SuspendShiftsTimelineWithoutStallCost)
{
    TraceFrontend fe(eq, mgr, l2p, 64);
    const Trace t = makeTrace(10, 1000);
    fe.setTrace(t);
    fe.start();
    eq.runUntil(2'500); // two records admitted
    fe.suspendCores(50'000);
    eq.runAll();
    EXPECT_TRUE(fe.done());
    // Remaining records were postponed, not queued: AMMAT stays the
    // bare service latency.
    EXPECT_DOUBLE_EQ(fe.ammatPs(), 100.0);
}

TEST_F(FrontendFixture, AmmatDenominatorIsTraceLength)
{
    TraceFrontend fe(eq, mgr, l2p, 64);
    const Trace t = makeTrace(4, 1000);
    fe.setTrace(t);
    fe.start();
    eq.runAll();
    EXPECT_DOUBLE_EQ(fe.totalStallPs() / 4.0, fe.ammatPs());
}

TEST_F(FrontendFixture, EmptyTraceIsDoneImmediately)
{
    TraceFrontend fe(eq, mgr, l2p, 64);
    const Trace t;
    fe.setTrace(t);
    fe.start();
    eq.runAll();
    EXPECT_TRUE(fe.done());
    EXPECT_DOUBLE_EQ(fe.ammatPs(), 0.0);
}

TEST_F(FrontendFixture, AppliesPlacementMapping)
{
    TraceFrontend fe(eq, mgr, l2p, 64);
    Trace t = makeTrace(1, 0);
    t[0].core = 3;
    t[0].coreLocal = 7 * kPageBytes + 128;
    fe.setTrace(t);
    fe.start();
    eq.runAll();
    EXPECT_EQ(mgr.addrs[0],
              l2p.physicalAddr(3, 7 * kPageBytes + 128));
}

TEST_F(FrontendFixture, PerCoreAmmatTracked)
{
    TraceFrontend fe(eq, mgr, l2p, 64);
    const Trace t = makeTrace(16, 1000); // cores round-robin 0..7
    fe.setTrace(t);
    fe.start();
    eq.runAll();
    const auto per_core = fe.perCoreAmmatPs();
    ASSERT_EQ(per_core.size(), 8u);
    for (double ammat : per_core)
        EXPECT_DOUBLE_EQ(ammat, 100.0); // uncontended fixed latency
}

TEST_F(FrontendFixture, LatencyHistogramPopulated)
{
    TraceFrontend fe(eq, mgr, l2p, 64);
    const Trace t = makeTrace(32, 500);
    fe.setTrace(t);
    fe.start();
    eq.runAll();
    EXPECT_EQ(fe.latencyHistogramNs().count(), 32u);
}

} // namespace
} // namespace mempod
