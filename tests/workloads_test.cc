/** @file Unit tests for the workload suite (Table 3). */
#include <gtest/gtest.h>

#include "trace/profiles.h"
#include "trace/workloads.h"

namespace mempod {
namespace {

TEST(Workloads, FifteenHomogeneousTwelveMixed)
{
    EXPECT_EQ(allWorkloads().size(), 27u);
    EXPECT_EQ(homogeneousWorkloads().size(), 15u);
    EXPECT_EQ(mixedWorkloads().size(), 12u);
}

TEST(Workloads, EveryWorkloadHasEightCores)
{
    for (const auto &w : allWorkloads())
        EXPECT_EQ(w.benchmarks.size(), 8u) << w.name;
}

TEST(Workloads, HomogeneousRunsOneBenchmarkEightTimes)
{
    for (const auto &w : homogeneousWorkloads()) {
        for (const auto &b : w.benchmarks)
            EXPECT_EQ(b, w.name);
    }
}

TEST(Workloads, MixesAreNamedSequentially)
{
    const auto mixes = mixedWorkloads();
    for (std::size_t i = 0; i < mixes.size(); ++i)
        EXPECT_EQ(mixes[i].name, "mix" + std::to_string(i + 1));
}

TEST(Workloads, AllBenchmarksExistAsProfiles)
{
    for (const auto &w : allWorkloads())
        for (const auto &b : w.benchmarks)
            EXPECT_TRUE(hasProfile(b)) << w.name << "/" << b;
}

TEST(Workloads, Table3SpotChecks)
{
    // Double-checked entries from the published table survive
    // normalization: mix4 runs dealii and mcf twice.
    const auto &m4 = findWorkload("mix4");
    EXPECT_EQ(std::count(m4.benchmarks.begin(), m4.benchmarks.end(),
                         "dealii"),
              2);
    EXPECT_EQ(std::count(m4.benchmarks.begin(), m4.benchmarks.end(),
                         "mcf"),
              2);
    // mix10 runs libquantum twice.
    const auto &m10 = findWorkload("mix10");
    EXPECT_EQ(std::count(m10.benchmarks.begin(), m10.benchmarks.end(),
                         "libquantum"),
              2);
}

TEST(Workloads, FindByNameAndFatalOnUnknown)
{
    EXPECT_EQ(findWorkload("mix7").benchmarks.size(), 8u);
    EXPECT_DEATH(findWorkload("mix99"), "unknown");
}

TEST(Workloads, BuildTraceIsDeterministicPerWorkload)
{
    GeneratorConfig c;
    c.totalRequests = 5000;
    c.footprintScale = 0.02;
    const Trace a = buildWorkloadTrace(findWorkload("mix3"), c);
    const Trace b = buildWorkloadTrace(findWorkload("mix3"), c);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i].coreLocal, b[i].coreLocal);
}

TEST(Workloads, DifferentWorkloadsGetDifferentSeeds)
{
    GeneratorConfig c;
    c.totalRequests = 5000;
    c.footprintScale = 0.02;
    // Two homogeneous workloads of the same benchmark name would
    // collide; different names must decorrelate.
    const Trace a = buildWorkloadTrace(findWorkload("mix1"), c);
    const Trace b = buildWorkloadTrace(findWorkload("mix2"), c);
    int differing = 0;
    for (std::size_t i = 0; i < 100; ++i)
        differing += a[i].coreLocal != b[i].coreLocal ? 1 : 0;
    EXPECT_GT(differing, 50);
}

TEST(Workloads, RepresentativeSubsetResolves)
{
    for (const auto &name : representativeWorkloads())
        EXPECT_EQ(findWorkload(name).benchmarks.size(), 8u);
}

} // namespace
} // namespace mempod
