/** @file Unit tests for the SoA bank timing state. */
#include <gtest/gtest.h>

#include "dram/bank.h"

namespace mempod {
namespace {

DramTiming
timing()
{
    return DramSpec::hbm1GHz().timing;
}

/** Two ranks of two banks: enough to cross rank boundaries. */
struct Fixture
{
    DramTiming t = timing();
    CommandTimingTable tbl = CommandTimingTable::build(t);
    BankStateArray banks{tbl, 4, 2};
};

TEST(BankStateArray, StartsClosed)
{
    Fixture f;
    EXPECT_EQ(f.banks.numBanks(), 4u);
    for (std::uint32_t b = 0; b < 4; ++b) {
        EXPECT_FALSE(f.banks.isOpen(b));
        EXPECT_EQ(f.banks.openRow(b), BankStateArray::kNoRow);
    }
}

TEST(BankStateArray, ActivateOpensRowAndSetsWindows)
{
    Fixture f;
    f.banks.activate(1000, 0, 42);
    EXPECT_TRUE(f.banks.isOpen(0));
    EXPECT_EQ(f.banks.openRow(0), 42);
    EXPECT_EQ(f.banks.readyAt(0, DramCmd::kRd), 1000 + f.t.tRCD);
    EXPECT_EQ(f.banks.readyAt(0, DramCmd::kWr), 1000 + f.t.tRCD);
    EXPECT_EQ(f.banks.readyAt(0, DramCmd::kPre), 1000 + f.t.tRAS);
    EXPECT_EQ(f.banks.readyAt(0, DramCmd::kAct), 1000 + f.t.tRC());
    // The sibling bank in the same rank only sees the tRRD spacing.
    EXPECT_EQ(f.banks.actReadyAt(1), 1000 + f.t.tRRD);
    // The other rank is unconstrained.
    EXPECT_EQ(f.banks.actReadyAt(2), 0u);
}

TEST(BankStateArray, ReadReturnsDataEnd)
{
    Fixture f;
    f.banks.activate(0, 0, 1);
    const TimePs cas_at = f.banks.readyAt(0, DramCmd::kRd);
    const TimePs data_end = f.banks.read(cas_at, 0);
    EXPECT_EQ(data_end, cas_at + f.t.tCL + f.t.tBL);
    EXPECT_EQ(f.banks.readCounts()[0], 1u);
}

TEST(BankStateArray, WriteExtendsPrechargeWindow)
{
    Fixture f;
    f.banks.activate(0, 0, 1);
    const TimePs cas_at = f.banks.readyAt(0, DramCmd::kWr);
    const TimePs data_end = f.banks.write(cas_at, 0);
    EXPECT_EQ(data_end, cas_at + f.t.tCWL + f.t.tBL);
    // Write recovery: PRE only tWR past the end of the write data.
    EXPECT_GE(f.banks.readyAt(0, DramCmd::kPre), data_end + f.t.tWR);
    EXPECT_EQ(f.banks.writeCounts()[0], 1u);
}

TEST(BankStateArray, PrechargeClosesAndArmsActivate)
{
    Fixture f;
    f.banks.activate(0, 0, 1);
    const TimePs pre_at = f.banks.readyAt(0, DramCmd::kPre);
    f.banks.precharge(pre_at, 0);
    EXPECT_FALSE(f.banks.isOpen(0));
    EXPECT_GE(f.banks.readyAt(0, DramCmd::kAct), pre_at + f.t.tRP);
}

TEST(BankStateArray, ReadPushesPrechargeByRtp)
{
    Fixture f;
    f.banks.activate(0, 0, 1);
    // Read very late: tRTP now dominates tRAS.
    const TimePs late = 1'000'000;
    f.banks.read(late, 0);
    EXPECT_GE(f.banks.readyAt(0, DramCmd::kPre), late + f.t.tRTP);
}

TEST(BankStateArray, BlockUntilRaisesAllWindows)
{
    Fixture f;
    f.banks.blockUntil(0, 5000);
    EXPECT_GE(f.banks.readyAt(0, DramCmd::kAct), 5000u);
    EXPECT_GE(f.banks.readyAt(0, DramCmd::kRd), 5000u);
    EXPECT_GE(f.banks.readyAt(0, DramCmd::kWr), 5000u);
    EXPECT_GE(f.banks.readyAt(0, DramCmd::kPre), 5000u);
    // Other banks are untouched.
    EXPECT_EQ(f.banks.readyAt(1, DramCmd::kAct), 0u);
}

TEST(BankStateArray, CountersAreIndependentPerBank)
{
    Fixture f;
    f.banks.activate(0, 0, 1);
    f.banks.activate(100'000, 3, 7);
    EXPECT_EQ(f.banks.activateCounts()[0], 1u);
    EXPECT_EQ(f.banks.activateCounts()[1], 0u);
    EXPECT_EQ(f.banks.activateCounts()[3], 1u);
}

TEST(BankStateArrayDeathTest, ProtocolViolationsPanic)
{
    Fixture f;
    EXPECT_DEATH(f.banks.read(100, 0), "closed");
    EXPECT_DEATH(f.banks.precharge(100, 0), "closed");
    f.banks.activate(0, 0, 1);
    EXPECT_DEATH(f.banks.activate(1'000'000, 0, 2), "open");
    EXPECT_DEATH(f.banks.read(0, 0), "early");
}

TEST(BankStateArray, RrdSpacesActivatesWithinRank)
{
    Fixture f;
    f.banks.activate(1000, 0, 1);
    EXPECT_EQ(f.banks.actReadyAt(1), 1000 + f.t.tRRD);
    // Cross-rank ACTs are not gated by tRRD.
    EXPECT_LT(f.banks.actReadyAt(2), 1000 + f.t.tRRD);
}

TEST(BankStateArray, FawLimitsFourActivates)
{
    // One rank of eight banks so four ACTs fit without bank reuse.
    DramTiming t = timing();
    const CommandTimingTable tbl = CommandTimingTable::build(t);
    BankStateArray banks(tbl, 8, 8);
    // Four ACTs spaced exactly tRRD apart.
    TimePs at = 0;
    for (std::uint32_t b = 0; b < 4; ++b) {
        banks.activate(at, b, 1);
        at += t.tRRD;
    }
    // The fifth must wait for the FAW window from the first ACT.
    EXPECT_GE(banks.actReadyAt(4), t.tFAW);
}

TEST(BankStateArray, FawWindowSlides)
{
    DramTiming t = timing();
    const CommandTimingTable tbl = CommandTimingTable::build(t);
    BankStateArray banks(tbl, 16, 16);
    for (std::uint32_t i = 0; i < 8; ++i)
        banks.activate(i * t.tFAW, i, 1); // well spaced: never limited
    EXPECT_LE(banks.actReadyAt(8), 7 * t.tFAW + t.tFAW);
}

} // namespace
} // namespace mempod
