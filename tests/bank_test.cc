/** @file Unit tests for bank/rank timing state machines. */
#include <gtest/gtest.h>

#include "dram/bank.h"

namespace mempod {
namespace {

DramTiming
timing()
{
    return DramSpec::hbm1GHz().timing;
}

TEST(Bank, StartsClosed)
{
    Bank b;
    EXPECT_FALSE(b.isOpen());
    EXPECT_EQ(b.openRow(), Bank::kNoRow);
}

TEST(Bank, ActivateOpensRowAndSetsWindows)
{
    const DramTiming t = timing();
    Bank b;
    b.activate(1000, 42, t);
    EXPECT_TRUE(b.isOpen());
    EXPECT_EQ(b.openRow(), 42);
    EXPECT_EQ(b.casAllowedAt(), 1000 + t.ps(t.tRCD));
    EXPECT_EQ(b.preAllowedAt(), 1000 + t.ps(t.tRAS));
    EXPECT_EQ(b.actAllowedAt(), 1000 + t.ps(t.tRC()));
}

TEST(Bank, ReadReturnsDataEnd)
{
    const DramTiming t = timing();
    Bank b;
    b.activate(0, 1, t);
    const TimePs cas_at = b.casAllowedAt();
    const TimePs data_end = b.read(cas_at, t);
    EXPECT_EQ(data_end, cas_at + t.ps(t.tCL + t.tBL));
}

TEST(Bank, WriteExtendsPrechargeWindow)
{
    const DramTiming t = timing();
    Bank b;
    b.activate(0, 1, t);
    const TimePs cas_at = b.casAllowedAt();
    const TimePs data_end = b.write(cas_at, t);
    EXPECT_EQ(data_end, cas_at + t.ps(t.tCWL + t.tBL));
    EXPECT_GE(b.preAllowedAt(), data_end + t.ps(t.tWR));
}

TEST(Bank, PrechargeClosesAndArmsActivate)
{
    const DramTiming t = timing();
    Bank b;
    b.activate(0, 1, t);
    const TimePs pre_at = b.preAllowedAt();
    b.precharge(pre_at, t);
    EXPECT_FALSE(b.isOpen());
    EXPECT_GE(b.actAllowedAt(), pre_at + t.ps(t.tRP));
}

TEST(Bank, ReadPushesPrechargeByRtp)
{
    const DramTiming t = timing();
    Bank b;
    b.activate(0, 1, t);
    // Read very late: tRTP now dominates tRAS.
    const TimePs late = 1'000'000;
    b.read(late, t);
    EXPECT_GE(b.preAllowedAt(), late + t.ps(t.tRTP));
}

TEST(Bank, BlockUntilRaisesAllWindows)
{
    Bank b;
    b.blockUntil(5000);
    EXPECT_GE(b.actAllowedAt(), 5000u);
    EXPECT_GE(b.casAllowedAt(), 5000u);
    EXPECT_GE(b.preAllowedAt(), 5000u);
}

TEST(BankDeathTest, ProtocolViolationsPanic)
{
    const DramTiming t = timing();
    Bank closed;
    EXPECT_DEATH(closed.read(100, t), "closed");
    EXPECT_DEATH(closed.precharge(100, t), "closed");
    Bank open;
    open.activate(0, 1, t);
    EXPECT_DEATH(open.activate(1'000'000, 2, t), "open");
    EXPECT_DEATH(open.read(0, t), "early");
}

TEST(Rank, RrdSpacesActivates)
{
    const DramTiming t = timing();
    Rank r(t);
    EXPECT_EQ(r.actAllowedAt(), 0u);
    r.recordAct(1000);
    EXPECT_EQ(r.actAllowedAt(), 1000 + t.ps(t.tRRD));
}

TEST(Rank, FawLimitsFourActivates)
{
    const DramTiming t = timing();
    Rank r(t);
    // Four ACTs spaced exactly tRRD apart.
    TimePs at = 0;
    for (int i = 0; i < 4; ++i) {
        r.recordAct(at);
        at += t.ps(t.tRRD);
    }
    // The fifth must wait for the FAW window from the first ACT.
    EXPECT_GE(r.actAllowedAt(), t.ps(t.tFAW));
}

TEST(Rank, FawWindowSlides)
{
    const DramTiming t = timing();
    Rank r(t);
    for (int i = 0; i < 8; ++i)
        r.recordAct(i * t.ps(t.tFAW)); // well spaced: never limited
    EXPECT_LE(r.actAllowedAt(),
              7 * t.ps(t.tFAW) + t.ps(t.tFAW));
}

} // namespace
} // namespace mempod
