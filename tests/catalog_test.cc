/**
 * @file
 * Unit tests for the WorkloadCatalog: the synthetic Table 3 suite it
 * is seeded with, name lookup, trace building, and manifest-declared
 * external traces (including synthetic-name shadowing).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "trace/catalog.h"
#include "trace/native.h"
#include "trace/profiles.h"

namespace mempod {
namespace {

TEST(Catalog, FifteenHomogeneousTwelveMixed)
{
    const WorkloadCatalog &cat = WorkloadCatalog::global();
    EXPECT_EQ(cat.names().size(), 27u);
    EXPECT_EQ(cat.homogeneousNames().size(), 15u);
    EXPECT_EQ(cat.mixedNames().size(), 12u);
}

TEST(Catalog, EveryWorkloadHasEightCores)
{
    const WorkloadCatalog &cat = WorkloadCatalog::global();
    for (const auto &name : cat.names()) {
        const CatalogEntry &e = cat.find(name);
        ASSERT_EQ(e.kind, CatalogEntry::Kind::kSynthetic);
        EXPECT_EQ(e.synthetic.benchmarks.size(), 8u) << name;
    }
}

TEST(Catalog, HomogeneousRunsOneBenchmarkEightTimes)
{
    const WorkloadCatalog &cat = WorkloadCatalog::global();
    for (const auto &name : cat.homogeneousNames()) {
        const CatalogEntry &e = cat.find(name);
        EXPECT_TRUE(e.homogeneous);
        for (const auto &b : e.synthetic.benchmarks)
            EXPECT_EQ(b, name);
    }
}

TEST(Catalog, MixesAreNamedSequentially)
{
    const auto mixes = WorkloadCatalog::global().mixedNames();
    for (std::size_t i = 0; i < mixes.size(); ++i)
        EXPECT_EQ(mixes[i], "mix" + std::to_string(i + 1));
}

TEST(Catalog, AllBenchmarksExistAsProfiles)
{
    const WorkloadCatalog &cat = WorkloadCatalog::global();
    for (const auto &name : cat.names())
        for (const auto &b : cat.find(name).synthetic.benchmarks)
            EXPECT_TRUE(hasProfile(b)) << name << "/" << b;
}

TEST(Catalog, Table3SpotChecks)
{
    // Double-checked entries from the published table survive
    // normalization: mix4 runs dealii and mcf twice.
    const auto &m4 = WorkloadCatalog::global().find("mix4").synthetic;
    EXPECT_EQ(std::count(m4.benchmarks.begin(), m4.benchmarks.end(),
                         "dealii"),
              2);
    EXPECT_EQ(std::count(m4.benchmarks.begin(), m4.benchmarks.end(),
                         "mcf"),
              2);
    // mix10 runs libquantum twice.
    const auto &m10 = WorkloadCatalog::global().find("mix10").synthetic;
    EXPECT_EQ(std::count(m10.benchmarks.begin(), m10.benchmarks.end(),
                         "libquantum"),
              2);
}

TEST(Catalog, FindByNameAndFatalOnUnknown)
{
    const WorkloadCatalog &cat = WorkloadCatalog::global();
    EXPECT_EQ(cat.find("mix7").synthetic.benchmarks.size(), 8u);
    EXPECT_EQ(cat.tryFind("mix99"), nullptr);
    EXPECT_DEATH(cat.find("mix99"), "unknown");
}

TEST(Catalog, BuildTraceIsDeterministicPerWorkload)
{
    GeneratorConfig c;
    c.totalRequests = 5000;
    c.footprintScale = 0.02;
    const Trace a = WorkloadCatalog::global().build("mix3", c);
    const Trace b = WorkloadCatalog::global().build("mix3", c);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i].coreLocal, b[i].coreLocal);
}

TEST(Catalog, DifferentWorkloadsGetDifferentSeeds)
{
    GeneratorConfig c;
    c.totalRequests = 5000;
    c.footprintScale = 0.02;
    // Two homogeneous workloads of the same benchmark name would
    // collide; different names must decorrelate.
    const Trace a = WorkloadCatalog::global().build("mix1", c);
    const Trace b = WorkloadCatalog::global().build("mix2", c);
    int differing = 0;
    for (std::size_t i = 0; i < 100; ++i)
        differing += a[i].coreLocal != b[i].coreLocal ? 1 : 0;
    EXPECT_GT(differing, 50);
}

TEST(Catalog, RepresentativeSubsetResolves)
{
    for (const auto &name : WorkloadCatalog::representativeNames())
        EXPECT_EQ(WorkloadCatalog::global()
                      .find(name)
                      .synthetic.benchmarks.size(),
                  8u);
}

/** Record a tiny synthetic trace + manifest into TempDir. */
class CatalogManifest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Unique per test: ctest runs sibling tests as concurrent
        // processes, and a shared dir races a reader in one test
        // against the fixture rewriting tiny.trc in another.
        dir_ = ::testing::TempDir() + "catalog_manifest_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        const std::string mkdir = "mkdir -p " + dir_;
        ASSERT_EQ(std::system(mkdir.c_str()), 0);

        GeneratorConfig gc;
        gc.totalRequests = 2000;
        gc.footprintScale = 0.02;
        reference_ = WorkloadCatalog::global().build("xalanc", gc);
        writeNativeTrace(reference_, dir_ + "/tiny.trc");

        std::ofstream m(dir_ + "/traces.json");
        m << "{\n  \"version\": 1,\n  \"traces\": [\n"
          << "    {\"name\": \"tiny\", \"format\": \"native\", "
             "\"file\": \"tiny.trc\"},\n"
          << "    {\"name\": \"xalanc\", \"format\": \"native\", "
             "\"file\": \"tiny.trc\"},\n"
          << "    {\"name\": \"tiny2x\", \"format\": \"native\", "
             "\"file\": \"tiny.trc\", \"time_scale\": 2.0}\n"
          << "  ]\n}\n";
        m.close();
        catalog_.loadManifest(dir_ + "/traces.json");
    }

    std::string dir_;
    Trace reference_;
    WorkloadCatalog catalog_; // local: keep global() pristine
};

TEST_F(CatalogManifest, RegistersExternalEntries)
{
    const CatalogEntry *e = catalog_.tryFind("tiny");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->kind, CatalogEntry::Kind::kExternal);
    EXPECT_EQ(e->external.format, "native");
    // New external names land after the 27 synthetic ones.
    EXPECT_EQ(catalog_.names().size(), 29u); // +tiny, +tiny2x
}

TEST_F(CatalogManifest, ShadowingInheritsHomogeneousFlag)
{
    // "xalanc" is shadowed in place: still one entry with that name,
    // now external, and still grouped as homogeneous so replayed
    // sidecar naming matches the live synthetic run.
    const CatalogEntry &e = catalog_.find("xalanc");
    EXPECT_EQ(e.kind, CatalogEntry::Kind::kExternal);
    EXPECT_TRUE(e.homogeneous);
    EXPECT_EQ(catalog_.homogeneousNames().size(), 15u);
}

TEST_F(CatalogManifest, ExternalOpenReplaysRecordedTrace)
{
    GeneratorConfig gc;
    gc.totalRequests = 0; // no cap
    const auto source = catalog_.open("tiny", gc);
    const Trace replayed = materialize(*source);
    ASSERT_EQ(replayed.size(), reference_.size());
    for (std::size_t i = 0; i < replayed.size(); ++i) {
        ASSERT_EQ(replayed[i].time, reference_[i].time);
        ASSERT_EQ(replayed[i].core, reference_[i].core);
        ASSERT_EQ(replayed[i].coreLocal, reference_[i].coreLocal);
        ASSERT_EQ(replayed[i].type, reference_[i].type);
    }
}

TEST_F(CatalogManifest, TotalRequestsCapsExternalRecords)
{
    GeneratorConfig gc;
    gc.totalRequests = 100;
    const auto source = catalog_.open("tiny", gc);
    EXPECT_EQ(source->size(), 100u);
    EXPECT_EQ(materialize(*source).size(), 100u);
}

TEST_F(CatalogManifest, TimeScaleStretchesTimestamps)
{
    GeneratorConfig gc;
    gc.totalRequests = 50;
    const auto plain = materialize(*catalog_.open("tiny", gc));
    const auto scaled = materialize(*catalog_.open("tiny2x", gc));
    ASSERT_EQ(plain.size(), scaled.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        ASSERT_EQ(scaled[i].time, plain[i].time * 2);
}

TEST_F(CatalogManifest, RateScaleFoldsIntoTimeScale)
{
    // rateScale compresses time (more requests per unit time), so a
    // 2.0 time_scale at rateScale 2.0 cancels back to the original.
    GeneratorConfig gc;
    gc.totalRequests = 50;
    gc.rateScale = 2.0;
    const auto scaled = materialize(*catalog_.open("tiny2x", gc));
    GeneratorConfig plain_gc;
    plain_gc.totalRequests = 50;
    const auto plain = materialize(*catalog_.open("tiny", plain_gc));
    ASSERT_EQ(plain.size(), scaled.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        ASSERT_EQ(scaled[i].time, plain[i].time);
}

TEST_F(CatalogManifest, UnknownManifestKeyIsFatal)
{
    const std::string bad = dir_ + "/bad.json";
    std::ofstream m(bad);
    m << "{\"version\": 1, \"traces\": [{\"name\": \"x\", \"format\": "
         "\"native\", \"file\": \"tiny.trc\", \"frobnicate\": 1}]}\n";
    m.close();
    WorkloadCatalog cat;
    EXPECT_DEATH(cat.loadManifest(bad), "frobnicate");
}

} // namespace
} // namespace mempod
