/** @file Unit tests for the sampling event tracer. */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/tracer.h"

namespace mempod {
namespace {

TracerConfig
cfg(std::uint64_t every, std::uint64_t seed = 0)
{
    TracerConfig c;
    c.enabled = true;
    c.sampleEvery = every;
    c.seed = seed;
    return c;
}

TEST(Tracer, SampleEveryOneTakesEverything)
{
    const Tracer t(cfg(1));
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_TRUE(t.sampleDemand(i));
}

TEST(Tracer, SampleEveryZeroClampsToOne)
{
    const Tracer t(cfg(0));
    EXPECT_EQ(t.sampleEvery(), 1u);
    EXPECT_TRUE(t.sampleDemand(12345));
}

TEST(Tracer, SamplingIsDeterministicAndSeedKeyed)
{
    const Tracer a(cfg(64, 42)), b(cfg(64, 42)), c(cfg(64, 7));
    std::uint64_t taken = 0, differs = 0;
    for (std::uint64_t i = 0; i < 100'000; ++i) {
        EXPECT_EQ(a.sampleDemand(i), b.sampleDemand(i));
        taken += a.sampleDemand(i) ? 1 : 0;
        differs += a.sampleDemand(i) != c.sampleDemand(i) ? 1 : 0;
    }
    // A well-mixed 1-in-64 hash: close to the nominal rate, and a
    // different seed picks a mostly-disjoint sample.
    EXPECT_NEAR(static_cast<double>(taken), 100'000.0 / 64, 300.0);
    EXPECT_GT(differs, 1000u);
}

TEST(Tracer, TrackIdsAreStablePerName)
{
    Tracer t(cfg(1));
    const std::uint32_t core0 = t.track("core0");
    const std::uint32_t pod1 = t.track("pod1");
    EXPECT_NE(core0, pod1);
    EXPECT_EQ(t.track("core0"), core0);
    EXPECT_EQ(t.track("pod1"), pod1);
}

TEST(Tracer, FlowIdsAreUniqueAndDisjointFromDemandIds)
{
    Tracer t(cfg(1));
    const std::uint64_t f1 = t.newFlowId();
    const std::uint64_t f2 = t.newFlowId();
    EXPECT_NE(f1, f2);
    // Demand ids are record_idx + 1; flows live in a different range.
    EXPECT_GT(f1, 1ull << 31);
}

TEST(Tracer, ToJsonShape)
{
    Tracer t(cfg(1));
    const std::uint32_t tid = t.track("core0");
    TraceArgs args;
    args.add("core", std::uint64_t{3}).add("kind", "demand");
    t.asyncBegin(tid, 1'500'000, "req", 9, "demand", args.str());
    t.asyncEnd(tid, 2'500'000, "req", 9, "demand");
    t.durBegin(tid, 3'000'000, "refresh");
    t.durEnd(tid, 4'000'000);
    t.instant(tid, 5'000'000, "mea_victory");
    t.flowStart(tid, 1'500'000, "mig", 77, "migration");
    t.flowEnd(tid, 2'500'000, "mig", 77, "migration");

    const std::string json = t.toJson();
    // Metadata names the process and the track.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"core0\"}"), std::string::npos);
    // ps -> µs via integer math: 1'500'000 ps = 1.500000 µs.
    EXPECT_NE(json.find("\"ts\":1.500000"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"req\",\"id\":\"9\""),
              std::string::npos);
    EXPECT_NE(json.find("{\"core\":3,\"kind\":\"demand\"}"),
              std::string::npos);
    // Flow events carry the enclosing-slice binding point.
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_EQ(t.eventCount(), 7u);
}

TEST(Tracer, ToJsonBytesAreDeterministic)
{
    auto build = [] {
        Tracer t(cfg(4, 11));
        const std::uint32_t tid = t.track("pod0");
        for (std::uint64_t i = 0; i < 50; ++i) {
            if (!t.sampleDemand(i))
                continue;
            t.asyncBegin(tid, i * 1000, "req", i + 1, "demand");
            t.asyncEnd(tid, i * 1000 + 500, "req", i + 1, "demand");
        }
        return t.toJson();
    };
    EXPECT_EQ(build(), build());
}

} // namespace
} // namespace mempod
