/** @file Unit tests for the Section 3 offline accuracy study. */
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/interval_study.h"
#include "common/rng.h"
#include "trace/generator.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

IntervalStudyConfig
smallStudy()
{
    IntervalStudyConfig c;
    c.intervalRequests = 1000;
    c.meaEntries = 128;
    return c;
}

TEST(IntervalStudy, EmptyStreamYieldsNothing)
{
    const IntervalStudyResult r =
        runIntervalStudy({}, smallStudy());
    EXPECT_EQ(r.intervals, 0u);
}

TEST(IntervalStudy, StableHotSetIsPerfectlyPredictable)
{
    // 30 pages, round-robin with descending weights, stationary: both
    // schemes should predict essentially everything.
    std::vector<std::uint64_t> stream;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i)
        stream.push_back(rng.nextZipf(30, 1.2));
    const IntervalStudyResult r = runIntervalStudy(stream, smallStudy());
    EXPECT_GT(r.fcPredictionAccuracy[0], 0.9);
    EXPECT_GT(r.meaPredictionAccuracy[0], 0.9);
}

TEST(IntervalStudy, PageStreamFromTraceDisambiguatesCores)
{
    Trace t;
    TraceRecord a, b;
    a.core = 0;
    a.coreLocal = 0;
    b.core = 1;
    b.coreLocal = 0;
    t.push_back(a);
    t.push_back(b);
    const auto stream = pageStreamFromTrace(t);
    EXPECT_NE(stream[0], stream[1]);
}

TEST(IntervalStudy, StreamingDefeatsFullCounters)
{
    // A sliding working window sweeping a structure far larger than
    // the interval: pages FC ranks highest in interval i (those with
    // the longest residence inside i) have left the window by i+1,
    // while the pages MEA keeps — recent ones — are exactly where the
    // window continues. This is the paper's bwaves/lbm observation.
    std::vector<std::uint64_t> stream;
    Rng rng(31);
    std::uint64_t window_base = 0;
    for (int i = 0; i < 40000; ++i) {
        if (i % 5 == 4)
            ++window_base; // window slides one page every 5 requests
        stream.push_back(window_base + rng.nextBelow(100));
    }
    IntervalStudyConfig cfg = smallStudy();
    cfg.intervalRequests = 1000;
    const IntervalStudyResult r = runIntervalStudy(stream, cfg);
    // MEA keeps boundary pages: clearly more future hits than FC.
    const double mea_total = r.meaPredictionHits[0] +
                             r.meaPredictionHits[1] +
                             r.meaPredictionHits[2];
    const double fc_total = r.fcPredictionHits[0] +
                            r.fcPredictionHits[1] + r.fcPredictionHits[2];
    EXPECT_GT(mea_total, fc_total);
}

TEST(IntervalStudy, PhaseChangesFavorMeaRecency)
{
    // Hot set rotates every interval-and-a-half: pages hot at the end
    // of an interval predict the next one better than pages hot at
    // its start.
    std::vector<std::uint64_t> stream;
    Rng rng(11);
    std::uint64_t base = 0;
    for (int i = 0; i < 40000; ++i) {
        if (i % 1500 == 0)
            base += 15;
        stream.push_back(base + rng.nextZipf(30, 1.0));
    }
    IntervalStudyConfig cfg = smallStudy();
    const IntervalStudyResult r = runIntervalStudy(stream, cfg);
    const double mea_total = r.meaPredictionHits[0] +
                             r.meaPredictionHits[1] +
                             r.meaPredictionHits[2];
    const double fc_total = r.fcPredictionHits[0] +
                            r.fcPredictionHits[1] + r.fcPredictionHits[2];
    EXPECT_GE(mea_total, fc_total * 0.95);
}

TEST(IntervalStudy, CountingAccuracyBelowPerfect)
{
    // On noisy streams MEA is a poor *counter* even when it predicts
    // well (the Figure 1 vs Figure 2 contrast).
    GeneratorConfig gc;
    gc.totalRequests = 50000;
    gc.footprintScale = 0.05;
    const Trace t = WorkloadCatalog::global().build("mix5", gc);
    const auto stream = pageStreamFromTrace(t);
    const IntervalStudyResult r = runIntervalStudy(stream, smallStudy());
    EXPECT_GT(r.intervals, 10u);
    for (int tier = 0; tier < 3; ++tier) {
        EXPECT_GE(r.meaCountingAccuracy[tier], 0.0);
        EXPECT_LE(r.meaCountingAccuracy[tier], 1.0);
    }
}

TEST(IntervalStudy, PredictionsBoundedByMeaCapacity)
{
    GeneratorConfig gc;
    gc.totalRequests = 30000;
    gc.footprintScale = 0.05;
    const Trace t = WorkloadCatalog::global().build("xalanc", gc);
    const IntervalStudyResult r =
        runIntervalStudy(pageStreamFromTrace(t), smallStudy());
    EXPECT_LE(r.meaPredictionsPerInterval, 128.0);
    EXPECT_GT(r.meaPredictionsPerInterval, 0.0);
}

TEST(IntervalStudy, HitsNeverExceedTierSize)
{
    GeneratorConfig gc;
    gc.totalRequests = 30000;
    gc.footprintScale = 0.05;
    const Trace t = WorkloadCatalog::global().build("mix1", gc);
    const IntervalStudyResult r =
        runIntervalStudy(pageStreamFromTrace(t), smallStudy());
    for (int tier = 0; tier < 3; ++tier) {
        EXPECT_LE(r.meaPredictionHits[tier], 10.0);
        EXPECT_LE(r.fcPredictionHits[tier], 10.0);
    }
}

} // namespace
} // namespace mempod
