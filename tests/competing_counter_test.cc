/** @file Unit tests for THM's per-segment competing counter. */
#include <gtest/gtest.h>

#include "tracking/competing_counter.h"

namespace mempod {
namespace {

TEST(CompetingCounter, FirstAccessClaimsCandidacy)
{
    CompetingCounter cc;
    EXPECT_FALSE(cc.accessSlow(3, 10));
    EXPECT_EQ(cc.candidate(), 3u);
    EXPECT_EQ(cc.count(), 1u);
}

TEST(CompetingCounter, CandidateStrengthens)
{
    CompetingCounter cc;
    cc.accessSlow(3, 10);
    cc.accessSlow(3, 10);
    EXPECT_EQ(cc.count(), 2u);
}

TEST(CompetingCounter, ThresholdTriggersAndResets)
{
    CompetingCounter cc;
    bool triggered = false;
    for (int i = 0; i < 4; ++i)
        triggered = cc.accessSlow(5, 4);
    EXPECT_TRUE(triggered);
    EXPECT_EQ(cc.candidate(), CompetingCounter::kNoCandidate);
    EXPECT_EQ(cc.count(), 0u);
}

TEST(CompetingCounter, CompetitorWeakensCandidate)
{
    CompetingCounter cc;
    cc.accessSlow(1, 10);
    cc.accessSlow(1, 10); // count 2
    cc.accessSlow(2, 10); // count 1, candidate still 1
    EXPECT_EQ(cc.candidate(), 1u);
    EXPECT_EQ(cc.count(), 1u);
}

TEST(CompetingCounter, CompetitorTakesOverWhenDrained)
{
    CompetingCounter cc;
    cc.accessSlow(1, 10); // candidate 1, count 1
    cc.accessSlow(2, 10); // count drains to 0 -> 2 takes over
    EXPECT_EQ(cc.candidate(), 2u);
    EXPECT_EQ(cc.count(), 1u);
}

TEST(CompetingCounter, FastAccessWeakens)
{
    CompetingCounter cc;
    cc.accessSlow(1, 10);
    cc.accessSlow(1, 10);
    cc.accessFast();
    EXPECT_EQ(cc.count(), 1u);
    cc.accessFast();
    EXPECT_EQ(cc.candidate(), CompetingCounter::kNoCandidate);
}

TEST(CompetingCounter, FalsePositiveScenario)
{
    // The paper's false-positive case: a cold page accessed at the
    // right time inherits progress another page built up... here the
    // takeover resets the count, but a ping-pong between two pages
    // keeps the hot page from triggering (flexibility cost).
    CompetingCounter cc;
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(cc.accessSlow(1, 3));
        EXPECT_FALSE(cc.accessSlow(2, 3)); // alternating: never triggers
    }
}

TEST(CompetingCounter, SaturatesAtWidth)
{
    CompetingCounter cc(2); // max count 3
    for (int i = 0; i < 10; ++i)
        cc.accessSlow(1, 100);
    EXPECT_EQ(cc.count(), 3u);
}

TEST(CompetingCounter, ClearResets)
{
    CompetingCounter cc;
    cc.accessSlow(4, 100);
    cc.clear();
    EXPECT_EQ(cc.candidate(), CompetingCounter::kNoCandidate);
    EXPECT_EQ(cc.count(), 0u);
}

TEST(CompetingCounter, ThresholdOneTriggersImmediately)
{
    CompetingCounter cc;
    EXPECT_TRUE(cc.accessSlow(7, 1));
}

} // namespace
} // namespace mempod
