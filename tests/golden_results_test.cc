/**
 * @file
 * Golden regression pins: a fixed-seed 50k-request mix5 trace through
 * every mechanism on the paper system, with headline statistics
 * checked against checked-in values. Any change to the trace
 * generator, the DRAM timing model, or a migration mechanism that
 * shifts behaviour shows up here as an explicit diff instead of
 * silently drifting the reproduced figures.
 *
 * To regenerate after an *intentional* behaviour change:
 *   MEMPOD_PRINT_GOLDEN=1 ./build/tests/mempod_tests \
 *       --gtest_filter='Golden*' 2>/dev/null
 * and paste the printed table over kGolden / kTraceGolden below.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "sim/runner.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

constexpr const char *kWorkload = "mix5";
constexpr std::uint64_t kRequests = 50000;
constexpr std::uint64_t kSeed = 42;

struct GoldenRow
{
    const char *label;
    Mechanism mechanism;
    std::uint64_t demandFast;
    std::uint64_t demandSlow;
    std::uint64_t migrations;
    std::uint64_t bytesMoved;
    std::uint64_t simulatedPs;
    std::uint64_t eventsExecuted;
    double ammatNs;
};

// --- golden values (regenerate with MEMPOD_PRINT_GOLDEN=1) ---
constexpr GoldenRow kGolden[] = {
    {"NoMigration", Mechanism::kNoMigration, 5313u, 44687u, 0u, 0u,
     501132500u, 314047u, 57.780567900000001},
    {"HMA", Mechanism::kHma, 8753u, 41247u, 580u, 2375680u, 529132500u,
     543406u, 63.132227899999997},
    {"THM", Mechanism::kThm, 17342u, 32658u, 811u, 3321856u, 501132500u,
     622361u, 61.994082900000002},
    {"CAMEO", Mechanism::kCameo, 8846u, 41154u, 36484u, 4669952u,
     501186250u, 989558u, 61.847012900000003},
    {"MemPod", Mechanism::kMemPod, 11901u, 38099u, 456u, 1867776u,
     505947500u, 482753u, 59.017767899999996},
};

struct TraceGolden
{
    std::uint64_t records;
    std::uint64_t reads;
    std::uint64_t writes;
    std::uint64_t touchedPages;
    std::uint64_t duration;
};
constexpr TraceGolden kTraceGolden = {50000, 36614, 13386, 7844,
                                      501102994};

SimConfig
goldenConfig(Mechanism m)
{
    SimConfig cfg = SimConfig::paper(m);
    // 4x MemPod's interval (200 us) instead of the harnesses' 40x: the
    // 50k-request trace spans ~0.5 ms, so this golden actually sees
    // HMA epochs fire rather than pinning HMA == NoMigration.
    if (m == Mechanism::kHma)
        cfg.scaleHmaEpoch(4.0);
    return cfg;
}

const char *
mechanismEnumName(Mechanism m)
{
    switch (m) {
      case Mechanism::kNoMigration: return "kNoMigration";
      case Mechanism::kMemPod: return "kMemPod";
      case Mechanism::kHma: return "kHma";
      case Mechanism::kThm: return "kThm";
      case Mechanism::kCameo: return "kCameo";
    }
    return "?";
}

bool
printGolden()
{
    return std::getenv("MEMPOD_PRINT_GOLDEN") != nullptr;
}

TEST(GoldenTrace, GeneratorIsPinned)
{
    GeneratorConfig gc;
    gc.totalRequests = kRequests;
    gc.seed = kSeed;
    const Trace trace =
        WorkloadCatalog::global().build(kWorkload, gc);
    const TraceSummary s = summarize(trace);
    if (printGolden()) {
        std::printf("constexpr TraceGolden kTraceGolden = "
                    "{%llu, %llu, %llu, %llu, %llu};\n",
                    static_cast<unsigned long long>(s.records),
                    static_cast<unsigned long long>(s.reads),
                    static_cast<unsigned long long>(s.writes),
                    static_cast<unsigned long long>(s.touchedPages),
                    static_cast<unsigned long long>(s.duration));
        return;
    }
    EXPECT_EQ(s.records, kTraceGolden.records);
    EXPECT_EQ(s.reads, kTraceGolden.reads);
    EXPECT_EQ(s.writes, kTraceGolden.writes);
    EXPECT_EQ(s.touchedPages, kTraceGolden.touchedPages);
    EXPECT_EQ(static_cast<std::uint64_t>(s.duration),
              kTraceGolden.duration);
}

std::vector<JobResult>
runAllMechanisms(std::uint32_t shards)
{
    // Run through the BatchRunner so the tier-1 suite exercises the
    // parallel path; determinism makes the worker count irrelevant.
    BatchRunner runner({.jobs = 2});
    for (const GoldenRow &g : kGolden) {
        BatchJob job;
        job.config = goldenConfig(g.mechanism);
        job.config.shards = shards;
        job.workload = kWorkload;
        job.gen.totalRequests = kRequests;
        job.gen.seed = kSeed;
        job.label = g.label;
        runner.add(std::move(job));
    }
    return runner.runAll();
}

TEST(GoldenResults, EveryMechanismIsPinned)
{
    const std::vector<JobResult> results = runAllMechanisms(0);
    ASSERT_EQ(results.size(), std::size(kGolden));

    for (std::size_t i = 0; i < results.size(); ++i) {
        const GoldenRow &g = kGolden[i];
        ASSERT_TRUE(results[i].ok) << g.label << ": "
                                   << results[i].error;
        const RunResult &r = results[i].result;
        if (printGolden()) {
            std::printf("    {\"%s\", Mechanism::%s, %lluu, %lluu, "
                        "%lluu, %lluu, %lluu, %lluu, %.17g},\n",
                        g.label, mechanismEnumName(g.mechanism),
                        static_cast<unsigned long long>(
                            r.memStats.demandFast),
                        static_cast<unsigned long long>(
                            r.memStats.demandSlow),
                        static_cast<unsigned long long>(
                            r.migration.migrations),
                        static_cast<unsigned long long>(
                            r.migration.bytesMoved),
                        static_cast<unsigned long long>(r.simulatedPs),
                        static_cast<unsigned long long>(
                            r.eventsExecuted),
                        r.ammatNs);
            continue;
        }
        EXPECT_EQ(r.completed, kRequests) << g.label;
        EXPECT_EQ(r.memStats.demandFast, g.demandFast) << g.label;
        EXPECT_EQ(r.memStats.demandSlow, g.demandSlow) << g.label;
        EXPECT_EQ(r.migration.migrations, g.migrations) << g.label;
        EXPECT_EQ(r.migration.bytesMoved, g.bytesMoved) << g.label;
        EXPECT_EQ(static_cast<std::uint64_t>(r.simulatedPs),
                  g.simulatedPs)
            << g.label;
        EXPECT_EQ(r.eventsExecuted, g.eventsExecuted) << g.label;
        // Deterministic, but allow for FP library variation across
        // toolchains; the integer pins above carry the regression
        // burden.
        EXPECT_NEAR(r.ammatNs, g.ammatNs, g.ammatNs * 1e-9) << g.label;
    }
}

TEST(GoldenResults, EveryMechanismIsPinnedAtTwoShards)
{
    // The sharded PDES kernel must hit the *same* checked-in goldens
    // as the serial kernel — down to the executed-event count — for
    // all five mechanisms. Any drift here means the canonical event
    // order leaked a partition dependence.
    if (printGolden())
        GTEST_SKIP() << "goldens are regenerated from the serial run";
    const std::vector<JobResult> results = runAllMechanisms(2);
    ASSERT_EQ(results.size(), std::size(kGolden));
    for (std::size_t i = 0; i < results.size(); ++i) {
        const GoldenRow &g = kGolden[i];
        ASSERT_TRUE(results[i].ok) << g.label << ": "
                                   << results[i].error;
        const RunResult &r = results[i].result;
        EXPECT_EQ(r.completed, kRequests) << g.label;
        EXPECT_EQ(r.memStats.demandFast, g.demandFast) << g.label;
        EXPECT_EQ(r.memStats.demandSlow, g.demandSlow) << g.label;
        EXPECT_EQ(r.migration.migrations, g.migrations) << g.label;
        EXPECT_EQ(r.migration.bytesMoved, g.bytesMoved) << g.label;
        EXPECT_EQ(static_cast<std::uint64_t>(r.simulatedPs),
                  g.simulatedPs)
            << g.label;
        EXPECT_EQ(r.eventsExecuted, g.eventsExecuted) << g.label;
        EXPECT_NEAR(r.ammatNs, g.ammatNs, g.ammatNs * 1e-9) << g.label;
    }
}

} // namespace
} // namespace mempod
