/** @file Unit tests for the no-migration baseline. */
#include <gtest/gtest.h>

#include "baselines/no_migration.h"
#include "common/event_queue.h"

namespace mempod {
namespace {

TEST(NoMigration, ServesAtHomeAddress)
{
    EventQueue eq;
    MemorySystem mem(eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600());
    NoMigrationManager mgr(mem);
    int done = 0;
    mgr.handleDemand({.done = [&](TimePs) { ++done; }});
    mgr.handleDemand({.homeAddr = 16_MiB,
                      .type = AccessType::kWrite,
                      .done = [&](TimePs) { ++done; }});
    eq.runAll();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(mem.stats().demandFast, 1u);
    EXPECT_EQ(mem.stats().demandSlow, 1u);
    EXPECT_EQ(mgr.migrationStats().migrations, 0u);
    EXPECT_EQ(mgr.pendingWork(), 0u);
}

TEST(NoMigration, NeverGeneratesMigrationTraffic)
{
    EventQueue eq;
    MemorySystem mem(eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600());
    NoMigrationManager mgr(mem);
    mgr.start();
    for (int i = 0; i < 200; ++i)
        mgr.handleDemand({.homeAddr = static_cast<Addr>(i) * 4096,
                          .arrival = eq.now()});
    eq.runAll();
    EXPECT_EQ(mem.stats().migrationLines(), 0u);
    EXPECT_EQ(mem.stats().bookkeepingLines(), 0u);
}

} // namespace
} // namespace mempod
