/** @file Unit tests for the deterministic RNG and its distributions. */
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace mempod {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(r.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowOneAlwaysZero)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextBelow(1), 0u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.nextRange(10, 12);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 12u);
        saw_lo |= v == 10;
        saw_hi |= v == 12;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBelowRoughlyUniform)
{
    Rng r(13);
    constexpr int kBuckets = 8;
    constexpr int kSamples = 80000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kSamples; ++i)
        ++counts[r.nextBelow(kBuckets)];
    for (int c : counts) {
        EXPECT_GT(c, kSamples / kBuckets * 0.9);
        EXPECT_LT(c, kSamples / kBuckets * 1.1);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(17);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolExtremes)
{
    Rng r(19);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Rng, BoolMatchesProbability)
{
    Rng r(23);
    int heads = 0;
    for (int i = 0; i < 50000; ++i)
        heads += r.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(heads / 50000.0, 0.3, 0.02);
}

TEST(Rng, ZipfRankZeroMostPopular)
{
    Rng r(29);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[r.nextZipf(100, 1.0)];
    // Monotone-ish decay: rank 0 clearly beats rank 10 beats rank 50.
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[50]);
}

TEST(Rng, ZipfStaysInDomain)
{
    Rng r(31);
    for (double s : {0.0, 0.5, 1.0, 1.5}) {
        for (int i = 0; i < 5000; ++i)
            EXPECT_LT(r.nextZipf(37, s), 37u);
    }
}

TEST(Rng, ZipfSkewIncreasesHeadMass)
{
    Rng r(37);
    auto head_mass = [&](double s) {
        int head = 0;
        for (int i = 0; i < 30000; ++i)
            head += r.nextZipf(1000, s) < 10 ? 1 : 0;
        return head;
    };
    const int low = head_mass(0.5);
    const int high = head_mass(1.2);
    EXPECT_GT(high, low);
}

TEST(Rng, ZipfDomainOne)
{
    Rng r(41);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextZipf(1, 1.0), 0u);
}

TEST(Rng, GeometricMeanApproximately)
{
    Rng r(43);
    double sum = 0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i)
        sum += static_cast<double>(r.nextGeometric(8.0));
    EXPECT_NEAR(sum / kN, 8.0, 0.5);
}

TEST(Rng, GeometricMinimumOne)
{
    Rng r(47);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.nextGeometric(1.0), 1u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.nextGeometric(3.0), 1u);
}

} // namespace
} // namespace mempod
