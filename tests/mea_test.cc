/** @file Unit tests for the MEA tracker (paper Algorithm 1). */
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "tracking/mea.h"

namespace mempod {
namespace {

TEST(Mea, InsertUntilFull)
{
    MeaTracker mea(4, 16);
    for (std::uint64_t id = 0; id < 4; ++id)
        mea.touch(id);
    EXPECT_EQ(mea.size(), 4u);
    for (std::uint64_t id = 0; id < 4; ++id)
        EXPECT_TRUE(mea.contains(id));
    EXPECT_EQ(mea.sweeps(), 0u);
}

TEST(Mea, PresentIdIncrements)
{
    MeaTracker mea(4, 16);
    mea.touch(7);
    mea.touch(7);
    mea.touch(7);
    const auto snap = mea.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].id, 7u);
    EXPECT_EQ(snap[0].count, 3u);
}

TEST(Mea, FullMapDecrementsAllAndEvictsZeros)
{
    MeaTracker mea(2, 16);
    mea.touch(1); // count 1
    mea.touch(2); // count 1
    mea.touch(2); // count 2
    mea.touch(3); // sweep: 1 evicted, 2 drops to 1; 3 NOT inserted
    EXPECT_EQ(mea.sweeps(), 1u);
    EXPECT_FALSE(mea.contains(1));
    EXPECT_FALSE(mea.contains(3));
    ASSERT_TRUE(mea.contains(2));
    EXPECT_EQ(mea.snapshot()[0].count, 1u);
    // Now there is room: the next new id claims a free entry.
    mea.touch(4);
    EXPECT_TRUE(mea.contains(4));
}

TEST(Mea, CountersSaturate)
{
    MeaTracker mea(4, 2); // max count 3
    for (int i = 0; i < 100; ++i)
        mea.touch(9);
    EXPECT_EQ(mea.snapshot()[0].count, 3u);
    EXPECT_EQ(mea.counterMax(), 3u);
}

TEST(Mea, SaturatedSmallCountersFavorRecency)
{
    // With 2-bit counters, an old heavy hitter can be displaced by a
    // burst of new pages after a few sweeps — the paper's key design
    // point (small counters bias toward recency).
    MeaTracker mea(2, 2);
    for (int i = 0; i < 1000; ++i)
        mea.touch(1); // saturates at 3 despite 1000 touches
    // Six distinct new pages: each sweep removes one count.
    for (std::uint64_t id = 100; id < 106; ++id)
        mea.touch(id);
    EXPECT_FALSE(mea.contains(1));
}

TEST(Mea, MajorityElementIsAlwaysFound)
{
    // Formal guarantee: an element occurring more than N/(K+1) times
    // is tracked at the end (with non-saturating counters).
    constexpr std::uint32_t kK = 8;
    constexpr int kN = 9000;
    Rng rng(5);
    std::vector<std::uint64_t> stream;
    // Majority element: strictly more than N/(K+1) = 1000 occurrences.
    for (int i = 0; i < 1400; ++i)
        stream.push_back(777);
    while (stream.size() < kN)
        stream.push_back(1000 + rng.nextBelow(4000));
    // Shuffle deterministically.
    for (std::size_t i = stream.size() - 1; i > 0; --i)
        std::swap(stream[i], stream[rng.nextBelow(i + 1)]);

    MeaTracker mea(kK, 32);
    for (auto id : stream)
        mea.touch(id);
    EXPECT_TRUE(mea.contains(777));
}

TEST(Mea, SnapshotSortedByCountThenId)
{
    MeaTracker mea(8, 16);
    for (int i = 0; i < 3; ++i)
        mea.touch(5);
    for (int i = 0; i < 3; ++i)
        mea.touch(2);
    mea.touch(9);
    const auto snap = mea.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].id, 2u); // ties broken by id
    EXPECT_EQ(snap[1].id, 5u);
    EXPECT_EQ(snap[2].id, 9u);
}

TEST(Mea, ResetClearsState)
{
    MeaTracker mea(4, 16);
    mea.touch(1);
    mea.touch(2);
    mea.reset();
    EXPECT_EQ(mea.size(), 0u);
    EXPECT_TRUE(mea.snapshot().empty());
}

TEST(Mea, StorageCostMatchesPaper)
{
    // 64 entries x (21-bit id + 2-bit counter) = 1472 bits = 184 B per
    // Pod (Section 5.2).
    MeaTracker mea(64, 2, 21);
    EXPECT_EQ(mea.storageBits(), 64u * 23);
    EXPECT_EQ(mea.storageBits() / 8, 184u);
}

TEST(Mea, NeverExceedsCapacity)
{
    MeaTracker mea(16, 4);
    Rng rng(11);
    for (int i = 0; i < 100000; ++i) {
        mea.touch(rng.nextBelow(1000));
        ASSERT_LE(mea.size(), 16u);
    }
}

TEST(Mea, TrackedIdsMatchesSnapshot)
{
    MeaTracker mea(8, 16);
    for (std::uint64_t id = 0; id < 5; ++id)
        mea.touch(id);
    auto ids = mea.trackedIds();
    EXPECT_EQ(ids.size(), mea.snapshot().size());
}

TEST(MeaDeathTest, ZeroEntriesRejected)
{
    EXPECT_DEATH(MeaTracker(0, 2), "at least one");
}

/** Sweep entry count and counter width: invariants hold everywhere. */
class MeaParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(MeaParamTest, HeavyHitterSurvivesUniformNoise)
{
    const auto [entries, bits] = GetParam();
    MeaTracker mea(entries, bits);
    Rng rng(17);
    // One page gets 30% of all traffic; noise is spread over 10000.
    for (int i = 0; i < 20000; ++i) {
        if (rng.nextBool(0.3))
            mea.touch(42);
        else
            mea.touch(100 + rng.nextBelow(10000));
    }
    EXPECT_TRUE(mea.contains(42))
        << "entries=" << entries << " bits=" << bits;
    EXPECT_LE(mea.size(), entries);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, MeaParamTest,
    ::testing::Combine(::testing::Values(16u, 64u, 128u, 512u),
                       ::testing::Values(2u, 4u, 8u, 16u)));

} // namespace
} // namespace mempod
