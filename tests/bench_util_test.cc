/**
 * @file
 * Tests for the bench/ scaffolding: CLI parsing (including rejection
 * of malformed input), workload-set selection, and the shared
 * mutex-guarded trace cache behind makeTrace().
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.h"

namespace mempod::bench {
namespace {

/** Build a mutable argv from string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args)
        : storage_(std::move(args))
    {
        ptrs_.push_back(const_cast<char *>("harness"));
        for (auto &s : storage_)
            ptrs_.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> storage_;
    std::vector<char *> ptrs_;
};

Options
parse(std::vector<std::string> args)
{
    Argv a(std::move(args));
    return parseOptions(a.argc(), a.argv(), "test");
}

TEST(ParseOptions, Defaults)
{
    const Options opt = parse({});
    EXPECT_FALSE(opt.full);
    EXPECT_EQ(opt.requests, 0u);
    EXPECT_EQ(opt.seed, 42u);
    EXPECT_EQ(opt.jobs, 0u); // 0 = hardware concurrency
    EXPECT_TRUE(opt.workloads.empty());
    EXPECT_EQ(opt.timingRequests(), 800'000u);
    EXPECT_EQ(opt.offlineRequests(), 600'000u);
}

TEST(ParseOptions, AllFlags)
{
    const Options opt = parse({"--full", "--requests", "12345",
                               "--seed", "7", "--jobs", "3",
                               "--workloads", "xalanc,mix5"});
    EXPECT_TRUE(opt.full);
    EXPECT_EQ(opt.requests, 12345u);
    EXPECT_EQ(opt.seed, 7u);
    EXPECT_EQ(opt.jobs, 3u);
    ASSERT_EQ(opt.workloads.size(), 2u);
    EXPECT_EQ(opt.workloads[0], "xalanc");
    EXPECT_EQ(opt.workloads[1], "mix5");
    EXPECT_EQ(opt.timingRequests(), 12345u);
    EXPECT_EQ(opt.offlineRequests(), 12345u);
}

TEST(ParseOptions, FullModeScales)
{
    const Options opt = parse({"--full"});
    EXPECT_EQ(opt.timingRequests(), 8'000'000u);
    EXPECT_EQ(opt.offlineRequests(), 4'000'000u);
}

TEST(ParseOptionsDeathTest, RejectsUnknownOption)
{
    EXPECT_EXIT(parse({"--frobnicate"}),
                ::testing::ExitedWithCode(2), "unknown option");
}

TEST(ParseOptionsDeathTest, RejectsMissingValue)
{
    EXPECT_EXIT(parse({"--requests"}), ::testing::ExitedWithCode(2),
                "needs a value");
}

TEST(ParseOptionsDeathTest, RejectsNonNumericRequests)
{
    EXPECT_EXIT(parse({"--requests", "lots"}),
                ::testing::ExitedWithCode(2), "unsigned integer");
}

TEST(ParseOptionsDeathTest, RejectsTrailingGarbage)
{
    EXPECT_EXIT(parse({"--seed", "12abc"}),
                ::testing::ExitedWithCode(2), "unsigned integer");
}

TEST(ParseOptionsDeathTest, RejectsZeroJobs)
{
    EXPECT_EXIT(parse({"--jobs", "0"}), ::testing::ExitedWithCode(2),
                "--jobs must be in");
}

TEST(ParseOptionsDeathTest, RejectsAbsurdJobs)
{
    EXPECT_EXIT(parse({"--jobs", "4096"}),
                ::testing::ExitedWithCode(2), "--jobs must be in");
}

TEST(ParseOptionsDeathTest, RejectsUnknownWorkload)
{
    EXPECT_EXIT(parse({"--workloads", "xalanc,bogus"}),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(ParseOptions, ArtifactFlags)
{
    const Options opt =
        parse({"--out", "/tmp", "--trace-sample", "16"});
    EXPECT_EQ(opt.artifacts.root, "/tmp");
    // Default emit set: stats, traces and decisions, no perf.
    EXPECT_TRUE(opt.artifacts.wantStats());
    EXPECT_TRUE(opt.artifacts.wantTraces());
    EXPECT_TRUE(opt.artifacts.wantDecisions());
    EXPECT_FALSE(opt.artifacts.wantPerf());
    EXPECT_EQ(opt.traceSample, 16u);
    // Defaults: no sink at all, 1-in-64 sampling.
    const Options def = parse({});
    EXPECT_FALSE(def.artifacts.enabled());
    EXPECT_EQ(def.traceSample, 64u);
}

TEST(ParseOptions, EmitSelectsArtifactKinds)
{
    const Options opt =
        parse({"--out", "/tmp", "--emit", "stats,perf"});
    EXPECT_TRUE(opt.artifacts.wantStats());
    EXPECT_FALSE(opt.artifacts.wantTraces());
    EXPECT_FALSE(opt.artifacts.wantDecisions());
    EXPECT_TRUE(opt.artifacts.wantPerf());
    // Asking for perf artifacts implies host profiling.
    EXPECT_TRUE(opt.perf);
}

TEST(ParseOptions, FidelityFlag)
{
    EXPECT_EQ(parse({}).fidelity, "detailed");
    EXPECT_EQ(parse({"--fidelity", "fast"}).fidelity, "fast");
    EXPECT_EQ(parse({"--fidelity", "sampled"}).fidelity, "sampled");
}

TEST(ParseOptions, SetCollectsOverridesInOrder)
{
    const Options opt = parse({"--set", "sim.sampling.measure_ps=1000",
                               "--set", "dram.model=fast"});
    ASSERT_EQ(opt.sets.size(), 2u);
    EXPECT_EQ(opt.sets[0].first, "sim.sampling.measure_ps");
    EXPECT_EQ(opt.sets[0].second, "1000");
    EXPECT_EQ(opt.sets[1].first, "dram.model");
    EXPECT_EQ(opt.sets[1].second, "fast");
}

TEST(ParseOptionsDeathTest, RejectsUnknownEmitKind)
{
    EXPECT_EXIT(parse({"--out", "/tmp", "--emit", "stats,bogus"}),
                ::testing::ExitedWithCode(2), "unknown artifact kind");
}

TEST(ParseOptionsDeathTest, EmitRequiresOut)
{
    EXPECT_EXIT(parse({"--emit", "stats"}),
                ::testing::ExitedWithCode(2), "--emit requires --out");
}

TEST(ParseOptionsDeathTest, RejectsUnknownFidelity)
{
    EXPECT_EXIT(parse({"--fidelity", "turbo"}),
                ::testing::ExitedWithCode(2), "--fidelity must be");
}

TEST(ParseOptionsDeathTest, RejectsZeroTraceSample)
{
    EXPECT_EXIT(parse({"--trace-sample", "0"}),
                ::testing::ExitedWithCode(2),
                "--trace-sample must be");
}

TEST(WorkloadSelection, SweepDefaultsToRepresentativeSet)
{
    const Options opt = parse({});
    EXPECT_EQ(opt.sweepWorkloads(),
              WorkloadCatalog::representativeNames());
}

TEST(WorkloadSelection, SweepFullCoversSuite)
{
    const Options opt = parse({"--full"});
    const std::size_t all = WorkloadCatalog::global().names().size();
    EXPECT_EQ(opt.sweepWorkloads().size(), all);
    EXPECT_EQ(opt.suiteWorkloads().size(), all);
}

TEST(WorkloadSelection, ExplicitListWinsEverywhere)
{
    const Options opt = parse({"--full", "--workloads", "mcf,mix9"});
    const std::vector<std::string> expected{"mcf", "mix9"};
    EXPECT_EQ(opt.sweepWorkloads(), expected);
    EXPECT_EQ(opt.suiteWorkloads(), expected);
}

TEST(WorkloadSelection, SuiteDefaultsToAll27)
{
    const Options opt = parse({});
    EXPECT_EQ(opt.suiteWorkloads().size(), 27u);
}

TEST(BenchTraceCache, MakeTraceMemoizes)
{
    const auto a = makeTrace("xalanc", 5000, 42);
    const auto b = makeTrace("xalanc", 5000, 42);
    EXPECT_EQ(a.get(), b.get()); // same cached immutable store
    EXPECT_EQ(a->records(), 5000u);

    const auto c = makeTrace("xalanc", 5000, 43);
    EXPECT_NE(a.get(), c.get()); // seed participates in the key
}

TEST(BenchTraceCache, RunnerOptionsShareTheCache)
{
    const Options opt = parse({"--jobs", "2"});
    const RunnerOptions ro = runnerOptions(opt);
    EXPECT_EQ(ro.cache, &traceCache());
    EXPECT_EQ(ro.jobs, 2u);
    EXPECT_TRUE(ro.progress);
}

TEST(JobHelpers, TimingJobCarriesHarnessScale)
{
    const Options opt = parse({"--requests", "4000", "--seed", "9"});
    const BatchJob job = timingJob(
        SimConfig::paper(Mechanism::kMemPod), "xalanc", opt, "MemPod");
    EXPECT_EQ(job.kind, JobKind::kTiming);
    EXPECT_EQ(job.workload, "xalanc");
    EXPECT_EQ(job.gen.totalRequests, 4000u);
    EXPECT_EQ(job.gen.seed, 9u);
    EXPECT_EQ(job.label, "MemPod");
    EXPECT_EQ(job.config.mechanism, Mechanism::kMemPod);
}

TEST(JobHelpers, StudyJobUsesOfflineScale)
{
    const Options opt = parse({});
    IntervalStudyConfig study;
    study.intervalRequests = 1234;
    const BatchJob job = studyJob(study, "mix5", opt);
    EXPECT_EQ(job.kind, JobKind::kIntervalStudy);
    EXPECT_EQ(job.study.intervalRequests, 1234u);
    EXPECT_EQ(job.gen.totalRequests, opt.offlineRequests());
}

TEST(JobHelpersDeathTest, NeedIsFatalOnFailedJob)
{
    JobResult r;
    r.ok = false;
    r.error = "boom";
    r.workload = "xalanc";
    r.label = "MemPod";
    EXPECT_EXIT(need(r), ::testing::ExitedWithCode(1), "boom");
    EXPECT_EXIT(needStudy(r), ::testing::ExitedWithCode(1), "boom");
}

TEST(Mean, HandlesEmptyAndValues)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

} // namespace
} // namespace mempod::bench
