/** @file Unit tests for trace records and the synthetic generator. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "trace/generator.h"
#include "trace/profiles.h"
#include "trace/record.h"

namespace mempod {
namespace {

GeneratorConfig
smallConfig()
{
    GeneratorConfig c;
    c.totalRequests = 20000;
    c.seed = 7;
    c.footprintScale = 0.02;
    return c;
}

std::vector<BenchmarkProfile>
eightCores(const std::string &name)
{
    return std::vector<BenchmarkProfile>(8, findProfile(name));
}

TEST(Generator, ProducesRequestedCount)
{
    const Trace t = generateTrace(eightCores("xalanc"), smallConfig());
    EXPECT_EQ(t.size(), 20000u);
}

TEST(Generator, TimeSorted)
{
    const Trace t = generateTrace(eightCores("mcf"), smallConfig());
    for (std::size_t i = 1; i < t.size(); ++i)
        ASSERT_GE(t[i].time, t[i - 1].time);
}

TEST(Generator, Deterministic)
{
    const Trace a = generateTrace(eightCores("lbm"), smallConfig());
    const Trace b = generateTrace(eightCores("lbm"), smallConfig());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].coreLocal, b[i].coreLocal);
        EXPECT_EQ(a[i].core, b[i].core);
    }
}

TEST(Generator, SeedChangesStream)
{
    GeneratorConfig c = smallConfig();
    const Trace a = generateTrace(eightCores("lbm"), c);
    c.seed = 8;
    const Trace b = generateTrace(eightCores("lbm"), c);
    int differing = 0;
    for (std::size_t i = 0; i < 100; ++i)
        differing += a[i].coreLocal != b[i].coreLocal ? 1 : 0;
    EXPECT_GT(differing, 50);
}

TEST(Generator, AllCoresRepresented)
{
    const Trace t = generateTrace(eightCores("bzip"), smallConfig());
    std::unordered_set<int> cores;
    for (const auto &r : t)
        cores.insert(r.core);
    EXPECT_EQ(cores.size(), 8u);
}

TEST(Generator, FootprintRespected)
{
    GeneratorConfig c = smallConfig();
    const auto &prof = findProfile("gcc");
    const std::uint64_t pages = std::max<std::uint64_t>(
        4, static_cast<std::uint64_t>(
               (prof.footprintBytes / kPageBytes) * c.footprintScale));
    const Trace t = generateTrace(eightCores("gcc"), c);
    for (const auto &r : t)
        ASSERT_LT(r.coreLocal / kPageBytes, pages);
}

TEST(Generator, WriteFractionApproximated)
{
    const Trace t = generateTrace(eightCores("lbm"), smallConfig());
    const TraceSummary s = summarize(t);
    const double wf = static_cast<double>(s.writes) / s.records;
    EXPECT_NEAR(wf, findProfile("lbm").writeFraction, 0.05);
}

TEST(Generator, RateQuotasFollowProfiles)
{
    // mcf (22/us) should contribute ~4.4x the records of gcc (5/us).
    std::vector<BenchmarkProfile> profs(4, findProfile("mcf"));
    for (int i = 0; i < 4; ++i)
        profs.push_back(findProfile("gcc"));
    const Trace t = generateTrace(profs, smallConfig());
    std::uint64_t mcf = 0, gcc = 0;
    for (const auto &r : t)
        (r.core < 4 ? mcf : gcc) += 1;
    EXPECT_NEAR(static_cast<double>(mcf) / gcc, 22.0 / 5.0, 0.5);
}

TEST(Generator, SkewedProfileConcentratesAccesses)
{
    // xalanc's top pages should take a large share of accesses.
    const Trace t = generateTrace(eightCores("xalanc"), smallConfig());
    std::unordered_map<std::uint64_t, int> counts;
    for (const auto &r : t)
        if (r.core == 0)
            ++counts[r.coreLocal / kPageBytes];
    int total = 0, max_count = 0;
    for (auto &[p, c] : counts) {
        total += c;
        max_count = std::max(max_count, c);
    }
    EXPECT_GT(max_count, total / 100); // hottest page >> uniform share
}

TEST(Generator, StreamingProfileSpreadsAccessesEvenly)
{
    // lbm (95% streaming) spreads work evenly; xalanc concentrates a
    // large share on its hottest page.
    auto top_share = [](const Trace &t) {
        std::unordered_map<std::uint64_t, int> counts;
        int total = 0;
        for (const auto &r : t) {
            if (r.core != 0)
                continue;
            ++counts[r.coreLocal / kPageBytes];
            ++total;
        }
        int max_count = 0;
        for (auto &[p, c] : counts)
            max_count = std::max(max_count, c);
        return static_cast<double>(max_count) / total;
    };
    const Trace lbm = generateTrace(eightCores("lbm"), smallConfig());
    const Trace xal = generateTrace(eightCores("xalanc"), smallConfig());
    EXPECT_GT(top_share(xal), 4 * top_share(lbm));
}

TEST(Generator, PhaseChangeShiftsHotSet)
{
    // Compare hot pages of the first vs last quarter for a profile
    // with phase changes: overlap should be partial.
    GeneratorConfig c = smallConfig();
    c.totalRequests = 60000;
    const Trace t = generateTrace(eightCores("xalanc"), c);
    auto top_pages = [&](std::size_t begin, std::size_t end) {
        std::unordered_map<std::uint64_t, int> counts;
        for (std::size_t i = begin; i < end; ++i)
            if (t[i].core == 0)
                ++counts[t[i].coreLocal / kPageBytes];
        std::vector<std::pair<int, std::uint64_t>> ranked;
        for (auto &[p, n] : counts)
            ranked.push_back({n, p});
        std::sort(ranked.rbegin(), ranked.rend());
        std::unordered_set<std::uint64_t> top;
        for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size());
             ++i)
            top.insert(ranked[i].second);
        return top;
    };
    const auto first = top_pages(0, t.size() / 4);
    const auto last = top_pages(3 * t.size() / 4, t.size());
    std::size_t overlap = 0;
    for (auto p : first)
        overlap += last.contains(p) ? 1 : 0;
    EXPECT_LT(overlap, first.size()); // some of the hot set moved
}

TEST(TraceIo, SaveLoadRoundTrip)
{
    const Trace t = generateTrace(eightCores("sphinx"), smallConfig());
    const std::string path = ::testing::TempDir() + "/trace.bin";
    saveTrace(t, path);
    const Trace loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(loaded[i].time, t[i].time);
        EXPECT_EQ(loaded[i].coreLocal, t[i].coreLocal);
        EXPECT_EQ(loaded[i].core, t[i].core);
        EXPECT_EQ(loaded[i].type, t[i].type);
    }
    std::remove(path.c_str());
}

TEST(TraceIoDeathTest, LoadRejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "/garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_DEATH(loadTrace(path), "not a mempod trace");
    std::remove(path.c_str());
}

TEST(TraceSummaryTest, CountsFields)
{
    Trace t;
    for (int i = 0; i < 10; ++i) {
        TraceRecord r;
        r.time = i * 100;
        r.coreLocal = (i % 3) * kPageBytes;
        r.type = i % 2 ? AccessType::kWrite : AccessType::kRead;
        t.push_back(r);
    }
    const TraceSummary s = summarize(t);
    EXPECT_EQ(s.records, 10u);
    EXPECT_EQ(s.writes, 5u);
    EXPECT_EQ(s.touchedPages, 3u);
    EXPECT_EQ(s.duration, 900u);
}

TEST(Profiles, AllSeventeenPresent)
{
    EXPECT_EQ(allProfiles().size(), 17u);
    for (const auto &p : allProfiles()) {
        EXPECT_GT(p.footprintBytes, 0u);
        EXPECT_GT(p.reqsPerUs, 0.0);
        EXPECT_GE(p.writeFraction, 0.0);
        EXPECT_LE(p.writeFraction, 1.0);
    }
}

TEST(ProfilesDeathTest, UnknownProfileFatal)
{
    EXPECT_DEATH(findProfile("doom3"), "unknown");
}

} // namespace
} // namespace mempod
