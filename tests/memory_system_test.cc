/** @file Unit tests for the MemorySystem facade. */
#include <gtest/gtest.h>

#include "common/event_queue.h"
#include "mem/memory_system.h"

namespace mempod {
namespace {

struct MemFixture : ::testing::Test
{
    EventQueue eq;
    MemorySystem mem{eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600()};

    TimePs
    access(Addr a, AccessType t = AccessType::kRead,
           Request::Kind k = Request::Kind::kDemand)
    {
        TimePs finish = 0;
        Request r;
        r.addr = a;
        r.type = t;
        r.kind = k;
        r.onComplete = [&](TimePs f) { finish = f; };
        mem.access(std::move(r));
        eq.runAll();
        return finish;
    }
};

TEST_F(MemFixture, BuildsAllChannels)
{
    EXPECT_EQ(mem.numChannels(), 12u);
    EXPECT_EQ(mem.channel(0).spec().name, "HBM-1GHz");
    EXPECT_EQ(mem.channel(8).spec().name, "DDR4-1600");
}

TEST_F(MemFixture, ChannelCapacityMatchesGeometry)
{
    EXPECT_EQ(mem.channel(0).spec().org.channelBytes(),
              SystemGeometry::tiny().fastBytes / 8);
    EXPECT_EQ(mem.channel(8).spec().org.channelBytes(),
              SystemGeometry::tiny().slowBytes / 4);
}

TEST_F(MemFixture, FastAccessFasterThanSlow)
{
    const TimePs fast = access(0);
    const TimePs t0 = eq.now();
    const TimePs slow = access(16_MiB); // first slow byte
    EXPECT_LT(fast, slow - t0);
}

TEST_F(MemFixture, RoutesToCorrectChannel)
{
    access(0); // fast page 0 -> fast channel 0
    EXPECT_EQ(mem.channel(0).stats().reads, 1u);
    access(kPageBytes); // fast page 1 -> fast channel 1
    EXPECT_EQ(mem.channel(1).stats().reads, 1u);
    access(16_MiB); // slow page 0 -> global channel 8
    EXPECT_EQ(mem.channel(8).stats().reads, 1u);
}

TEST_F(MemFixture, KindStatsAttributed)
{
    access(0, AccessType::kRead, Request::Kind::kDemand);
    access(16_MiB, AccessType::kRead, Request::Kind::kDemand);
    access(64, AccessType::kRead, Request::Kind::kMigration);
    access(128, AccessType::kWrite, Request::Kind::kBookkeeping);
    EXPECT_EQ(mem.stats().demandFast, 1u);
    EXPECT_EQ(mem.stats().demandSlow, 1u);
    EXPECT_EQ(mem.stats().migrationLines(), 1u);
    EXPECT_EQ(mem.stats().bookkeepingLines(), 1u);
}

TEST_F(MemFixture, InFlightTracksOutstanding)
{
    Request r;
    r.addr = 0;
    r.onComplete = [](TimePs) {};
    mem.access(std::move(r));
    EXPECT_EQ(mem.inFlight(), 1u);
    eq.runAll();
    EXPECT_EQ(mem.inFlight(), 0u);
}

TEST_F(MemFixture, RowHitRatePerTier)
{
    // Two hits in fast, all misses in slow.
    access(0);
    access(64);
    access(128);
    access(16_MiB);
    EXPECT_GT(mem.rowHitRate(MemTier::kFast), 0.5);
    EXPECT_EQ(mem.rowHitRate(MemTier::kSlow), 0.0);
    EXPECT_GT(mem.rowHitRate(), 0.0);
}

TEST(MemorySystem, SingleTierGeometryWorks)
{
    EventQueue eq;
    MemorySystem mem(eq, SystemGeometry::singleTier(64_MiB, 8),
                     DramSpec::hbm1GHz(), DramSpec::ddr4_1600());
    EXPECT_EQ(mem.numChannels(), 8u);
    TimePs finish = 0;
    Request r;
    r.addr = 64_MiB - 64;
    r.onComplete = [&](TimePs f) { finish = f; };
    mem.access(std::move(r));
    eq.runAll();
    EXPECT_GT(finish, 0u);
}

} // namespace
} // namespace mempod
