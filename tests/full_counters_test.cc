/** @file Unit tests for the Full Counters baseline tracker. */
#include <gtest/gtest.h>

#include "tracking/full_counters.h"

namespace mempod {
namespace {

TEST(FullCounters, ExactCounts)
{
    FullCounters fc(100, 16);
    for (int i = 0; i < 5; ++i)
        fc.touch(7);
    fc.touch(3);
    EXPECT_EQ(fc.count(7), 5u);
    EXPECT_EQ(fc.count(3), 1u);
    EXPECT_EQ(fc.count(0), 0u);
}

TEST(FullCounters, TouchedSetTracksNonZero)
{
    FullCounters fc(100, 16);
    fc.touch(1);
    fc.touch(1);
    fc.touch(2);
    EXPECT_EQ(fc.touchedCount(), 2u);
}

TEST(FullCounters, SnapshotSortedDescending)
{
    FullCounters fc(100, 16);
    for (int i = 0; i < 3; ++i)
        fc.touch(10);
    for (int i = 0; i < 7; ++i)
        fc.touch(20);
    fc.touch(30);
    const auto snap = fc.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].id, 20u);
    EXPECT_EQ(snap[1].id, 10u);
    EXPECT_EQ(snap[2].id, 30u);
}

TEST(FullCounters, TopNReturnsHottest)
{
    FullCounters fc(1000, 16);
    for (std::uint64_t id = 0; id < 50; ++id)
        for (std::uint64_t k = 0; k <= id; ++k)
            fc.touch(id);
    const auto top = fc.topN(5);
    ASSERT_EQ(top.size(), 5u);
    EXPECT_EQ(top[0].id, 49u);
    EXPECT_EQ(top[4].id, 45u);
    EXPECT_EQ(top[0].count, 50u);
}

TEST(FullCounters, TopNLargerThanTouchedReturnsAll)
{
    FullCounters fc(100, 16);
    fc.touch(1);
    fc.touch(2);
    EXPECT_EQ(fc.topN(50).size(), 2u);
}

TEST(FullCounters, ResetZeroesTouchedOnly)
{
    FullCounters fc(100, 16);
    fc.touch(5);
    fc.reset();
    EXPECT_EQ(fc.count(5), 0u);
    EXPECT_EQ(fc.touchedCount(), 0u);
    fc.touch(5);
    EXPECT_EQ(fc.count(5), 1u);
}

TEST(FullCounters, SaturatesAtWidth)
{
    FullCounters fc(10, 4); // max 15
    for (int i = 0; i < 100; ++i)
        fc.touch(0);
    EXPECT_EQ(fc.count(0), 15u);
}

TEST(FullCounters, StorageScalesLinearly)
{
    // The paper's 1+8 GB system: 4.5M pages x 16 bits = 9 MB.
    FullCounters fc(4718592, 16);
    EXPECT_EQ(fc.storageBits() / 8, 9437184u);
}

TEST(FullCountersDeathTest, OutOfRangeTouchPanics)
{
    FullCounters fc(10, 16);
    EXPECT_DEATH(fc.touch(10), "range");
}

TEST(FullCounters, TiesBrokenById)
{
    FullCounters fc(100, 16);
    fc.touch(9);
    fc.touch(4);
    const auto top = fc.topN(2);
    EXPECT_EQ(top[0].id, 4u);
    EXPECT_EQ(top[1].id, 9u);
}

} // namespace
} // namespace mempod
