/**
 * @file
 * Tests for the parallel BatchRunner: bit-identical results at any
 * worker count (the determinism guarantee the harnesses rely on),
 * submission-order results, per-job failure capture, and the
 * generate-once semantics of the shared TraceCache.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "sim/runner.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

SimConfig
tinyConfig(Mechanism m)
{
    SimConfig c = SimConfig::paper(m);
    c.geom = SystemGeometry::tiny();
    c.mempod.interval = 20_us;
    c.mempod.pod.meaEntries = 16;
    c.hma.interval = 200_us;
    c.hma.sortStall = 14_us;
    c.hma.threshold = 4;
    return c;
}

GeneratorConfig
tinyGen(std::uint64_t requests = 20000)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.footprintScale = 0.015; // fit the tiny geometry's core slices
    return gc;
}

BatchJob
tinyJob(Mechanism m, const std::string &workload)
{
    BatchJob job;
    job.config = tinyConfig(m);
    job.workload = workload;
    job.gen = tinyGen();
    job.label = mechanismName(m);
    return job;
}

RunnerOptions
withJobs(unsigned workers)
{
    RunnerOptions opt;
    opt.jobs = workers;
    return opt;
}

std::vector<BatchJob>
sampleJobs()
{
    std::vector<BatchJob> jobs;
    for (const char *w : {"xalanc", "mix5", "mcf"})
        for (Mechanism m : {Mechanism::kNoMigration, Mechanism::kMemPod})
            jobs.push_back(tinyJob(m, w));
    return jobs;
}

std::vector<JobResult>
runWith(unsigned workers)
{
    BatchRunner runner(withJobs(workers));
    for (auto &job : sampleJobs())
        runner.add(std::move(job));
    return runner.runAll();
}

TEST(BatchRunner, ResultsIdenticalAtAnyWorkerCount)
{
    const auto serial = runWith(1);
    const auto parallel = runWith(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        // Field-for-field, bit-exact (hex-float doubles included).
        EXPECT_EQ(serializeRunResult(serial[i].result),
                  serializeRunResult(parallel[i].result))
            << "job " << i << " diverges between --jobs 1 and 4";
    }
}

TEST(BatchRunner, ResultsComeBackInSubmissionOrder)
{
    const auto expected = sampleJobs();
    const auto results = runWith(4);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].workload, expected[i].workload);
        EXPECT_EQ(results[i].label, expected[i].label);
        EXPECT_EQ(results[i].result.workload, expected[i].workload);
    }
}

TEST(BatchRunner, ThrowingJobIsCapturedWithoutKillingTheBatch)
{
    BatchRunner runner(withJobs(4));
    runner.add(tinyJob(Mechanism::kNoMigration, "xalanc"));
    runner.add(tinyJob(Mechanism::kMemPod, "no-such-workload"));
    runner.add(tinyJob(Mechanism::kMemPod, "mix5"));
    const auto results = runner.runAll();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("unknown workload"),
              std::string::npos)
        << results[1].error;
    EXPECT_EQ(results[1].workload, "no-such-workload");
    EXPECT_TRUE(results[2].ok) << results[2].error;
    EXPECT_EQ(results[2].result.completed, 20000u);
}

TEST(BatchRunner, ExplicitTraceBypassesTheCache)
{
    auto trace = std::make_shared<const Trace>(
        WorkloadCatalog::global().build("xalanc", tinyGen()));
    BatchRunner runner(withJobs(2));
    BatchJob job = tinyJob(Mechanism::kNoMigration, "xalanc");
    job.trace = trace;
    runner.add(std::move(job));
    const auto results = runner.runAll();
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].result.completed, trace->size());
    EXPECT_EQ(runner.traceCache().size(), 0u);
}

TEST(BatchRunner, IntervalStudyJobsRunOnThePool)
{
    BatchRunner runner(withJobs(2));
    for (const char *w : {"xalanc", "mix5"}) {
        BatchJob job;
        job.kind = JobKind::kIntervalStudy;
        job.study.intervalRequests = 2000;
        job.workload = w;
        job.gen = tinyGen(30000);
        runner.add(std::move(job));
    }
    const auto results = runner.runAll();
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_GT(r.study.intervals, 0u);
    }
}

TEST(BatchRunner, RunAllIsRepeatable)
{
    BatchRunner runner(withJobs(2));
    runner.add(tinyJob(Mechanism::kNoMigration, "xalanc"));
    const auto first = runner.runAll();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(runner.pending(), 0u);
    runner.add(tinyJob(Mechanism::kMemPod, "xalanc"));
    const auto second = runner.runAll();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(second[0].ok) << second[0].error;
    EXPECT_EQ(second[0].result.mechanism,
              runSimulation(tinyConfig(Mechanism::kMemPod),
                            WorkloadCatalog::global().build("xalanc",
                                               tinyGen()),
                            "xalanc")
                  .mechanism);
}

TEST(TraceCache, GeneratesOncePerKey)
{
    TraceCache cache;
    const auto a = cache.get("xalanc", tinyGen());
    const auto b = cache.get("xalanc", tinyGen());
    EXPECT_EQ(a.get(), b.get()); // same immutable trace object
    EXPECT_EQ(cache.size(), 1u);

    GeneratorConfig other = tinyGen();
    other.seed = 7;
    const auto c = cache.get("xalanc", other);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(TraceCache, UnknownWorkloadThrows)
{
    TraceCache cache;
    EXPECT_THROW(cache.get("bogus", tinyGen()), std::invalid_argument);
    // A failed generation must not poison the key for valid retries
    // of *other* keys.
    EXPECT_NO_THROW(cache.get("xalanc", tinyGen()));
}

TEST(TraceCache, SharedAcrossRunners)
{
    TraceCache cache;
    RunnerOptions opt;
    opt.jobs = 2;
    opt.cache = &cache;
    for (int round = 0; round < 2; ++round) {
        BatchRunner runner(opt);
        runner.add(tinyJob(Mechanism::kNoMigration, "xalanc"));
        const auto results = runner.runAll();
        ASSERT_TRUE(results[0].ok) << results[0].error;
    }
    EXPECT_EQ(cache.size(), 1u); // second round reused the trace
}

TEST(RunnerOptions, ZeroJobsFallsBackToHardwareConcurrency)
{
    BatchRunner runner(withJobs(0));
    EXPECT_GE(runner.workerCount(), 1u);
}

/** Read every regular file in `dir` into a name -> bytes map. */
std::map<std::string, std::string>
slurpDir(const std::filesystem::path &dir)
{
    std::map<std::string, std::string> out;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        out[entry.path().filename().string()] = ss.str();
    }
    return out;
}

std::map<std::string, std::string>
runStatsBatch(unsigned workers, const std::filesystem::path &dir)
{
    RunnerOptions opt;
    opt.jobs = workers;
    opt.artifacts.root = dir.string();
    BatchRunner runner(opt);
    for (auto &job : sampleJobs()) {
        job.config.statsIntervalPs = 20_us;
        runner.add(std::move(job));
    }
    const auto results = runner.runAll();
    for (const auto &r : results)
        EXPECT_TRUE(r.ok) << r.error;
    return slurpDir(dir / "stats");
}

TEST(BatchRunner, StatsFilesIdenticalAtAnyWorkerCount)
{
    const auto base = std::filesystem::temp_directory_path() /
                      "mempod_stats_determinism";
    std::filesystem::remove_all(base);
    const auto serial = runStatsBatch(1, base / "jobs1");
    const auto parallel = runStatsBatch(2, base / "jobs2");

    // One .json and one .jsonl per job, named by submission index.
    ASSERT_EQ(serial.size(), 2 * sampleJobs().size());
    ASSERT_TRUE(serial.count("job000_NoMigration_xalanc.json"));
    ASSERT_TRUE(serial.count("job001_MemPod_xalanc.jsonl"));

    // Byte-identical file sets regardless of --jobs.
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[name, bytes] : serial) {
        auto it = parallel.find(name);
        ASSERT_NE(it, parallel.end()) << name;
        EXPECT_EQ(bytes, it->second)
            << name << " diverges between --jobs 1 and 2";
    }
    std::filesystem::remove_all(base);
}

TEST(BatchRunner, StatsFilesNumberAcrossRepeatedBatches)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "mempod_stats_batches";
    std::filesystem::remove_all(dir);
    RunnerOptions opt;
    opt.jobs = 2;
    opt.artifacts.root = dir.string();
    BatchRunner runner(opt);
    runner.add(tinyJob(Mechanism::kNoMigration, "xalanc"));
    runner.runAll();
    runner.add(tinyJob(Mechanism::kMemPod, "xalanc"));
    runner.runAll();
    // The second batch continues the numbering instead of clobbering
    // the first batch's job000.
    EXPECT_TRUE(std::filesystem::exists(
        dir / "stats" / "job000_NoMigration_xalanc.json"));
    EXPECT_TRUE(std::filesystem::exists(
        dir / "stats" / "job001_MemPod_xalanc.json"));
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace mempod
