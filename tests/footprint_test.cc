/** @file Unit tests for trace footprint/concentration analysis. */
#include <gtest/gtest.h>

#include "analysis/footprint.h"
#include "trace/generator.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

Trace
syntheticTrace(const std::vector<std::uint64_t> &pages)
{
    Trace t;
    for (std::size_t i = 0; i < pages.size(); ++i) {
        TraceRecord r;
        r.time = i * 100;
        r.coreLocal = pages[i] * kPageBytes;
        t.push_back(r);
    }
    return t;
}

TEST(Footprint, EmptyTrace)
{
    const FootprintStats s = analyzeFootprint({}, 100);
    EXPECT_EQ(s.totalAccesses, 0u);
    EXPECT_EQ(s.distinctPages, 0u);
}

TEST(Footprint, CountsDistinctPages)
{
    const FootprintStats s =
        analyzeFootprint(syntheticTrace({0, 1, 2, 0, 1, 0}), 100);
    EXPECT_EQ(s.totalAccesses, 6u);
    EXPECT_EQ(s.distinctPages, 3u);
}

TEST(Footprint, ConcentrationOfSinglePageIsTotal)
{
    const FootprintStats s =
        analyzeFootprint(syntheticTrace({5, 5, 5, 5}), 100);
    for (double c : s.concentration)
        EXPECT_DOUBLE_EQ(c, 1.0);
    EXPECT_DOUBLE_EQ(s.skewIndex, 0.0); // one page: no inequality
}

TEST(Footprint, ConcentrationCurveIsMonotone)
{
    GeneratorConfig gc;
    gc.totalRequests = 30000;
    gc.footprintScale = 0.05;
    const Trace t = WorkloadCatalog::global().build("xalanc", gc);
    const FootprintStats s = analyzeFootprint(t);
    for (std::size_t i = 1; i < s.concentration.size(); ++i)
        EXPECT_GE(s.concentration[i], s.concentration[i - 1]);
    EXPECT_LE(s.concentration.back(), 1.0 + 1e-9);
}

TEST(Footprint, SkewedWorkloadMoreConcentratedThanStreaming)
{
    GeneratorConfig gc;
    gc.totalRequests = 40000;
    gc.footprintScale = 0.05;
    const FootprintStats skewed = analyzeFootprint(
        WorkloadCatalog::global().build("xalanc", gc));
    const FootprintStats streaming = analyzeFootprint(
        WorkloadCatalog::global().build("lbm", gc));
    // Hottest 100 pages absorb far more of xalanc's traffic.
    EXPECT_GT(skewed.concentration[2], streaming.concentration[2]);
    EXPECT_GT(skewed.skewIndex, streaming.skewIndex);
}

TEST(Footprint, SingleTouchFraction)
{
    const FootprintStats s =
        analyzeFootprint(syntheticTrace({0, 0, 1, 2}), 100);
    // Pages 1 and 2 touched once; page 0 twice.
    EXPECT_DOUBLE_EQ(s.singleTouchFraction, 2.0 / 3.0);
}

TEST(Footprint, WorkingSetWindows)
{
    // Two full windows of 3 accesses: {0,1,2} then {0,0,0}.
    const FootprintStats s =
        analyzeFootprint(syntheticTrace({0, 1, 2, 0, 0, 0}), 3);
    ASSERT_EQ(s.workingSetPerWindow.size(), 2u);
    EXPECT_EQ(s.workingSetPerWindow[0], 3u);
    EXPECT_EQ(s.workingSetPerWindow[1], 1u);
    EXPECT_DOUBLE_EQ(s.meanWindowWorkingSet(), 2.0);
}

TEST(Footprint, CoresDistinguished)
{
    Trace t = syntheticTrace({0, 0});
    t[1].core = 1; // same page id, different core
    const FootprintStats s = analyzeFootprint(t, 100);
    EXPECT_EQ(s.distinctPages, 2u);
}

TEST(Footprint, SkewIndexOrdersUniformVsZipf)
{
    // Uniform: every page once.
    std::vector<std::uint64_t> uniform;
    for (std::uint64_t p = 0; p < 1000; ++p)
        uniform.push_back(p);
    // Zipf-ish: page p gets ~1000/(p+1) accesses.
    std::vector<std::uint64_t> zipf;
    for (std::uint64_t p = 0; p < 50; ++p)
        for (std::uint64_t k = 0; k < 1000 / (p + 1); ++k)
            zipf.push_back(p);
    const double u =
        analyzeFootprint(syntheticTrace(uniform), 100).skewIndex;
    const double z =
        analyzeFootprint(syntheticTrace(zipf), 100).skewIndex;
    EXPECT_LT(u, 0.05);
    EXPECT_GT(z, 0.3);
}

} // namespace
} // namespace mempod
