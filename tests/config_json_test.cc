/** @file Unit tests for SimConfig JSON round-trip and overrides. */
#include <gtest/gtest.h>

#include <string>

#include "sim/config.h"

namespace mempod {
namespace {

TEST(ConfigJson, RoundTripIsIdentity)
{
    SimConfig c = SimConfig::paper(Mechanism::kMemPod);
    c.mempod.interval = 12_us;
    c.mempod.pod.metaCacheEnabled = true;
    c.statsIntervalPs = 50_us;
    c.tracer.enabled = true;
    c.tracer.sampleEvery = 7;
    c.controller.closedPage = true;
    const std::string json = c.toJson();
    EXPECT_EQ(SimConfig::fromJson(json).toJson(), json);
}

TEST(ConfigJson, RoundTripPreservesEveryPreset)
{
    for (const SimConfig &c :
         {SimConfig::paper(Mechanism::kHma),
          SimConfig::future(Mechanism::kThm), SimConfig::fastOnly(),
          SimConfig::slowOnly(true)}) {
        const SimConfig back = SimConfig::fromJson(c.toJson());
        EXPECT_EQ(back.toJson(), c.toJson());
        EXPECT_EQ(back.mechanism, c.mechanism);
        EXPECT_EQ(back.geom.fastBytes, c.geom.fastBytes);
        EXPECT_EQ(back.near.name, c.near.name);
        EXPECT_EQ(back.near.timing.tCL, c.near.timing.tCL);
        EXPECT_EQ(back.far.org.busBits, c.far.org.busBits);
    }
}

TEST(ConfigJson, MissingKeysKeepDefaults)
{
    const SimConfig c = SimConfig::fromJson(
        R"({"mechanism": "THM", "thm": {"threshold": 5}})");
    EXPECT_EQ(c.mechanism, Mechanism::kThm);
    EXPECT_EQ(c.thm.threshold, 5u);
    // Untouched fields are the struct defaults.
    const SimConfig d;
    EXPECT_EQ(c.geom.fastBytes, d.geom.fastBytes);
    EXPECT_EQ(c.mempod.pod.meaEntries, d.mempod.pod.meaEntries);
}

TEST(ConfigJson, SetParsesEveryValueKind)
{
    SimConfig c;
    c.set("mechanism", "tlm"); // CLI alias, case-insensitive path
    EXPECT_EQ(c.mechanism, Mechanism::kNoMigration);
    c.set("mechanism", "CAMEO");
    EXPECT_EQ(c.mechanism, Mechanism::kCameo);
    c.set("mempod.interval", "250000000");
    EXPECT_EQ(c.mempod.interval, 250000000u);
    c.set("controller.fcfs", "true");
    EXPECT_TRUE(c.controller.fcfs);
    c.set("controller.fcfs", "0");
    EXPECT_FALSE(c.controller.fcfs);
    c.set("numCores", "4");
    EXPECT_EQ(c.numCores, 4u);
    c.set("dram.near.name", "custom");
    EXPECT_EQ(c.near.name, "custom");
}

TEST(ConfigJson, DramTimingKeysAreSweepable)
{
    SimConfig c;
    c.set("dram.near.tRCD_ps", "9000");
    EXPECT_EQ(c.near.timing.tRCD, 9000u);
    c.set("dram.far.tCL_ps", "20000");
    EXPECT_EQ(c.far.timing.tCL, 20000u);
    c.set("dram.near.banksPerRank", "32");
    EXPECT_EQ(c.near.org.banksPerRank, 32u);
    c.set("dram.far.clock_ps", "625");
    EXPECT_EQ(c.far.timing.clockPeriodPs, 625u);
}

TEST(ConfigJson, DramKeysRoundTripThroughJson)
{
    SimConfig c;
    c.near.timing.tRCD = 9999;
    c.far.org.rowsPerBank = 4242;
    const SimConfig back = SimConfig::fromJson(c.toJson());
    EXPECT_EQ(back.near.timing.tRCD, 9999u);
    EXPECT_EQ(back.far.org.rowsPerBank, 4242u);
    EXPECT_EQ(back.toJson(), c.toJson());
    // The schema is the flat dram.* namespace, not the old member
    // paths.
    EXPECT_NE(c.toJson().find("\"dram\""), std::string::npos);
    EXPECT_NE(c.toJson().find("\"tRCD_ps\""), std::string::npos);
}

TEST(ConfigJsonDeathTest, UnknownKeyPanics)
{
    SimConfig c;
    EXPECT_DEATH(c.set("mempod.bogus", "1"), "unknown config key");
    EXPECT_DEATH(c.set("dram.near.tXYZ_ps", "1"), "unknown config key");
    EXPECT_DEATH(c.set("fast.timing.tCL", "7"), "unknown config key");
    EXPECT_DEATH(
        (void)SimConfig::fromJson(R"({"nonsense": 1})"),
        "unknown config key");
}

TEST(ConfigJsonDeathTest, BadValuesPanic)
{
    SimConfig c;
    EXPECT_DEATH(c.set("numCores", "lots"), "not a non-negative");
    EXPECT_DEATH(c.set("numCores", "4096"), "out of range");
    EXPECT_DEATH(c.set("controller.fcfs", "maybe"), "not a boolean");
    EXPECT_DEATH(c.set("mechanism", "quantum"), "unknown mechanism");
}

TEST(ConfigJsonDeathTest, MalformedJsonPanics)
{
    EXPECT_DEATH((void)SimConfig::fromJson("{"), "fromJson");
    EXPECT_DEATH((void)SimConfig::fromJson(R"({"geom": [1]})"),
                 "fromJson");
    EXPECT_DEATH((void)SimConfig::fromJson(R"({"numCores": 1} x)"),
                 "trailing");
}

} // namespace
} // namespace mempod
