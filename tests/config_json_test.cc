/** @file Unit tests for SimConfig JSON round-trip and overrides. */
#include <gtest/gtest.h>

#include <string>

#include "sim/config.h"

namespace mempod {
namespace {

TEST(ConfigJson, RoundTripIsIdentity)
{
    SimConfig c = SimConfig::paper(Mechanism::kMemPod);
    c.mempod.interval = 12_us;
    c.mempod.pod.metaCacheEnabled = true;
    c.statsIntervalPs = 50_us;
    c.tracer.enabled = true;
    c.tracer.sampleEvery = 7;
    c.controller.closedPage = true;
    const std::string json = c.toJson();
    EXPECT_EQ(SimConfig::fromJson(json).toJson(), json);
}

TEST(ConfigJson, RoundTripPreservesEveryPreset)
{
    for (const SimConfig &c :
         {SimConfig::paper(Mechanism::kHma),
          SimConfig::future(Mechanism::kThm), SimConfig::fastOnly(),
          SimConfig::slowOnly(true)}) {
        const SimConfig back = SimConfig::fromJson(c.toJson());
        EXPECT_EQ(back.toJson(), c.toJson());
        EXPECT_EQ(back.mechanism, c.mechanism);
        EXPECT_EQ(back.geom.fastBytes, c.geom.fastBytes);
        EXPECT_EQ(back.fast.name, c.fast.name);
        EXPECT_EQ(back.fast.timing.tCL, c.fast.timing.tCL);
        EXPECT_EQ(back.slow.org.busBits, c.slow.org.busBits);
    }
}

TEST(ConfigJson, MissingKeysKeepDefaults)
{
    const SimConfig c = SimConfig::fromJson(
        R"({"mechanism": "THM", "thm": {"threshold": 5}})");
    EXPECT_EQ(c.mechanism, Mechanism::kThm);
    EXPECT_EQ(c.thm.threshold, 5u);
    // Untouched fields are the struct defaults.
    const SimConfig d;
    EXPECT_EQ(c.geom.fastBytes, d.geom.fastBytes);
    EXPECT_EQ(c.mempod.pod.meaEntries, d.mempod.pod.meaEntries);
}

TEST(ConfigJson, SetParsesEveryValueKind)
{
    SimConfig c;
    c.set("mechanism", "tlm"); // CLI alias, case-insensitive path
    EXPECT_EQ(c.mechanism, Mechanism::kNoMigration);
    c.set("mechanism", "CAMEO");
    EXPECT_EQ(c.mechanism, Mechanism::kCameo);
    c.set("mempod.interval", "250000000");
    EXPECT_EQ(c.mempod.interval, 250000000u);
    c.set("controller.fcfs", "true");
    EXPECT_TRUE(c.controller.fcfs);
    c.set("controller.fcfs", "0");
    EXPECT_FALSE(c.controller.fcfs);
    c.set("numCores", "4");
    EXPECT_EQ(c.numCores, 4u);
    c.set("fast.name", "custom");
    EXPECT_EQ(c.fast.name, "custom");
}

TEST(ConfigJsonDeathTest, UnknownKeyPanics)
{
    SimConfig c;
    EXPECT_DEATH(c.set("mempod.bogus", "1"), "unknown config key");
    EXPECT_DEATH(
        (void)SimConfig::fromJson(R"({"nonsense": 1})"),
        "unknown config key");
}

TEST(ConfigJsonDeathTest, BadValuesPanic)
{
    SimConfig c;
    EXPECT_DEATH(c.set("numCores", "lots"), "not a non-negative");
    EXPECT_DEATH(c.set("numCores", "4096"), "out of range");
    EXPECT_DEATH(c.set("controller.fcfs", "maybe"), "not a boolean");
    EXPECT_DEATH(c.set("mechanism", "quantum"), "unknown mechanism");
}

TEST(ConfigJsonDeathTest, MalformedJsonPanics)
{
    EXPECT_DEATH((void)SimConfig::fromJson("{"), "fromJson");
    EXPECT_DEATH((void)SimConfig::fromJson(R"({"geom": [1]})"),
                 "fromJson");
    EXPECT_DEATH((void)SimConfig::fromJson(R"({"numCores": 1} x)"),
                 "trailing");
}

} // namespace
} // namespace mempod
