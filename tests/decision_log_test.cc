/**
 * @file
 * Unit tests for the migration decision ledger (recording, outcomes,
 * realized-benefit watch windows, ping-pong detection) and end-to-end
 * determinism of its JSONL export across PDES shard counts.
 */
#include <gtest/gtest.h>

#include "common/decision_log.h"
#include "sim/simulation.h"
#include "sim/stats_writer.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

constexpr TimePs kEpoch = 1000; // 1 ns epochs for unit tests

TEST(DecisionLog, RecordCapturesDecisionTimeState)
{
    DecisionLog log(kEpoch, 16.5);
    const std::uint64_t id = log.record(/*pod=*/2, /*page=*/70,
                                        /*victim=*/12,
                                        /*trackerCount=*/3,
                                        /*now=*/2500);
    ASSERT_EQ(log.size(), 1u);
    const DecisionLog::Record &r = log.records()[0];
    EXPECT_EQ(id, 0u);
    EXPECT_EQ(r.seq, 0u);
    EXPECT_EQ(r.timePs, 2500u);
    EXPECT_EQ(r.epoch, 2u); // 2500 / 1000
    EXPECT_EQ(r.pod, 2u);
    EXPECT_EQ(r.page, 70u);
    EXPECT_EQ(r.victim, 12u);
    EXPECT_EQ(r.trackerCount, 3u);
    EXPECT_DOUBLE_EQ(r.predictedBenefitNs, 3 * 16.5);
    EXPECT_EQ(r.outcome, DecisionLog::Outcome::kPending);
}

TEST(DecisionLog, CommitAndAbortResolveOutcomes)
{
    DecisionLog log(kEpoch, 1.0);
    const auto a = log.record(0, 1, 2, 1, 100);
    const auto b = log.record(0, 3, 4, 1, 100);
    log.commit(a, 700);
    log.abort(b, 800);
    EXPECT_EQ(log.committedCount(), 1u);
    EXPECT_EQ(log.abortedCount(), 1u);
    EXPECT_EQ(log.records()[a].outcome, DecisionLog::Outcome::kCompleted);
    EXPECT_EQ(log.records()[a].commitPs, 700u);
    EXPECT_EQ(log.records()[b].outcome, DecisionLog::Outcome::kAborted);
    EXPECT_STREQ(DecisionLog::outcomeName(log.records()[b].outcome),
                 "aborted");
}

TEST(DecisionLog, RealizedHitsCountNearTierTouchesInsideOneEpoch)
{
    DecisionLog log(kEpoch, 1.0);
    const auto id = log.record(1, 42, 7, 5, 0);
    log.commit(id, 500); // window: [500, 1500)
    log.noteAccess(1, 42, /*nearTier=*/true, 600);
    log.noteAccess(1, 42, /*nearTier=*/false, 700); // far touch: no credit
    log.noteAccess(1, 42, true, 1499);
    EXPECT_EQ(log.records()[id].realizedNearHits, 2u);
    // Different pod or page: no credit.
    log.noteAccess(0, 42, true, 800);
    log.noteAccess(1, 43, true, 800);
    EXPECT_EQ(log.records()[id].realizedNearHits, 2u);
}

TEST(DecisionLog, WatchWindowExpiresAfterOneEpoch)
{
    DecisionLog log(kEpoch, 1.0);
    const auto id = log.record(0, 9, 1, 2, 0);
    log.commit(id, 1000); // window closes at 2000
    log.noteAccess(0, 9, true, 2000); // lazy expiry, no credit
    log.noteAccess(0, 9, true, 1500); // window already erased
    EXPECT_EQ(log.records()[id].realizedNearHits, 0u);
}

TEST(DecisionLog, PingPongMarksTheEarlierDecision)
{
    DecisionLog log(kEpoch, 1.0);
    // Page 5 migrates in, then is evicted again 1.5 epochs later.
    const auto first = log.record(0, 5, 1, 4, 0);
    log.commit(first, 1000);
    const auto second = log.record(0, 8, /*victim=*/5, 4, 2400);
    log.commit(second, 2500); // 1500 ps after first: within 2 epochs
    EXPECT_TRUE(log.records()[first].pingPong);
    EXPECT_FALSE(log.records()[second].pingPong);
    EXPECT_EQ(log.pingPongCount(), 1u);
}

TEST(DecisionLog, SlowEvictionIsNotAPingPong)
{
    DecisionLog log(kEpoch, 1.0);
    const auto first = log.record(0, 5, 1, 4, 0);
    log.commit(first, 1000);
    const auto second = log.record(0, 8, /*victim=*/5, 4, 9000);
    log.commit(second, 9100); // 8100 ps later: > 2 epochs, fine
    EXPECT_FALSE(log.records()[first].pingPong);
    EXPECT_EQ(log.pingPongCount(), 0u);
}

SimConfig
tinyConfig(Mechanism m, std::uint32_t shards)
{
    SimConfig c = SimConfig::paper(m);
    c.geom = SystemGeometry::tiny();
    c.mempod.interval = 20_us;
    c.mempod.pod.meaEntries = 16;
    c.shards = shards;
    return c;
}

Trace
tinyTrace(std::uint64_t requests = 30000)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.footprintScale = 0.015;
    return WorkloadCatalog::global().build("xalanc", gc);
}

TEST(DecisionLog, LedgerJsonlIsByteIdenticalAcrossShardCounts)
{
    const Trace t = tinyTrace();
    std::string serial, sharded;
    for (std::uint32_t shards : {0u, 2u}) {
        Simulation sim(tinyConfig(Mechanism::kMemPod, shards));
        const RunResult r = sim.run(t, "xalanc");
        ASSERT_NE(sim.decisionLog(), nullptr);
        EXPECT_GT(sim.decisionLog()->size(), 0u);
        // Final invariant: every committed decision is a migration.
        EXPECT_EQ(sim.decisionLog()->committedCount(),
                  r.migration.migrations);
        (shards ? sharded : serial) = StatsWriter::decisionsToJsonl(
            *sim.decisionLog(), "xalanc", r.mechanism);
    }
    EXPECT_EQ(serial, sharded);
    EXPECT_NE(serial.find("\"schema\":\"mempod-decisions-v1\""),
              std::string::npos);
}

TEST(DecisionLog, EveryMechanismFeedsTheSharedLedger)
{
    const Trace t = tinyTrace();
    for (Mechanism m : {Mechanism::kMemPod, Mechanism::kHma,
                        Mechanism::kThm, Mechanism::kCameo}) {
        Simulation sim(tinyConfig(m, 0));
        const RunResult r = sim.run(t, "xalanc");
        ASSERT_NE(sim.decisionLog(), nullptr) << mechanismName(m);
        EXPECT_EQ(sim.decisionLog()->committedCount(),
                  r.migration.migrations)
            << mechanismName(m);
        if (r.migration.migrations > 0)
            EXPECT_GT(sim.decisionLog()->size(), 0u) << mechanismName(m);
    }
}

TEST(DecisionLog, DisabledByConfigLeavesNoLedger)
{
    SimConfig c = tinyConfig(Mechanism::kMemPod, 0);
    c.decisionsEnabled = false;
    Simulation sim(c);
    sim.run(tinyTrace(10000), "xalanc");
    EXPECT_EQ(sim.decisionLog(), nullptr);
}

TEST(DecisionLog, BenefitPerTouchMatchesSpecGap)
{
    const SimConfig c = tinyConfig(Mechanism::kMemPod, 0);
    const double gap_ps =
        static_cast<double>((c.far.timing.tRCD + c.far.timing.tCL +
                             c.far.timing.tBL) -
                            (c.near.timing.tRCD + c.near.timing.tCL +
                             c.near.timing.tBL));
    EXPECT_DOUBLE_EQ(Simulation::benefitPerTouchNs(c), gap_ps / 1000.0);
}

} // namespace
} // namespace mempod
