/** @file Unit tests for the per-Pod remap table. */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/remap_table.h"

namespace mempod {
namespace {

TEST(RemapTable, StartsAsIdentity)
{
    RemapTable rt(100, 10);
    EXPECT_TRUE(rt.isIdentity());
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(rt.locationOf(i), i);
        EXPECT_EQ(rt.residentOf(i), i);
    }
}

TEST(RemapTable, SwapExchangesLocations)
{
    RemapTable rt(100, 10);
    rt.swap(3, 50);
    EXPECT_EQ(rt.locationOf(3), 50u);
    EXPECT_EQ(rt.locationOf(50), 3u);
    EXPECT_EQ(rt.residentOf(3), 50u);
    EXPECT_EQ(rt.residentOf(50), 3u);
    EXPECT_FALSE(rt.isIdentity());
}

TEST(RemapTable, DoubleSwapRestoresIdentity)
{
    RemapTable rt(100, 10);
    rt.swap(3, 50);
    rt.swap(3, 50);
    EXPECT_TRUE(rt.isIdentity());
}

TEST(RemapTable, InFastReflectsLocationNotOrigin)
{
    RemapTable rt(100, 10);
    EXPECT_TRUE(rt.inFast(5));
    EXPECT_FALSE(rt.inFast(50));
    rt.swap(5, 50); // 50 moves into slot 5, 5 moves out
    EXPECT_FALSE(rt.inFast(5));
    EXPECT_TRUE(rt.inFast(50));
}

TEST(RemapTable, ChainedSwapsTrackCorrectly)
{
    RemapTable rt(10, 2);
    rt.swap(0, 5); // 5 -> slot 0, 0 -> slot 5
    rt.swap(5, 7); // 7 -> slot 0, 5 -> slot 7
    EXPECT_EQ(rt.locationOf(7), 0u);
    EXPECT_EQ(rt.locationOf(5), 7u);
    EXPECT_EQ(rt.locationOf(0), 5u);
    EXPECT_EQ(rt.residentOf(0), 7u);
    rt.checkConsistency();
}

TEST(RemapTable, PermutationInvariantUnderRandomSwaps)
{
    RemapTable rt(512, 64);
    Rng rng(23);
    for (int i = 0; i < 10000; ++i)
        rt.swap(rng.nextBelow(512), rng.nextBelow(512));
    rt.checkConsistency(); // panics on corruption
    // Every slot has exactly one resident.
    std::vector<bool> seen(512, false);
    for (std::uint64_t s = 0; s < 512; ++s) {
        const auto r = rt.residentOf(s);
        EXPECT_FALSE(seen[r]);
        seen[r] = true;
    }
}

TEST(RemapTable, SelfSwapIsNoOp)
{
    RemapTable rt(16, 4);
    rt.swap(3, 3);
    EXPECT_TRUE(rt.isIdentity());
    rt.checkConsistency();
}

TEST(RemapTable, StorageBitsMatchPaperScale)
{
    // 1.125M pages per pod -> 21-bit entries; ~2.95 MB per pod, the
    // paper's "2.8 MB / Pod" (they quote 21 bits x 1.1M).
    RemapTable rt(1179648, 131072);
    EXPECT_EQ(rt.storageBitsRemap(), 1179648ull * 21);
    const double mib =
        static_cast<double>(rt.storageBitsRemap()) / 8 / (1 << 20);
    EXPECT_NEAR(mib, 2.95, 0.05);
    // Inverted table covers only fast slots.
    EXPECT_EQ(rt.storageBitsInverted(), 131072ull * 21);
}

TEST(RemapTableDeathTest, OutOfRangePanics)
{
    RemapTable rt(10, 2);
    EXPECT_DEATH(rt.locationOf(10), "range");
    EXPECT_DEATH(rt.swap(0, 10), "range");
}

} // namespace
} // namespace mempod
