/** @file Unit tests for the CAMEO baseline. */
#include <gtest/gtest.h>

#include "baselines/cameo.h"
#include "baselines/thm.h"
#include "common/rng.h"

namespace mempod {
namespace {

struct CameoFixture : ::testing::Test
{
    EventQueue eq;
    MemorySystem mem{eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600()};
    std::uint64_t fastLines = SystemGeometry::tiny().fastBytes /
                              kLineBytes;

    /** Home address of member m in group g (m = 0 is the fast line). */
    Addr
    lineAddr(std::uint64_t g, std::uint32_t m)
    {
        if (m == 0)
            return g * kLineBytes;
        // Contiguous grouping: slow lines [8g, 8g+8) form group g.
        return (fastLines + g * 8 + (m - 1)) * kLineBytes;
    }

    void
    touch(CameoManager &mgr, Addr a, int times = 1)
    {
        for (int i = 0; i < times; ++i)
            mgr.handleDemand({.homeAddr = a, .arrival = eq.now()});
        eq.runAll();
    }
};

TEST_F(CameoFixture, GroupGeometry)
{
    CameoManager mgr(eq, mem, CameoParams{});
    EXPECT_EQ(mgr.numGroups(), fastLines);
    EXPECT_EQ(mgr.slowPerGroup(), 8u);
}

TEST_F(CameoFixture, FastAccessCausesNoSwap)
{
    CameoManager mgr(eq, mem, CameoParams{});
    touch(mgr, lineAddr(5, 0), 10);
    EXPECT_EQ(mgr.migrationStats().migrations, 0u);
}

TEST_F(CameoFixture, EverySlowAccessTriggersASwap)
{
    CameoManager mgr(eq, mem, CameoParams{});
    touch(mgr, lineAddr(5, 1), 1);
    EXPECT_EQ(mgr.migrationStats().migrations, 1u);
    EXPECT_EQ(mgr.slotOfMember(5, 1), 0u); // line now in fast
    EXPECT_EQ(mgr.slotOfMember(5, 0), 1u); // original line displaced
    // Swaps move two 64 B lines, not pages.
    EXPECT_EQ(mgr.migrationStats().bytesMoved, 2 * kLineBytes);
}

TEST_F(CameoFixture, PingPongThrashing)
{
    // Two hot lines in one congruence group swap back and forth on
    // every access — CAMEO's pathology at high capacity ratios.
    CameoManager mgr(eq, mem, CameoParams{});
    for (int i = 0; i < 10; ++i) {
        touch(mgr, lineAddr(3, 1), 1);
        touch(mgr, lineAddr(3, 2), 1);
    }
    EXPECT_EQ(mgr.migrationStats().migrations, 20u);
}

TEST_F(CameoFixture, WastedMigrationDetected)
{
    CameoManager mgr(eq, mem, CameoParams{});
    touch(mgr, lineAddr(7, 1), 1); // member 1 migrates in
    touch(mgr, lineAddr(7, 2), 1); // evicts member 1, never touched
    EXPECT_EQ(mgr.migrationStats().wastedMigrations, 1u);
    // Using the fast-resident line before the next eviction is not
    // wasted.
    touch(mgr, lineAddr(7, 2), 1); // hit on fast
    touch(mgr, lineAddr(7, 3), 1); // evicts member 2 (was used)
    EXPECT_EQ(mgr.migrationStats().wastedMigrations, 1u);
}

TEST_F(CameoFixture, GroupsAreIndependent)
{
    CameoManager mgr(eq, mem, CameoParams{});
    touch(mgr, lineAddr(1, 4), 1);
    touch(mgr, lineAddr(2, 6), 1);
    EXPECT_EQ(mgr.slotOfMember(1, 4), 0u);
    EXPECT_EQ(mgr.slotOfMember(2, 6), 0u);
    EXPECT_EQ(mgr.slotOfMember(3, 0), 0u); // untouched group: identity
}

TEST_F(CameoFixture, DemandsServedFromCurrentLocation)
{
    CameoManager mgr(eq, mem, CameoParams{});
    touch(mgr, lineAddr(9, 1), 1); // migrate in
    const auto fast_before = mem.stats().demandFast;
    touch(mgr, lineAddr(9, 1), 1); // now a fast hit
    EXPECT_EQ(mem.stats().demandFast, fast_before + 1);
}

TEST_F(CameoFixture, SwapBackpressureSkipsNotBlocks)
{
    CameoParams p;
    p.maxQueuedSwaps = 0; // every swap skipped
    CameoManager mgr(eq, mem, p);
    int done = 0;
    mgr.handleDemand({.homeAddr = lineAddr(2, 1),
                      .done = [&](TimePs) { ++done; }});
    eq.runAll();
    EXPECT_EQ(done, 1); // demand still served
    EXPECT_EQ(mgr.migrationStats().migrations, 0u);
    EXPECT_EQ(mgr.swapsSkipped(), 1u);
}

TEST_F(CameoFixture, LocationStateConsistentAfterManySwaps)
{
    CameoManager mgr(eq, mem, CameoParams{});
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        touch(mgr, lineAddr(4, 1 + rng.nextBelow(8)), 1);
    // The 9 members occupy 9 distinct slots.
    bool slot_seen[9] = {};
    for (std::uint32_t m = 0; m <= 8; ++m) {
        const std::uint32_t s = mgr.slotOfMember(4, m);
        ASSERT_LT(s, 9u);
        EXPECT_FALSE(slot_seen[s]);
        slot_seen[s] = true;
    }
}

TEST_F(CameoFixture, RemapStorageMuchLargerThanThm)
{
    EventQueue eq2;
    MemorySystem paper_mem(eq2, SystemGeometry::paper(),
                           DramSpec::hbm1GHz(), DramSpec::ddr4_1600());
    CameoManager mgr(eq2, paper_mem, CameoParams{});
    // Line-granularity bookkeeping is orders of magnitude beyond
    // THM's per-segment pointer (Table 1's 72 kB vs 1.5 kB contrast):
    // ~72 MB of full line-location state vs 256 kB for THM.
    EXPECT_GT(mgr.remapStorageBits(), 50ull * 8 * 1024 * 1024);
    ThmManager thm(eq2, paper_mem, ThmParams{});
    EXPECT_GT(mgr.remapStorageBits(), 100 * thm.remapStorageBits());
}

} // namespace
} // namespace mempod
