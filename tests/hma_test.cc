/** @file Unit tests for the HMA baseline. */
#include <gtest/gtest.h>

#include "baselines/hma.h"

namespace mempod {
namespace {

struct HmaFixture : ::testing::Test
{
    EventQueue eq;
    MemorySystem mem{eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600()};

    HmaParams
    params()
    {
        HmaParams p;
        p.interval = 100_us;
        p.sortStall = 7_us;
        p.threshold = 3;
        p.maxMigrationsPerInterval = 64;
        return p;
    }

    void
    touch(HmaManager &mgr, PageId page, int times)
    {
        for (int i = 0; i < times; ++i)
            mgr.handleDemand({.homeAddr = AddressMap::addrOfPage(page),
                              .arrival = eq.now()});
        // Drain the demands without following the (self-rescheduling)
        // interval timer chain: a bounded time window suffices.
        eq.runUntil(eq.now() + 5_us);
    }
};

TEST_F(HmaFixture, CountsEveryPage)
{
    HmaManager mgr(eq, mem, params());
    touch(mgr, 100, 5);
    EXPECT_EQ(mgr.counters().count(100), 5u);
}

TEST_F(HmaFixture, EpochMigratesHotPages)
{
    HmaManager mgr(eq, mem, params());
    mgr.start();
    const PageId hot = mem.geom().fastPages() + 12; // a slow page
    touch(mgr, hot, 10);
    eq.runUntil(150_us); // one epoch boundary
    EXPECT_GE(mgr.migrationStats().migrations, 1u);
    EXPECT_TRUE(mgr.placement().inFast(hot));
}

TEST_F(HmaFixture, BelowThresholdPagesStay)
{
    HmaManager mgr(eq, mem, params());
    mgr.start();
    const PageId cold = mem.geom().fastPages() + 30;
    touch(mgr, cold, 2); // threshold is 3
    eq.runUntil(150_us);
    EXPECT_FALSE(mgr.placement().inFast(cold));
    EXPECT_EQ(mgr.migrationStats().migrations, 0u);
}

TEST_F(HmaFixture, SortStallHookReceivesDurationEachEpoch)
{
    HmaManager mgr(eq, mem, params());
    int calls = 0;
    TimePs duration = 0;
    mgr.setCoreStallHook([&](TimePs d) {
        ++calls;
        duration = d;
    });
    mgr.start();
    eq.runUntil(210_us);
    EXPECT_EQ(calls, 2); // epochs at 100 us and 200 us
    EXPECT_EQ(duration, 7_us);
}

TEST_F(HmaFixture, CountersResetEachEpoch)
{
    HmaManager mgr(eq, mem, params());
    mgr.start();
    touch(mgr, 50, 5);
    eq.runUntil(110_us);
    EXPECT_EQ(mgr.counters().count(50), 0u);
}

TEST_F(HmaFixture, MigrationCapBoundsEpochWork)
{
    HmaParams p = params();
    p.maxMigrationsPerInterval = 2;
    HmaManager mgr(eq, mem, p);
    mgr.start();
    for (std::uint64_t k = 0; k < 10; ++k)
        touch(mgr, mem.geom().fastPages() + k, 5);
    eq.runUntil(200_us);
    EXPECT_LE(mgr.migrationStats().migrations, 2u);
}

TEST_F(HmaFixture, AnyToAnyFlexibility)
{
    // Unlike THM/CAMEO, HMA may place any slow page in any fast slot:
    // two hot pages that would share a THM segment both migrate.
    HmaManager mgr(eq, mem, params());
    mgr.start();
    const PageId a = mem.geom().fastPages() + 7 * 8;
    const PageId b = a + 1; // same (contiguous) THM segment
    touch(mgr, a, 8);
    touch(mgr, b, 8);
    eq.runUntil(200_us);
    EXPECT_TRUE(mgr.placement().inFast(a));
    EXPECT_TRUE(mgr.placement().inFast(b));
}

TEST_F(HmaFixture, HotFastResidentsNotEvictedForColderPages)
{
    HmaManager mgr(eq, mem, params());
    mgr.start();
    const PageId hot = mem.geom().fastPages() + 3;
    touch(mgr, hot, 20);
    eq.runUntil(150_us);
    ASSERT_TRUE(mgr.placement().inFast(hot));
    // Next epoch: hot stays hot, another page is mildly hot.
    touch(mgr, hot, 20);
    touch(mgr, mem.geom().fastPages() + 4, 5);
    eq.runUntil(250_us);
    EXPECT_TRUE(mgr.placement().inFast(hot));
}

TEST_F(HmaFixture, CounterCacheMissesInjectReads)
{
    HmaParams p = params();
    p.metaCacheEnabled = true;
    p.metaCacheBytes = 2048;
    HmaManager mgr(eq, mem, p);
    touch(mgr, 500, 1);
    EXPECT_EQ(mgr.migrationStats().metaCacheMisses, 1u);
    EXPECT_EQ(mem.stats().bookkeepingLines(), 1u);
    touch(mgr, 500, 1); // now cached
    EXPECT_EQ(mgr.migrationStats().metaCacheHits, 1u);
}

TEST_F(HmaFixture, StorageCostIsLinear)
{
    EventQueue eq2;
    MemorySystem paper_mem(eq2, SystemGeometry::paper(),
                           DramSpec::hbm1GHz(), DramSpec::ddr4_1600());
    HmaManager mgr(eq2, paper_mem, HmaParams{});
    // Table 1: 16 bits per page = 9 MB.
    EXPECT_EQ(mgr.trackingStorageBits() / 8 / (1 << 20), 9u);
}

} // namespace
} // namespace mempod
