/**
 * @file
 * Property tests for the conservative executor's horizon invariant:
 *
 *  1. no domain ever executes past `window start + lookahead` (the
 *     window bound derived from the minimum cross-domain latency);
 *  2. a cross-domain event can never arrive in a domain's past — an
 *     overstated lookahead is a *test failure by panic*, never a
 *     silent reordering.
 *
 * The tests drive a ParallelExecutor directly over a real
 * MemorySystem (no Simulation wrapper), so they can interrogate every
 * domain clock between windows and deliberately mis-derive the
 * lookahead for the death test.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "mem/memory_system.h"
#include "sim/config.h"
#include "sim/parallel.h"
#include "sim/simulation.h"

namespace mempod {
namespace {

/** A coordinator issuing pseudorandom line accesses, PDES-sharded. */
class Harness
{
  public:
    Harness(TimePs lookahead_ps, unsigned shards,
            std::uint64_t target_requests)
        : cfg_(SimConfig::paper(Mechanism::kNoMigration)),
          exec_(coord_,
                cfg_.geom.fastChannels + cfg_.geom.slowChannels, shards,
                lookahead_ps, /*sample_period_ps=*/0),
          target_(target_requests)
    {
        ShardPlan plan;
        plan.channelQueues = exec_.channelQueues();
        plan.dispatch = [this](std::size_t ch, Request req,
                               ChannelAddr where) {
            exec_.dispatch(ch, std::move(req), where);
        };
        mem_ = std::make_unique<MemorySystem>(
            coord_, cfg_.geom, cfg_.near, cfg_.far, cfg_.extraLatencyPs,
            cfg_.controller, &plan);
        exec_.bindChannels(*mem_);
        exec_.setDrained([this] {
            return issued_ == target_ && mem_->inFlight() == 0;
        });
        coord_.schedule(0, [this] { issueSome(); });
    }

    ParallelExecutor &executor() { return exec_; }
    EventQueue &coordinator() { return coord_; }
    std::uint64_t completed() const { return completed_; }

    /** Run to completion, checking `perWindow` between windows. */
    template <typename Fn>
    void
    run(Fn perWindow)
    {
        for (;;) {
            const ParallelExecutor::Step step = exec_.runWindow();
            if (step == ParallelExecutor::Step::kFinished)
                break;
            ASSERT_EQ(step, ParallelExecutor::Step::kWindow);
            perWindow();
        }
    }

  private:
    void
    issueSome()
    {
        // A burst of four accesses per event keeps several channels
        // busy at once, so windows really do overlap domain execution.
        for (int i = 0; i < 4 && issued_ < target_; ++i) {
            rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
            const std::uint64_t lines =
                (cfg_.geom.fastBytes + cfg_.geom.slowBytes) / 64;
            Request req;
            req.addr = (rng_ >> 16) % lines * 64;
            req.type = (rng_ & 1) ? AccessType::kWrite
                                  : AccessType::kRead;
            req.arrival = coord_.now();
            req.onComplete = [this](TimePs) { ++completed_; };
            ++issued_;
            mem_->access(std::move(req));
        }
        if (issued_ < target_)
            coord_.scheduleAfter(2500, [this] { issueSome(); });
    }

    SimConfig cfg_;
    EventQueue coord_;
    ParallelExecutor exec_;
    std::unique_ptr<MemorySystem> mem_;
    std::uint64_t target_;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t rng_ = 0x9e3779b97f4a7c15ull;
};

TEST(PdesHorizon, LookaheadDerivation)
{
    // Paper system: HBM (tCL 7000, tCWL 5000, tBL 2000) and DDR4-1600;
    // min CAS->data across both tiers is min(tCL,tCWL)+tBL of the
    // faster path, plus the 5000 ps interconnect hop.
    const SimConfig paper = SimConfig::paper(Mechanism::kMemPod);
    const auto tier_min = [](const DramSpec &s) {
        return std::min(s.timing.tCL, s.timing.tCWL) + s.timing.tBL;
    };
    const TimePs expect =
        std::min(tier_min(paper.near), tier_min(paper.far)) +
        paper.extraLatencyPs;
    EXPECT_EQ(Simulation::lookaheadPs(paper), expect);
    EXPECT_GT(Simulation::lookaheadPs(paper), 0u);

    // Single-tier config: only the present tier participates.
    const SimConfig fast = SimConfig::fastOnly();
    EXPECT_EQ(fast.geom.slowChannels, 0u);
    EXPECT_EQ(Simulation::lookaheadPs(fast),
              tier_min(fast.near) + fast.extraLatencyPs);

    // The executor a Simulation builds uses exactly this value.
    SimConfig sharded = paper;
    sharded.shards = 2;
    Simulation sim(sharded);
    ASSERT_NE(sim.executor(), nullptr);
    EXPECT_EQ(sim.executor()->lookaheadPs(),
              Simulation::lookaheadPs(paper));
}

TEST(PdesHorizon, NoDomainExecutesBeyondTheWindowBound)
{
    const SimConfig paper = SimConfig::paper(Mechanism::kNoMigration);
    const TimePs lookahead = Simulation::lookaheadPs(paper);
    Harness h(lookahead, /*shards=*/4, /*target_requests=*/2000);
    ParallelExecutor &ex = h.executor();

    TimePs prev_start = 0;
    h.run([&] {
        const TimePs w = ex.lastWindowStartPs();
        const TimePs e = ex.lastWindowEndPs();
        // Window width never exceeds the lookahead...
        ASSERT_LE(e - w, lookahead);
        ASSERT_GE(w, prev_start);
        prev_start = w;
        // ...and no domain clock escapes the bound: the coordinator
        // and every channel lane stop strictly below `min(neighbor
        // clocks) + lookahead`, which the bound upper-bounds.
        ASSERT_LT(h.coordinator().now(), e);
        for (std::size_t i = 0; i < ex.numLanes(); ++i)
            ASSERT_LT(ex.channelQueue(i).now(), e);
    });
    EXPECT_EQ(h.completed(), 2000u);
    EXPECT_GT(ex.windows(), 10u);
}

TEST(PdesHorizonDeathTest, OverstatedLookaheadPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Inflate the lookahead well past the true minimum completion
    // delay (12 ns on the paper system): the first CAS completion now
    // lands inside its own window and must panic at the merge barrier
    // — the invariant is enforced, not silently repaired by
    // reordering.
    const SimConfig paper = SimConfig::paper(Mechanism::kNoMigration);
    const TimePs inflated = Simulation::lookaheadPs(paper) + 1'000'000;
    EXPECT_DEATH(
        {
            Harness h(inflated, 2, 200);
            h.run([] {});
        },
        "horizon violation");
}

} // namespace
} // namespace mempod
