/** @file Unit tests for reporting utilities and the log helpers. */
#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/report.h"

namespace mempod {
namespace {

TEST(TablePrinter, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::num(-1.5, 1), "-1.5");
}

TEST(TablePrinter, PrintsAlignedColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    ::testing::internal::CaptureStdout();
    t.print();
    const std::string out =
        ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, CsvEchoesAllRows)
{
    TablePrinter t({"h1", "h2"});
    t.addRow({"x", "y"});
    ::testing::internal::CaptureStdout();
    t.printCsv();
    const std::string out =
        ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("CSV,h1,h2"), std::string::npos);
    EXPECT_NE(out.find("CSV,x,y"), std::string::npos);
}

TEST(TablePrinter, CsvEscapePassesPlainCells)
{
    EXPECT_EQ(TablePrinter::csvEscape("plain"), "plain");
    EXPECT_EQ(TablePrinter::csvEscape(""), "");
    EXPECT_EQ(TablePrinter::csvEscape("with space"), "with space");
}

TEST(TablePrinter, CsvEscapeQuotesSeparatorsAndBreaks)
{
    EXPECT_EQ(TablePrinter::csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(TablePrinter::csvEscape("line\nbreak"),
              "\"line\nbreak\"");
    EXPECT_EQ(TablePrinter::csvEscape("cr\rhere"), "\"cr\rhere\"");
}

TEST(TablePrinter, CsvEscapeDoublesEmbeddedQuotes)
{
    EXPECT_EQ(TablePrinter::csvEscape("say \"hi\""),
              "\"say \"\"hi\"\"\"");
    EXPECT_EQ(TablePrinter::csvEscape("\""), "\"\"\"\"");
}

TEST(TablePrinter, PrintCsvQuotesCellsThatNeedIt)
{
    TablePrinter t({"name", "detail"});
    t.addRow({"mix1,mix2", "said \"ok\""});
    ::testing::internal::CaptureStdout();
    t.printCsv();
    const std::string out =
        ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("CSV,\"mix1,mix2\",\"said \"\"ok\"\"\""),
              std::string::npos);
}

TEST(TablePrinterDeathTest, RowWidthMismatchPanics)
{
    TablePrinter t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width");
}

TEST(RunResultTest, DataMovedConversion)
{
    RunResult r;
    r.migration.bytesMoved = 3 << 20;
    EXPECT_DOUBLE_EQ(r.dataMovedMiB(), 3.0);
}

TEST(Log, FormatBehavesLikePrintf)
{
    EXPECT_EQ(detail::format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(detail::format("plain"), "plain");
}

TEST(Log, QuietFlagToggles)
{
    setQuietLogging(true);
    EXPECT_TRUE(quietLogging());
    setQuietLogging(false);
    EXPECT_FALSE(quietLogging());
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(MEMPOD_PANIC("boom %d", 42), "boom 42");
}

TEST(LogDeathTest, FatalExits)
{
    EXPECT_DEATH(MEMPOD_FATAL("bad config %s", "x"), "bad config x");
}

TEST(LogDeathTest, AssertCarriesCondition)
{
    const int v = 3;
    EXPECT_DEATH(MEMPOD_ASSERT(v == 4, "v was %d", v), "v == 4");
}

} // namespace
} // namespace mempod
