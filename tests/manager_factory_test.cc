/** @file Unit tests for the self-registering mechanism factory. */
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "mem/manager.h"
#include "mem/manager_factory.h"
#include "mem/memory_system.h"
#include "sim/config.h"

namespace mempod {
namespace {

/** Small system every mechanism can be built against. */
struct FactoryFixture : ::testing::Test
{
    EventQueue eq;
    MemorySystem mem{eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600()};
};

const Mechanism kAll[] = {Mechanism::kNoMigration, Mechanism::kMemPod,
                          Mechanism::kHma, Mechanism::kThm,
                          Mechanism::kCameo};

TEST_F(FactoryFixture, AllMechanismsRegisteredAndBuildable)
{
    for (const Mechanism m : kAll) {
        EXPECT_TRUE(ManagerFactory::known(m)) << mechanismName(m);
        SimConfig cfg;
        cfg.mechanism = m;
        cfg.geom = SystemGeometry::tiny();
        auto mgr = ManagerFactory::build(cfg, eq, mem);
        ASSERT_NE(mgr, nullptr) << mechanismName(m);
        EXPECT_EQ(mgr->name(), mechanismName(m));
    }
}

TEST_F(FactoryFixture, RegisteredNamesAreSortedAndComplete)
{
    const std::vector<std::string> names =
        ManagerFactory::registeredNames();
    ASSERT_EQ(names.size(), std::size(kAll));
    for (std::size_t i = 1; i < names.size(); ++i)
        EXPECT_LT(names[i - 1], names[i]);
    for (const Mechanism m : kAll)
        EXPECT_NE(std::find(names.begin(), names.end(),
                            mechanismName(m)),
                  names.end());
}

TEST_F(FactoryFixture, CoreStallHookDefaultsToNoOp)
{
    SimConfig cfg;
    cfg.geom = SystemGeometry::tiny();
    cfg.mechanism = Mechanism::kNoMigration;
    auto mgr = ManagerFactory::build(cfg, eq, mem);
    // The base-class hook is a no-op: installing one must be safe on
    // mechanisms that never stall the cores.
    mgr->setCoreStallHook([](TimePs) { FAIL() << "unexpected stall"; });
    mgr->handleDemand({.done = nullptr});
    eq.runAll();
}

TEST_F(FactoryFixture, HmaForwardsEpochStallThroughHook)
{
    SimConfig cfg;
    cfg.geom = SystemGeometry::tiny();
    cfg.mechanism = Mechanism::kHma;
    cfg.hma.interval = 10_us;
    cfg.hma.sortStall = 1_us;
    auto mgr = ManagerFactory::build(cfg, eq, mem);
    int stalls = 0;
    TimePs seen = 0;
    mgr->setCoreStallHook([&](TimePs d) {
        ++stalls;
        seen = d;
    });
    mgr->start();
    eq.runUntil(25_us);
    EXPECT_EQ(stalls, 2); // epochs at 10 us and 20 us
    EXPECT_EQ(seen, 1_us);
}

TEST(ManagerFactoryDeathTest, UnregisteredMechanismPanics)
{
    EventQueue eq;
    MemorySystem mem(eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600());
    SimConfig cfg;
    cfg.geom = SystemGeometry::tiny();
    cfg.mechanism = static_cast<Mechanism>(99);
    EXPECT_DEATH((void)ManagerFactory::build(cfg, eq, mem),
                 "mechanism");
}

} // namespace
} // namespace mempod
