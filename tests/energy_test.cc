/** @file Unit tests for the data-movement energy model. */
#include <gtest/gtest.h>

#include "sim/energy.h"

namespace mempod {
namespace {

MemorySystem::Stats
stats(std::uint64_t df, std::uint64_t ds, std::uint64_t mf,
      std::uint64_t ms, std::uint64_t bf = 0, std::uint64_t bs = 0)
{
    MemorySystem::Stats s;
    s.demandFast = df;
    s.demandSlow = ds;
    s.migrationFast = mf;
    s.migrationSlow = ms;
    s.bookkeepingFast = bf;
    s.bookkeepingSlow = bs;
    return s;
}

TEST(Energy, ZeroTrafficZeroEnergy)
{
    const EnergyEstimate e = estimateEnergy(stats(0, 0, 0, 0), true);
    EXPECT_DOUBLE_EQ(e.totalUj(), 0.0);
}

TEST(Energy, SlowAccessesCostMoreThanFast)
{
    const EnergyEstimate fast_only =
        estimateEnergy(stats(1000, 0, 0, 0), true);
    const EnergyEstimate slow_only =
        estimateEnergy(stats(0, 1000, 0, 0), true);
    EXPECT_GT(slow_only.demandUj, 2 * fast_only.demandUj);
}

TEST(Energy, PodLocalMigrationCheaperThanCentralized)
{
    const auto s = stats(0, 0, 5000, 5000);
    const EnergyEstimate local = estimateEnergy(s, true);
    const EnergyEstimate global = estimateEnergy(s, false);
    EXPECT_LT(local.migrationUj, global.migrationUj);
    // Demand/bookkeeping are unaffected by migration locality.
    EXPECT_DOUBLE_EQ(local.demandUj, global.demandUj);
}

TEST(Energy, DemandEnergyMatchesHandComputation)
{
    EnergyParams p;
    p.fastAccessPjPerBit = 4.0;
    p.globalHopPjPerBit = 2.0;
    // One fast line: 512 bits x (4 + 2) pJ = 3072 pJ = 3.072e-3 uJ.
    const EnergyEstimate e =
        estimateEnergy(stats(1, 0, 0, 0), true, p);
    EXPECT_NEAR(e.demandUj, 3.072e-3, 1e-9);
}

TEST(Energy, MigrationEnergyScalesLinearly)
{
    const EnergyEstimate one =
        estimateEnergy(stats(0, 0, 100, 100), true);
    const EnergyEstimate ten =
        estimateEnergy(stats(0, 0, 1000, 1000), true);
    EXPECT_NEAR(ten.migrationUj, 10 * one.migrationUj, 1e-9);
}

TEST(Energy, BookkeepingCounted)
{
    const EnergyEstimate e =
        estimateEnergy(stats(0, 0, 0, 0, 10, 10), true);
    EXPECT_GT(e.bookkeepingUj, 0.0);
    EXPECT_DOUBLE_EQ(e.demandUj, 0.0);
    EXPECT_DOUBLE_EQ(e.migrationUj, 0.0);
}

TEST(Energy, TotalIsSumOfParts)
{
    const EnergyEstimate e =
        estimateEnergy(stats(10, 20, 30, 40, 5, 5), false);
    EXPECT_DOUBLE_EQ(e.totalUj(),
                     e.demandUj + e.migrationUj + e.bookkeepingUj);
}

} // namespace
} // namespace mempod
